#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace gclus::bench {

const BenchDataset& load_bench_dataset(const std::string& name) {
  static std::map<std::string, BenchDataset> cache;
  static std::mutex mu;
  std::lock_guard lock(mu);
  auto it = cache.find(name);
  if (it == cache.end()) {
    BenchDataset d;
    d.dataset = workloads::load_dataset(name);
    d.diameter = exact_diameter(d.dataset.graph).diameter;
    it = cache.emplace(name, std::move(d)).first;
  }
  return it->second;
}

std::vector<const BenchDataset*> all_bench_datasets() {
  std::vector<const BenchDataset*> out;
  for (const auto& name : workloads::dataset_names()) {
    out.push_back(&load_bench_dataset(name));
  }
  return out;
}

double round_latency_s() {
  static const double latency = [] {
    if (const char* env = std::getenv("GCLUS_ROUND_LATENCY")) {
      const double v = std::strtod(env, nullptr);
      if (v >= 0.0) return v;
    }
    return 0.3;
  }();
  return latency;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(const std::string& title,
                         const std::string& caption) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::printf("\n=== %s ===\n", title.c_str());
  if (!caption.empty()) std::printf("%s\n", caption.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = headers_.size() - 1;
  for (const std::size_t w : width) total += w + 2;
  std::string rule(total, '-');
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

std::uint32_t tau_for_target_clusters(const Graph& g, double target_clusters) {
  const double logn =
      std::max(1.0, std::log2(static_cast<double>(g.num_nodes())));
  // Empirically CLUSTER returns ~4·τ·log n · (few waves) clusters; the
  // log²n theory constant overshoots at these scales, so divide by
  // 8·log n which lands near the target across the registry.
  const double tau = target_clusters / (8.0 * logn);
  return static_cast<std::uint32_t>(std::max(1.0, std::round(tau)));
}

}  // namespace gclus::bench
