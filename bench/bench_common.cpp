#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/check.hpp"
#include "graph/generators.hpp"

namespace gclus::bench {

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::set(const std::string& key, Json v) {
  GCLUS_CHECK(kind_ == Kind::kObject, "Json::set on a non-object");
  members_.emplace_back(key, std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return set(key, std::move(j));
}

Json& Json::set(const std::string& key, std::uint64_t v) {
  Json j;
  j.kind_ = Kind::kInteger;
  j.integer_ = v;
  return set(key, std::move(j));
}

Json& Json::set(const std::string& key, const std::string& v) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = v;
  return set(key, std::move(j));
}

Json& Json::set(const std::string& key, const char* v) {
  return set(key, std::string(v));
}

Json& Json::set(const std::string& key, bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return set(key, std::move(j));
}

Json& Json::push(Json v) {
  GCLUS_CHECK(kind_ == Kind::kArray, "Json::push on a non-array");
  elements_.push_back(std::move(v));
  return *this;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void Json::dump_to(std::string& out, int depth) const {
  const std::string indent(2 * (depth + 1), ' ');
  const std::string closing_indent(2 * depth, ' ');
  switch (kind_) {
    case Kind::kNumber: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", number_);
      out += buf;
      break;
    }
    case Kind::kInteger:
      out += std::to_string(integer_);
      break;
    case Kind::kString:
      append_escaped(out, string_);
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kArray:
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        out += indent;
        elements_[i].dump_to(out, depth + 1);
        if (i + 1 < elements_.size()) out += ',';
        out += '\n';
      }
      out += closing_indent + "]";
      break;
    case Kind::kObject:
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += indent;
        append_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.dump_to(out, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      out += closing_indent + "}";
      break;
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0);
  return out;
}

void write_json_file(const std::string& path, const Json& root) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  GCLUS_CHECK(f != nullptr, "cannot open ", path, " for writing");
  const std::string text = root.dump();
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int newline_ok = std::fputc('\n', f);
  GCLUS_CHECK(written == text.size() && newline_ok != EOF,
              "short write to ", path);
  GCLUS_CHECK(std::fclose(f) == 0, "close failed for ", path);
}

const BenchDataset& load_bench_dataset(const std::string& name) {
  static std::map<std::string, BenchDataset> cache;
  static std::mutex mu;
  std::lock_guard lock(mu);
  auto it = cache.find(name);
  if (it == cache.end()) {
    BenchDataset d;
    d.dataset = workloads::load_dataset(name);
    d.diameter = exact_diameter(d.dataset.graph).diameter;
    it = cache.emplace(name, std::move(d)).first;
  }
  return it->second;
}

std::vector<const BenchDataset*> all_bench_datasets() {
  std::vector<const BenchDataset*> out;
  for (const auto& name : workloads::dataset_names()) {
    out.push_back(&load_bench_dataset(name));
  }
  return out;
}

Graph cached_expander(NodeId n, unsigned degree, std::uint64_t seed) {
  const std::string key = "expander-n" + std::to_string(n) + "-d" +
                          std::to_string(degree) + "-s" +
                          std::to_string(seed);
  return workloads::cached_graph(
      key, [&] { return gen::expander(n, degree, seed); });
}

double round_latency_s() {
  static const double latency = [] {
    if (const char* env = std::getenv("GCLUS_ROUND_LATENCY")) {
      const double v = std::strtod(env, nullptr);
      if (v >= 0.0) return v;
    }
    return 0.3;
  }();
  return latency;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(const std::string& title,
                         const std::string& caption) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::printf("\n=== %s ===\n", title.c_str());
  if (!caption.empty()) std::printf("%s\n", caption.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = headers_.size() - 1;
  for (const std::size_t w : width) total += w + 2;
  std::string rule(total, '-');
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

Clustering run_registry(const std::string& algo, const Graph& g,
                        const AlgoParams& params, RunContext ctx) {
  return registry().run(algo, g, params, ctx);
}

std::uint32_t tau_for_target_clusters(const Graph& g, double target_clusters) {
  const double logn =
      std::max(1.0, std::log2(static_cast<double>(g.num_nodes())));
  // Empirically CLUSTER returns ~4·τ·log n · (few waves) clusters; the
  // log²n theory constant overshoots at these scales, so divide by
  // 8·log n which lands near the target across the registry.
  const double tau = target_clusters / (8.0 * logn);
  return static_cast<std::uint32_t>(std::max(1.0, std::round(tau)));
}

}  // namespace gclus::bench
