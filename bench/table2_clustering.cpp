// Table 2 — CLUSTER vs MPX at matched granularity.
//
// Protocol (§6.1): target a cluster count roughly three orders of
// magnitude below n for small-diameter graphs and two orders below n for
// large-diameter graphs; give MPX a comparable-but-LARGER cluster count
// (β is tuned upward), which is conservative in MPX's favor since more
// clusters can only shrink its maximum radius.  Report the quotient size
// (n_C, m_C) and the maximum cluster radius r for both algorithms.
//
// Paper shape to reproduce: comparable n_C, but r(CLUSTER) clearly below
// r(MPX), with the gap widening on the large-diameter (road/mesh) graphs;
// MPX tends to win on m_C for the social graphs.
#include <benchmark/benchmark.h>

#include "baselines/mpx.hpp"
#include "bench_common.hpp"
#include "core/cluster.hpp"
#include "core/quotient.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

constexpr std::uint64_t kSeed = 2015;

struct Row {
  std::string dataset;
  ClusterId ours_nc;
  EdgeId ours_mc;
  Dist ours_r;
  ClusterId mpx_nc;
  EdgeId mpx_mc;
  Dist mpx_r;
  double mpx_beta;
};

Row run_comparison(const BenchDataset& d) {
  const Graph& g = d.graph();
  const double target = d.dataset.large_diameter
                            ? g.num_nodes() / 100.0
                            : g.num_nodes() / 1000.0;
  const std::uint32_t tau = tau_for_target_clusters(g, target);

  RunContext ctx;
  ctx.seed = kSeed;
  const Clustering ours =
      run_registry("cluster", g, AlgoParams{}.set("tau", std::uint64_t{tau}),
                   ctx);
  const QuotientGraph qo = build_quotient(g, ours, /*with_weights=*/false);

  // β tuning is a search harness around MPX, not a decomposition run —
  // it stays a direct call; the measured construction goes through the
  // registry like every other algorithm.
  baselines::MpxOptions mopts;
  mopts.seed = kSeed;
  const double beta = baselines::mpx_tune_beta(g, ours.num_clusters(), mopts);
  const Clustering theirs =
      run_registry("mpx", g, AlgoParams{}.set("beta", beta), ctx);
  const QuotientGraph qm = build_quotient(g, theirs, /*with_weights=*/false);

  return Row{d.name(),
             ours.num_clusters(),
             qo.graph.num_edges(),
             ours.max_radius(),
             theirs.num_clusters(),
             qm.graph.num_edges(),
             theirs.max_radius(),
             beta};
}

std::vector<Row>& results() {
  static std::vector<Row> rows;
  return rows;
}

void print_table2() {
  TablePrinter table({"dataset", "CLUSTER n_C", "CLUSTER m_C", "CLUSTER r",
                      "MPX n_C", "MPX m_C", "MPX r", "MPX beta"});
  for (const BenchDataset* d : all_bench_datasets()) {
    const Row row = run_comparison(*d);
    results().push_back(row);
    table.add_row({row.dataset, fmt_u(row.ours_nc), fmt_u(row.ours_mc),
                   fmt_u(row.ours_r), fmt_u(row.mpx_nc), fmt_u(row.mpx_mc),
                   fmt_u(row.mpx_r), fmt(row.mpx_beta, 4)});
  }
  table.print(
      "Table 2: CLUSTER vs MPX decompositions",
      "n_C clusters, m_C quotient edges, r max cluster radius.  MPX is "
      "tuned to >= CLUSTER's cluster count (conservative for MPX).");
}

void BM_Cluster(benchmark::State& state, const std::string& name) {
  const BenchDataset& d = load_bench_dataset(name);
  const double target = d.dataset.large_diameter
                            ? d.graph().num_nodes() / 100.0
                            : d.graph().num_nodes() / 1000.0;
  const std::uint32_t tau = tau_for_target_clusters(d.graph(), target);
  RunContext ctx;
  ctx.seed = kSeed;
  const AlgoParams params = AlgoParams{}.set("tau", std::uint64_t{tau});
  Dist radius = 0;
  ClusterId clusters = 0;
  for (auto _ : state) {
    const Clustering c = run_registry("cluster", d.graph(), params, ctx);
    radius = c.max_radius();
    clusters = c.num_clusters();
    benchmark::DoNotOptimize(c.assignment.data());
  }
  state.counters["tau"] = tau;
  state.counters["clusters"] = clusters;
  state.counters["max_radius"] = radius;
}

void BM_Mpx(benchmark::State& state, const std::string& name,
            double beta) {
  const BenchDataset& d = load_bench_dataset(name);
  RunContext ctx;
  ctx.seed = kSeed;
  const AlgoParams params = AlgoParams{}.set("beta", beta);
  Dist radius = 0;
  ClusterId clusters = 0;
  for (auto _ : state) {
    const Clustering c = run_registry("mpx", d.graph(), params, ctx);
    radius = c.max_radius();
    clusters = c.num_clusters();
    benchmark::DoNotOptimize(c.assignment.data());
  }
  state.counters["beta"] = beta;
  state.counters["clusters"] = clusters;
  state.counters["max_radius"] = radius;
}

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  for (const Row& row : results()) {
    benchmark::RegisterBenchmark(("cluster/" + row.dataset).c_str(),
                                 BM_Cluster, row.dataset)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(("mpx/" + row.dataset).c_str(), BM_Mpx,
                                 row.dataset, row.mpx_beta)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
