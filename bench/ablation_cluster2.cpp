// Ablation D — CLUSTER2 vs the simplified CLUSTER-only diameter pipeline.
//
// §6.2 replaces CLUSTER2 with plain CLUSTER "for efficiency, avoiding
// repeating the clustering twice".  This bench quantifies the trade on
// both sides: growth steps (the round cost, roughly doubled by CLUSTER2's
// preliminary run plus quota-padded iterations) against the estimate
// quality and the cluster count (CLUSTER2's extra log² factor).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/diameter.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

constexpr std::uint64_t kSeed = 626;

/// Registry-driven pipeline: clustering by name, diameter post-processing
/// on top.  CLUSTER2's preliminary-run cost is not part of the Clustering
/// it returns, so it is read back from the telemetry sink.
DiameterApprox run_pipeline(const Graph& g, bool use_cluster2,
                            std::uint32_t tau) {
  RecordingTelemetry telemetry;
  RunContext ctx;
  ctx.seed = kSeed;
  ctx.telemetry = &telemetry;
  const Clustering c =
      run_registry(use_cluster2 ? "cluster2" : "cluster", g,
                   AlgoParams{}.set("tau", std::uint64_t{tau}), ctx);
  DiameterApprox a = diameter_from_clustering(g, c);
  if (telemetry.has("cluster2.prelim_growth_steps")) {
    a.growth_steps += static_cast<std::size_t>(
        telemetry.value("cluster2.prelim_growth_steps"));
  }
  return a;
}

void run_dataset(const BenchDataset& d) {
  TablePrinter table({"pipeline", "clusters", "max radius", "D' est",
                      "growth steps", "D", "est/D"});
  for (const bool use_cluster2 : {false, true}) {
    const std::uint32_t tau = tau_for_target_clusters(
        d.graph(), d.graph().num_nodes() / 250.0);
    const DiameterApprox a = run_pipeline(d.graph(), use_cluster2, tau);
    table.add_row({use_cluster2 ? "CLUSTER2 (analyzed, Alg. 2)"
                                : "CLUSTER only (as in the experiments)",
                   fmt_u(a.num_clusters), fmt_u(a.max_radius),
                   fmt_u(a.upper_bound), fmt_u(a.growth_steps),
                   fmt_u(d.diameter),
                   fmt(static_cast<double>(a.upper_bound) /
                           std::max<Dist>(1, d.diameter),
                       2)});
  }
  table.print("Ablation D: CLUSTER2 vs simplified pipeline on " + d.name(),
              "The paper's experiments use the cheaper CLUSTER-only "
              "variant; CLUSTER2 is the analyzed algorithm.");
}

void BM_Pipeline(benchmark::State& state, const std::string& name,
                 bool use_cluster2) {
  const BenchDataset& d = load_bench_dataset(name);
  const std::uint32_t tau = tau_for_target_clusters(
      d.graph(), d.graph().num_nodes() / 250.0);
  std::uint64_t est = 0;
  std::size_t steps = 0;
  for (auto _ : state) {
    const DiameterApprox a = run_pipeline(d.graph(), use_cluster2, tau);
    est = a.upper_bound;
    steps = a.growth_steps;
    benchmark::DoNotOptimize(est);
  }
  state.counters["estimate"] = static_cast<double>(est);
  state.counters["growth_steps"] = static_cast<double>(steps);
}

}  // namespace

int main(int argc, char** argv) {
  run_dataset(load_bench_dataset("road-a"));
  run_dataset(load_bench_dataset("mesh"));
  for (const std::string name : {"road-a", "mesh"}) {
    benchmark::RegisterBenchmark(("pipeline_cluster/" + name).c_str(),
                                 BM_Pipeline, name, false)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(("pipeline_cluster2/" + name).c_str(),
                                 BM_Pipeline, name, true)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
