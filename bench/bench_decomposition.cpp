// Direction-optimizing growth-engine benchmark — the perf-trajectory
// anchor for the decomposition hot path.
//
// On a low-diameter generated graph (an 8-regular expander, ≥1M edges)
// this measures the same primitive three ways — push-only (the classic
// engine), pull-only, and the hybrid degree-sum heuristic — across three
// workloads: raw multi-center growth, single-source BFS, and a full
// CLUSTER(τ) run.  Results go to stdout as paper-style tables and to
// BENCH_decomposition.json (override with GCLUS_BENCH_OUT), including the
// per-step direction decisions of every growth run so mode switches are
// auditable from the artifact alone.
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "common/traversal.hpp"
#include "core/cluster.hpp"
#include "core/growth.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "par/thread_pool.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

constexpr NodeId kNodes = 300000;
constexpr unsigned kDegree = 8;
constexpr std::uint64_t kSeed = 42;
constexpr NodeId kCenters = 4;
constexpr int kReps = 5;

const TraversalMode kModes[] = {TraversalMode::kPushOnly,
                                TraversalMode::kPullOnly,
                                TraversalMode::kAuto};

struct RunResult {
  std::string mode;
  double wall_s = 0.0;
  std::size_t steps = 0;
  std::size_t push_steps = 0;
  std::size_t pull_steps = 0;
  GrowthStats stats;  // step log of the last rep (growth runs only)
};

Json decisions_json(const GrowthStats& stats) {
  Json arr = Json::array();
  for (const GrowthStepLog& log : stats.steps) {
    arr.push(Json::object()
                 .set("step", static_cast<std::uint64_t>(log.step))
                 .set("mode", log.pull ? "pull" : "push")
                 .set("frontier", static_cast<std::uint64_t>(log.frontier_size))
                 .set("frontier_degree_sum", log.frontier_degree_sum)
                 .set("uncovered_degree_sum", log.uncovered_degree_sum)
                 .set("newly_covered",
                      static_cast<std::uint64_t>(log.newly_covered)));
  }
  return arr;
}

Json run_json(const RunResult& r, bool with_decisions) {
  Json j = Json::object()
               .set("mode", r.mode)
               .set("wall_s", r.wall_s)
               .set("modeled_s", r.wall_s + static_cast<double>(r.steps) *
                                                round_latency_s())
               .set("growth_steps", static_cast<std::uint64_t>(r.steps))
               .set("push_steps", static_cast<std::uint64_t>(r.push_steps))
               .set("pull_steps", static_cast<std::uint64_t>(r.pull_steps));
  if (with_decisions) j.set("decisions", decisions_json(r.stats));
  return j;
}

RunResult bench_growth_once(const Graph& g, ThreadPool& pool,
                            TraversalMode mode) {
  RunResult r;
  r.mode = traversal_mode_name(mode);
  GrowthOptions opts;
  opts.mode = mode;
  opts.record_step_log = true;
  Timer t;
  GrowthState state(g, pool, opts);
  for (NodeId i = 0; i < kCenters; ++i) {
    state.add_center(static_cast<NodeId>(
        static_cast<std::uint64_t>(i) * g.num_nodes() / kCenters));
  }
  while (state.covered_count() < g.num_nodes()) {
    if (state.frontier_empty()) state.add_singletons_for_uncovered();
    state.step();
  }
  r.wall_s = t.elapsed_s();
  r.steps = state.steps_executed();
  r.push_steps = state.stats().push_steps;
  r.pull_steps = state.stats().pull_steps;
  r.stats = state.stats();
  return r;
}

RunResult bench_bfs_once(const Graph& g, ThreadPool& pool,
                         TraversalMode mode) {
  RunResult r;
  r.mode = traversal_mode_name(mode);
  GrowthOptions opts;
  opts.mode = mode;
  std::size_t levels = 0;
  DirectionCounts counts;
  Timer t;
  const auto dist = parallel_bfs(pool, g, 0, &levels, opts, &counts);
  r.wall_s = t.elapsed_s();
  r.steps = levels;
  r.push_steps = counts.push;
  r.pull_steps = counts.pull;
  return r;
}

RunResult bench_cluster_once(const Graph& g, ThreadPool& pool,
                             TraversalMode mode) {
  RunResult r;
  r.mode = traversal_mode_name(mode);
  RunContext ctx;
  ctx.seed = kSeed;
  ctx.pool = &pool;
  ctx.growth.mode = mode;
  Timer t;
  const Clustering c = run_registry(
      "cluster", g, AlgoParams{}.set("tau", std::uint64_t{16}), ctx);
  r.wall_s = t.elapsed_s();
  r.steps = c.growth_steps;
  r.push_steps = c.push_steps;
  r.pull_steps = c.pull_steps;
  return r;
}

/// Runs one scenario kReps times per mode with the modes interleaved
/// inside each rep, so a transient load spike on this shared machine hits
/// every mode roughly equally instead of skewing one block of reps; keeps
/// the minimum wall time per mode (everything else is deterministic).
template <typename Once>
std::vector<RunResult> sweep_modes(const Once& once) {
  std::vector<RunResult> best;
  for (int rep = 0; rep < kReps; ++rep) {
    std::size_t i = 0;
    for (const TraversalMode mode : kModes) {
      RunResult r = once(mode);
      if (rep == 0) {
        best.push_back(std::move(r));
      } else if (r.wall_s < best[i].wall_s) {
        best[i].wall_s = r.wall_s;
      }
      ++i;
    }
  }
  return best;
}

double speedup_vs_push(const std::vector<RunResult>& runs) {
  double push_wall = 0.0, auto_wall = 0.0;
  for (const RunResult& r : runs) {
    if (r.mode == "push") push_wall = r.wall_s;
    if (r.mode == "auto") auto_wall = r.wall_s;
  }
  return auto_wall > 0.0 ? push_wall / auto_wall : 0.0;
}

void print_table(const std::string& title,
                 const std::vector<RunResult>& runs) {
  TablePrinter table({"mode", "wall_s", "modeled_s", "steps", "push", "pull"});
  for (const RunResult& r : runs) {
    table.add_row({r.mode, fmt(r.wall_s, 4),
                   fmt(r.wall_s + static_cast<double>(r.steps) *
                                      round_latency_s(),
                       2),
                   fmt_u(r.steps), fmt_u(r.push_steps), fmt_u(r.pull_steps)});
  }
  table.print(title, "hybrid speedup vs push-only: " +
                         fmt(speedup_vs_push(runs), 2) + "x");
}

}  // namespace

int main() {
  const Graph g = cached_expander(kNodes, kDegree, kSeed);
  ThreadPool& pool = ThreadPool::global();
  std::printf("expander: n=%u m=%llu threads=%zu\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()),
              pool.num_threads());

  const std::vector<RunResult> growth = sweep_modes(
      [&](TraversalMode mode) { return bench_growth_once(g, pool, mode); });
  const std::vector<RunResult> bfs = sweep_modes(
      [&](TraversalMode mode) { return bench_bfs_once(g, pool, mode); });
  const std::vector<RunResult> clus = sweep_modes(
      [&](TraversalMode mode) { return bench_cluster_once(g, pool, mode); });

  print_table("Growth engine (" + std::to_string(kCenters) +
                  " centers, full coverage)",
              growth);
  print_table("Parallel BFS (single source)", bfs);
  print_table("CLUSTER(16)", clus);

  Json root = Json::object();
  root.set("bench", "decomposition");
  root.set("graph", Json::object()
                        .set("generator", "expander")
                        .set("nodes", static_cast<std::uint64_t>(g.num_nodes()))
                        .set("edges", static_cast<std::uint64_t>(g.num_edges()))
                        .set("degree", static_cast<std::uint64_t>(kDegree))
                        .set("seed", static_cast<std::uint64_t>(kSeed)));
  root.set("threads", static_cast<std::uint64_t>(pool.num_threads()));
  root.set("round_latency_s", round_latency_s());

  Json growth_json = Json::array();
  for (const RunResult& r : growth) {
    growth_json.push(run_json(r, /*with_decisions=*/true));
  }
  Json bfs_json = Json::array();
  for (const RunResult& r : bfs) bfs_json.push(run_json(r, false));
  Json cluster_json = Json::array();
  for (const RunResult& r : clus) cluster_json.push(run_json(r, false));

  root.set("growth", std::move(growth_json));
  root.set("growth_speedup_auto_vs_push", speedup_vs_push(growth));
  root.set("bfs", std::move(bfs_json));
  root.set("bfs_speedup_auto_vs_push", speedup_vs_push(bfs));
  root.set("cluster", std::move(cluster_json));
  root.set("cluster_speedup_auto_vs_push", speedup_vs_push(clus));

  const char* out_env = std::getenv("GCLUS_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_decomposition.json";
  write_json_file(out_path, root);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
