#!/usr/bin/env python3
"""Bench regression gate: compare BENCH_*.json results against committed
baselines in bench/baselines/ and fail on regression.

Each baseline file names the result file it gates and a set of metrics:

    {
      "file": "BENCH_io.json",
      "metrics": {
        "parallel_speedup_8t": {"value": 5.2, "direction": "higher"},
        "cluster_spilled.bytes_spilled": {"value": 123, "direction": "near",
                                           "tolerance": 0.10},
        "registry_mmap_identical": {"direction": "true"}
      }
    }

Metric paths are dotted lookups into the result JSON.  Directions:

    higher  regression when measured < value * (1 - tolerance)
    lower   regression when measured > value * (1 + tolerance)
    near    regression when outside value * (1 -/+ tolerance)
    true    boolean metric that must be true (value ignored)

The default tolerance is +-25% (0.25).  Machine-dependent wall-clock
metrics carry a wide explicit tolerance and exist for visibility; the
hard gating rides on machine-portable ratios (speedups, reductions) and
deterministic counts, which a real perf regression shifts on any host.

    --update           rewrite baseline values from the measured results
    --inject-slowdown F  self-test: simulate a uniform Fx slowdown
                       (wall metrics *= F, speedup/reduction ratios /= F)
                       before checking.  CI runs this with F=2 and asserts
                       the checker goes red — proving the gate can fire.

Exit status: 0 clean, 1 regression (or self-test failed to regress), 2
missing/invalid inputs.
"""

import argparse
import json
import os
import sys

DEFAULT_TOLERANCE = 0.25


def lookup(doc, dotted):
    cur = doc
    for part in dotted.split("."):
        if not isinstance(cur, dict) or part not in cur:
            return None
        cur = cur[part]
    return cur


def is_ratio_metric(path):
    leaf = path.rsplit(".", 1)[-1]
    return "speedup" in leaf or "reduction" in leaf


def is_wall_metric(path):
    leaf = path.rsplit(".", 1)[-1]
    return leaf.endswith("_s") or "wall" in leaf


def inject_slowdown(path, spec, measured, factor):
    """Simulate a uniform `factor`x slowdown of the benched code: wall
    times inflate by it, and every speedup/reduction ratio (benched phase
    over an unchanged reference) deflates by it."""
    if not isinstance(measured, (int, float)) or isinstance(measured, bool):
        return measured
    if is_wall_metric(path):
        return measured * factor
    if is_ratio_metric(path) and spec.get("direction") == "higher":
        return measured / factor
    return measured


def check_metric(path, spec, measured):
    """Returns (status, detail) where status is OK/REGRESSION/MISSING."""
    direction = spec.get("direction", "near")
    if measured is None:
        return "MISSING", "metric absent from results"
    if direction == "true":
        return ("OK", "true") if measured is True else (
            "REGRESSION", f"expected true, got {measured!r}")
    value = spec["value"]
    tol = spec.get("tolerance", DEFAULT_TOLERANCE)
    lo, hi = value * (1 - tol), value * (1 + tol)
    detail = f"baseline {value:g} tol +-{tol:.0%} measured {measured:g}"
    if direction == "higher" and measured < lo:
        return "REGRESSION", detail + f" < floor {lo:g}"
    if direction == "lower" and measured > hi:
        return "REGRESSION", detail + f" > ceiling {hi:g}"
    if direction == "near" and not (lo <= measured <= hi):
        return "REGRESSION", detail + f" outside [{lo:g}, {hi:g}]"
    return "OK", detail


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--results", default=".",
                    help="directory holding BENCH_*.json (default: .)")
    ap.add_argument("--baselines", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "baselines"),
                    help="directory of baseline specs (default: bench/baselines)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite baseline values from measured results")
    ap.add_argument("--inject-slowdown", type=float, default=None,
                    metavar="F", help="self-test: simulate an Fx slowdown")
    args = ap.parse_args()

    baseline_files = sorted(
        f for f in os.listdir(args.baselines) if f.endswith(".json"))
    if not baseline_files:
        print(f"no baselines found in {args.baselines}", file=sys.stderr)
        return 2

    failures = 0
    missing = 0
    stale = []
    rows = []
    for bf in baseline_files:
        bf_path = os.path.join(args.baselines, bf)
        with open(bf_path) as fh:
            baseline = json.load(fh)
        results_path = os.path.join(args.results, baseline["file"])
        if not os.path.exists(results_path):
            print(f"MISSING RESULTS: {results_path} (wanted by {bf})",
                  file=sys.stderr)
            missing += 1
            continue
        with open(results_path) as fh:
            results = json.load(fh)

        for path, spec in baseline["metrics"].items():
            measured = lookup(results, path)
            if measured is None:
                # A baseline metric the fresh results no longer emit is a
                # hard error in every mode: a renamed or deleted metric
                # must update the baseline file, not drop out of the gate.
                stale.append(f"{bf}:{path}")
            if args.update and measured is not None and \
                    spec.get("direction") != "true":
                spec["value"] = measured
            if args.inject_slowdown is not None:
                measured = inject_slowdown(path, spec, measured,
                                           args.inject_slowdown)
            status, detail = check_metric(path, spec, measured)
            if status == "REGRESSION":
                failures += 1
            elif status == "MISSING":
                missing += 1
            rows.append((status, f"{baseline['file']}:{path}", detail))

        if args.update:
            with open(bf_path, "w") as fh:
                json.dump(baseline, fh, indent=2)
                fh.write("\n")

    width = max(len(r[1]) for r in rows) if rows else 0
    for status, name, detail in rows:
        print(f"{status:<10} {name:<{width}}  {detail}")

    if stale:
        # In every mode — including --update and --inject-slowdown, which
        # previously shrugged these off — a stale baseline entry is fatal:
        # it means a bench metric was renamed or removed without touching
        # the baseline, so the gate would be checking a ghost.
        for name in stale:
            print(f"STALE BASELINE: {name} is gated but absent from the "
                  f"fresh results — renamed or removed? update the baseline "
                  f"file to match the bench output", file=sys.stderr)
        return 2
    if args.update:
        print(f"\nupdated baselines in {args.baselines}")
        return 0
    if args.inject_slowdown is not None:
        if failures:
            print(f"\nself-test OK: injected {args.inject_slowdown}x slowdown "
                  f"tripped {failures} metric(s)")
            # Intentionally report failure so CI can assert `! check ...`.
            return 1
        print("\nself-test FAILED: injected slowdown tripped nothing",
              file=sys.stderr)
        return 0
    if missing:
        print(f"\n{missing} metric(s)/file(s) missing", file=sys.stderr)
        return 2
    if failures:
        print(f"\n{failures} regression(s) beyond tolerance", file=sys.stderr)
        return 1
    print("\nall bench metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
