// Ablation B — what the batched halving policy buys (§3's discussion).
//
// On the expander+path composite, sparse and dense regions coexist:
// uniform one-shot sampling puts centers proportionally on the tail, MPX
// staggers activations by shift, and CLUSTER re-seeds from the uncovered
// set every time coverage halves — which concentrates late batches
// exactly on the not-yet-covered sparse region.  At matched cluster
// counts, the maximum radius comparison quantifies the policy choice.
// The paper's Table 2 shows the same effect on road networks.
#include <benchmark/benchmark.h>

#include "baselines/mpx.hpp"
#include "baselines/random_centers.hpp"
#include "bench_common.hpp"
#include "core/cluster.hpp"
#include "graph/properties.hpp"
#include "workloads/datasets.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

constexpr std::uint64_t kSeed = 99;

void run_comparison(const Graph& g, const std::string& label, Dist diameter) {
  TablePrinter table(
      {"policy", "clusters", "max radius r", "r / D", "growth steps"});

  RunContext ctx;
  ctx.seed = kSeed;
  const Clustering ours =
      run_registry("cluster", g, AlgoParams{}.set("tau", std::uint64_t{8}),
                   ctx);
  const ClusterId k = ours.num_clusters();
  table.add_row({"CLUSTER (batched halving)", fmt_u(k),
                 fmt_u(ours.max_radius()),
                 fmt(static_cast<double>(ours.max_radius()) / diameter, 3),
                 fmt_u(ours.growth_steps)});

  const Clustering oneshot = run_registry(
      "random_centers", g, AlgoParams{}.set("k", std::uint64_t{k}), ctx);
  table.add_row({"one-shot random centers", fmt_u(oneshot.num_clusters()),
                 fmt_u(oneshot.max_radius()),
                 fmt(static_cast<double>(oneshot.max_radius()) / diameter, 3),
                 fmt_u(oneshot.growth_steps)});

  baselines::MpxOptions mopts;
  mopts.seed = kSeed;
  const double beta = baselines::mpx_tune_beta(g, k, mopts);
  const Clustering shifted =
      run_registry("mpx", g, AlgoParams{}.set("beta", beta), ctx);
  table.add_row({"MPX (exponential shifts)", fmt_u(shifted.num_clusters()),
                 fmt_u(shifted.max_radius()),
                 fmt(static_cast<double>(shifted.max_radius()) / diameter, 3),
                 fmt_u(shifted.growth_steps)});

  table.print("Ablation B: center-activation policy on " + label,
              "Matched cluster counts (MPX/random get >= CLUSTER's); "
              "graph diameter D = " + fmt_u(diameter) + ".");
}

void BM_Policy(benchmark::State& state, int which) {
  const Graph g = workloads::make_expander_path(32768);
  RunContext ctx;
  ctx.seed = kSeed;
  Dist radius = 0;
  for (auto _ : state) {
    Clustering c;
    if (which == 0) {
      c = run_registry("cluster", g, AlgoParams{}.set("tau", std::uint64_t{8}),
                       ctx);
    } else if (which == 1) {
      c = run_registry("random_centers", g,
                       AlgoParams{}.set("k", std::uint64_t{512}), ctx);
    } else {
      c = run_registry("mpx", g, AlgoParams{}.set("beta", 0.2), ctx);
    }
    radius = c.max_radius();
    benchmark::DoNotOptimize(c.assignment.data());
  }
  state.counters["max_radius"] = radius;
}

}  // namespace

int main(int argc, char** argv) {
  {
    const Graph g = workloads::make_expander_path(32768);
    run_comparison(g, "expander+path (n=32768, tail ~ 181)",
                   exact_diameter(g).diameter);
  }
  {
    const BenchDataset& d = load_bench_dataset("road-b");
    run_comparison(d.graph(), d.name(), d.diameter);
  }
  benchmark::RegisterBenchmark("policy/cluster", BM_Policy, 0)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::RegisterBenchmark("policy/random", BM_Policy, 1)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::RegisterBenchmark("policy/mpx", BM_Policy, 2)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
