// Table 4 — CLUSTER vs BFS vs HADI on the MR substrate.
//
// All three algorithms run on the same MR engine; each row reports the
// diameter estimate Δ′, the MR rounds executed, the communication volume
// (key-value pairs shuffled), the raw emulator wall time, and the modeled
// distributed time wall + rounds·latency (see bench_common.hpp).
//
// Paper shape to reproduce (their Table 4, times in seconds on 16 hosts):
//   * HADI: accurate estimates but Θ(Δ) rounds each shuffling Θ(m)
//     sketches — slowest everywhere, catastrophically so on road/mesh;
//   * BFS: Θ(Δ) rounds but only O(m) aggregate volume — between the two;
//   * CLUSTER: rounds ∝ growth steps ≪ Δ on large-diameter graphs —
//     fastest there by an order of magnitude or more.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "mr_algos/mr_bfs.hpp"
#include "mr_algos/mr_cluster.hpp"
#include "mr_algos/mr_hadi.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

constexpr std::uint64_t kSeed = 2015;

struct AlgoResult {
  std::uint64_t estimate = 0;
  std::size_t rounds = 0;
  std::uint64_t comm_pairs = 0;
  double wall_s = 0.0;
  double modeled_s = 0.0;
};

template <typename Fn>
AlgoResult measured(Fn&& fn) {
  mr::Engine engine;
  Timer timer;
  const std::uint64_t estimate = fn(engine);
  AlgoResult r;
  r.estimate = estimate;
  r.wall_s = timer.elapsed_s();
  r.rounds = engine.metrics().rounds;
  r.comm_pairs = engine.metrics().pairs_shuffled;
  r.modeled_s = r.wall_s + static_cast<double>(r.rounds) * round_latency_s();
  return r;
}

AlgoResult run_cluster(const BenchDataset& d) {
  return measured([&](mr::Engine& engine) {
    const NodeId n = d.graph().num_nodes();
    const double target =
        d.dataset.large_diameter ? n / 100.0 : n / 1000.0;
    mr_algos::MrClusterOptions opts;
    opts.seed = kSeed;
    const auto r = mr_algos::mr_cluster_diameter(
        engine, d.graph(), tau_for_target_clusters(d.graph(), target), opts);
    return r.estimate;
  });
}

AlgoResult run_bfs(const BenchDataset& d) {
  return measured([&](mr::Engine& engine) {
    // The paper runs BFS from an arbitrary source; use node 0.
    return mr_algos::mr_bfs_diameter(engine, d.graph(), 0).estimate;
  });
}

AlgoResult run_hadi(const BenchDataset& d) {
  return measured([&](mr::Engine& engine) {
    mr_algos::HadiOptions opts;
    opts.seed = kSeed;
    // Run to (near) sketch fixpoint, as HADI does: any register movement
    // counts as growth.  The coarse FM granularity still stops slightly
    // before Δ on the regular meshes (the paper's HADI slightly
    // underestimates the road diameters the same way).
    opts.epsilon = 1e-12;
    return mr_algos::mr_hadi(engine, d.graph(), opts).estimate;
  });
}

void print_table4() {
  TablePrinter table({"dataset", "algo", "D' est", "rounds", "comm pairs",
                      "wall s", "modeled s", "D"});
  for (const BenchDataset* d : all_bench_datasets()) {
    struct Entry {
      const char* algo;
      AlgoResult r;
    };
    const Entry entries[] = {{"CLUSTER", run_cluster(*d)},
                             {"BFS", run_bfs(*d)},
                             {"HADI", run_hadi(*d)}};
    for (const Entry& e : entries) {
      table.add_row({d->name(), e.algo, fmt_u(e.r.estimate),
                     fmt_u(e.r.rounds), fmt_u(e.r.comm_pairs),
                     fmt(e.r.wall_s, 2), fmt(e.r.modeled_s, 1),
                     fmt_u(d->diameter)});
    }
  }
  table.print(
      "Table 4: CLUSTER vs BFS vs HADI (diameter estimation on the MR "
      "engine)",
      "modeled s = wall + rounds x " + fmt(round_latency_s(), 2) +
          " s round latency (GCLUS_ROUND_LATENCY); the paper's regime is "
          "round-dominated.");
}

void BM_Algo(benchmark::State& state, const std::string& name,
             int which) {
  const BenchDataset& d = load_bench_dataset(name);
  AlgoResult r;
  for (auto _ : state) {
    r = which == 0 ? run_cluster(d) : which == 1 ? run_bfs(d) : run_hadi(d);
    benchmark::DoNotOptimize(r.estimate);
  }
  state.counters["rounds"] = static_cast<double>(r.rounds);
  state.counters["comm_pairs"] = static_cast<double>(r.comm_pairs);
  state.counters["estimate"] = static_cast<double>(r.estimate);
  state.counters["modeled_s"] = r.modeled_s;
}

}  // namespace

int main(int argc, char** argv) {
  print_table4();
  // Timing benchmarks on the two extreme datasets only (the table above
  // already ran every combination once).
  for (const std::string name : {"social-small", "road-b"}) {
    benchmark::RegisterBenchmark(("mr_cluster/" + name).c_str(), BM_Algo,
                                 name, 0)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(("mr_bfs/" + name).c_str(), BM_Algo, name, 1)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
