// Query-service benchmark — the perf/compliance anchor for src/server/.
//
// On the 1.2M-edge 8-regular expander (the same graph as bench_io) this
// demonstrates the serving claims of the decomposition query service:
//
//   1. Batching wins: the batched pipeline at 8 workers beats per-query
//      submission (batch size 1 — one queue round-trip per lookup) by
//      >= 3x QPS.  This ratio is machine-portable: it measures the
//      amortization design, not core count.
//
//   2. Artifact restart wins: mmap-loading the published sidecar is
//      >= 3x faster than re-running decomposition + APSP, and the loaded
//      engine answers byte-identically to the fresh build.
//
//   3. Concurrency is free of nondeterminism: the full query stream
//      answered at 1, 2, and 8 workers is byte-identical, and nothing is
//      shed when the submitter applies backpressure.
//
//   4. The wire adds no wrongness: the same stream served over the
//      loopback network front end (src/net/) at 1, 2, and 8 workers is
//      byte-identical to in-process serving; net_qps_* / net_p??_* gauge
//      what the framing + TCP round trip costs.
//
// Worker scaling (qps_8w / qps_1w) is also measured and floored, but the
// floor adapts to the machine: on >= 8 hardware threads it demands the
// ISSUE's 3x; on smaller hosts (CI containers are often 1-2 cores, where
// 8 workers cannot beat 1) it only demands that concurrency not collapse
// throughput.  The committed baseline gates the ratio measured on the
// reference host.
//
// Results go to stdout and BENCH_server.json (override GCLUS_BENCH_OUT).
// Exits 1 ("BENCH FAILED") if any floor fails.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "server/engine.hpp"
#include "server/server.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

constexpr NodeId kNodes = 300000;
constexpr unsigned kDegree = 8;
constexpr std::uint64_t kGraphSeed = 42;
constexpr std::uint64_t kOracleSeed = 7;
// On a diameter-~7 expander CLUSTER2 covers the graph within a couple of
// growth rounds, so the cluster count saturates low no matter how many
// centers are activated; τ=600 lands at ~16 clusters — a quotient small
// enough for the linear-scan APSP fast path, which this bench thereby
// keeps on its hot restart path.
constexpr std::uint32_t kTau = 600;
constexpr std::uint64_t kQueries = 2000000;
// Loopback round trips cost ~3 orders of magnitude more than an engine
// lookup, so the networked mode uses a shorter stream to keep the bench
// under a minute while still measuring steady-state wire throughput.
constexpr std::uint64_t kNetQueries = 500000;
constexpr std::size_t kBatch = 512;
constexpr std::uint64_t kPerQueryQueries = 100000;  // batch=1 reference
constexpr double kMinBatchSpeedup = 3.0;
constexpr double kMinLoadSpeedup = 3.0;
constexpr double kZipf = 0.8;

[[noreturn]] void bench_failed(const std::string& why) {
  std::fprintf(stderr, "BENCH FAILED: %s\n", why.c_str());
  std::exit(1);
}

/// Zipfian sampler over ranks 0..n-1 (rank r ∝ (r+1)^-s) via CDF +
/// binary search — the skewed access pattern a shared service sees.
class ZipfSampler {
 public:
  ZipfSampler(NodeId n, double s) : cdf_(n) {
    double sum = 0.0;
    for (NodeId r = 0; r < n; ++r) {
      sum += std::pow(static_cast<double>(r) + 1.0, -s);
      cdf_[r] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }
  NodeId operator()(Rng& rng) const {
    const auto it =
        std::lower_bound(cdf_.begin(), cdf_.end(), rng.next_double());
    return static_cast<NodeId>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

std::vector<server::Query> make_stream(NodeId n, std::uint64_t count) {
  const ZipfSampler sample(n, kZipf);
  Rng rng(123);
  std::vector<server::Query> qs;
  qs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    server::Query q;
    q.u = sample(rng);
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 90) {
      q.kind = server::QueryKind::kApproxDistance;
      q.arg = sample(rng);
    } else if (roll < 95) {
      q.kind = server::QueryKind::kSameCluster;
      q.arg = sample(rng);
    } else {
      q.kind = server::QueryKind::kClusterNeighborhood;
      q.arg = 1;
    }
    qs.push_back(q);
  }
  return qs;
}

struct ServeResult {
  double wall_s = 0;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t shed = 0;
  std::vector<server::QueryResult> answers;
};

/// Drives `stream` through a server in batches of `batch` via the
/// blocking submit path — backpressure instead of shedding, so a healthy
/// run finishes with zero sheds (the floor below asserts it).
ServeResult serve(const server::QueryEngine& engine, std::size_t workers,
                  const std::vector<server::Query>& stream,
                  std::size_t batch) {
  server::ServerOptions opts;
  opts.workers = workers;
  opts.queue_depth = 128;
  server::QueryServer srv(engine, opts);

  ServeResult out;
  out.answers.reserve(stream.size());
  std::vector<server::QueryServer::Ticket> tickets;
  tickets.reserve(stream.size() / batch + 1);
  Timer t;
  for (std::size_t off = 0; off < stream.size(); off += batch) {
    const std::size_t end = std::min(stream.size(), off + batch);
    auto ticket = srv.submit({stream.begin() + static_cast<long>(off),
                              stream.begin() + static_cast<long>(end)});
    if (!ticket.ok()) bench_failed(ticket.status().to_string());
    tickets.push_back(std::move(ticket).value());
  }
  std::vector<double> latencies;
  latencies.reserve(tickets.size());
  for (const auto& ticket : tickets) {
    const auto& r = ticket.wait();
    out.answers.insert(out.answers.end(), r.begin(), r.end());
    latencies.push_back(ticket.latency_s());
  }
  out.wall_s = t.elapsed_s();
  srv.shutdown();
  out.qps = static_cast<double>(stream.size()) / out.wall_s;
  out.shed = srv.stats().shed_batches;
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double p) {
    return latencies.empty()
               ? 0.0
               : latencies[static_cast<std::size_t>(
                     p * static_cast<double>(latencies.size() - 1))] *
                     1e6;
  };
  out.p50_us = pct(0.5);
  out.p99_us = pct(0.99);
  return out;
}

/// Drives `stream` through a NetServer over loopback — one client
/// connection, strict request-response — measuring wire QPS and
/// per-batch round-trip latency.  Answers are collected for the
/// byte-identity check against in-process serving.
ServeResult serve_net(const server::QueryEngine& engine, std::size_t workers,
                      const std::vector<server::Query>& stream,
                      std::size_t batch) {
  server::ServerOptions opts;
  opts.workers = workers;
  opts.queue_depth = 128;
  server::QueryServer srv(engine, opts);
  auto nserver = net::NetServer::start(srv);
  if (!nserver.ok()) bench_failed(nserver.status().to_string());
  auto client = net::Client::connect((*nserver)->port());
  if (!client.ok()) bench_failed(client.status().to_string());

  ServeResult out;
  out.answers.reserve(stream.size());
  std::vector<double> latencies;
  latencies.reserve(stream.size() / batch + 1);
  Timer t;
  for (std::size_t off = 0; off < stream.size(); off += batch) {
    const std::size_t end = std::min(stream.size(), off + batch);
    Timer t_rt;
    const auto results =
        client->submit({stream.begin() + static_cast<long>(off),
                        stream.begin() + static_cast<long>(end)});
    if (!results.ok()) bench_failed(results.status().to_string());
    latencies.push_back(t_rt.elapsed_s());
    out.answers.insert(out.answers.end(), results->begin(), results->end());
  }
  out.wall_s = t.elapsed_s();
  (*nserver)->request_drain();
  (*nserver)->drain();
  srv.shutdown();
  out.qps = static_cast<double>(stream.size()) / out.wall_s;
  out.shed = srv.stats().shed_batches;
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double p) {
    return latencies.empty()
               ? 0.0
               : latencies[static_cast<std::size_t>(
                     p * static_cast<double>(latencies.size() - 1))] *
                     1e6;
  };
  out.p50_us = pct(0.5);
  out.p99_us = pct(0.99);
  return out;
}

}  // namespace

int main() {
  const Graph g = cached_expander(kNodes, kDegree, kGraphSeed);
  DistanceOracleOptions opts;
  opts.seed = kOracleSeed;
  opts.tau = kTau;
  std::printf("expander: n=%u m=%llu  tau=%u\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()), opts.tau);

  // --- build vs artifact restart. ---
  Timer t_build;
  auto built = server::QueryEngine::build(Graph(g), opts);
  if (!built.ok()) bench_failed(built.status().to_string());
  const double build_s = t_build.elapsed_s();

  const std::string artifact_path =
      (std::filesystem::temp_directory_path() / "gclus_bench_server.orc")
          .string();
  if (const Status st = built->save(artifact_path); !st.ok()) {
    bench_failed(st.to_string());
  }
  Timer t_load;
  auto loaded = server::QueryEngine::load(Graph(g), artifact_path);
  if (!loaded.ok()) bench_failed(loaded.status().to_string());
  const double load_s = t_load.elapsed_s();
  const double load_speedup = build_s / load_s;
  std::printf("oracle: %u clusters, max radius %u  build %.3fs  "
              "artifact load %.4fs (%.0fx)\n",
              built->num_clusters(), built->max_radius(), build_s, load_s,
              load_speedup);

  // --- restart byte-identity: fresh build vs mmap-ed artifact. ---
  const std::vector<server::Query> probe =
      make_stream(g.num_nodes(), 20000);
  server::QueryScratch scratch;
  std::vector<ClusterId> buf;
  bool restart_identical = loaded->loaded_from_artifact();
  for (const server::Query& q : probe) {
    if (server::execute_query(*built, q, scratch, buf) !=
        server::execute_query(*loaded, q, scratch, buf)) {
      restart_identical = false;
      break;
    }
  }

  // --- serve the stream at 1, 2, 8 workers (batched). ---
  const std::vector<server::Query> stream =
      make_stream(g.num_nodes(), kQueries);
  const ServeResult r1 = serve(*loaded, 1, stream, kBatch);
  const ServeResult r2 = serve(*loaded, 2, stream, kBatch);
  const ServeResult r8 = serve(*loaded, 8, stream, kBatch);
  const double worker_speedup = r8.qps / r1.qps;
  const bool deterministic =
      r1.answers == r2.answers && r1.answers == r8.answers;
  const std::uint64_t shed_total = r1.shed + r2.shed + r8.shed;

  // --- networked serving over loopback at 1, 2, 8 workers. ---
  const std::vector<server::Query> net_stream(
      stream.begin(), stream.begin() + kNetQueries);
  const ServeResult n1 = serve_net(*loaded, 1, net_stream, kBatch);
  const ServeResult n2 = serve_net(*loaded, 2, net_stream, kBatch);
  const ServeResult n8 = serve_net(*loaded, 8, net_stream, kBatch);
  const bool net_identical =
      n1.answers == n2.answers && n1.answers == n8.answers &&
      std::equal(n8.answers.begin(), n8.answers.end(), r1.answers.begin());

  // --- per-query submission reference (batch = 1). ---
  const std::vector<server::Query> small(stream.begin(),
                                         stream.begin() + kPerQueryQueries);
  const ServeResult rq = serve(*loaded, 8, small, 1);
  const double batch_speedup = r8.qps / rq.qps;

  TablePrinter table({"config", "workers", "batch", "qps", "p50_us",
                      "p99_us"});
  const auto row = [&](const char* name, std::size_t w, std::size_t b,
                       const ServeResult& r) {
    table.add_row({name, std::to_string(w), std::to_string(b),
                   fmt(r.qps, 0), fmt(r.p50_us, 0), fmt(r.p99_us, 0)});
  };
  row("batched", 1, kBatch, r1);
  row("batched", 2, kBatch, r2);
  row("batched", 8, kBatch, r8);
  row("loopback", 1, kBatch, n1);
  row("loopback", 2, kBatch, n2);
  row("loopback", 8, kBatch, n8);
  row("per-query", 8, 1, rq);
  table.print("Query service, 2M zipfian queries",
              "targets: batched@8 >= 3x per-query QPS; answers "
              "byte-identical across worker counts; zero sheds");
  std::printf("worker scaling 8w/1w: %.2fx (%u hardware threads)\n",
              worker_speedup, std::thread::hardware_concurrency());

  Json root = Json::object();
  root.set("bench", "server");
  root.set("graph", Json::object()
                        .set("generator", "expander")
                        .set("nodes", static_cast<std::uint64_t>(g.num_nodes()))
                        .set("edges", static_cast<std::uint64_t>(g.num_edges()))
                        .set("degree", static_cast<std::uint64_t>(kDegree))
                        .set("seed", kGraphSeed));
  root.set("tau", static_cast<std::uint64_t>(opts.tau));
  root.set("num_clusters",
           static_cast<std::uint64_t>(built->num_clusters()));
  root.set("build_s", build_s);
  root.set("artifact_load_s", load_s);
  root.set("artifact_load_speedup", load_speedup);
  root.set("restart_identical", restart_identical);
  root.set("queries_total", kQueries);
  root.set("qps_1w", r1.qps);
  root.set("qps_2w", r2.qps);
  root.set("qps_8w", r8.qps);
  root.set("p50_batch_latency_us_8w", r8.p50_us);
  root.set("p99_batch_latency_us_8w", r8.p99_us);
  root.set("worker_speedup_8w", worker_speedup);
  root.set("qps_perquery_8w", rq.qps);
  root.set("batch_speedup_vs_perquery", batch_speedup);
  root.set("deterministic_1_2_8", deterministic);
  root.set("shed_total", shed_total);
  root.set("net_queries_total", kNetQueries);
  root.set("net_qps_1w", n1.qps);
  root.set("net_qps_2w", n2.qps);
  root.set("net_qps_8w", n8.qps);
  root.set("net_p50_batch_latency_us_8w", n8.p50_us);
  root.set("net_p99_batch_latency_us_8w", n8.p99_us);
  root.set("net_identical", net_identical);
  root.set("hardware_threads",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()));

  const char* out_env = std::getenv("GCLUS_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_server.json";
  write_json_file(out_path, root);
  std::printf("\nwrote %s\n", out_path.c_str());
  std::remove(artifact_path.c_str());

  // Machine-adaptive worker floor: the full 3x only where 8 workers have
  // 8 threads to run on; elsewhere concurrency must merely not collapse.
  const double worker_floor =
      std::thread::hardware_concurrency() >= 8 ? 3.0 : 0.4;
  if (batch_speedup < kMinBatchSpeedup || load_speedup < kMinLoadSpeedup ||
      worker_speedup < worker_floor || !restart_identical || !deterministic ||
      !net_identical || shed_total != 0) {
    char why[512];
    std::snprintf(why, sizeof(why),
                  "batch_speedup=%.2f (need >= %.1f) load_speedup=%.2f "
                  "(need >= %.1f) worker_speedup=%.2f (need >= %.1f) "
                  "restart_identical=%d deterministic=%d net_identical=%d "
                  "shed_total=%llu",
                  batch_speedup, kMinBatchSpeedup, load_speedup,
                  kMinLoadSpeedup, worker_speedup, worker_floor,
                  restart_identical, deterministic, net_identical,
                  static_cast<unsigned long long>(shed_total));
    bench_failed(why);
  }
  return 0;
}
