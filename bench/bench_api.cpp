// Unified-API benchmark — quantifies what Workspace reuse buys when the
// same graph is decomposed repeatedly (the serving scenario, and every
// multi-trial bench loop in this repo).
//
// On the 1.2M-edge expander of bench_decomposition, every workload runs
// two ways with identical seeds:
//   * cold — no workspace: every run allocates and first-touches its own
//     scratch (exactly the pre-Workspace engine behavior);
//   * warm — one shared Workspace across runs (one untimed priming run,
//     then timed reps against warm buffers).
// Workloads: the raw growth primitive, parallel BFS, and the registry
// decomposition algorithms (constructed by name — no per-algorithm entry
// points here).  Cold and warm must produce byte-identical results; the
// bench aborts otherwise, making it a reuse-correctness check as well.
//
// Results go to stdout and BENCH_api.json (override with GCLUS_BENCH_OUT):
// per-workload cold/warm minima and the speedup, plus the headline
// geometric mean.  Reps are interleaved cold/warm so a transient load
// spike on a shared machine hits both variants roughly equally.
//
// Allocator methodology: the bench pins glibc's mmap threshold to its
// initial 128 KiB (disabling the dynamic bump-on-free heuristic), so every
// node-sized scratch buffer really is mapped on allocation and unmapped on
// free.  Without the pin, a tight single-process loop lets glibc hand each
// "cold" run the previous run's still-warm pages, and the bench would be
// measuring the allocator's free-list luck instead of the engine.  A
// long-lived serving process does not get that luck — concurrent requests
// churn the arenas, and decay-based allocators (jemalloc/tcmalloc) return
// idle pages to the OS — which is precisely the cost the Workspace exists
// to make deterministic.  (Measured here: GrowthState construction alone
// is ~6x cheaper against a warm Workspace than against fresh mappings.)
#include <cmath>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "api/registry.hpp"
#include "api/workspace.hpp"
#include "bench_common.hpp"
#include "common/check.hpp"
#include "common/timer.hpp"
#include "core/growth.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "par/thread_pool.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

constexpr NodeId kNodes = 300000;
constexpr unsigned kDegree = 8;
constexpr std::uint64_t kSeed = 42;
constexpr int kReps = 5;

struct Workload {
  std::string name;
  std::string params;  // human-readable parameter summary
  // Runs once; result digest (assignment/distances) for the equality check.
  std::function<std::vector<std::uint32_t>(Workspace*)> run;
};

struct Measurement {
  double cold_s = 0.0;
  double warm_s = 0.0;
  [[nodiscard]] double speedup() const {
    return warm_s > 0.0 ? cold_s / warm_s : 0.0;
  }
};

Measurement measure(const Workload& w, Workspace& workspace) {
  // Priming: one untimed warm run fills the workspace buffers; one
  // untimed cold run equalizes cache/allocator state between variants.
  const std::vector<std::uint32_t> reference = w.run(nullptr);
  const std::vector<std::uint32_t> reused = w.run(&workspace);
  GCLUS_CHECK(reference == reused,
              "workspace-backed run diverged from cold run for ", w.name);

  Measurement m;
  m.cold_s = m.warm_s = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      Timer t;
      const auto digest = w.run(nullptr);
      const double s = t.elapsed_s();
      if (s < m.cold_s) m.cold_s = s;
      GCLUS_CHECK(digest == reference, "cold rep diverged for ", w.name);
    }
    {
      Timer t;
      const auto digest = w.run(&workspace);
      const double s = t.elapsed_s();
      if (s < m.warm_s) m.warm_s = s;
      GCLUS_CHECK(digest == reference, "warm rep diverged for ", w.name);
    }
  }
  return m;
}

}  // namespace

int main() {
#if defined(__GLIBC__)
  mallopt(M_MMAP_THRESHOLD, 128 * 1024);  // see header comment
#endif
  const Graph g = cached_expander(kNodes, kDegree, kSeed);
  ThreadPool& pool = ThreadPool::global();
  std::printf("expander: n=%u m=%llu threads=%zu reps=%d\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()),
              pool.num_threads(), kReps);

  const auto registry_workload = [&](const std::string& algo,
                                     const AlgoParams& params,
                                     const std::string& label) {
    return Workload{
        algo, label, [&, algo, params](Workspace* ws) {
          RunContext ctx;
          ctx.seed = kSeed;
          ctx.pool = &pool;
          ctx.workspace = ws;
          return registry().run(algo, g, params, ctx).assignment;
        }};
  };

  std::vector<Workload> workloads;
  // The raw serving primitive: grow a fixed center set to full coverage.
  workloads.push_back(
      {"growth", "64 centers, full coverage", [&](Workspace* ws) {
         GrowthState state(g, pool, default_growth_options(), ws);
         for (NodeId i = 0; i < 64; ++i) {
           state.add_center(
               static_cast<NodeId>(std::uint64_t{i} * g.num_nodes() / 64));
         }
         while (state.covered_count() < g.num_nodes()) {
           if (state.frontier_empty()) state.add_singletons_for_uncovered();
           state.step();
         }
         return std::move(state).finish().assignment;
       }});
  workloads.push_back({"bfs", "single source", [&](Workspace* ws) {
                         return parallel_bfs(pool, g, 0, nullptr,
                                             default_growth_options(), nullptr,
                                             ws);
                       }});
  workloads.push_back(registry_workload(
      "cluster", AlgoParams{}.set("tau", std::uint64_t{16}), "tau=16"));
  workloads.push_back(registry_workload(
      "cluster2", AlgoParams{}.set("tau", std::uint64_t{4}), "tau=4"));
  workloads.push_back(
      registry_workload("mpx", AlgoParams{}.set("beta", 0.5), "beta=0.5"));
  workloads.push_back(registry_workload(
      "random_centers", AlgoParams{}.set("k", std::uint64_t{64}), "k=64"));

  Workspace workspace;
  TablePrinter table({"workload", "params", "cold_s", "warm_s", "speedup"});
  Json runs = Json::array();
  double log_sum = 0.0;
  for (const Workload& w : workloads) {
    const Measurement m = measure(w, workspace);
    log_sum += std::log(m.speedup());
    table.add_row({w.name, w.params, fmt(m.cold_s, 4), fmt(m.warm_s, 4),
                   fmt(m.speedup(), 2) + "x"});
    runs.push(Json::object()
                  .set("workload", w.name)
                  .set("params", w.params)
                  .set("cold_s", m.cold_s)
                  .set("warm_s", m.warm_s)
                  .set("speedup_warm_vs_cold", m.speedup()));
  }
  const double geomean = std::exp(log_sum / workloads.size());
  table.print("Workspace reuse: cold vs warm (min of " +
                  std::to_string(kReps) + " interleaved reps)",
              "cold = fresh allocation per run; warm = shared Workspace.  "
              "geomean speedup: " + fmt(geomean, 2) + "x");
  std::printf("workspace retains %.1f MiB across %zu growth / %zu bfs "
              "acquires\n",
              static_cast<double>(workspace.bytes()) / (1024.0 * 1024.0),
              workspace.growth_acquires(), workspace.bfs_acquires());

  Json root = Json::object();
  root.set("bench", "api");
  root.set("graph",
           Json::object()
               .set("generator", "expander")
               .set("nodes", static_cast<std::uint64_t>(g.num_nodes()))
               .set("edges", static_cast<std::uint64_t>(g.num_edges()))
               .set("degree", static_cast<std::uint64_t>(kDegree))
               .set("seed", static_cast<std::uint64_t>(kSeed)));
  root.set("threads", static_cast<std::uint64_t>(pool.num_threads()));
  root.set("reps", static_cast<std::uint64_t>(kReps));
  root.set("runs", std::move(runs));
  root.set("workspace_bytes", static_cast<std::uint64_t>(workspace.bytes()));
  root.set("speedup_geomean_warm_vs_cold", geomean);

  const char* out_env = std::getenv("GCLUS_BENCH_OUT");
  const std::string out_path = out_env != nullptr ? out_env : "BENCH_api.json";
  write_json_file(out_path, root);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
