// Out-of-core MR shuffle benchmark — the perf/compliance anchor for the
// engine's scale axis.
//
// On the 1.2M-edge 8-regular expander (the same graph as
// bench_decomposition) this demonstrates the two claims of the external
// shuffle:
//
//   1. Bounded memory: CLUSTER(τ) in MR rounds completes with the shuffle
//      buffer budget capped at 1/16 of the input's edge-list bytes, never
//      exceeds that budget (spill_strict aborts the bench if it does),
//      and produces the byte-identical partition of an in-memory run.
//
//   2. Combiners pay: MPX's min-fold claim combiner cuts shuffle volume
//      by ≥1.5x (the bench prints and records the measured factor, and
//      the spilled-bytes reduction under a budget).
//
// Results go to stdout as paper-style tables and to BENCH_mr.json
// (override with GCLUS_BENCH_OUT).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "mapreduce/engine.hpp"
#include "mr_algos/mr_cluster.hpp"
#include "mr_algos/mr_mpx.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

constexpr NodeId kNodes = 300000;
constexpr unsigned kDegree = 8;
constexpr std::uint64_t kGraphSeed = 42;
constexpr std::uint64_t kRunSeed = 7;
constexpr std::uint32_t kTau = 16;

struct MrRun {
  Clustering clustering;
  mr::Metrics metrics;
  double wall_s = 0.0;
};

MrRun run_cluster(const Graph& g, std::uint64_t spill_bytes, bool combiners,
                  bool strict) {
  mr::Config cfg;
  cfg.spill_memory_bytes = spill_bytes;
  cfg.enable_combiners = combiners;
  cfg.spill_strict = strict;
  mr::Engine engine(cfg);
  mr_algos::MrClusterOptions o;
  o.seed = kRunSeed;
  Timer t;
  MrRun run;
  run.clustering = mr_algos::mr_cluster(engine, g, kTau, o).clustering;
  run.wall_s = t.elapsed_s();
  run.metrics = engine.metrics();
  return run;
}

MrRun run_mpx(const Graph& g, std::uint64_t spill_bytes, bool combiners) {
  mr::Config cfg;
  cfg.spill_memory_bytes = spill_bytes;
  cfg.enable_combiners = combiners;
  mr::Engine engine(cfg);
  Timer t;
  MrRun run;
  run.clustering = mr_algos::mr_mpx(engine, g, 0.5, kRunSeed).clustering;
  run.wall_s = t.elapsed_s();
  run.metrics = engine.metrics();
  return run;
}

Json metrics_json(const MrRun& r) {
  return Json::object()
      .set("wall_s", r.wall_s)
      .set("rounds", static_cast<std::uint64_t>(r.metrics.rounds))
      .set("pairs_shuffled", r.metrics.pairs_shuffled)
      .set("bytes_spilled", r.metrics.bytes_spilled)
      .set("spill_runs", r.metrics.spill_runs)
      .set("runs_merged", r.metrics.runs_merged)
      .set("peak_buffer_bytes", r.metrics.peak_shuffle_buffer_bytes)
      .set("peak_merge_buffer_bytes", r.metrics.peak_merge_buffer_bytes)
      .set("combiner_pairs_in", r.metrics.combiner_pairs_in)
      .set("combiner_pairs_out", r.metrics.combiner_pairs_out)
      .set("combiner_reduction", r.metrics.combiner_reduction())
      .set("clusters",
           static_cast<std::uint64_t>(r.clustering.num_clusters()));
}

bool same_partition(const MrRun& a, const MrRun& b) {
  return a.clustering.assignment == b.clustering.assignment &&
         a.clustering.centers == b.clustering.centers &&
         a.clustering.dist_to_center == b.clustering.dist_to_center;
}

}  // namespace

int main() {
  const Graph g = cached_expander(kNodes, kDegree, kGraphSeed);
  // "Input size" = the graph as the shuffle sees it: one claim pair per
  // directed edge.
  const std::uint64_t input_bytes =
      g.num_half_edges() * sizeof(std::pair<NodeId, ClusterId>);
  const std::uint64_t budget = input_bytes / 16;
  std::printf("expander: n=%u m=%llu  input=%llu bytes  budget=%llu bytes "
              "(1/16)\n",
              g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(input_bytes),
              static_cast<unsigned long long>(budget));

  // --- CLUSTER: in-memory reference vs budgeted out-of-core run. ---
  const MrRun in_memory = run_cluster(g, mr::kSpillUnbounded,
                                      /*combiners=*/true, /*strict=*/false);
  const MrRun spilled = run_cluster(g, budget, true, /*strict=*/true);
  const MrRun spilled_nocombine = run_cluster(g, budget, false, true);
  const bool identical = same_partition(in_memory, spilled) &&
                         same_partition(in_memory, spilled_nocombine);
  // Both sides of the shuffle must respect the budget: map-phase buffers
  // and the reduce-phase merge cursors.
  const bool within_budget =
      spilled.metrics.peak_shuffle_buffer_bytes <= budget &&
      spilled.metrics.peak_merge_buffer_bytes <= budget;

  TablePrinter cluster_table({"mode", "wall_s", "bytes spilled", "runs",
                              "peak buffer", "combine x"});
  const auto add_cluster_row = [&](const char* mode, const MrRun& r) {
    cluster_table.add_row({mode, fmt(r.wall_s, 3),
                           fmt_u(r.metrics.bytes_spilled),
                           fmt_u(r.metrics.spill_runs),
                           fmt_u(r.metrics.peak_shuffle_buffer_bytes),
                           fmt(r.metrics.combiner_reduction(), 2)});
  };
  add_cluster_row("in-memory", in_memory);
  add_cluster_row("spill 1/16", spilled);
  add_cluster_row("spill 1/16, no combine", spilled_nocombine);
  cluster_table.print(
      "MR CLUSTER(16) under a 1/16-input shuffle budget",
      std::string("partitions identical: ") + (identical ? "yes" : "NO") +
          "; peak within budget: " + (within_budget ? "yes" : "NO"));

  // --- MPX: combiner shuffle-volume reduction. ---
  const MrRun mpx_on = run_mpx(g, mr::kSpillUnbounded, /*combiners=*/true);
  const MrRun mpx_off = run_mpx(g, mr::kSpillUnbounded, false);
  const bool mpx_identical = same_partition(mpx_on, mpx_off);
  const double reduction = mpx_on.metrics.combiner_reduction();
  TablePrinter mpx_table({"combiners", "wall_s", "pairs in", "pairs out",
                          "reduction"});
  mpx_table.add_row({"on", fmt(mpx_on.wall_s, 3),
                     fmt_u(mpx_on.metrics.combiner_pairs_in),
                     fmt_u(mpx_on.metrics.combiner_pairs_out),
                     fmt(reduction, 2)});
  mpx_table.add_row({"off", fmt(mpx_off.wall_s, 3), "0", "0", "1.00"});
  mpx_table.print("MR MPX(0.5) combiner shuffle reduction",
                  "min-fold claim combiner; target >= 1.5x; partitions "
                  "identical: " + std::string(mpx_identical ? "yes" : "NO"));

  Json root = Json::object();
  root.set("bench", "mr_spill");
  root.set("graph",
           Json::object()
               .set("generator", "expander")
               .set("nodes", static_cast<std::uint64_t>(g.num_nodes()))
               .set("edges", static_cast<std::uint64_t>(g.num_edges()))
               .set("degree", static_cast<std::uint64_t>(kDegree))
               .set("seed", kGraphSeed));
  root.set("input_bytes", input_bytes);
  root.set("spill_budget_bytes", budget);
  root.set("cluster_in_memory", metrics_json(in_memory));
  root.set("cluster_spilled", metrics_json(spilled));
  root.set("cluster_spilled_no_combine", metrics_json(spilled_nocombine));
  root.set("cluster_partitions_identical", identical);
  root.set("cluster_within_budget", within_budget);
  root.set("mpx_combiners_on", metrics_json(mpx_on));
  root.set("mpx_combiners_off", metrics_json(mpx_off));
  root.set("mpx_partitions_identical", mpx_identical);
  root.set("mpx_combiner_reduction", reduction);

  const char* out_env = std::getenv("GCLUS_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_mr.json";
  write_json_file(out_path, root);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!identical || !within_budget || !mpx_identical || reduction < 1.5) {
    std::fprintf(stderr, "BENCH FAILED: identical=%d within_budget=%d "
                         "mpx_identical=%d reduction=%.2f\n",
                 identical, within_budget, mpx_identical, reduction);
    return 1;
  }
  return 0;
}
