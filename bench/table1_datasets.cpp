// Table 1 — characteristics of the benchmark graphs.
//
// Paper values (for shape comparison; our stand-ins are scaled down, see
// DESIGN.md §3):
//   twitter      39,774,960 nodes  684,451,342 edges  Δ = 16
//   livejournal   3,997,962 nodes   34,681,189 edges  Δ = 21
//   roads-CA      1,965,206 nodes    2,766,607 edges  Δ = 849
//   roads-PA      1,088,092 nodes    1,541,898 edges  Δ = 786
//   roads-TX      1,379,917 nodes    1,921,660 edges  Δ = 1054
//   mesh1000      1,000,000 nodes    1,998,000 edges  Δ = 1998
//
// The google-benchmark section times dataset generation and the exact
// diameter computation (iFUB), the two fixed costs every experiment pays.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "graph/doubling.hpp"
#include "graph/properties.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

void print_table1() {
  TablePrinter table({"dataset", "paper dataset", "nodes", "edges",
                      "diameter", "avg deg", "max deg", "doubling dim ~"});
  for (const BenchDataset* d : all_bench_datasets()) {
    const auto stats = degree_stats(d->graph());
    DoublingOptions dopts;
    dopts.seed = 5;
    dopts.center_samples = 4;
    // Cap the tested radii on the huge-diameter graphs to keep the
    // greedy covers affordable; small radii dominate the estimate anyway.
    dopts.max_radius = std::min<Dist>(32, std::max<Dist>(1, d->diameter / 4));
    const DoublingEstimate dd = estimate_doubling_dimension(d->graph(), dopts);
    table.add_row({d->name(), d->dataset.paper_name,
                   fmt_u(d->graph().num_nodes()), fmt_u(d->graph().num_edges()),
                   fmt_u(d->diameter), fmt(stats.avg_degree, 2),
                   fmt_u(stats.max_degree), fmt(dd.dimension, 1)});
  }
  table.print(
      "Table 1: characteristics of the benchmark graphs",
      "Synthetic stand-ins at GCLUS_WORKLOAD_SCALE=" +
          fmt(workloads::workload_scale(), 2) +
          " (paper originals in the source header).  The doubling "
          "dimension estimate (greedy ball covers, Definition 2) is the b "
          "of Lemma 1: low for road/mesh, high for the social graphs.");
}

void BM_DatasetGeneration(benchmark::State& state,
                          const std::string& name) {
  for (auto _ : state) {
    workloads::Dataset d = workloads::load_dataset(name);
    benchmark::DoNotOptimize(d.graph.num_edges());
  }
}

void BM_ExactDiameter(benchmark::State& state, const std::string& name) {
  const BenchDataset& d = load_bench_dataset(name);
  std::size_t bfs_runs = 0;
  for (auto _ : state) {
    const ExactDiameterResult r = exact_diameter(d.graph());
    bfs_runs = r.bfs_runs;
    benchmark::DoNotOptimize(r.diameter);
  }
  state.counters["bfs_runs"] = static_cast<double>(bfs_runs);
}

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  for (const auto& name : gclus::workloads::dataset_names()) {
    benchmark::RegisterBenchmark(("generate/" + name).c_str(),
                                 BM_DatasetGeneration, name)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(("exact_diameter/" + name).c_str(),
                                 BM_ExactDiameter, name)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
