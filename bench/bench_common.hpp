// Shared infrastructure for the benchmark harness: a plain-text table
// printer that mirrors the paper's table layout, cached dataset loading
// with exact ground-truth diameters, and the modeled-time convention.
//
// Modeled time.  The paper's running times come from a 16-host Spark
// cluster where every MR round pays scheduling + shuffle latency; on this
// shared-memory emulator the per-round overhead is microseconds, which
// would hide exactly the effect the paper measures.  Benches therefore
// report, alongside raw wall time, a modeled time
//     modeled = wall + rounds × round_latency
// with round_latency defaulting to 0.3 s (typical Spark round overhead at
// the paper's scale), overridable via GCLUS_ROUND_LATENCY.  Round counts
// and communication volumes are measured, never modeled.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/registry.hpp"
#include "api/run_context.hpp"
#include "core/clustering.hpp"
#include "graph/graph.hpp"
#include "graph/properties.hpp"
#include "workloads/datasets.hpp"

namespace gclus::bench {

/// A loaded dataset plus its exact diameter (ground truth for the tables).
struct BenchDataset {
  workloads::Dataset dataset;
  Dist diameter = 0;

  const Graph& graph() const { return dataset.graph; }
  const std::string& name() const { return dataset.name; }
};

/// Loads `name` and computes its exact diameter (cached per process).
const BenchDataset& load_bench_dataset(const std::string& name);

/// The benches' synthetic expander, served through the dataset cache
/// (workloads::cached_graph) so CI runs with GCLUS_DATASET_CACHE_DIR set
/// skip the ~seconds of regeneration per bench binary.
Graph cached_expander(NodeId n, unsigned degree, std::uint64_t seed);

/// All registry datasets with diameters, canonical order.
std::vector<const BenchDataset*> all_bench_datasets();

/// Per-round latency used for modeled time (GCLUS_ROUND_LATENCY, default
/// 0.3 seconds).
double round_latency_s();

/// Paper-style fixed-width table printing.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(const std::string& title, const std::string& caption) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
std::string fmt(double v, int digits = 2);
std::string fmt_u(std::uint64_t v);

/// Minimal ordered JSON document builder for bench artifacts
/// (BENCH_*.json files the perf-trajectory tooling consumes).  Supports
/// objects, arrays, numbers, strings, and booleans; insertion order is
/// preserved.
class Json {
 public:
  static Json object();
  static Json array();

  /// Object field setters (chainable).  Using set() on a non-object or
  /// push() on a non-array aborts via GCLUS_CHECK.
  Json& set(const std::string& key, Json v);
  Json& set(const std::string& key, double v);
  Json& set(const std::string& key, std::uint64_t v);
  Json& set(const std::string& key, const std::string& v);
  Json& set(const std::string& key, const char* v);
  Json& set(const std::string& key, bool v);

  /// Array element appenders (chainable).
  Json& push(Json v);

  /// Serializes with 2-space indentation.
  [[nodiscard]] std::string dump() const;

 private:
  enum class Kind { kObject, kArray, kNumber, kInteger, kString, kBool };
  Kind kind_ = Kind::kObject;
  double number_ = 0.0;
  std::uint64_t integer_ = 0;
  bool bool_ = false;
  std::string string_;
  std::vector<Json> elements_;                           // kArray
  std::vector<std::pair<std::string, Json>> members_;    // kObject

  void dump_to(std::string& out, int depth) const;
};

/// Writes `root` to `path` (plus a trailing newline).  Aborts on I/O
/// failure — bench artifacts must never be silently incomplete.
void write_json_file(const std::string& path, const Json& root);

/// Constructs a clustering through the algorithm registry — the unified
/// API.  All bench binaries route their registry-covered algorithms
/// through here, so a bench never hardcodes a per-algorithm entry point;
/// only algorithms outside the registry's Graph->Clustering shape (the MR
/// emulations, the truly-weighted pipeline, raw center-set k-center
/// baselines) still call their modules directly.  `ctx` is taken by value:
/// benches usually want a fresh context per run anyway, and the copy makes
/// the call safe inside benchmark loops.
Clustering run_registry(const std::string& algo, const Graph& g,
                        const AlgoParams& params, RunContext ctx = {});

/// Granularity choice used by Tables 2/3: the paper targets ~n/1000
/// clusters on small-diameter graphs and ~n/100 on large-diameter graphs
/// (§6.1); τ is back-solved from the Theorem-1 count ~ 4·τ·log²n... in
/// practice the constant eats most of it, so we target count/log²n.
std::uint32_t tau_for_target_clusters(const Graph& g, double target_clusters);

}  // namespace gclus::bench
