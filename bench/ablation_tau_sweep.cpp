// Ablation A — τ sensitivity (the Lemma-1 shape).
//
// On the mesh (doubling dimension b = 2) Lemma 1 predicts the maximum
// cluster radius R_ALG = O((Δ/τ^{1/b})·log n): doubling τ should shrink
// the radius by roughly √2.  On a road network (empirically b ≈ 2) the
// same shape should appear.  The sweep reports, per τ: cluster count,
// max radius, the normalized product r·τ^{1/2} (flat ⇒ Lemma 1 shape),
// and the growth steps (the round-cost driver of Lemma 3).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "core/cluster.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

constexpr std::uint64_t kSeed = 77;
constexpr std::uint32_t kTaus[] = {1, 2, 4, 8, 16, 32, 64, 128};

void print_sweep(const BenchDataset& d) {
  TablePrinter table({"tau", "clusters", "max radius r", "r*sqrt(tau)",
                      "growth steps", "D"});
  for (const std::uint32_t tau : kTaus) {
    RunContext ctx;
    ctx.seed = kSeed;
    const Clustering c = run_registry(
        "cluster", d.graph(), AlgoParams{}.set("tau", std::uint64_t{tau}),
        ctx);
    table.add_row({fmt_u(tau), fmt_u(c.num_clusters()),
                   fmt_u(c.max_radius()),
                   fmt(c.max_radius() * std::sqrt(static_cast<double>(tau)),
                       1),
                   fmt_u(c.growth_steps), fmt_u(d.diameter)});
  }
  table.print("Ablation A: tau sweep on " + d.name(),
              "Lemma 1 with doubling dimension b=2 predicts r ~ "
              "(D/sqrt(tau))*log n, i.e. r*sqrt(tau) roughly flat.");
}

void BM_ClusterAtTau(benchmark::State& state, const std::string& name) {
  const BenchDataset& d = load_bench_dataset(name);
  const auto tau = static_cast<std::uint32_t>(state.range(0));
  RunContext ctx;
  ctx.seed = kSeed;
  const AlgoParams params = AlgoParams{}.set("tau", std::uint64_t{tau});
  Dist radius = 0;
  for (auto _ : state) {
    const Clustering c = run_registry("cluster", d.graph(), params, ctx);
    radius = c.max_radius();
    benchmark::DoNotOptimize(c.assignment.data());
  }
  state.counters["max_radius"] = radius;
}

}  // namespace

int main(int argc, char** argv) {
  print_sweep(load_bench_dataset("mesh"));
  print_sweep(load_bench_dataset("road-a"));
  for (const std::string name : {"mesh", "road-a"}) {
    auto* b = benchmark::RegisterBenchmark(("cluster_tau/" + name).c_str(),
                                           BM_ClusterAtTau, name);
    for (const std::uint32_t tau : {1u, 8u, 64u}) {
      b->Arg(static_cast<int>(tau));
    }
    b->Unit(benchmark::kMillisecond)->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
