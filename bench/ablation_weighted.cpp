// Ablation F — the §7 weighted extension in action.
//
// For each road-style dataset, lift the topology to travel-time weights
// (1..5 per segment) and compare the weighted decomposition against the
// hop-based CLUSTER on the same topology: the weighted variant's clusters
// are compact in *time* (bounded weighted radius) at a modest hop-radius
// premium — exactly the two quantities §7 says the extension must control
// together.  The weighted diameter estimate is validated against the
// exact weighted diameter.
//
// This bench calls weighted_cluster directly rather than through the
// registry: the registry's uniform surface is Graph -> Clustering, and the
// whole point here is the *truly weighted* WeightedGraph pipeline (the
// registry's "weighted_cluster" entry runs the unit-weight lift).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/weighted_cluster.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

constexpr std::uint64_t kSeed = 717;

WeightedGraph travel_time_version(const Graph& g) {
  std::vector<std::tuple<NodeId, NodeId, Weight>> edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) edges.emplace_back(u, v, 1 + hash_combine(kSeed, u, v) % 5);
    }
  }
  return WeightedGraph::from_edges(g.num_nodes(), std::move(edges));
}

void run_dataset(const BenchDataset& d) {
  const WeightedGraph wg = travel_time_version(d.graph());
  const std::uint32_t tau =
      tau_for_target_clusters(d.graph(), d.graph().num_nodes() / 100.0);

  WeightedClusterOptions wopts;
  wopts.seed = kSeed;
  const WeightedClustering wc = weighted_cluster(wg, tau, wopts);

  ClusterOptions copts;
  copts.seed = kSeed;
  const Clustering hops_only = cluster(d.graph(), tau, copts);

  // Weighted radius of the hop-based clustering: worst travel time to a
  // center when clusters ignore weights.  Upper-bounded by summing the
  // weighted claim-chain; here we evaluate it exactly per member via the
  // chain weights (dist recorded per hop, weight looked up per edge is
  // not stored — use the conservative max-weight bound instead).
  const Weight hop_weighted_bound =
      static_cast<Weight>(hops_only.max_radius()) * 5;

  TablePrinter table({"decomposition", "clusters", "weighted radius",
                      "hop radius", "quotient D'_w", "D_w lower bound"});
  const WeightedDiameterApprox wa =
      approximate_weighted_diameter(wg, tau, wopts);
  // Exact weighted diameter needs n Dijkstras; a weighted double sweep
  // (2 Dijkstras) gives the tight-in-practice lower bound instead.
  Weight lower = 0;
  {
    const auto d0 = dijkstra(wg, 0);
    NodeId far = 0;
    for (NodeId v = 0; v < wg.num_nodes(); ++v) {
      if (d0[v] != kInfWeight && d0[v] > d0[far]) far = v;
    }
    const auto d1 = dijkstra(wg, far);
    for (const Weight w : d1) {
      if (w != kInfWeight) lower = std::max(lower, w);
    }
  }
  table.add_row({"weighted CLUSTER (this §7 ext.)",
                 fmt_u(wc.num_clusters()),
                 fmt_u(wc.max_weighted_radius()),
                 fmt_u(wc.max_hop_radius()), fmt_u(wa.upper_bound),
                 fmt_u(lower)});
  table.add_row({"hop CLUSTER on same topology",
                 fmt_u(hops_only.num_clusters()),
                 "<= " + fmt_u(hop_weighted_bound) + " (bound)",
                 fmt_u(hops_only.max_radius()), "-", fmt_u(lower)});
  table.print("Ablation F: weighted decomposition on " + d.name(),
              "Travel-time weights 1..5; the weighted variant controls "
              "time-compactness directly, the hop variant only via the "
              "max-weight bound.");
}

void BM_WeightedCluster(benchmark::State& state, const std::string& name) {
  const BenchDataset& d = load_bench_dataset(name);
  const WeightedGraph wg = travel_time_version(d.graph());
  const std::uint32_t tau =
      tau_for_target_clusters(d.graph(), d.graph().num_nodes() / 100.0);
  WeightedClusterOptions opts;
  opts.seed = kSeed;
  Weight radius = 0;
  for (auto _ : state) {
    const WeightedClustering c = weighted_cluster(wg, tau, opts);
    radius = c.max_weighted_radius();
    benchmark::DoNotOptimize(c.assignment.data());
  }
  state.counters["weighted_radius"] = static_cast<double>(radius);
}

}  // namespace

int main(int argc, char** argv) {
  run_dataset(load_bench_dataset("road-a"));
  run_dataset(load_bench_dataset("mesh"));
  for (const std::string name : {"road-a", "mesh"}) {
    benchmark::RegisterBenchmark(("weighted_cluster/" + name).c_str(),
                                 BM_WeightedCluster, name)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
