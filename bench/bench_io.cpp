// Ingestion benchmark — the perf/compliance anchor for the storage layer.
//
// On the 1.2M-edge 8-regular expander (the same graph as
// bench_decomposition) this demonstrates the three claims of the CSR v2
// ingestion subsystem:
//
//   1. Parallel parse: the chunked edge-list parser at 8 threads beats
//      the serial istream parser by ≥4x, and its output is byte-identical
//      at 1, 2, and 8 threads (and to the serial parser).
//
//   2. Binary beats text: loading the CSR v2 file — checksum-verified —
//      is ≥10x faster than parsing the text edge list, with the mmap
//      zero-copy path at least matching the copying read() path.
//
//   3. Storage-mode transparency: a registry decomposition on the
//      mmap-backed graph is byte-identical to the owning graph.
//
//   4. Compressed CSR reach: the Rice-coded adjacency file is >= 2x
//      smaller than plain CSR v2, the encoder is byte-identical at 1, 2,
//      and 8 threads, a push-mode registry decomposition pays <= 25%
//      decode overhead over plain CSR, and compressed-mode outputs are
//      byte-identical to the plain run at every thread count.  The
//      degree-descending relabeling's pull-mode locality win is measured
//      on its own (plain graph vs physically relabeled plain graph), so
//      the report separates layout gains from decode costs.
//
// Results go to stdout as paper-style tables and to BENCH_io.json
// (override with GCLUS_BENCH_OUT).  Exits nonzero if any claim fails.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/run_context.hpp"
#include "bench_common.hpp"
#include "common/timer.hpp"
#include "graph/bfs.hpp"
#include "graph/compressed.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "par/thread_pool.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

constexpr NodeId kNodes = 300000;
constexpr unsigned kDegree = 8;
constexpr std::uint64_t kGraphSeed = 42;
constexpr double kMinParallelSpeedup = 4.0;
constexpr double kMinMmapSpeedup = 10.0;
constexpr double kMinCompressionRatio = 2.0;
constexpr double kMaxDecodeOverhead = 0.25;

// Skewed graph for the relabeling ablation: pull-mode locality only moves
// when the degree distribution is heavy-tailed, so the 8-regular expander
// (where degree order is the identity) cannot show it.
constexpr NodeId kSkewNodes = 200000;
constexpr NodeId kSkewAttach = 4;
constexpr std::uint64_t kSkewSeed = 11;

/// Best-of-N wall time for a loader; every invocation's result must
/// satisfy `check` (so timing never trades off correctness).
template <typename Fn, typename Check>
double best_of(int reps, const Fn& fn, const Check& check) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    auto result = fn();
    best = std::min(best, t.elapsed_s());
    check(result);
  }
  return best;
}

bool same_clustering(const Clustering& a, const Clustering& b) {
  return a.assignment == b.assignment && a.centers == b.centers &&
         a.dist_to_center == b.dist_to_center;
}

}  // namespace

int main() {
  const Graph g = cached_expander(kNodes, kDegree, kGraphSeed);
  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string txt_path = dir + "/gclus_bench_io.txt";
  const std::string csr_path = dir + "/gclus_bench_io.csr2";

  Timer t_write_txt;
  io::write_edge_list_file(g, txt_path);
  const double write_text_s = t_write_txt.elapsed_s();
  Timer t_write_csr;
  io::write_csr_file(g, csr_path);
  const double write_csr_s = t_write_csr.elapsed_s();
  const auto text_bytes =
      static_cast<std::uint64_t>(std::filesystem::file_size(txt_path));
  const auto csr_bytes =
      static_cast<std::uint64_t>(std::filesystem::file_size(csr_path));

  std::printf("expander: n=%u m=%llu  text=%llu bytes  csr2=%llu bytes\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(text_bytes),
              static_cast<unsigned long long>(csr_bytes));

  // Reference numbering for equality checks: the serial parser's output.
  const Graph reference = [&] {
    std::ifstream in(txt_path);
    return io::read_edge_list(in);
  }();
  const auto expect_same = [](const Graph& h, const Graph& want,
                              const char* what) {
    if (!std::ranges::equal(h.offsets(), want.offsets()) ||
        !std::ranges::equal(h.neighbor_array(), want.neighbor_array())) {
      std::fprintf(stderr, "BENCH FAILED: %s diverges\n", what);
      std::exit(1);
    }
  };
  // Text parses compact ids in first-appearance order (the serial
  // parser's numbering); CSR v2 loads reproduce g verbatim.
  const auto expect_reference = [&](const Graph& h) {
    expect_same(h, reference, "parsed graph");
  };
  const auto expect_g = [&](const Graph& h) {
    expect_same(h, g, "loaded graph");
  };

  // --- text parse: serial reference vs the parallel parser. ---
  const double serial_parse_s = best_of(
      2,
      [&] {
        std::ifstream in(txt_path);
        return io::read_edge_list(in);
      },
      expect_reference);

  ThreadPool pool1(1), pool2(2), pool8(8);
  const auto parse_with = [&](ThreadPool& pool) {
    return best_of(
        3, [&] { return io::read_edge_list_file(txt_path, pool); },
        expect_reference);
  };
  const double parallel_1t_s = parse_with(pool1);
  const double parallel_2t_s = parse_with(pool2);
  const double parallel_8t_s = parse_with(pool8);
  const double parallel_speedup = serial_parse_s / parallel_8t_s;

  TablePrinter parse_table({"parser", "threads", "wall_s", "speedup"});
  parse_table.add_row({"istream (serial)", "1", fmt(serial_parse_s, 3), "1.00"});
  parse_table.add_row({"chunked", "1", fmt(parallel_1t_s, 3),
                       fmt(serial_parse_s / parallel_1t_s, 2)});
  parse_table.add_row({"chunked", "2", fmt(parallel_2t_s, 3),
                       fmt(serial_parse_s / parallel_2t_s, 2)});
  parse_table.add_row({"chunked", "8", fmt(parallel_8t_s, 3),
                       fmt(parallel_speedup, 2)});
  parse_table.print("Edge-list parse, 1.2M edges",
                    "target: chunked@8 >= 4x istream; all outputs "
                    "byte-identical to the serial parser");

  // --- binary load: copy vs mmap (both checksum-verified). ---
  const double csr_copy_s = best_of(
      3,
      [&] {
        return io::load_csr_file(csr_path, {.mode = io::CsrLoadMode::kCopy});
      },
      expect_g);
  double csr_mmap_s = csr_copy_s;
  const bool have_mmap = io::mmap_supported();
  if (have_mmap) {
    csr_mmap_s = best_of(
        3,
        [&] {
          return io::load_csr_file(csr_path,
                                   {.mode = io::CsrLoadMode::kMmap});
        },
        [&](const Graph& h) {
          if (h.owns_storage()) {
            std::fprintf(stderr, "BENCH FAILED: mmap load not zero-copy\n");
            std::exit(1);
          }
          expect_g(h);
        });
  }
  const double mmap_speedup = serial_parse_s / csr_mmap_s;

  TablePrinter load_table({"loader", "wall_s", "vs text parse"});
  load_table.add_row({"text parse (serial)", fmt(serial_parse_s, 3), "1.00"});
  load_table.add_row({"text parse (8t)", fmt(parallel_8t_s, 3),
                      fmt(serial_parse_s / parallel_8t_s, 2)});
  load_table.add_row({"csr2 copy", fmt(csr_copy_s, 4),
                      fmt(serial_parse_s / csr_copy_s, 2)});
  load_table.add_row({have_mmap ? "csr2 mmap" : "csr2 mmap (unsupported)",
                      fmt(csr_mmap_s, 4), fmt(mmap_speedup, 2)});
  load_table.print("CSR v2 load vs text parse",
                   "target: mmap >= 10x text parse, checksum verification "
                   "included");

  // --- determinism across thread counts (full graphs, not just times). ---
  const Graph p1 = io::read_edge_list_file(txt_path, pool1);
  const Graph p2 = io::read_edge_list_file(txt_path, pool2);
  const Graph p8 = io::read_edge_list_file(txt_path, pool8);
  const bool deterministic =
      std::ranges::equal(p1.neighbor_array(), p2.neighbor_array()) &&
      std::ranges::equal(p1.neighbor_array(), p8.neighbor_array()) &&
      std::ranges::equal(p1.offsets(), p2.offsets()) &&
      std::ranges::equal(p1.offsets(), p8.offsets());

  // --- owning vs mmap through the registry. ---
  bool registry_identical = true;
  if (have_mmap) {
    const Graph mapped =
        io::load_csr_file(csr_path, {.mode = io::CsrLoadMode::kMmap});
    AlgoParams params;
    params.set("tau", std::uint64_t{16});
    RunContext ctx_own, ctx_map;
    ctx_own.seed = ctx_map.seed = 7;
    const Clustering own = registry().run("cluster", g, params, ctx_own);
    const Clustering map = registry().run("cluster", mapped, params, ctx_map);
    registry_identical = same_clustering(own, map);
    std::printf("registry cluster(16) owning vs mmap-backed: %s\n",
                registry_identical ? "byte-identical" : "DIVERGED");
  }

  // --- compressed CSR: footprint, encoder determinism, load. ---
  const std::string cz_path = dir + "/gclus_bench_io_cz.csr2";
  Timer t_compress;
  const CompressedGraph cz = compress(g, pool8);
  const double compress_s = t_compress.elapsed_s();
  io::write_csr_file(cz, cz_path);
  const auto cz_bytes =
      static_cast<std::uint64_t>(std::filesystem::file_size(cz_path));
  const double compression_ratio =
      static_cast<double>(csr_bytes) / static_cast<double>(cz_bytes);
  const double bits_per_half_edge = static_cast<double>(cz_bytes) * 8.0 /
                                    static_cast<double>(g.num_half_edges());

  const auto same_sections = [](const CompressedGraph& a,
                                const CompressedGraph& b) {
    return std::ranges::equal(a.degrees_section(), b.degrees_section()) &&
           std::ranges::equal(a.anchors_section(), b.anchors_section()) &&
           std::ranges::equal(a.locals_section(), b.locals_section()) &&
           std::ranges::equal(a.adj_section(), b.adj_section()) &&
           std::ranges::equal(a.perm_section(), b.perm_section()) &&
           std::ranges::equal(a.inv_section(), b.inv_section());
  };
  const bool encode_deterministic = same_sections(cz, compress(g, pool1)) &&
                                    same_sections(cz, compress(g, pool2));

  // Compressed load includes the checksum and the full structural decode
  // walk; the round trip must reproduce g's CSR arrays byte-for-byte.
  const double cz_load_s = best_of(
      3, [&] { return io::load_compressed_csr_file(cz_path); },
      [&](const CompressedGraph& h) {
        if (h.num_nodes() != g.num_nodes() ||
            h.num_half_edges() != g.num_half_edges()) {
          std::fprintf(stderr, "BENCH FAILED: compressed load shape\n");
          std::exit(1);
        }
      });
  expect_g(io::load_compressed_csr_file(cz_path).decompress(pool8));

  TablePrinter cz_table({"layout", "bytes", "bits/half-edge", "vs csr2"});
  cz_table.add_row({"csr2 plain", fmt_u(csr_bytes),
                    fmt(static_cast<double>(csr_bytes) * 8.0 /
                            static_cast<double>(g.num_half_edges()),
                        2),
                    "1.00"});
  cz_table.add_row({"csr2 compressed", fmt_u(cz_bytes),
                    fmt(bits_per_half_edge, 2), fmt(compression_ratio, 2)});
  cz_table.print("Compressed CSR footprint, 1.2M-edge expander",
                 "target: >= 2x smaller than plain CSR v2; encoder "
                 "byte-identical at 1/2/8 threads");

  // --- decode overhead: push-mode registry cluster, plain vs compressed. ---
  AlgoParams cl_params;
  cl_params.set("tau", std::uint64_t{16});
  const auto push_ctx = [&](ThreadPool& pool) {
    RunContext ctx;
    ctx.seed = 7;
    ctx.pool = &pool;
    ctx.growth.mode = TraversalMode::kPushOnly;
    return ctx;
  };
  const Clustering push_ref = [&] {
    RunContext ctx = push_ctx(pool8);
    return registry().run("cluster", g, cl_params, ctx);
  }();
  const auto expect_push_ref = [&](const Clustering& c) {
    if (!same_clustering(c, push_ref)) {
      std::fprintf(stderr,
                   "BENCH FAILED: compressed cluster output diverges\n");
      std::exit(1);
    }
  };
  // Paired timing: plain and compressed alternate within each rep, so
  // machine-load drift across the measurement window hits both sides
  // equally and the overhead ratio stays stable even on busy hosts.
  double plain_cluster_s = 1e100;
  double cz_cluster_s = 1e100;
  for (int rep = 0; rep < 7; ++rep) {
    {
      RunContext ctx = push_ctx(pool8);
      Timer t;
      const Clustering c = registry().run("cluster", g, cl_params, ctx);
      plain_cluster_s = std::min(plain_cluster_s, t.elapsed_s());
      expect_push_ref(c);
    }
    {
      RunContext ctx = push_ctx(pool8);
      Timer t;
      const Clustering c = registry().run("cluster", cz, cl_params, ctx);
      cz_cluster_s = std::min(cz_cluster_s, t.elapsed_s());
      expect_push_ref(c);
    }
  }
  const double decode_overhead =
      (cz_cluster_s - plain_cluster_s) / plain_cluster_s;

  // Compressed-mode output identity across thread counts (default
  // direction heuristic, so both push and pull steps are exercised).
  bool compressed_identical = true;
  for (ThreadPool* pool : {&pool1, &pool2, &pool8}) {
    RunContext ctx_cz, ctx_plain;
    ctx_cz.seed = ctx_plain.seed = 7;
    ctx_cz.pool = ctx_plain.pool = pool;
    const Clustering from_cz = registry().run("cluster", cz, cl_params, ctx_cz);
    const Clustering from_plain =
        registry().run("cluster", g, cl_params, ctx_plain);
    compressed_identical =
        compressed_identical && same_clustering(from_cz, from_plain);
  }

  TablePrinter decode_table({"input", "cluster(16) push wall_s", "overhead"});
  decode_table.add_row({"plain CSR", fmt(plain_cluster_s, 4), "--"});
  decode_table.add_row({"compressed", fmt(cz_cluster_s, 4),
                        fmt(decode_overhead * 100.0, 1) + "%"});
  decode_table.print("Decode overhead, push-mode registry cluster @8t",
                     "target: <= 25% over plain CSR; outputs byte-identical "
                     "at 1/2/8 threads");

  // --- relabeling alone: pull-mode locality on a skewed graph. ---
  // Physically relabel a preferential-attachment graph into the same
  // stable degree-descending order the compressed encoder uses, and time
  // pinned-pull BFS on both plain graphs — no decoding anywhere, so the
  // difference is purely the memory layout.
  const Graph skew =
      workloads::cached_graph("bench-io-pa-n" + std::to_string(kSkewNodes),
                              [] {
                                return gen::preferential_attachment(
                                    kSkewNodes, kSkewAttach, kSkewSeed);
                              });
  const NodeId sn = skew.num_nodes();
  std::vector<NodeId> order(sn);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return skew.degree(a) > skew.degree(b);
  });
  std::vector<NodeId> perm(sn);
  for (NodeId s = 0; s < sn; ++s) perm[order[s]] = s;
  std::vector<EdgeId> roffsets(sn + 1, 0);
  for (NodeId s = 0; s < sn; ++s)
    roffsets[s + 1] = roffsets[s] + skew.degree(order[s]);
  std::vector<NodeId> rneighbors(skew.num_half_edges());
  for (NodeId s = 0; s < sn; ++s) {
    EdgeId at = roffsets[s];
    for (const NodeId v : skew.neighbors(order[s])) rneighbors[at++] = perm[v];
    std::sort(
        rneighbors.begin() + static_cast<std::ptrdiff_t>(roffsets[s]),
        rneighbors.begin() + static_cast<std::ptrdiff_t>(roffsets[s + 1]));
  }
  const Graph relabeled(std::move(roffsets), std::move(rneighbors));

  GrowthOptions pull_only;
  pull_only.mode = TraversalMode::kPullOnly;
  const NodeId skew_src = 0;
  const std::vector<Dist> pull_ref =
      parallel_bfs(pool8, skew, skew_src, nullptr, pull_only);
  const double pull_orig_s = best_of(
      5,
      [&] { return parallel_bfs(pool8, skew, skew_src, nullptr, pull_only); },
      [&](const std::vector<Dist>& d) {
        if (d != pull_ref) {
          std::fprintf(stderr, "BENCH FAILED: pull BFS diverges\n");
          std::exit(1);
        }
      });
  const double pull_relab_s = best_of(
      5,
      [&] {
        return parallel_bfs(pool8, relabeled, perm[skew_src], nullptr,
                            pull_only);
      },
      [&](const std::vector<Dist>& d) {
        for (NodeId u = 0; u < sn; ++u) {
          if (d[perm[u]] != pull_ref[u]) {
            std::fprintf(stderr, "BENCH FAILED: relabeled pull BFS diverges\n");
            std::exit(1);
          }
        }
      });
  const double relabel_pull_speedup = pull_orig_s / pull_relab_s;

  TablePrinter relab_table({"layout", "pull BFS wall_s", "speedup"});
  relab_table.add_row({"original order", fmt(pull_orig_s, 4), "1.00"});
  relab_table.add_row({"degree-descending", fmt(pull_relab_s, 4),
                       fmt(relabel_pull_speedup, 2)});
  relab_table.print(
      "Relabeling alone, pinned-pull BFS on preferential attachment @8t",
      "plain CSR both sides: isolates the layout win from decode cost");

  Json root = Json::object();
  root.set("bench", "io");
  root.set("graph", Json::object()
                        .set("generator", "expander")
                        .set("nodes", static_cast<std::uint64_t>(g.num_nodes()))
                        .set("edges", static_cast<std::uint64_t>(g.num_edges()))
                        .set("degree", static_cast<std::uint64_t>(kDegree))
                        .set("seed", kGraphSeed));
  root.set("text_bytes", text_bytes);
  root.set("csr_bytes", csr_bytes);
  root.set("write_text_s", write_text_s);
  root.set("write_csr_s", write_csr_s);
  root.set("serial_parse_s", serial_parse_s);
  root.set("parallel_parse_1t_s", parallel_1t_s);
  root.set("parallel_parse_2t_s", parallel_2t_s);
  root.set("parallel_parse_8t_s", parallel_8t_s);
  root.set("parallel_speedup_8t", parallel_speedup);
  root.set("csr_copy_load_s", csr_copy_s);
  root.set("csr_mmap_load_s", csr_mmap_s);
  root.set("mmap_speedup_vs_text", mmap_speedup);
  root.set("mmap_supported", have_mmap);
  root.set("parse_deterministic_1_2_8", deterministic);
  root.set("registry_mmap_identical", registry_identical);
  root.set("cz_bytes", cz_bytes);
  root.set("compress_s", compress_s);
  root.set("cz_load_s", cz_load_s);
  root.set("compression_ratio", compression_ratio);
  root.set("bits_per_half_edge", bits_per_half_edge);
  root.set("encode_deterministic_1_2_8", encode_deterministic);
  root.set("plain_cluster_push_s", plain_cluster_s);
  root.set("cz_cluster_push_s", cz_cluster_s);
  root.set("decode_overhead", decode_overhead);
  root.set("compressed_identical_1_2_8", compressed_identical);
  root.set("relabel_pull_orig_s", pull_orig_s);
  root.set("relabel_pull_relabeled_s", pull_relab_s);
  root.set("relabel_pull_speedup", relabel_pull_speedup);

  const char* out_env = std::getenv("GCLUS_BENCH_OUT");
  const std::string out_path = out_env != nullptr ? out_env : "BENCH_io.json";
  write_json_file(out_path, root);
  std::printf("\nwrote %s\n", out_path.c_str());

  std::remove(txt_path.c_str());
  std::remove(csr_path.c_str());
  std::remove(cz_path.c_str());

  if (parallel_speedup < kMinParallelSpeedup ||
      (have_mmap && mmap_speedup < kMinMmapSpeedup) || !deterministic ||
      !registry_identical || compression_ratio < kMinCompressionRatio ||
      decode_overhead > kMaxDecodeOverhead || !encode_deterministic ||
      !compressed_identical) {
    std::fprintf(stderr,
                 "BENCH FAILED: parallel_speedup=%.2f (need >= %.1f) "
                 "mmap_speedup=%.2f (need >= %.1f) deterministic=%d "
                 "registry_identical=%d compression_ratio=%.2f (need >= %.1f) "
                 "decode_overhead=%.2f (need <= %.2f) encode_deterministic=%d "
                 "compressed_identical=%d\n",
                 parallel_speedup, kMinParallelSpeedup, mmap_speedup,
                 kMinMmapSpeedup, deterministic, registry_identical,
                 compression_ratio, kMinCompressionRatio, decode_overhead,
                 kMaxDecodeOverhead, encode_deterministic,
                 compressed_identical);
    return 1;
  }
  return 0;
}
