// Ingestion benchmark — the perf/compliance anchor for the storage layer.
//
// On the 1.2M-edge 8-regular expander (the same graph as
// bench_decomposition) this demonstrates the three claims of the CSR v2
// ingestion subsystem:
//
//   1. Parallel parse: the chunked edge-list parser at 8 threads beats
//      the serial istream parser by ≥4x, and its output is byte-identical
//      at 1, 2, and 8 threads (and to the serial parser).
//
//   2. Binary beats text: loading the CSR v2 file — checksum-verified —
//      is ≥10x faster than parsing the text edge list, with the mmap
//      zero-copy path at least matching the copying read() path.
//
//   3. Storage-mode transparency: a registry decomposition on the
//      mmap-backed graph is byte-identical to the owning graph.
//
// Results go to stdout as paper-style tables and to BENCH_io.json
// (override with GCLUS_BENCH_OUT).  Exits nonzero if any claim fails.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "api/registry.hpp"
#include "api/run_context.hpp"
#include "bench_common.hpp"
#include "common/timer.hpp"
#include "graph/io.hpp"
#include "par/thread_pool.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

constexpr NodeId kNodes = 300000;
constexpr unsigned kDegree = 8;
constexpr std::uint64_t kGraphSeed = 42;
constexpr double kMinParallelSpeedup = 4.0;
constexpr double kMinMmapSpeedup = 10.0;

/// Best-of-N wall time for a loader; every invocation's result must
/// satisfy `check` (so timing never trades off correctness).
template <typename Fn, typename Check>
double best_of(int reps, const Fn& fn, const Check& check) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    auto result = fn();
    best = std::min(best, t.elapsed_s());
    check(result);
  }
  return best;
}

bool same_clustering(const Clustering& a, const Clustering& b) {
  return a.assignment == b.assignment && a.centers == b.centers &&
         a.dist_to_center == b.dist_to_center;
}

}  // namespace

int main() {
  const Graph g = cached_expander(kNodes, kDegree, kGraphSeed);
  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string txt_path = dir + "/gclus_bench_io.txt";
  const std::string csr_path = dir + "/gclus_bench_io.csr2";

  Timer t_write_txt;
  io::write_edge_list_file(g, txt_path);
  const double write_text_s = t_write_txt.elapsed_s();
  Timer t_write_csr;
  io::write_csr_file(g, csr_path);
  const double write_csr_s = t_write_csr.elapsed_s();
  const auto text_bytes =
      static_cast<std::uint64_t>(std::filesystem::file_size(txt_path));
  const auto csr_bytes =
      static_cast<std::uint64_t>(std::filesystem::file_size(csr_path));

  std::printf("expander: n=%u m=%llu  text=%llu bytes  csr2=%llu bytes\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(text_bytes),
              static_cast<unsigned long long>(csr_bytes));

  // Reference numbering for equality checks: the serial parser's output.
  const Graph reference = [&] {
    std::ifstream in(txt_path);
    return io::read_edge_list(in);
  }();
  const auto expect_same = [](const Graph& h, const Graph& want,
                              const char* what) {
    if (!std::ranges::equal(h.offsets(), want.offsets()) ||
        !std::ranges::equal(h.neighbor_array(), want.neighbor_array())) {
      std::fprintf(stderr, "BENCH FAILED: %s diverges\n", what);
      std::exit(1);
    }
  };
  // Text parses compact ids in first-appearance order (the serial
  // parser's numbering); CSR v2 loads reproduce g verbatim.
  const auto expect_reference = [&](const Graph& h) {
    expect_same(h, reference, "parsed graph");
  };
  const auto expect_g = [&](const Graph& h) {
    expect_same(h, g, "loaded graph");
  };

  // --- text parse: serial reference vs the parallel parser. ---
  const double serial_parse_s = best_of(
      2,
      [&] {
        std::ifstream in(txt_path);
        return io::read_edge_list(in);
      },
      expect_reference);

  ThreadPool pool1(1), pool2(2), pool8(8);
  const auto parse_with = [&](ThreadPool& pool) {
    return best_of(
        3, [&] { return io::read_edge_list_file(txt_path, pool); },
        expect_reference);
  };
  const double parallel_1t_s = parse_with(pool1);
  const double parallel_2t_s = parse_with(pool2);
  const double parallel_8t_s = parse_with(pool8);
  const double parallel_speedup = serial_parse_s / parallel_8t_s;

  TablePrinter parse_table({"parser", "threads", "wall_s", "speedup"});
  parse_table.add_row({"istream (serial)", "1", fmt(serial_parse_s, 3), "1.00"});
  parse_table.add_row({"chunked", "1", fmt(parallel_1t_s, 3),
                       fmt(serial_parse_s / parallel_1t_s, 2)});
  parse_table.add_row({"chunked", "2", fmt(parallel_2t_s, 3),
                       fmt(serial_parse_s / parallel_2t_s, 2)});
  parse_table.add_row({"chunked", "8", fmt(parallel_8t_s, 3),
                       fmt(parallel_speedup, 2)});
  parse_table.print("Edge-list parse, 1.2M edges",
                    "target: chunked@8 >= 4x istream; all outputs "
                    "byte-identical to the serial parser");

  // --- binary load: copy vs mmap (both checksum-verified). ---
  const double csr_copy_s = best_of(
      3,
      [&] {
        return io::load_csr_file(csr_path, {.mode = io::CsrLoadMode::kCopy});
      },
      expect_g);
  double csr_mmap_s = csr_copy_s;
  const bool have_mmap = io::mmap_supported();
  if (have_mmap) {
    csr_mmap_s = best_of(
        3,
        [&] {
          return io::load_csr_file(csr_path,
                                   {.mode = io::CsrLoadMode::kMmap});
        },
        [&](const Graph& h) {
          if (h.owns_storage()) {
            std::fprintf(stderr, "BENCH FAILED: mmap load not zero-copy\n");
            std::exit(1);
          }
          expect_g(h);
        });
  }
  const double mmap_speedup = serial_parse_s / csr_mmap_s;

  TablePrinter load_table({"loader", "wall_s", "vs text parse"});
  load_table.add_row({"text parse (serial)", fmt(serial_parse_s, 3), "1.00"});
  load_table.add_row({"text parse (8t)", fmt(parallel_8t_s, 3),
                      fmt(serial_parse_s / parallel_8t_s, 2)});
  load_table.add_row({"csr2 copy", fmt(csr_copy_s, 4),
                      fmt(serial_parse_s / csr_copy_s, 2)});
  load_table.add_row({have_mmap ? "csr2 mmap" : "csr2 mmap (unsupported)",
                      fmt(csr_mmap_s, 4), fmt(mmap_speedup, 2)});
  load_table.print("CSR v2 load vs text parse",
                   "target: mmap >= 10x text parse, checksum verification "
                   "included");

  // --- determinism across thread counts (full graphs, not just times). ---
  const Graph p1 = io::read_edge_list_file(txt_path, pool1);
  const Graph p2 = io::read_edge_list_file(txt_path, pool2);
  const Graph p8 = io::read_edge_list_file(txt_path, pool8);
  const bool deterministic =
      std::ranges::equal(p1.neighbor_array(), p2.neighbor_array()) &&
      std::ranges::equal(p1.neighbor_array(), p8.neighbor_array()) &&
      std::ranges::equal(p1.offsets(), p2.offsets()) &&
      std::ranges::equal(p1.offsets(), p8.offsets());

  // --- owning vs mmap through the registry. ---
  bool registry_identical = true;
  if (have_mmap) {
    const Graph mapped =
        io::load_csr_file(csr_path, {.mode = io::CsrLoadMode::kMmap});
    AlgoParams params;
    params.set("tau", std::uint64_t{16});
    RunContext ctx_own, ctx_map;
    ctx_own.seed = ctx_map.seed = 7;
    const Clustering own = registry().run("cluster", g, params, ctx_own);
    const Clustering map = registry().run("cluster", mapped, params, ctx_map);
    registry_identical = same_clustering(own, map);
    std::printf("registry cluster(16) owning vs mmap-backed: %s\n",
                registry_identical ? "byte-identical" : "DIVERGED");
  }

  Json root = Json::object();
  root.set("bench", "io");
  root.set("graph", Json::object()
                        .set("generator", "expander")
                        .set("nodes", static_cast<std::uint64_t>(g.num_nodes()))
                        .set("edges", static_cast<std::uint64_t>(g.num_edges()))
                        .set("degree", static_cast<std::uint64_t>(kDegree))
                        .set("seed", kGraphSeed));
  root.set("text_bytes", text_bytes);
  root.set("csr_bytes", csr_bytes);
  root.set("write_text_s", write_text_s);
  root.set("write_csr_s", write_csr_s);
  root.set("serial_parse_s", serial_parse_s);
  root.set("parallel_parse_1t_s", parallel_1t_s);
  root.set("parallel_parse_2t_s", parallel_2t_s);
  root.set("parallel_parse_8t_s", parallel_8t_s);
  root.set("parallel_speedup_8t", parallel_speedup);
  root.set("csr_copy_load_s", csr_copy_s);
  root.set("csr_mmap_load_s", csr_mmap_s);
  root.set("mmap_speedup_vs_text", mmap_speedup);
  root.set("mmap_supported", have_mmap);
  root.set("parse_deterministic_1_2_8", deterministic);
  root.set("registry_mmap_identical", registry_identical);

  const char* out_env = std::getenv("GCLUS_BENCH_OUT");
  const std::string out_path = out_env != nullptr ? out_env : "BENCH_io.json";
  write_json_file(out_path, root);
  std::printf("\nwrote %s\n", out_path.c_str());

  std::remove(txt_path.c_str());
  std::remove(csr_path.c_str());

  if (parallel_speedup < kMinParallelSpeedup ||
      (have_mmap && mmap_speedup < kMinMmapSpeedup) || !deterministic ||
      !registry_identical) {
    std::fprintf(stderr,
                 "BENCH FAILED: parallel_speedup=%.2f (need >= %.1f) "
                 "mmap_speedup=%.2f (need >= %.1f) deterministic=%d "
                 "registry_identical=%d\n",
                 parallel_speedup, kMinParallelSpeedup, mmap_speedup,
                 kMinMmapSpeedup, deterministic, registry_identical);
    return 1;
  }
  return 0;
}
