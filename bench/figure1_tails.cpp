// Figure 1 — robustness to graph irregularities: running time of CLUSTER
// vs BFS on the social graphs with a chain of c·Δ extra nodes appended,
// c ∈ {0, 1, 2, 4, 6, 8, 10}.
//
// Paper shape to reproduce: BFS time grows linearly in c (its rounds are
// exactly the new eccentricity), while CLUSTER's time stays essentially
// flat — the appended tail is absorbed by re-seeded center batches whose
// growth steps barely increase.  We report rounds and modeled time (the
// round-dominated regime of the paper's cluster, see bench_common.hpp),
// plus raw wall time.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "mr_algos/mr_bfs.hpp"
#include "mr_algos/mr_cluster.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

constexpr std::uint64_t kSeed = 2015;
constexpr int kTailFactors[] = {0, 1, 2, 4, 6, 8, 10};

struct Point {
  std::size_t rounds;
  double wall_s;
  double modeled_s;
  std::uint64_t estimate;
};

Point run_cluster_on(const Graph& g, bool large_diameter) {
  mr::Engine engine;
  Timer timer;
  const double target = large_diameter ? g.num_nodes() / 100.0
                                       : g.num_nodes() / 1000.0;
  mr_algos::MrClusterOptions opts;
  opts.seed = kSeed;
  const auto r = mr_algos::mr_cluster_diameter(
      engine, g, tau_for_target_clusters(g, target), opts);
  Point p;
  p.estimate = r.estimate;
  p.wall_s = timer.elapsed_s();
  p.rounds = engine.metrics().rounds;
  p.modeled_s = p.wall_s + static_cast<double>(p.rounds) * round_latency_s();
  return p;
}

Point run_bfs_on(const Graph& g) {
  mr::Engine engine;
  Timer timer;
  const auto r = mr_algos::mr_bfs_diameter(engine, g, 0);
  Point p;
  p.estimate = r.estimate;
  p.wall_s = timer.elapsed_s();
  p.rounds = engine.metrics().rounds;
  p.modeled_s = p.wall_s + static_cast<double>(p.rounds) * round_latency_s();
  return p;
}

void print_figure1() {
  TablePrinter table({"dataset", "tail (xD)", "algo", "rounds", "wall s",
                      "modeled s", "D' est"});
  for (const char* name : {"social-large", "social-small"}) {
    const BenchDataset& d = load_bench_dataset(name);
    for (const int c : kTailFactors) {
      const NodeId tail_len = static_cast<NodeId>(c) * d.diameter;
      const Graph g =
          c == 0 ? d.graph() : gen::with_tail(d.graph(), tail_len);
      const Point ours = run_cluster_on(g, d.dataset.large_diameter);
      const Point bfs = run_bfs_on(g);
      table.add_row({d.name(), std::to_string(c), "CLUSTER",
                     fmt_u(ours.rounds), fmt(ours.wall_s, 2),
                     fmt(ours.modeled_s, 1), fmt_u(ours.estimate)});
      table.add_row({d.name(), std::to_string(c), "BFS", fmt_u(bfs.rounds),
                     fmt(bfs.wall_s, 2), fmt(bfs.modeled_s, 1),
                     fmt_u(bfs.estimate)});
    }
  }
  table.print(
      "Figure 1: tail-appended variants (chain of c*D extra nodes)",
      "Expect BFS rounds/time linear in c; CLUSTER flat.  modeled s = "
      "wall + rounds x " + fmt(round_latency_s(), 2) + " s.");
}

void BM_TailedCluster(benchmark::State& state, const std::string& name,
                      int c) {
  const BenchDataset& d = load_bench_dataset(name);
  const Graph g =
      c == 0 ? d.graph()
             : gen::with_tail(d.graph(),
                              static_cast<NodeId>(c) * d.diameter);
  Point p{};
  for (auto _ : state) {
    p = run_cluster_on(g, d.dataset.large_diameter);
    benchmark::DoNotOptimize(p.estimate);
  }
  state.counters["rounds"] = static_cast<double>(p.rounds);
  state.counters["modeled_s"] = p.modeled_s;
}

void BM_TailedBfs(benchmark::State& state, const std::string& name, int c) {
  const BenchDataset& d = load_bench_dataset(name);
  const Graph g =
      c == 0 ? d.graph()
             : gen::with_tail(d.graph(),
                              static_cast<NodeId>(c) * d.diameter);
  Point p{};
  for (auto _ : state) {
    p = run_bfs_on(g);
    benchmark::DoNotOptimize(p.estimate);
  }
  state.counters["rounds"] = static_cast<double>(p.rounds);
  state.counters["modeled_s"] = p.modeled_s;
}

}  // namespace

int main(int argc, char** argv) {
  print_figure1();
  for (const int c : {0, 4, 10}) {
    benchmark::RegisterBenchmark(
        ("tailed_cluster/social-small/c" + std::to_string(c)).c_str(),
        BM_TailedCluster, "social-small", c)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("tailed_bfs/social-small/c" + std::to_string(c)).c_str(),
        BM_TailedBfs, "social-small", c)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
