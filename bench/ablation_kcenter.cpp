// Ablation C — k-center quality: the CLUSTER-based approximation (§3.1)
// against Gonzalez's sequential 2-approximation and uniformly random
// centers, across k.
//
// Expected shape: Gonzalez sets the quality reference (radius within 2 of
// optimal); CLUSTER-based centers stay within a small factor of it —
// Theorem 2 allows O(log³n) but practice is far tighter — while being
// parallel (O(R) rounds, not k sequential BFS sweeps).  Random centers
// trail both, increasingly so for large k on the road/mesh graphs.
//
// This bench compares center sets and exact radii, not partitions, so it
// calls the k-center entry points directly; the registry's "kcenter" and
// "gonzalez" entries wrap the same code as Voronoi Clusterings.
#include <benchmark/benchmark.h>

#include "baselines/gonzalez.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/kcenter.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

constexpr std::uint64_t kSeed = 515;
constexpr NodeId kKs[] = {4, 16, 64, 256};

Dist random_centers_radius(const Graph& g, NodeId k) {
  Rng rng(kSeed);
  std::vector<NodeId> centers;
  std::vector<char> used(g.num_nodes(), 0);
  while (centers.size() < k) {
    const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    if (!used[v]) {
      used[v] = 1;
      centers.push_back(v);
    }
  }
  return evaluate_centers(g, centers).first;
}

void run_dataset(const BenchDataset& d) {
  TablePrinter table({"k", "CLUSTER radius", "Gonzalez radius",
                      "random radius", "CLUSTER/Gonzalez"});
  for (const NodeId k : kKs) {
    if (k > d.graph().num_nodes() / 4) continue;
    KCenterOptions opts;
    opts.seed = kSeed;
    const KCenterResult ours = kcenter_approx(d.graph(), k, opts);
    const auto gz = baselines::gonzalez_kcenter(d.graph(), k);
    const Dist rnd = random_centers_radius(d.graph(), k);
    table.add_row({fmt_u(k), fmt_u(ours.radius), fmt_u(gz.radius),
                   fmt_u(rnd),
                   fmt(static_cast<double>(ours.radius) /
                           std::max<Dist>(1, gz.radius),
                       2)});
  }
  table.print("Ablation C: k-center on " + d.name(),
              "Gonzalez is the sequential 2-approximation reference; "
              "Theorem 2 guarantees CLUSTER within O(log^3 n) of optimal.");
}

void BM_KCenter(benchmark::State& state, const std::string& name,
                int which) {
  const BenchDataset& d = load_bench_dataset(name);
  const auto k = static_cast<NodeId>(state.range(0));
  Dist radius = 0;
  for (auto _ : state) {
    if (which == 0) {
      KCenterOptions opts;
      opts.seed = kSeed;
      radius = kcenter_approx(d.graph(), k, opts).radius;
    } else {
      radius = baselines::gonzalez_kcenter(d.graph(), k).radius;
    }
    benchmark::DoNotOptimize(radius);
  }
  state.counters["radius"] = radius;
}

}  // namespace

int main(int argc, char** argv) {
  run_dataset(load_bench_dataset("social-small"));
  run_dataset(load_bench_dataset("road-a"));
  run_dataset(load_bench_dataset("mesh"));
  for (const std::string name : {"road-a", "mesh"}) {
    benchmark::RegisterBenchmark(("kcenter_cluster/" + name).c_str(),
                                 BM_KCenter, name, 0)
        ->Arg(16)
        ->Arg(64)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(("kcenter_gonzalez/" + name).c_str(),
                                 BM_KCenter, name, 1)
        ->Arg(16)
        ->Arg(64)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
