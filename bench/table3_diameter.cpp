// Table 3 — diameter approximation quality at two clustering
// granularities.
//
// For every dataset the pipeline runs with a "coarser" clustering
// (quotient of a few thousand nodes at paper scale; scaled here) and a
// "finer" one, reporting the quotient size (n_C, m_C), the estimate Δ′
// (the weighted-quotient upper bound Δ″ of §4, which is what the paper's
// experiments report), and the true diameter Δ.
//
// Paper shape to reproduce: Δ′/Δ < 2 everywhere, the ratio shrinking on
// sparse large-diameter graphs, and — the headline of Theorem 3 — the
// approximation essentially independent of the granularity.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/diameter.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

constexpr std::uint64_t kSeed = 2015;

struct GranularityResult {
  DiameterApprox approx;
  std::uint32_t tau;
};

GranularityResult run(const BenchDataset& d, double target_clusters) {
  const std::uint32_t tau =
      tau_for_target_clusters(d.graph(), target_clusters);
  // Clustering phase through the registry ("cluster" is the paper's
  // simplified experimental variant); diameter post-processing reuses it.
  RunContext ctx;
  ctx.seed = kSeed;
  const Clustering c = run_registry(
      "cluster", d.graph(), AlgoParams{}.set("tau", std::uint64_t{tau}), ctx);
  return {diameter_from_clustering(d.graph(), c), tau};
}

void print_table3() {
  TablePrinter table({"dataset", "nC (coarse)", "mC (coarse)", "D' (coarse)",
                      "nC (fine)", "mC (fine)", "D' (fine)", "D", "ratio"});
  for (const BenchDataset* d : all_bench_datasets()) {
    const NodeId n = d->graph().num_nodes();
    const GranularityResult coarse = run(*d, n / 500.0);
    const GranularityResult fine = run(*d, n / 50.0);
    const double ratio =
        static_cast<double>(fine.approx.upper_bound) /
        std::max<Dist>(1, d->diameter);
    table.add_row({d->name(), fmt_u(coarse.approx.quotient_nodes),
                   fmt_u(coarse.approx.quotient_edges),
                   fmt_u(coarse.approx.upper_bound),
                   fmt_u(fine.approx.quotient_nodes),
                   fmt_u(fine.approx.quotient_edges),
                   fmt_u(fine.approx.upper_bound), fmt_u(d->diameter),
                   fmt(ratio, 2)});
  }
  table.print(
      "Table 3: diameter approximation at two granularities",
      "D' is the weighted-quotient upper bound (2R + Delta'_C); ratio = "
      "D'(fine)/D.  Expect ratio < 2 and near-granularity-independence.");
}

void BM_DiameterPipeline(benchmark::State& state, const std::string& name,
                         double target_divisor) {
  const BenchDataset& d = load_bench_dataset(name);
  const std::uint32_t tau = tau_for_target_clusters(
      d.graph(), d.graph().num_nodes() / target_divisor);
  RunContext ctx;
  ctx.seed = kSeed;
  const AlgoParams params = AlgoParams{}.set("tau", std::uint64_t{tau});
  std::uint64_t estimate = 0;
  std::size_t growth_steps = 0;
  for (auto _ : state) {
    const Clustering c = run_registry("cluster", d.graph(), params, ctx);
    const DiameterApprox a = diameter_from_clustering(d.graph(), c);
    estimate = a.upper_bound;
    growth_steps = a.growth_steps;
    benchmark::DoNotOptimize(estimate);
  }
  state.counters["estimate"] = static_cast<double>(estimate);
  state.counters["true_diameter"] = d.diameter;
  state.counters["growth_steps"] = static_cast<double>(growth_steps);
}

}  // namespace

int main(int argc, char** argv) {
  print_table3();
  for (const auto& name : gclus::workloads::dataset_names()) {
    benchmark::RegisterBenchmark(("diameter_coarse/" + name).c_str(),
                                 BM_DiameterPipeline, name, 500.0)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(("diameter_fine/" + name).c_str(),
                                 BM_DiameterPipeline, name, 50.0)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
