// Ablation E — the MR substrate itself: the Lemma-3 log_{M_L} m round
// factor, Fact-1 primitive scaling, and raw engine round throughput.
//
// The paper's round complexity O(R·log_{M_L} m) collapses to O(R) once
// M_L = Ω(n^ε); the first table shows the charged rounds of one BFS as
// M_L shrinks.  The second shows the multi-round sample sort's round
// count tracking ceil(log_{M_L} n) and staying correct throughout.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "mapreduce/primitives.hpp"
#include "mr_algos/mr_bfs.hpp"

namespace {

using namespace gclus;
using namespace gclus::bench;

void print_ml_sweep() {
  const BenchDataset& d = load_bench_dataset("road-b");
  TablePrinter table({"M_L (pairs)", "rounds", "rounds / superstep",
                      "comm pairs"});
  const std::size_t mls[] = {SIZE_MAX, 1 << 20, 1 << 14, 1 << 10, 1 << 6};
  for (const std::size_t ml : mls) {
    mr::Config cfg;
    cfg.local_memory_pairs = ml;
    mr::Engine engine(cfg);
    const auto r = mr_algos::mr_bfs(engine, d.graph(), 0);
    table.add_row({ml == SIZE_MAX ? "unbounded" : fmt_u(ml),
                   fmt_u(engine.metrics().rounds),
                   fmt(static_cast<double>(engine.metrics().rounds) /
                           std::max<std::size_t>(1, r.supersteps),
                       2),
                   fmt_u(engine.metrics().pairs_shuffled)});
  }
  table.print("Ablation E.1: BFS rounds vs local memory M_L on road-b",
              "Lemma 3: each growing step costs ceil(log_{M_L} m) rounds; "
              "M_L = Omega(n^eps) recovers O(1) per step.");
}

void print_sort_sweep() {
  TablePrinter table({"n", "M_L", "rounds", "max reducer pairs"});
  Rng rng(8);
  for (const std::size_t n : {1000ul, 100000ul}) {
    std::vector<std::uint64_t> values(n);
    for (auto& v : values) v = rng.next_u64();
    for (const std::size_t ml : {SIZE_MAX, 100000ul, 10000ul, 1000ul}) {
      if (ml != SIZE_MAX && ml * ml < n) continue;  // degenerate depth
      mr::Config cfg;
      cfg.local_memory_pairs = ml;
      mr::Engine engine(cfg);
      auto sorted = mr_sort(engine, values);
      const bool ok = std::is_sorted(sorted.begin(), sorted.end());
      table.add_row({fmt_u(n), ml == SIZE_MAX ? "unbounded" : fmt_u(ml),
                     fmt_u(engine.metrics().rounds) + (ok ? "" : " (BROKEN)"),
                     fmt_u(engine.metrics().max_reducer_pairs)});
    }
  }
  table.print("Ablation E.2: Fact-1 sample sort rounds vs M_L",
              "Rounds track ceil(log_{M_L} n); reducer loads stay near "
              "M_L.");
}

void print_spill_sweep() {
  // The out-of-core shuffle under shrinking budgets: one BFS on road-b,
  // spilled bytes and run counts growing as the budget drops while the
  // distances (checked) stay byte-identical to the unbounded run.
  const BenchDataset& d = load_bench_dataset("road-b");
  std::vector<Dist> reference;
  TablePrinter table({"budget (bytes)", "bytes spilled", "runs", "merged",
                      "peak buffer", "wall_s"});
  const std::uint64_t budgets[] = {0, 1 << 22, 1 << 18, 1 << 14};
  for (const std::uint64_t budget : budgets) {
    mr::Config cfg;
    cfg.spill_memory_bytes = budget;
    cfg.spill_strict = budget != 0;
    mr::Engine engine(cfg);
    Timer t;
    const auto r = mr_algos::mr_bfs(engine, d.graph(), 0);
    const double wall = t.elapsed_s();
    if (budget == 0) {
      reference = r.dist;
    } else {
      GCLUS_CHECK(r.dist == reference,
                  "spilled BFS diverged from in-memory BFS");
    }
    table.add_row({budget == 0 ? "unbounded" : fmt_u(budget),
                   fmt_u(engine.metrics().bytes_spilled),
                   fmt_u(engine.metrics().spill_runs),
                   fmt_u(engine.metrics().runs_merged),
                   fmt_u(engine.metrics().peak_shuffle_buffer_bytes),
                   fmt(wall, 3)});
  }
  table.print("Ablation E.3: BFS under shrinking spill budgets on road-b",
              "Distances stay byte-identical while the shuffle runs "
              "out-of-core; peak buffer tracks the budget.");
}

void BM_EngineRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::pair<std::uint32_t, std::uint64_t>> input;
  input.reserve(n);
  Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    input.emplace_back(static_cast<std::uint32_t>(rng.next_below(n / 8 + 1)),
                       i);
  }
  mr::Engine engine;
  for (auto _ : state) {
    auto copy = input;
    auto out = engine.round<std::uint32_t, std::uint64_t, std::uint32_t,
                            std::uint64_t>(
        std::move(copy),
        [](const std::uint32_t& k, std::span<std::uint64_t> vs,
           mr::Emitter<std::uint32_t, std::uint64_t>& emit) {
          std::uint64_t sum = 0;
          for (const auto v : vs) sum += v;
          emit.emit(k, sum);
        });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}

void BM_MrSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ml = static_cast<std::size_t>(state.range(1));
  Rng rng(4);
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) v = rng.next_u64();
  for (auto _ : state) {
    mr::Config cfg;
    cfg.local_memory_pairs = ml;
    mr::Engine engine(cfg);
    auto out = mr_sort(engine, values);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}

void BM_MrPrefixSum(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) v = rng.next_below(1000);
  for (auto _ : state) {
    mr::Config cfg;
    cfg.local_memory_pairs = 1024;
    mr::Engine engine(cfg);
    auto out = mr_prefix_sum(engine, values);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}

BENCHMARK(BM_EngineRound)->Arg(10000)->Arg(100000)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_MrSort)
    ->Args({100000, 1 << 20})
    ->Args({100000, 4096})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MrPrefixSum)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_ml_sweep();
  print_sort_sweep();
  print_spill_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
