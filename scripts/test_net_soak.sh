#!/usr/bin/env bash
# Multi-process soak of the query-service network front end, run by ctest
# as test_net_soak:
#
#   1. gclus_serve --build-artifacts publishes the oracle sidecar.
#   2. gclus_serve --listen=0 serves it on an ephemeral port.
#   3. Four gclus_client processes stream batches concurrently, each
#      replaying every answered batch through a locally loaded QueryEngine
#      (--verify): any byte difference between the wire answer and the
#      in-process answer is a client exit 4 and fails the soak.
#   4. SIGTERM lands mid-stream.  The server must drain gracefully (exit
#      0) and the drain must lose nothing: the sum of batches the clients
#      counted as answered equals the server's results_sent — every
#      accepted batch was answered, every refusal was a clean Status.
set -u

SERVE="${1:?usage: test_net_soak.sh /path/to/gclus_serve /path/to/gclus_client}"
CLIENT="${2:?usage: test_net_soak.sh /path/to/gclus_serve /path/to/gclus_client}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/gclus_net_soak.XXXXXX")"
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

"$SERVE" --dataset=mesh --artifacts="$WORK/mesh.orc" --build-artifacts \
  > /dev/null 2>&1 || fail "artifact build failed"

"$SERVE" --dataset=mesh --artifacts="$WORK/mesh.orc" --require-artifact \
  --listen=0 --port-file="$WORK/port" > "$WORK/server.log" 2>&1 &
SERVER_PID=$!

# Streams that take many seconds of round trips (31250 batches each), so
# the SIGTERM below lands mid-stream and every client sees the drain
# refusal as a clean Status, not a lost response.
declare -a CLIENT_PIDS
for c in 1 2 3 4; do
  "$CLIENT" --port-file="$WORK/port" --dataset=mesh \
    --artifacts="$WORK/mesh.orc" --verify --queries=2000000 --batch=64 \
    --seed="$c" --start-file="$WORK/go" \
    > "$WORK/client$c.log" 2> "$WORK/client$c.err" &
  CLIENT_PIDS[$c]=$!
done

for i in $(seq 1 100); do [ -f "$WORK/port" ] && break; sleep 0.1; done
[ -f "$WORK/port" ] || fail "server never published its port: $(cat "$WORK/server.log")"

# Rendezvous: wait until every client finished its (slow, staggered)
# setup, release them together, and confirm each answered at least one
# batch — only then pull the plug, so the SIGTERM lands mid-stream for
# all four.
wait_for_marker() {
  marker="$1"
  for i in $(seq 1 600); do
    found=1
    for c in 1 2 3 4; do
      grep -q "^$marker\$" "$WORK/client$c.err" 2>/dev/null || found=0
    done
    [ "$found" -eq 1 ] && return 0
    sleep 0.1
  done
  fail "clients never reported '$marker': $(cat "$WORK"/client*.err)"
}
wait_for_marker ready
touch "$WORK/go"
wait_for_marker streaming

kill -TERM "$SERVER_PID" 2>/dev/null || fail "server died before SIGTERM"
wait "$SERVER_PID"
server_code=$?
SERVER_PID=""
[ "$server_code" -eq 0 ] ||
  fail "server exit $server_code after SIGTERM (want graceful 0): $(cat "$WORK/server.log")"

total_answered=0
total_refused=0
for c in 1 2 3 4; do
  wait "${CLIENT_PIDS[$c]}"
  code=$?
  [ "$code" -eq 0 ] ||
    fail "client $c exit $code: $(cat "$WORK/client$c.err")"
  answered="$(sed -n 's/^answered=\([0-9][0-9]*\) .*/\1/p' "$WORK/client$c.log")"
  refused="$(sed -n 's/^answered=[0-9]* refused=\([0-9][0-9]*\)$/\1/p' "$WORK/client$c.log")"
  [ -n "$answered" ] && [ -n "$refused" ] ||
    fail "client $c printed no summary line"
  total_answered=$((total_answered + answered))
  total_refused=$((total_refused + refused))
done

results_sent="$(sed -n 's/^drained: .*results_sent=\([0-9][0-9]*\) .*/\1/p' "$WORK/server.log")"
[ -n "$results_sent" ] || fail "server printed no drain stats: $(cat "$WORK/server.log")"

[ "$total_answered" -gt 0 ] || fail "no client answered a single batch — the soak never got going"
[ "$total_refused" -gt 0 ] ||
  fail "no client was refused — the SIGTERM landed after the streams finished, not mid-stream"
[ "$total_answered" -eq "$results_sent" ] ||
  fail "clients answered $total_answered batches but the server sent $results_sent — a completed response was lost"

echo "PASS: $total_answered answered / $total_refused refused batches across 4 clients, drain lost none"
