#!/usr/bin/env bash
# CLI error-contract test for decompose_file, run by ctest as
# test_cli_errors:
#
#   exit 0  success
#   exit 1  usage error (bad flag, unknown algorithm)
#   exit 2  unreadable or corrupt input (one-line Status diagnostic on
#           stderr)
#
# Exit code 2 is what batch drivers key retry/skip decisions on, so it is
# pinned here against both a missing file and a truncated CSR v2 file,
# along with the GCLUS_FAULT environment wiring end to end.
set -u

DECOMPOSE_FILE="${1:?usage: test_cli_errors.sh /path/to/decompose_file}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/gclus_cli_errors.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# Missing input: exit 2 with a one-line IO_ERROR diagnostic.
set +e
err="$("$DECOMPOSE_FILE" "$WORK/does-not-exist.txt" 2>&1 >/dev/null)"
code=$?
set -e
[ "$code" -eq 2 ] || fail "missing file: expected exit 2, got $code"
echo "$err" | grep -q "decompose_file: IO_ERROR" ||
  fail "missing file: diagnostic not found in: $err"
[ "$(echo "$err" | wc -l)" -eq 1 ] ||
  fail "missing file: diagnostic is not one line: $err"

# Build a valid CSR v2 file, then truncate it: exit 2, DATA_LOSS.
"$DECOMPOSE_FILE" --convert="$WORK/ok.csr2" >/dev/null 2>&1 ||
  fail "--convert of the demo graph failed"
head -c 40 "$WORK/ok.csr2" > "$WORK/trunc.csr2"
set +e
err="$("$DECOMPOSE_FILE" "$WORK/trunc.csr2" --format=csr2 2>&1 >/dev/null)"
code=$?
set -e
[ "$code" -eq 2 ] || fail "truncated csr2: expected exit 2, got $code"
echo "$err" | grep -q "decompose_file: DATA_LOSS" ||
  fail "truncated csr2: diagnostic not found in: $err"

# A corrupted payload byte (checksum mismatch) is also exit 2.  Byte 130
# sits in the offsets section (payload starts at 128) and is zero in any
# small graph, so the overwrite always changes it.
cp "$WORK/ok.csr2" "$WORK/flip.csr2"
printf '\xff' | dd of="$WORK/flip.csr2" bs=1 seek=130 conv=notrunc 2>/dev/null
set +e
"$DECOMPOSE_FILE" "$WORK/flip.csr2" --format=csr2 >/dev/null 2>&1
code=$?
set -e
[ "$code" -eq 2 ] || fail "corrupt csr2: expected exit 2, got $code"

# Usage errors stay exit 1, distinct from environment failures.
set +e
"$DECOMPOSE_FILE" --algo=definitely-not-an-algo >/dev/null 2>&1
code=$?
set -e
[ "$code" -eq 1 ] || fail "unknown algorithm: expected exit 1, got $code"

# GCLUS_FAULT reaches the CLI.  A one-shot open failure is absorbed by
# the mmap->read fallback: the run succeeds and reports the triggered
# point on its fault counter line.
"$DECOMPOSE_FILE" "$WORK/ok.csr2" --format=csr2 >/dev/null 2>&1 ||
  fail "valid csr2 should decompose cleanly"
out="$(GCLUS_FAULT=io.open:once "$DECOMPOSE_FILE" "$WORK/ok.csr2" \
  --format=csr2 2>/dev/null)" ||
  fail "GCLUS_FAULT=io.open:once should degrade to the read() path"
echo "$out" | grep -q "fault     io.open" ||
  fail "fault counter line missing from: $out"
# A persistent open failure exhausts every fallback: exit 2.
set +e
GCLUS_FAULT=io.open:always "$DECOMPOSE_FILE" "$WORK/ok.csr2" --format=csr2 \
  >/dev/null 2>&1
code=$?
set -e
[ "$code" -eq 2 ] ||
  fail "GCLUS_FAULT=io.open:always: expected exit 2, got $code"

echo "PASS: decompose_file error contract holds"
