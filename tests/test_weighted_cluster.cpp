// Tests for the §7 weighted-graph decomposition extension: unit-weight
// equivalence with CLUSTER across the corpus, weighted claim-chain
// validity, the two radii, determinism, and the weighted diameter
// approximation sandwich.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/weighted_cluster.hpp"
#include "graph/generators.hpp"
#include "graph/weighted.hpp"
#include "test_util.hpp"

namespace gclus {
namespace {

/// A weighted version of a corpus graph with deterministic weights 1..9.
WeightedGraph weighted_version(const Graph& g, std::uint64_t seed) {
  std::vector<std::tuple<NodeId, NodeId, Weight>> edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) {
        edges.emplace_back(
            u, v, 1 + static_cast<Weight>(hash_combine(seed, u, v) % 9));
      }
    }
  }
  return WeightedGraph::from_edges(g.num_nodes(), std::move(edges));
}

class WeightedUnitEquivalenceTest
    : public ::testing::TestWithParam<testutil::NamedGraph> {};

TEST_P(WeightedUnitEquivalenceTest, MatchesClusterOnUnitWeights) {
  const auto& [name, graph] = GetParam();
  const WeightedGraph wg = WeightedGraph::from_unit_weights(graph);

  ClusterOptions copts;
  copts.seed = 7;
  const Clustering plain = cluster(graph, 2, copts);

  WeightedClusterOptions wopts;
  wopts.seed = 7;
  const WeightedClustering weighted = weighted_cluster(wg, 2, wopts);

  EXPECT_EQ(weighted.assignment, plain.assignment) << name;
  EXPECT_EQ(weighted.centers, plain.centers) << name;
  ASSERT_EQ(weighted.dist_to_center.size(), plain.dist_to_center.size());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    EXPECT_EQ(weighted.dist_to_center[v], plain.dist_to_center[v])
        << name << " node " << v;
    EXPECT_EQ(weighted.hops_to_center[v], plain.dist_to_center[v])
        << name << " node " << v;  // unit weights: hops == weighted dist
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, WeightedUnitEquivalenceTest,
    ::testing::ValuesIn(testutil::small_connected_corpus()),
    [](const ::testing::TestParamInfo<testutil::NamedGraph>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

class WeightedClusterPropertyTest
    : public ::testing::TestWithParam<testutil::NamedGraph> {};

TEST_P(WeightedClusterPropertyTest, ValidPartitionWithBoundedRadii) {
  const auto& [name, graph] = GetParam();
  const WeightedGraph wg = weighted_version(graph, 13);
  WeightedClusterOptions opts;
  opts.seed = 11;
  const WeightedClustering c = weighted_cluster(wg, 2, opts);
  EXPECT_TRUE(c.validate(wg)) << name;

  // Weighted radius never exceeds the weighted diameter; hop radius never
  // exceeds the weighted radius (weights >= 1).
  const Weight wdiam = weighted_diameter_exact(wg);
  EXPECT_LE(c.max_weighted_radius(), wdiam) << name;
  EXPECT_LE(c.max_hop_radius(), c.max_weighted_radius()) << name;

  // Weighted distance dominates the true weighted shortest path.
  const auto exact = dijkstra(wg, c.centers[c.assignment[0]]);
  EXPECT_GE(c.dist_to_center[0], exact[0]) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, WeightedClusterPropertyTest,
    ::testing::ValuesIn(testutil::small_connected_corpus()),
    [](const ::testing::TestParamInfo<testutil::NamedGraph>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(WeightedCluster, DeterministicForSeed) {
  const WeightedGraph g = weighted_version(gen::grid(25, 25), 3);
  WeightedClusterOptions opts;
  opts.seed = 5;
  const WeightedClustering a = weighted_cluster(g, 4, opts);
  const WeightedClustering b = weighted_cluster(g, 4, opts);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.dist_to_center, b.dist_to_center);
}

TEST(WeightedCluster, HeavyEdgeActsAsBarrier) {
  // Path 0-1-2-3-4-5 with a weight-100 middle edge: growing from both
  // sides, the wavefront crosses the barrier only after 100 clock units,
  // so the two halves end in different clusters.
  const WeightedGraph g = WeightedGraph::from_edges(
      6, {{0, 1, 1}, {1, 2, 1}, {2, 3, 100}, {3, 4, 1}, {4, 5, 1}});
  WeightedClusterOptions opts;
  opts.seed = 1;
  opts.threshold_constant = 0.5;  // force the wave loop to run
  // tau large: both endpoints likely selected in the first wave; but the
  // deterministic property we check only needs validity + barrier.
  const WeightedClustering c = weighted_cluster(g, 2, opts);
  EXPECT_TRUE(c.validate(g));
  if (c.assignment[2] == c.assignment[3]) {
    // Same cluster means the 100-weight edge was traversed.
    EXPECT_GE(c.max_weighted_radius(), 100u);
  }
}

TEST(WeightedCluster, SingleNodeAndTinyGraphs) {
  const WeightedGraph g1 =
      WeightedGraph::from_unit_weights(gen::path(1));
  const WeightedClustering c1 = weighted_cluster(g1, 1, {});
  EXPECT_EQ(c1.num_clusters(), 1u);
  EXPECT_TRUE(c1.validate(g1));

  const WeightedGraph g10 =
      WeightedGraph::from_unit_weights(gen::path(10));
  const WeightedClustering c10 = weighted_cluster(g10, 4, {});
  EXPECT_TRUE(c10.validate(g10));
}

TEST(WeightedClusterDeathTest, RejectsZeroWeights) {
  const WeightedGraph g = WeightedGraph::from_edges(2, {{0, 1, 0}});
  EXPECT_DEATH((void)weighted_cluster(g, 1, {}), "weights >= 1");
}

TEST(WeightedClusterDeathTest, RejectsTauZero)
{
  const WeightedGraph g = WeightedGraph::from_unit_weights(gen::path(4));
  EXPECT_DEATH((void)weighted_cluster(g, 0, {}), "tau");
}

TEST(WeightedDiameterApprox, SandwichOnCorpus) {
  for (const auto& [name, graph] : testutil::small_connected_corpus()) {
    if (graph.num_nodes() > 700) continue;  // keep Dijkstra APSP cheap
    const WeightedGraph wg = weighted_version(graph, 17);
    const Weight truth = weighted_diameter_exact(wg);
    WeightedClusterOptions opts;
    opts.seed = 19;
    const WeightedDiameterApprox a =
        approximate_weighted_diameter(wg, 2, opts);
    EXPECT_GE(a.upper_bound, truth) << name;
    // Generous polylog sanity ceiling (log³n with constant 16).
    const double logn =
        std::max(2.0, std::log2(static_cast<double>(graph.num_nodes())));
    EXPECT_LE(static_cast<double>(a.upper_bound),
              16.0 * truth * logn * logn * logn)
        << name;
  }
}

TEST(WeightedDiameterApprox, ExactOnUnitWeightsMatchesUnweightedPipeline) {
  const Graph g = gen::grid(20, 20);
  const WeightedGraph wg = WeightedGraph::from_unit_weights(g);
  WeightedClusterOptions opts;
  opts.seed = 23;
  const WeightedDiameterApprox a = approximate_weighted_diameter(wg, 4, opts);
  EXPECT_GE(a.upper_bound, 38u);  // true diameter of the 20x20 grid
  EXPECT_EQ(a.max_hop_radius, a.max_weighted_radius);
}

}  // namespace
}  // namespace gclus
