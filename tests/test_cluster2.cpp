// Tests for CLUSTER2(τ) — Algorithm 2: validity across the corpus, the
// Lemma-2 radius bound R_ALG2 <= 2·R_ALG·log n, growth-quota behavior,
// and the cluster count relation to CLUSTER.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/cluster2.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace gclus {
namespace {

class Cluster2PropertyTest
    : public ::testing::TestWithParam<testutil::NamedGraph> {};

TEST_P(Cluster2PropertyTest, ValidPartitionWithinLemma2Bounds) {
  const auto& [name, graph] = GetParam();
  ClusterOptions opts;
  opts.seed = 11;
  const Cluster2Result r = cluster2(graph, 2, opts);
  EXPECT_TRUE(r.clustering.validate(graph)) << name;

  // Lemma 2: R_ALG2 <= 2·R_ALG·log n.  The implementation enforces the
  // per-iteration quota, so this holds deterministically (with the quota
  // floor of one step for R_ALG = 0).
  const double logn =
      std::max(1.0, std::log2(static_cast<double>(graph.num_nodes())));
  const double quota = std::max<double>(1.0, 2.0 * r.r_alg);
  EXPECT_LE(r.clustering.max_radius(), quota * logn) << name;

  // The preliminary run contributes its growth steps to the accounting.
  EXPECT_GE(r.prelim_growth_steps, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Cluster2PropertyTest,
    ::testing::ValuesIn(testutil::small_connected_corpus()),
    [](const ::testing::TestParamInfo<testutil::NamedGraph>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(Cluster2, DeterministicForSeed) {
  const Graph g = gen::grid(30, 30);
  ClusterOptions opts;
  opts.seed = 21;
  const Cluster2Result a = cluster2(g, 2, opts);
  const Cluster2Result b = cluster2(g, 2, opts);
  EXPECT_EQ(a.clustering.assignment, b.clustering.assignment);
  EXPECT_EQ(a.r_alg, b.r_alg);
}

TEST(Cluster2, DeterministicAcrossThreadCounts) {
  const Graph g = gen::road_like(22, 22, 0.08, 0.02, 9);
  auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    ClusterOptions opts;
    opts.seed = 31;
    opts.pool = &pool;
    return cluster2(g, 2, opts);
  };
  const Cluster2Result a = run(1);
  const Cluster2Result b = run(4);
  EXPECT_EQ(a.clustering.assignment, b.clustering.assignment);
  EXPECT_EQ(a.clustering.dist_to_center, b.clustering.dist_to_center);
}

TEST(Cluster2, ProducesMoreClustersThanClusterAlone) {
  // Lemma 2 allows an extra log² factor; at minimum CLUSTER2 should not
  // collapse to trivially few clusters on a large-diameter graph.
  const Graph g = gen::grid(40, 40);
  ClusterOptions opts;
  opts.seed = 41;
  const Cluster2Result r2 = cluster2(g, 2, opts);
  EXPECT_GE(r2.clustering.num_clusters(), 2u);
}

TEST(Cluster2, FullCoverageOnAwkwardSizes) {
  // Non-power-of-two n exercises the final-iteration probability clamp and
  // the post-loop singleton sweep.
  for (const NodeId n : {3u, 5u, 17u, 100u, 1021u}) {
    const Graph g = gen::path(n);
    const Cluster2Result r = cluster2(g, 1, {});
    EXPECT_TRUE(r.clustering.validate(g)) << "n=" << n;
  }
}

TEST(Cluster2, SingleNodeGraph) {
  const Graph g = gen::path(1);
  const Cluster2Result r = cluster2(g, 1, {});
  EXPECT_EQ(r.clustering.num_clusters(), 1u);
  EXPECT_TRUE(r.clustering.validate(g));
}

TEST(Cluster2DeathTest, RejectsTauZero) {
  const Graph g = gen::path(4);
  EXPECT_DEATH((void)cluster2(g, 0, {}), "tau");
}

TEST(Cluster2, RadiusRespectsQuotaTimesIterations) {
  // Any single cluster's radius is at most quota · (#iterations since its
  // activation); globally, quota · iterations.
  const Graph g = gen::grid(32, 32);
  ClusterOptions opts;
  opts.seed = 51;
  const Cluster2Result r = cluster2(g, 2, opts);
  const std::size_t quota = std::max<std::size_t>(1, 2 * r.r_alg);
  EXPECT_LE(r.clustering.max_radius(),
            quota * r.clustering.iterations);
}

}  // namespace
}  // namespace gclus
