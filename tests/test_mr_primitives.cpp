// Tests for the Fact-1 MR primitives: multi-round sample sort and
// (segmented) prefix sums, swept across input sizes and M_L settings.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "mapreduce/primitives.hpp"

namespace gclus::mr {
namespace {

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(1000000);
  return v;
}

struct SortParam {
  std::size_t n;
  std::size_t local_memory;
};

class MrSortTest : public ::testing::TestWithParam<SortParam> {};

TEST_P(MrSortTest, MatchesStdSort) {
  Config cfg;
  cfg.local_memory_pairs = GetParam().local_memory;
  Engine engine(cfg);
  auto values = random_values(GetParam().n, 42 + GetParam().n);
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  const auto got = mr_sort(engine, std::move(values));
  EXPECT_EQ(got, expected);
  if (GetParam().n > 1) {
    EXPECT_GE(engine.metrics().rounds, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MrSortTest,
    ::testing::Values(SortParam{0, 100}, SortParam{1, 100}, SortParam{50, 100},
                      SortParam{1000, 100}, SortParam{1000, 64},
                      SortParam{10000, 256}, SortParam{10000, 1000},
                      SortParam{5000, 16}),
    [](const ::testing::TestParamInfo<SortParam>& info) {
      return "n" + std::to_string(info.param.n) + "_ml" +
             std::to_string(info.param.local_memory);
    });

TEST(MrSort, SingleRoundWhenInputFitsLocally) {
  Config cfg;
  cfg.local_memory_pairs = 10000;
  Engine engine(cfg);
  (void)mr_sort(engine, random_values(100, 7));
  EXPECT_EQ(engine.metrics().rounds, 1u);
}

TEST(MrSort, MultiRoundWhenInputExceedsLocalMemory) {
  Config cfg;
  cfg.local_memory_pairs = 100;
  Engine engine(cfg);
  (void)mr_sort(engine, random_values(5000, 7));
  EXPECT_GE(engine.metrics().rounds, 2u);  // splitter round + bucket round
  // Skewed-sample recursions may add rounds, but the headroom in the
  // bucket count keeps the total small.
  EXPECT_LE(engine.metrics().rounds, 20u);
}

TEST(MrSort, AlreadySortedAndReversedInputs) {
  Config cfg;
  cfg.local_memory_pairs = 64;
  Engine engine(cfg);
  std::vector<std::uint64_t> asc(1000);
  std::iota(asc.begin(), asc.end(), 0);
  EXPECT_EQ(mr_sort(engine, asc), asc);
  std::vector<std::uint64_t> desc(asc.rbegin(), asc.rend());
  EXPECT_EQ(mr_sort(engine, desc), asc);
}

TEST(MrSort, AllEqualValues) {
  Config cfg;
  cfg.local_memory_pairs = 32;
  Engine engine(cfg);
  std::vector<std::uint64_t> same(500, 77);
  EXPECT_EQ(mr_sort(engine, same), same);
}

struct PrefixParam {
  std::size_t n;
  std::size_t local_memory;
};

class MrPrefixSumTest : public ::testing::TestWithParam<PrefixParam> {};

TEST_P(MrPrefixSumTest, MatchesSequentialScan) {
  Config cfg;
  cfg.local_memory_pairs = GetParam().local_memory;
  Engine engine(cfg);
  const auto values = random_values(GetParam().n, 5 + GetParam().n);
  std::uint64_t total = 0;
  const auto got = mr_prefix_sum(engine, values, &total);
  std::uint64_t running = 0;
  ASSERT_EQ(got.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(got[i], running) << "position " << i;
    running += values[i];
  }
  EXPECT_EQ(total, running);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MrPrefixSumTest,
    ::testing::Values(PrefixParam{1, 4}, PrefixParam{16, 4},
                      PrefixParam{1000, 8}, PrefixParam{1000, 100},
                      PrefixParam{4096, 16}, PrefixParam{777, 2}),
    [](const ::testing::TestParamInfo<PrefixParam>& info) {
      return "n" + std::to_string(info.param.n) + "_ml" +
             std::to_string(info.param.local_memory);
    });

TEST(MrPrefixSum, EmptyInput) {
  Engine engine;
  std::uint64_t total = 99;
  const auto got = mr_prefix_sum(engine, {}, &total);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(total, 0u);
}

TEST(MrPrefixSum, RoundCountGrowsAsLocalMemoryShrinks) {
  const auto values = random_values(4096, 3);
  auto rounds_with = [&](std::size_t ml) {
    Config cfg;
    cfg.local_memory_pairs = ml;
    Engine engine(cfg);
    (void)mr_prefix_sum(engine, values);
    return engine.metrics().rounds;
  };
  // Fan-in 2 needs ~2·log2(n) rounds; fan-in 4096 needs ~2.
  EXPECT_GT(rounds_with(2), rounds_with(64));
  EXPECT_GT(rounds_with(64), rounds_with(8192));
}

TEST(MrSegmentedPrefixSum, ResetsAtSegmentBoundaries) {
  Engine engine;
  const std::vector<std::uint64_t> values{1, 2, 3, 4, 5, 6};
  const std::vector<std::uint32_t> segs{0, 0, 1, 1, 1, 2};
  const auto got = mr_segmented_prefix_sum(engine, values, segs);
  const std::vector<std::uint64_t> expected{0, 1, 0, 3, 7, 0};
  EXPECT_EQ(got, expected);
}

TEST(MrSegmentedPrefixSum, SingleSegmentEqualsPlainScan) {
  Config cfg;
  cfg.local_memory_pairs = 8;
  Engine engine(cfg);
  const auto values = random_values(300, 11);
  const std::vector<std::uint32_t> segs(300, 5);
  const auto seg = mr_segmented_prefix_sum(engine, values, segs);
  Engine engine2;
  const auto plain = mr_prefix_sum(engine2, values);
  EXPECT_EQ(seg, plain);
}

TEST(MrSegmentedPrefixSum, EverySegmentSingleton) {
  Engine engine;
  const std::vector<std::uint64_t> values{9, 8, 7};
  const std::vector<std::uint32_t> segs{0, 1, 2};
  const auto got = mr_segmented_prefix_sum(engine, values, segs);
  EXPECT_EQ(got, (std::vector<std::uint64_t>{0, 0, 0}));
}

TEST(MrSegmentedPrefixSumDeathTest, RejectsDecreasingSegments) {
  Engine engine;
  EXPECT_DEATH(
      (void)mr_segmented_prefix_sum(engine, {1, 2}, {1, 0}),
      "nondecreasing");
}

}  // namespace
}  // namespace gclus::mr
