// Tests for the compressed adjacency layout: the full-registry corpus
// sweep (every algorithm on a compressed graph — kAuto and forced
// relabeling — must match the owning plain-CSR run byte for byte, since
// public outputs stay in original ids), structural round trips through
// compress/decompress, the CSR v2 compressed file format, and the dataset
// cache, plus adversarial decode inputs: single-bit flips anywhere in the
// file must come back as a Status (never a wrong answer or an abort),
// truncation mid-bitstream is kDataLoss, and zero-degree runs and
// escape-coded maximal gaps round-trip exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/registry.hpp"
#include "api/run_context.hpp"
#include "graph/compressed.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "par/thread_pool.hpp"
#include "test_util.hpp"
#include "workloads/datasets.hpp"

namespace gclus {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// RAII temp file.
struct TempFile {
  explicit TempFile(const std::string& name) : path(temp_path(name)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

/// Symmetric CSR from an undirected edge list over exactly `n` vertices —
/// unlike the generators, this keeps isolated vertices, which the
/// zero-degree-run tests need.
Graph from_undirected_edges(NodeId n,
                            const std::vector<std::pair<NodeId, NodeId>>& es) {
  std::vector<std::vector<NodeId>> adj(n);
  for (const auto& [u, v] : es) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  std::vector<EdgeId> offsets(n + 1, 0);
  std::vector<NodeId> neighbors;
  for (NodeId u = 0; u < n; ++u) {
    std::sort(adj[u].begin(), adj[u].end());
    offsets[u + 1] = offsets[u] + adj[u].size();
    neighbors.insert(neighbors.end(), adj[u].begin(), adj[u].end());
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

/// Same params as the plain-registry corpus sweep in test_api.cpp.
AlgoParams corpus_params(const std::string& algo) {
  AlgoParams p;
  if (algo == "mpx" || algo == "mr.mpx") {
    p.set("beta", 0.4);
  } else if (algo == "random_centers" || algo == "gonzalez" ||
             algo == "kcenter") {
    p.set("k", std::uint64_t{4});
  } else if (algo == "mr.bfs") {
    p.set("source", std::uint64_t{0});
  } else {
    p.set("tau", std::uint64_t{2});
  }
  if (algo.rfind("mr.", 0) == 0) {
    p.set("spill_bytes", std::uint64_t{4096});
  }
  return p;
}

// ---- full-registry corpus sweep against the plain-CSR reference -------------

class CompressedCorpusTest
    : public ::testing::TestWithParam<testutil::NamedGraph> {};

TEST_P(CompressedCorpusTest, AllAlgorithmsMatchPlainRun) {
  const auto& [name, graph] = GetParam();
  const CompressedGraph cz_auto = compress(graph);
  // kAlways still drops the maps when the degree-descending order is the
  // identity (regular graphs), so not every corpus entry relabels — the
  // skewed ones (power-law, rmat, grids) do.
  const CompressedGraph cz_relabeled =
      compress(graph, {.relabel = RelabelMode::kAlways});

  for (const std::string& algo : registry().names()) {
    const AlgoParams params = corpus_params(algo);

    ThreadPool serial(1);
    RunContext ctx;
    ctx.seed = 7;
    ctx.pool = &serial;
    const Clustering reference = registry().run(algo, graph, params, ctx);

    // Outputs are in original vertex ids regardless of the storage
    // relabeling, so the checks are plain equality — the inverse mapping
    // is the implementation's job, not the caller's.
    for (const CompressedGraph* cz : {&cz_auto, &cz_relabeled}) {
      RunContext cctx;
      cctx.seed = 7;
      cctx.pool = &serial;
      const Clustering c = registry().run(algo, *cz, params, cctx);
      EXPECT_EQ(c.assignment, reference.assignment)
          << algo << " on " << name
          << (cz->relabeled() ? " (relabeled)" : " (auto)");
      EXPECT_EQ(c.centers, reference.centers) << algo << " on " << name;
      EXPECT_EQ(c.dist_to_center, reference.dist_to_center)
          << algo << " on " << name;
    }

    // And the compressed path must stay thread-count invariant.
    ThreadPool pool8(8);
    RunContext pctx;
    pctx.seed = 7;
    pctx.pool = &pool8;
    const Clustering c8 = registry().run(algo, cz_relabeled, params, pctx);
    EXPECT_EQ(c8.assignment, reference.assignment)
        << algo << " on " << name << " with 8 threads";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CompressedCorpusTest,
    ::testing::ValuesIn(testutil::small_connected_corpus()),
    [](const ::testing::TestParamInfo<testutil::NamedGraph>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

// ---- structural and file round trips ----------------------------------------

TEST(Compressed, CorpusRoundTripsThroughFileAndDecompress) {
  TempFile f("gclus_cz_roundtrip.csr2");
  ThreadPool pool(4);
  for (const auto& [name, g] : testutil::small_connected_corpus()) {
    for (const RelabelMode mode : {RelabelMode::kAuto, RelabelMode::kAlways}) {
      const CompressedGraph cz = compress(g, pool, {.relabel = mode});
      EXPECT_TRUE(validate_compressed_structure(cz, pool).ok()) << name;
      EXPECT_TRUE(testutil::same_csr(cz.decompress(pool), g)) << name;

      io::write_csr_file(cz, f.path);
      const auto loaded = io::load_compressed_csr(f.path);
      ASSERT_TRUE(loaded.ok()) << name << ": " << loaded.status().message();
      EXPECT_EQ(loaded.value().relabeled(), cz.relabeled()) << name;
      EXPECT_TRUE(testutil::same_csr(loaded.value().decompress(pool), g))
          << name;

      // Plain-CSR consumers accept the compressed file transparently.
      const auto plain = io::load_csr(f.path);
      ASSERT_TRUE(plain.ok()) << name;
      EXPECT_TRUE(testutil::same_csr(plain.value(), g)) << name;
    }
  }
}

TEST(Compressed, ZeroDegreeRunsRoundTrip) {
  // Leading, interior, and trailing runs of isolated vertices: a path
  // over every third vertex starting at 30, so storage holds long runs
  // of zero-degree entries the index and decode walk must skip exactly.
  const NodeId n = 240;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 30; u + 3 < 180; u += 3) edges.emplace_back(u, u + 3);
  const Graph g = from_undirected_edges(n, edges);
  ASSERT_TRUE(g.validate());

  ThreadPool pool(2);
  TempFile f("gclus_cz_zerodeg.csr2");
  for (const RelabelMode mode : {RelabelMode::kAuto, RelabelMode::kAlways}) {
    const CompressedGraph cz = compress(g, pool, {.relabel = mode});
    EXPECT_TRUE(validate_compressed_structure(cz, pool).ok());
    EXPECT_TRUE(testutil::same_csr(cz.decompress(pool), g));

    io::write_csr_file(cz, f.path);
    const auto loaded = io::load_compressed_csr(f.path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_TRUE(testutil::same_csr(loaded.value().decompress(pool), g));
  }
}

TEST(Compressed, MaxGapDeltasUseEscapeAndRoundTrip) {
  // A dense low-id path keeps the chosen Rice parameter small, so the two
  // far edges produce gaps whose unary quotient blows past the cap — the
  // encoder must fall back to the raw escape code, and the decoder must
  // read it back exactly.
  const NodeId n = 70000;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u + 1 < 100; ++u) edges.emplace_back(u, u + 1);
  edges.emplace_back(0, n - 1);
  edges.emplace_back(50, n - 2);
  const Graph g = from_undirected_edges(n, edges);
  ASSERT_TRUE(g.validate());

  ThreadPool pool(2);
  TempFile f("gclus_cz_maxgap.csr2");
  for (const RelabelMode mode : {RelabelMode::kAuto, RelabelMode::kAlways}) {
    const CompressedGraph cz = compress(g, pool, {.relabel = mode});
    EXPECT_TRUE(validate_compressed_structure(cz, pool).ok());
    EXPECT_TRUE(testutil::same_csr(cz.decompress(pool), g));

    io::write_csr_file(cz, f.path);
    const auto loaded = io::load_compressed_csr(f.path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_TRUE(testutil::same_csr(loaded.value().decompress(pool), g));
  }
}

TEST(Compressed, RelabelingIsABijectionAndAutoSkipsRegularGraphs) {
  // A near-regular graph has nothing to gain from degree ordering, so
  // kAuto must keep the identity (no perm/inv cost).  On an *exactly*
  // regular graph even kAlways drops the maps: the degree-descending
  // stable order is the identity.
  EXPECT_FALSE(compress(gen::expander(2000, 4, 9)).relabeled());
  EXPECT_FALSE(
      compress(gen::cycle(500), {.relabel = RelabelMode::kAlways}).relabeled());

  // A skewed graph reorders; the forced maps must be a bijection and
  // decode back to the original ids exactly.
  const Graph skew = gen::preferential_attachment(4000, 3, 11);
  const CompressedGraph forced =
      compress(skew, {.relabel = RelabelMode::kAlways});
  ASSERT_TRUE(forced.relabeled());
  for (NodeId u = 0; u < skew.num_nodes(); ++u) {
    EXPECT_EQ(forced.to_original(forced.to_storage(u)), u);
  }
  EXPECT_TRUE(testutil::same_csr(forced.decompress(), skew));
}

// ---- adversarial inputs -----------------------------------------------------

TEST(CompressedCorruption, EveryBitFlipComesBackAsStatus) {
  TempFile f("gclus_cz_bitflip.csr2");
  const Graph g = gen::grid(12, 12);
  const CompressedGraph cz = compress(g, {.relabel = RelabelMode::kAlways});
  io::write_csr_file(cz, f.path);
  const auto size = std::filesystem::file_size(f.path);

  std::fstream patch(f.path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(patch.good());
  std::uint64_t padding_loads = 0;
  for (std::uint64_t off = 0; off < size; ++off) {
    patch.seekg(static_cast<std::streamoff>(off));
    const char orig = static_cast<char>(patch.get());
    const char flipped =
        static_cast<char>(orig ^ static_cast<char>(1u << (off % 8)));
    patch.seekp(static_cast<std::streamoff>(off));
    patch.write(&flipped, 1);
    patch.flush();

    // Any single flipped bit must surface as a Status — never an abort,
    // never a silently wrong graph.  The only flips allowed to load are
    // the ones in the zeroed inter-section alignment padding, which carry
    // no information: if the load succeeds, the graph must still be
    // byte-identical to the original.
    const auto loaded = io::load_compressed_csr(f.path);
    if (loaded.ok()) {
      ++padding_loads;
      EXPECT_TRUE(testutil::same_csr(loaded.value().decompress(), g))
          << "bit flip at byte " << off << " loaded a different graph";
    } else {
      const StatusCode code = loaded.status().code();
      EXPECT_TRUE(code == StatusCode::kDataLoss ||
                  code == StatusCode::kInvalidArgument)
          << "byte " << off << ": " << loaded.status().message();
    }

    patch.seekp(static_cast<std::streamoff>(off));
    patch.write(&orig, 1);
    patch.flush();
  }
  // The alignment gaps are a small fixed overhead; nearly every byte in
  // the file must be load-bearing (checksummed and rejected when flipped).
  EXPECT_LT(padding_loads, size / 4);
  EXPECT_TRUE(io::load_compressed_csr(f.path).ok());  // restored intact
}

TEST(CompressedCorruption, TruncationMidBitstreamIsDataLoss) {
  TempFile f("gclus_cz_trunc.csr2");
  const Graph g = gen::ring_of_cliques(12, 8);
  const CompressedGraph cz = compress(g);
  io::write_csr_file(cz, f.path);
  const auto full = std::filesystem::file_size(f.path);

  // Cut points from "almost whole" down into the middle of the adjacency
  // bitstream — including ones that end inside a vertex's code word.
  for (const std::uint64_t keep :
       {full - 1, full - 7, full * 7 / 8, full * 3 / 4, full / 2}) {
    io::write_csr_file(cz, f.path);
    std::filesystem::resize_file(f.path, keep);
    const auto loaded = io::load_compressed_csr(f.path);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " of " << full;
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << loaded.status().message();
  }
}

TEST(CompressedCorruption, PlainAndWeightedFilesAreInvalidArgument) {
  TempFile f("gclus_cz_family.csr2");
  io::write_csr_file(gen::grid(6, 6), f.path);
  const auto plain = io::load_compressed_csr(f.path);
  ASSERT_FALSE(plain.ok());
  EXPECT_EQ(plain.status().code(), StatusCode::kInvalidArgument);
}

// ---- dataset cache ----------------------------------------------------------

TEST(CompressedCache, RoundTripsThroughDatasetCache) {
  // Scoped cache dir (mirrors test_workloads.cpp): restore whatever the
  // suite had configured afterwards.
  const std::string dir = temp_path("gclus_cz_cache");
  std::optional<std::string> prev;
  if (const char* p = std::getenv("GCLUS_DATASET_CACHE_DIR")) prev = p;
  std::filesystem::remove_all(dir);
  setenv("GCLUS_DATASET_CACHE_DIR", dir.c_str(), /*overwrite=*/1);

  const Graph plain = gen::preferential_attachment(3000, 3, 17);
  const auto build = [&] { return gen::preferential_attachment(3000, 3, 17); };

  const auto before = workloads::dataset_cache_stats();
  const CompressedGraph miss =
      workloads::cached_compressed_graph("cz-test-pa3000", build);
  const CompressedGraph hit =
      workloads::cached_compressed_graph("cz-test-pa3000", build);
  const auto after = workloads::dataset_cache_stats();

  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_TRUE(testutil::same_csr(miss.decompress(), plain));
  EXPECT_TRUE(testutil::same_csr(hit.decompress(), plain));

  if (prev.has_value()) {
    setenv("GCLUS_DATASET_CACHE_DIR", prev->c_str(), /*overwrite=*/1);
  } else {
    unsetenv("GCLUS_DATASET_CACHE_DIR");
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gclus
