// Tests for the spill layer itself: run round-tripping, bounded-buffer
// cursors, and — the part the engine can't exercise from the outside —
// fault injection.  A broken spill environment must surface as a clean
// error Status with an actionable message (so the engine can fail over or
// degrade), never as an abort and never as a silently wrong round output.
// The one remaining death test covers a genuine API-contract violation
// (appending an empty run), which stays a GCLUS_CHECK by design.
//
// The final stress test drives a large multi-round workload through a
// 1 KiB budget; it is labeled "spill_stress" in CMake and skipped unless
// GCLUS_SPILL_STRESS=1 (CI's low-memory job sets it), so plain `ctest`
// stays fast.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "common/faultpoint.hpp"
#include "common/status.hpp"
#include "graph/generators.hpp"
#include "mapreduce/engine.hpp"
#include "mapreduce/spill.hpp"
#include "mr_algos/mr_cluster.hpp"

namespace gclus::mr {
namespace {

namespace fs = std::filesystem;

struct Rec {
  std::uint32_t key;
  std::uint64_t pos;
};

std::vector<Rec> make_run(std::uint32_t base, std::size_t n) {
  std::vector<Rec> run(n);
  for (std::size_t i = 0; i < n; ++i) {
    run[i] = Rec{base + static_cast<std::uint32_t>(i),
                 static_cast<std::uint64_t>(i)};
  }
  return run;
}

std::vector<Rec> read_all(RunCursor& cursor) {
  std::vector<Rec> out;
  while (const void* rec = cursor.next()) {
    out.push_back(*static_cast<const Rec*>(rec));
  }
  return out;
}

/// Disarms every fault point on scope exit, so an assertion failure in
/// one test cannot leave injection armed for the next.
struct FaultGuard {
  ~FaultGuard() { fault::disarm_all(); }
};

TEST(SpillSession, RoundTripsRunsPerPartition) {
  SpillSession session("", /*num_partitions=*/4, sizeof(Rec));
  const auto run_a = make_run(100, 1000);
  const auto run_b = make_run(5000, 3);
  ASSERT_TRUE(session.append_run(1, run_a.data(), run_a.size()).ok());
  ASSERT_TRUE(session.append_run(1, run_b.data(), run_b.size()).ok());
  ASSERT_TRUE(session.append_run(3, run_b.data(), run_b.size()).ok());
  ASSERT_TRUE(session.seal().ok());

  EXPECT_EQ(session.num_runs(0), 0u);
  EXPECT_EQ(session.num_runs(1), 2u);
  EXPECT_EQ(session.num_runs(3), 1u);
  EXPECT_EQ(session.total_runs(), 3u);
  EXPECT_EQ(session.bytes_written(), (1000u + 3u + 3u) * sizeof(Rec));

  // A tiny refill buffer (3 records per read) must still reproduce the
  // 1000-record run exactly.
  auto cursors = session.open_partition(1, /*buffer_records=*/3);
  ASSERT_TRUE(cursors.ok()) << cursors.status().to_string();
  ASSERT_EQ(cursors->size(), 2u);
  std::vector<Rec> got_a = read_all((*cursors)[0]);
  std::vector<Rec> got_b = read_all((*cursors)[1]);
  EXPECT_TRUE((*cursors)[0].status().ok());
  EXPECT_TRUE((*cursors)[1].status().ok());
  ASSERT_EQ(got_a.size(), run_a.size());
  for (std::size_t i = 0; i < run_a.size(); ++i) {
    EXPECT_EQ(got_a[i].key, run_a[i].key);
    EXPECT_EQ(got_a[i].pos, run_a[i].pos);
  }
  EXPECT_EQ(got_b.size(), run_b.size());
}

TEST(SpillSession, InterleavedCursorsShareTheFile) {
  // Two cursors alternate over the same partition file: every refill must
  // seek to its own offset, so interleaving cannot cross-contaminate.
  SpillSession session("", 1, sizeof(Rec));
  const auto run_a = make_run(0, 500);
  const auto run_b = make_run(100000, 500);
  ASSERT_TRUE(session.append_run(0, run_a.data(), run_a.size()).ok());
  ASSERT_TRUE(session.append_run(0, run_b.data(), run_b.size()).ok());
  ASSERT_TRUE(session.seal().ok());
  auto cursors = session.open_partition(0, 7);
  ASSERT_TRUE(cursors.ok()) << cursors.status().to_string();
  ASSERT_EQ(cursors->size(), 2u);
  for (std::size_t i = 0; i < 500; ++i) {
    const auto* a = static_cast<const Rec*>((*cursors)[0].next());
    const auto* b = static_cast<const Rec*>((*cursors)[1].next());
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->key, run_a[i].key);
    EXPECT_EQ(b->key, run_b[i].key);
  }
  EXPECT_EQ((*cursors)[0].next(), nullptr);
  EXPECT_EQ((*cursors)[1].next(), nullptr);
  EXPECT_TRUE((*cursors)[0].status().ok());
  EXPECT_TRUE((*cursors)[1].status().ok());
}

TEST(SpillSession, RemovesItsDirectoryOnDestruction) {
  std::string dir;
  {
    SpillSession session("", 2, sizeof(Rec));
    const auto run = make_run(0, 10);
    ASSERT_TRUE(session.append_run(0, run.data(), run.size()).ok());
    ASSERT_TRUE(session.seal().ok());
    dir = session.directory();
    EXPECT_TRUE(fs::exists(dir));
  }
  EXPECT_FALSE(fs::exists(dir));
}

// --- Environmental failures: clean Status, never an abort. ---

TEST(SpillSession, UnwritableDirectoryReturnsIoError) {
  SpillSession session("/proc/definitely/not/writable", 2, sizeof(Rec));
  const auto run = make_run(0, 4);
  const Status st = session.append_run(0, run.data(), run.size());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("spill directory not writable"),
            std::string::npos)
      << st.to_string();
  // The failure is sticky: later appends fail the same way without
  // re-probing the filesystem.
  EXPECT_FALSE(session.append_run(1, run.data(), run.size()).ok());
}

TEST(SpillSession, TruncatedRunFileIsDataLossAtOpen) {
  SpillSession session("", 1, sizeof(Rec));
  const auto run = make_run(0, 2000);
  ASSERT_TRUE(session.append_run(0, run.data(), run.size()).ok());
  ASSERT_TRUE(session.seal().ok());
  // Simulate a torn write / full disk discovered late: chop the file.
  const fs::path file = fs::path(session.directory()) / "part-0.run";
  ASSERT_TRUE(fs::exists(file));
  fs::resize_file(file, fs::file_size(file) / 2);
  auto cursors = session.open_partition(0, 64);
  ASSERT_FALSE(cursors.ok());
  EXPECT_EQ(cursors.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(cursors.status().message().find("spill run truncated"),
            std::string::npos)
      << cursors.status().to_string();
}

TEST(SpillSession, TruncatedRunFileIsDataLossAtCursor) {
  // Truncation after open_partition's size check: the cursor's short
  // read (at EOF) must park kDataLoss, not return garbage records.
  SpillSession session("", 1, sizeof(Rec));
  const auto run = make_run(0, 2000);
  ASSERT_TRUE(session.append_run(0, run.data(), run.size()).ok());
  ASSERT_TRUE(session.seal().ok());
  auto cursors = session.open_partition(0, 64);
  ASSERT_TRUE(cursors.ok()) << cursors.status().to_string();
  const fs::path file = fs::path(session.directory()) / "part-0.run";
  fs::resize_file(file, fs::file_size(file) / 2);
  std::size_t delivered = 0;
  for (auto& c : *cursors) {
    while (c.next() != nullptr) ++delivered;
    EXPECT_FALSE(c.status().ok());
    EXPECT_EQ(c.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(c.status().message().find("spill run truncated"),
              std::string::npos)
        << c.status().to_string();
  }
  EXPECT_LT(delivered, run.size());
}

// --- Injected faults: transient errors retry, hard errors surface. ---

TEST(SpillSession, TransientShortWriteRecoversByRetry) {
  FaultGuard guard;
  fault::arm("spill.write", fault::FaultSpec::once());
  SpillSession session("", 1, sizeof(Rec));
  const auto run = make_run(7, 128);
  ASSERT_TRUE(session.append_run(0, run.data(), run.size()).ok());
  ASSERT_TRUE(session.seal().ok());
  EXPECT_GE(session.write_retries(), 1u);
  // The retried append must have overwritten its own torn first attempt.
  auto cursors = session.open_partition(0, 16);
  ASSERT_TRUE(cursors.ok()) << cursors.status().to_string();
  ASSERT_EQ(cursors->size(), 1u);
  const std::vector<Rec> got = read_all((*cursors)[0]);
  ASSERT_TRUE((*cursors)[0].status().ok());
  ASSERT_EQ(got.size(), run.size());
  for (std::size_t i = 0; i < run.size(); ++i) {
    EXPECT_EQ(got[i].key, run[i].key);
    EXPECT_EQ(got[i].pos, run[i].pos);
  }
}

TEST(SpillSession, PersistentShortWriteEscalatesToIoError) {
  FaultGuard guard;
  fault::arm("spill.write", fault::FaultSpec::always());
  SpillSession session("", 1, sizeof(Rec));
  const auto run = make_run(7, 16);
  const Status st = session.append_run(0, run.data(), run.size());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("giving up after"), std::string::npos)
      << st.to_string();
  EXPECT_EQ(session.num_runs(0), 0u);
}

TEST(SpillSession, TransientShortReadRecoversByRetry) {
  FaultGuard guard;
  SpillSession session("", 1, sizeof(Rec));
  const auto run = make_run(42, 512);
  ASSERT_TRUE(session.append_run(0, run.data(), run.size()).ok());
  ASSERT_TRUE(session.seal().ok());
  auto cursors = session.open_partition(0, 16);
  ASSERT_TRUE(cursors.ok()) << cursors.status().to_string();
  fault::arm("spill.read", fault::FaultSpec::once());
  const std::vector<Rec> got = read_all((*cursors)[0]);
  EXPECT_TRUE((*cursors)[0].status().ok())
      << (*cursors)[0].status().to_string();
  ASSERT_EQ(got.size(), run.size());
  for (std::size_t i = 0; i < run.size(); ++i) {
    EXPECT_EQ(got[i].key, run[i].key);
  }
}

// --- The one genuine contract violation left: still a GCLUS_CHECK. ---

TEST(SpillSessionDeathTest, EmptyRunsAreRejected) {
  SpillSession session("", 1, sizeof(Rec));
  const auto run = make_run(0, 1);
  EXPECT_DEATH((void)session.append_run(0, run.data(), 0), "empty spill run");
}

// --- Stress: a full decomposition through a 1 KiB budget (slow; gated). ---

TEST(SpillStress, ClusterOnDenseGraphUnder1KiB) {
  if (std::getenv("GCLUS_SPILL_STRESS") == nullptr) {
    GTEST_SKIP() << "set GCLUS_SPILL_STRESS=1 to run (CI low-memory job)";
  }
  const Graph g = gen::expander(20000, 8, 17);
  mr::Config in_mem_cfg;
  in_mem_cfg.spill_memory_bytes = kSpillUnbounded;
  mr::Engine reference_engine(in_mem_cfg);
  mr_algos::MrClusterOptions o;
  o.seed = 23;
  const auto reference =
      mr_algos::mr_cluster(reference_engine, g, 8, o).clustering;

  mr::Config cfg;
  cfg.spill_memory_bytes = 1024;
  cfg.spill_strict = true;
  // Pinned worker count: the peak assertion below relies on budget/W
  // staying above one record, which a huge machine's global pool breaks.
  cfg.num_workers = 4;
  mr::Engine engine(cfg);
  const auto spilled = mr_algos::mr_cluster(engine, g, 8, o).clustering;
  EXPECT_EQ(spilled.assignment, reference.assignment);
  EXPECT_EQ(spilled.centers, reference.centers);
  EXPECT_GT(engine.metrics().bytes_spilled, 1u << 20);
  EXPECT_LE(engine.metrics().peak_shuffle_buffer_bytes, 1024u);
}

}  // namespace
}  // namespace gclus::mr
