// Tests for the baseline decompositions: MPX (validity, determinism,
// radius bound, β monotonicity and tuning) and one-shot random centers
// (validity, the radius pathology CLUSTER avoids).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/mpx.hpp"
#include "baselines/random_centers.hpp"
#include "core/cluster.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "test_util.hpp"

namespace gclus::baselines {
namespace {

class MpxPropertyTest : public ::testing::TestWithParam<testutil::NamedGraph> {
};

TEST_P(MpxPropertyTest, ValidPartitionWithinRadiusBound) {
  const auto& [name, graph] = GetParam();
  MpxOptions opts;
  opts.seed = 7;
  const double beta = 0.5;
  const Clustering c = mpx(graph, beta, opts);
  EXPECT_TRUE(c.validate(graph)) << name;
  // MPX radius bound: O(log n / β) whp.  Constant 8 is generous.
  const double logn =
      std::max(2.0, std::log(static_cast<double>(graph.num_nodes())));
  EXPECT_LE(c.max_radius(), 8.0 * logn / beta) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MpxPropertyTest,
    ::testing::ValuesIn(testutil::small_connected_corpus()),
    [](const ::testing::TestParamInfo<testutil::NamedGraph>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(Mpx, DeterministicAcrossThreadCounts) {
  const Graph g = gen::road_like(25, 25, 0.08, 0.02, 5);
  auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    MpxOptions opts;
    opts.seed = 13;
    opts.pool = &pool;
    return mpx(g, 0.3, opts);
  };
  const Clustering a = run(1);
  const Clustering b = run(4);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.dist_to_center, b.dist_to_center);
}

TEST(Mpx, ClusterCountGrowsWithBeta) {
  const Graph g = gen::grid(40, 40);
  MpxOptions opts;
  opts.seed = 3;
  const auto k_small = mpx(g, 0.05, opts).num_clusters();
  const auto k_large = mpx(g, 2.0, opts).num_clusters();
  EXPECT_LT(k_small, k_large);
}

TEST(Mpx, RadiusShrinksWithBeta) {
  const Graph g = gen::grid(40, 40);
  MpxOptions opts;
  opts.seed = 3;
  const Dist r_small_beta = mpx(g, 0.05, opts).max_radius();
  const Dist r_large_beta = mpx(g, 2.0, opts).max_radius();
  EXPECT_GE(r_small_beta, r_large_beta);
}

TEST(Mpx, TuneBetaReachesTargetClusterCount) {
  const Graph g = gen::grid(30, 30);
  MpxOptions opts;
  opts.seed = 11;
  const ClusterId target = 25;
  const double beta = mpx_tune_beta(g, target, opts);
  const Clustering c = mpx(g, beta, opts);
  EXPECT_GE(c.num_clusters(), target);
  // The tuned beta should not overshoot absurdly (>20x the target).
  EXPECT_LE(c.num_clusters(), 20u * target);
}

TEST(Mpx, DisconnectedGraphSafetyValve) {
  const Graph g = gen::disjoint_union(gen::path(30), gen::grid(6, 6));
  const Clustering c = mpx(g, 0.4, {});
  EXPECT_TRUE(c.validate(g));
}

TEST(MpxDeathTest, RejectsNonPositiveBeta) {
  const Graph g = gen::path(8);
  EXPECT_DEATH((void)mpx(g, 0.0, {}), "beta");
}

class RandomCentersTest
    : public ::testing::TestWithParam<testutil::NamedGraph> {};

TEST_P(RandomCentersTest, ValidPartitionWithRequestedCenters) {
  const auto& [name, graph] = GetParam();
  const NodeId k = std::min<NodeId>(10, graph.num_nodes());
  RandomCentersOptions opts;
  opts.seed = 17;
  const Clustering c = random_centers_clustering(graph, k, opts);
  EXPECT_TRUE(c.validate(graph)) << name;
  EXPECT_GE(c.num_clusters(), k) << name;  // fallbacks may add more
  EXPECT_LE(c.num_clusters(), k + 2) << name;  // connected: none expected
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RandomCentersTest,
    ::testing::ValuesIn(testutil::small_connected_corpus()),
    [](const ::testing::TestParamInfo<testutil::NamedGraph>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(RandomCenters, Deterministic) {
  const Graph g = gen::grid(20, 20);
  RandomCentersOptions opts;
  opts.seed = 23;
  const Clustering a = random_centers_clustering(g, 8, opts);
  const Clustering b = random_centers_clustering(g, 8, opts);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(RandomCenters, MatchedGranularityComparisonOnExpanderPath) {
  // The §3 discussion setting.  At unit-test scale the statistical
  // separation between strategies is not reliable enough for a hard
  // inequality (that comparison lives in bench/ablation_batch_policy at
  // full size); here we check both produce valid partitions at matched
  // granularity and CLUSTER is never pathologically worse.
  const Graph g = gen::expander_with_path(4096, 512, 4, 3);
  ClusterOptions copts;
  copts.seed = 29;
  const Clustering ours = cluster(g, 8, copts);
  RandomCentersOptions ropts;
  ropts.seed = 29;
  const Clustering theirs =
      random_centers_clustering(g, ours.num_clusters(), ropts);
  EXPECT_TRUE(ours.validate(g));
  EXPECT_TRUE(theirs.validate(g));
  EXPECT_EQ(theirs.num_clusters(), ours.num_clusters());
  EXPECT_LE(ours.max_radius(), 2 * theirs.max_radius() + 8)
      << "CLUSTER far worse than one-shot random centers: regression";
  ::testing::Test::RecordProperty(
      "radius_ratio_random_over_cluster",
      static_cast<double>(theirs.max_radius()) /
          std::max<Dist>(1, ours.max_radius()));
}

TEST(RandomCenters, DisconnectedFallback) {
  const Graph g = gen::disjoint_union(gen::path(40), gen::path(3));
  RandomCentersOptions opts;
  opts.seed = 31;
  const Clustering c = random_centers_clustering(g, 2, opts);
  EXPECT_TRUE(c.validate(g));
}

}  // namespace
}  // namespace gclus::baselines
