// Tests for CLUSTER(τ) — Algorithm 1.  Validity and determinism are
// checked on every corpus graph across τ and seeds; the Theorem-1 cluster
// count bound, the Lemma-1 radius behavior, and §3.2's disconnected-graph
// handling get dedicated cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/cluster.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "test_util.hpp"

namespace gclus {
namespace {

struct ClusterParam {
  std::size_t corpus_index;
  std::uint32_t tau;
  std::uint64_t seed;
};

class ClusterPropertyTest : public ::testing::TestWithParam<ClusterParam> {};

TEST_P(ClusterPropertyTest, ProducesValidPartitionWithBoundedCount) {
  const auto corpus = testutil::small_connected_corpus();
  const auto& [name, graph] = corpus.at(GetParam().corpus_index);
  ClusterOptions opts;
  opts.seed = GetParam().seed;
  const Clustering c = cluster(graph, GetParam().tau, opts);

  EXPECT_TRUE(c.validate(graph)) << name;

  // Radius can never exceed the diameter.
  const Dist diam = testutil::brute_force_diameter(graph);
  EXPECT_LE(c.max_radius(), diam) << name;

  // Theorem 1: O(τ·log²n) clusters.  The constant hidden by the O is
  // 4·(stop-threshold slack); 40 is a generous-but-meaningful ceiling
  // that catches regressions to near-singleton behavior.
  const double logn =
      std::max(1.0, std::log2(static_cast<double>(graph.num_nodes())));
  const double bound = 40.0 * GetParam().tau * logn * logn;
  EXPECT_LE(c.num_clusters(), bound) << name;

  // Growth accounting is consistent.
  EXPECT_GE(c.growth_steps, c.max_radius());
}

std::vector<ClusterParam> cluster_params() {
  std::vector<ClusterParam> params;
  const std::size_t corpus_size = testutil::small_connected_corpus().size();
  for (std::size_t g = 0; g < corpus_size; ++g) {
    for (const std::uint32_t tau : {1u, 2u, 8u}) {
      params.push_back({g, tau, 1});
    }
    params.push_back({g, 4, 999});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterPropertyTest, ::testing::ValuesIn(cluster_params()),
    [](const ::testing::TestParamInfo<ClusterParam>& info) {
      return "g" + std::to_string(info.param.corpus_index) + "_tau" +
             std::to_string(info.param.tau) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(Cluster, DeterministicAcrossThreadCounts) {
  const Graph g = gen::road_like(30, 30, 0.08, 0.02, 5);
  auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    ClusterOptions opts;
    opts.seed = 7;
    opts.pool = &pool;
    return cluster(g, 4, opts);
  };
  const Clustering a = run(1);
  const Clustering b = run(2);
  const Clustering c = run(4);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.assignment, c.assignment);
  EXPECT_EQ(a.dist_to_center, c.dist_to_center);
  EXPECT_EQ(a.centers, c.centers);
}

// The partition must be a pure function of (graph, seed, τ): forcing the
// growth engine into push-only, pull-only, or hybrid sweeps across thread
// counts must leave every byte of the clustering unchanged.
TEST(Cluster, TraversalModesGiveIdenticalClusterings) {
  const auto corpus = testutil::small_connected_corpus();
  for (const auto& [name, g] : corpus) {
    auto run = [&g = g](TraversalMode mode, std::size_t threads) {
      ThreadPool pool(threads);
      ClusterOptions opts;
      opts.seed = 11;
      opts.pool = &pool;
      opts.growth.mode = mode;
      return cluster(g, 4, opts);
    };
    const Clustering base = run(TraversalMode::kPushOnly, 1);
    EXPECT_TRUE(base.validate(g)) << name;
    for (const TraversalMode mode :
         {TraversalMode::kPushOnly, TraversalMode::kPullOnly,
          TraversalMode::kAuto}) {
      for (const std::size_t threads : {1u, 2u, 8u}) {
        const Clustering c = run(mode, threads);
        EXPECT_EQ(base.assignment, c.assignment)
            << name << " mode=" << traversal_mode_name(mode)
            << " threads=" << threads;
        EXPECT_EQ(base.dist_to_center, c.dist_to_center) << name;
        EXPECT_EQ(base.centers, c.centers) << name;
        EXPECT_EQ(c.growth_steps, c.push_steps + c.pull_steps) << name;
      }
    }
  }
}

TEST(Cluster, DifferentSeedsGiveDifferentClusterings) {
  const Graph g = gen::grid(30, 30);
  ClusterOptions o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  const Clustering a = cluster(g, 4, o1);
  const Clustering b = cluster(g, 4, o2);
  EXPECT_NE(a.assignment, b.assignment);
}

TEST(Cluster, LargerTauNotMuchLargerRadius) {
  // Radius is (stochastically) non-increasing in τ; allow slack but catch
  // gross inversions on a long path where the effect is strong.
  const Graph g = gen::path(2000);
  ClusterOptions opts;
  opts.seed = 3;
  const Dist r_small = cluster(g, 1, opts).max_radius();
  const Dist r_large = cluster(g, 16, opts).max_radius();
  EXPECT_LE(r_large, r_small);
}

TEST(Cluster, TinyGraphDegeneratesToSingletons) {
  // n < 8·τ·log n: the loop body never runs; every node is a singleton.
  const Graph g = gen::path(10);
  const Clustering c = cluster(g, 4);
  EXPECT_EQ(c.num_clusters(), 10u);
  EXPECT_EQ(c.max_radius(), 0u);
  EXPECT_TRUE(c.validate(g));
}

TEST(Cluster, CoversExpanderPathCompositeTightly) {
  // The §3 discussion: on expander+path, batched activation keeps the
  // radius near polylog instead of the Θ(√n) path length.
  const Graph g = gen::expander_with_path(2048, 256, 4, 9);
  ClusterOptions opts;
  opts.seed = 4;
  const Clustering c = cluster(g, 32, opts);
  EXPECT_TRUE(c.validate(g));
  const Dist diam = exact_diameter(g).diameter;  // >= 256
  EXPECT_LT(c.max_radius(), diam / 2) << "radius should beat the tail";
}

TEST(Cluster, DisconnectedGraphIsHandled) {
  const Graph g = gen::disjoint_union(gen::grid(12, 12),
                                      gen::cycle(60));
  const Clustering c = cluster(g, 4);
  EXPECT_TRUE(c.validate(g));
  // No cluster may span components.
  const Components comps = connected_components(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(comps.label[v],
              comps.label[c.centers[c.assignment[v]]]);
  }
}

TEST(Cluster, ManySmallComponents) {
  Graph g = gen::disjoint_union(gen::path(7), gen::path(7));
  for (int i = 0; i < 4; ++i) g = gen::disjoint_union(g, gen::path(7));
  const Clustering c = cluster(g, 6, {});
  EXPECT_TRUE(c.validate(g));
}

TEST(Cluster, SingleNodeGraph) {
  const Graph g = gen::path(1);
  const Clustering c = cluster(g, 1);
  EXPECT_EQ(c.num_clusters(), 1u);
  EXPECT_TRUE(c.validate(g));
}

TEST(ClusterDeathTest, RejectsTauZero) {
  const Graph g = gen::path(4);
  EXPECT_DEATH((void)cluster(g, 0), "tau");
}

TEST(SelectionProbability, MatchesFormulaAndClamps) {
  // p = c·τ·log2(n)/uncovered, clamped at 1.
  EXPECT_DOUBLE_EQ(cluster_selection_probability(2, 1024, 1000, 4.0),
                   4.0 * 2 * 10 / 1000.0);
  EXPECT_DOUBLE_EQ(cluster_selection_probability(100, 1024, 10, 4.0), 1.0);
}

TEST(Cluster, IterationCountIsLogarithmic) {
  const Graph g = gen::grid(50, 50);
  const Clustering c = cluster(g, 2);
  // At most ~log2(n) + slack iterations (uncovered halves each time).
  EXPECT_LE(c.iterations,
            2 * static_cast<std::size_t>(
                    std::log2(static_cast<double>(g.num_nodes()))) + 4);
}

TEST(Cluster, ClusterCountGrowsWithTau) {
  const Graph g = gen::grid(40, 40);
  ClusterOptions opts;
  opts.seed = 6;
  const auto k1 = cluster(g, 1, opts).num_clusters();
  const auto k8 = cluster(g, 8, opts).num_clusters();
  EXPECT_GT(k8, k1);
}

}  // namespace
}  // namespace gclus
