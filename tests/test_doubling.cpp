// Tests for the doubling-dimension estimator: known values on structured
// graphs (paths ~1, grids ~2, expanders/stars large), cover-count
// sanity, and monotone behavior.
#include <gtest/gtest.h>

#include "graph/doubling.hpp"
#include "graph/generators.hpp"

namespace gclus {
namespace {

TEST(GreedyBallCover, PathNeedsAtMostThreeBalls) {
  // On a path, B(v, 2R) is an interval of length <= 4R+1; three R-balls
  // always cover it (greedy may use up to 3).
  const Graph g = gen::path(200);
  for (const Dist r : {1u, 2u, 8u, 16u}) {
    EXPECT_LE(greedy_ball_cover(g, 100, r), 3u) << "R=" << r;
    EXPECT_GE(greedy_ball_cover(g, 100, r), 2u) << "R=" << r;
  }
}

TEST(GreedyBallCover, CompleteGraphIsOneBall) {
  const Graph g = gen::complete(40);
  EXPECT_EQ(greedy_ball_cover(g, 0, 1), 1u);
}

TEST(GreedyBallCover, GridScalesLikeDimensionTwo) {
  const Graph g = gen::grid(60, 60);
  // A 2R-ball in the grid is a diamond of ~8R² nodes; R-balls hold ~2R²,
  // so greedy needs a handful — far fewer than linear in R.
  const std::size_t c4 = greedy_ball_cover(g, 60 * 30 + 30, 4);
  const std::size_t c8 = greedy_ball_cover(g, 60 * 30 + 30, 8);
  EXPECT_LE(c4, 12u);
  EXPECT_LE(c8, 12u);
  EXPECT_GE(c4, 3u);
}

TEST(GreedyBallCover, StarCenterVersusLeaf) {
  // From the center, B(c, 2) is everything and B(u, 1) for any leaf u
  // covers it only through the center; greedy still needs few balls.
  const Graph g = gen::star(100);
  EXPECT_LE(greedy_ball_cover(g, 0, 1), 2u);
}

TEST(DoublingEstimate, PathIsLowDimensional) {
  const Graph g = gen::path(500);
  DoublingOptions opts;
  opts.seed = 3;
  const DoublingEstimate e = estimate_doubling_dimension(g, opts);
  EXPECT_LE(e.dimension, 2.0);
  EXPECT_GT(e.dimension, 0.0);
}

TEST(DoublingEstimate, GridIsAboutTwo) {
  const Graph g = gen::grid(50, 50);
  DoublingOptions opts;
  opts.seed = 5;
  const DoublingEstimate e = estimate_doubling_dimension(g, opts);
  EXPECT_GE(e.dimension, 1.5);
  EXPECT_LE(e.dimension, 4.0);  // greedy slack over the true b=2
}

TEST(DoublingEstimate, ExpanderIsHighDimensional) {
  // Expanders have doubling dimension Θ(log n): a 2R-ball at R ~ log n
  // is the whole graph while R-balls hold only ~d^R nodes.
  const Graph g = gen::expander(2048, 4, 7);
  DoublingOptions opts;
  opts.seed = 7;
  const DoublingEstimate e = estimate_doubling_dimension(g, opts);
  const Graph grid = gen::grid(45, 45);
  DoublingOptions gopts;
  gopts.seed = 7;
  const DoublingEstimate ge = estimate_doubling_dimension(grid, gopts);
  EXPECT_GT(e.dimension, ge.dimension + 1.0)
      << "expander must report clearly higher dimension than the grid";
}

TEST(DoublingEstimate, WitnessIsConsistent) {
  const Graph g = gen::grid(30, 30);
  DoublingOptions opts;
  opts.seed = 9;
  const DoublingEstimate e = estimate_doubling_dimension(g, opts);
  ASSERT_NE(e.witness_center, kInvalidNode);
  EXPECT_EQ(greedy_ball_cover(g, e.witness_center, e.witness_radius),
            e.witness_cover_size);
}

TEST(DoublingEstimate, DeterministicForSeed) {
  const Graph g = gen::road_like(25, 25, 0.08, 0.02, 3);
  DoublingOptions opts;
  opts.seed = 11;
  const DoublingEstimate a = estimate_doubling_dimension(g, opts);
  const DoublingEstimate b = estimate_doubling_dimension(g, opts);
  EXPECT_EQ(a.dimension, b.dimension);
  EXPECT_EQ(a.witness_center, b.witness_center);
}

TEST(DoublingEstimate, ExplicitRadiusCapRespected) {
  const Graph g = gen::grid(40, 40);
  DoublingOptions opts;
  opts.max_radius = 4;
  const DoublingEstimate e = estimate_doubling_dimension(g, opts);
  EXPECT_LE(e.witness_radius, 4u);
}

}  // namespace
}  // namespace gclus
