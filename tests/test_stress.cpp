// Randomized stress suite: random graph families × random parameters,
// validating ALL cross-cutting invariants together on every instance —
// the closest thing to fuzzing the decomposition stack end to end.
//
// Each instance checks:
//   * CLUSTER produces a valid partition whose radius <= eccentricity
//     bound, quotient is connected (for connected inputs), and the
//     diameter sandwich Δ_C <= Δ <= Δ″ holds against the exact value;
//   * the MR implementation reproduces the partition bit for bit;
//   * strict MR memory limits (M_L / M_G generous enough to pass) do not
//     abort, i.e. the accounting matches reality.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/diameter.hpp"
#include "core/quotient.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mr_algos/mr_cluster.hpp"
#include "test_util.hpp"

namespace gclus {
namespace {

/// G(n, m) clamped to the feasible edge count.
Graph erdos_renyi_helper(NodeId n, EdgeId m, std::uint64_t seed) {
  const auto max_edges =
      static_cast<EdgeId>(n) * (static_cast<EdgeId>(n) - 1) / 2;
  return gen::erdos_renyi(n, std::min(m, max_edges), seed);
}

Graph random_instance(std::uint64_t seed) {
  Rng rng(seed);
  switch (rng.next_below(6)) {
    case 0: {
      const auto n = static_cast<NodeId>(50 + rng.next_below(900));
      const auto m = static_cast<EdgeId>(n + rng.next_below(4 * n));
      return testutil::largest_component_of(erdos_renyi_helper(n, m, seed));
    }
    case 1: {
      const auto r = static_cast<NodeId>(4 + rng.next_below(30));
      const auto c = static_cast<NodeId>(4 + rng.next_below(30));
      return gen::grid(r, c);
    }
    case 2:
      return gen::random_tree(static_cast<NodeId>(20 + rng.next_below(800)),
                              seed);
    case 3:
      return gen::road_like(static_cast<NodeId>(8 + rng.next_below(25)),
                            static_cast<NodeId>(8 + rng.next_below(25)), 0.1,
                            0.03, seed);
    case 4:
      return gen::preferential_attachment(
          static_cast<NodeId>(50 + rng.next_below(600)), 2, seed);
    default:
      return gen::ring_of_cliques(
          static_cast<NodeId>(3 + rng.next_below(12)),
          static_cast<NodeId>(3 + rng.next_below(10)));
  }
}

class StressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressTest, AllInvariantsHoldOnRandomInstance) {
  const std::uint64_t seed = GetParam();
  const Graph g = random_instance(seed);
  ASSERT_TRUE(g.validate());
  const bool connected = is_connected(g);

  Rng rng(seed ^ 0xF00D);
  const auto tau = static_cast<std::uint32_t>(1 + rng.next_below(12));
  ClusterOptions opts;
  opts.seed = seed;

  const Clustering c = cluster(g, tau, opts);
  ASSERT_TRUE(c.validate(g)) << "seed " << seed;

  // Radius bounded by the graph's diameter (per component: use the
  // global diameter for connected instances only).
  if (connected) {
    const Dist diam = exact_diameter(g).diameter;
    EXPECT_LE(c.max_radius(), diam) << "seed " << seed;

    const QuotientGraph q = build_quotient(g, c);
    EXPECT_TRUE(is_connected(q.graph)) << "seed " << seed;

    const DiameterApprox a = diameter_from_clustering(g, c);
    EXPECT_LE(a.lower_bound, diam) << "seed " << seed;
    EXPECT_GE(a.upper_bound, diam) << "seed " << seed;
    EXPECT_LE(a.upper_bound, a.upper_bound_coarse) << "seed " << seed;
  }

  // MR equivalence with strict (but satisfiable) memory limits: M_L must
  // admit the largest reducer group, which is bounded by the max degree
  // (claims) and the uncovered-node count (selection waves).
  mr::Config cfg;
  cfg.strict = true;
  cfg.local_memory_pairs =
      std::max<std::size_t>(g.num_nodes(), degree_stats(g).max_degree + 1);
  cfg.global_memory_pairs = 4 * (g.num_half_edges() + g.num_nodes() + 16);
  mr::Engine engine(cfg);
  mr_algos::MrClusterOptions mopts;
  mopts.seed = seed;
  const auto mr_result = mr_algos::mr_cluster(engine, g, tau, mopts);
  EXPECT_EQ(mr_result.clustering.assignment, c.assignment)
      << "seed " << seed;
  EXPECT_EQ(mr_result.clustering.dist_to_center, c.dist_to_center)
      << "seed " << seed;
  EXPECT_FALSE(engine.metrics().local_memory_exceeded) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace gclus
