// Tests for the quotient graph: edge existence mirrors crossing G-edges,
// weights equal the minimum §4 connection length, and the quotient of a
// connected graph is connected.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/cluster.hpp"
#include "core/growth.hpp"
#include "core/quotient.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace gclus {
namespace {

/// Grows a clustering from explicit centers (deterministic helper).
Clustering grow_from(const Graph& g, const std::vector<NodeId>& centers) {
  ThreadPool pool(1);
  GrowthState state(g, pool);
  for (const NodeId c : centers) state.add_center(c);
  while (state.covered_count() < g.num_nodes()) {
    if (state.frontier_empty()) state.add_singletons_for_uncovered();
    state.step();
  }
  return std::move(state).finish();
}

TEST(Quotient, PathWithTwoClusters) {
  const Graph g = gen::path(10);
  const Clustering c = grow_from(g, {0, 9});
  const QuotientGraph q = build_quotient(g, c);
  EXPECT_EQ(q.num_clusters(), 2u);
  EXPECT_EQ(q.graph.num_edges(), 1u);
  EXPECT_TRUE(q.graph.has_edge(0, 1));
  // Synchronous growth splits the path as {0..4} vs {5..9}; the single
  // crossing edge is {4,5} with weight dist(4,0) + 1 + dist(5,9) = 9.
  ASSERT_EQ(q.weighted.neighbors(0).size(), 1u);
  EXPECT_EQ(q.weighted.neighbors(0)[0].w, 9u);
}

TEST(Quotient, SingleClusterHasNoEdges) {
  const Graph g = gen::grid(5, 5);
  const Clustering c = grow_from(g, {12});
  const QuotientGraph q = build_quotient(g, c);
  EXPECT_EQ(q.num_clusters(), 1u);
  EXPECT_EQ(q.graph.num_edges(), 0u);
}

TEST(Quotient, EdgeExistsIffCrossingEdgeExists) {
  const Graph g = gen::grid(8, 8);
  const Clustering c = grow_from(g, {0, 7, 56, 63});
  const QuotientGraph q = build_quotient(g, c);
  // Reference: recompute crossing pairs by brute force.
  std::set<std::pair<ClusterId, ClusterId>> expected;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      const ClusterId a = c.assignment[u], b = c.assignment[v];
      if (a != b) expected.insert({std::min(a, b), std::max(a, b)});
    }
  }
  EXPECT_EQ(q.graph.num_edges(), expected.size());
  for (const auto& [a, b] : expected) {
    EXPECT_TRUE(q.graph.has_edge(a, b));
  }
}

TEST(Quotient, WeightsAreMinimalConnectionLengths) {
  const Graph g = gen::grid(8, 8);
  const Clustering c = grow_from(g, {0, 63});
  const QuotientGraph q = build_quotient(g, c);
  // Brute-force the minimal crossing weight.
  Weight best = kInfWeight;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (c.assignment[u] == c.assignment[v] || u > v) continue;
      best = std::min<Weight>(best, Weight{c.dist_to_center[u]} + 1 +
                                        c.dist_to_center[v]);
    }
  }
  ASSERT_EQ(q.weighted.neighbors(0).size(), 1u);
  EXPECT_EQ(q.weighted.neighbors(0)[0].w, best);
}

TEST(Quotient, WeightsAtLeastOneAndBoundedByRadii) {
  const Graph g = gen::road_like(20, 20, 0.08, 0.02, 13);
  const Clustering c = cluster(g, 4, {});
  const QuotientGraph q = build_quotient(g, c);
  for (NodeId a = 0; a < q.weighted.num_nodes(); ++a) {
    for (const auto& [b, w] : q.weighted.neighbors(a)) {
      EXPECT_GE(w, 1u);
      EXPECT_LE(w, Weight{c.radius[a]} + 1 + c.radius[b]);
    }
  }
}

TEST(Quotient, ConnectedInputGivesConnectedQuotient) {
  for (const auto& [name, graph] : testutil::small_connected_corpus()) {
    const Clustering c = cluster(graph, 3, {});
    const QuotientGraph q = build_quotient(graph, c, /*with_weights=*/false);
    EXPECT_TRUE(is_connected(q.graph)) << name;
  }
}

TEST(Quotient, WithoutWeightsSkipsWeightedGraph) {
  const Graph g = gen::grid(6, 6);
  const Clustering c = grow_from(g, {0, 35});
  const QuotientGraph q = build_quotient(g, c, /*with_weights=*/false);
  EXPECT_EQ(q.weighted.num_nodes(), 0u);
  EXPECT_EQ(q.graph.num_nodes(), 2u);
}

TEST(Quotient, SingletonClusteringIsIsomorphicToInput) {
  // Every node its own cluster: the quotient IS the input graph.
  const Graph g = gen::cycle(14);
  Clustering c;
  c.assignment.resize(14);
  c.dist_to_center.assign(14, 0);
  for (NodeId v = 0; v < 14; ++v) {
    c.assignment[v] = v;
    c.centers.push_back(v);
  }
  finalize_cluster_stats(c);
  const QuotientGraph q = build_quotient(g, c);
  EXPECT_EQ(q.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(q.graph.num_edges(), g.num_edges());
  // All weights are 0 + 1 + 0 = 1.
  for (NodeId a = 0; a < q.weighted.num_nodes(); ++a) {
    for (const auto& [b, w] : q.weighted.neighbors(a)) EXPECT_EQ(w, 1u);
  }
}

}  // namespace
}  // namespace gclus
