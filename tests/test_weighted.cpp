// Tests for the weighted graph module: construction normalization,
// Dijkstra against BFS on unit weights, weighted diameter, and APSP.
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/weighted.hpp"
#include "test_util.hpp"

namespace gclus {
namespace {

TEST(WeightedGraph, ParallelEdgesKeepMinimumWeight) {
  const WeightedGraph g = WeightedGraph::from_edges(
      2, {{0, 1, 7}, {0, 1, 3}, {1, 0, 5}});
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].w, 3u);
  EXPECT_EQ(g.neighbors(1)[0].w, 3u);
}

TEST(WeightedGraph, DropsSelfLoops) {
  const WeightedGraph g =
      WeightedGraph::from_edges(2, {{0, 0, 1}, {0, 1, 2}});
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Dijkstra, MatchesBfsOnUnitWeights) {
  for (const auto& [name, graph] : testutil::small_connected_corpus()) {
    if (graph.num_nodes() > 600) continue;  // keep the sweep cheap
    const WeightedGraph w = WeightedGraph::from_unit_weights(graph);
    const auto dj = dijkstra(w, 0);
    const auto bf = bfs_distances(graph, 0);
    ASSERT_EQ(dj.size(), bf.size()) << name;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      EXPECT_EQ(dj[v], bf[v]) << name << " node " << v;
    }
  }
}

TEST(Dijkstra, WeightedShortcutPreferred) {
  // 0-1-2 with weights 1+1 vs direct 0-2 weight 3: path wins.
  const WeightedGraph g = WeightedGraph::from_edges(
      3, {{0, 1, 1}, {1, 2, 1}, {0, 2, 3}});
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[2], 2u);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  const WeightedGraph g = WeightedGraph::from_edges(4, {{0, 1, 2}, {2, 3, 2}});
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[1], 2u);
  EXPECT_EQ(d[2], kInfWeight);
}

TEST(WeightedEccentricity, PathWithWeights) {
  const WeightedGraph g = WeightedGraph::from_edges(
      4, {{0, 1, 10}, {1, 2, 1}, {2, 3, 5}});
  EXPECT_EQ(weighted_eccentricity(g, 0), 16u);
  EXPECT_EQ(weighted_eccentricity(g, 2), 11u);
}

TEST(WeightedDiameter, MatchesUnweightedOnUnitWeights) {
  const Graph g = gen::grid(6, 7);
  const WeightedGraph w = WeightedGraph::from_unit_weights(g);
  EXPECT_EQ(weighted_diameter_exact(w), testutil::brute_force_diameter(g));
}

TEST(WeightedDiameter, RespectsWeights) {
  // Triangle 0-1:100, 1-2:100, 0-2:1.  The heaviest shortest path is the
  // direct 100-weight edge (the two-hop alternative costs 101).
  const WeightedGraph g = WeightedGraph::from_edges(
      3, {{0, 1, 100}, {1, 2, 100}, {0, 2, 1}});
  EXPECT_EQ(weighted_diameter_exact(g), 100u);
  // Dropping the shortcut pushes the diameter to 200.
  const WeightedGraph h =
      WeightedGraph::from_edges(3, {{0, 1, 100}, {1, 2, 100}});
  EXPECT_EQ(weighted_diameter_exact(h), 200u);
}

TEST(ApspMatrix, SymmetricAndConsistentWithDijkstra) {
  const Graph base = gen::ring_of_cliques(5, 4);
  const WeightedGraph g = WeightedGraph::from_unit_weights(base);
  const NodeId n = g.num_nodes();
  const auto mat = apsp_matrix(g);
  for (NodeId u = 0; u < n; ++u) {
    const auto d = dijkstra(g, u);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(mat[static_cast<std::size_t>(u) * n + v], d[v]);
      EXPECT_EQ(mat[static_cast<std::size_t>(u) * n + v],
                mat[static_cast<std::size_t>(v) * n + u]);
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(mat[static_cast<std::size_t>(u) * n + u], 0u);
  }
}

TEST(ApspMatrixDeathTest, RefusesOversizedInput) {
  const WeightedGraph g =
      WeightedGraph::from_unit_weights(gen::path(100));
  EXPECT_DEATH((void)apsp_matrix(g, /*max_nodes=*/50), "too large");
}

}  // namespace
}  // namespace gclus
