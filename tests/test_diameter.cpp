// Tests for the diameter-approximation pipeline (§4): the sandwich
// Δ_C <= Δ <= Δ″ <= Δ′ against the exact diameter across the corpus, both
// pipeline variants (CLUSTER2 and the §6.2 simplified CLUSTER), and the
// approximation quality observed in the paper's experiments (Δ″/Δ < 2 on
// their benchmarks; we assert the proven O(log³n) bound and track the
// empirical ratio in the benches instead).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/cluster.hpp"
#include "core/diameter.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace gclus {
namespace {

struct DiameterParam {
  std::size_t corpus_index;
  std::uint32_t tau;
  bool use_cluster2;
};

class DiameterSandwichTest
    : public ::testing::TestWithParam<DiameterParam> {};

TEST_P(DiameterSandwichTest, LowerAndUpperBoundsHold) {
  const auto corpus = testutil::small_connected_corpus();
  const auto& [name, graph] = corpus.at(GetParam().corpus_index);
  DiameterOptions opts;
  opts.seed = 17;
  opts.use_cluster2 = GetParam().use_cluster2;
  const DiameterApprox a = approximate_diameter(graph, GetParam().tau, opts);
  const Dist truth = testutil::brute_force_diameter(graph);

  EXPECT_LE(a.lower_bound, truth) << name;
  EXPECT_GE(a.upper_bound, truth) << name;
  EXPECT_LE(a.upper_bound, a.upper_bound_coarse) << name;

  // Theorem guarantee with explicit constant slack: Δ″ = O(Δ·log³n).
  const double logn =
      std::max(2.0, std::log2(static_cast<double>(graph.num_nodes())));
  EXPECT_LE(static_cast<double>(a.upper_bound),
            16.0 * std::max<double>(1.0, truth) * logn * logn * logn)
      << name;

  // Bookkeeping consistency.
  EXPECT_EQ(a.quotient_nodes, a.num_clusters);
  EXPECT_GE(a.upper_bound,
            2ULL * a.max_radius)  // at minimum the radius term
      << name;
}

std::vector<DiameterParam> diameter_params() {
  std::vector<DiameterParam> params;
  const std::size_t corpus_size = testutil::small_connected_corpus().size();
  for (std::size_t g = 0; g < corpus_size; ++g) {
    params.push_back({g, 2, false});
    params.push_back({g, 2, true});
    params.push_back({g, 8, false});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DiameterSandwichTest, ::testing::ValuesIn(diameter_params()),
    [](const ::testing::TestParamInfo<DiameterParam>& info) {
      return "g" + std::to_string(info.param.corpus_index) + "_tau" +
             std::to_string(info.param.tau) +
             (info.param.use_cluster2 ? "_c2" : "_c1");
    });

TEST(DiameterApprox, ExactOnSingleCluster) {
  // τ large enough that one growth covers everything from few centers
  // still yields valid bounds; with a single cluster Δ″ = 2·R >= Δ.
  const Graph g = gen::star(50);
  const DiameterApprox a = approximate_diameter(g, 1, {});
  EXPECT_GE(a.upper_bound, 2u);
  EXPECT_LE(a.lower_bound, 2u);
}

TEST(DiameterApprox, QuotientShrinksWithSmallerTau) {
  const Graph g = gen::grid(40, 40);
  DiameterOptions opts;
  opts.seed = 23;
  const DiameterApprox coarse = approximate_diameter(g, 1, opts);
  const DiameterApprox fine = approximate_diameter(g, 12, opts);
  EXPECT_LT(coarse.quotient_nodes, fine.quotient_nodes);
  // Both estimates stay valid regardless of granularity (Table 3's
  // "approximation insensitive to granularity" observation).
  const Dist truth = 78;  // 40+40-2
  EXPECT_GE(coarse.upper_bound, truth);
  EXPECT_GE(fine.upper_bound, truth);
}

TEST(DiameterApprox, ReusesInjectedClustering) {
  const Graph g = gen::grid(20, 20);
  ClusterOptions copts;
  copts.seed = 29;
  const Clustering c = cluster(g, 4, copts);
  const DiameterApprox a = diameter_from_clustering(g, c);
  EXPECT_EQ(a.num_clusters, c.num_clusters());
  EXPECT_EQ(a.max_radius, c.max_radius());
  EXPECT_GE(a.upper_bound, 38u);
}

TEST(DiameterApprox, PathApproximationIsTight) {
  // On a path the weighted quotient recovers the geometry almost exactly:
  // Δ″ <= Δ + 4·R_ALG.
  const Graph g = gen::path(1500);
  DiameterOptions opts;
  opts.seed = 31;
  const DiameterApprox a = approximate_diameter(g, 8, opts);
  EXPECT_GE(a.upper_bound, 1499u);
  EXPECT_LE(a.upper_bound, 1499u + 4ULL * a.max_radius + 2);
}

TEST(DiameterApprox, DeterministicForSeed) {
  const Graph g = gen::road_like(20, 20, 0.08, 0.02, 37);
  DiameterOptions opts;
  opts.seed = 41;
  const DiameterApprox a = approximate_diameter(g, 4, opts);
  const DiameterApprox b = approximate_diameter(g, 4, opts);
  EXPECT_EQ(a.upper_bound, b.upper_bound);
  EXPECT_EQ(a.lower_bound, b.lower_bound);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
}

}  // namespace
}  // namespace gclus
