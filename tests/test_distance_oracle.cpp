// Tests for the distance oracle (§4 final remark): upper-bound soundness
// against exact BFS distances over sampled pairs, the zero-on-identity
// contract, the additive+multiplicative distortion guarantee with
// explicit slack, and memory accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "core/distance_oracle.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace gclus {
namespace {

class OracleSoundnessTest
    : public ::testing::TestWithParam<testutil::NamedGraph> {};

TEST_P(OracleSoundnessTest, NeverUnderestimates) {
  const auto& [name, graph] = GetParam();
  DistanceOracleOptions opts;
  opts.seed = 3;
  const DistanceOracle oracle = DistanceOracle::build(graph, opts);

  // Exact distances from a few sampled sources; every queried pair must
  // satisfy bfs <= oracle and the distortion bound.
  Rng rng(99);
  const double logn =
      std::max(2.0, std::log2(static_cast<double>(graph.num_nodes())));
  for (int s = 0; s < 4; ++s) {
    const auto u = static_cast<NodeId>(rng.next_below(graph.num_nodes()));
    const auto exact = bfs_distances(graph, u);
    for (int q = 0; q < 50; ++q) {
      const auto v = static_cast<NodeId>(rng.next_below(graph.num_nodes()));
      const std::uint64_t ub = oracle.upper_bound(u, v);
      EXPECT_GE(ub, exact[v]) << name;
      // d'(u,v) = O(d·log³n + R_ALG2) with generous constant 16.
      EXPECT_LE(static_cast<double>(ub),
                16.0 * (exact[v] * logn * logn * logn +
                        oracle.max_radius() + 1.0))
          << name << " pair (" << u << "," << v << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, OracleSoundnessTest,
    ::testing::ValuesIn(testutil::small_connected_corpus()),
    [](const ::testing::TestParamInfo<testutil::NamedGraph>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(DistanceOracle, IdentityQueriesAreZero) {
  const Graph g = gen::grid(15, 15);
  const DistanceOracle oracle = DistanceOracle::build(g, {});
  for (NodeId v = 0; v < g.num_nodes(); v += 17) {
    EXPECT_EQ(oracle.upper_bound(v, v), 0u);
  }
}

TEST(DistanceOracle, SymmetricQueries) {
  const Graph g = gen::road_like(18, 18, 0.08, 0.02, 7);
  const DistanceOracle oracle = DistanceOracle::build(g, {});
  Rng rng(5);
  for (int q = 0; q < 100; ++q) {
    const auto u = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    EXPECT_EQ(oracle.upper_bound(u, v), oracle.upper_bound(v, u));
  }
}

TEST(DistanceOracle, SameClusterUsesLabelPath) {
  // On a clique, everything lands in one cluster with radius <= 1:
  // oracle bound for distinct nodes is at most 2.
  const Graph g = gen::complete(40);
  DistanceOracleOptions opts;
  opts.tau = 1;
  const DistanceOracle oracle = DistanceOracle::build(g, opts);
  EXPECT_LE(oracle.upper_bound(3, 17), 2u);
  EXPECT_GE(oracle.upper_bound(3, 17), 1u);
}

TEST(DistanceOracle, ExplicitTauControlsClusterCount) {
  const Graph g = gen::grid(30, 30);
  DistanceOracleOptions coarse, fine;
  coarse.tau = 1;
  fine.tau = 16;
  const auto oc = DistanceOracle::build(g, coarse);
  const auto of = DistanceOracle::build(g, fine);
  EXPECT_LT(oc.num_clusters(), of.num_clusters());
}

TEST(DistanceOracle, MemoryAccountingIsPlausible) {
  const Graph g = gen::grid(25, 25);
  const DistanceOracle oracle = DistanceOracle::build(g, {});
  const std::size_t k = oracle.num_clusters();
  // Labels: n·(4+4) bytes; APSP: k²·8 bytes.
  const std::size_t expected =
      g.num_nodes() * 8ull + static_cast<std::size_t>(k) * k * 8ull;
  EXPECT_EQ(oracle.memory_bytes(), expected);
}

TEST(DistanceOracle, ClusterVariantAlsoSound) {
  const Graph g = gen::cycle(300);
  DistanceOracleOptions opts;
  opts.use_cluster2 = false;
  const DistanceOracle oracle = DistanceOracle::build(g, opts);
  const auto exact = bfs_distances(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); v += 13) {
    EXPECT_GE(oracle.upper_bound(0, v), exact[v]);
  }
}

}  // namespace
}  // namespace gclus
