// Tests for graph serialization and ingestion: edge-list text parsing
// (serial reference and the parallel parser, including SNAP-style
// comments, sparse ids, and junk lines), the legacy v1 binary round trip
// with header validation, and the CSR v2 format — text↔CSRv2↔mmap round
// trips over the whole corpus (weighted and unweighted), checksum and
// truncation rejection, and owning-vs-mmap byte equality through the
// algorithm registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/run_context.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/weighted.hpp"
#include "par/thread_pool.hpp"
#include "test_util.hpp"

namespace gclus::io {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// RAII temp file.
struct TempFile {
  explicit TempFile(const std::string& name) : path(temp_path(name)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

Graph serial_parse(const std::string& text) {
  std::istringstream in(text);
  return read_edge_list(in);
}

// ---- edge-list text: serial reference ---------------------------------------

TEST(EdgeListRead, ParsesPlainPairs) {
  std::istringstream in("0 1\n1 2\n2 0\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(EdgeListRead, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# SNAP-style comment\n% matrix-market comment\n\n0 1\n\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeListRead, CompactsSparseIds) {
  std::istringstream in("1000000 2000000\n2000000 30\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.validate());
}

TEST(EdgeListRead, SymmetrizesAndDedups) {
  std::istringstream in("0 1\n1 0\n0 1\n2 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 1u);  // self-loop dropped, duplicates merged
}

TEST(EdgeListRoundTrip, PreservesStructure) {
  const Graph g = gen::grid(7, 9);
  std::stringstream buf;
  write_edge_list(g, buf);
  const Graph h = read_edge_list(buf);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

// ---- edge-list text: parallel parser ----------------------------------------

/// Inputs chosen to stress every skip/accept path: comment-heavy, sparse
/// ids, duplicates and reversals, junk tokens, CRLF, leading whitespace,
/// extra columns (SNAP ships weighted lists we read unweighted), and a
/// missing trailing newline.
const char* kMessyInputs[] = {
    "",
    "\n\n\n",
    "# only comments\n% and more\n",
    "0 1\n1 2\n2 0\n",
    "0 1\n1 0\n0 1\n2 2\n",
    "1000000 2000000\n2000000 30\n9999999999 1000000\n",
    "# c\n5 7\n% c\n7 9\n\n9 5\n# trailing\n",
    "0 1 42\n1 2 99\n",                      // extra weight column ignored
    "  3 4\n\t5\t6\n 7  8 \n",               // leading/embedded whitespace
    "0 1\r\n1 2\r\n# crlf\r\n2 0\r\n",       // CRLF
    "junk line\n1 x\nx 1\n0 1\n1\n",         // junk tokens / missing column
    "+3 +4\n4 5\n",                          // explicit plus signs
    "0 1\n1 2",                              // no trailing newline
};

TEST(ParallelParser, MatchesSerialOnMessyInputs) {
  ThreadPool pool(4);
  for (const char* input : kMessyInputs) {
    const Graph serial = serial_parse(input);
    const Graph parallel = parse_edge_list(input, pool);
    EXPECT_TRUE(testutil::same_csr(serial, parallel))
        << "input: " << std::string(input).substr(0, 40);
  }
}

TEST(ParallelParser, DeterministicAcrossThreadCounts) {
  // Large enough to span several parse chunks (1 MiB each): ~2.8 MB.
  // (An expander: no isolated nodes, so every id appears in the text.)
  const Graph g = gen::expander(50000, 10, 11);
  std::stringstream buf;
  write_edge_list(g, buf);
  const std::string text = buf.str();
  ASSERT_GT(text.size(), std::size_t{2} << 20);

  ThreadPool pool1(1), pool2(2), pool8(8);
  const Graph a = parse_edge_list(text, pool1);
  const Graph b = parse_edge_list(text, pool2);
  const Graph c = parse_edge_list(text, pool8);
  EXPECT_TRUE(testutil::same_csr(a, b));
  EXPECT_TRUE(testutil::same_csr(a, c));
  EXPECT_TRUE(testutil::same_csr(a, serial_parse(text)));
  EXPECT_EQ(a.num_nodes(), g.num_nodes());
  EXPECT_EQ(a.num_edges(), g.num_edges());
}

TEST(ParallelParser, CorpusTextRoundTrip) {
  // Text round trips relabel nodes (ids compact in first-appearance
  // order), so equality is against the serial reference parser — the
  // parallel parser must reproduce its numbering byte for byte — plus
  // structural invariants against the original.
  ThreadPool pool(4);
  for (const auto& [name, g] : testutil::small_connected_corpus()) {
    std::stringstream buf;
    write_edge_list(g, buf);
    const std::string text = buf.str();
    const Graph h = parse_edge_list(text, pool);
    EXPECT_TRUE(testutil::same_csr(serial_parse(text), h)) << name;
    EXPECT_EQ(h.num_nodes(), g.num_nodes()) << name;
    EXPECT_EQ(h.num_edges(), g.num_edges()) << name;
    EXPECT_TRUE(h.validate()) << name;
  }
}

TEST(ParallelParser, FileEntryPointUsesGlobalPool) {
  TempFile f("gclus_io_parse.txt");
  const Graph g = gen::ring_of_cliques(12, 8);
  write_edge_list_file(g, f.path);
  const Graph h = read_edge_list_file(f.path);
  std::stringstream buf;
  write_edge_list(g, buf);
  EXPECT_TRUE(testutil::same_csr(serial_parse(buf.str()), h));
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

// ---- CSR v1 binary (legacy) -------------------------------------------------

TEST(BinaryRoundTrip, BitExact) {
  const Graph g = gen::rmat(256, 1024, 5);
  TempFile f("gclus_io_test.bin");
  write_binary_file(g, f.path);
  const Graph h = read_binary_file(f.path);
  EXPECT_TRUE(testutil::same_csr(g, h));
}

TEST(BinaryRoundTrip, EmptyGraph) {
  const Graph g = build_graph(5, {});
  TempFile f("gclus_io_empty.bin");
  write_binary_file(g, f.path);
  const Graph h = read_binary_file(f.path);
  EXPECT_EQ(h.num_nodes(), 5u);
  EXPECT_EQ(h.num_edges(), 0u);
}

TEST(BinaryReadDeathTest, RejectsGarbageMagic) {
  TempFile f("gclus_io_bad.bin");
  {
    std::ofstream out(f.path, std::ios::binary);
    out << "this is not a graph";
  }
  EXPECT_DEATH((void)read_binary_file(f.path), "not a gclus binary");
}

TEST(BinaryReadDeathTest, RejectsTruncatedFile) {
  const Graph g = gen::grid(6, 6);
  TempFile f("gclus_io_trunc.bin");
  write_binary_file(g, f.path);
  const auto full = std::filesystem::file_size(f.path);
  std::filesystem::resize_file(f.path, full - 9);
  EXPECT_DEATH((void)read_binary_file(f.path), "truncated gclus binary");
}

TEST(BinaryReadDeathTest, RejectsHeaderLargerThanFile) {
  // A header claiming more payload than the file holds must be rejected
  // before any allocation — this is the old UB path (reading garbage into
  // the CSR arrays).
  TempFile f("gclus_io_lying_header.bin");
  {
    const Graph g = gen::grid(4, 4);
    write_binary_file(g, f.path);
    std::fstream patch(f.path,
                       std::ios::binary | std::ios::in | std::ios::out);
    patch.seekp(8);  // n field
    const std::uint64_t huge_n = 1u << 20;
    patch.write(reinterpret_cast<const char*>(&huge_n), sizeof huge_n);
  }
  EXPECT_DEATH((void)read_binary_file(f.path), "truncated gclus binary");
}

TEST(FileIoDeathTest, MissingFileAborts) {
  EXPECT_DEATH((void)read_edge_list_file("/nonexistent/gclus/file.txt"),
               "cannot open");
}

// ---- CSR v2 -----------------------------------------------------------------

TEST(Csr2, CorpusRoundTripCopyAndMmap) {
  TempFile f("gclus_io_corpus.csr2");
  for (const auto& [name, g] : testutil::small_connected_corpus()) {
    write_csr_file(g, f.path);
    EXPECT_TRUE(is_csr_file(f.path)) << name;

    const auto info = probe_csr_file(f.path);
    ASSERT_TRUE(info.has_value()) << name;
    EXPECT_EQ(info->version, 2u);
    EXPECT_FALSE(info->weighted);
    EXPECT_EQ(info->num_nodes, g.num_nodes());
    EXPECT_EQ(info->num_half_edges, g.num_half_edges());

    const Graph copy =
        load_csr_file(f.path, {.mode = CsrLoadMode::kCopy});
    EXPECT_TRUE(copy.owns_storage());
    EXPECT_TRUE(testutil::same_csr(g, copy)) << name;

    if (mmap_supported()) {
      const Graph mapped =
          load_csr_file(f.path, {.mode = CsrLoadMode::kMmap});
      EXPECT_FALSE(mapped.owns_storage());
      EXPECT_TRUE(testutil::same_csr(g, mapped)) << name;
    }
  }
}

TEST(Csr2, TextToCsr2ToMmapPipeline) {
  // The end-to-end ingestion pipeline: SNAP-style text in, CSR v2 out,
  // mapped back in place.
  TempFile txt("gclus_io_pipe.txt");
  TempFile bin("gclus_io_pipe.csr2");
  const Graph g = gen::expander_with_path(2000, 44, 4, 9);
  write_edge_list_file(g, txt.path);
  const Graph parsed = read_edge_list_file(txt.path);
  write_csr_file(parsed, bin.path);
  const Graph loaded = load_csr_file(bin.path);
  EXPECT_TRUE(testutil::same_csr(parsed, loaded));
  EXPECT_EQ(loaded.num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_TRUE(loaded.validate());
}

TEST(Csr2, EmptyAndEdgelessGraphs) {
  TempFile f("gclus_io_edgeless.csr2");
  const Graph g = build_graph(5, {});
  write_csr_file(g, f.path);
  const Graph h = load_csr_file(f.path);
  EXPECT_EQ(h.num_nodes(), 5u);
  EXPECT_EQ(h.num_edges(), 0u);

  // Edgeless *weighted* graphs must keep the weights flag (the section is
  // empty, but the format family is not inferred from a null data
  // pointer).
  const WeightedGraph w = WeightedGraph::from_edges(5, {});
  write_csr_file(w, f.path);
  const auto info = probe_csr_file(f.path);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->weighted);
  const WeightedGraph r = load_weighted_csr_file(f.path);
  EXPECT_EQ(r.num_nodes(), 5u);
  EXPECT_EQ(r.num_half_edges(), 0u);
}

TEST(Csr2, TryWriteIsNonAborting) {
  EXPECT_FALSE(
      try_write_csr_file(gen::cycle(4), "/nonexistent/gclus/dir/x.csr2"));
  TempFile f("gclus_io_trywrite.csr2");
  const Graph g = gen::cycle(4);
  ASSERT_TRUE(try_write_csr_file(g, f.path));
  EXPECT_TRUE(testutil::same_csr(g, load_csr_file(f.path)));
}

TEST(Csr2, WeightedCorpusRoundTrip) {
  TempFile f("gclus_io_weighted.csr2");
  for (const auto& [name, g] : testutil::small_connected_corpus()) {
    // Deterministic, asymmetric-looking weights per undirected edge.
    std::vector<std::tuple<NodeId, NodeId, Weight>> edges;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (const NodeId v : g.neighbors(u)) {
        if (u < v) edges.emplace_back(u, v, Weight{(u * 31 + v * 7) % 97 + 1});
      }
    }
    const WeightedGraph w = WeightedGraph::from_edges(g.num_nodes(), edges);

    write_csr_file(w, f.path);
    const auto info = probe_csr_file(f.path);
    ASSERT_TRUE(info.has_value()) << name;
    EXPECT_TRUE(info->weighted);

    const WeightedGraph r = load_weighted_csr_file(f.path);
    ASSERT_EQ(r.num_nodes(), w.num_nodes()) << name;
    ASSERT_EQ(r.num_half_edges(), w.num_half_edges()) << name;
    EXPECT_TRUE(std::ranges::equal(r.offsets(), w.offsets())) << name;
    EXPECT_TRUE(std::ranges::equal(r.adjacency(), w.adjacency())) << name;
  }
}

TEST(Csr2, MappedGraphSurvivesUnlink) {
  if (!mmap_supported()) GTEST_SKIP() << "no mmap on this platform";
  TempFile f("gclus_io_unlink.csr2");
  const Graph g = gen::torus(20, 20);
  write_csr_file(g, f.path);
  const Graph mapped = load_csr_file(f.path, {.mode = CsrLoadMode::kMmap});
  std::remove(f.path.c_str());  // mapping pins the inode
  EXPECT_TRUE(testutil::same_csr(g, mapped));
  // Copies share the mapping rather than materializing.
  const Graph copy = mapped;  // NOLINT(performance-unnecessary-copy-...)
  EXPECT_FALSE(copy.owns_storage());
  EXPECT_TRUE(testutil::same_csr(g, copy));
}

TEST(Csr2DeathTest, RejectsChecksumMismatch) {
  TempFile f("gclus_io_checksum.csr2");
  const Graph g = gen::grid(8, 8);
  write_csr_file(g, f.path);
  {
    // Flip one payload byte in the neighbors section (near the end).
    std::fstream patch(f.path,
                       std::ios::binary | std::ios::in | std::ios::out);
    patch.seekg(-1, std::ios::end);
    const char c = static_cast<char>(patch.get() ^ 0x40);
    patch.seekp(-1, std::ios::end);
    patch.write(&c, 1);
  }
  EXPECT_DEATH((void)load_csr_file(f.path), "checksum mismatch");
  EXPECT_FALSE(try_load_csr_file(f.path).has_value());
  // Opting out of verification loads the (corrupt) bytes — the caller's
  // explicit choice.
  const Graph unchecked = load_csr_file(f.path, {.verify = false});
  EXPECT_EQ(unchecked.num_nodes(), g.num_nodes());
}

TEST(Csr2DeathTest, RejectsTruncation) {
  TempFile f("gclus_io_truncated.csr2");
  const Graph g = gen::grid(8, 8);
  write_csr_file(g, f.path);
  const auto full = std::filesystem::file_size(f.path);
  std::filesystem::resize_file(f.path, full - 16);
  EXPECT_DEATH((void)load_csr_file(f.path), "truncated CSR v2");
  EXPECT_FALSE(try_load_csr_file(f.path).has_value());
}

TEST(Csr2DeathTest, RejectsWrongFormatFamily) {
  TempFile f("gclus_io_family.csr2");
  const Graph g = gen::grid(5, 5);
  write_binary_file(g, f.path);  // v1 file...
  EXPECT_DEATH((void)load_csr_file(f.path), "bad magic");  // ...is not v2
  EXPECT_FALSE(is_csr_file(f.path));

  write_csr_file(g, f.path);  // v2 file...
  EXPECT_DEATH((void)read_binary_file(f.path), "not a gclus binary");

  // Weighted/unweighted loaders are strict about the flag.
  EXPECT_DEATH((void)load_weighted_csr_file(f.path), "unweighted CSR v2");
  const WeightedGraph w = WeightedGraph::from_unit_weights(g);
  write_csr_file(w, f.path);
  EXPECT_DEATH((void)load_csr_file(f.path), "weighted CSR v2");
}

TEST(Csr2, TryLoadIsNonAborting) {
  EXPECT_FALSE(try_load_csr_file("/nonexistent/gclus/file.csr2").has_value());
  TempFile f("gclus_io_tryload.csr2");
  {
    std::ofstream out(f.path, std::ios::binary);
    out << "garbage";
  }
  EXPECT_FALSE(try_load_csr_file(f.path).has_value());
  const Graph g = gen::cycle(12);
  write_csr_file(g, f.path);
  const auto loaded = try_load_csr_file(f.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(testutil::same_csr(g, *loaded));
}

// ---- Status API -------------------------------------------------------------
// The load_* / write_* Status entry points carry the failure taxonomy the
// long-lived callers (dataset cache, CLI) dispatch on; the abort wrappers
// above are thin shims over these.

TEST(Csr2Status, CodesMatchFailureTaxonomy) {
  // Hard environment failure: the file does not exist.
  const auto missing = load_csr("/nonexistent/gclus/file.csr2");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);

  TempFile f("gclus_io_status.csr2");
  {
    std::ofstream out(f.path, std::ios::binary);
    out << "garbage that is much longer than the CSR v2 header needs";
  }
  // Not what it claims to be: wrong magic.
  const auto garbage = load_csr(f.path);
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), StatusCode::kInvalidArgument);

  const Graph g = gen::grid(8, 8);
  ASSERT_TRUE(write_csr(g, f.path).ok());
  // Was valid, now torn: truncation and checksum damage are kDataLoss.
  const auto full = std::filesystem::file_size(f.path);
  std::filesystem::resize_file(f.path, full - 16);
  const auto truncated = load_csr(f.path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kDataLoss);

  // Errors carry the path as context for one-line diagnostics.
  EXPECT_NE(truncated.status().message().find(f.path), std::string::npos);

  // Flag mismatch: an unweighted file through the weighted loader.
  ASSERT_TRUE(write_csr(g, f.path).ok());
  const auto wrong_family = load_weighted_csr(f.path);
  ASSERT_FALSE(wrong_family.ok());
  EXPECT_EQ(wrong_family.status().code(), StatusCode::kInvalidArgument);
}

TEST(Csr2Status, WriteToUnwritableDirectoryIsIoError) {
  const Status st =
      write_csr(gen::cycle(8), "/proc/definitely/not/writable/x.csr2");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(EdgeListStatus, MissingFileIsIoError) {
  const auto missing = load_edge_list("/nonexistent/gclus/edges.txt");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
  EXPECT_NE(missing.status().message().find("/nonexistent/gclus/edges.txt"),
            std::string::npos);
}

// ---- owning vs mmap through the registry ------------------------------------

/// Cheap, well-defined parameters for every registered algorithm on small
/// graphs (mirrors the registry corpus sweep in test_api.cpp).
AlgoParams sweep_params(const std::string& algo) {
  AlgoParams p;
  if (algo == "mpx" || algo == "mr.mpx") {
    p.set("beta", 0.4);
  } else if (algo == "random_centers" || algo == "gonzalez" ||
             algo == "kcenter") {
    p.set("k", std::uint64_t{4});
  } else if (algo == "mr.bfs") {
    p.set("source", std::uint64_t{0});
  } else {
    p.set("tau", std::uint64_t{2});
  }
  return p;
}

TEST(Csr2Registry, OwningAndMappedGraphsDecomposeIdentically) {
  if (!mmap_supported()) GTEST_SKIP() << "no mmap on this platform";
  TempFile f("gclus_io_registry.csr2");
  for (const auto& [name, g] : testutil::small_connected_corpus()) {
    write_csr_file(g, f.path);
    const Graph mapped = load_csr_file(f.path, {.mode = CsrLoadMode::kMmap});
    ASSERT_FALSE(mapped.owns_storage());
    for (const std::string& algo : registry().names()) {
      RunContext ctx_own, ctx_map;
      ctx_own.seed = ctx_map.seed = 12345;
      const Clustering own =
          registry().run(algo, g, sweep_params(algo), ctx_own);
      const Clustering map =
          registry().run(algo, mapped, sweep_params(algo), ctx_map);
      EXPECT_EQ(own.assignment, map.assignment) << name << "/" << algo;
      EXPECT_EQ(own.centers, map.centers) << name << "/" << algo;
      EXPECT_EQ(own.dist_to_center, map.dist_to_center)
          << name << "/" << algo;
    }
  }
}

}  // namespace
}  // namespace gclus::io
