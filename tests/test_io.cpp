// Tests for graph serialization: edge-list text parsing (including SNAP
// style comments and sparse ids) and the binary round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace gclus::io {
namespace {

TEST(EdgeListRead, ParsesPlainPairs) {
  std::istringstream in("0 1\n1 2\n2 0\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(EdgeListRead, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# SNAP-style comment\n% matrix-market comment\n\n0 1\n\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeListRead, CompactsSparseIds) {
  std::istringstream in("1000000 2000000\n2000000 30\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.validate());
}

TEST(EdgeListRead, SymmetrizesAndDedups) {
  std::istringstream in("0 1\n1 0\n0 1\n2 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 1u);  // self-loop dropped, duplicates merged
}

TEST(EdgeListRoundTrip, PreservesStructure) {
  const Graph g = gen::grid(7, 9);
  std::stringstream buf;
  write_edge_list(g, buf);
  const Graph h = read_edge_list(buf);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

TEST(BinaryRoundTrip, BitExact) {
  const Graph g = gen::rmat(256, 1024, 5);
  const std::string path =
      (std::filesystem::temp_directory_path() / "gclus_io_test.bin").string();
  write_binary_file(g, path);
  const Graph h = read_binary_file(path);
  EXPECT_EQ(g.offsets(), h.offsets());
  EXPECT_EQ(g.neighbor_array(), h.neighbor_array());
  std::remove(path.c_str());
}

TEST(BinaryRoundTrip, EmptyGraph) {
  const Graph g = build_graph(5, {});
  const std::string path =
      (std::filesystem::temp_directory_path() / "gclus_io_empty.bin").string();
  write_binary_file(g, path);
  const Graph h = read_binary_file(path);
  EXPECT_EQ(h.num_nodes(), 5u);
  EXPECT_EQ(h.num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(BinaryReadDeathTest, RejectsGarbageMagic) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gclus_io_bad.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a graph";
  }
  EXPECT_DEATH((void)read_binary_file(path), "not a gclus binary");
  std::remove(path.c_str());
}

TEST(FileIoDeathTest, MissingFileAborts) {
  EXPECT_DEATH((void)read_edge_list_file("/nonexistent/gclus/file.txt"),
               "cannot open");
}

}  // namespace
}  // namespace gclus::io
