// Unit coverage for the recoverable-error primitives: Status / StatusOr,
// the propagation macros, errno mapping, retry_transient, and the
// fault-injection registry (programmatic arming plus GCLUS_FAULT
// environment parsing).
#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/faultpoint.hpp"
#include "common/status.hpp"

namespace gclus {
namespace {

// Installed before main(): the first fault:: call in this process folds
// GCLUS_FAULT in exactly once, so FaultPointTest.EnvSpecsAreApplied below
// observes these arms.  The malformed clause and the unknown point prove
// both are reported-and-ignored rather than fatal — fault injection must
// never be the thing that crashes the process.
const bool kEnvInstalled = [] {
  ::setenv("GCLUS_FAULT",
           "io.open:2;io.read:always;bogus-clause;no.such.point:once", 1);
  return true;
}();

TEST(StatusTest, DefaultIsOk) {
  const Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_TRUE(st.message().empty());
  EXPECT_EQ(st.to_string(), "OK");
  EXPECT_EQ(st, OkStatus());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DataLossError("truncated").to_string(), "DATA_LOSS: truncated");
  EXPECT_TRUE(UnavailableError("again").transient());
  EXPECT_FALSE(IoError("hard").transient());
}

TEST(StatusTest, WithContextPrependsOnErrorsOnly) {
  EXPECT_EQ(DataLossError("bad checksum").with_context("a.csr2").message(),
            "a.csr2: bad checksum");
  EXPECT_TRUE(OkStatus().with_context("ignored").ok());
  EXPECT_TRUE(OkStatus().with_context("ignored").message().empty());
}

TEST(StatusTest, ErrnoMapping) {
  EXPECT_EQ(status_from_errno(EINTR, "read").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(status_from_errno(EAGAIN, "read").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(status_from_errno(ENOSPC, "write").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(status_from_errno(ENOMEM, "mmap").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(status_from_errno(ENOENT, "open").code(), StatusCode::kIoError);
  const Status st = status_from_errno(ENOENT, "open /tmp/x");
  EXPECT_NE(st.message().find("open /tmp/x: "), std::string::npos);
  EXPECT_NE(st.message().find(std::strerror(ENOENT)), std::string::npos);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok_val = 42;
  ASSERT_TRUE(ok_val.ok());
  EXPECT_EQ(ok_val.value(), 42);
  EXPECT_EQ(*ok_val, 42);

  StatusOr<int> err = DataLossError("gone");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(std::move(err).status().message(), "gone");
}

Status fails_then_context(bool fail) {
  GCLUS_RETURN_IF_ERROR(fail ? IoError("inner") : OkStatus());
  return OkStatus();
}

StatusOr<std::string> doubled(StatusOr<std::string> input) {
  GCLUS_ASSIGN_OR_RETURN(std::string s, std::move(input));
  return s + s;
}

TEST(StatusOrTest, PropagationMacros) {
  EXPECT_TRUE(fails_then_context(false).ok());
  EXPECT_EQ(fails_then_context(true).code(), StatusCode::kIoError);

  const auto good = doubled(std::string("ab"));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), "abab");
  const auto bad = doubled(InvalidArgumentError("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().message(), "nope");
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> err = IoError("broken");
  EXPECT_DEATH((void)err.value(), "StatusOr::value on error");
}

TEST(RetryTest, TransientErrorsRetryUntilSuccess) {
  const RetryPolicy fast{/*attempts=*/4, /*initial_backoff_us=*/0,
                         /*multiplier=*/1.0};
  int calls = 0;
  std::uint64_t retries = 0;
  const Status st = retry_transient(
      fast,
      [&] {
        return ++calls < 3 ? UnavailableError("busy") : OkStatus();
      },
      &retries);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(RetryTest, ExhaustionEscalatesToIoError) {
  const RetryPolicy fast{/*attempts=*/3, /*initial_backoff_us=*/0,
                         /*multiplier=*/1.0};
  int calls = 0;
  const Status st = retry_transient(fast, [&] {
    ++calls;
    return UnavailableError("still busy");
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("still busy"), std::string::npos);
  EXPECT_NE(st.message().find("giving up after 3 attempts"),
            std::string::npos);
}

TEST(RetryTest, NonTransientErrorsReturnImmediately) {
  const RetryPolicy fast{/*attempts=*/5, /*initial_backoff_us=*/0,
                         /*multiplier=*/1.0};
  int calls = 0;
  const Status st = retry_transient(fast, [&] {
    ++calls;
    return DataLossError("torn");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

TEST(RetryTest, ProcessPolicyIsSane) {
  const RetryPolicy& policy = io_retry_policy();
  EXPECT_GE(policy.attempts, 1);
  EXPECT_GT(policy.multiplier, 0.0);
}

// Must be the first non-death test to touch the fault registry in this
// binary: the GCLUS_FAULT value installed at static-init time is folded
// in on first use.  (Death-test children re-apply it independently.)
TEST(FaultPointTest, EnvSpecsAreApplied) {
  ASSERT_TRUE(kEnvInstalled);
  // io.open:2 — the first two evaluations fail, later ones do not.
  EXPECT_TRUE(fault::should_fail("io.open"));
  EXPECT_TRUE(fault::should_fail("io.open"));
  EXPECT_FALSE(fault::should_fail("io.open"));
  // io.read:always.
  EXPECT_TRUE(fault::should_fail("io.read"));
  EXPECT_TRUE(fault::should_fail("io.read"));
  EXPECT_EQ(fault::trigger_count("io.open"), 2u);
  EXPECT_GE(fault::hit_count("io.open"), 3u);
  fault::disarm_all();
  EXPECT_FALSE(fault::should_fail("io.read"));
}

TEST(FaultPointTest, TableIsSortedAndRegistered) {
  const auto points = fault::all_fault_points();
  ASSERT_FALSE(points.empty());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(fault::is_registered(points[i])) << points[i];
    if (i > 0) {
      EXPECT_LT(std::strcmp(points[i - 1], points[i]), 0)
          << points[i - 1] << " !< " << points[i];
    }
  }
  EXPECT_FALSE(fault::is_registered("no.such.point"));
}

TEST(FaultPointTest, FirstNAndAlwaysModes) {
  fault::disarm_all();
  fault::arm("spill.write", fault::FaultSpec::once());
  EXPECT_TRUE(fault::should_fail("spill.write"));
  EXPECT_FALSE(fault::should_fail("spill.write"));

  fault::arm("spill.write", fault::FaultSpec::first_n(3));
  int fired = 0;
  for (int i = 0; i < 8; ++i) fired += fault::should_fail("spill.write");
  EXPECT_EQ(fired, 3);

  fault::arm("spill.write", fault::FaultSpec::always());
  EXPECT_TRUE(fault::should_fail("spill.write"));
  EXPECT_TRUE(fault::should_fail("spill.write"));
  fault::disarm("spill.write");
  EXPECT_FALSE(fault::should_fail("spill.write"));
}

TEST(FaultPointTest, ProbabilityModeIsDeterministic) {
  const auto draw_sequence = [] {
    fault::arm("io.mmap", fault::FaultSpec::probability(0.5, 1234));
    std::vector<bool> seq;
    seq.reserve(64);
    for (int i = 0; i < 64; ++i) seq.push_back(fault::should_fail("io.mmap"));
    fault::disarm("io.mmap");  // resets the draw counter
    return seq;
  };
  const auto a = draw_sequence();
  const auto b = draw_sequence();
  EXPECT_EQ(a, b);
  // p=0.5 over 64 draws: both outcomes occur (probability ~2^-64 not to).
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST(FaultPointTest, CountersAndReset) {
  fault::disarm_all();
  fault::reset_counters();
  EXPECT_EQ(fault::total_triggers(), 0u);
  fault::arm("cache.publish", fault::FaultSpec::always());
  (void)fault::should_fail("cache.publish");
  (void)fault::should_fail("cache.publish");
  (void)fault::should_fail("io.write");  // unarmed: hit but no trigger
  EXPECT_EQ(fault::hit_count("cache.publish"), 2u);
  EXPECT_EQ(fault::trigger_count("cache.publish"), 2u);
  EXPECT_EQ(fault::hit_count("io.write"), 1u);
  EXPECT_EQ(fault::trigger_count("io.write"), 0u);
  EXPECT_EQ(fault::total_triggers(), 2u);

  const auto counters = fault::triggered_counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "cache.publish");
  EXPECT_EQ(counters[0].second, 2u);

  fault::disarm_all();
  fault::reset_counters();
  EXPECT_EQ(fault::hit_count("cache.publish"), 0u);
  EXPECT_EQ(fault::total_triggers(), 0u);
}

TEST(FaultDeathTest, UndeclaredNamesAbort) {
  EXPECT_DEATH(fault::arm("no.such.point", fault::FaultSpec::once()),
               "fault point not declared");
  EXPECT_DEATH((void)fault::should_fail("no.such.point"),
               "fault point not declared");
}

}  // namespace
}  // namespace gclus
