// Shared helpers for the test suite: a corpus of small named graphs used
// by the parameterized property sweeps, and brute-force reference
// implementations that the optimized kernels are checked against.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace gclus::testutil {

/// Byte-identical CSR arrays — the equality the determinism and
/// round-trip sweeps assert.  (Graph accessors return spans, which have
/// no operator==, so tests compare through here.)
inline bool same_csr(const Graph& a, const Graph& b) {
  return std::ranges::equal(a.offsets(), b.offsets()) &&
         std::ranges::equal(a.neighbor_array(), b.neighbor_array());
}

struct NamedGraph {
  std::string name;
  Graph graph;
};

/// Largest connected component of g (thin wrapper over graph/connectivity).
Graph largest_component_of(const Graph& g);

/// A corpus of small connected graphs with diverse shapes: paths, cycles,
/// grids, tori, trees, cliques, expanders, power-law, ring-of-cliques,
/// expander+path.  Every graph is connected and small enough (<= ~2500
/// nodes) for brute-force cross-checks.
std::vector<NamedGraph> small_connected_corpus();

/// Brute-force exact diameter by BFS from every node.  O(n·m).
inline Dist brute_force_diameter(const Graph& g) {
  Dist best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto e = bfs_extremum(g, v);
    if (e.eccentricity > best) best = e.eccentricity;
  }
  return best;
}

/// Brute-force optimal k-center radius by trying every size-k center set —
/// exponential; only for tiny graphs (n <= ~16, k <= 3).
Dist brute_force_kcenter_radius(const Graph& g, NodeId k);

}  // namespace gclus::testutil
