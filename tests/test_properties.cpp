// Tests for structural property computations, most importantly the exact
// iFUB diameter against the brute-force reference over the whole corpus.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "test_util.hpp"

namespace gclus {
namespace {

TEST(DegreeStats, GridValues) {
  const auto s = degree_stats(gen::grid(3, 4));
  EXPECT_EQ(s.min_degree, 2u);
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_NEAR(s.avg_degree, 2.0 * 17 / 12, 1e-9);
}

TEST(DegreeStats, RegularGraph) {
  const auto s = degree_stats(gen::cycle(9));
  EXPECT_EQ(s.min_degree, 2u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
}

TEST(DoubleSweep, LowerBoundsTheDiameter) {
  for (const auto& [name, graph] : testutil::small_connected_corpus()) {
    const Dist lb = double_sweep_lower_bound(graph);
    const Dist d = testutil::brute_force_diameter(graph);
    EXPECT_LE(lb, d) << name;
    EXPECT_GE(2 * static_cast<std::uint64_t>(lb), d) << name;  // sweep >= ecc
  }
}

TEST(DoubleSweep, ExactOnPathsAndTrees) {
  EXPECT_EQ(double_sweep_lower_bound(gen::path(33)), 32u);
  EXPECT_EQ(double_sweep_lower_bound(gen::binary_tree(31)), 8u);
}

class ExactDiameterTest
    : public ::testing::TestWithParam<testutil::NamedGraph> {};

TEST_P(ExactDiameterTest, MatchesBruteForce) {
  const auto& [name, graph] = GetParam();
  const ExactDiameterResult r = exact_diameter(graph);
  EXPECT_EQ(r.diameter, testutil::brute_force_diameter(graph)) << name;
  EXPECT_GE(r.bfs_runs, 3u);
  // iFUB must be far cheaper than the n-BFS brute force on non-tiny inputs.
  if (graph.num_nodes() > 100) {
    EXPECT_LT(r.bfs_runs, graph.num_nodes()) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ExactDiameterTest,
    ::testing::ValuesIn(testutil::small_connected_corpus()),
    [](const ::testing::TestParamInfo<testutil::NamedGraph>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(ExactDiameter, KnownValues) {
  EXPECT_EQ(exact_diameter(gen::path(100)).diameter, 99u);
  EXPECT_EQ(exact_diameter(gen::cycle(100)).diameter, 50u);
  EXPECT_EQ(exact_diameter(gen::grid(10, 20)).diameter, 28u);
  EXPECT_EQ(exact_diameter(gen::complete(30)).diameter, 1u);
  EXPECT_EQ(exact_diameter(gen::star(30)).diameter, 2u);
  EXPECT_EQ(exact_diameter(gen::path(1)).diameter, 0u);
}

TEST(ExactDiameter, StartNodeDoesNotMatter) {
  const Graph g = gen::road_like(20, 20, 0.1, 0.02, 3);
  const Dist d0 = exact_diameter(g, 0).diameter;
  const Dist dmid = exact_diameter(g, g.num_nodes() / 2).diameter;
  EXPECT_EQ(d0, dmid);
}

TEST(ExactDiameterDeathTest, RejectsDisconnectedInput) {
  const Graph g = gen::disjoint_union(gen::path(3), gen::path(3));
  EXPECT_DEATH((void)exact_diameter(g), "connected");
}

TEST(AllEccentricities, MatchesPerNodeBfs) {
  const Graph g = gen::grid(5, 6);
  const auto ecc = all_eccentricities(g);
  // Corner eccentricity = opposite-corner Manhattan distance.
  EXPECT_EQ(ecc[0], 9u);
  // Center-most node has the radius.
  const Dist min_ecc = *std::min_element(ecc.begin(), ecc.end());
  const Dist max_ecc = *std::max_element(ecc.begin(), ecc.end());
  EXPECT_EQ(max_ecc, 9u);
  EXPECT_LE(min_ecc, 5u);
}

}  // namespace
}  // namespace gclus
