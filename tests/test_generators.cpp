// Tests for the graph generators: exact structure where analytically
// known, statistical/structural properties otherwise, determinism
// throughout.
#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "test_util.hpp"

namespace gclus::gen {
namespace {

using testutil::brute_force_diameter;

TEST(PathGenerator, StructureAndDiameter) {
  const Graph g = path(10);
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(brute_force_diameter(g), 9u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(5), 2u);
}

TEST(PathGenerator, SingleNode) {
  const Graph g = path(1);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(CycleGenerator, StructureAndDiameter) {
  const Graph even = cycle(10);
  EXPECT_EQ(even.num_edges(), 10u);
  EXPECT_EQ(brute_force_diameter(even), 5u);
  const Graph odd = cycle(11);
  EXPECT_EQ(brute_force_diameter(odd), 5u);
  for (NodeId v = 0; v < 11; ++v) EXPECT_EQ(odd.degree(v), 2u);
}

TEST(GridGenerator, StructureAndDiameter) {
  const Graph g = grid(4, 7);
  EXPECT_EQ(g.num_nodes(), 28u);
  // Edges: rows*(cols-1) + (rows-1)*cols.
  EXPECT_EQ(g.num_edges(), 4u * 6 + 3 * 7);
  EXPECT_EQ(brute_force_diameter(g), 4u + 7 - 2);
  EXPECT_EQ(g.degree(0), 2u);       // corner
  EXPECT_EQ(g.degree(1), 3u);       // edge
  EXPECT_EQ(g.degree(8), 4u);       // interior
}

TEST(TorusGenerator, IsRegularDegree4) {
  const Graph g = torus(5, 6);
  EXPECT_EQ(g.num_nodes(), 30u);
  EXPECT_EQ(g.num_edges(), 60u);
  for (NodeId v = 0; v < 30; ++v) EXPECT_EQ(g.degree(v), 4u);
  // Torus diameter: floor(r/2) + floor(c/2).
  EXPECT_EQ(brute_force_diameter(g), 2u + 3u);
}

TEST(CompleteGenerator, AllPairsAdjacent) {
  const Graph g = complete(8);
  EXPECT_EQ(g.num_edges(), 28u);
  EXPECT_EQ(brute_force_diameter(g), 1u);
}

TEST(StarGenerator, CenterDominates) {
  const Graph g = star(12);
  EXPECT_EQ(g.num_edges(), 11u);
  EXPECT_EQ(g.degree(0), 11u);
  EXPECT_EQ(brute_force_diameter(g), 2u);
}

TEST(BinaryTreeGenerator, StructureAndConnectivity) {
  const Graph g = binary_tree(15);  // perfect tree of height 3
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(brute_force_diameter(g), 6u);  // leaf-to-leaf through the root
}

TEST(RandomTreeGenerator, IsTreeAndDeterministic) {
  const Graph a = random_tree(200, 5);
  EXPECT_EQ(a.num_edges(), 199u);
  EXPECT_TRUE(is_connected(a));
  const Graph b = random_tree(200, 5);
  EXPECT_TRUE(testutil::same_csr(a, b));
  const Graph c = random_tree(200, 6);
  EXPECT_FALSE(testutil::same_csr(a, c));
}

TEST(ErdosRenyiGenerator, ExactEdgeCountNoDuplicates) {
  const Graph g = erdos_renyi(100, 300, 3);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 300u);
  EXPECT_TRUE(g.validate());
}

TEST(ErdosRenyiGenerator, Deterministic) {
  const Graph a = erdos_renyi(50, 100, 9);
  const Graph b = erdos_renyi(50, 100, 9);
  EXPECT_TRUE(testutil::same_csr(a, b));
}

TEST(RmatGenerator, PowerLawSkewAndDeterminism) {
  const Graph g = rmat(1024, 8192, 21);
  EXPECT_EQ(g.num_nodes(), 1024u);
  EXPECT_LE(g.num_edges(), 8192u);  // dedup may remove some
  EXPECT_GT(g.num_edges(), 4000u);  // but not most
  const auto stats = degree_stats(g);
  // Heavy tail: the max degree far exceeds the average.
  EXPECT_GT(static_cast<double>(stats.max_degree), 5.0 * stats.avg_degree);
  const Graph h = rmat(1024, 8192, 21);
  EXPECT_TRUE(testutil::same_csr(g, h));
}

TEST(RmatGeneratorDeathTest, RequiresPowerOfTwo) {
  EXPECT_DEATH(rmat(1000, 100, 1), "power-of-two");
}

TEST(PreferentialAttachment, ConnectedWithExpectedEdges) {
  const Graph g = preferential_attachment(500, 3, 5);
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_TRUE(is_connected(g));
  // attach edges per new node plus the seed clique.
  EXPECT_GE(g.num_edges(), 3u * (500 - 4));
  const auto stats = degree_stats(g);
  EXPECT_GT(static_cast<double>(stats.max_degree), 3.0 * stats.avg_degree);
}

TEST(RoadLikeGenerator, SparseConnectedLargeDiameter) {
  const Graph g = road_like(40, 40, 0.08, 0.02, 7);
  EXPECT_TRUE(is_connected(g));  // generator returns the giant component
  EXPECT_GT(g.num_nodes(), 1200u);
  const auto stats = degree_stats(g);
  EXPECT_LT(stats.avg_degree, 4.2);
  // Diameter stays grid-like: at least the Manhattan width of the grid.
  EXPECT_GE(exact_diameter(g).diameter, 39u);
}

TEST(ExpanderGenerator, RegularLowDiameter) {
  const Graph g = expander(1024, 4, 3);
  EXPECT_TRUE(is_connected(g));
  const auto stats = degree_stats(g);
  EXPECT_GE(stats.min_degree, 3u);  // cycle unions may merge an edge
  EXPECT_LE(stats.max_degree, 4u);
  // Expander diameter is O(log n): generous ceiling.
  EXPECT_LE(exact_diameter(g).diameter, 20u);
}

TEST(ExpanderGeneratorDeathTest, RejectsOddDegree) {
  EXPECT_DEATH(expander(64, 3, 1), "even");
}

TEST(ExpanderWithPath, DiameterDominatedByTail) {
  const Graph g = expander_with_path(600, 100, 4, 3);
  EXPECT_EQ(g.num_nodes(), 600u);
  EXPECT_TRUE(is_connected(g));
  const Dist d = exact_diameter(g).diameter;
  EXPECT_GE(d, 100u);
  EXPECT_LE(d, 130u);  // tail + expander crossing
}

TEST(RingOfCliques, StructureAndDiameter) {
  const Graph g = ring_of_cliques(6, 5);
  EXPECT_EQ(g.num_nodes(), 30u);
  EXPECT_TRUE(is_connected(g));
  // Each clique contributes C(5,2)=10 edges, plus 6 bridges.
  EXPECT_EQ(g.num_edges(), 6u * 10 + 6);
}

TEST(WithTail, ExtendsDiameterByTailLength) {
  const Graph base = gen::complete(20);
  const Graph g = with_tail(base, 15);
  EXPECT_EQ(g.num_nodes(), 35u);
  EXPECT_TRUE(is_connected(g));
  // Tail end to the farthest clique node: 15 (chain) + 1 (clique hop).
  EXPECT_EQ(brute_force_diameter(g), 16u);
}

TEST(WithTail, AttachAtArbitraryNode) {
  const Graph base = gen::path(5);
  const Graph g = with_tail(base, 3, /*attach_at=*/4);
  EXPECT_EQ(brute_force_diameter(g), 7u);  // 0..4 then the tail
}

TEST(DisjointUnion, ComponentsPreserved) {
  const Graph g = disjoint_union(gen::path(5), gen::cycle(6));
  EXPECT_EQ(g.num_nodes(), 11u);
  EXPECT_EQ(g.num_edges(), 4u + 6u);
  const Components comps = connected_components(g);
  EXPECT_EQ(comps.count, 2u);
  EXPECT_FALSE(is_connected(g));
}

// Determinism sweep across every generator used in the corpus.
TEST(Generators, CorpusIsDeterministic) {
  const auto a = testutil::small_connected_corpus();
  const auto b = testutil::small_connected_corpus();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(testutil::same_csr(a[i].graph, b[i].graph)) << a[i].name;
  }
}

TEST(Generators, CorpusIsConnected) {
  for (const auto& [name, graph] : testutil::small_connected_corpus()) {
    EXPECT_TRUE(is_connected(graph)) << name;
  }
}

}  // namespace
}  // namespace gclus::gen
