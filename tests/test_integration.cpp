// Integration tests: the full paper pipelines end-to-end on (scaled-down)
// workload datasets — decomposition → quotient → diameter bounds against
// exact ground truth, k-center on a real workload, oracle over a road
// network, and the MR pipeline on a workload graph.
#include <gtest/gtest.h>

#include "baselines/mpx.hpp"
#include "core/cluster.hpp"
#include "core/diameter.hpp"
#include "core/distance_oracle.hpp"
#include "core/kcenter.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mr_algos/mr_cluster.hpp"
#include "workloads/datasets.hpp"

namespace gclus {
namespace {

/// Small stand-ins for the registry datasets (the real sizes run in the
/// bench harness; integration tests must stay fast).
Graph small_road() { return gen::road_like(40, 40, 0.08, 0.02, 3); }
Graph small_social() {
  return gen::preferential_attachment(3000, 3, 5);
}
Graph small_mesh() { return gen::grid(48, 48); }

TEST(Integration, DiameterPipelineOnRoad) {
  const Graph g = small_road();
  const Dist truth = exact_diameter(g).diameter;
  DiameterOptions opts;
  opts.seed = 1;
  const DiameterApprox a = approximate_diameter(g, 8, opts);
  EXPECT_LE(a.lower_bound, truth);
  EXPECT_GE(a.upper_bound, truth);
  // The paper observes Δ″/Δ < 2 on road networks; allow 3 for the scaled
  // instance but track the real ratio in EXPERIMENTS.md.
  EXPECT_LE(a.upper_bound, 3ULL * truth + 10);
}

TEST(Integration, DiameterPipelineOnMesh) {
  const Graph g = small_mesh();
  const Dist truth = 94;  // 48+48-2
  DiameterOptions opts;
  opts.seed = 2;
  const DiameterApprox a = approximate_diameter(g, 8, opts);
  EXPECT_GE(a.upper_bound, truth);
  EXPECT_LE(a.upper_bound, 3ULL * truth + 10);
  EXPECT_LE(a.lower_bound, truth);
}

TEST(Integration, DiameterPipelineOnSocial) {
  const Graph g = small_social();
  const Dist truth = exact_diameter(g).diameter;
  DiameterOptions opts;
  opts.seed = 3;
  const DiameterApprox a = approximate_diameter(g, 4, opts);
  EXPECT_GE(a.upper_bound, truth);
  // Low-diameter graphs: the additive 2R term dominates; stay within the
  // polylog guarantee rather than the factor-2 road observation.
  EXPECT_LE(a.upper_bound, 12ULL * truth + 16);
}

TEST(Integration, GranularityDoesNotBreakApproximation) {
  // Table 3's qualitative claim: coarser and finer clusterings both give
  // valid, similar-quality estimates.
  const Graph g = small_road();
  const Dist truth = exact_diameter(g).diameter;
  DiameterOptions opts;
  opts.seed = 4;
  const DiameterApprox coarse = approximate_diameter(g, 2, opts);
  const DiameterApprox fine = approximate_diameter(g, 16, opts);
  for (const auto& a : {coarse, fine}) {
    EXPECT_GE(a.upper_bound, truth);
    EXPECT_LE(a.upper_bound, 3ULL * truth + 10);
  }
  EXPECT_LT(coarse.quotient_nodes, fine.quotient_nodes);
}

TEST(Integration, KCenterOnMeshBeatsNaiveBaseline) {
  const Graph g = small_mesh();
  KCenterOptions opts;
  opts.seed = 5;
  const KCenterResult r = kcenter_approx(g, 16, opts);
  EXPECT_EQ(r.centers.size(), 16u);
  // 16 centers on a 48x48 grid: optimal radius ~ 12 (4x4 tiling of 12x12
  // boxes); polylog approximation should stay well under the diameter.
  EXPECT_LT(r.radius, 94u / 2);
}

TEST(Integration, OracleOnRoadNetwork) {
  const Graph g = small_road();
  DistanceOracleOptions opts;
  opts.seed = 6;
  opts.use_cluster2 = false;  // the cheaper pipeline variant
  const DistanceOracle oracle = DistanceOracle::build(g, opts);
  const auto exact = bfs_distances(g, 0);
  std::uint64_t max_ratio_num = 0, max_ratio_den = 1;
  for (NodeId v = 0; v < g.num_nodes(); v += 37) {
    const auto ub = oracle.upper_bound(0, v);
    ASSERT_GE(ub, exact[v]);
    if (exact[v] > 10 && ub * max_ratio_den > max_ratio_num * exact[v]) {
      max_ratio_num = ub;
      max_ratio_den = exact[v];
    }
  }
  // Far-apart pairs: distortion stays single-digit in practice.
  EXPECT_LT(static_cast<double>(max_ratio_num) / max_ratio_den, 8.0);
}

TEST(Integration, MrPipelineAgreesWithSharedMemoryOnWorkload) {
  // End-to-end equivalence on a real (scaled) workload graph.
  const Graph g = small_road();
  ClusterOptions copts;
  copts.seed = 7;
  const Clustering shared = cluster(g, 4, copts);

  mr::Engine engine;
  mr_algos::MrClusterOptions mopts;
  mopts.seed = 7;
  const auto dist = mr_algos::mr_cluster(engine, g, 4, mopts);
  EXPECT_EQ(dist.clustering.assignment, shared.assignment);

  // Round accounting: growth rounds == growth steps, and the total round
  // count is what Lemma 3 predicts (R + selection waves) with M_L = ∞.
  EXPECT_EQ(dist.growth_rounds, shared.growth_steps);
}

TEST(Integration, MpxAndClusterBothDecomposeWorkload) {
  // The Table-2 comparison shape at integration scale: matched
  // granularity, both valid; radii recorded for the bench to analyze.
  const Graph g = small_road();
  ClusterOptions copts;
  copts.seed = 8;
  const Clustering ours = cluster(g, 4, copts);
  baselines::MpxOptions mopts;
  mopts.seed = 8;
  const double beta =
      baselines::mpx_tune_beta(g, ours.num_clusters(), mopts, 8);
  const Clustering theirs = baselines::mpx(g, beta, mopts);
  EXPECT_TRUE(ours.validate(g));
  EXPECT_TRUE(theirs.validate(g));
  EXPECT_GE(theirs.num_clusters(), ours.num_clusters());
}

TEST(Integration, TailAppendedGraphKeepsClusterRoundsStable) {
  // Figure 1's mechanism: appending a c·Δ tail multiplies BFS rounds but
  // barely moves CLUSTER's growth steps (the tail is covered by many
  // re-seeded clusters in parallel).
  const Graph base = small_social();
  const Dist base_diam = exact_diameter(base).diameter;
  const Graph tailed =
      gen::with_tail(base, static_cast<NodeId>(6 * base_diam));

  ClusterOptions opts;
  opts.seed = 9;
  const Clustering c_base = cluster(base, 8, opts);
  const Clustering c_tail = cluster(tailed, 8, opts);
  EXPECT_TRUE(c_tail.validate(tailed));

  // BFS rounds grow by ~6x diameter; CLUSTER growth steps grow far less.
  const std::size_t bfs_base = bfs_extremum(base, 0).eccentricity;
  const std::size_t bfs_tail = bfs_extremum(tailed, 0).eccentricity;
  EXPECT_GE(bfs_tail, bfs_base + 5 * base_diam);
  EXPECT_LT(c_tail.growth_steps,
            c_base.growth_steps + 3 * static_cast<std::size_t>(base_diam));
}

TEST(Integration, WorkloadsSmokeAtTinyScale) {
  // Run the decomposition across every registry dataset at whatever scale
  // the environment sets (CI default 1.0 — these graphs are modest).
  for (const auto& name : workloads::dataset_names()) {
    const workloads::Dataset d = workloads::load_dataset(name);
    ClusterOptions opts;
    opts.seed = 10;
    const std::uint32_t tau = d.large_diameter ? 32 : 8;
    const Clustering c = cluster(d.graph, tau, opts);
    EXPECT_TRUE(c.validate(d.graph)) << name;
    EXPECT_LT(c.num_clusters(), d.graph.num_nodes()) << name;
  }
}

}  // namespace
}  // namespace gclus
