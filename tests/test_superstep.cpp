// Tests for the vertex-centric superstep layer and its Lemma-3 round
// charging.
#include <gtest/gtest.h>

#include <atomic>

#include "graph/generators.hpp"
#include "mapreduce/superstep.hpp"

namespace gclus::mr {
namespace {

TEST(RoundsPerSuperstep, Formula) {
  // Fits locally: one round.
  EXPECT_EQ(rounds_per_superstep(1000, 10), 1u);
  EXPECT_EQ(rounds_per_superstep(10, 10), 1u);
  // log_{M_L}(items): 10^6 items with M_L=100 needs 3 rounds.
  EXPECT_EQ(rounds_per_superstep(100, 1000000), 3u);
  EXPECT_EQ(rounds_per_superstep(1000, 1000000), 2u);
  // Degenerate: zero or one item is free.
  EXPECT_EQ(rounds_per_superstep(2, 0), 1u);
  EXPECT_EQ(rounds_per_superstep(2, 1), 1u);
}

TEST(RunSupersteps, PropagatesToQuiescence) {
  // Token passing along a path: superstep s delivers the token to node s+1.
  const Graph g = gen::path(10);
  Engine engine;
  std::vector<int> visited_at(10, -1);
  visited_at[0] = 0;
  std::vector<std::pair<NodeId, std::uint8_t>> init{{1, 0}};
  const std::size_t steps = run_supersteps<std::uint8_t>(
      engine, std::move(init),
      [&](std::size_t superstep, NodeId v, std::span<std::uint8_t>,
          Outbox<std::uint8_t>& out) {
        if (visited_at[v] >= 0) return;
        visited_at[v] = static_cast<int>(superstep) + 1;
        if (v + 1 < 10) out.send(v + 1, 0);
      });
  EXPECT_EQ(steps, 9u);
  for (NodeId v = 1; v < 10; ++v) EXPECT_EQ(visited_at[v], static_cast<int>(v));
}

TEST(RunSupersteps, MaxSuperstepsCapRespected) {
  const Graph g = gen::cycle(8);
  Engine engine;
  std::atomic<int> messages_seen{0};
  // A program that bounces messages around the cycle forever.
  std::vector<std::pair<NodeId, std::uint8_t>> init{{0, 0}};
  const std::size_t steps = run_supersteps<std::uint8_t>(
      engine, std::move(init),
      [&](std::size_t, NodeId v, std::span<std::uint8_t>,
          Outbox<std::uint8_t>& out) {
        messages_seen.fetch_add(1);
        out.send((v + 1) % 8, 0);
      },
      /*max_supersteps=*/5);
  EXPECT_EQ(steps, 5u);
  EXPECT_EQ(messages_seen.load(), 5);
}

TEST(RunSupersteps, EmptyInitialMessagesNoSupersteps) {
  Engine engine;
  const std::size_t steps = run_supersteps<std::uint8_t>(
      engine, {},
      [](std::size_t, NodeId, std::span<std::uint8_t>, Outbox<std::uint8_t>&) {
        FAIL() << "no vertex should run";
      });
  EXPECT_EQ(steps, 0u);
  EXPECT_EQ(engine.metrics().rounds, 0u);
}

TEST(RunSupersteps, ChargesSortingRoundsUnderSmallLocalMemory) {
  // With M_L = 4 and charge_items = 10^4, each superstep costs
  // ceil(log_4 10^4) = 7 rounds instead of 1.
  Config cfg;
  cfg.local_memory_pairs = 4;
  Engine engine(cfg);
  std::vector<std::pair<NodeId, std::uint8_t>> init{{0, 0}};
  int hops = 0;
  run_supersteps<std::uint8_t>(
      engine, std::move(init),
      [&](std::size_t, NodeId v, std::span<std::uint8_t>,
          Outbox<std::uint8_t>& out) {
        if (++hops < 3) out.send(v + 1, 0);
      },
      /*max_supersteps=*/SIZE_MAX, /*charge_items=*/10000);
  // 3 supersteps executed, each charged ceil(log_4(10^4)) = 7 rounds.
  EXPECT_EQ(engine.metrics().rounds, 21u);
}

TEST(RunSupersteps, InboxAggregatesAllMessagesToVertex) {
  Engine engine;
  // Three initial messages to the same vertex arrive in one inbox.
  std::vector<std::pair<NodeId, std::uint32_t>> init{
      {5, 100}, {5, 200}, {5, 300}};
  std::size_t inbox_size = 0;
  std::uint32_t inbox_sum = 0;
  run_supersteps<std::uint32_t>(
      engine, std::move(init),
      [&](std::size_t, NodeId v, std::span<std::uint32_t> inbox,
          Outbox<std::uint32_t>&) {
        EXPECT_EQ(v, 5u);
        inbox_size = inbox.size();
        for (const auto m : inbox) inbox_sum += m;
      });
  EXPECT_EQ(inbox_size, 3u);
  EXPECT_EQ(inbox_sum, 600u);
}

}  // namespace
}  // namespace gclus::mr
