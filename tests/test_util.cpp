#include "test_util.hpp"

#include <algorithm>

#include "graph/connectivity.hpp"

namespace gclus::testutil {

Graph largest_component_of(const Graph& g) {
  return largest_component(g).graph;
}

std::vector<NamedGraph> small_connected_corpus() {
  std::vector<NamedGraph> out;
  out.push_back({"path-64", gen::path(64)});
  out.push_back({"path-257", gen::path(257)});
  out.push_back({"cycle-100", gen::cycle(100)});
  out.push_back({"grid-12x17", gen::grid(12, 17)});
  out.push_back({"grid-30x30", gen::grid(30, 30)});
  out.push_back({"torus-10x11", gen::torus(10, 11)});
  out.push_back({"binary-tree-255", gen::binary_tree(255)});
  out.push_back({"random-tree-400", gen::random_tree(400, 7)});
  out.push_back({"complete-25", gen::complete(25)});
  out.push_back({"star-80", gen::star(80)});
  out.push_back({"expander-512", gen::expander(512, 4, 11)});
  out.push_back({"ring-of-cliques-12x8", gen::ring_of_cliques(12, 8)});
  out.push_back({"expander-path", gen::expander_with_path(600, 80, 4, 13)});
  out.push_back({"pa-500", gen::preferential_attachment(500, 3, 17)});
  out.push_back(
      {"rmat-1024", largest_component_of(gen::rmat(1024, 4096, 19))});
  out.push_back({"road-like-24x24", gen::road_like(24, 24, 0.08, 0.02, 23)});
  return out;
}

Dist brute_force_kcenter_radius(const Graph& g, NodeId k) {
  const NodeId n = g.num_nodes();
  // Enumerate size-k subsets with a simple odometer.
  std::vector<NodeId> idx(k);
  for (NodeId i = 0; i < k; ++i) idx[i] = i;
  Dist best = kInfDist;
  for (;;) {
    const auto dist = multi_source_bfs(g, idx);
    Dist radius = 0;
    bool feasible = true;
    for (NodeId v = 0; v < n; ++v) {
      if (dist[v] == kInfDist) {
        feasible = false;
        break;
      }
      radius = std::max(radius, dist[v]);
    }
    if (feasible) best = std::min(best, radius);
    // Advance the odometer.
    int pos = static_cast<int>(k) - 1;
    while (pos >= 0 &&
           idx[pos] == n - k + static_cast<NodeId>(pos)) {
      --pos;
    }
    if (pos < 0) break;
    ++idx[pos];
    for (NodeId j = static_cast<NodeId>(pos) + 1; j < k; ++j) {
      idx[j] = idx[j - 1] + 1;
    }
  }
  return best;
}

}  // namespace gclus::testutil
