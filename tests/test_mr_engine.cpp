// Tests for the MR(M_G, M_L) engine: round semantics (grouping, value
// order, determinism), metrics accounting, and memory-bound enforcement.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "mapreduce/engine.hpp"

namespace gclus::mr {
namespace {

using KV = std::pair<std::uint32_t, std::uint64_t>;

TEST(Engine, GroupsValuesByKey) {
  Engine engine;
  std::vector<KV> input{{1, 10}, {2, 20}, {1, 11}, {3, 30}, {2, 21}};
  std::map<std::uint32_t, std::vector<std::uint64_t>> seen;
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      input, [&](const std::uint32_t& k, std::span<std::uint64_t> vs,
                 Emitter<std::uint32_t, std::uint64_t>&) {
        seen[k].assign(vs.begin(), vs.end());
      });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[1], (std::vector<std::uint64_t>{10, 11}));
  EXPECT_EQ(seen[2], (std::vector<std::uint64_t>{20, 21}));
  EXPECT_EQ(seen[3], (std::vector<std::uint64_t>{30}));
}

TEST(Engine, ValuesArriveInInputOrder) {
  Engine engine;
  std::vector<KV> input;
  for (std::uint64_t i = 0; i < 500; ++i) input.emplace_back(7, i);
  std::vector<std::uint64_t> got;
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      std::move(input),
      [&](const std::uint32_t&, std::span<std::uint64_t> vs,
          Emitter<std::uint32_t, std::uint64_t>&) {
        got.assign(vs.begin(), vs.end());
      });
  ASSERT_EQ(got.size(), 500u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST(Engine, EmittedPairsAreReturned) {
  Engine engine;
  std::vector<KV> input{{1, 1}, {2, 2}, {3, 3}};
  auto out =
      engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
          std::move(input),
          [](const std::uint32_t& k, std::span<std::uint64_t> vs,
             Emitter<std::uint32_t, std::uint64_t>& emit) {
            for (const auto v : vs) emit.emit(k * 10, v * 10);
          });
  ASSERT_EQ(out.size(), 3u);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out[0], (std::pair<std::uint32_t, std::uint64_t>{10, 10}));
  EXPECT_EQ(out[2], (std::pair<std::uint32_t, std::uint64_t>{30, 30}));
}

TEST(Engine, OutputDeterministicAcrossWorkerCounts) {
  auto run = [](std::size_t workers) {
    Config cfg;
    cfg.num_workers = workers;
    Engine engine(cfg);
    std::vector<KV> input;
    for (std::uint64_t i = 0; i < 5000; ++i) {
      input.emplace_back(static_cast<std::uint32_t>(i % 97), i);
    }
    auto out = engine.round<std::uint32_t, std::uint64_t, std::uint32_t,
                            std::uint64_t>(
        std::move(input),
        [](const std::uint32_t& k, std::span<std::uint64_t> vs,
           Emitter<std::uint32_t, std::uint64_t>& emit) {
          std::uint64_t sum = 0;
          for (const auto v : vs) sum += v;
          emit.emit(k, sum);
        });
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(Engine, MetricsCountRoundsAndVolume) {
  Engine engine;
  std::vector<KV> input{{1, 1}, {1, 2}, {2, 3}};
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      input, [](const std::uint32_t&, std::span<std::uint64_t>,
                Emitter<std::uint32_t, std::uint64_t>&) {});
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      input, [](const std::uint32_t&, std::span<std::uint64_t>,
                Emitter<std::uint32_t, std::uint64_t>&) {});
  const Metrics& m = engine.metrics();
  EXPECT_EQ(m.rounds, 2u);
  EXPECT_EQ(m.pairs_shuffled, 6u);
  EXPECT_EQ(m.max_reducer_pairs, 2u);  // key 1 has two values
  EXPECT_EQ(m.max_round_pairs, 3u);
  EXPECT_GT(m.bytes_shuffled, 0u);
}

TEST(Engine, PerRoundLatencyAccrues) {
  Config cfg;
  cfg.per_round_latency_s = 0.25;
  Engine engine(cfg);
  std::vector<KV> input{{1, 1}};
  for (int i = 0; i < 4; ++i) {
    engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
        input, [](const std::uint32_t&, std::span<std::uint64_t>,
                  Emitter<std::uint32_t, std::uint64_t>&) {});
  }
  EXPECT_DOUBLE_EQ(engine.metrics().simulated_latency_s, 1.0);
}

TEST(Engine, LocalMemoryViolationRecorded) {
  Config cfg;
  cfg.local_memory_pairs = 3;
  Engine engine(cfg);
  std::vector<KV> input;
  for (std::uint64_t i = 0; i < 10; ++i) input.emplace_back(1, i);
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      std::move(input), [](const std::uint32_t&, std::span<std::uint64_t>,
                           Emitter<std::uint32_t, std::uint64_t>&) {});
  EXPECT_TRUE(engine.metrics().local_memory_exceeded);
}

TEST(Engine, GlobalMemoryViolationRecorded) {
  Config cfg;
  cfg.global_memory_pairs = 2;
  Engine engine(cfg);
  std::vector<KV> input{{1, 1}, {2, 2}, {3, 3}};
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      std::move(input), [](const std::uint32_t&, std::span<std::uint64_t>,
                           Emitter<std::uint32_t, std::uint64_t>&) {});
  EXPECT_TRUE(engine.metrics().global_memory_exceeded);
}

TEST(EngineDeathTest, StrictModeAbortsOnLocalMemory) {
  Config cfg;
  cfg.local_memory_pairs = 2;
  cfg.strict = true;
  Engine engine(cfg);
  std::vector<KV> input{{1, 1}, {1, 2}, {1, 3}};
  EXPECT_DEATH(
      (engine.round<std::uint32_t, std::uint64_t, std::uint32_t,
                    std::uint64_t>(
          std::move(input), [](const std::uint32_t&, std::span<std::uint64_t>,
                               Emitter<std::uint32_t, std::uint64_t>&) {})),
      "local memory");
}

TEST(Engine, ResetMetricsClearsCounters) {
  Engine engine;
  std::vector<KV> input{{1, 1}};
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      std::move(input), [](const std::uint32_t&, std::span<std::uint64_t>,
                           Emitter<std::uint32_t, std::uint64_t>&) {});
  engine.reset_metrics();
  EXPECT_EQ(engine.metrics().rounds, 0u);
  EXPECT_EQ(engine.metrics().pairs_shuffled, 0u);
}

TEST(Engine, EmptyInputStillCountsARound) {
  Engine engine;
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      {}, [](const std::uint32_t&, std::span<std::uint64_t>,
             Emitter<std::uint32_t, std::uint64_t>&) {});
  EXPECT_EQ(engine.metrics().rounds, 1u);
  EXPECT_EQ(engine.metrics().pairs_shuffled, 0u);
}

TEST(Engine, StringKeysSupported) {
  Engine engine;
  std::vector<std::pair<std::string, std::uint64_t>> input{
      {"b", 2}, {"a", 1}, {"b", 3}};
  std::map<std::string, std::uint64_t> sums;
  engine.round<std::string, std::uint64_t, std::string, std::uint64_t>(
      std::move(input),
      [&](const std::string& k, std::span<std::uint64_t> vs,
          Emitter<std::string, std::uint64_t>&) {
        sums[k] = std::accumulate(vs.begin(), vs.end(), std::uint64_t{0});
      });
  EXPECT_EQ(sums["a"], 1u);
  EXPECT_EQ(sums["b"], 5u);
}

}  // namespace
}  // namespace gclus::mr
