// Tests for the MR(M_G, M_L) engine: round semantics (grouping, value
// order, determinism), the out-of-core shuffle (spilled vs in-memory
// equality, budget compliance, combiners), metrics accounting, and
// memory-bound enforcement.
//
// Reducers for distinct keys may run concurrently (that is the engine's
// contract), so tests that collect into shared containers lock them.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <numeric>

#include "mapreduce/engine.hpp"

namespace gclus::mr {
namespace {

using KV = std::pair<std::uint32_t, std::uint64_t>;

/// A deterministic pseudo-random workload: `n` pairs over `keys` keys.
std::vector<KV> make_input(std::size_t n, std::uint64_t keys,
                           std::uint64_t salt = 0) {
  std::vector<KV> input;
  input.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    input.emplace_back(static_cast<std::uint32_t>(mix64(i ^ salt) % keys), i);
  }
  return input;
}

/// Sums values per key through one round — the workhorse reducer of the
/// determinism tests (output compared *unsorted*, so concatenation order
/// matters too).
std::vector<KV> sum_round(Engine& engine, std::vector<KV> input) {
  return engine.round<std::uint32_t, std::uint64_t, std::uint32_t,
                      std::uint64_t>(
      std::move(input),
      [](const std::uint32_t& k, std::span<std::uint64_t> vs,
         Emitter<std::uint32_t, std::uint64_t>& emit) {
        std::uint64_t sum = 0;
        for (const auto v : vs) sum += v;
        emit.emit(k, sum);
      });
}

TEST(Engine, GroupsValuesByKey) {
  Engine engine;
  std::vector<KV> input{{1, 10}, {2, 20}, {1, 11}, {3, 30}, {2, 21}};
  std::mutex mu;
  std::map<std::uint32_t, std::vector<std::uint64_t>> seen;
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      input, [&](const std::uint32_t& k, std::span<std::uint64_t> vs,
                 Emitter<std::uint32_t, std::uint64_t>&) {
        const std::lock_guard<std::mutex> lock(mu);
        seen[k].assign(vs.begin(), vs.end());
      });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[1], (std::vector<std::uint64_t>{10, 11}));
  EXPECT_EQ(seen[2], (std::vector<std::uint64_t>{20, 21}));
  EXPECT_EQ(seen[3], (std::vector<std::uint64_t>{30}));
}

TEST(Engine, ValuesArriveInInputOrder) {
  Engine engine;
  std::vector<KV> input;
  for (std::uint64_t i = 0; i < 500; ++i) input.emplace_back(7, i);
  std::vector<std::uint64_t> got;
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      std::move(input),
      [&](const std::uint32_t&, std::span<std::uint64_t> vs,
          Emitter<std::uint32_t, std::uint64_t>&) {
        got.assign(vs.begin(), vs.end());
      });
  ASSERT_EQ(got.size(), 500u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST(Engine, ValuesArriveInInputOrderAcrossSpilledRuns) {
  // Same single-key property, but with a budget that forces many runs:
  // the reduce-side merge must reassemble the exact position order.
  Config cfg;
  cfg.spill_memory_bytes = 1024;
  Engine engine(cfg);
  std::vector<KV> input;
  for (std::uint64_t i = 0; i < 5000; ++i) input.emplace_back(7, i);
  std::vector<std::uint64_t> got;
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      std::move(input),
      [&](const std::uint32_t&, std::span<std::uint64_t> vs,
          Emitter<std::uint32_t, std::uint64_t>&) {
        got.assign(vs.begin(), vs.end());
      });
  EXPECT_GT(engine.metrics().bytes_spilled, 0u);
  ASSERT_EQ(got.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST(Engine, EmittedPairsAreReturned) {
  Engine engine;
  std::vector<KV> input{{1, 1}, {2, 2}, {3, 3}};
  auto out =
      engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
          std::move(input),
          [](const std::uint32_t& k, std::span<std::uint64_t> vs,
             Emitter<std::uint32_t, std::uint64_t>& emit) {
            for (const auto v : vs) emit.emit(k * 10, v * 10);
          });
  ASSERT_EQ(out.size(), 3u);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out[0], (std::pair<std::uint32_t, std::uint64_t>{10, 10}));
  EXPECT_EQ(out[2], (std::pair<std::uint32_t, std::uint64_t>{30, 30}));
}

// --- Determinism: the concatenated output (NOT sorted) must be a pure
// function of the input — across worker counts and across spill budgets. ---

TEST(Engine, OutputIdenticalAcrossWorkerCounts) {
  auto run = [](std::size_t workers) {
    Config cfg;
    cfg.num_workers = workers;
    Engine engine(cfg);
    return sum_round(engine, make_input(20000, 97));
  };
  const auto reference = run(1);
  EXPECT_EQ(reference, run(2));
  EXPECT_EQ(reference, run(8));
}

TEST(Engine, OutputIdenticalSpilledVsInMemory) {
  auto run = [](std::uint64_t budget, std::size_t workers) {
    Config cfg;
    cfg.num_workers = workers;
    cfg.spill_memory_bytes = budget;
    Engine engine(cfg);
    auto out = sum_round(engine, make_input(20000, 97));
    return std::make_pair(std::move(out), engine.metrics().bytes_spilled);
  };
  // kSpillUnbounded (not 0) so the GCLUS_MR_SPILL_BYTES override of CI's
  // low-memory job cannot turn the in-memory reference run into a spilled
  // one.
  const auto [reference, in_memory_spilled] = run(kSpillUnbounded, 1);
  EXPECT_EQ(in_memory_spilled, 0u);
  // Budgets down to 1 KiB, each across worker counts: byte-identical.
  for (const std::uint64_t budget : {1u << 20, 1u << 14, 1u << 10}) {
    for (const std::size_t workers : {1u, 2u, 8u}) {
      const auto [out, spilled] = run(budget, workers);
      EXPECT_EQ(out, reference) << "budget=" << budget << " workers="
                                << workers;
      if (budget <= (1u << 14)) {
        EXPECT_GT(spilled, 0u) << "budget=" << budget;
      }
    }
  }
}

TEST(Engine, PartitionCountPinnedInConfigNotThreads) {
  // Partition count is a config knob (default 64): two engines with very
  // different worker counts but the same config produce identical
  // unsorted output, and an explicit partition count changes *layout*
  // only — the key->value mapping stays equal.
  Config a;
  a.num_workers = 1;
  Config b;
  b.num_workers = 8;
  EXPECT_EQ(a.num_partitions, 64u);
  Engine ea(a);
  Engine eb(b);
  const auto out_a = sum_round(ea, make_input(5000, 41));
  EXPECT_EQ(out_a, sum_round(eb, make_input(5000, 41)));

  Config c;
  c.num_partitions = 7;
  Engine ec(c);
  auto out_c = sum_round(ec, make_input(5000, 41));
  auto sorted_a = out_a;
  std::sort(sorted_a.begin(), sorted_a.end());
  std::sort(out_c.begin(), out_c.end());
  EXPECT_EQ(sorted_a, out_c);
}

// --- Combiners. ---

TEST(Engine, CombinerPreservesReducerOutputAndCutsVolume) {
  auto run = [](bool combiners, std::uint64_t budget) {
    Config cfg;
    cfg.enable_combiners = combiners;
    cfg.spill_memory_bytes = budget;
    Engine engine(cfg);
    auto out = engine.round_combine<std::uint32_t, std::uint64_t,
                                    std::uint32_t, std::uint64_t>(
        make_input(20000, 13),
        [](const std::uint32_t& k, std::span<std::uint64_t> vs,
           Emitter<std::uint32_t, std::uint64_t>& emit) {
          std::uint64_t m = vs.front();
          for (const auto v : vs) m = std::min(m, v);
          emit.emit(k, m);
        },
        [](const std::uint64_t& x, const std::uint64_t& y) {
          return std::min(x, y);
        });
    return std::make_pair(std::move(out), engine.metrics());
  };
  const auto [plain, plain_metrics] = run(false, 0);
  EXPECT_EQ(plain_metrics.combiner_pairs_in, 0u);
  for (const std::uint64_t budget : {std::uint64_t{0}, std::uint64_t{2048}}) {
    const auto [combined, metrics] = run(true, budget);
    EXPECT_EQ(combined, plain) << "budget=" << budget;
    EXPECT_GT(metrics.combiner_pairs_in, metrics.combiner_pairs_out);
    EXPECT_GT(metrics.combiner_reduction(), 1.5);
  }
}

TEST(Engine, CombinerShrinksSpilledBytes) {
  auto spilled_bytes = [](bool combiners) {
    Config cfg;
    cfg.enable_combiners = combiners;
    cfg.spill_memory_bytes = 4096;
    Engine engine(cfg);
    (void)engine.round_combine<std::uint32_t, std::uint64_t, std::uint32_t,
                               std::uint64_t>(
        make_input(20000, 13),
        [](const std::uint32_t& k, std::span<std::uint64_t> vs,
           Emitter<std::uint32_t, std::uint64_t>& emit) {
          emit.emit(k, vs.size());
        },
        [](const std::uint64_t& x, const std::uint64_t&) { return x; });
    return engine.metrics().bytes_spilled;
  };
  EXPECT_LT(spilled_bytes(true), spilled_bytes(false) / 2);
}

// --- Spill accounting. ---

TEST(Engine, SpillMetricsAccountRunsAndPeak) {
  Config cfg;
  cfg.num_workers = 2;
  cfg.spill_memory_bytes = 4096;
  cfg.spill_strict = true;  // abort if the budget is ever exceeded
  Engine engine(cfg);
  (void)sum_round(engine, make_input(30000, 211));
  const Metrics& m = engine.metrics();
  EXPECT_GT(m.bytes_spilled, 0u);
  EXPECT_GT(m.spill_runs, 0u);
  EXPECT_GE(m.runs_merged, m.spill_runs);
  EXPECT_GT(m.peak_shuffle_buffer_bytes, 0u);
  EXPECT_LE(m.peak_shuffle_buffer_bytes, cfg.spill_memory_bytes);
}

TEST(Engine, NoSpillBelowBudget) {
  Config cfg;
  cfg.spill_memory_bytes = 1u << 24;  // 16 MiB ≫ the workload
  Engine engine(cfg);
  (void)sum_round(engine, make_input(1000, 7));
  EXPECT_EQ(engine.metrics().bytes_spilled, 0u);
  EXPECT_EQ(engine.metrics().spill_runs, 0u);
}

TEST(Engine, UnwritableSpillDirDegradesToInMemory) {
  // With no fallback directory configured, a failed spill keeps the
  // shuffle in memory: same output as a healthy engine, degradation
  // recorded in the metrics instead of an abort.
  Config cfg;
  cfg.spill_memory_bytes = kSpillUnbounded;
  Engine reference(cfg);
  const auto expected = sum_round(reference, make_input(1000, 7));

  cfg.spill_memory_bytes = 64;  // force an immediate spill
  cfg.spill_dir = "/proc/definitely/not/writable";
  cfg.spill_fallback_dir = "/proc/also/not/writable";
  cfg.spill_strict = true;  // must not trip: degraded rounds are exempt
  Engine engine(cfg);
  EXPECT_EQ(sum_round(engine, make_input(1000, 7)), expected);
  EXPECT_EQ(engine.metrics().spill_degraded_rounds, 1u);
  EXPECT_EQ(engine.metrics().bytes_spilled, 0u);
}

// --- Pre-existing accounting semantics (unchanged by the rewrite). ---

TEST(Engine, MetricsCountRoundsAndVolume) {
  Engine engine;
  std::vector<KV> input{{1, 1}, {1, 2}, {2, 3}};
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      input, [](const std::uint32_t&, std::span<std::uint64_t>,
                Emitter<std::uint32_t, std::uint64_t>&) {});
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      input, [](const std::uint32_t&, std::span<std::uint64_t>,
                Emitter<std::uint32_t, std::uint64_t>&) {});
  const Metrics& m = engine.metrics();
  EXPECT_EQ(m.rounds, 2u);
  EXPECT_EQ(m.pairs_shuffled, 6u);
  EXPECT_EQ(m.max_reducer_pairs, 2u);  // key 1 has two values
  EXPECT_EQ(m.max_round_pairs, 3u);
  EXPECT_GT(m.bytes_shuffled, 0u);
}

TEST(Engine, PerRoundLatencyAccrues) {
  Config cfg;
  cfg.per_round_latency_s = 0.25;
  Engine engine(cfg);
  std::vector<KV> input{{1, 1}};
  for (int i = 0; i < 4; ++i) {
    engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
        input, [](const std::uint32_t&, std::span<std::uint64_t>,
                  Emitter<std::uint32_t, std::uint64_t>&) {});
  }
  EXPECT_DOUBLE_EQ(engine.metrics().simulated_latency_s, 1.0);
}

TEST(Engine, LocalMemoryViolationRecorded) {
  Config cfg;
  cfg.local_memory_pairs = 3;
  Engine engine(cfg);
  std::vector<KV> input;
  for (std::uint64_t i = 0; i < 10; ++i) input.emplace_back(1, i);
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      std::move(input), [](const std::uint32_t&, std::span<std::uint64_t>,
                           Emitter<std::uint32_t, std::uint64_t>&) {});
  EXPECT_TRUE(engine.metrics().local_memory_exceeded);
}

TEST(Engine, GlobalMemoryViolationRecorded) {
  Config cfg;
  cfg.global_memory_pairs = 2;
  Engine engine(cfg);
  std::vector<KV> input{{1, 1}, {2, 2}, {3, 3}};
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      std::move(input), [](const std::uint32_t&, std::span<std::uint64_t>,
                           Emitter<std::uint32_t, std::uint64_t>&) {});
  EXPECT_TRUE(engine.metrics().global_memory_exceeded);
}

TEST(EngineDeathTest, StrictModeAbortsOnLocalMemory) {
  Config cfg;
  cfg.local_memory_pairs = 2;
  cfg.strict = true;
  Engine engine(cfg);
  std::vector<KV> input{{1, 1}, {1, 2}, {1, 3}};
  EXPECT_DEATH(
      (engine.round<std::uint32_t, std::uint64_t, std::uint32_t,
                    std::uint64_t>(
          std::move(input), [](const std::uint32_t&, std::span<std::uint64_t>,
                               Emitter<std::uint32_t, std::uint64_t>&) {})),
      "local memory");
}

TEST(Engine, ResetMetricsClearsCounters) {
  Engine engine;
  std::vector<KV> input{{1, 1}};
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      std::move(input), [](const std::uint32_t&, std::span<std::uint64_t>,
                           Emitter<std::uint32_t, std::uint64_t>&) {});
  engine.reset_metrics();
  EXPECT_EQ(engine.metrics().rounds, 0u);
  EXPECT_EQ(engine.metrics().pairs_shuffled, 0u);
}

TEST(Engine, EmptyInputStillCountsARound) {
  Engine engine;
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      {}, [](const std::uint32_t&, std::span<std::uint64_t>,
             Emitter<std::uint32_t, std::uint64_t>&) {});
  EXPECT_EQ(engine.metrics().rounds, 1u);
  EXPECT_EQ(engine.metrics().pairs_shuffled, 0u);
}

TEST(Engine, StringKeysSupported) {
  // Non-trivially-copyable keys can't spill, but the multi-worker merge
  // path must still group them correctly.
  Engine engine;
  std::vector<std::pair<std::string, std::uint64_t>> input{
      {"b", 2}, {"a", 1}, {"b", 3}};
  std::mutex mu;
  std::map<std::string, std::uint64_t> sums;
  engine.round<std::string, std::uint64_t, std::string, std::uint64_t>(
      std::move(input),
      [&](const std::string& k, std::span<std::uint64_t> vs,
          Emitter<std::string, std::uint64_t>&) {
        const std::uint64_t sum =
            std::accumulate(vs.begin(), vs.end(), std::uint64_t{0});
        const std::lock_guard<std::mutex> lock(mu);
        sums[k] = sum;
      });
  EXPECT_EQ(sums["a"], 1u);
  EXPECT_EQ(sums["b"], 5u);
}

}  // namespace
}  // namespace gclus::mr
