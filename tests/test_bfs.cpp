// Tests for the BFS kernels: sequential reference behavior, the parallel
// level-synchronous variant (swept across worker counts and corpus
// graphs), and multi-source distances.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace gclus {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = gen::path(6);
  const auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
}

TEST(Bfs, DistancesFromMiddleOfPath) {
  const Graph g = gen::path(7);
  const auto d = bfs_distances(g, 3);
  const std::vector<Dist> expected{3, 2, 1, 0, 1, 2, 3};
  EXPECT_EQ(d, expected);
}

TEST(Bfs, UnreachableNodesAreInfinite) {
  const Graph g = gen::disjoint_union(gen::path(3), gen::path(3));
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[3], kInfDist);
  EXPECT_EQ(d[5], kInfDist);
}

TEST(Bfs, GridDistancesAreManhattan) {
  const Graph g = gen::grid(8, 9);
  const auto d = bfs_distances(g, 0);
  for (NodeId r = 0; r < 8; ++r) {
    for (NodeId c = 0; c < 9; ++c) {
      EXPECT_EQ(d[r * 9 + c], r + c);
    }
  }
}

TEST(MultiSourceBfs, NearestSourceWins) {
  const Graph g = gen::path(10);
  const auto d = multi_source_bfs(g, {0, 9});
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[9], 0u);
  EXPECT_EQ(d[4], 4u);
  EXPECT_EQ(d[5], 4u);
}

TEST(MultiSourceBfs, DuplicateSourcesTolerated) {
  const Graph g = gen::cycle(8);
  const auto d = multi_source_bfs(g, {2, 2, 2});
  EXPECT_EQ(d[2], 0u);
  EXPECT_EQ(d[6], 4u);
}

TEST(BfsExtremum, FindsFarthestNode) {
  const Graph g = gen::path(20);
  const auto e = bfs_extremum(g, 3);
  EXPECT_EQ(e.eccentricity, 16u);
  EXPECT_EQ(e.farthest_node, 19u);
  EXPECT_EQ(e.reached, 20u);
}

TEST(BfsExtremum, ExplicitPoolMatchesDefault) {
  const Graph g = gen::grid(15, 17);
  ThreadPool pool(3);
  const auto with_pool = bfs_extremum(g, 4, &pool);
  const auto with_global = bfs_extremum(g, 4);
  EXPECT_EQ(with_pool.eccentricity, with_global.eccentricity);
  EXPECT_EQ(with_pool.farthest_node, with_global.farthest_node);
  EXPECT_EQ(with_pool.reached, with_global.reached);
}

TEST(BfsExtremum, DisconnectedGraphCountsOnlyReachable) {
  const Graph g = gen::disjoint_union(gen::path(5), gen::cycle(6));
  const auto e = bfs_extremum(g, 0);
  EXPECT_EQ(e.reached, 5u);
  EXPECT_EQ(e.eccentricity, 4u);
}

// Direction-optimizing BFS: push-only, pull-only, and hybrid levels must
// all reproduce the sequential distances on every corpus graph.
TEST(ParallelBfs, TraversalModesMatchSequential) {
  const auto corpus = testutil::small_connected_corpus();
  for (const auto& [name, graph] : corpus) {
    const auto seq = bfs_distances(graph, 0);
    for (const TraversalMode mode :
         {TraversalMode::kPushOnly, TraversalMode::kPullOnly,
          TraversalMode::kAuto}) {
      for (const std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        GrowthOptions opts;
        opts.mode = mode;
        const auto par = parallel_bfs(pool, graph, 0, nullptr, opts);
        EXPECT_EQ(par, seq) << name << " mode=" << traversal_mode_name(mode)
                            << " threads=" << threads;
      }
    }
  }
}

TEST(BfsExtremum, SingletonGraph) {
  const Graph g = gen::path(1);
  const auto e = bfs_extremum(g, 0);
  EXPECT_EQ(e.eccentricity, 0u);
  EXPECT_EQ(e.farthest_node, 0u);
  EXPECT_EQ(e.reached, 1u);
}

struct ParallelBfsParam {
  std::size_t threads;
  std::size_t corpus_index;
};

class ParallelBfsTest : public ::testing::TestWithParam<ParallelBfsParam> {};

TEST_P(ParallelBfsTest, MatchesSequentialBfs) {
  const auto corpus = testutil::small_connected_corpus();
  const auto& [name, graph] = corpus.at(GetParam().corpus_index);
  ThreadPool pool(GetParam().threads);
  std::size_t levels = 0;
  const auto par = parallel_bfs(pool, graph, 0, &levels);
  const auto seq = bfs_distances(graph, 0);
  EXPECT_EQ(par, seq) << name;
  // Levels = eccentricity of the source + 1 trailing empty check.
  const Dist ecc = *std::max_element(seq.begin(), seq.end());
  EXPECT_GE(levels, ecc);
}

std::vector<ParallelBfsParam> parallel_bfs_params() {
  std::vector<ParallelBfsParam> params;
  const std::size_t corpus_size = testutil::small_connected_corpus().size();
  for (const std::size_t threads : {1u, 2u, 4u}) {
    for (std::size_t i = 0; i < corpus_size; ++i) {
      params.push_back({threads, i});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelBfsTest, ::testing::ValuesIn(parallel_bfs_params()),
    [](const ::testing::TestParamInfo<ParallelBfsParam>& info) {
      return "t" + std::to_string(info.param.threads) + "_g" +
             std::to_string(info.param.corpus_index);
    });

}  // namespace
}  // namespace gclus
