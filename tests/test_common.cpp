// Unit tests for src/common: mixing, RNG streams, keyed (counter-based)
// randomness, the check macros, and the validated integer parsing that
// every CLI flag and environment knob funnels through.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "common/parse.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/timer.hpp"

namespace gclus {
namespace {

TEST(Mix64, IsDeterministicAndNontrivial) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  EXPECT_NE(mix64(0), 0u);  // zero does not map to zero
}

TEST(Mix64, SpreadsConsecutiveInputs) {
  // Consecutive inputs should differ in roughly half their bits.
  int total_flips = 0;
  constexpr int kSamples = 256;
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    total_flips += std::popcount(mix64(i) ^ mix64(i + 1));
  }
  const double avg = static_cast<double>(total_flips) / kSamples;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(1, 2, 3), hash_combine(3, 2, 1));
}

TEST(Rng, ReproducibleStreams) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
  }
  // Different seeds diverge immediately with overwhelming probability.
  Rng a2(123);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(Rng, ExponentialHasExpectedMean) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kTrials = 20000;
  const double beta = 2.5;
  for (int i = 0; i < kTrials; ++i) sum += rng.next_exponential(beta);
  EXPECT_NEAR(sum / kTrials, 1.0 / beta, 0.02);
}

TEST(KeyedRandom, DeterministicAcrossCalls) {
  EXPECT_EQ(keyed_uniform(1, 2, 3), keyed_uniform(1, 2, 3));
  EXPECT_NE(keyed_uniform(1, 2, 3), keyed_uniform(1, 2, 4));
  EXPECT_NE(keyed_uniform(1, 2, 3), keyed_uniform(2, 2, 3));
  EXPECT_EQ(keyed_bernoulli(5, 6, 7, 0.5), keyed_bernoulli(5, 6, 7, 0.5));
}

TEST(KeyedRandom, UniformDistribution) {
  double sum = 0.0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) sum += keyed_uniform(99, i, 0);
  EXPECT_NEAR(sum / kTrials, 0.5, 0.02);
}

TEST(KeyedRandom, BernoulliRate) {
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    hits += keyed_bernoulli(3, i, 1, 0.1) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.1, 0.01);
}

TEST(KeyedRandom, ExponentialMean) {
  double sum = 0.0;
  constexpr int kTrials = 20000;
  const double beta = 0.7;
  for (int i = 0; i < kTrials; ++i) sum += keyed_exponential(7, i, beta);
  EXPECT_NEAR(sum / kTrials, 1.0 / beta, 0.05);
}

TEST(Check, PassingConditionIsSilent) {
  GCLUS_CHECK(1 + 1 == 2);
  GCLUS_CHECK(true, "message ignored when the condition holds");
  SUCCEED();
}

TEST(CheckDeathTest, FailingConditionAborts) {
  EXPECT_DEATH(GCLUS_CHECK(false, "tau=", 42), "tau=42");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  // Burn a tiny amount of CPU; the timer must be nonnegative and monotone.
  volatile std::uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  const double e1 = t.elapsed_s();
  const double e2 = t.elapsed_s();
  EXPECT_GE(e1, 0.0);
  EXPECT_GE(e2, e1);
  t.reset();
  EXPECT_LE(t.elapsed_s(), e2 + 1.0);
}

TEST(AccumTimer, AccumulatesIntervals) {
  AccumTimer at;
  EXPECT_EQ(at.total_s(), 0.0);
  at.start();
  at.stop();
  at.start();
  at.stop();
  EXPECT_GE(at.total_s(), 0.0);
}

TEST(ParseU64, AcceptsPlainDecimal) {
  EXPECT_EQ(parse_u64("0").value(), 0u);
  EXPECT_EQ(parse_u64("42").value(), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615").value(),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64, RejectsEverythingElse) {
  for (const char* bad :
       {"", " 42", "42 ", "+42", "-1", "0x10", "1e3", "4 2", "nine",
        "18446744073709551616" /* max + 1 */, "99999999999999999999"}) {
    SCOPED_TRACE(bad);
    const auto v = parse_u64(bad);
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(EnvU64, FallsBackAndEnforcesMinimum) {
  ::unsetenv("GCLUS_TEST_ENV_U64");
  EXPECT_EQ(env_u64("GCLUS_TEST_ENV_U64", 7), 7u);  // unset
  ::setenv("GCLUS_TEST_ENV_U64", "", 1);
  EXPECT_EQ(env_u64("GCLUS_TEST_ENV_U64", 7), 7u);  // empty
  ::setenv("GCLUS_TEST_ENV_U64", "12", 1);
  EXPECT_EQ(env_u64("GCLUS_TEST_ENV_U64", 7), 12u);  // set
  ::setenv("GCLUS_TEST_ENV_U64", "banana", 1);
  EXPECT_EQ(env_u64("GCLUS_TEST_ENV_U64", 7), 7u);  // malformed -> fallback
  ::setenv("GCLUS_TEST_ENV_U64", "3", 1);
  EXPECT_EQ(env_u64("GCLUS_TEST_ENV_U64", 7, 5), 7u);  // below minimum
  ::setenv("GCLUS_TEST_ENV_U64", "5", 1);
  EXPECT_EQ(env_u64("GCLUS_TEST_ENV_U64", 7, 5), 5u);  // at minimum
  ::unsetenv("GCLUS_TEST_ENV_U64");
}

}  // namespace
}  // namespace gclus
