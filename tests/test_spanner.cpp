// Tests for the Baswana–Sen spanner (§5 / Theorem 4 machinery): the
// stretch guarantee over sampled pairs, size reduction on dense inputs,
// subgraph-ness, connectivity preservation, and the Theorem-4 integration
// in the MR diameter pipeline.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/spanner.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/weighted.hpp"
#include "mr_algos/mr_cluster.hpp"
#include "test_util.hpp"

namespace gclus {
namespace {

struct SpannerParam {
  std::size_t corpus_index;
  unsigned k;
};

class SpannerStretchTest : public ::testing::TestWithParam<SpannerParam> {};

TEST_P(SpannerStretchTest, StretchWithinBoundOnSampledPairs) {
  const auto corpus = testutil::small_connected_corpus();
  const auto& [name, graph] = corpus.at(GetParam().corpus_index);
  const WeightedGraph wg = WeightedGraph::from_unit_weights(graph);
  SpannerOptions opts;
  opts.k = GetParam().k;
  opts.seed = 5;
  const SpannerResult sp = baswana_sen_spanner(wg, opts);
  EXPECT_EQ(sp.stretch, 2 * GetParam().k - 1);
  EXPECT_LE(sp.kept_edges, sp.input_edges) << name;

  Rng rng(17);
  for (int s = 0; s < 3; ++s) {
    const auto u = static_cast<NodeId>(rng.next_below(graph.num_nodes()));
    const auto exact = dijkstra(wg, u);
    const auto approx = dijkstra(sp.spanner, u);
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      ASSERT_NE(approx[v], kInfWeight)
          << name << ": spanner disconnected " << u << "-" << v;
      EXPECT_GE(approx[v], exact[v]) << name;  // subgraph: only longer
      EXPECT_LE(approx[v], static_cast<Weight>(sp.stretch) * exact[v])
          << name << " pair (" << u << "," << v << ")";
    }
  }
}

std::vector<SpannerParam> spanner_params() {
  std::vector<SpannerParam> params;
  const std::size_t corpus_size = testutil::small_connected_corpus().size();
  for (std::size_t g = 0; g < corpus_size; ++g) {
    params.push_back({g, 2});
  }
  params.push_back({10, 3});  // expander, 5-spanner
  params.push_back({7, 3});   // random tree, 5-spanner
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SpannerStretchTest, ::testing::ValuesIn(spanner_params()),
    [](const ::testing::TestParamInfo<SpannerParam>& info) {
      return "g" + std::to_string(info.param.corpus_index) + "_k" +
             std::to_string(info.param.k);
    });

TEST(Spanner, ShrinksDenseGraphs) {
  // K_n has n(n-1)/2 edges; a 3-spanner needs ~n^{3/2}.
  const WeightedGraph g =
      WeightedGraph::from_unit_weights(gen::complete(120));
  SpannerOptions opts;
  opts.k = 2;
  const SpannerResult sp = baswana_sen_spanner(g, opts);
  EXPECT_LT(sp.kept_edges, sp.input_edges / 2);
}

TEST(Spanner, KOneIsIdentity) {
  const WeightedGraph g =
      WeightedGraph::from_unit_weights(gen::grid(8, 8));
  SpannerOptions opts;
  opts.k = 1;
  const SpannerResult sp = baswana_sen_spanner(g, opts);
  EXPECT_EQ(sp.kept_edges, g.num_edges());
  EXPECT_EQ(sp.stretch, 1u);
}

TEST(Spanner, TreeIsPreservedEntirely) {
  // Removing any tree edge disconnects; a valid spanner must keep all.
  const WeightedGraph g =
      WeightedGraph::from_unit_weights(gen::random_tree(300, 3));
  SpannerOptions opts;
  opts.k = 2;
  const SpannerResult sp = baswana_sen_spanner(g, opts);
  EXPECT_EQ(sp.kept_edges, g.num_edges());
}

TEST(Spanner, RespectsWeightsInStretch) {
  // Weighted cycle: spanner distances within 3x of weighted truth.
  std::vector<std::tuple<NodeId, NodeId, Weight>> edges;
  for (NodeId i = 0; i < 60; ++i) {
    edges.emplace_back(i, (i + 1) % 60, 1 + (i % 7));
  }
  const WeightedGraph g = WeightedGraph::from_edges(60, std::move(edges));
  SpannerOptions opts;
  opts.k = 2;
  const SpannerResult sp = baswana_sen_spanner(g, opts);
  const auto exact = dijkstra(g, 0);
  const auto approx = dijkstra(sp.spanner, 0);
  for (NodeId v = 0; v < 60; ++v) {
    EXPECT_LE(approx[v], 3 * exact[v] + 1);
  }
}

TEST(Spanner, DeterministicForSeed) {
  const WeightedGraph g =
      WeightedGraph::from_unit_weights(gen::erdos_renyi(400, 3000, 9));
  SpannerOptions opts;
  opts.k = 2;
  opts.seed = 11;
  const SpannerResult a = baswana_sen_spanner(g, opts);
  const SpannerResult b = baswana_sen_spanner(g, opts);
  EXPECT_EQ(a.kept_edges, b.kept_edges);
}

TEST(SpannerDeathTest, RejectsKZero) {
  const WeightedGraph g = WeightedGraph::from_unit_weights(gen::path(4));
  SpannerOptions opts;
  opts.k = 0;
  EXPECT_DEATH((void)baswana_sen_spanner(g, opts), "k must be");
}

TEST(Theorem4Integration, SparsifiedPipelineStaysSound) {
  // Force sparsification with a tiny quotient-edge budget; the estimate
  // must remain an upper bound on the true diameter.
  const Graph g = gen::grid(40, 40);
  mr::Engine engine;
  mr_algos::MrClusterOptions opts;
  opts.seed = 3;
  opts.max_quotient_edges = 64;
  const auto sparse = mr_algos::mr_cluster_diameter(engine, g, 8, opts);
  EXPECT_TRUE(sparse.sparsified);
  EXPECT_LE(sparse.sparsified_edges, sparse.quotient_edges);
  EXPECT_GE(sparse.estimate, 78u);  // true diameter of the 40x40 grid

  // Against the unsparsified run: at most stretch-3 looser.
  mr::Engine engine2;
  mr_algos::MrClusterOptions dense_opts;
  dense_opts.seed = 3;
  const auto dense = mr_algos::mr_cluster_diameter(engine2, g, 8, dense_opts);
  EXPECT_FALSE(dense.sparsified);
  EXPECT_LE(sparse.estimate, 3 * dense.estimate);
}

}  // namespace
}  // namespace gclus
