// Tests for the k-center approximation (§3.1/§3.2): exact-k output, the
// merging path (more clusters than k), padding (fewer), optimality ratio
// against brute force on tiny graphs and against the Theorem-2 polylog
// bound via Gonzalez on the corpus, and disconnected-graph support.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "baselines/gonzalez.hpp"
#include "core/kcenter.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace gclus {
namespace {

struct KCenterParam {
  std::size_t corpus_index;
  NodeId k;
};

class KCenterPropertyTest : public ::testing::TestWithParam<KCenterParam> {};

TEST_P(KCenterPropertyTest, ValidCentersWithinPolylogOfGonzalez) {
  const auto corpus = testutil::small_connected_corpus();
  const auto& [name, graph] = corpus.at(GetParam().corpus_index);
  const NodeId k = std::min<NodeId>(GetParam().k, graph.num_nodes());
  KCenterOptions opts;
  opts.seed = 3;
  const KCenterResult r = kcenter_approx(graph, k, opts);

  EXPECT_EQ(r.centers.size(), k) << name;
  const std::set<NodeId> distinct(r.centers.begin(), r.centers.end());
  EXPECT_EQ(distinct.size(), k) << name << " centers must be distinct";

  // The evaluated radius matches an independent recomputation.
  const auto [radius, owner] = evaluate_centers(graph, r.centers);
  EXPECT_EQ(radius, r.radius) << name;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    ASSERT_LT(r.nearest_center[v], k);
  }

  // Gonzalez is a 2-approximation, so OPT >= gonzalez/2.  Theorem 2 says
  // our radius is within O(log³n) of OPT; assert with explicit slack.
  const auto gz = baselines::gonzalez_kcenter(graph, k);
  const double logn =
      std::max(2.0, std::log2(static_cast<double>(graph.num_nodes())));
  const double opt_lb = std::max(1.0, gz.radius / 2.0);
  EXPECT_LE(static_cast<double>(r.radius), 8.0 * opt_lb * logn * logn * logn)
      << name;
}

std::vector<KCenterParam> kcenter_params() {
  std::vector<KCenterParam> params;
  const std::size_t corpus_size = testutil::small_connected_corpus().size();
  for (std::size_t g = 0; g < corpus_size; ++g) {
    for (const NodeId k : {1u, 4u, 16u}) params.push_back({g, k});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KCenterPropertyTest, ::testing::ValuesIn(kcenter_params()),
    [](const ::testing::TestParamInfo<KCenterParam>& info) {
      return "g" + std::to_string(info.param.corpus_index) + "_k" +
             std::to_string(info.param.k);
    });

TEST(KCenter, NearOptimalOnTinyGraphsVsBruteForce) {
  // n <= 14, k = 2: exhaustive optimum is computable; Theorem 2's factor
  // at this size is tiny, so stay within 4x of optimal.
  const Graph graphs[] = {gen::path(12), gen::cycle(14), gen::grid(3, 4),
                          gen::binary_tree(13)};
  for (const Graph& g : graphs) {
    const Dist opt = testutil::brute_force_kcenter_radius(g, 2);
    KCenterOptions opts;
    opts.seed = 5;
    const KCenterResult r = kcenter_approx(g, 2, opts);
    EXPECT_LE(r.radius, std::max<Dist>(4 * opt, opt + 3));
  }
}

TEST(KCenter, MergingPathActivatesWhenClustersExceedK) {
  // Small k on a big graph: CLUSTER returns far more than k clusters and
  // the quotient-forest merge must bring it down to exactly k.
  const Graph g = gen::grid(40, 40);
  KCenterOptions opts;
  opts.seed = 7;
  const KCenterResult r = kcenter_approx(g, 3, opts);
  EXPECT_EQ(r.centers.size(), 3u);
  EXPECT_GT(r.raw_clusters, 3u);  // merge actually happened
  EXPECT_LE(r.radius, 78u);       // never exceeds the diameter
}

TEST(KCenter, PaddingPathActivatesWhenClustersBelowK) {
  // Huge k on a small graph: CLUSTER yields fewer clusters; the
  // farthest-first padding must fill up to k.
  const Graph g = gen::path(40);
  KCenterOptions opts;
  opts.seed = 9;
  const KCenterResult r = kcenter_approx(g, 20, opts);
  EXPECT_EQ(r.centers.size(), 20u);
  // 20 centers on a 40-path: radius must be tiny.
  EXPECT_LE(r.radius, 4u);
}

TEST(KCenter, RadiusDecreasesWithK) {
  const Graph g = gen::grid(30, 30);
  KCenterOptions opts;
  opts.seed = 11;
  const Dist r2 = kcenter_approx(g, 2, opts).radius;
  const Dist r20 = kcenter_approx(g, 20, opts).radius;
  EXPECT_LT(r20, r2);
}

TEST(KCenter, DisconnectedGraphNeedsKAtLeastComponents) {
  const Graph g = gen::disjoint_union(gen::grid(8, 8), gen::cycle(30));
  KCenterOptions opts;
  opts.seed = 13;
  const KCenterResult r = kcenter_approx(g, 5, opts);
  EXPECT_EQ(r.centers.size(), 5u);
  // Every node is covered at finite distance (checked inside evaluate).
  EXPECT_GT(r.radius, 0u);
}

TEST(KCenterDeathTest, RejectsKBelowComponentCount) {
  const Graph g = gen::disjoint_union(gen::path(5), gen::path(5));
  EXPECT_DEATH((void)kcenter_approx(g, 1, {}), "components");
}

TEST(KCenter, KEqualsNIsZeroRadius) {
  const Graph g = gen::cycle(12);
  const KCenterResult r = kcenter_approx(g, 12, {});
  EXPECT_EQ(r.radius, 0u);
}

TEST(EvaluateCenters, ManualSpotCheck) {
  const Graph g = gen::path(10);
  const auto [radius, owner] = evaluate_centers(g, {0, 9});
  EXPECT_EQ(radius, 4u);
  EXPECT_EQ(owner[0], 0u);
  EXPECT_EQ(owner[9], 1u);
  EXPECT_EQ(owner[2], 0u);
}

TEST(EvaluateCentersDeathTest, UndominatedComponentAborts) {
  const Graph g = gen::disjoint_union(gen::path(4), gen::path(4));
  EXPECT_DEATH((void)evaluate_centers(g, {0}), "dominate");
}

TEST(Gonzalez, TwoApproximationOnTinyGraphs) {
  for (const Graph& g : {gen::path(12), gen::cycle(14), gen::grid(3, 4)}) {
    const Dist opt = testutil::brute_force_kcenter_radius(g, 2);
    const auto r = baselines::gonzalez_kcenter(g, 2);
    EXPECT_LE(r.radius, 2 * opt);
    EXPECT_GE(r.radius, opt);
  }
}

TEST(Gonzalez, CoversDisconnectedComponentsFirst) {
  const Graph g = gen::disjoint_union(gen::path(10), gen::path(10));
  const auto r = baselines::gonzalez_kcenter(g, 2);
  EXPECT_EQ(r.centers.size(), 2u);
  // One center per component is forced; radius <= 9.
  EXPECT_LE(r.radius, 9u);
}

TEST(GonzalezDeathTest, InsufficientKOnDisconnectedInput) {
  const Graph g = gen::disjoint_union(gen::path(4), gen::path(4));
  EXPECT_DEATH((void)baselines::gonzalez_kcenter(g, 1), "components");
}

}  // namespace
}  // namespace gclus
