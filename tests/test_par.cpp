// Unit tests for src/par: the thread pool and the data-parallel loop and
// reduction primitives, swept across worker counts.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"

namespace gclus {
namespace {

class ParallelForTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(GetParam());
  constexpr std::size_t n = 10007;  // prime, not a multiple of the grain
  std::vector<std::atomic<int>> hits(n);
  parallel_for(pool, 0, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_P(ParallelForTest, EmptyAndSingletonRanges) {
  ThreadPool pool(GetParam());
  int count = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(pool, 5, 6, [&](std::size_t i) {
    EXPECT_EQ(i, 5u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST_P(ParallelForTest, ChunkVariantCoversRange) {
  ThreadPool pool(GetParam());
  constexpr std::size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunks(
      pool, 0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*grain=*/128);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST_P(ParallelForTest, ReduceMatchesSequentialSum) {
  ThreadPool pool(GetParam());
  constexpr std::size_t n = 12345;
  const auto sum = parallel_reduce<std::uint64_t>(
      pool, 0, n, 0, [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST_P(ParallelForTest, ReduceMax) {
  ThreadPool pool(GetParam());
  std::vector<int> values(4097);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int>((i * 7919) % 10007);
  }
  const int expected = *std::max_element(values.begin(), values.end());
  const int got = parallel_reduce<int>(
      pool, 0, values.size(), 0, [&](std::size_t i) { return values[i]; },
      [](int a, int b) { return a > b ? a : b; }, /*grain=*/64);
  EXPECT_EQ(got, expected);
}

TEST_P(ParallelForTest, SumHelper) {
  ThreadPool pool(GetParam());
  const auto s = parallel_sum<std::uint64_t>(
      pool, 1, 101, [](std::size_t i) { return static_cast<std::uint64_t>(i); });
  EXPECT_EQ(s, 5050u);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ParallelForTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ThreadPool, ReportsThreadCount) {
  ThreadPool p1(1), p4(4);
  EXPECT_EQ(p1.num_threads(), 1u);
  EXPECT_EQ(p4.num_threads(), 4u);
  ThreadPool p0(0);  // clamped to 1
  EXPECT_EQ(p0.num_threads(), 1u);
}

TEST(ThreadPool, RunOnWorkersGivesDistinctIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run_on_workers([&](std::size_t w) {
    ASSERT_LT(w, 4u);
    hits[w].fetch_add(1);
  });
  for (std::size_t w = 0; w < 4; ++w) EXPECT_EQ(hits[w].load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.run_on_workers([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

TEST(AtomicFetchMin, LowersMonotonically) {
  std::atomic<std::uint64_t> target{100};
  EXPECT_FALSE(atomic_fetch_min(target, std::uint64_t{200}));
  EXPECT_EQ(target.load(), 100u);
  EXPECT_TRUE(atomic_fetch_min(target, std::uint64_t{50}));
  EXPECT_EQ(target.load(), 50u);
  EXPECT_FALSE(atomic_fetch_min(target, std::uint64_t{50}));  // equal: no-op
}

TEST(AtomicFetchMin, ConcurrentMinIsGlobalMin) {
  std::atomic<std::uint64_t> target{~std::uint64_t{0}};
  ThreadPool pool(4);
  constexpr std::size_t n = 100000;
  parallel_for(pool, 0, n, [&](std::size_t i) {
    atomic_fetch_min(target, static_cast<std::uint64_t>((i * 2654435761u) %
                                                        999983));
  });
  // The minimum of (i * K) % p over i in [0, n) with n > p covers 0.
  std::uint64_t expected = ~std::uint64_t{0};
  for (std::size_t i = 0; i < n; ++i) {
    expected = std::min<std::uint64_t>(expected, (i * 2654435761u) % 999983);
  }
  EXPECT_EQ(target.load(), expected);
}

TEST(ExclusivePrefixSum, MatchesReference) {
  std::vector<std::uint64_t> v{3, 1, 4, 1, 5, 9, 2, 6};
  const auto total = exclusive_prefix_sum(v);
  EXPECT_EQ(total, 31u);
  const std::vector<std::uint64_t> expected{0, 3, 4, 8, 9, 14, 23, 25};
  EXPECT_EQ(v, expected);
}

TEST(ExclusivePrefixSum, EmptyVector) {
  std::vector<std::uint64_t> v;
  EXPECT_EQ(exclusive_prefix_sum(v), 0u);
}

}  // namespace
}  // namespace gclus
