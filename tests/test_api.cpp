// Tests for the unified API: the algorithm registry (schema validation,
// old-vs-new byte equivalence, corpus-wide validity and thread-count
// determinism for every registered algorithm), RunContext seed derivation
// and telemetry, and Workspace reuse (recycled scratch must be
// indistinguishable from fresh allocation — the use-after-reset hazard the
// sanitizer CI job watches).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/run_context.hpp"
#include "api/workspace.hpp"
#include "baselines/mpx.hpp"
#include "baselines/random_centers.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/cluster2.hpp"
#include "core/growth.hpp"
#include "core/weighted_cluster.hpp"
#include "graph/bfs.hpp"
#include "graph/weighted.hpp"
#include "par/thread_pool.hpp"
#include "test_util.hpp"

namespace gclus {
namespace {

/// Parameters that make every registered algorithm cheap and well-defined
/// on the small corpus (k small enough for every graph; τ small).  The
/// mr.* entries additionally run with a tiny spill budget, so the corpus
/// sweep exercises the out-of-core shuffle path end to end.
AlgoParams corpus_params(const std::string& algo) {
  AlgoParams p;
  if (algo == "mpx" || algo == "mr.mpx") {
    p.set("beta", 0.4);
  } else if (algo == "random_centers" || algo == "gonzalez" ||
             algo == "kcenter") {
    p.set("k", std::uint64_t{4});
  } else if (algo == "mr.bfs") {
    p.set("source", std::uint64_t{0});
  } else {
    p.set("tau", std::uint64_t{2});
  }
  if (algo.rfind("mr.", 0) == 0) {
    p.set("spill_bytes", std::uint64_t{4096});
  }
  return p;
}

TEST(Registry, ListsEveryBuiltinAlgorithm) {
  const std::vector<std::string> names = registry().names();
  for (const char* expected :
       {"cluster", "cluster2", "weighted_cluster", "mpx", "random_centers",
        "gonzalez", "kcenter", "mr.cluster", "mr.mpx", "mr.bfs"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_EQ(registry().find("no-such-algorithm"), nullptr);
}

TEST(Registry, DeclaredSchemasRenderableAndTyped) {
  for (const std::string& name : registry().names()) {
    const AlgoInfo* info = registry().find(name);
    ASSERT_NE(info, nullptr);
    EXPECT_FALSE(info->summary.empty()) << name;
    for (const ParamSpec& spec : info->params) {
      EXPECT_FALSE(spec.key.empty()) << name;
      EXPECT_FALSE(spec.default_value.empty()) << name << "." << spec.key;
      EXPECT_NE(param_type_name(spec.type), nullptr);
    }
  }
}

TEST(Registry, RejectsUnknownParameters) {
  const Graph g = gen::grid(6, 6);
  RunContext ctx;
  EXPECT_DEATH(registry().run("cluster", g, AlgoParams{{"tua", "4"}}, ctx),
               "has no parameter");
  EXPECT_DEATH(registry().run("nope", g, {}, ctx), "unknown algorithm");
  EXPECT_DEATH(registry().run("cluster", g, AlgoParams{{"tau", "abc"}}, ctx),
               "not an unsigned integer");
}

TEST(Registry, TryRunReportsUsageErrorsAsStatus) {
  const Graph g = gen::grid(6, 6);
  RunContext ctx;
  // The Status surface lets long-lived callers (REPLs, servers) reject a
  // bad request without dying; the abort behavior above is the wrapper.
  const auto unknown = registry().try_run("nope", g, {}, ctx);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.status().message().find("unknown algorithm"),
            std::string::npos);

  const auto bad_key =
      registry().try_run("cluster", g, AlgoParams{{"tua", "4"}}, ctx);
  ASSERT_FALSE(bad_key.ok());
  EXPECT_EQ(bad_key.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_key.status().message().find("has no parameter"),
            std::string::npos);

  const auto good =
      registry().try_run("cluster", g, AlgoParams{{"tau", "4"}}, ctx);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good.value().validate(g));
}

// --- The registry-driven property sweep: every registered algorithm, on
// every corpus graph, must produce a valid partition, and a fixed
// RunContext must give byte-identical results on 1, 2, and 8 threads. ---

class RegistryCorpusTest
    : public ::testing::TestWithParam<testutil::NamedGraph> {};

TEST_P(RegistryCorpusTest, AllAlgorithmsValidAndThreadCountInvariant) {
  const auto& [name, graph] = GetParam();
  for (const std::string& algo : registry().names()) {
    const AlgoParams params = corpus_params(algo);

    ThreadPool serial(1);
    RunContext ctx;
    ctx.seed = 7;
    ctx.pool = &serial;
    const Clustering reference = registry().run(algo, graph, params, ctx);
    EXPECT_TRUE(reference.validate(graph)) << algo << " on " << name;

    for (const std::size_t threads : {2u, 8u}) {
      ThreadPool pool(threads);
      RunContext tctx;
      tctx.seed = 7;
      tctx.pool = &pool;
      const Clustering c = registry().run(algo, graph, params, tctx);
      EXPECT_EQ(c.assignment, reference.assignment)
          << algo << " on " << name << " with " << threads << " threads";
      EXPECT_EQ(c.centers, reference.centers) << algo << " on " << name;
      EXPECT_EQ(c.dist_to_center, reference.dist_to_center)
          << algo << " on " << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RegistryCorpusTest,
    ::testing::ValuesIn(testutil::small_connected_corpus()),
    [](const ::testing::TestParamInfo<testutil::NamedGraph>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

// --- Old API vs new API: a registry run must be byte-identical to the
// corresponding direct call with the same seed. ---

TEST(RegistryEquivalence, ClusterMatchesDirectCall) {
  const Graph g = gen::ring_of_cliques(10, 9);
  ClusterOptions opts;
  opts.seed = 5;
  const Clustering direct = cluster(g, 3, opts);

  RunContext ctx;
  ctx.seed = 5;
  const Clustering via_registry = registry().run(
      "cluster", g, AlgoParams{}.set("tau", std::uint64_t{3}), ctx);
  EXPECT_EQ(via_registry.assignment, direct.assignment);
  EXPECT_EQ(via_registry.centers, direct.centers);
  EXPECT_EQ(via_registry.dist_to_center, direct.dist_to_center);
}

TEST(RegistryEquivalence, Cluster2MatchesDirectCall) {
  const Graph g = gen::grid(20, 21);
  ClusterOptions opts;
  opts.seed = 11;
  const Cluster2Result direct = cluster2(g, 2, opts);

  RunContext ctx;
  ctx.seed = 11;
  const Clustering via_registry = registry().run(
      "cluster2", g, AlgoParams{}.set("tau", std::uint64_t{2}), ctx);
  EXPECT_EQ(via_registry.assignment, direct.clustering.assignment);
  EXPECT_EQ(via_registry.centers, direct.clustering.centers);
}

TEST(RegistryEquivalence, MpxMatchesDirectCall) {
  const Graph g = gen::expander(400, 4, 3);
  baselines::MpxOptions opts;
  opts.seed = 13;
  const Clustering direct = baselines::mpx(g, 0.7, opts);

  RunContext ctx;
  ctx.seed = 13;
  const Clustering via_registry =
      registry().run("mpx", g, AlgoParams{}.set("beta", 0.7), ctx);
  EXPECT_EQ(via_registry.assignment, direct.assignment);
  EXPECT_EQ(via_registry.centers, direct.centers);
}

TEST(RegistryEquivalence, RandomCentersMatchesDirectCall) {
  const Graph g = gen::torus(15, 16);
  baselines::RandomCentersOptions opts;
  opts.seed = 17;
  const Clustering direct = baselines::random_centers_clustering(g, 10, opts);

  RunContext ctx;
  ctx.seed = 17;
  const Clustering via_registry = registry().run(
      "random_centers", g, AlgoParams{}.set("k", std::uint64_t{10}), ctx);
  EXPECT_EQ(via_registry.assignment, direct.assignment);
  EXPECT_EQ(via_registry.centers, direct.centers);
}

TEST(RegistryEquivalence, WeightedClusterMatchesDirectUnitLift) {
  const Graph g = gen::road_like(15, 15, 0.08, 0.02, 7);
  WeightedClusterOptions opts;
  opts.seed = 19;
  const WeightedClustering direct =
      weighted_cluster(WeightedGraph::from_unit_weights(g), 2, opts);

  RunContext ctx;
  ctx.seed = 19;
  const Clustering via_registry = registry().run(
      "weighted_cluster", g, AlgoParams{}.set("tau", std::uint64_t{2}), ctx);
  EXPECT_EQ(via_registry.assignment, direct.assignment);
  EXPECT_EQ(via_registry.centers, direct.centers);
  EXPECT_EQ(via_registry.dist_to_center, direct.hops_to_center);
}

// --- Seed derivation. ---

TEST(DeriveSeed, PreservesLegacyPhaseStreams) {
  // The cluster2 preliminary phase historically mixed with 0xC1; derive_seed
  // with the named tag must reproduce that stream exactly, or every
  // pre-refactor decomposition changes under the same seed.
  EXPECT_EQ(derive_seed(123, kSeedTagCluster2Prelim), hash_combine(123, 0xC1));
  EXPECT_EQ(derive_seed(9, kSeedTagMrSpanner), hash_combine(9, 0x5B));
  EXPECT_NE(derive_seed(123, kSeedTagCluster2Prelim),
            derive_seed(123, kSeedTagOracleBuild));
  RunContext ctx;
  ctx.seed = 123;
  EXPECT_EQ(ctx.derived_seed(kSeedTagOracleBuild),
            derive_seed(123, kSeedTagOracleBuild));
}

// --- Telemetry. ---

TEST(Telemetry, RecordsAlgorithmInternals) {
  const Graph g = gen::grid(18, 18);
  RecordingTelemetry telemetry;
  RunContext ctx;
  ctx.seed = 3;
  ctx.telemetry = &telemetry;
  (void)registry().run("cluster2", g,
                       AlgoParams{}.set("tau", std::uint64_t{2}), ctx);
  EXPECT_TRUE(telemetry.has("cluster2.r_alg"));
  EXPECT_TRUE(telemetry.has("cluster2.prelim_growth_steps"));
  EXPECT_GE(telemetry.value("cluster2.clusters"), 1.0);
  telemetry.clear();
  EXPECT_FALSE(telemetry.has("cluster2.r_alg"));
}

// --- Workspace reuse. ---

TEST(WorkspaceReuse, RecycledScratchMatchesFreshAllocation) {
  const Graph g = gen::expander(2000, 4, 5);
  RunContext fresh;
  fresh.seed = 21;
  const Clustering reference = registry().run(
      "cluster", g, AlgoParams{}.set("tau", std::uint64_t{2}), fresh);

  Workspace ws;
  RunContext warm;
  warm.seed = 21;
  warm.workspace = &ws;
  for (int run = 0; run < 3; ++run) {
    const Clustering c = registry().run(
        "cluster", g, AlgoParams{}.set("tau", std::uint64_t{2}), warm);
    EXPECT_EQ(c.assignment, reference.assignment) << "run " << run;
    EXPECT_EQ(c.dist_to_center, reference.dist_to_center) << "run " << run;
  }
  // CLUSTER acquires once per run (cluster2 would acquire twice).
  EXPECT_EQ(ws.growth_acquires(), 3u);
  EXPECT_GT(ws.bytes(), 0u);
}

TEST(WorkspaceReuse, SurvivesSerialReuseAcrossAllAlgorithms) {
  // The cross-algorithm recycling sweep: every algorithm runs on the same
  // scratch in sequence, twice, and the second pass must reproduce the
  // first.  This is the test the ASan+UBSan CI job exists for.
  const Graph g = gen::ring_of_cliques(8, 10);
  Workspace ws;
  std::vector<Clustering> first_pass;
  for (int pass = 0; pass < 2; ++pass) {
    std::size_t i = 0;
    for (const std::string& algo : registry().names()) {
      RunContext ctx;
      ctx.seed = 31;
      ctx.workspace = &ws;
      Clustering c = registry().run(algo, g, corpus_params(algo), ctx);
      EXPECT_TRUE(c.validate(g)) << algo;
      if (pass == 0) {
        first_pass.push_back(std::move(c));
      } else {
        EXPECT_EQ(c.assignment, first_pass[i].assignment) << algo;
      }
      ++i;
    }
  }
}

TEST(WorkspaceReuse, SmallerGraphAfterLargerReusesCapacity) {
  Workspace ws;
  RunContext ctx;
  ctx.seed = 9;
  ctx.workspace = &ws;
  const Graph big = gen::grid(40, 40);
  const Graph small = gen::cycle(64);
  (void)registry().run("cluster", big, corpus_params("cluster"), ctx);
  const std::size_t bytes_after_big = ws.bytes();
  const Clustering c =
      registry().run("cluster", small, corpus_params("cluster"), ctx);
  EXPECT_TRUE(c.validate(small));
  // Serving a smaller graph must not grow the footprint.
  EXPECT_LE(ws.bytes(), bytes_after_big);

  RunContext fresh;
  fresh.seed = 9;
  const Clustering reference =
      registry().run("cluster", small, corpus_params("cluster"), fresh);
  EXPECT_EQ(c.assignment, reference.assignment);
}

TEST(WorkspaceReuse, OverlappingGrowthAcquireAborts) {
  const Graph g = gen::grid(8, 8);
  ThreadPool pool(1);
  Workspace ws;
  GrowthState first(g, pool, default_growth_options(), &ws);
  EXPECT_DEATH(GrowthState(g, pool, default_growth_options(), &ws),
               "already lent");
}

TEST(WorkspaceReuse, ParallelBfsMatchesFreshRun) {
  const Graph g = gen::expander_with_path(1500, 120, 4, 3);
  ThreadPool pool(2);
  const auto reference = parallel_bfs(pool, g, 0);
  Workspace ws;
  for (int run = 0; run < 3; ++run) {
    const auto dist = parallel_bfs(pool, g, 0, nullptr,
                                   default_growth_options(), nullptr, &ws);
    EXPECT_EQ(dist, reference) << "run " << run;
  }
  EXPECT_EQ(ws.bfs_acquires(), 3u);
}

}  // namespace
}  // namespace gclus
