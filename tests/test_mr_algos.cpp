// Tests for the MR-backed algorithms: BFS distance equivalence, the
// CLUSTER shared-memory/MR *identical partition* equivalence, HADI sketch
// behavior and estimates, and the MR diameter pipeline's soundness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/cluster.hpp"
#include "core/diameter.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mr_algos/mr_bfs.hpp"
#include "mr_algos/mr_cluster.hpp"
#include "mr_algos/mr_hadi.hpp"
#include "test_util.hpp"

namespace gclus::mr_algos {
namespace {

class MrBfsCorpusTest
    : public ::testing::TestWithParam<testutil::NamedGraph> {};

TEST_P(MrBfsCorpusTest, DistancesMatchSequentialBfs) {
  const auto& [name, graph] = GetParam();
  mr::Engine engine;
  const MrBfsResult r = mr_bfs(engine, graph, 0);
  EXPECT_EQ(r.dist, bfs_distances(graph, 0)) << name;
  // Supersteps: ecc rounds of propagation + the final quiescence check.
  EXPECT_GE(r.supersteps, r.eccentricity) << name;
  EXPECT_LE(r.supersteps, r.eccentricity + 1u) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MrBfsCorpusTest,
    ::testing::ValuesIn(testutil::small_connected_corpus()),
    [](const ::testing::TestParamInfo<testutil::NamedGraph>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(MrBfs, RoundCountScalesWithDiameter) {
  mr::Engine engine;
  const Graph longpath = gen::path(200);
  (void)mr_bfs(engine, longpath, 0);
  const std::size_t rounds_long = engine.metrics().rounds;
  engine.reset_metrics();
  const Graph expander = gen::expander(256, 4, 3);
  (void)mr_bfs(engine, expander, 0);
  const std::size_t rounds_short = engine.metrics().rounds;
  EXPECT_GT(rounds_long, 10 * rounds_short);
}

TEST(MrBfs, DiameterEstimateIsTwoEcc) {
  mr::Engine engine;
  const Graph g = gen::path(100);
  const MrBfsDiameterResult r = mr_bfs_diameter(engine, g, 0);
  EXPECT_EQ(r.estimate, 198u);  // 2 * ecc(0) = 2 * 99
  const MrBfsDiameterResult mid = mr_bfs_diameter(engine, g, 50);
  EXPECT_EQ(mid.estimate, 100u);  // 2 * 50: tight from the middle
}

TEST(MrBfs, AggregateCommunicationLinearInEdges) {
  mr::Engine engine;
  const Graph g = gen::grid(30, 30);
  (void)mr_bfs(engine, g, 0);
  // Every node sends along each incident edge exactly once: the shuffled
  // pair count is bounded by the directed edge count (plus the seed).
  EXPECT_LE(engine.metrics().pairs_shuffled, g.num_half_edges() + 4);
  EXPECT_GE(engine.metrics().pairs_shuffled, g.num_half_edges() / 2);
}

struct MrClusterParam {
  std::size_t corpus_index;
  std::uint32_t tau;
  std::uint64_t seed;
};

class MrClusterEquivalenceTest
    : public ::testing::TestWithParam<MrClusterParam> {};

TEST_P(MrClusterEquivalenceTest, IdenticalPartitionToSharedMemory) {
  const auto corpus = testutil::small_connected_corpus();
  const auto& [name, graph] = corpus.at(GetParam().corpus_index);

  ClusterOptions shared_opts;
  shared_opts.seed = GetParam().seed;
  const Clustering shared = cluster(graph, GetParam().tau, shared_opts);

  mr::Engine engine;
  MrClusterOptions mr_opts;
  mr_opts.seed = GetParam().seed;
  const MrClusterResult dist = mr_cluster(engine, graph, GetParam().tau,
                                          mr_opts);

  EXPECT_EQ(dist.clustering.assignment, shared.assignment) << name;
  EXPECT_EQ(dist.clustering.dist_to_center, shared.dist_to_center) << name;
  EXPECT_EQ(dist.clustering.centers, shared.centers) << name;
  EXPECT_EQ(dist.clustering.radius, shared.radius) << name;
  EXPECT_EQ(dist.clustering.growth_steps, shared.growth_steps) << name;
  EXPECT_TRUE(dist.clustering.validate(graph)) << name;
}

std::vector<MrClusterParam> mr_cluster_params() {
  std::vector<MrClusterParam> params;
  const std::size_t corpus_size = testutil::small_connected_corpus().size();
  for (std::size_t g = 0; g < corpus_size; ++g) {
    params.push_back({g, 2, 1});
  }
  // Extra seeds/τ on a couple of interesting graphs.
  params.push_back({4, 8, 5});   // grid-30x30
  params.push_back({12, 4, 9});  // expander-path
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MrClusterEquivalenceTest,
    ::testing::ValuesIn(mr_cluster_params()),
    [](const ::testing::TestParamInfo<MrClusterParam>& info) {
      return "g" + std::to_string(info.param.corpus_index) + "_tau" +
             std::to_string(info.param.tau) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(MrCluster, GrowthRoundsTrackGrowthSteps) {
  const Graph g = gen::grid(25, 25);
  mr::Engine engine;
  const MrClusterResult r = mr_cluster(engine, g, 2, {});
  EXPECT_EQ(r.growth_rounds, r.clustering.growth_steps);
  EXPECT_GE(r.selection_rounds, 1u);
  EXPECT_GE(engine.metrics().rounds, r.growth_rounds + r.selection_rounds);
}

TEST(MrCluster, ChargesSortingRoundsUnderSmallLocalMemory) {
  const Graph g = gen::grid(25, 25);
  mr::Config small_ml;
  small_ml.local_memory_pairs = 64;
  mr::Engine engine_small(small_ml);
  (void)mr_cluster(engine_small, g, 2, {});
  mr::Engine engine_big;
  (void)mr_cluster(engine_big, g, 2, {});
  EXPECT_GT(engine_small.metrics().rounds, engine_big.metrics().rounds);
}

TEST(HadiSketch, InitializationIsGeometric) {
  // Across many nodes, register bit positions follow Geom(1/2): about half
  // the sketches set bit 0.
  int bit0 = 0;
  constexpr int kNodes = 4000;
  for (NodeId v = 0; v < kNodes; ++v) {
    const HadiSketch s = hadi_init_sketch(v, 1);
    for (std::size_t r = 0; r < kHadiRegisters; ++r) {
      if (s[r] & 1u) ++bit0;
    }
  }
  const double frac =
      static_cast<double>(bit0) / (kNodes * kHadiRegisters);
  EXPECT_NEAR(frac, 0.5, 0.03);
}

TEST(HadiEstimate, SingletonSketchEstimatesO1) {
  const HadiSketch s = hadi_init_sketch(7, 3);
  const double est = hadi_estimate(s);
  EXPECT_GT(est, 0.5);
  EXPECT_LT(est, 16.0);
}

TEST(MrHadi, RoundsTrackDiameterOnPath) {
  const Graph g = gen::path(60);
  mr::Engine engine;
  HadiOptions opts;
  opts.seed = 3;
  const HadiResult r = mr_hadi(engine, g, opts);
  // Sketch fixpoint on a path needs ~diameter rounds; the FM threshold may
  // stop a bit early.  Accept [Δ/2, Δ+2].
  EXPECT_GE(r.rounds, 30u);
  EXPECT_LE(r.rounds, 62u);
  EXPECT_GE(r.estimate, 25u);
  EXPECT_LE(r.estimate, 61u);
}

TEST(MrHadi, FewRoundsOnExpander) {
  const Graph g = gen::expander(512, 4, 7);
  mr::Engine engine;
  const HadiResult r = mr_hadi(engine, g, {});
  const Dist diam = exact_diameter(g).diameter;
  EXPECT_LE(r.rounds, static_cast<std::size_t>(diam) + 2);
  EXPECT_GE(r.estimate, 2u);
}

TEST(MrHadi, NeighborhoodFunctionIsMonotone) {
  const Graph g = gen::grid(12, 12);
  mr::Engine engine;
  const HadiResult r = mr_hadi(engine, g, {});
  for (std::size_t t = 1; t < r.neighborhood_function.size(); ++t) {
    EXPECT_GE(r.neighborhood_function[t], r.neighborhood_function[t - 1]);
  }
  // Final N ~ n² within FM error (generous band: factor 3).
  const double n = g.num_nodes();
  EXPECT_GT(r.neighborhood_function.back(), n * n / 3.0);
  EXPECT_LT(r.neighborhood_function.back(), n * n * 3.0);
}

TEST(MrHadi, PerRoundCommunicationLinearInEdges) {
  const Graph g = gen::grid(15, 15);
  mr::Engine engine;
  const HadiResult r = mr_hadi(engine, g, {});
  // Each round ships one sketch per directed edge.
  EXPECT_EQ(engine.metrics().pairs_shuffled,
            static_cast<std::uint64_t>(r.rounds) * g.num_half_edges());
}

TEST(MrClusterDiameter, SoundUpperBoundOnCorpusSubset) {
  const auto corpus = testutil::small_connected_corpus();
  for (const std::size_t idx : {0ul, 3ul, 4ul, 11ul}) {
    const auto& [name, graph] = corpus.at(idx);
    mr::Engine engine;
    const MrDiameterResult r = mr_cluster_diameter(engine, graph, 2, {});
    const Dist truth = testutil::brute_force_diameter(graph);
    EXPECT_GE(r.estimate, truth) << name;
    EXPECT_GT(r.quotient_nodes, 0u) << name;
    EXPECT_GT(r.total_rounds, 0u) << name;
  }
}

TEST(MrClusterDiameter, MatchesSharedMemoryPipelineEstimate) {
  const Graph g = gen::road_like(20, 20, 0.08, 0.02, 41);
  mr::Engine engine;
  MrClusterOptions mopts;
  mopts.seed = 43;
  const MrDiameterResult mr_result = mr_cluster_diameter(engine, g, 3, mopts);

  // The shared-memory pipeline over the same clustering must agree on the
  // Δ″ estimate (identical partition -> identical weighted quotient).
  ClusterOptions copts;
  copts.seed = 43;
  const Clustering c = cluster(g, 3, copts);
  const DiameterApprox shared = diameter_from_clustering(g, c);
  EXPECT_EQ(mr_result.estimate, shared.upper_bound);
  EXPECT_EQ(mr_result.quotient_nodes, shared.quotient_nodes);
  EXPECT_EQ(mr_result.quotient_edges, shared.quotient_edges);
  EXPECT_EQ(mr_result.max_radius, shared.max_radius);
}

}  // namespace
}  // namespace gclus::mr_algos
