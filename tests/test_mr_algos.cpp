// Tests for the MR-backed algorithms: BFS distance equivalence, the
// CLUSTER shared-memory/MR *identical partition* equivalence, HADI sketch
// behavior and estimates, and the MR diameter pipeline's soundness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/mpx.hpp"
#include "core/cluster.hpp"
#include "core/diameter.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mr_algos/mr_bfs.hpp"
#include "mr_algos/mr_cluster.hpp"
#include "mr_algos/mr_hadi.hpp"
#include "mr_algos/mr_mpx.hpp"
#include "test_util.hpp"

namespace gclus::mr_algos {
namespace {

class MrBfsCorpusTest
    : public ::testing::TestWithParam<testutil::NamedGraph> {};

TEST_P(MrBfsCorpusTest, DistancesMatchSequentialBfs) {
  const auto& [name, graph] = GetParam();
  mr::Engine engine;
  const MrBfsResult r = mr_bfs(engine, graph, 0);
  EXPECT_EQ(r.dist, bfs_distances(graph, 0)) << name;
  // Supersteps: ecc rounds of propagation + the final quiescence check.
  EXPECT_GE(r.supersteps, r.eccentricity) << name;
  EXPECT_LE(r.supersteps, r.eccentricity + 1u) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MrBfsCorpusTest,
    ::testing::ValuesIn(testutil::small_connected_corpus()),
    [](const ::testing::TestParamInfo<testutil::NamedGraph>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(MrBfs, RoundCountScalesWithDiameter) {
  mr::Engine engine;
  const Graph longpath = gen::path(200);
  (void)mr_bfs(engine, longpath, 0);
  const std::size_t rounds_long = engine.metrics().rounds;
  engine.reset_metrics();
  const Graph expander = gen::expander(256, 4, 3);
  (void)mr_bfs(engine, expander, 0);
  const std::size_t rounds_short = engine.metrics().rounds;
  EXPECT_GT(rounds_long, 10 * rounds_short);
}

TEST(MrBfs, DiameterEstimateIsTwoEcc) {
  mr::Engine engine;
  const Graph g = gen::path(100);
  const MrBfsDiameterResult r = mr_bfs_diameter(engine, g, 0);
  EXPECT_EQ(r.estimate, 198u);  // 2 * ecc(0) = 2 * 99
  const MrBfsDiameterResult mid = mr_bfs_diameter(engine, g, 50);
  EXPECT_EQ(mid.estimate, 100u);  // 2 * 50: tight from the middle
}

TEST(MrBfs, AggregateCommunicationLinearInEdges) {
  mr::Engine engine;
  const Graph g = gen::grid(30, 30);
  (void)mr_bfs(engine, g, 0);
  // Every node sends along each incident edge exactly once: the shuffled
  // pair count is bounded by the directed edge count (plus the seed).
  EXPECT_LE(engine.metrics().pairs_shuffled, g.num_half_edges() + 4);
  EXPECT_GE(engine.metrics().pairs_shuffled, g.num_half_edges() / 2);
}

struct MrClusterParam {
  std::size_t corpus_index;
  std::uint32_t tau;
  std::uint64_t seed;
};

class MrClusterEquivalenceTest
    : public ::testing::TestWithParam<MrClusterParam> {};

TEST_P(MrClusterEquivalenceTest, IdenticalPartitionToSharedMemory) {
  const auto corpus = testutil::small_connected_corpus();
  const auto& [name, graph] = corpus.at(GetParam().corpus_index);

  ClusterOptions shared_opts;
  shared_opts.seed = GetParam().seed;
  const Clustering shared = cluster(graph, GetParam().tau, shared_opts);

  mr::Engine engine;
  MrClusterOptions mr_opts;
  mr_opts.seed = GetParam().seed;
  const MrClusterResult dist = mr_cluster(engine, graph, GetParam().tau,
                                          mr_opts);

  EXPECT_EQ(dist.clustering.assignment, shared.assignment) << name;
  EXPECT_EQ(dist.clustering.dist_to_center, shared.dist_to_center) << name;
  EXPECT_EQ(dist.clustering.centers, shared.centers) << name;
  EXPECT_EQ(dist.clustering.radius, shared.radius) << name;
  EXPECT_EQ(dist.clustering.growth_steps, shared.growth_steps) << name;
  EXPECT_TRUE(dist.clustering.validate(graph)) << name;
}

std::vector<MrClusterParam> mr_cluster_params() {
  std::vector<MrClusterParam> params;
  const std::size_t corpus_size = testutil::small_connected_corpus().size();
  for (std::size_t g = 0; g < corpus_size; ++g) {
    params.push_back({g, 2, 1});
  }
  // Extra seeds/τ on a couple of interesting graphs.
  params.push_back({4, 8, 5});   // grid-30x30
  params.push_back({12, 4, 9});  // expander-path
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MrClusterEquivalenceTest,
    ::testing::ValuesIn(mr_cluster_params()),
    [](const ::testing::TestParamInfo<MrClusterParam>& info) {
      return "g" + std::to_string(info.param.corpus_index) + "_tau" +
             std::to_string(info.param.tau) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(MrCluster, GrowthRoundsTrackGrowthSteps) {
  const Graph g = gen::grid(25, 25);
  mr::Engine engine;
  const MrClusterResult r = mr_cluster(engine, g, 2, {});
  EXPECT_EQ(r.growth_rounds, r.clustering.growth_steps);
  EXPECT_GE(r.selection_rounds, 1u);
  EXPECT_GE(engine.metrics().rounds, r.growth_rounds + r.selection_rounds);
}

TEST(MrCluster, ChargesSortingRoundsUnderSmallLocalMemory) {
  const Graph g = gen::grid(25, 25);
  mr::Config small_ml;
  small_ml.local_memory_pairs = 64;
  mr::Engine engine_small(small_ml);
  (void)mr_cluster(engine_small, g, 2, {});
  mr::Engine engine_big;
  (void)mr_cluster(engine_big, g, 2, {});
  EXPECT_GT(engine_small.metrics().rounds, engine_big.metrics().rounds);
}

TEST(HadiSketch, InitializationIsGeometric) {
  // Across many nodes, register bit positions follow Geom(1/2): about half
  // the sketches set bit 0.
  int bit0 = 0;
  constexpr int kNodes = 4000;
  for (NodeId v = 0; v < kNodes; ++v) {
    const HadiSketch s = hadi_init_sketch(v, 1);
    for (std::size_t r = 0; r < kHadiRegisters; ++r) {
      if (s[r] & 1u) ++bit0;
    }
  }
  const double frac =
      static_cast<double>(bit0) / (kNodes * kHadiRegisters);
  EXPECT_NEAR(frac, 0.5, 0.03);
}

TEST(HadiEstimate, SingletonSketchEstimatesO1) {
  const HadiSketch s = hadi_init_sketch(7, 3);
  const double est = hadi_estimate(s);
  EXPECT_GT(est, 0.5);
  EXPECT_LT(est, 16.0);
}

TEST(MrHadi, RoundsTrackDiameterOnPath) {
  const Graph g = gen::path(60);
  mr::Engine engine;
  HadiOptions opts;
  opts.seed = 3;
  const HadiResult r = mr_hadi(engine, g, opts);
  // Sketch fixpoint on a path needs ~diameter rounds; the FM threshold may
  // stop a bit early.  Accept [Δ/2, Δ+2].
  EXPECT_GE(r.rounds, 30u);
  EXPECT_LE(r.rounds, 62u);
  EXPECT_GE(r.estimate, 25u);
  EXPECT_LE(r.estimate, 61u);
}

TEST(MrHadi, FewRoundsOnExpander) {
  const Graph g = gen::expander(512, 4, 7);
  mr::Engine engine;
  const HadiResult r = mr_hadi(engine, g, {});
  const Dist diam = exact_diameter(g).diameter;
  EXPECT_LE(r.rounds, static_cast<std::size_t>(diam) + 2);
  EXPECT_GE(r.estimate, 2u);
}

TEST(MrHadi, NeighborhoodFunctionIsMonotone) {
  const Graph g = gen::grid(12, 12);
  mr::Engine engine;
  const HadiResult r = mr_hadi(engine, g, {});
  for (std::size_t t = 1; t < r.neighborhood_function.size(); ++t) {
    EXPECT_GE(r.neighborhood_function[t], r.neighborhood_function[t - 1]);
  }
  // Final N ~ n² within FM error (generous band: factor 3).
  const double n = g.num_nodes();
  EXPECT_GT(r.neighborhood_function.back(), n * n / 3.0);
  EXPECT_LT(r.neighborhood_function.back(), n * n * 3.0);
}

TEST(MrHadi, PerRoundCommunicationLinearInEdges) {
  const Graph g = gen::grid(15, 15);
  mr::Engine engine;
  const HadiResult r = mr_hadi(engine, g, {});
  // Each round ships one sketch per directed edge.
  EXPECT_EQ(engine.metrics().pairs_shuffled,
            static_cast<std::uint64_t>(r.rounds) * g.num_half_edges());
}

// --- The differential engine-mode corpus: every MR algorithm, on every
// corpus graph, must produce byte-identical results no matter how the
// engine executes the shuffle — fully in memory, spilled under budgets
// down to 1 KiB, across worker counts, with combiners on or off.  The
// shared-memory implementation is the common reference, so this is
// simultaneously the MR-vs-shared-memory differential test and the
// out-of-core/in-memory equivalence test. ---

struct EngineMode {
  const char* name;
  std::uint64_t spill_bytes;
  std::size_t workers;
  bool combiners;
};

constexpr EngineMode kEngineModes[] = {
    {"inmemory", mr::kSpillUnbounded, 0, true},
    {"inmemory_nocombine", mr::kSpillUnbounded, 0, false},
    {"spill4k", 4096, 0, true},
    {"spill4k_nocombine", 4096, 0, false},
    {"spill1k", 1024, 2, true},
    {"spill1k_8workers", 1024, 8, true},
};

mr::Engine make_mode_engine(const EngineMode& mode) {
  mr::Config cfg;
  cfg.spill_memory_bytes = mode.spill_bytes;
  cfg.num_workers = mode.workers;
  cfg.enable_combiners = mode.combiners;
  cfg.spill_strict = true;
  return mr::Engine(cfg);
}

void expect_same_clustering(const Clustering& got, const Clustering& want,
                            const std::string& label) {
  EXPECT_EQ(got.assignment, want.assignment) << label;
  EXPECT_EQ(got.dist_to_center, want.dist_to_center) << label;
  EXPECT_EQ(got.centers, want.centers) << label;
  EXPECT_EQ(got.radius, want.radius) << label;
  EXPECT_EQ(got.sizes, want.sizes) << label;
}

class MrDifferentialCorpusTest
    : public ::testing::TestWithParam<testutil::NamedGraph> {};

TEST_P(MrDifferentialCorpusTest, AllEngineModesMatchSharedMemory) {
  const auto& [name, graph] = GetParam();
  const std::uint64_t seed = 13;

  ClusterOptions copts;
  copts.seed = seed;
  const Clustering shared_cluster = cluster(graph, 2, copts);
  baselines::MpxOptions mopts;
  mopts.seed = seed;
  const Clustering shared_mpx = baselines::mpx(graph, 0.4, mopts);
  const std::vector<Dist> shared_bfs = bfs_distances(graph, 0);

  for (const EngineMode& mode : kEngineModes) {
    const std::string label = name + " [" + mode.name + "]";
    {
      mr::Engine engine = make_mode_engine(mode);
      MrClusterOptions o;
      o.seed = seed;
      const MrClusterResult r = mr_cluster(engine, graph, 2, o);
      expect_same_clustering(r.clustering, shared_cluster,
                             label + " mr_cluster");
      // Small-frontier graphs (long paths) legitimately stay under even
      // a 1 KiB budget; assert actual spilling where volume guarantees
      // it: a dense-frontier graph under a small budget.
      if (mode.spill_bytes <= 4096 && name == "expander-512") {
        EXPECT_GT(engine.metrics().bytes_spilled, 0u) << label;
      }
    }
    {
      mr::Engine engine = make_mode_engine(mode);
      const MrMpxResult r = mr_mpx(engine, graph, 0.4, seed);
      expect_same_clustering(r.clustering, shared_mpx, label + " mr_mpx");
    }
    {
      mr::Engine engine = make_mode_engine(mode);
      const MrBfsResult r = mr_bfs(engine, graph, 0);
      EXPECT_EQ(r.dist, shared_bfs) << label << " mr_bfs";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MrDifferentialCorpusTest,
    ::testing::ValuesIn(testutil::small_connected_corpus()),
    [](const ::testing::TestParamInfo<testutil::NamedGraph>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(MrHadi, SpilledExecutionMatchesInMemory) {
  // HADI's estimate depends only on the sketches, which depend only on
  // the (deterministic) round outputs — spilling must not perturb them.
  const Graph g = gen::grid(15, 15);
  HadiOptions opts;
  opts.seed = 11;
  mr::Engine big = make_mode_engine(kEngineModes[0]);
  const HadiResult in_memory = mr_hadi(big, g, opts);
  for (const EngineMode& mode : {kEngineModes[2], kEngineModes[3],
                                 kEngineModes[4]}) {
    mr::Engine engine = make_mode_engine(mode);
    const HadiResult spilled = mr_hadi(engine, g, opts);
    EXPECT_EQ(spilled.estimate, in_memory.estimate) << mode.name;
    EXPECT_EQ(spilled.rounds, in_memory.rounds) << mode.name;
    EXPECT_EQ(spilled.neighborhood_function,
              in_memory.neighborhood_function) << mode.name;
  }
}

TEST(MrCluster, CombinerCutsShuffledSpillVolume) {
  // Same decomposition, strictly less spilled data with combiners on.
  const Graph g = gen::expander(2048, 8, 3);
  auto run = [&](bool combiners) {
    mr::Config cfg;
    cfg.spill_memory_bytes = 8192;
    cfg.enable_combiners = combiners;
    mr::Engine engine(cfg);
    MrClusterOptions o;
    o.seed = 5;
    const MrClusterResult r = mr_cluster(engine, g, 4, o);
    return std::make_pair(r.clustering.assignment,
                          engine.metrics().bytes_spilled);
  };
  const auto [with, with_bytes] = run(true);
  const auto [without, without_bytes] = run(false);
  EXPECT_EQ(with, without);
  EXPECT_GT(without_bytes, 0u);
  EXPECT_LT(with_bytes, without_bytes);
}

TEST(MrClusterDiameter, SoundUpperBoundOnCorpusSubset) {
  const auto corpus = testutil::small_connected_corpus();
  for (const std::size_t idx : {0ul, 3ul, 4ul, 11ul}) {
    const auto& [name, graph] = corpus.at(idx);
    mr::Engine engine;
    const MrDiameterResult r = mr_cluster_diameter(engine, graph, 2, {});
    const Dist truth = testutil::brute_force_diameter(graph);
    EXPECT_GE(r.estimate, truth) << name;
    EXPECT_GT(r.quotient_nodes, 0u) << name;
    EXPECT_GT(r.total_rounds, 0u) << name;
  }
}

TEST(MrClusterDiameter, MatchesSharedMemoryPipelineEstimate) {
  const Graph g = gen::road_like(20, 20, 0.08, 0.02, 41);
  mr::Engine engine;
  MrClusterOptions mopts;
  mopts.seed = 43;
  const MrDiameterResult mr_result = mr_cluster_diameter(engine, g, 3, mopts);

  // The shared-memory pipeline over the same clustering must agree on the
  // Δ″ estimate (identical partition -> identical weighted quotient).
  ClusterOptions copts;
  copts.seed = 43;
  const Clustering c = cluster(g, 3, copts);
  const DiameterApprox shared = diameter_from_clustering(g, c);
  EXPECT_EQ(mr_result.estimate, shared.upper_bound);
  EXPECT_EQ(mr_result.quotient_nodes, shared.quotient_nodes);
  EXPECT_EQ(mr_result.quotient_edges, shared.quotient_edges);
  EXPECT_EQ(mr_result.max_radius, shared.max_radius);
}

}  // namespace
}  // namespace gclus::mr_algos
