// Tests for the query-service network front end (src/net/): protocol
// encode/decode round trips, strict rejection of malformed frames
// (hostile length prefixes, bad magic/version, mid-frame disconnects —
// each poisons one connection, never the process), end-to-end loopback
// byte-identity against serial in-process execution, concurrent clients,
// graceful drain, and artifact hot-reload under live traffic.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "core/distance_oracle.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "server/engine.hpp"
#include "server/server.hpp"

namespace gclus::net {
namespace {

using server::Query;
using server::QueryEngine;
using server::QueryKind;
using server::QueryResult;
using server::QueryScratch;
using server::QueryServer;

// The drain/refusal tests exhaust the client's retry loop; don't sleep
// through the backoffs.
const bool kFastRetries = [] {
  ::setenv("GCLUS_IO_BACKOFF_US", "0", 1);
  return true;
}();

QueryEngine make_engine(const Graph& g, std::uint64_t seed = 11,
                        std::uint32_t tau = 4) {
  DistanceOracleOptions opts;
  opts.seed = seed;
  opts.tau = tau;
  auto engine = QueryEngine::build(Graph(g), opts);
  GCLUS_CHECK(engine.ok(), "test graph must build");
  return std::move(engine).value();
}

std::vector<Query> make_workload(NodeId n, std::size_t count,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> qs;
  qs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Query q;
    const std::uint64_t roll = rng.next_below(100);
    q.u = static_cast<NodeId>(rng.next_below(n));
    if (roll < 80) {
      q.kind = QueryKind::kApproxDistance;
      q.arg = static_cast<NodeId>(rng.next_below(n));
    } else if (roll < 90) {
      q.kind = QueryKind::kSameCluster;
      q.arg = static_cast<NodeId>(rng.next_below(n));
    } else {
      q.kind = QueryKind::kClusterNeighborhood;
      q.arg = static_cast<std::uint32_t>(rng.next_below(4));
    }
    if (roll >= 97) q.u = n + static_cast<NodeId>(roll);  // invalid id
    qs.push_back(q);
  }
  return qs;
}

std::vector<QueryResult> run_serial(const QueryEngine& engine,
                                    const std::vector<Query>& qs) {
  QueryScratch scratch;
  std::vector<ClusterId> buf;
  std::vector<QueryResult> out;
  out.reserve(qs.size());
  for (const Query& q : qs) {
    out.push_back(execute_query(engine, q, scratch, buf));
  }
  return out;
}

/// Everything a NetServer test needs, wired up on an ephemeral port.
struct Harness {
  Graph g;
  std::shared_ptr<const QueryEngine> engine;
  QueryServer qserver;
  std::unique_ptr<NetServer> nserver;

  explicit Harness(NetServerOptions opts = {})
      : g(gen::ring_of_cliques(6, 5)),
        engine(std::make_shared<const QueryEngine>(make_engine(g))),
        qserver(engine) {
    auto started = NetServer::start(qserver, std::move(opts));
    GCLUS_CHECK(started.ok(), "harness NetServer must start");
    nserver = std::move(started).value();
  }
};

/// The payload (after the length prefix) of an encoded frame.
std::vector<std::uint8_t> payload_of(std::vector<std::uint8_t> wire) {
  wire.erase(wire.begin(), wire.begin() + kLenPrefixSize);
  return wire;
}

// ---- protocol round trips ---------------------------------------------------

TEST(Protocol, QueryBatchRoundTrips) {
  const std::vector<Query> qs = make_workload(30, 257, 42);
  const auto payload = payload_of(encode_query_batch(qs));
  const auto frame = decode_frame(payload.data(), payload.size());
  ASSERT_TRUE(frame.ok()) << frame.status().to_string();
  EXPECT_EQ(frame->type, FrameType::kQueryBatch);
  ASSERT_EQ(frame->queries.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(frame->queries[i].kind, qs[i].kind);
    EXPECT_EQ(frame->queries[i].u, qs[i].u);
    EXPECT_EQ(frame->queries[i].arg, qs[i].arg);
  }
}

TEST(Protocol, EmptyQueryBatchRoundTrips) {
  const auto payload = payload_of(encode_query_batch({}));
  const auto frame = decode_frame(payload.data(), payload.size());
  ASSERT_TRUE(frame.ok()) << frame.status().to_string();
  EXPECT_EQ(frame->type, FrameType::kQueryBatch);
  EXPECT_TRUE(frame->queries.empty());
}

TEST(Protocol, ResultBatchRoundTrips) {
  std::vector<QueryResult> rs;
  for (std::uint64_t i = 0; i < 100; ++i) {
    rs.push_back({i % 9 == 0 ? StatusCode::kInvalidArgument : StatusCode::kOk,
                  ~std::uint64_t{0} - i * 0x0101010101010101ull});
  }
  const auto payload = payload_of(encode_result_batch(rs));
  const auto frame = decode_frame(payload.data(), payload.size());
  ASSERT_TRUE(frame.ok()) << frame.status().to_string();
  EXPECT_EQ(frame->type, FrameType::kResultBatch);
  EXPECT_EQ(frame->results, rs);
}

TEST(Protocol, ErrorFrameRoundTrips) {
  const Status err = UnavailableError("server draining");
  const auto payload = payload_of(encode_error(err));
  const auto frame = decode_frame(payload.data(), payload.size());
  ASSERT_TRUE(frame.ok()) << frame.status().to_string();
  EXPECT_EQ(frame->type, FrameType::kError);
  EXPECT_EQ(frame->error.code(), StatusCode::kUnavailable);
  EXPECT_EQ(frame->error.message(), "server draining");
}

// ---- decode hardening -------------------------------------------------------
// Every malformation is kInvalidArgument: the peer spoke a different
// protocol, and guessing would corrupt answers silently.

void expect_invalid(const std::vector<std::uint8_t>& payload,
                    const char* what) {
  SCOPED_TRACE(what);
  const auto frame = decode_frame(payload.data(), payload.size());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(frame.status().message().empty());
}

TEST(Protocol, RejectsEveryHeaderMalformation) {
  const std::vector<Query> qs = make_workload(30, 5, 7);
  const auto good = payload_of(encode_query_batch(qs));
  ASSERT_TRUE(decode_frame(good.data(), good.size()).ok());

  for (std::size_t len = 0; len < kHeaderSize; ++len) {
    auto p = good;
    p.resize(len);
    expect_invalid(p, "header truncated");
  }
  {
    auto p = good;
    p[0] ^= 0xFF;  // magic
    expect_invalid(p, "bad magic");
  }
  {
    auto p = good;
    p[4] = kVersion + 1;
    expect_invalid(p, "unknown version");
  }
  {
    auto p = good;
    p[5] = 7;  // frame type
    expect_invalid(p, "unknown frame type");
  }
  {
    auto p = good;
    p[6] = 1;  // reserved
    expect_invalid(p, "nonzero reserved");
  }
  {
    auto p = good;
    p[8] ^= 0x01;  // count no longer matches the body size
    expect_invalid(p, "count/body mismatch");
  }
  {
    auto p = good;
    p.pop_back();  // body one byte short of count * record size
    expect_invalid(p, "truncated body");
  }
}

TEST(Protocol, RejectsEveryRecordMalformation) {
  const std::vector<Query> qs = make_workload(30, 3, 9);
  const auto good = payload_of(encode_query_batch(qs));
  {
    auto p = good;
    p[kHeaderSize] = 99;  // query kind byte
    expect_invalid(p, "unknown query kind");
  }
  {
    auto p = good;
    p[kHeaderSize + 2] = 0xAA;  // query padding
    expect_invalid(p, "nonzero query padding");
  }
  const auto results =
      payload_of(encode_result_batch({{StatusCode::kOk, 17}}));
  {
    auto p = results;
    p[kHeaderSize] = 99;  // result code byte
    expect_invalid(p, "unknown result code");
  }
  {
    auto p = results;
    p[kHeaderSize + 1] = 1;  // result padding
    expect_invalid(p, "nonzero result padding");
  }
  const auto error = payload_of(encode_error(DataLossError("boom")));
  {
    auto p = error;
    p[kHeaderSize] = 0;  // an error frame carrying kOk is a contradiction
    expect_invalid(p, "ok error code");
  }
  {
    auto p = error;
    p.push_back('!');  // body longer than 4 + count
    expect_invalid(p, "error body size mismatch");
  }
}

// ---- socket framing ---------------------------------------------------------

Socket accept_one(const Listener& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  GCLUS_CHECK(fd >= 0, "accept must succeed in framing tests");
  return Socket(fd);
}

std::vector<std::uint8_t> raw_prefix(std::uint32_t declared) {
  return {static_cast<std::uint8_t>(declared),
          static_cast<std::uint8_t>(declared >> 8),
          static_cast<std::uint8_t>(declared >> 16),
          static_cast<std::uint8_t>(declared >> 24)};
}

TEST(Framing, CleanCloseBetweenFramesIsNotAnError) {
  auto listener = Listener::bind_loopback(0);
  ASSERT_TRUE(listener.ok());
  auto client = connect_loopback(listener->port());
  ASSERT_TRUE(client.ok());
  Socket conn = accept_one(*listener);
  client->close();
  std::vector<std::uint8_t> payload;
  const auto got = read_frame(conn, payload);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  EXPECT_FALSE(*got);
}

TEST(Framing, MidFrameDisconnectIsDataLoss) {
  auto listener = Listener::bind_loopback(0);
  ASSERT_TRUE(listener.ok());
  auto client = connect_loopback(listener->port());
  ASSERT_TRUE(client.ok());
  Socket conn = accept_one(*listener);

  auto bytes = raw_prefix(100);  // promise 100 payload bytes...
  bytes.resize(bytes.size() + 10, 0x55);  // ...deliver 10, then vanish
  ASSERT_TRUE(write_frame(*client, bytes.data(), bytes.size()).ok());
  client->close();

  std::vector<std::uint8_t> payload;
  const auto got = read_frame(conn, payload);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
}

TEST(Framing, TruncatedLengthPrefixIsDataLoss) {
  auto listener = Listener::bind_loopback(0);
  ASSERT_TRUE(listener.ok());
  auto client = connect_loopback(listener->port());
  ASSERT_TRUE(client.ok());
  Socket conn = accept_one(*listener);

  const std::uint8_t byte = 0x01;  // 1 of the 4 prefix bytes
  ASSERT_TRUE(write_frame(*client, &byte, 1).ok());
  client->close();

  std::vector<std::uint8_t> payload;
  const auto got = read_frame(conn, payload);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
}

TEST(Framing, HostileDeclaredLengthsAreRejectedBeforeAllocation) {
  auto listener = Listener::bind_loopback(0);
  ASSERT_TRUE(listener.ok());
  const std::uint32_t declared[] = {
      0, 1, static_cast<std::uint32_t>(kHeaderSize) - 1,
      static_cast<std::uint32_t>(max_frame_payload()) + 1, 0xFFFFFFFFu};
  for (const std::uint32_t len : declared) {
    SCOPED_TRACE(len);
    auto client = connect_loopback(listener->port());
    ASSERT_TRUE(client.ok());
    Socket conn = accept_one(*listener);
    const auto bytes = raw_prefix(len);
    ASSERT_TRUE(write_frame(*client, bytes.data(), bytes.size()).ok());
    std::vector<std::uint8_t> payload;
    const auto got = read_frame(conn, payload);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  }
}

// ---- end-to-end over loopback -----------------------------------------------

TEST(NetServer, LoopbackAnswersMatchSerialExecution) {
  Harness h;
  auto client = Client::connect(h.nserver->port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto qs = make_workload(h.g.num_nodes(), 301, seed);
    const auto got = client->submit(qs);
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    EXPECT_EQ(*got, run_serial(*h.engine, qs));
  }
  // The client can read a full reply before the connection thread gets
  // to its results_sent_ increment (the count lands after write_frame
  // returns) — poll briefly instead of racing it.
  for (int i = 0; i < 100 && h.nserver->stats().results_sent < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const NetServerStats stats = h.nserver->stats();
  EXPECT_EQ(stats.frames_in, 6u);
  EXPECT_EQ(stats.results_sent, 6u);
  EXPECT_EQ(stats.bad_frames, 0u);
}

TEST(NetServer, ConcurrentClientsEachGetByteIdenticalAnswers) {
  Harness h;
  constexpr int kClients = 4;
  constexpr int kBatches = 5;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::connect(h.nserver->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int b = 0; b < kBatches; ++b) {
        const auto qs = make_workload(
            h.g.num_nodes(), 211, static_cast<std::uint64_t>(c * 100 + b));
        const auto got = client->submit(qs);
        if (!got.ok() || *got != run_serial(*h.engine, qs)) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(h.nserver->stats().results_sent,
            static_cast<std::uint64_t>(kClients * kBatches));
}

TEST(NetServer, MalformedFrameClosesOnlyThatConnection) {
  Harness h;
  // A liar connection: valid framing, garbage magic.
  {
    auto raw = connect_loopback(h.nserver->port());
    ASSERT_TRUE(raw.ok());
    auto wire = encode_query_batch(make_workload(h.g.num_nodes(), 5, 1));
    wire[kLenPrefixSize] ^= 0xFF;  // corrupt the magic
    ASSERT_TRUE(write_frame(*raw, wire.data(), wire.size()).ok());
    // The server names the reason in an error frame, then closes.
    std::vector<std::uint8_t> payload;
    const auto reply = read_frame(*raw, payload);
    ASSERT_TRUE(reply.ok()) << reply.status().to_string();
    ASSERT_TRUE(*reply);
    const auto frame = decode_frame(payload.data(), payload.size());
    ASSERT_TRUE(frame.ok()) << frame.status().to_string();
    EXPECT_EQ(frame->type, FrameType::kError);
    EXPECT_EQ(frame->error.code(), StatusCode::kInvalidArgument);
    const auto eof = read_frame(*raw, payload);
    ASSERT_TRUE(eof.ok()) << eof.status().to_string();
    EXPECT_FALSE(*eof);
  }
  // A mid-frame deserter.
  {
    auto raw = connect_loopback(h.nserver->port());
    ASSERT_TRUE(raw.ok());
    const auto bytes = raw_prefix(64);
    ASSERT_TRUE(write_frame(*raw, bytes.data(), bytes.size()).ok());
    raw->close();
  }
  // The process shrugged both off: a well-behaved client is still served.
  auto client = Client::connect(h.nserver->port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  const auto qs = make_workload(h.g.num_nodes(), 97, 3);
  const auto got = client->submit(qs);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  EXPECT_EQ(*got, run_serial(*h.engine, qs));
  // Both misbehaviors were counted (the deserter's count lands once its
  // connection thread notices the close — poll briefly).
  for (int i = 0; i < 100 && h.nserver->stats().bad_frames < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(h.nserver->stats().bad_frames, 2u);
}

TEST(NetServer, DrainAnswersInFlightThenRefusesCleanly) {
  NetServerOptions opts;
  opts.poll_interval_ms = 10;  // fast drain notice
  Harness h(std::move(opts));
  auto client = Client::connect(h.nserver->port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  const auto qs = make_workload(h.g.num_nodes(), 199, 8);
  const auto before = client->submit(qs);
  ASSERT_TRUE(before.ok()) << before.status().to_string();
  EXPECT_EQ(*before, run_serial(*h.engine, qs));

  h.nserver->request_drain();
  EXPECT_TRUE(h.nserver->draining());
  h.nserver->drain();  // joins accept loop, watcher, connection threads

  // Every accepted batch was answered before the drain completed.
  const NetServerStats stats = h.nserver->stats();
  EXPECT_EQ(stats.results_sent, stats.frames_in);

  // The old connection got the drain notice (or a reset from the closed
  // listener); either way the refusal is a clean Status, never a hang or
  // an abort, and fresh connections are refused outright.
  const auto after = client->submit(qs);
  EXPECT_FALSE(after.ok());
  EXPECT_FALSE(after.status().message().empty());
  EXPECT_FALSE(Client::connect(h.nserver->port()).ok());

  // Drain is idempotent, and only now may the QueryServer go down.
  h.nserver->request_drain();
  h.nserver->drain();
  h.qserver.shutdown();
}

TEST(NetServer, HotReloadSwapsEnginesWithoutMixingABatch) {
  const std::string path =
      ::testing::TempDir() + "gclus_net_hot_reload.orc";
  const Graph g = gen::cycle(240);
  const QueryEngine v1 = make_engine(g, 11, 2);
  const QueryEngine v2 = make_engine(g, 11, 8);
  ASSERT_TRUE(v1.save(path).ok());

  const auto qs = make_workload(g.num_nodes(), 173, 5);
  const auto exp1 = run_serial(v1, qs);
  const auto exp2 = run_serial(v2, qs);
  ASSERT_NE(exp1, exp2) << "tau must change some answer for this test";

  auto loaded = QueryEngine::load(Graph(g), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  QueryServer qserver(
      std::make_shared<const QueryEngine>(std::move(loaded).value()));
  NetServerOptions opts;
  opts.watch_artifact_path = path;
  opts.watch_interval_ms = 10;
  auto nserver = NetServer::start(qserver, std::move(opts));
  ASSERT_TRUE(nserver.ok()) << nserver.status().to_string();

  auto client = Client::connect((*nserver)->port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  const auto first = client->submit(qs);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  EXPECT_EQ(*first, exp1);

  // Republish the artifact; the watcher must pick it up and atomically
  // swap.  Until then v1 keeps answering — and no reply may ever mix the
  // two versions.
  ASSERT_TRUE(v2.save(path).ok());
  bool saw_v2 = false;
  for (int i = 0; i < 1000 && !saw_v2; ++i) {
    const auto got = client->submit(qs);
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    if (*got == exp2) {
      saw_v2 = true;
    } else {
      ASSERT_EQ(*got, exp1) << "reply mixed engine versions";
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(saw_v2) << "watcher never swapped in the republished engine";
  EXPECT_GE((*nserver)->stats().reloads, 1u);

  // After the swap, v2 answers everything.
  const auto settled = client->submit(qs);
  ASSERT_TRUE(settled.ok()) << settled.status().to_string();
  EXPECT_EQ(*settled, exp2);
}

TEST(NetServer, BadRepublishKeepsServingTheCurrentEngine) {
  const std::string path =
      ::testing::TempDir() + "gclus_net_bad_republish.orc";
  const Graph g = gen::ring_of_cliques(6, 5);
  const QueryEngine v1 = make_engine(g);
  ASSERT_TRUE(v1.save(path).ok());
  auto loaded = QueryEngine::load(Graph(g), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  QueryServer qserver(
      std::make_shared<const QueryEngine>(std::move(loaded).value()));
  NetServerOptions opts;
  opts.watch_artifact_path = path;
  opts.watch_interval_ms = 10;
  auto nserver = NetServer::start(qserver, std::move(opts));
  ASSERT_TRUE(nserver.ok()) << nserver.status().to_string();

  const auto qs = make_workload(g.num_nodes(), 151, 2);
  const auto exp = run_serial(v1, qs);

  // Publish garbage where the artifact used to be — atomically, like a
  // real (if broken) publisher would: the engine mmaps the old inode, so
  // an in-place overwrite would corrupt the live mapping rather than
  // exercise the reload-rejection path.
  {
    const std::string tmp = path + ".tmp";
    std::vector<std::uint8_t> junk(64, 0xEE);
    FILE* f = std::fopen(tmp.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
    ASSERT_EQ(std::rename(tmp.c_str(), path.c_str()), 0);
  }
  // Give the watcher several intervals to notice (and reject) it.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  auto client = Client::connect((*nserver)->port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  const auto got = client->submit(qs);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  EXPECT_EQ(*got, exp);  // v1 never stopped serving
  EXPECT_EQ((*nserver)->stats().reloads, 0u);
}

}  // namespace
}  // namespace gclus::net
