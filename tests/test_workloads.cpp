// Tests for the workload registry: every dataset loads, is connected,
// deterministic, and sits in its intended structural regime.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/connectivity.hpp"
#include "graph/properties.hpp"
#include "workloads/datasets.hpp"

namespace gclus::workloads {
namespace {

TEST(Workloads, RegistryHasCanonicalOrder) {
  const auto& names = dataset_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names.front(), "social-large");
  EXPECT_EQ(names.back(), "mesh");
}

class DatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetTest, LoadsConnectedAndDeterministic) {
  const Dataset a = load_dataset(GetParam());
  EXPECT_TRUE(is_connected(a.graph)) << GetParam();
  EXPECT_GE(a.graph.num_nodes(), 64u);
  EXPECT_FALSE(a.paper_name.empty());
  const Dataset b = load_dataset(GetParam());
  EXPECT_EQ(a.graph.neighbor_array(), b.graph.neighbor_array());
}

INSTANTIATE_TEST_SUITE_P(All, DatasetTest,
                         ::testing::ValuesIn(dataset_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

TEST(Workloads, SocialGraphsHaveHeavyTails) {
  for (const char* name : {"social-large", "social-small"}) {
    const Dataset d = load_dataset(name);
    EXPECT_FALSE(d.large_diameter);
    const auto stats = degree_stats(d.graph);
    EXPECT_GT(static_cast<double>(stats.max_degree), 8.0 * stats.avg_degree)
        << name;
  }
}

TEST(Workloads, RoadGraphsAreSparse) {
  for (const char* name : {"road-a", "road-b", "road-c"}) {
    const Dataset d = load_dataset(name);
    EXPECT_TRUE(d.large_diameter);
    const auto stats = degree_stats(d.graph);
    EXPECT_LT(stats.avg_degree, 4.5) << name;
    EXPECT_LE(stats.max_degree, 8u) << name;
  }
}

TEST(Workloads, MeshIsTheGrid) {
  const Dataset d = load_dataset("mesh");
  const auto stats = degree_stats(d.graph);
  EXPECT_EQ(stats.max_degree, 4u);
  EXPECT_EQ(stats.min_degree, 2u);
}

TEST(Workloads, DiameterRegimesSeparate) {
  // Social diameters are orders of magnitude below road/mesh diameters —
  // the separation the entire evaluation narrative rests on.  Use the
  // double-sweep lower bound (cheap) for the large-diameter side.
  const Dataset social = load_dataset("social-large");
  const Dataset road = load_dataset("road-a");
  const Dist social_diam = exact_diameter(social.graph).diameter;
  const Dist road_lb = double_sweep_lower_bound(road.graph);
  EXPECT_LT(social_diam, 40u);
  EXPECT_GT(road_lb, 10u * social_diam);
}

TEST(WorkloadsDeathTest, UnknownNameAborts) {
  EXPECT_DEATH((void)load_dataset("no-such-dataset"), "unknown dataset");
}

TEST(Workloads, ExpanderPathComposite) {
  const Graph g = make_expander_path(8192);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_nodes(), 8192u);
  // Diameter is dominated by the ~sqrt(n) tail.
  EXPECT_GE(double_sweep_lower_bound(g), 88u);
}

TEST(Workloads, ScaleIsClampedAndPositive) {
  const double s = workload_scale();
  EXPECT_GE(s, 0.05);
  EXPECT_LE(s, 64.0);
}

}  // namespace
}  // namespace gclus::workloads
