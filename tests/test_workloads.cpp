// Tests for the workload registry: every dataset loads, is connected,
// deterministic, and sits in its intended structural regime — and for the
// dataset cache: hit/miss equality, corrupt-entry regeneration, and
// counter accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "graph/connectivity.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "test_util.hpp"
#include "workloads/datasets.hpp"

namespace gclus::workloads {
namespace {

/// Scoped GCLUS_DATASET_CACHE_DIR pointing at a fresh temp directory;
/// restores the previous environment (CI sets a suite-wide cache dir) on
/// destruction.
class ScopedCacheDir {
 public:
  explicit ScopedCacheDir(const std::string& name)
      : dir_((std::filesystem::temp_directory_path() / name).string()) {
    if (const char* prev = std::getenv("GCLUS_DATASET_CACHE_DIR")) {
      previous_ = prev;
    }
    std::filesystem::remove_all(dir_);
    setenv("GCLUS_DATASET_CACHE_DIR", dir_.c_str(), /*overwrite=*/1);
  }
  ~ScopedCacheDir() {
    if (previous_.has_value()) {
      setenv("GCLUS_DATASET_CACHE_DIR", previous_->c_str(), /*overwrite=*/1);
    } else {
      unsetenv("GCLUS_DATASET_CACHE_DIR");
    }
    std::filesystem::remove_all(dir_);
  }

  [[nodiscard]] const std::string& dir() const { return dir_; }

  [[nodiscard]] std::size_t num_entries() const {
    std::size_t n = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir_)) {
      n += e.is_regular_file() ? 1 : 0;
    }
    return n;
  }

 private:
  std::string dir_;
  std::optional<std::string> previous_;
};

TEST(Workloads, RegistryHasCanonicalOrder) {
  const auto& names = dataset_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names.front(), "social-large");
  EXPECT_EQ(names.back(), "mesh");
}

class DatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetTest, LoadsConnectedAndDeterministic) {
  const Dataset a = load_dataset(GetParam());
  EXPECT_TRUE(is_connected(a.graph)) << GetParam();
  EXPECT_GE(a.graph.num_nodes(), 64u);
  EXPECT_FALSE(a.paper_name.empty());
  const Dataset b = load_dataset(GetParam());
  EXPECT_TRUE(testutil::same_csr(a.graph, b.graph));
}

INSTANTIATE_TEST_SUITE_P(All, DatasetTest,
                         ::testing::ValuesIn(dataset_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

TEST(Workloads, SocialGraphsHaveHeavyTails) {
  for (const char* name : {"social-large", "social-small"}) {
    const Dataset d = load_dataset(name);
    EXPECT_FALSE(d.large_diameter);
    const auto stats = degree_stats(d.graph);
    EXPECT_GT(static_cast<double>(stats.max_degree), 8.0 * stats.avg_degree)
        << name;
  }
}

TEST(Workloads, RoadGraphsAreSparse) {
  for (const char* name : {"road-a", "road-b", "road-c"}) {
    const Dataset d = load_dataset(name);
    EXPECT_TRUE(d.large_diameter);
    const auto stats = degree_stats(d.graph);
    EXPECT_LT(stats.avg_degree, 4.5) << name;
    EXPECT_LE(stats.max_degree, 8u) << name;
  }
}

TEST(Workloads, MeshIsTheGrid) {
  const Dataset d = load_dataset("mesh");
  const auto stats = degree_stats(d.graph);
  EXPECT_EQ(stats.max_degree, 4u);
  EXPECT_EQ(stats.min_degree, 2u);
}

TEST(Workloads, DiameterRegimesSeparate) {
  // Social diameters are orders of magnitude below road/mesh diameters —
  // the separation the entire evaluation narrative rests on.  Use the
  // double-sweep lower bound (cheap) for the large-diameter side.
  const Dataset social = load_dataset("social-large");
  const Dataset road = load_dataset("road-a");
  const Dist social_diam = exact_diameter(social.graph).diameter;
  const Dist road_lb = double_sweep_lower_bound(road.graph);
  EXPECT_LT(social_diam, 40u);
  EXPECT_GT(road_lb, 10u * social_diam);
}

TEST(WorkloadsDeathTest, UnknownNameAborts) {
  EXPECT_DEATH((void)load_dataset("no-such-dataset"), "unknown dataset");
}

TEST(Workloads, ExpanderPathComposite) {
  const Graph g = make_expander_path(8192);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_nodes(), 8192u);
  // Diameter is dominated by the ~sqrt(n) tail.
  EXPECT_GE(double_sweep_lower_bound(g), 88u);
}

TEST(Workloads, ScaleIsClampedAndPositive) {
  const double s = workload_scale();
  EXPECT_GE(s, 0.05);
  EXPECT_LE(s, 64.0);
}

TEST(DatasetCache, DirTracksEnvironment) {
  // dataset_cache_dir() reads the environment per call (no static
  // latching), so scoped overrides in this suite actually take effect.
  ScopedCacheDir cache("gclus_test_cache_env");
  EXPECT_EQ(dataset_cache_dir(), cache.dir());
}

TEST(DatasetCache, HitEqualsMissByteForByte) {
  ScopedCacheDir cache("gclus_test_cache_hitmiss");
  const auto before = dataset_cache_stats();

  const Dataset miss = load_dataset("mesh");  // generates and publishes
  const auto after_miss = dataset_cache_stats();
  EXPECT_EQ(after_miss.misses, before.misses + 1);
  EXPECT_EQ(after_miss.stores, before.stores + 1);
  EXPECT_TRUE(miss.graph.owns_storage());
  EXPECT_EQ(cache.num_entries(), 1u);

  const Dataset hit = load_dataset("mesh");  // mmaps the published file
  const auto after_hit = dataset_cache_stats();
  EXPECT_EQ(after_hit.hits, after_miss.hits + 1);
  EXPECT_EQ(after_hit.misses, after_miss.misses);
  if (io::mmap_supported()) EXPECT_FALSE(hit.graph.owns_storage());

  EXPECT_TRUE(testutil::same_csr(miss.graph, hit.graph));
  EXPECT_EQ(hit.name, miss.name);
  EXPECT_EQ(hit.paper_name, miss.paper_name);
  EXPECT_EQ(hit.large_diameter, miss.large_diameter);
}

TEST(DatasetCache, CachedGraphHelperSkipsRebuilds) {
  ScopedCacheDir cache("gclus_test_cache_helper");
  int builds = 0;
  const auto build = [&builds] {
    ++builds;
    return gen::ring_of_cliques(6, 5);
  };
  const Graph a = cached_graph("test-ring", build);
  const Graph b = cached_graph("test-ring", build);
  EXPECT_EQ(builds, 1);
  EXPECT_TRUE(testutil::same_csr(a, b));
  // A different key is a different entry.
  const Graph c = cached_graph("test-ring-2", build);
  EXPECT_EQ(builds, 2);
  EXPECT_TRUE(testutil::same_csr(a, c));
}

TEST(DatasetCache, CorruptEntryIsRegenerated) {
  ScopedCacheDir cache("gclus_test_cache_corrupt");
  const Graph a = cached_graph("test-grid", [] { return gen::grid(9, 9); });
  // Truncate the single published entry: the checksum/bounds validation
  // must treat it as a miss, not crash or serve garbage.
  for (const auto& e : std::filesystem::directory_iterator(cache.dir())) {
    std::filesystem::resize_file(e.path(),
                                 std::filesystem::file_size(e.path()) / 2);
  }
  const auto before = dataset_cache_stats();
  const Graph b = cached_graph("test-grid", [] { return gen::grid(9, 9); });
  const auto after = dataset_cache_stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_TRUE(testutil::same_csr(a, b));
  // The regenerated entry is served on the next lookup.
  const Graph c = cached_graph("test-grid", [] { return gen::grid(9, 9); });
  EXPECT_EQ(dataset_cache_stats().hits, after.hits + 1);
  EXPECT_TRUE(testutil::same_csr(a, c));
}

TEST(DatasetCache, UnwritableDirDegradesToRegeneration) {
  // A read-only cache volume (CI cache mounts) must never abort the run:
  // every lookup misses, the builder runs, and publication is skipped.
  std::optional<std::string> previous;
  if (const char* prev = std::getenv("GCLUS_DATASET_CACHE_DIR")) {
    previous = prev;
  }
  setenv("GCLUS_DATASET_CACHE_DIR", "/proc/gclus-no-such-cache",
         /*overwrite=*/1);
  const auto before = dataset_cache_stats();
  const Graph a = cached_graph("test-cycle", [] { return gen::cycle(30); });
  const Graph b = cached_graph("test-cycle", [] { return gen::cycle(30); });
  if (previous.has_value()) {
    setenv("GCLUS_DATASET_CACHE_DIR", previous->c_str(), /*overwrite=*/1);
  } else {
    unsetenv("GCLUS_DATASET_CACHE_DIR");
  }
  const auto after = dataset_cache_stats();
  EXPECT_EQ(after.misses, before.misses + 2);
  EXPECT_EQ(after.stores, before.stores);
  EXPECT_TRUE(testutil::same_csr(a, b));
}

TEST(DatasetCache, ExpanderPathGoesThroughCache) {
  ScopedCacheDir cache("gclus_test_cache_expath");
  const Graph a = make_expander_path(4096);
  const auto stats = dataset_cache_stats();
  const Graph b = make_expander_path(4096);
  EXPECT_EQ(dataset_cache_stats().hits, stats.hits + 1);
  EXPECT_TRUE(testutil::same_csr(a, b));
}

}  // namespace
}  // namespace gclus::workloads
