// Tests for the serialized distance-oracle artifact (server/artifact.hpp):
// build→write→load round trips over the whole corpus (mmap and copy
// paths), byte-identical restart answers, header/payload bit-flip
// corruption sweeps that must yield kDataLoss/kInvalidArgument — never an
// abort — and the load_or_build evict+rebuild+republish discipline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "core/distance_oracle.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "server/artifact.hpp"
#include "server/engine.hpp"
#include "test_util.hpp"

namespace gclus::server {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// RAII temp file (the artifact plus any leftover temp siblings).
struct TempFile {
  explicit TempFile(const std::string& name) : path(temp_path(name)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

DistanceOracleOptions fixed_opts() {
  DistanceOracleOptions opts;
  opts.seed = 11;
  opts.tau = 4;
  return opts;
}

template <typename T>
bool same_span(std::span<const T> a, std::span<const T> b) {
  return std::ranges::equal(a, b);
}

bool same_payload(const OracleArtifact& a, const OracleArtifact& b) {
  return same_span(a.cluster_of, b.cluster_of) &&
         same_span(a.dist_to_center, b.dist_to_center) &&
         same_span(a.centers, b.centers) &&
         same_span(a.quotient_offsets, b.quotient_offsets) &&
         same_span(a.quotient_neighbors, b.quotient_neighbors) &&
         same_span(a.quotient_weights, b.quotient_weights) &&
         same_span(a.apsp, b.apsp);
}

// ---- round trip over the corpus ---------------------------------------------

class ArtifactRoundTripTest
    : public ::testing::TestWithParam<testutil::NamedGraph> {};

TEST_P(ArtifactRoundTripTest, WriteLoadPreservesEveryByte) {
  const auto& [name, graph] = GetParam();
  const OracleArtifact built = build_oracle_artifact(graph, fixed_opts());
  EXPECT_FALSE(built.mapped);
  EXPECT_EQ(built.meta.graph_num_nodes, graph.num_nodes());
  EXPECT_EQ(built.meta.graph_num_half_edges, graph.num_half_edges());
  EXPECT_GE(built.meta.num_clusters, 1u);
  EXPECT_NE(built.meta.tau, 0u);  // the 0 sentinel must be resolved

  TempFile file("gclus_artifact_rt_" + name + ".orc");
  ASSERT_TRUE(write_oracle_artifact(built, file.path).ok());

  ArtifactLoadOptions mmap_opts;  // defaults: prefer mmap, verify
  auto mapped = load_oracle_artifact(file.path, mmap_opts);
  ASSERT_TRUE(mapped.ok()) << name << ": " << mapped.status().to_string();
  EXPECT_TRUE(same_payload(built, *mapped)) << name;
  EXPECT_EQ(mapped->meta.build_seed, built.meta.build_seed);
  EXPECT_EQ(mapped->meta.max_radius, built.meta.max_radius);

  ArtifactLoadOptions copy_opts;
  copy_opts.prefer_mmap = false;
  auto copied = load_oracle_artifact(file.path, copy_opts);
  ASSERT_TRUE(copied.ok()) << name;
  EXPECT_FALSE(copied->mapped);
  EXPECT_TRUE(same_payload(built, *copied)) << name;

  EXPECT_TRUE(validate_artifact_for_graph(*mapped, graph).ok());
}

TEST_P(ArtifactRoundTripTest, LoadedEngineMatchesInMemoryOracle) {
  const auto& [name, graph] = GetParam();
  const DistanceOracle oracle = DistanceOracle::build(graph, fixed_opts());

  TempFile file("gclus_artifact_eng_" + name + ".orc");
  auto built = QueryEngine::build(Graph(graph), fixed_opts());
  ASSERT_TRUE(built.ok()) << name;
  ASSERT_TRUE(built->save(file.path).ok());
  auto loaded = QueryEngine::load(Graph(graph), file.path);
  ASSERT_TRUE(loaded.ok()) << name << ": " << loaded.status().to_string();
  EXPECT_TRUE(loaded->loaded_from_artifact());
  EXPECT_FALSE(built->loaded_from_artifact());

  Rng rng(77);
  for (int q = 0; q < 200; ++q) {
    const auto u = static_cast<NodeId>(rng.next_below(graph.num_nodes()));
    const auto v = static_cast<NodeId>(rng.next_below(graph.num_nodes()));
    const auto fresh = built->approx_distance(u, v);
    const auto reloaded = loaded->approx_distance(u, v);
    ASSERT_TRUE(fresh.ok());
    ASSERT_TRUE(reloaded.ok());
    EXPECT_EQ(*fresh, *reloaded) << name;
    EXPECT_EQ(*fresh, oracle.upper_bound(u, v)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ArtifactRoundTripTest,
    ::testing::ValuesIn(testutil::small_connected_corpus()),
    [](const ::testing::TestParamInfo<testutil::NamedGraph>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

// ---- corruption must degrade to Status, never abort -------------------------

TEST(ArtifactCorruption, HeaderAndPayloadBitFlipsAreRejected) {
  const Graph g = gen::ring_of_cliques(6, 8);
  const OracleArtifact built = build_oracle_artifact(g, fixed_opts());
  TempFile file("gclus_artifact_flip.orc");
  ASSERT_TRUE(write_oracle_artifact(built, file.path).ok());
  const std::vector<char> pristine = slurp(file.path);
  ASSERT_GT(pristine.size(), 192u);

  // Flip one bit in every header byte and the first 64 payload bytes
  // (bytes 144..191 are alignment padding the checksum deliberately skips).
  // A flip either breaks the magic/version/padding (kInvalidArgument) or a
  // semantic field or the checksum (kDataLoss) — nothing slips through.
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < 144; ++i) positions.push_back(i);
  for (std::size_t i = 192; i < 192 + 64 && i < pristine.size(); ++i) {
    positions.push_back(i);
  }
  for (const std::size_t i : positions) {
    std::vector<char> bytes = pristine;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x10);
    spit(file.path, bytes);
    const auto r = load_oracle_artifact(file.path);
    ASSERT_FALSE(r.ok()) << "flip at byte " << i << " was accepted";
    const StatusCode code = r.status().code();
    EXPECT_TRUE(code == StatusCode::kDataLoss ||
                code == StatusCode::kInvalidArgument)
        << "flip at byte " << i << ": " << r.status().to_string();
  }

  // The pristine bytes still load — the writer really is the reader's dual.
  spit(file.path, pristine);
  EXPECT_TRUE(load_oracle_artifact(file.path).ok());
}

TEST(ArtifactCorruption, TruncationsAreDataLoss) {
  const Graph g = gen::grid(12, 12);
  const OracleArtifact built = build_oracle_artifact(g, fixed_opts());
  TempFile file("gclus_artifact_trunc.orc");
  ASSERT_TRUE(write_oracle_artifact(built, file.path).ok());
  const std::vector<char> pristine = slurp(file.path);

  for (const std::size_t keep :
       {pristine.size() - 1, pristine.size() / 2, std::size_t{200},
        std::size_t{144}, std::size_t{100}, std::size_t{8}, std::size_t{0}}) {
    std::vector<char> bytes(pristine.begin(),
                            pristine.begin() + static_cast<long>(keep));
    spit(file.path, bytes);
    const auto r = load_oracle_artifact(file.path);
    ASSERT_FALSE(r.ok()) << "truncation to " << keep << " bytes accepted";
    const StatusCode code = r.status().code();
    EXPECT_TRUE(code == StatusCode::kDataLoss ||
                code == StatusCode::kInvalidArgument)
        << "truncation to " << keep << ": " << r.status().to_string();
  }
}

TEST(ArtifactCorruption, NonArtifactFileIsInvalidArgument) {
  TempFile file("gclus_artifact_notorc.orc");
  spit(file.path, {'h', 'e', 'l', 'l', 'o', ' ', 'w', 'o', 'r', 'l', 'd'});
  const auto r = load_oracle_artifact(file.path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ArtifactCorruption, MissingFileIsIoError) {
  const auto r = load_oracle_artifact(temp_path("gclus_artifact_nope.orc"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

// ---- wrong-graph guards -----------------------------------------------------

TEST(ArtifactValidation, WrongGraphIsInvalidArgument) {
  const Graph g = gen::grid(10, 10);
  const Graph other = gen::cycle(64);
  const OracleArtifact built = build_oracle_artifact(g, fixed_opts());
  const Status st = validate_artifact_for_graph(built, other);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  TempFile file("gclus_artifact_wronggraph.orc");
  ASSERT_TRUE(write_oracle_artifact(built, file.path).ok());
  auto engine = QueryEngine::load(Graph(other), file.path);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

// ---- load_or_build: the evict + rebuild + republish path --------------------

TEST(LoadOrBuild, MissingArtifactRebuildsAndRepublishes) {
  const Graph g = gen::ring_of_cliques(5, 10);
  TempFile file("gclus_artifact_lob_missing.orc");

  QueryEngine::LoadReport rep;
  auto first = QueryEngine::load_or_build(Graph(g), file.path, fixed_opts(),
                                          &rep);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(rep.loaded_from_artifact);
  EXPECT_FALSE(rep.evicted_corrupt);  // nothing existed to evict
  EXPECT_TRUE(rep.rebuilt);
  EXPECT_TRUE(rep.republished);
  ASSERT_TRUE(std::filesystem::exists(file.path));

  // Second call finds the published sidecar and never decomposes.
  auto second = QueryEngine::load_or_build(Graph(g), file.path, fixed_opts(),
                                           &rep);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(rep.loaded_from_artifact);
  EXPECT_FALSE(rep.rebuilt);
  EXPECT_TRUE(second->loaded_from_artifact());
  EXPECT_TRUE(same_payload(first->artifact(), second->artifact()));
}

TEST(LoadOrBuild, CorruptArtifactIsEvictedAndHealed) {
  const Graph g = gen::ring_of_cliques(5, 10);
  TempFile file("gclus_artifact_lob_corrupt.orc");
  {
    auto engine = QueryEngine::build(Graph(g), fixed_opts());
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->save(file.path).ok());
  }
  // Corrupt the payload (header intact, checksum now wrong).
  std::vector<char> bytes = slurp(file.path);
  bytes[300] = static_cast<char>(bytes[300] ^ 0xFF);
  spit(file.path, bytes);

  QueryEngine::LoadReport rep;
  auto healed = QueryEngine::load_or_build(Graph(g), file.path, fixed_opts(),
                                           &rep);
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(rep.loaded_from_artifact);
  EXPECT_TRUE(rep.evicted_corrupt);
  EXPECT_TRUE(rep.rebuilt);
  EXPECT_TRUE(rep.republished);

  // The republished sidecar is healthy again.
  auto reloaded = QueryEngine::load(Graph(g), file.path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(same_payload(healed->artifact(), reloaded->artifact()));
}

// ---- engine construction guards ---------------------------------------------

TEST(QueryEngineBuild, EmptyGraphIsInvalidArgument) {
  auto r = QueryEngine::build(Graph(), fixed_opts());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryEngineBuild, DisconnectedGraphIsInvalidArgument) {
  // Two cliques, no edge between them: the quotient APSP has unreachable
  // pairs, which the query formula cannot serve.
  GraphBuilder b(10);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) {
      b.add_edge(u, v);
      b.add_edge(u + 5, v + 5);
    }
  }
  auto r = QueryEngine::build(b.build(), fixed_opts());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gclus::server
