// Tests for the concurrent query service (server/server.hpp): query
// semantics against the in-memory oracle, the Status taxonomy for bad
// requests, load shedding on a full queue, clean shutdown draining, and
// the headline determinism contract — N concurrent workers answer a query
// stream byte-identically to serial execution.  This binary is the TSan
// target of the sanitizer CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "core/distance_oracle.hpp"
#include "graph/generators.hpp"
#include "server/engine.hpp"
#include "server/server.hpp"

namespace gclus::server {
namespace {

QueryEngine make_engine(const Graph& g, std::uint64_t seed = 11,
                        std::uint32_t tau = 4) {
  DistanceOracleOptions opts;
  opts.seed = seed;
  opts.tau = tau;
  auto engine = QueryEngine::build(Graph(g), opts);
  GCLUS_CHECK(engine.ok(), "test graph must build");
  return std::move(engine).value();
}

/// A reproducible mixed workload: ~80% distance, 10% same-cluster, 10%
/// neighborhood queries, with a sprinkling of out-of-range ids to keep
/// the error path exercised alongside the hot path.
std::vector<Query> make_workload(NodeId n, std::size_t count,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> qs;
  qs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Query q;
    const std::uint64_t roll = rng.next_below(100);
    q.u = static_cast<NodeId>(rng.next_below(n));
    if (roll < 80) {
      q.kind = QueryKind::kApproxDistance;
      q.arg = static_cast<NodeId>(rng.next_below(n));
    } else if (roll < 90) {
      q.kind = QueryKind::kSameCluster;
      q.arg = static_cast<NodeId>(rng.next_below(n));
    } else {
      q.kind = QueryKind::kClusterNeighborhood;
      q.arg = static_cast<std::uint32_t>(rng.next_below(4));
    }
    if (roll >= 97) q.u = n + static_cast<NodeId>(roll);  // invalid id
    qs.push_back(q);
  }
  return qs;
}

std::vector<QueryResult> run_serial(const QueryEngine& engine,
                                    const std::vector<Query>& qs) {
  QueryScratch scratch;
  std::vector<ClusterId> buf;
  std::vector<QueryResult> out;
  out.reserve(qs.size());
  for (const Query& q : qs) out.push_back(execute_query(engine, q, scratch, buf));
  return out;
}

// ---- query semantics --------------------------------------------------------

TEST(QueryEngine, ApproxDistanceMatchesOracleFormula) {
  const Graph g = gen::ring_of_cliques(6, 10);
  DistanceOracleOptions opts;
  opts.seed = 11;
  opts.tau = 4;
  const DistanceOracle oracle = DistanceOracle::build(g, opts);
  const QueryEngine engine = make_engine(g);
  Rng rng(123);
  for (int i = 0; i < 500; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto d = engine.approx_distance(u, v);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(*d, oracle.upper_bound(u, v));
  }
}

TEST(QueryEngine, InvalidNodeIdsAreInvalidArgument) {
  const Graph g = gen::grid(8, 8);
  const QueryEngine engine = make_engine(g);
  const NodeId n = g.num_nodes();
  EXPECT_EQ(engine.approx_distance(n, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.approx_distance(0, n + 5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.same_cluster(n, n).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.cluster_neighborhood(n, 1).status().code(),
            StatusCode::kInvalidArgument);
  // A valid query still works afterwards — errors don't wedge the engine.
  EXPECT_TRUE(engine.approx_distance(0, 1).ok());
}

TEST(QueryEngine, SameClusterAgreesWithLabels) {
  const Graph g = gen::ring_of_cliques(5, 8);
  const QueryEngine engine = make_engine(g);
  const auto labels = engine.artifact().cluster_of;
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto r = engine.same_cluster(u, v);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, labels[u] == labels[v]);
  }
}

TEST(QueryEngine, ClusterNeighborhoodGrowsWithHops) {
  const Graph g = gen::cycle(240);
  const QueryEngine engine = make_engine(g, /*seed=*/3, /*tau=*/2);
  ASSERT_GE(engine.num_clusters(), 4u);
  auto h0 = engine.cluster_neighborhood(0, 0);
  auto h1 = engine.cluster_neighborhood(0, 1);
  auto big = engine.cluster_neighborhood(0, engine.num_clusters());
  ASSERT_TRUE(h0.ok());
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(h0->size(), 1u);  // just u's own cluster
  EXPECT_GT(h1->size(), h0->size());
  // Enough hops reaches every cluster of the (connected) quotient.
  EXPECT_EQ(big->size(), engine.num_clusters());
  // Ascending and duplicate-free — the determinism invariant.
  EXPECT_TRUE(std::is_sorted(big->begin(), big->end()));
  EXPECT_EQ(std::adjacent_find(big->begin(), big->end()), big->end());
}

TEST(QueryEngine, NeighborhoodScratchReuseIsClean) {
  const Graph g = gen::ring_of_cliques(8, 6);
  const QueryEngine engine = make_engine(g);
  QueryScratch scratch;
  std::vector<ClusterId> out;
  // Same query through one scratch many times: epoch stamping must not
  // let marks leak between queries.
  ASSERT_TRUE(engine.cluster_neighborhood(0, 1, scratch, out).ok());
  const std::vector<ClusterId> first = out;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.cluster_neighborhood(0, 1, scratch, out).ok());
    EXPECT_EQ(out, first);
  }
}

// ---- the server -------------------------------------------------------------

TEST(QueryServer, ServesBatchesAndCounts) {
  const Graph g = gen::ring_of_cliques(6, 10);
  const QueryEngine engine = make_engine(g);
  ServerOptions opts;
  opts.workers = 2;
  opts.queue_depth = 16;
  QueryServer server(engine, opts);
  EXPECT_EQ(server.num_workers(), 2u);

  const std::vector<Query> qs = make_workload(g.num_nodes(), 400, 1);
  const std::vector<QueryResult> expected = run_serial(engine, qs);
  auto ticket = server.submit(qs).value();
  EXPECT_EQ(ticket.wait(), expected);
  EXPECT_GE(ticket.latency_s(), 0.0);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_served, qs.size());
  EXPECT_EQ(stats.batches_served, 1u);
  EXPECT_GT(stats.invalid_queries, 0u);  // the workload plants bad ids
  EXPECT_EQ(stats.shed_batches, 0u);
}

TEST(QueryServer, InvalidQueryFailsAloneInItsBatch) {
  const Graph g = gen::grid(6, 6);
  const QueryEngine engine = make_engine(g);
  QueryServer server(engine, {.workers = 1, .queue_depth = 4});
  std::vector<Query> qs = {
      {QueryKind::kApproxDistance, 0, 5},
      {QueryKind::kApproxDistance, g.num_nodes() + 7, 0},  // bad id
      {QueryKind::kSameCluster, 1, 2},
  };
  // Hold the ticket: it owns the batch the result vector lives in, so
  // binding `results` through a temporary would dangle once the worker
  // drops its own reference.
  const auto ticket = server.submit(qs).value();
  const auto& results = ticket.wait();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].code, StatusCode::kOk);
  EXPECT_EQ(results[1].code, StatusCode::kInvalidArgument);
  EXPECT_EQ(results[2].code, StatusCode::kOk);
}

TEST(QueryServer, ShedsWhenQueueIsFull) {
  const Graph g = gen::ring_of_cliques(6, 10);
  const QueryEngine engine = make_engine(g);
  // No-worker-slack setup: one worker, depth 2, and enough slow-ish
  // batches that the queue must fill while it churns.
  QueryServer server(engine, {.workers = 1, .queue_depth = 2});
  const std::vector<Query> qs = make_workload(g.num_nodes(), 2000, 2);

  std::size_t shed = 0;
  std::vector<QueryServer::Ticket> tickets;
  for (int i = 0; i < 64; ++i) {
    auto t = server.try_submit(qs);
    if (t.ok()) {
      tickets.push_back(std::move(t).value());
    } else {
      EXPECT_EQ(t.status().code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  for (const auto& t : tickets) t.wait();
  // 64 instant submissions against depth 2 and one slow worker: some
  // batches must have been refused.
  EXPECT_GT(shed, 0u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed_batches, shed);
  EXPECT_EQ(stats.shed_queries, shed * qs.size());
  // Everything accepted was served exactly once.
  EXPECT_EQ(stats.batches_served, tickets.size());
  EXPECT_EQ(stats.queries_served, tickets.size() * qs.size());
}

TEST(QueryServer, ShutdownDrainsAcceptedWork) {
  const Graph g = gen::ring_of_cliques(6, 10);
  const QueryEngine engine = make_engine(g);
  const std::vector<Query> qs = make_workload(g.num_nodes(), 500, 3);
  const std::vector<QueryResult> expected = run_serial(engine, qs);

  QueryServer server(engine, {.workers = 2, .queue_depth = 64});
  std::vector<QueryServer::Ticket> tickets;
  for (int i = 0; i < 16; ++i) tickets.push_back(server.submit(qs).value());
  server.shutdown();  // must drain all 16, then stop
  for (const auto& t : tickets) EXPECT_EQ(t.wait(), expected);
  EXPECT_EQ(server.stats().batches_served, 16u);

  // Post-shutdown submissions are refused, not queued and not lost.
  auto late = server.try_submit(qs);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
  server.shutdown();  // idempotent
}

// ---- determinism: N workers == serial ---------------------------------------

TEST(QueryServer, ConcurrentAnswersAreByteIdenticalToSerial) {
  const Graph g = gen::expander(600, 6, 5);
  const QueryEngine engine = make_engine(g, /*seed=*/17, /*tau=*/3);

  // One shared query stream, split into batches.  Serial reference first.
  const std::vector<Query> stream = make_workload(g.num_nodes(), 6000, 4);
  const std::vector<QueryResult> expected = run_serial(engine, stream);

  for (const std::size_t workers : {2u, 4u, 8u}) {
    QueryServer server(engine, {.workers = workers, .queue_depth = 256});
    constexpr std::size_t kBatch = 250;
    std::vector<QueryServer::Ticket> tickets;
    for (std::size_t off = 0; off < stream.size(); off += kBatch) {
      tickets.push_back(
          server
              .submit({stream.begin() + static_cast<long>(off),
                       stream.begin() + static_cast<long>(off + kBatch)})
              .value());
    }
    std::vector<QueryResult> got;
    got.reserve(stream.size());
    for (const auto& t : tickets) {
      const auto& r = t.wait();
      got.insert(got.end(), r.begin(), r.end());
    }
    EXPECT_EQ(got, expected) << workers << " workers";
  }
}

TEST(QueryServer, ConcurrentClientsSeeConsistentAnswers) {
  // Many client threads × many batches, all through one server: every
  // client must read exactly the serial answers for its own stream.  This
  // is the test TSan watches for data races in the queue/scratch handling.
  const Graph g = gen::ring_of_cliques(8, 12);
  const QueryEngine engine = make_engine(g);
  QueryServer server(engine, {.workers = 4, .queue_depth = 32});

  constexpr int kClients = 6;
  std::vector<std::vector<Query>> streams;
  std::vector<std::vector<QueryResult>> expected;
  for (int c = 0; c < kClients; ++c) {
    streams.push_back(
        make_workload(g.num_nodes(), 800, 100 + static_cast<std::uint64_t>(c)));
    expected.push_back(run_serial(engine, streams.back()));
  }

  std::vector<int> mismatches(kClients, 0);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int round = 0; round < 5; ++round) {
          auto ticket = server.submit(streams[c]).value();
          if (ticket.wait() != expected[c]) ++mismatches[c];
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(mismatches[c], 0) << c;
  EXPECT_EQ(server.stats().queries_served,
            static_cast<std::uint64_t>(kClients) * 5 * 800);
}

// ---- shutdown race & hot swap -----------------------------------------------

TEST(QueryServer, SubmitShutdownRaceNeverAborts) {
  // Regression: submit() used to GCLUS_CHECK(!stop_) and abort the whole
  // process when it lost the race with shutdown() — with remote clients
  // attached that abort kills every connection at once.  Hammer the race
  // and assert refusal is a kUnavailable Status, every accepted batch
  // completes with the right answers, and none is silently dropped.
  const Graph g = gen::ring_of_cliques(4, 8);
  const QueryEngine engine = make_engine(g);
  const std::vector<Query> qs = make_workload(g.num_nodes(), 50, 7);
  const std::vector<QueryResult> expected = run_serial(engine, qs);

  for (int round = 0; round < 20; ++round) {
    QueryServer server(engine, {.workers = 2, .queue_depth = 4});
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> refused{0};
    std::vector<std::thread> producers;
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 25;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < kPerProducer; ++i) {
          auto t = server.submit(qs);
          if (t.ok()) {
            accepted.fetch_add(1, std::memory_order_relaxed);
            EXPECT_EQ(t->wait(), expected);
          } else {
            EXPECT_EQ(t.status().code(), StatusCode::kUnavailable);
            refused.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    server.shutdown();  // races every producer's submit
    for (auto& t : producers) t.join();
    EXPECT_EQ(accepted.load() + refused.load(),
              static_cast<std::uint64_t>(kProducers) * kPerProducer);
    // Accepted and completed are the same set: nothing accepted was lost
    // in the drain, nothing refused was half-queued.
    EXPECT_EQ(server.stats().batches_served, accepted.load());
  }
}

TEST(QueryServer, LatencyIsSentinelWhilePending) {
  const Graph g = gen::ring_of_cliques(6, 10);
  const QueryEngine engine = make_engine(g);
  // One worker, pinned down by a long first batch, so the second batch is
  // provably still queued when we probe its latency.
  QueryServer server(engine, {.workers = 1, .queue_depth = 8});
  auto slow = server.submit(make_workload(g.num_nodes(), 200000, 8)).value();
  auto queued = server.submit(make_workload(g.num_nodes(), 10, 9)).value();
  EXPECT_EQ(queued.latency_s(), -1.0);  // not done: sentinel, not garbage
  queued.wait();
  EXPECT_GE(queued.latency_s(), 0.0);
  slow.wait();
}

TEST(QueryServer, SwapEngineServesOldThenNewNeverMixed) {
  // Two engines over the same graph with different decomposition radii:
  // their answer streams differ, which lets each batch be classified as
  // entirely-v1, entirely-v2, or (the bug) a mix of both.
  const Graph g = gen::cycle(240);
  auto e1 = std::make_shared<QueryEngine>(make_engine(g, /*seed=*/3, /*tau=*/2));
  auto e2 = std::make_shared<QueryEngine>(make_engine(g, /*seed=*/3, /*tau=*/8));
  const std::vector<Query> qs = make_workload(g.num_nodes(), 400, 10);
  const std::vector<QueryResult> exp1 = run_serial(*e1, qs);
  const std::vector<QueryResult> exp2 = run_serial(*e2, qs);
  ASSERT_NE(exp1, exp2);

  QueryServer server(std::shared_ptr<const QueryEngine>(e1),
                     {.workers = 4, .queue_depth = 16});
  EXPECT_EQ(server.engine().get(), e1.get());

  std::vector<QueryServer::Ticket> before;
  for (int i = 0; i < 8; ++i) before.push_back(server.submit(qs).value());
  server.swap_engine(e2);
  EXPECT_EQ(server.engine().get(), e2.get());
  std::vector<QueryServer::Ticket> after;
  for (int i = 0; i < 8; ++i) after.push_back(server.submit(qs).value());

  // Batches in flight across the swap may land on either version, but
  // each one whole: a batch matching neither stream mixed engines.
  for (const auto& t : before) {
    const auto& r = t.wait();
    EXPECT_TRUE(r == exp1 || r == exp2);
  }
  // Batches submitted after swap_engine() returned must see v2 only.
  for (const auto& t : after) EXPECT_EQ(t.wait(), exp2);
}

}  // namespace
}  // namespace gclus::server
