// Unit tests for the CSR Graph, the builder normalization rules, and
// induced subgraphs.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "graph/subgraph.hpp"
#include "test_util.hpp"

namespace gclus {
namespace {

TEST(GraphBuilder, BuildsTriangle) {
  const Graph g = build_graph(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_half_edges(), 6u);
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(g.degree(u), 2u);
  EXPECT_TRUE(g.validate());
}

TEST(GraphBuilder, RemovesSelfLoops) {
  const Graph g = build_graph(3, {{0, 0}, {0, 1}, {1, 1}, {2, 2}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(2, 2));
  EXPECT_TRUE(g.validate());
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  const Graph g = build_graph(2, {{0, 1}, {1, 0}, {0, 1}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphBuilder, SymmetrizesDirectedInput) {
  const Graph g = build_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_TRUE(g.validate());
}

TEST(GraphBuilder, AdjacencyListsAreSorted) {
  const Graph g = build_graph(5, {{4, 0}, {2, 0}, {0, 1}, {3, 0}});
  const auto adj = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(adj.begin(), adj.end()));
  EXPECT_EQ(adj.size(), 4u);
}

TEST(GraphBuilder, IsolatedNodesAllowed) {
  const Graph g = build_graph(10, {{0, 1}});
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.degree(5), 0u);
  EXPECT_TRUE(g.neighbors(5).empty());
}

TEST(GraphBuilder, EmptyGraph) {
  const Graph g = build_graph(4, {});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.validate());
}

TEST(GraphBuilder, IncrementalAddEdges) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edges({{1, 2}, {2, 3}});
  EXPECT_EQ(b.num_pending_edges(), 3u);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphBuilderDeathTest, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(3);
  EXPECT_DEATH(b.add_edge(0, 3), "out of range");
}

TEST(Graph, HasEdgeBinarySearch) {
  const Graph g = gen::grid(5, 5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 5));
  EXPECT_FALSE(g.has_edge(0, 6));   // diagonal
  EXPECT_FALSE(g.has_edge(0, 24));  // opposite corner
}

TEST(Graph, MemoryBytesScalesWithSize) {
  const Graph small = gen::path(10);
  const Graph large = gen::path(1000);
  EXPECT_GT(large.memory_bytes(), small.memory_bytes());
}

TEST(Graph, ValidateCatchesHandCraftedAsymmetry) {
  // CSR with 0 -> 1 but no 1 -> 0: must fail validation.
  std::vector<EdgeId> offsets{0, 1, 1};
  std::vector<NodeId> neighbors{1};
  const Graph g(std::move(offsets), std::move(neighbors));
  EXPECT_FALSE(g.validate());
}

TEST(Graph, ValidateCatchesSelfLoop) {
  std::vector<EdgeId> offsets{0, 1};
  std::vector<NodeId> neighbors{0};
  const Graph g(std::move(offsets), std::move(neighbors));
  EXPECT_FALSE(g.validate());
}

TEST(InducedSubgraph, ExtractsTriangleFromGrid) {
  // Nodes 0,1,5 of a 5x5 grid: edges {0,1} and {0,5} survive, {1,5} absent.
  const Graph g = gen::grid(5, 5);
  const Graph s = induced_subgraph(g, {0, 1, 5});
  EXPECT_EQ(s.num_nodes(), 3u);
  EXPECT_EQ(s.num_edges(), 2u);
  EXPECT_TRUE(s.has_edge(0, 1));
  EXPECT_TRUE(s.has_edge(0, 2));
  EXPECT_FALSE(s.has_edge(1, 2));
}

TEST(InducedSubgraph, FullSubsetIsIdentity) {
  const Graph g = gen::cycle(12);
  std::vector<NodeId> all(12);
  for (NodeId i = 0; i < 12; ++i) all[i] = i;
  const Graph s = induced_subgraph(g, all);
  EXPECT_EQ(s.num_edges(), g.num_edges());
  EXPECT_TRUE(s.validate());
}

TEST(InducedSubgraphDeathTest, RejectsDuplicates) {
  const Graph g = gen::path(5);
  EXPECT_DEATH(induced_subgraph(g, {1, 1}), "duplicate");
}

// Every corpus graph satisfies the full CSR invariant set.
class CorpusGraphTest
    : public ::testing::TestWithParam<testutil::NamedGraph> {};

TEST_P(CorpusGraphTest, SatisfiesInvariants) {
  const Graph& g = GetParam().graph;
  EXPECT_TRUE(g.validate()) << GetParam().name;
  EXPECT_GE(g.num_nodes(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorpusGraphTest,
    ::testing::ValuesIn(testutil::small_connected_corpus()),
    [](const ::testing::TestParamInfo<testutil::NamedGraph>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

}  // namespace
}  // namespace gclus
