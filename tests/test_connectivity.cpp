// Tests for connected components and largest-component extraction.
#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace gclus {
namespace {

TEST(ConnectedComponents, SingleComponent) {
  const Graph g = gen::cycle(10);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 1u);
  EXPECT_EQ(c.sizes[0], 10u);
  for (const NodeId label : c.label) EXPECT_EQ(label, 0u);
}

TEST(ConnectedComponents, TwoComponents) {
  const Graph g = gen::disjoint_union(gen::path(4), gen::cycle(6));
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.sizes[0] + c.sizes[1], 10u);
  EXPECT_NE(c.label[0], c.label[4]);
  EXPECT_EQ(c.label[4], c.label[9]);
}

TEST(ConnectedComponents, IsolatedNodesAreSingletons) {
  const Graph g = build_graph(5, {{0, 1}});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 4u);  // {0,1}, {2}, {3}, {4}
}

TEST(IsConnected, Basics) {
  EXPECT_TRUE(is_connected(gen::path(5)));
  EXPECT_FALSE(is_connected(gen::disjoint_union(gen::path(2), gen::path(2))));
  EXPECT_TRUE(is_connected(build_graph(1, {})));
}

TEST(LargestComponent, PicksTheBiggerSide) {
  const Graph g = gen::disjoint_union(gen::path(3), gen::cycle(8));
  const ExtractedComponent ex = largest_component(g);
  EXPECT_EQ(ex.graph.num_nodes(), 8u);
  EXPECT_EQ(ex.graph.num_edges(), 8u);
  EXPECT_EQ(ex.original_id.size(), 8u);
  // Original ids of the cycle side are 3..10.
  for (const NodeId orig : ex.original_id) EXPECT_GE(orig, 3u);
  EXPECT_TRUE(is_connected(ex.graph));
}

TEST(LargestComponent, ConnectedGraphIsUnchanged) {
  const Graph g = gen::grid(4, 4);
  const ExtractedComponent ex = largest_component(g);
  EXPECT_EQ(ex.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(ex.graph.num_edges(), g.num_edges());
}

TEST(LargestComponent, MappingIsConsistent) {
  const Graph g = gen::disjoint_union(gen::path(2), gen::grid(3, 3));
  const ExtractedComponent ex = largest_component(g);
  // Every edge of the extracted graph exists between the original ids.
  for (NodeId u = 0; u < ex.graph.num_nodes(); ++u) {
    for (const NodeId v : ex.graph.neighbors(u)) {
      EXPECT_TRUE(g.has_edge(ex.original_id[u], ex.original_id[v]));
    }
  }
}

}  // namespace
}  // namespace gclus
