// Tests for the MR implementation of MPX: identical partitions to the
// shared-memory baseline across the corpus, and the staggered-activation
// round profile that motivates Table 2/4.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/mpx.hpp"
#include "graph/generators.hpp"
#include "mr_algos/mr_mpx.hpp"
#include "test_util.hpp"

namespace gclus::mr_algos {
namespace {

class MrMpxEquivalenceTest
    : public ::testing::TestWithParam<testutil::NamedGraph> {};

TEST_P(MrMpxEquivalenceTest, IdenticalPartitionToSharedMemory) {
  const auto& [name, graph] = GetParam();
  const double beta = 0.5;
  const std::uint64_t seed = 7;

  baselines::MpxOptions sopts;
  sopts.seed = seed;
  const Clustering shared = baselines::mpx(graph, beta, sopts);

  mr::Engine engine;
  const MrMpxResult dist = mr_mpx(engine, graph, beta, seed);

  EXPECT_EQ(dist.clustering.assignment, shared.assignment) << name;
  EXPECT_EQ(dist.clustering.dist_to_center, shared.dist_to_center) << name;
  EXPECT_EQ(dist.clustering.centers, shared.centers) << name;
  EXPECT_EQ(dist.clustering.radius, shared.radius) << name;
  EXPECT_TRUE(dist.clustering.validate(graph)) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MrMpxEquivalenceTest,
    ::testing::ValuesIn(testutil::small_connected_corpus()),
    [](const ::testing::TestParamInfo<testutil::NamedGraph>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(MrMpx, MoreRoundsThanClusterRadiusWouldSuggest) {
  // MPX's clock runs for ~max-shift + max-radius steps: the staggered
  // activations serialize growth that CLUSTER performs concurrently.
  const Graph g = gen::grid(40, 40);
  mr::Engine engine;
  const MrMpxResult r = mr_mpx(engine, g, 0.3, 3);
  EXPECT_GE(r.clock_rounds, r.clustering.max_radius());
  EXPECT_GT(r.clock_rounds, 0u);
}

TEST(MrMpx, SmallBetaMeansFewerClustersMoreRounds) {
  const Graph g = gen::grid(40, 40);
  mr::Engine e1, e2;
  const MrMpxResult sparse = mr_mpx(e1, g, 0.05, 5);
  const MrMpxResult dense = mr_mpx(e2, g, 2.0, 5);
  EXPECT_LT(sparse.clustering.num_clusters(),
            dense.clustering.num_clusters());
  EXPECT_GE(sparse.clustering.max_radius(), dense.clustering.max_radius());
}

TEST(MrMpx, DisconnectedSafetyValve) {
  const Graph g = gen::disjoint_union(gen::path(20), gen::grid(5, 5));
  mr::Engine engine;
  const MrMpxResult r = mr_mpx(engine, g, 0.4, 9);
  EXPECT_TRUE(r.clustering.validate(g));
}

TEST(MrMpxDeathTest, RejectsNonPositiveBeta) {
  const Graph g = gen::path(6);
  mr::Engine engine;
  EXPECT_DEATH((void)mr_mpx(engine, g, 0.0, 1), "beta");
}

}  // namespace
}  // namespace gclus::mr_algos
