// The fault-injection capstone: every registered fault point is forced —
// one-shot and persistently — against the four I/O-facing subsystems
// (CSR v2 round-trip, the MR out-of-core shuffle, the dataset cache, the
// oracle artifact sidecar), asserting the process never aborts: each run either returns a clean
// error Status or completes in degraded mode with output byte-identical
// to the fault-free reference.  A header/payload bit-flip sweep covers
// silent on-disk corruption the same way, and an end-to-end mr.cluster
// run pins the degraded-shuffle partition to the fault-free one.
//
// CI greps this binary's "fault points triggered:" line, and the sweep
// asserts every point fired, so neither the sweep nor a single point can
// silently become a no-op.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "api/registry.hpp"
#include "api/run_context.hpp"
#include "common/faultpoint.hpp"
#include "common/status.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mapreduce/engine.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "server/engine.hpp"
#include "server/server.hpp"
#include "test_util.hpp"
#include "workloads/datasets.hpp"

namespace gclus {
namespace {

namespace fs = std::filesystem;

// Installed before main(): the persistent-fault sweeps exhaust retry
// loops hundreds of times and must not sleep through the backoffs.
const bool kFastRetries = [] {
  ::setenv("GCLUS_IO_BACKOFF_US", "0", 1);
  return true;
}();

const std::string& sweep_dir() {
  static const std::string dir = [] {
    const std::string d = ::testing::TempDir() + "gclus_fault_sweep";
    std::error_code ec;
    fs::remove_all(d, ec);
    fs::create_directories(d);
    return d;
  }();
  return dir;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t le64_at(const std::vector<char>& bytes, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[off + i]);
  }
  return v;
}

// --- Scenario 1: CSR v2 write + load round-trip. -----------------------------
// Contract under injection: the write fails cleanly, the load fails
// cleanly, or the loaded graph is byte-identical to what was written.
void run_csr_scenario(const Graph& ref, const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // a stale file must not mask a failed write
  const Status wst = io::write_csr(ref, path);
  if (!wst.ok()) {
    EXPECT_FALSE(wst.message().empty());
    return;
  }
  for (const io::CsrLoadMode mode :
       {io::CsrLoadMode::kAuto, io::CsrLoadMode::kCopy}) {
    io::CsrLoadOptions opts;
    opts.mode = mode;
    const auto loaded = io::load_csr(path, opts);
    if (loaded.ok()) {
      EXPECT_TRUE(testutil::same_csr(*loaded, ref));
    } else {
      EXPECT_FALSE(loaded.status().message().empty());
    }
  }
}

// --- Scenario 2: one spilling MR round. --------------------------------------
using KV = std::pair<std::uint32_t, std::uint64_t>;

std::vector<KV> mr_input() {
  std::vector<KV> input;
  input.reserve(3000);
  for (std::uint64_t i = 0; i < 3000; ++i) {
    input.emplace_back(static_cast<std::uint32_t>(mix64(i) % 13), i);
  }
  return input;
}

StatusOr<std::vector<KV>> run_mr(const std::string& primary,
                                 const std::string& fallback) {
  mr::Config cfg;
  cfg.num_workers = 2;
  cfg.num_partitions = 8;
  cfg.spill_memory_bytes = 1 << 10;  // tiny: every run spills
  cfg.spill_dir = primary;
  cfg.spill_fallback_dir = fallback;
  mr::Engine engine(cfg);
  return engine.try_round_combine<std::uint32_t, std::uint64_t, std::uint32_t,
                                  std::uint64_t>(
      mr_input(),
      [](const std::uint32_t& k, std::span<std::uint64_t> vs,
         mr::Emitter<std::uint32_t, std::uint64_t>& emit) {
        std::uint64_t sum = 0;
        for (const auto v : vs) sum += v;
        emit.emit(k, sum);
      },
      [](const std::uint64_t& a, const std::uint64_t& b) { return a + b; });
}

// --- Scenario 3: the dataset cache. ------------------------------------------
// The cache degrades through every failure (corrupt entry, failed write,
// failed publish): it must always hand back the built graph.
void run_cache_scenario(const std::string& cache_dir, const std::string& key) {
  ::setenv("GCLUS_DATASET_CACHE_DIR", cache_dir.c_str(), 1);
  const Graph ref = gen::grid(12, 12);
  const auto build = [] { return gen::grid(12, 12); };
  EXPECT_TRUE(testutil::same_csr(workloads::cached_graph(key, build), ref));
  // Second call: the hit path (or eviction + rebuild under injection).
  EXPECT_TRUE(testutil::same_csr(workloads::cached_graph(key, build), ref));
  ::unsetenv("GCLUS_DATASET_CACHE_DIR");
}

// --- Scenario 4: the oracle artifact sidecar. --------------------------------
// load_or_build must always hand back a working engine whose answers are
// byte-identical to the fault-free build: a failed or corrupt load is
// evicted and rebuilt, and a failed republish only costs the *next*
// restart its fast path — never the caller its engine.
DistanceOracleOptions artifact_opts() {
  DistanceOracleOptions opts;
  opts.seed = 11;
  opts.tau = 4;
  return opts;
}

std::vector<std::uint64_t> artifact_answers(const server::QueryEngine& e) {
  std::vector<std::uint64_t> out;
  for (NodeId u = 0; u < e.num_nodes(); u += 7) {
    for (NodeId v = 0; v < e.num_nodes(); v += 5) {
      const auto d = e.approx_distance(u, v);
      EXPECT_TRUE(d.ok());
      out.push_back(d.ok() ? *d : ~std::uint64_t{0});
    }
  }
  return out;
}

// --- Scenario 5: the network front end. --------------------------------------
// One full wire round trip (connect, send a query-batch frame, read the
// result frame) under injection.  net.accept drops the freshly accepted
// socket, net.read/net.write fail the frame I/O as transient
// kUnavailable; the client's bounded retry either recovers (one-shot
// faults) with answers byte-identical to the in-process reference, or
// gives up with a clean escalated Status (persistent faults) — the server
// process survives every variant.
std::vector<server::Query> net_queries(NodeId n) {
  std::vector<server::Query> qs;
  for (NodeId u = 0; u < n; ++u) {
    qs.push_back({server::QueryKind::kApproxDistance, u, (u * 7 + 3) % n});
    qs.push_back({server::QueryKind::kSameCluster, u, (u * 5 + 1) % n});
    qs.push_back({server::QueryKind::kClusterNeighborhood, u, 1 + u % 3});
  }
  return qs;
}

void run_net_scenario(net::NetServer& nserver,
                      const std::vector<server::Query>& qs,
                      const std::vector<server::QueryResult>& ref) {
  auto client = net::Client::connect(nserver.port());
  if (!client.ok()) {
    EXPECT_FALSE(client.status().message().empty());
    return;
  }
  const auto got = client->submit(qs);
  if (got.ok()) {
    EXPECT_EQ(*got, ref);
  } else {
    EXPECT_FALSE(got.status().message().empty());
  }
}

void run_artifact_scenario(const Graph& g,
                           const std::vector<std::uint64_t>& ref,
                           const std::string& path) {
  // Two rounds: the first typically rebuilds (no sidecar yet), the second
  // exercises the load path against whatever the first one published.
  for (int round = 0; round < 2; ++round) {
    const auto engine =
        server::QueryEngine::load_or_build(Graph(g), path, artifact_opts());
    ASSERT_TRUE(engine.ok()) << engine.status().to_string();
    EXPECT_EQ(artifact_answers(*engine), ref);
  }
}

TEST(FaultSweep, EveryPointFailsCleanlyOrDegrades) {
  ASSERT_TRUE(kFastRetries);
  fault::disarm_all();
  fault::reset_counters();
  const std::string& base = sweep_dir();
  const Graph csr_ref = gen::ring_of_cliques(6, 5);

  const auto mr_ref = run_mr(base + "/mr-ref-p", base + "/mr-ref-f");
  ASSERT_TRUE(mr_ref.ok()) << mr_ref.status().to_string();

  const auto art_ref_engine =
      server::QueryEngine::build(Graph(csr_ref), artifact_opts());
  ASSERT_TRUE(art_ref_engine.ok()) << art_ref_engine.status().to_string();
  const std::vector<std::uint64_t> art_ref = artifact_answers(*art_ref_engine);

  // One live NetServer shared across the sweep: the same process must keep
  // serving after every injected network failure.
  auto net_engine = std::make_shared<const server::QueryEngine>(
      server::QueryEngine::build(Graph(csr_ref), artifact_opts()).value());
  server::QueryServer net_qserver(net_engine);
  auto nserver = net::NetServer::start(net_qserver);
  ASSERT_TRUE(nserver.ok()) << nserver.status().to_string();
  const std::vector<server::Query> net_qs = net_queries(csr_ref.num_nodes());
  const auto net_ref_ticket = net_qserver.submit(net_qs).value();
  const std::vector<server::QueryResult> net_ref = net_ref_ticket.wait();

  const std::pair<const char*, fault::FaultSpec> modes[] = {
      {"once", fault::FaultSpec::once()},
      {"always", fault::FaultSpec::always()},
  };
  for (const char* name : fault::all_fault_points()) {
    for (const auto& [tag, spec] : modes) {
      SCOPED_TRACE(std::string(name) + ":" + tag);
      const std::string stem = base + "/" + name + "-" + tag;
      fault::arm(name, spec);
      run_csr_scenario(csr_ref, stem + ".csr2");
      const auto mr_out = run_mr(stem + "-p", stem + "-f");
      if (mr_out.ok()) {
        EXPECT_EQ(*mr_out, *mr_ref);
      } else {
        EXPECT_FALSE(mr_out.status().message().empty());
      }
      run_cache_scenario(base + "/cache", std::string("k-") + name + "-" + tag);
      run_artifact_scenario(csr_ref, art_ref, stem + ".orc");
      run_net_scenario(**nserver, net_qs, net_ref);
      fault::disarm_all();
    }
    // The sweep is only a sweep if forcing the point actually reached it.
    EXPECT_GT(fault::trigger_count(name), 0u) << name;
  }

  const auto triggered = fault::triggered_counters();
  EXPECT_EQ(triggered.size(), fault::all_fault_points().size());
  // CI greps for this exact prefix and asserts a nonzero count.
  std::printf("fault points triggered: %zu\n", triggered.size());
}

// End-to-end degradation on a registered algorithm: with the spill
// directory unusable the MR engine keeps the shuffle in memory, and the
// resulting partition must match the fault-free run exactly.
TEST(FaultSweep, MrClusterIsByteIdenticalUnderSpillDegradation) {
  fault::disarm_all();
  const Graph g = gen::ring_of_cliques(24, 16);
  AlgoParams params;
  params.set("tau", "16");
  params.set("spill_bytes", "8192");
  const auto run_once = [&] {
    RunContext ctx;
    ctx.seed = 7;
    return registry().run("mr.cluster", g, params, ctx);
  };

  const Clustering clean = run_once();
  fault::arm("spill.mkdir", fault::FaultSpec::always());
  const Clustering degraded = run_once();
  fault::disarm_all();

  EXPECT_EQ(degraded.assignment, clean.assignment);
  EXPECT_EQ(degraded.centers, clean.centers);
  EXPECT_EQ(degraded.radius, clean.radius);
  EXPECT_EQ(degraded.sizes, clean.sizes);
}

// Flip every header byte and the first 64 payload bytes of a valid CSR v2
// file: each variant must be rejected as kDataLoss / kInvalidArgument —
// never a crash, never a silent success.
TEST(CorruptionSweep, EveryHeaderAndLeadingPayloadByteFlipFailsCleanly) {
  fault::disarm_all();
  const std::string path = sweep_dir() + "/bitflip.csr2";
  const Graph g = gen::grid(10, 10);
  ASSERT_TRUE(io::write_csr(g, path).ok());
  std::vector<char> bytes = slurp(path);
  constexpr std::size_t kHeaderBytes = 72;
  ASSERT_GE(bytes.size(), kHeaderBytes);
  const std::uint64_t offsets_pos = le64_at(bytes, 32);
  ASSERT_LE(offsets_pos + 64, bytes.size());

  std::vector<std::size_t> targets;
  for (std::size_t i = 0; i < kHeaderBytes; ++i) targets.push_back(i);
  for (std::size_t i = 0; i < 64; ++i) {
    targets.push_back(static_cast<std::size_t>(offsets_pos) + i);
  }

  for (const std::size_t off : targets) {
    SCOPED_TRACE("flipped byte " + std::to_string(off));
    bytes[off] = static_cast<char>(bytes[off] ^ 0xFF);
    spit(path, bytes);
    for (const io::CsrLoadMode mode :
         {io::CsrLoadMode::kAuto, io::CsrLoadMode::kCopy}) {
      io::CsrLoadOptions opts;
      opts.mode = mode;
      const auto loaded = io::load_csr(path, opts);
      ASSERT_FALSE(loaded.ok());
      const StatusCode code = loaded.status().code();
      EXPECT_TRUE(code == StatusCode::kDataLoss ||
                  code == StatusCode::kInvalidArgument)
          << loaded.status().to_string();
    }
    bytes[off] = static_cast<char>(bytes[off] ^ 0xFF);
  }

  spit(path, bytes);  // restored: must load again, byte-identical
  const auto restored = io::load_csr(path);
  ASSERT_TRUE(restored.ok()) << restored.status().to_string();
  EXPECT_TRUE(testutil::same_csr(*restored, g));
}

}  // namespace
}  // namespace gclus
