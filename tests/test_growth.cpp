// Tests for the shared synchronous growth engine: BFS equivalence for a
// single cluster, deterministic tie-breaking, priorities, distance
// bookkeeping across staggered activations, and frontier-stall behavior.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/growth.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace gclus {
namespace {

TEST(GrowthState, SingleClusterGrowsLikeBfs) {
  const Graph g = gen::grid(9, 11);
  ThreadPool pool(2);
  GrowthState state(g, pool);
  state.add_center(0);
  while (state.covered_count() < g.num_nodes()) state.step();
  const Clustering c = std::move(state).finish();
  EXPECT_TRUE(c.validate(g));
  const auto bfs = bfs_distances(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(c.dist_to_center[v], bfs[v]) << "node " << v;
    EXPECT_EQ(c.assignment[v], 0u);
  }
  EXPECT_EQ(c.max_radius(), bfs_extremum(g, 0).eccentricity);
}

TEST(GrowthState, TwoCentersSplitPathAtMidpoint) {
  const Graph g = gen::path(11);
  ThreadPool pool(1);
  GrowthState state(g, pool);
  state.add_center(0);
  state.add_center(10);
  while (state.covered_count() < g.num_nodes()) state.step();
  const Clustering c = std::move(state).finish();
  EXPECT_TRUE(c.validate(g));
  // Node 5 is equidistant; the lower cluster id (0) wins the tie.
  EXPECT_EQ(c.assignment[5], 0u);
  EXPECT_EQ(c.assignment[4], 0u);
  EXPECT_EQ(c.assignment[6], 1u);
  EXPECT_EQ(c.radius[0], 5u);
  EXPECT_EQ(c.radius[1], 4u);
}

TEST(GrowthState, PriorityOverridesClusterIdTieBreak) {
  const Graph g = gen::path(11);
  ThreadPool pool(1);
  GrowthState state(g, pool);
  state.add_center(0, /*priority=*/9);  // cluster 0, low precedence
  state.add_center(10, /*priority=*/1); // cluster 1, high precedence
  while (state.covered_count() < g.num_nodes()) state.step();
  const Clustering c = std::move(state).finish();
  // Now the tie at node 5 goes to cluster 1.
  EXPECT_EQ(c.assignment[5], 1u);
}

TEST(GrowthState, StaggeredActivationDistances) {
  // Center 0 activates at step 0; center 10 joins after two steps.  Its
  // members' distances must be relative to its own activation.
  const Graph g = gen::path(20);
  ThreadPool pool(1);
  GrowthState state(g, pool);
  state.add_center(0);
  state.step();
  state.step();
  state.add_center(19);
  while (state.covered_count() < g.num_nodes()) state.step();
  const Clustering c = std::move(state).finish();
  EXPECT_TRUE(c.validate(g));
  EXPECT_EQ(c.dist_to_center[19], 0u);
  EXPECT_EQ(c.dist_to_center[18], 1u);
  EXPECT_EQ(c.assignment[18], c.assignment[19]);
}

// The direction-optimizing engine must be a pure function of (graph,
// centers, priorities): push-only, pull-only, and hybrid sweeps across
// thread counts all have to produce byte-identical partitions.
TEST(GrowthState, TraversalModesProduceIdenticalPartitions) {
  const auto corpus = testutil::small_connected_corpus();
  for (const auto& [name, g] : corpus) {
    auto run = [&g = g](TraversalMode mode, std::size_t threads) {
      ThreadPool pool(threads);
      GrowthOptions opts;
      opts.mode = mode;
      GrowthState state(g, pool, opts);
      const NodeId n = g.num_nodes();
      state.add_center(0);
      if (n > 2) state.add_center(n / 2, /*priority=*/3);
      if (n > 3) state.add_center(n - 1, /*priority=*/1);
      while (state.covered_count() < n) {
        if (state.frontier_empty()) state.add_singletons_for_uncovered();
        state.step();
      }
      return std::move(state).finish();
    };
    const Clustering base = run(TraversalMode::kPushOnly, 1);
    EXPECT_TRUE(base.validate(g)) << name;
    for (const TraversalMode mode :
         {TraversalMode::kPushOnly, TraversalMode::kPullOnly,
          TraversalMode::kAuto}) {
      for (const std::size_t threads : {1u, 2u, 8u}) {
        const Clustering c = run(mode, threads);
        EXPECT_EQ(base.assignment, c.assignment)
            << name << " mode=" << traversal_mode_name(mode)
            << " threads=" << threads;
        EXPECT_EQ(base.dist_to_center, c.dist_to_center)
            << name << " mode=" << traversal_mode_name(mode)
            << " threads=" << threads;
        EXPECT_EQ(base.radius, c.radius)
            << name << " mode=" << traversal_mode_name(mode)
            << " threads=" << threads;
        EXPECT_EQ(base.centers, c.centers) << name;
      }
    }
  }
}

TEST(GrowthState, ModesAgreeWithStaggeredActivation) {
  // Centers joining mid-growth (CLUSTER's batch pattern) must not break
  // push/pull equivalence: distances stay relative to each activation.
  const Graph g = gen::expander_with_path(600, 80, 4, 13);
  auto run = [&](TraversalMode mode) {
    ThreadPool pool(2);
    GrowthOptions opts;
    opts.mode = mode;
    GrowthState state(g, pool, opts);
    state.add_center(0);
    state.grow_steps(2);
    state.add_center(state.first_uncovered(), /*priority=*/2);
    state.grow_steps(3);
    if (NodeId v = state.first_uncovered(); v != kInvalidNode) {
      state.add_center(v);
    }
    while (state.covered_count() < g.num_nodes()) {
      if (state.frontier_empty()) state.add_singletons_for_uncovered();
      state.step();
    }
    return std::move(state).finish();
  };
  const Clustering push = run(TraversalMode::kPushOnly);
  const Clustering pull = run(TraversalMode::kPullOnly);
  const Clustering hybrid = run(TraversalMode::kAuto);
  EXPECT_TRUE(push.validate(g));
  EXPECT_EQ(push.assignment, pull.assignment);
  EXPECT_EQ(push.dist_to_center, pull.dist_to_center);
  EXPECT_EQ(push.assignment, hybrid.assignment);
  EXPECT_EQ(push.dist_to_center, hybrid.dist_to_center);
}

TEST(GrowthState, StatsSplitStepsByDirection) {
  const Graph g = gen::expander(512, 4, 11);
  ThreadPool pool(2);
  GrowthOptions opts;
  opts.mode = TraversalMode::kPullOnly;
  opts.record_step_log = true;
  GrowthState state(g, pool, opts);
  state.add_center(0);
  state.grow_steps(100);
  EXPECT_EQ(state.stats().pull_steps, state.steps_executed());
  EXPECT_EQ(state.stats().push_steps, 0u);
  EXPECT_EQ(state.stats().steps.size(), state.steps_executed());
  for (const GrowthStepLog& log : state.stats().steps) {
    EXPECT_TRUE(log.pull);
    EXPECT_GT(log.frontier_size, 0u);
  }
}

TEST(GrowthState, FirstUncoveredMatchesLinearScan) {
  const Graph g = gen::grid(20, 20);
  ThreadPool pool(2);
  GrowthState state(g, pool);
  state.add_center(0);
  for (int i = 0; i < 5; ++i) {
    state.step();
    NodeId expected = kInvalidNode;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!state.is_covered(v)) {
        expected = v;
        break;
      }
    }
    EXPECT_EQ(state.first_uncovered(), expected);
  }
}

TEST(GrowthState, UncoveredCandidatesIsAscendingSuperset) {
  const Graph g = gen::road_like(25, 25, 0.08, 0.02, 3);
  ThreadPool pool(4);
  GrowthState state(g, pool);
  state.add_center(0);
  state.grow_until_covered(g.num_nodes() / 2);
  const auto& candidates = state.uncovered_candidates();
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
  std::size_t uncovered_in_candidates = 0;
  for (const NodeId v : candidates) {
    if (!state.is_covered(v)) ++uncovered_in_candidates;
  }
  EXPECT_EQ(uncovered_in_candidates, state.uncovered_count());
}

TEST(GrowthState, DeterministicAcrossThreadCounts) {
  const Graph g = gen::road_like(25, 25, 0.08, 0.02, 3);
  auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    GrowthState state(g, pool);
    state.add_center(0);
    state.add_center(g.num_nodes() / 2);
    state.add_center(g.num_nodes() - 1);
    while (state.covered_count() < g.num_nodes()) {
      if (state.frontier_empty()) state.add_singletons_for_uncovered();
      state.step();
    }
    return std::move(state).finish();
  };
  const Clustering a = run(1);
  const Clustering b = run(4);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.dist_to_center, b.dist_to_center);
  EXPECT_EQ(a.radius, b.radius);
}

TEST(GrowthState, GrowStepsStopsEarlyOnEmptyFrontier) {
  const Graph g = gen::path(5);
  ThreadPool pool(1);
  GrowthState state(g, pool);
  state.add_center(2);
  const NodeId covered = state.grow_steps(100);
  EXPECT_EQ(covered, 4u);  // everything except the center
  EXPECT_TRUE(state.frontier_empty());
  EXPECT_LE(state.steps_executed(), 3u);
}

TEST(GrowthState, GrowUntilCoveredReachesTarget) {
  const Graph g = gen::grid(20, 20);
  ThreadPool pool(2);
  GrowthState state(g, pool);
  state.add_center(0);
  const NodeId covered = state.grow_until_covered(150);
  EXPECT_GE(covered, 150u);
  EXPECT_LT(state.covered_count(), g.num_nodes());
}

TEST(GrowthState, FrontierStallsOnDisconnectedGraph) {
  const Graph g = gen::disjoint_union(gen::path(6), gen::path(6));
  ThreadPool pool(1);
  GrowthState state(g, pool);
  state.add_center(0);
  state.grow_steps(100);
  EXPECT_EQ(state.covered_count(), 6u);  // only the first component
  EXPECT_TRUE(state.frontier_empty());
  state.add_center(6);
  state.grow_steps(100);
  EXPECT_EQ(state.covered_count(), 12u);
}

TEST(GrowthState, SingletonsForUncovered) {
  const Graph g = gen::path(6);
  ThreadPool pool(1);
  GrowthState state(g, pool);
  state.add_center(0);
  state.step();  // covers node 1
  state.add_singletons_for_uncovered();
  EXPECT_EQ(state.covered_count(), 6u);
  const Clustering c = std::move(state).finish();
  EXPECT_TRUE(c.validate(g));
  EXPECT_EQ(c.num_clusters(), 5u);  // {0,1} plus four singletons
  EXPECT_EQ(c.sizes[0], 2u);
}

TEST(GrowthStateDeathTest, CenterOnCoveredNodeRejected) {
  const Graph g = gen::path(4);
  ThreadPool pool(1);
  GrowthState state(g, pool);
  state.add_center(0);
  EXPECT_DEATH(state.add_center(0), "already covered");
}

TEST(GrowthStateDeathTest, FinishRequiresFullCoverage) {
  const Graph g = gen::path(4);
  ThreadPool pool(1);
  GrowthState state(g, pool);
  state.add_center(0);
  EXPECT_DEATH((void)std::move(state).finish(), "full coverage");
}

TEST(ClusteringValidate, DetectsCorruptedAssignment) {
  const Graph g = gen::path(6);
  ThreadPool pool(1);
  GrowthState state(g, pool);
  state.add_center(0);
  state.grow_steps(100);
  Clustering c = std::move(state).finish();
  EXPECT_TRUE(c.validate(g));
  // Break the claim-chain: distance jumps by 2.
  c.dist_to_center[3] = 5;
  EXPECT_FALSE(c.validate(g));
}

TEST(ClusteringValidate, DetectsWrongRadius) {
  const Graph g = gen::path(6);
  ThreadPool pool(1);
  GrowthState state(g, pool);
  state.add_center(0);
  state.grow_steps(100);
  Clustering c = std::move(state).finish();
  c.radius[0] = 1;  // true radius is 5
  EXPECT_FALSE(c.validate(g));
}

}  // namespace
}  // namespace gclus
