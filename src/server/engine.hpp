// QueryEngine — the embeddable half of the decomposition query service.
//
// One engine = one immutable (graph, oracle artifact) pair.  The graph is
// typically an mmap-backed CSR v2 load and the artifact either a fresh
// decomposition (build) or an mmap-ed sidecar (load) — both read-only, so
// any number of threads may query one engine concurrently with no
// synchronization.  Per-query scratch lives in QueryScratch: one instance
// per worker thread, the same ownership discipline as api/workspace.hpp.
//
// Query errors follow the PR 6 taxonomy: out-of-range node ids are
// kInvalidArgument (the request is wrong, the server is fine); nothing in
// the query path aborts.  Answers are pure functions of the artifact
// payload, so two engines over byte-identical artifacts — e.g. a fresh
// build and a restart that mmap-loaded what the build published — return
// byte-identical results for every query.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/distance_oracle.hpp"
#include "graph/graph.hpp"
#include "server/artifact.hpp"

namespace gclus::server {

/// Reusable per-worker scratch for cluster_neighborhood's quotient BFS.
/// Epoch-stamped visit marks: reset is O(1) per query, the arrays are
/// sized to the cluster count on first use and never shrink.
struct QueryScratch {
  std::vector<std::uint32_t> mark;
  std::uint32_t epoch = 0;
  std::vector<ClusterId> frontier;
  std::vector<ClusterId> next;
};

class QueryEngine {
 public:
  /// How load_or_build obtained its engine — the observability the
  /// restart path and the fault sweep assert on.
  struct LoadReport {
    bool loaded_from_artifact = false;  ///< served straight from the sidecar
    bool evicted_corrupt = false;       ///< removed a corrupt sidecar
    bool rebuilt = false;               ///< ran the decomposition
    bool republished = false;           ///< rewrote the sidecar after rebuild
  };

  /// Runs the decomposition on `g` and serves from the result.
  /// kInvalidArgument when `g` is empty or not connected (the oracle's
  /// APSP backend needs every cluster pair reachable).
  [[nodiscard]] static StatusOr<QueryEngine> build(
      Graph g, const DistanceOracleOptions& opts = {});

  /// Serves from an already-loaded artifact; validates it matches `g`.
  [[nodiscard]] static StatusOr<QueryEngine> from_artifact(Graph g,
                                                           OracleArtifact a);

  /// Loads the sidecar at `path` (mmap-fast, checksum-validated) and
  /// serves from it.  Fails rather than rebuilding — the restart path
  /// callers use to *guarantee* no decomposition ran.
  [[nodiscard]] static StatusOr<QueryEngine> load(
      Graph g, const std::string& path,
      const ArtifactLoadOptions& opts = {});

  /// The resilient entry point: load `path`; on a corrupt sidecar
  /// (kDataLoss / kInvalidArgument) evict it, rebuild from `g`, and
  /// republish best-effort — the dataset-cache evict+regenerate
  /// discipline.  Only an unbuildable graph fails.
  [[nodiscard]] static StatusOr<QueryEngine> load_or_build(
      Graph g, const std::string& path, const DistanceOracleOptions& opts = {},
      LoadReport* report = nullptr);

  /// Publishes this engine's artifact to `path` (atomic, fsync-ed).
  [[nodiscard]] Status save(const std::string& path) const;

  // ---- queries --------------------------------------------------------------

  /// Upper bound on dist(u, v): dist(u, ctr(u)) + apsp + dist(v, ctr(v)),
  /// exact 0 for u == v.  kInvalidArgument on out-of-range ids.
  [[nodiscard]] StatusOr<std::uint64_t> approx_distance(NodeId u,
                                                        NodeId v) const;

  /// Whether u and v landed in the same cluster of the decomposition.
  [[nodiscard]] StatusOr<bool> same_cluster(NodeId u, NodeId v) const;

  /// All clusters within `hops` quotient-graph hops of u's cluster
  /// (including it), ascending — deterministic regardless of traversal
  /// order.  `out` is cleared and filled; scratch must not be shared
  /// across concurrent calls.
  [[nodiscard]] Status cluster_neighborhood(NodeId u, std::uint32_t hops,
                                            QueryScratch& scratch,
                                            std::vector<ClusterId>& out) const;

  /// Allocating convenience wrapper for one-shot callers.
  [[nodiscard]] StatusOr<std::vector<ClusterId>> cluster_neighborhood(
      NodeId u, std::uint32_t hops) const;

  // ---- introspection --------------------------------------------------------

  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] const OracleArtifact& artifact() const { return artifact_; }
  [[nodiscard]] NodeId num_nodes() const { return graph_.num_nodes(); }
  [[nodiscard]] ClusterId num_clusters() const {
    return static_cast<ClusterId>(artifact_.meta.num_clusters);
  }
  [[nodiscard]] Dist max_radius() const { return artifact_.meta.max_radius; }
  /// True when the artifact came from a sidecar file (mmap or copy), i.e.
  /// this engine never ran the decomposition.
  [[nodiscard]] bool loaded_from_artifact() const {
    return loaded_from_artifact_;
  }

 private:
  QueryEngine(Graph g, OracleArtifact a, bool loaded)
      : graph_(std::move(g)),
        artifact_(std::move(a)),
        loaded_from_artifact_(loaded) {}

  [[nodiscard]] Status check_node(NodeId u) const;

  Graph graph_;
  OracleArtifact artifact_;
  bool loaded_from_artifact_ = false;
};

}  // namespace gclus::server
