#include "server/server.hpp"

#include <atomic>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/parse.hpp"
#include "common/rng.hpp"

namespace gclus::server {

QueryResult execute_query(const QueryEngine& engine, const Query& q,
                          QueryScratch& scratch,
                          std::vector<ClusterId>& neighborhood_buf) {
  switch (q.kind) {
    case QueryKind::kApproxDistance: {
      const auto r = engine.approx_distance(q.u, q.arg);
      if (!r.ok()) return {r.status().code(), 0};
      return {StatusCode::kOk, *r};
    }
    case QueryKind::kSameCluster: {
      const auto r = engine.same_cluster(q.u, q.arg);
      if (!r.ok()) return {r.status().code(), 0};
      return {StatusCode::kOk, *r ? std::uint64_t{1} : std::uint64_t{0}};
    }
    case QueryKind::kClusterNeighborhood: {
      const Status st =
          engine.cluster_neighborhood(q.u, q.arg, scratch, neighborhood_buf);
      if (!st.ok()) return {st.code(), 0};
      // Digest the sorted list so the result stays one fixed-width word;
      // folding the size in distinguishes e.g. {0} from {0, 0-prefix}.
      std::uint64_t h = neighborhood_buf.size();
      for (const ClusterId c : neighborhood_buf) h = hash_combine(h, c);
      return {StatusCode::kOk, h};
    }
  }
  // An unknown kind byte is a malformed request, not a server failure.
  return {StatusCode::kInvalidArgument, 0};
}

QueryServer::QueryServer(const QueryEngine& engine, ServerOptions opts)
    // Aliasing shared_ptr with no owner: the historical non-owning
    // contract (engine outlives the server), expressed in the type the
    // swap seam needs.
    : QueryServer(std::shared_ptr<const QueryEngine>(
                      std::shared_ptr<const void>(), &engine),
                  opts) {}

QueryServer::QueryServer(std::shared_ptr<const QueryEngine> engine,
                         ServerOptions opts)
    : engine_(std::move(engine)) {
  GCLUS_CHECK(engine_ != nullptr, "QueryServer needs an engine");
  const std::size_t workers =
      opts.workers != 0
          ? opts.workers
          : static_cast<std::size_t>(env_u64("GCLUS_SERVER_WORKERS", 4, 1));
  queue_depth_ =
      opts.queue_depth != 0
          ? opts.queue_depth
          : static_cast<std::size_t>(env_u64("GCLUS_SERVER_QUEUE_DEPTH", 128,
                                             1));
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

QueryServer::~QueryServer() { shutdown(); }

const std::vector<QueryResult>& QueryServer::Ticket::wait() const {
  std::unique_lock<std::mutex> lock(batch_->mu);
  batch_->cv.wait(lock, [&] { return batch_->done; });
  return batch_->results;
}

double QueryServer::Ticket::latency_s() const {
  // completed_at is written by the worker under batch_->mu; reading it
  // unlocked before done would be a data race yielding a garbage value.
  std::unique_lock<std::mutex> lock(batch_->mu);
  if (!batch_->done) return -1.0;
  return std::chrono::duration<double>(batch_->completed_at -
                                       batch_->enqueued_at)
      .count();
}

QueryServer::Ticket QueryServer::enqueue_locked(
    std::unique_lock<std::mutex>& lock, std::vector<Query> queries) {
  auto batch = std::make_shared<Batch>();
  batch->queries = std::move(queries);
  batch->enqueued_at = std::chrono::steady_clock::now();
  queue_.push_back(batch);
  lock.unlock();
  not_empty_.notify_one();
  return Ticket(std::move(batch));
}

StatusOr<QueryServer::Ticket> QueryServer::try_submit(
    std::vector<Query> queries) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) {
    return UnavailableError("query server is shut down");
  }
  if (queue_.size() >= queue_depth_) {
    shed_batches_.fetch_add(1, std::memory_order_relaxed);
    shed_queries_.fetch_add(queries.size(), std::memory_order_relaxed);
    return ResourceExhaustedError(
        "query server overloaded: " + std::to_string(queue_.size()) +
        " batches queued (depth " + std::to_string(queue_depth_) + ")");
  }
  return enqueue_locked(lock, std::move(queries));
}

StatusOr<QueryServer::Ticket> QueryServer::submit(std::vector<Query> queries) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] { return stop_ || queue_.size() < queue_depth_; });
  if (stop_) {
    // Losing the race with shutdown() is an ordinary event during a
    // graceful drain — every remote client still writing when SIGTERM
    // lands takes this path — so it must be a propagated refusal, never
    // an abort.
    return UnavailableError("query server is shutting down");
  }
  return enqueue_locked(lock, std::move(queries));
}

void QueryServer::swap_engine(std::shared_ptr<const QueryEngine> engine) {
  GCLUS_CHECK(engine != nullptr, "swap_engine needs an engine");
  std::unique_lock<std::mutex> lock(mu_);
  engine_ = std::move(engine);
}

std::shared_ptr<const QueryEngine> QueryServer::engine() const {
  std::unique_lock<std::mutex> lock(mu_);
  return engine_;
}

void QueryServer::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void QueryServer::worker_loop() {
  QueryScratch scratch;
  std::vector<ClusterId> neighborhood_buf;
  for (;;) {
    std::shared_ptr<Batch> batch;
    std::shared_ptr<const QueryEngine> engine;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and fully drained
      batch = std::move(queue_.front());
      queue_.pop_front();
      // Pin the engine for this whole batch: a concurrent swap_engine()
      // affects later batches only, so no batch mixes artifact versions.
      engine = engine_;
    }
    not_full_.notify_one();

    Batch& b = *batch;
    b.results.resize(b.queries.size());
    std::uint64_t invalid = 0;
    for (std::size_t i = 0; i < b.queries.size(); ++i) {
      b.results[i] =
          execute_query(*engine, b.queries[i], scratch, neighborhood_buf);
      if (b.results[i].code != StatusCode::kOk) ++invalid;
    }
    queries_served_.fetch_add(b.queries.size(), std::memory_order_relaxed);
    batches_served_.fetch_add(1, std::memory_order_relaxed);
    if (invalid > 0) {
      invalid_queries_.fetch_add(invalid, std::memory_order_relaxed);
    }
    {
      std::unique_lock<std::mutex> lock(b.mu);
      b.completed_at = std::chrono::steady_clock::now();
      b.done = true;
    }
    b.cv.notify_all();
  }
}

ServerStats QueryServer::stats() const {
  ServerStats s;
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.batches_served = batches_served_.load(std::memory_order_relaxed);
  s.invalid_queries = invalid_queries_.load(std::memory_order_relaxed);
  s.shed_batches = shed_batches_.load(std::memory_order_relaxed);
  s.shed_queries = shed_queries_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace gclus::server
