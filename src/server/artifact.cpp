#include "server/artifact.hpp"

#include <array>
#include <atomic>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define GCLUS_ARTIFACT_HAS_FSYNC 1
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/faultpoint.hpp"
#include "graph/io.hpp"
#include "graph/wire.hpp"

namespace gclus::server {

namespace {

using namespace io::wire;

namespace fs = std::filesystem;

// Bytes "GCLUSORC" when stored little-endian.
constexpr std::uint64_t kOrcMagic = 0x43524F53554C4347ULL;
constexpr std::uint32_t kOrcVersion = 1;
constexpr std::uint64_t kOrcHeaderBytes = 144;
/// Header bytes under the checksum: everything before the checksum field.
constexpr std::uint64_t kOrcChecksumCoverBytes = 128;
constexpr std::uint64_t kOrcAlign = 64;

/// Byte positions of the seven payload sections.
struct SectionLayout {
  std::uint64_t labels_pos = 0;
  std::uint64_t dist_pos = 0;
  std::uint64_t centers_pos = 0;
  std::uint64_t qoffsets_pos = 0;
  std::uint64_t qneighbors_pos = 0;
  std::uint64_t qweights_pos = 0;
  std::uint64_t apsp_pos = 0;
};

SectionLayout layout_for(const OracleArtifactMeta& m) {
  const std::uint64_t n = m.graph_num_nodes;
  const std::uint64_t k = m.num_clusters;
  const std::uint64_t qm = m.quotient_num_half_edges;
  SectionLayout p;
  p.labels_pos = align_up(kOrcHeaderBytes, kOrcAlign);
  p.dist_pos = align_up(p.labels_pos + n * 4, kOrcAlign);
  p.centers_pos = align_up(p.dist_pos + n * 4, kOrcAlign);
  p.qoffsets_pos = align_up(p.centers_pos + k * 4, kOrcAlign);
  p.qneighbors_pos = align_up(p.qoffsets_pos + (k + 1) * 8, kOrcAlign);
  p.qweights_pos = align_up(p.qneighbors_pos + qm * 4, kOrcAlign);
  p.apsp_pos = align_up(p.qweights_pos + qm * 8, kOrcAlign);
  return p;
}

/// Continues an FNV-1a stream over the payload sections in file order.
/// The full artifact checksum is fnv over header bytes [0, 128) — every
/// metadata field, so a bit flip anywhere in the header is detected, not
/// only in fields the parser can cross-check — followed by this.
std::uint64_t payload_checksum(std::uint64_t h, const OracleArtifact& a) {
  h = fnv1a_array_le(h, a.cluster_of.data(), a.cluster_of.size());
  h = fnv1a_array_le(h, a.dist_to_center.data(), a.dist_to_center.size());
  h = fnv1a_array_le(h, a.centers.data(), a.centers.size());
  h = fnv1a_array_le(h, a.quotient_offsets.data(), a.quotient_offsets.size());
  h = fnv1a_array_le(h, a.quotient_neighbors.data(),
                     a.quotient_neighbors.size());
  h = fnv1a_array_le(h, a.quotient_weights.data(), a.quotient_weights.size());
  h = fnv1a_array_le(h, a.apsp.data(), a.apsp.size());
  return h;
}

/// The payload vectors an owned (built or copy-loaded) artifact views.
struct OwnedPayload {
  std::vector<ClusterId> cluster_of;
  std::vector<Dist> dist_to_center;
  std::vector<NodeId> centers;
  std::vector<EdgeId> quotient_offsets;
  std::vector<ClusterId> quotient_neighbors;
  std::vector<Weight> quotient_weights;
  std::vector<Weight> apsp;
};

OracleArtifact artifact_from_owned(OracleArtifactMeta meta,
                                   std::shared_ptr<OwnedPayload> owned) {
  OracleArtifact a;
  a.meta = meta;
  a.cluster_of = owned->cluster_of;
  a.dist_to_center = owned->dist_to_center;
  a.centers = owned->centers;
  a.quotient_offsets = owned->quotient_offsets;
  a.quotient_neighbors = owned->quotient_neighbors;
  a.quotient_weights = owned->quotient_weights;
  a.apsp = owned->apsp;
  a.mapped = false;
  a.storage = std::move(owned);
  return a;
}

/// Distinct per process and per call, so concurrent builders never collide
/// on the temp file they publish from (the dataset-cache discipline).
std::string unique_tmp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t salt = std::random_device{}();
  return std::to_string(salt) + "-" + std::to_string(counter.fetch_add(1));
}

/// fsyncs one path (a file, or with `directory` its parent directory
/// entry).  On platforms without fsync this is a no-op success — the
/// publish is still atomic, just not crash-durable.
bool sync_path(const std::string& path, bool directory) {
#ifdef GCLUS_ARTIFACT_HAS_FSYNC
  const int fd = ::open(path.c_str(), directory ? O_RDONLY : O_WRONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  (void)directory;
  return true;
#endif
}

/// Serializes `a` to `path` in one pass (no atomicity — the caller
/// publishes the temp file this writes).
Status write_artifact_bytes(const OracleArtifact& a, const std::string& path) {
  const OracleArtifactMeta& m = a.meta;
  const SectionLayout p = layout_for(m);

  // Assemble the header in memory: the checksum covers its first 128
  // bytes, so they must exist before the checksum can be computed.
  std::array<std::byte, kOrcHeaderBytes> header{};
  store_le_at(header.data() + 0, kOrcMagic);
  store_le_at(header.data() + 8, kOrcVersion);
  store_le_at(header.data() + 12, std::uint32_t{0});  // flags
  store_le_at(header.data() + 16, m.graph_num_nodes);
  store_le_at(header.data() + 24, m.graph_num_half_edges);
  store_le_at(header.data() + 32, m.num_clusters);
  store_le_at(header.data() + 40, m.quotient_num_half_edges);
  store_le_at(header.data() + 48, m.build_seed);
  store_le_at(header.data() + 56, m.tau);
  store_le_at(header.data() + 60, std::uint32_t{m.use_cluster2 ? 1u : 0u});
  store_le_at(header.data() + 64, m.max_radius);
  store_le_at(header.data() + 68, std::uint32_t{0});  // padding
  store_le_at(header.data() + 72, p.labels_pos);
  store_le_at(header.data() + 80, p.dist_pos);
  store_le_at(header.data() + 88, p.centers_pos);
  store_le_at(header.data() + 96, p.qoffsets_pos);
  store_le_at(header.data() + 104, p.qneighbors_pos);
  store_le_at(header.data() + 112, p.qweights_pos);
  store_le_at(header.data() + 120, p.apsp_pos);
  const std::uint64_t checksum = payload_checksum(
      fnv1a(kFnvOffsetBasis, header.data(), kOrcChecksumCoverBytes), a);
  store_le_at(header.data() + 128, checksum);
  store_le_at(header.data() + 136, std::uint64_t{0});  // reserved

  std::ofstream out(path, std::ios::binary);
  if (GCLUS_FAULTPOINT("artifact.write") || !out.good()) {
    return IoError("cannot open artifact for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(header.data()), header.size());

  std::uint64_t pos = kOrcHeaderBytes;
  const auto section = [&](std::uint64_t target, const auto* data,
                           std::uint64_t count) {
    write_zeros(out, target - pos);
    write_array_le(out, data, count);
    pos = target + count * sizeof(*data);
  };
  section(p.labels_pos, a.cluster_of.data(), a.cluster_of.size());
  section(p.dist_pos, a.dist_to_center.data(), a.dist_to_center.size());
  section(p.centers_pos, a.centers.data(), a.centers.size());
  section(p.qoffsets_pos, a.quotient_offsets.data(),
          a.quotient_offsets.size());
  section(p.qneighbors_pos, a.quotient_neighbors.data(),
          a.quotient_neighbors.size());
  section(p.qweights_pos, a.quotient_weights.data(),
          a.quotient_weights.size());
  section(p.apsp_pos, a.apsp.data(), a.apsp.size());
  if (!out.good()) {
    return IoError("artifact write failed (disk full or I/O error): " + path);
  }
  return OkStatus();
}

/// Parses and bounds-checks the header against the buffer size.
/// kInvalidArgument: the bytes don't claim to be a supported artifact;
/// kDataLoss: they do, but the structure is inconsistent.  Bounds are
/// overflow-safe: divide before multiply, and every section-end position
/// is only computed after its element count was bounded by the file size.
Status parse_header(const std::byte* data, std::uint64_t size,
                    OracleArtifactMeta& m, SectionLayout& p) {
  if (size < 8 || read_le_at<std::uint64_t>(data) != kOrcMagic) {
    return InvalidArgumentError("not a gclus oracle artifact (bad magic)");
  }
  if (size < kOrcHeaderBytes) {
    return DataLossError("file shorter than an artifact header");
  }
  if (read_le_at<std::uint32_t>(data + 8) != kOrcVersion) {
    return InvalidArgumentError("unsupported artifact version");
  }
  if (read_le_at<std::uint32_t>(data + 12) != 0) {
    return InvalidArgumentError("unknown artifact flags");
  }
  m.graph_num_nodes = read_le_at<std::uint64_t>(data + 16);
  m.graph_num_half_edges = read_le_at<std::uint64_t>(data + 24);
  m.num_clusters = read_le_at<std::uint64_t>(data + 32);
  m.quotient_num_half_edges = read_le_at<std::uint64_t>(data + 40);
  m.build_seed = read_le_at<std::uint64_t>(data + 48);
  m.tau = read_le_at<std::uint32_t>(data + 56);
  const std::uint32_t use_cluster2 = read_le_at<std::uint32_t>(data + 60);
  m.max_radius = read_le_at<std::uint32_t>(data + 64);
  // The padding and reserved fields are not covered by the payload
  // checksum, so a flipped bit there would otherwise load silently.
  if (read_le_at<std::uint32_t>(data + 68) != 0) {
    return InvalidArgumentError("nonzero artifact header padding");
  }
  p.labels_pos = read_le_at<std::uint64_t>(data + 72);
  p.dist_pos = read_le_at<std::uint64_t>(data + 80);
  p.centers_pos = read_le_at<std::uint64_t>(data + 88);
  p.qoffsets_pos = read_le_at<std::uint64_t>(data + 96);
  p.qneighbors_pos = read_le_at<std::uint64_t>(data + 104);
  p.qweights_pos = read_le_at<std::uint64_t>(data + 112);
  p.apsp_pos = read_le_at<std::uint64_t>(data + 120);
  if (read_le_at<std::uint64_t>(data + 136) != 0) {
    return InvalidArgumentError("nonzero reserved artifact header field");
  }

  if (use_cluster2 > 1) {
    return DataLossError("corrupt artifact header (use_cluster2 flag)");
  }
  m.use_cluster2 = use_cluster2 == 1;
  if (m.graph_num_nodes == 0 ||
      m.graph_num_nodes > std::numeric_limits<NodeId>::max()) {
    return DataLossError("artifact node count out of NodeId range");
  }
  if (m.num_clusters == 0 || m.num_clusters > m.graph_num_nodes) {
    return DataLossError("artifact cluster count out of range");
  }
  if (m.tau == 0) {
    return DataLossError("corrupt artifact header (zero tau)");
  }

  const std::uint64_t n = m.graph_num_nodes;
  const std::uint64_t k = m.num_clusters;
  const std::uint64_t qm = m.quotient_num_half_edges;
  const auto section_ok = [size](std::uint64_t pos, std::uint64_t prev_end,
                                 std::uint64_t count, std::uint64_t width) {
    return pos >= prev_end && pos % kOrcAlign == 0 && pos <= size &&
           count <= (size - pos) / width;
  };
  if (!section_ok(p.labels_pos, kOrcHeaderBytes, n, 4) ||
      !section_ok(p.dist_pos, p.labels_pos + n * 4, n, 4) ||
      !section_ok(p.centers_pos, p.dist_pos + n * 4, k, 4) ||
      !section_ok(p.qoffsets_pos, p.centers_pos + k * 4, k + 1, 8) ||
      !section_ok(p.qneighbors_pos, p.qoffsets_pos + (k + 1) * 8, qm, 4) ||
      !section_ok(p.qweights_pos, p.qneighbors_pos + qm * 4, qm, 8) ||
      !section_ok(p.apsp_pos, p.qweights_pos + qm * 8, k * k, 8)) {
    return DataLossError("truncated artifact (section out of bounds)");
  }
  return OkStatus();
}

/// Structural validation of the decoded sections: every index a query
/// will ever compute stays in range.  Guards the serving path against
/// corrupted-but-checksum-consistent (e.g. maliciously crafted) files.
Status validate_artifact_arrays(const OracleArtifact& a) {
  const std::uint64_t k = a.meta.num_clusters;
  const std::uint64_t n = a.meta.graph_num_nodes;
  for (const ClusterId c : a.cluster_of) {
    if (c >= k) {
      return DataLossError("corrupt artifact (cluster label out of range)");
    }
  }
  for (std::size_t c = 0; c < a.centers.size(); ++c) {
    const NodeId ctr = a.centers[c];
    if (ctr >= n || a.cluster_of[ctr] != c || a.dist_to_center[ctr] != 0) {
      return DataLossError("corrupt artifact (center labels inconsistent)");
    }
  }
  const auto& off = a.quotient_offsets;
  if (off.empty() || off.front() != 0 ||
      off.back() != a.quotient_neighbors.size()) {
    return DataLossError("corrupt artifact (quotient offset endpoints)");
  }
  for (std::size_t c = 1; c < off.size(); ++c) {
    if (off[c] < off[c - 1]) {
      return DataLossError("corrupt artifact (quotient offsets not "
                           "monotone)");
    }
  }
  for (const ClusterId c : a.quotient_neighbors) {
    if (c >= k) {
      return DataLossError("corrupt artifact (quotient neighbor out of "
                           "range)");
    }
  }
  for (std::uint64_t c = 0; c < k; ++c) {
    if (a.apsp[static_cast<std::size_t>(c) * k + c] != 0) {
      return DataLossError("corrupt artifact (APSP diagonal nonzero)");
    }
  }
  return OkStatus();
}

}  // namespace

OracleArtifact build_oracle_artifact(const Graph& g,
                                     const DistanceOracleOptions& opts) {
  OracleBuild build = DistanceOracle::build_full(g, opts);

  OracleArtifactMeta meta;
  meta.graph_num_nodes = g.num_nodes();
  meta.graph_num_half_edges = g.num_half_edges();
  meta.num_clusters = build.clustering.num_clusters();
  meta.quotient_num_half_edges = build.quotient.num_half_edges();
  meta.build_seed = opts.seed;
  meta.tau = build.resolved_tau;
  meta.use_cluster2 = opts.use_cluster2;
  meta.max_radius = build.clustering.max_radius();

  auto owned = std::make_shared<OwnedPayload>();
  owned->cluster_of = std::move(build.clustering.assignment);
  owned->dist_to_center = std::move(build.clustering.dist_to_center);
  owned->centers = std::move(build.clustering.centers);
  const auto qoff = build.quotient.offsets();
  owned->quotient_offsets.assign(qoff.begin(), qoff.end());
  const auto qadj = build.quotient.adjacency();
  owned->quotient_neighbors.resize(qadj.size());
  owned->quotient_weights.resize(qadj.size());
  for (std::size_t i = 0; i < qadj.size(); ++i) {
    owned->quotient_neighbors[i] = qadj[i].to;
    owned->quotient_weights[i] = qadj[i].w;
  }
  const auto apsp = build.oracle.apsp();
  owned->apsp.assign(apsp.begin(), apsp.end());
  return artifact_from_owned(meta, std::move(owned));
}

Status write_oracle_artifact(const OracleArtifact& a,
                             const std::string& path) {
  const fs::path target(path);
  const std::string dir = target.has_parent_path()
                              ? target.parent_path().string()
                              : std::string(".");
  const std::string tmp = path + ".tmp." + unique_tmp_suffix();
  std::error_code ec;

  const Status written = write_artifact_bytes(a, tmp);
  if (!written.ok()) {
    fs::remove(tmp, ec);  // best effort; a failed write may leave debris
    return written;
  }
  // Crash-consistent publish: fsync the temp file, rename it over `path`,
  // fsync the directory so the rename itself survives a crash.  A reader
  // can then never observe a torn artifact: before the rename it sees the
  // old inode (or nothing), after it a fully durable new one.
  if (GCLUS_FAULTPOINT("artifact.publish") ||
      !sync_path(tmp, /*directory=*/false)) {
    fs::remove(tmp, ec);
    return IoError("cannot fsync artifact temp file: " + tmp);
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ec2;
    fs::remove(tmp, ec2);
    return IoError("cannot publish artifact " + path + ": " + ec.message());
  }
  if (!sync_path(dir, /*directory=*/true)) {
    // The rename landed (readers see a complete artifact); only crash
    // durability of the directory entry is in doubt.
    return IoError("cannot fsync artifact directory: " + dir);
  }
  return OkStatus();
}

StatusOr<OracleArtifact> load_oracle_artifact(const std::string& path,
                                              const ArtifactLoadOptions& opts) {
  // An injected load failure behaves like an undetected-until-now corrupt
  // sidecar: the caller's evict-and-rebuild path takes over.
  if (GCLUS_FAULTPOINT("artifact.load")) {
    return DataLossError(path + ": injected corrupt artifact");
  }
  // mmap zero-copy requires a little-endian host (the sections are used
  // in place); BE hosts decode through the copy path.
  io::FileContents fc;
  GCLUS_ASSIGN_OR_RETURN(
      fc, io::read_or_map_file(path, opts.prefer_mmap && kLittleEndian));
  const std::byte* data = fc.bytes.data();
  const std::uint64_t size = fc.bytes.size();

  OracleArtifactMeta meta;
  SectionLayout p;
  GCLUS_RETURN_IF_ERROR(parse_header(data, size, meta, p).with_context(path));
  const std::uint64_t n = meta.graph_num_nodes;
  const std::uint64_t k = meta.num_clusters;
  const std::uint64_t qm = meta.quotient_num_half_edges;

  if (opts.verify) {
    std::uint64_t sum =
        fnv1a(kFnvOffsetBasis, data, kOrcChecksumCoverBytes);
    sum = fnv1a(sum, data + p.labels_pos, static_cast<std::size_t>(n) * 4);
    sum = fnv1a(sum, data + p.dist_pos, static_cast<std::size_t>(n) * 4);
    sum = fnv1a(sum, data + p.centers_pos, static_cast<std::size_t>(k) * 4);
    sum = fnv1a(sum, data + p.qoffsets_pos,
                static_cast<std::size_t>(k + 1) * 8);
    sum = fnv1a(sum, data + p.qneighbors_pos,
                static_cast<std::size_t>(qm) * 4);
    sum = fnv1a(sum, data + p.qweights_pos, static_cast<std::size_t>(qm) * 8);
    sum = fnv1a(sum, data + p.apsp_pos, static_cast<std::size_t>(k * k) * 8);
    if (sum != read_le_at<std::uint64_t>(data + 128)) {
      return DataLossError(path + ": artifact checksum mismatch");
    }
  }

  OracleArtifact a;
  a.meta = meta;
  if (fc.mapped) {
    a.cluster_of = {reinterpret_cast<const ClusterId*>(data + p.labels_pos),
                    static_cast<std::size_t>(n)};
    a.dist_to_center = {reinterpret_cast<const Dist*>(data + p.dist_pos),
                        static_cast<std::size_t>(n)};
    a.centers = {reinterpret_cast<const NodeId*>(data + p.centers_pos),
                 static_cast<std::size_t>(k)};
    a.quotient_offsets = {
        reinterpret_cast<const EdgeId*>(data + p.qoffsets_pos),
        static_cast<std::size_t>(k + 1)};
    a.quotient_neighbors = {
        reinterpret_cast<const ClusterId*>(data + p.qneighbors_pos),
        static_cast<std::size_t>(qm)};
    a.quotient_weights = {
        reinterpret_cast<const Weight*>(data + p.qweights_pos),
        static_cast<std::size_t>(qm)};
    a.apsp = {reinterpret_cast<const Weight*>(data + p.apsp_pos),
              static_cast<std::size_t>(k * k)};
    a.mapped = true;
    a.storage = std::move(fc.keepalive);
  } else {
    auto owned = std::make_shared<OwnedPayload>();
    owned->cluster_of = decode_array_le<ClusterId>(data + p.labels_pos, n);
    owned->dist_to_center = decode_array_le<Dist>(data + p.dist_pos, n);
    owned->centers = decode_array_le<NodeId>(data + p.centers_pos, k);
    owned->quotient_offsets =
        decode_array_le<EdgeId>(data + p.qoffsets_pos, k + 1);
    owned->quotient_neighbors =
        decode_array_le<ClusterId>(data + p.qneighbors_pos, qm);
    owned->quotient_weights =
        decode_array_le<Weight>(data + p.qweights_pos, qm);
    owned->apsp = decode_array_le<Weight>(data + p.apsp_pos, k * k);
    a = artifact_from_owned(meta, std::move(owned));
  }

  if (opts.verify) {
    GCLUS_RETURN_IF_ERROR(validate_artifact_arrays(a).with_context(path));
  }
  return a;
}

Status validate_artifact_for_graph(const OracleArtifact& a, const Graph& g) {
  if (a.meta.graph_num_nodes != g.num_nodes() ||
      a.meta.graph_num_half_edges != g.num_half_edges()) {
    return InvalidArgumentError(
        "artifact was built over a different graph (" +
        std::to_string(a.meta.graph_num_nodes) + " nodes / " +
        std::to_string(a.meta.graph_num_half_edges) + " half-edges vs " +
        std::to_string(g.num_nodes()) + " / " +
        std::to_string(g.num_half_edges()) + ")");
  }
  return OkStatus();
}

}  // namespace gclus::server
