// Serialized distance-oracle artifacts — the "decompose once, serve many
// restarts" half of the query service.
//
// An artifact file stores everything DistanceOracle::build_full computes
// for a fixed (graph, seed, τ) triple: the per-node cluster labels and
// dist-to-center values, the cluster centers, the weighted quotient graph
// in CSR form, and the dense quotient APSP matrix.  A server restart
// mmaps this sidecar (checksum-validated) instead of re-running the
// decomposition, and serves byte-identical answers because the payload is
// the oracle's exact state.
//
// On-disk layout, CSR v2 dialect (all integers little-endian, sections
// 64-byte aligned, FNV-1a payload checksum — see graph/wire.hpp):
//
//   offset  size  field
//   0       8     magic "GCLUSORC"
//   8       4     version (1)
//   12      4     flags (none defined; must be 0)
//   16      8     graph_num_nodes n      (validated against the served graph)
//   24      8     graph_num_half_edges m (likewise)
//   32      8     num_clusters k
//   40      8     quotient_num_half_edges qm
//   48      8     build_seed (the RunContext master seed of the build)
//   56      4     tau (resolved — never the 0 "auto" sentinel)
//   60      4     use_cluster2 (0 or 1)
//   64      4     max_radius
//   68      4     padding (must be 0)
//   72      8     labels_pos      → n  × u32 (cluster_of)
//   80      8     dist_pos        → n  × u32 (dist_to_center)
//   88      8     centers_pos     → k  × u32 (center node of each cluster)
//   96      8     qoffsets_pos    → k+1 × u64 (quotient CSR offsets)
//   104     8     qneighbors_pos  → qm × u32 (quotient CSR neighbors)
//   112     8     qweights_pos    → qm × u64 (quotient CSR edge weights)
//   120     8     apsp_pos        → k·k × u64 (row-major APSP matrix)
//   128     8     checksum (FNV-1a 64 over header bytes [0, 128) followed
//                 by the payload sections in order — every metadata field
//                 is integrity-protected, not only the bulk arrays)
//   136     8     reserved (must be 0)
//
// Error handling follows graph/io.hpp: kInvalidArgument means the bytes
// don't claim to be a supported artifact, kDataLoss means they do but are
// truncated / checksum-mismatched / structurally corrupt, kIoError means
// the environment failed.  Writing publishes atomically (private temp
// file, fsync, rename, directory fsync — the dataset-cache discipline),
// so readers never observe a torn artifact.  Fault points:
// "artifact.write", "artifact.publish", "artifact.load", plus the io.*
// points under the shared file mapping path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/status.hpp"
#include "core/distance_oracle.hpp"
#include "graph/graph.hpp"

namespace gclus::server {

/// Header-resident build metadata.
struct OracleArtifactMeta {
  std::uint64_t graph_num_nodes = 0;
  std::uint64_t graph_num_half_edges = 0;
  std::uint64_t num_clusters = 0;
  std::uint64_t quotient_num_half_edges = 0;
  std::uint64_t build_seed = 0;
  std::uint32_t tau = 0;  ///< resolved granularity, never the 0 sentinel
  bool use_cluster2 = true;
  Dist max_radius = 0;
};

/// A loaded (or freshly built) artifact: metadata plus read-only views of
/// the payload sections.  `storage` pins whatever backs the spans — an
/// mmap-ed file or owned vectors — for as long as any copy lives, the
/// same keepalive contract as non-owning Graphs, so copies are cheap and
/// the file may be replaced (atomic republish) while in use.
struct OracleArtifact {
  OracleArtifactMeta meta;

  std::span<const ClusterId> cluster_of;       ///< n entries
  std::span<const Dist> dist_to_center;        ///< n entries
  std::span<const NodeId> centers;             ///< k entries
  std::span<const EdgeId> quotient_offsets;    ///< k+1 entries
  std::span<const ClusterId> quotient_neighbors;  ///< qm entries
  std::span<const Weight> quotient_weights;    ///< qm entries
  std::span<const Weight> apsp;                ///< k·k entries, row-major

  /// True when the spans view an mmap-ed file (zero-copy load).
  bool mapped = false;

  std::shared_ptr<const void> storage;
};

/// Runs the oracle decomposition on `g` and packages the result.  The
/// artifact owns its payload (mapped == false).  Build telemetry flows
/// through `opts` as in DistanceOracle::build_full.
[[nodiscard]] OracleArtifact build_oracle_artifact(
    const Graph& g, const DistanceOracleOptions& opts = {});

/// Serializes `a` to `path` atomically: temp file next to the target,
/// fsync, rename over `path`, directory fsync.  kIoError on environmental
/// failure; a failed attempt never leaves a partial file under `path`
/// (the temp file is removed best-effort).
[[nodiscard]] Status write_oracle_artifact(const OracleArtifact& a,
                                           const std::string& path);

struct ArtifactLoadOptions {
  /// mmap the file when the platform allows (falling back to a copy);
  /// false forces the copy path.
  bool prefer_mmap = true;
  /// Verify the payload checksum and the structural invariants every
  /// query-time index depends on (labels < k, quotient CSR well-formed,
  /// centers consistent).  One sequential pass; keep it on outside
  /// microbenchmarks.
  bool verify = true;
};

/// Loads an artifact written by write_oracle_artifact.  Error codes as in
/// the header comment; never aborts on corrupt input.
[[nodiscard]] StatusOr<OracleArtifact> load_oracle_artifact(
    const std::string& path, const ArtifactLoadOptions& opts = {});

/// Checks that `a` was built over a graph shaped like `g` (node and
/// half-edge counts).  kInvalidArgument on mismatch — serving labels of a
/// different graph would silently answer garbage.
[[nodiscard]] Status validate_artifact_for_graph(const OracleArtifact& a,
                                                 const Graph& g);

}  // namespace gclus::server
