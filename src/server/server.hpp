// QueryServer — bounded-queue, multi-worker execution on top of
// QueryEngine.
//
// Clients submit *batches* of queries (amortizing one queue round-trip
// over hundreds of lookups — the engine's per-query cost is tens of
// nanoseconds, so per-query locking would be all overhead).  A fixed pool
// of worker threads drains a bounded FIFO of batches; each worker owns
// its QueryScratch, the engine is shared read-only.  When the queue is
// full, try_submit sheds the batch with kResourceExhausted instead of
// queueing unbounded work — the caller decides whether to retry, back
// off, or drop (submit() blocks for space instead).  Both submission
// paths return kUnavailable once shutdown() has begun: with remote
// clients feeding the queue (src/net/), losing the submit-vs-shutdown
// race is a routine event during every graceful drain, not a caller bug,
// so it must propagate as a Status the front end can turn into a wire
// error instead of aborting the process.
//
// Determinism: a QueryResult is a pure function of (engine, query), never
// of scheduling — workers share no mutable state besides the queue — so N
// concurrent workers produce answers byte-identical to serial execution
// of the same stream.  tests/test_server.cpp pins this under TSan.
//
// Engine hot-swap: the server holds the engine through a
// shared_ptr<const QueryEngine> and each worker pins a snapshot per
// batch, so swap_engine() can atomically replace the artifact under live
// traffic (the net front end's hot-reload) — every batch is answered
// entirely by one engine version, never a mix, and the old engine is
// freed when its last in-flight batch completes.
//
// Environment defaults (read when the corresponding option is 0):
//   GCLUS_SERVER_WORKERS      worker thread count        (default 4)
//   GCLUS_SERVER_QUEUE_DEPTH  max queued batches = the shed threshold
//                             (default 128)
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "server/engine.hpp"

namespace gclus::server {

enum class QueryKind : std::uint8_t {
  kApproxDistance = 0,
  kSameCluster = 1,
  kClusterNeighborhood = 2,
};

struct Query {
  QueryKind kind = QueryKind::kApproxDistance;
  NodeId u = 0;
  /// kApproxDistance / kSameCluster: the second node id.
  /// kClusterNeighborhood: the hop radius in the quotient graph.
  std::uint32_t arg = 0;
};

struct QueryResult {
  /// kOk, or kInvalidArgument for an out-of-range node id.  A bad query
  /// fails alone — the rest of its batch still executes.
  StatusCode code = StatusCode::kOk;
  /// kApproxDistance: the distance upper bound.  kSameCluster: 0 or 1.
  /// kClusterNeighborhood: an order-sensitive digest of the sorted
  /// cluster list (size folded in) — two executions agree on the digest
  /// iff they agree on the full list, which is what the determinism
  /// tests compare; callers needing the actual clusters use QueryEngine
  /// directly.
  std::uint64_t value = 0;

  friend bool operator==(const QueryResult&, const QueryResult&) = default;
};

/// Executes one query.  This is the single definition of query semantics:
/// server workers and the serial reference path of the determinism tests
/// both call it, so they cannot drift.  `scratch`/`neighborhood_buf` are
/// the caller's reusable per-thread buffers.
[[nodiscard]] QueryResult execute_query(const QueryEngine& engine,
                                        const Query& q, QueryScratch& scratch,
                                        std::vector<ClusterId>& neighborhood_buf);

struct ServerOptions {
  /// Worker threads; 0 reads GCLUS_SERVER_WORKERS (default 4).
  std::size_t workers = 0;
  /// Max queued batches before try_submit sheds; 0 reads
  /// GCLUS_SERVER_QUEUE_DEPTH (default 128).
  std::size_t queue_depth = 0;
};

/// Monotonic counters, readable at any time (relaxed atomics snapshot).
struct ServerStats {
  std::uint64_t queries_served = 0;
  std::uint64_t batches_served = 0;
  std::uint64_t invalid_queries = 0;  ///< served, but answered kInvalidArgument
  std::uint64_t shed_batches = 0;
  std::uint64_t shed_queries = 0;
};

class QueryServer {
  struct Batch;

 public:
  /// Handle to a submitted batch; wait() blocks until the batch completed
  /// and returns the per-query results in submission order.
  class Ticket {
   public:
    /// Results, in the order the queries were submitted.
    const std::vector<QueryResult>& wait() const;
    /// Queue-entry to completion latency, or -1.0 while the batch is
    /// still pending (it reads the completion timestamp under the batch
    /// lock, so calling before wait() is safe — just not yet meaningful).
    [[nodiscard]] double latency_s() const;

   private:
    friend class QueryServer;
    explicit Ticket(std::shared_ptr<Batch> b) : batch_(std::move(b)) {}
    std::shared_ptr<Batch> batch_;
  };

  /// Non-owning convenience: the engine must outlive the server.
  explicit QueryServer(const QueryEngine& engine, ServerOptions opts = {});
  /// Owning form — the seam swap_engine() pivots on.  `engine` must be
  /// non-null.
  explicit QueryServer(std::shared_ptr<const QueryEngine> engine,
                       ServerOptions opts = {});
  ~QueryServer();  ///< drains the queue and joins the workers

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Enqueues a batch; kResourceExhausted (shed, counted) when the queue
  /// is at queue_depth, kUnavailable after shutdown().  Never blocks.
  [[nodiscard]] StatusOr<Ticket> try_submit(std::vector<Query> queries);

  /// Enqueues a batch, blocking until queue space frees up.
  /// kUnavailable when the server has been (or is concurrently being)
  /// shut down — a normal race during graceful drain, never an abort.
  [[nodiscard]] StatusOr<Ticket> submit(std::vector<Query> queries);

  /// Atomically replaces the engine for batches popped from now on.
  /// In-flight batches finish on the engine they started with; the old
  /// engine is released once its last batch completes.  `engine` must be
  /// non-null and its artifact must describe the same graph.
  void swap_engine(std::shared_ptr<const QueryEngine> engine);

  /// The engine currently answering new batches.
  [[nodiscard]] std::shared_ptr<const QueryEngine> engine() const;

  /// Stops accepting work, drains everything already queued, joins the
  /// workers.  Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }
  [[nodiscard]] std::size_t queue_depth() const { return queue_depth_; }

 private:
  struct Batch {
    std::vector<Query> queries;
    std::vector<QueryResult> results;
    std::chrono::steady_clock::time_point enqueued_at;
    std::chrono::steady_clock::time_point completed_at;
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    bool done = false;
  };

  void worker_loop();
  Ticket enqueue_locked(std::unique_lock<std::mutex>& lock,
                        std::vector<Query> queries);

  std::shared_ptr<const QueryEngine> engine_;  ///< guarded by mu_
  std::size_t queue_depth_ = 0;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::shared_ptr<Batch>> queue_;
  bool stop_ = false;

  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> queries_served_{0};
  std::atomic<std::uint64_t> batches_served_{0};
  std::atomic<std::uint64_t> invalid_queries_{0};
  std::atomic<std::uint64_t> shed_batches_{0};
  std::atomic<std::uint64_t> shed_queries_{0};
};

}  // namespace gclus::server
