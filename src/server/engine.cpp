#include "server/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

namespace gclus::server {

namespace {

/// A quotient APSP entry of kInfWeight means two clusters cannot reach
/// each other — the input graph was disconnected, which the oracle's
/// query formula cannot serve.
bool apsp_fully_connected(const OracleArtifact& a) {
  return std::find(a.apsp.begin(), a.apsp.end(), kInfWeight) == a.apsp.end();
}

}  // namespace

StatusOr<QueryEngine> QueryEngine::build(Graph g,
                                         const DistanceOracleOptions& opts) {
  if (g.num_nodes() == 0) {
    return InvalidArgumentError("cannot build a query engine over an empty "
                                "graph");
  }
  OracleArtifact a = build_oracle_artifact(g, opts);
  if (!apsp_fully_connected(a)) {
    return InvalidArgumentError(
        "cannot build a query engine over a disconnected graph (the oracle "
        "needs every cluster pair reachable)");
  }
  return QueryEngine(std::move(g), std::move(a), /*loaded=*/false);
}

StatusOr<QueryEngine> QueryEngine::from_artifact(Graph g, OracleArtifact a) {
  GCLUS_RETURN_IF_ERROR(validate_artifact_for_graph(a, g));
  if (!apsp_fully_connected(a)) {
    return InvalidArgumentError(
        "artifact APSP has unreachable cluster pairs (built over a "
        "disconnected graph)");
  }
  return QueryEngine(std::move(g), std::move(a), /*loaded=*/true);
}

StatusOr<QueryEngine> QueryEngine::load(Graph g, const std::string& path,
                                        const ArtifactLoadOptions& opts) {
  OracleArtifact a;
  GCLUS_ASSIGN_OR_RETURN(a, load_oracle_artifact(path, opts));
  return from_artifact(std::move(g), std::move(a));
}

StatusOr<QueryEngine> QueryEngine::load_or_build(
    Graph g, const std::string& path, const DistanceOracleOptions& opts,
    LoadReport* report) {
  LoadReport local;
  LoadReport& rep = report != nullptr ? *report : local;
  rep = LoadReport{};

  auto loaded = load(Graph(g), path);
  if (loaded.ok()) {
    rep.loaded_from_artifact = true;
    return loaded;
  }
  const StatusCode code = loaded.status().code();
  if (code == StatusCode::kDataLoss || code == StatusCode::kInvalidArgument) {
    // A corrupt (or wrong-graph) sidecar would otherwise poison every
    // later restart; evict it so the republish below heals the path.
    std::fprintf(stderr, "gclus: evicting corrupt oracle artifact %s (%s)\n",
                 path.c_str(), loaded.status().to_string().c_str());
    std::error_code ec;
    std::filesystem::remove(path, ec);  // best effort; rebuild either way
    rep.evicted_corrupt = true;
  }

  auto built = build(std::move(g), opts);
  if (!built.ok()) return built;
  rep.rebuilt = true;
  // Best-effort republish: an unwritable volume degrades to serving the
  // in-memory build, never fails the caller.
  rep.republished = built->save(path).ok();
  return built;
}

Status QueryEngine::save(const std::string& path) const {
  return write_oracle_artifact(artifact_, path);
}

Status QueryEngine::check_node(NodeId u) const {
  if (u >= graph_.num_nodes()) {
    return InvalidArgumentError("node id " + std::to_string(u) +
                                " out of range (graph has " +
                                std::to_string(graph_.num_nodes()) +
                                " nodes)");
  }
  return OkStatus();
}

StatusOr<std::uint64_t> QueryEngine::approx_distance(NodeId u,
                                                     NodeId v) const {
  GCLUS_RETURN_IF_ERROR(check_node(u));
  GCLUS_RETURN_IF_ERROR(check_node(v));
  if (u == v) return std::uint64_t{0};
  const ClusterId cu = artifact_.cluster_of[u];
  const ClusterId cv = artifact_.cluster_of[v];
  const std::uint64_t label_cost =
      static_cast<std::uint64_t>(artifact_.dist_to_center[u]) +
      artifact_.dist_to_center[v];
  if (cu == cv) return label_cost;  // u -> center -> v inside the cluster
  const std::size_t k = artifact_.meta.num_clusters;
  return label_cost + artifact_.apsp[static_cast<std::size_t>(cu) * k + cv];
}

StatusOr<bool> QueryEngine::same_cluster(NodeId u, NodeId v) const {
  GCLUS_RETURN_IF_ERROR(check_node(u));
  GCLUS_RETURN_IF_ERROR(check_node(v));
  return artifact_.cluster_of[u] == artifact_.cluster_of[v];
}

Status QueryEngine::cluster_neighborhood(NodeId u, std::uint32_t hops,
                                         QueryScratch& scratch,
                                         std::vector<ClusterId>& out) const {
  GCLUS_RETURN_IF_ERROR(check_node(u));
  const auto k = static_cast<std::size_t>(artifact_.meta.num_clusters);
  if (scratch.mark.size() < k) scratch.mark.assign(k, 0);
  if (++scratch.epoch == 0) {  // epoch wrapped: all marks are stale
    std::fill(scratch.mark.begin(), scratch.mark.end(), 0);
    scratch.epoch = 1;
  }
  const std::uint32_t epoch = scratch.epoch;

  out.clear();
  scratch.frontier.clear();
  const ClusterId start = artifact_.cluster_of[u];
  scratch.mark[start] = epoch;
  scratch.frontier.push_back(start);
  out.push_back(start);
  for (std::uint32_t level = 0; level < hops && !scratch.frontier.empty();
       ++level) {
    scratch.next.clear();
    for (const ClusterId c : scratch.frontier) {
      const EdgeId begin = artifact_.quotient_offsets[c];
      const EdgeId end = artifact_.quotient_offsets[c + 1];
      for (EdgeId e = begin; e < end; ++e) {
        const ClusterId d = artifact_.quotient_neighbors[e];
        if (scratch.mark[d] != epoch) {
          scratch.mark[d] = epoch;
          scratch.next.push_back(d);
          out.push_back(d);
        }
      }
    }
    std::swap(scratch.frontier, scratch.next);
  }
  std::sort(out.begin(), out.end());
  return OkStatus();
}

StatusOr<std::vector<ClusterId>> QueryEngine::cluster_neighborhood(
    NodeId u, std::uint32_t hops) const {
  QueryScratch scratch;
  std::vector<ClusterId> out;
  GCLUS_RETURN_IF_ERROR(cluster_neighborhood(u, hops, scratch, out));
  return out;
}

}  // namespace gclus::server
