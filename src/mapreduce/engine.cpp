#include "mapreduce/engine.hpp"

// Engine is header-only (templated round); this TU anchors the library.
