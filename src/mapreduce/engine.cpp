#include "mapreduce/engine.hpp"

#include <cstdlib>
#include <cstring>

#include "common/parse.hpp"

namespace gclus::mr {

// Environment overrides let CI (and local debugging) force every engine
// in a process through the out-of-core shuffle without touching each call
// site: GCLUS_MR_SPILL_BYTES supplies a budget to engines that kept the
// unbounded default, GCLUS_MR_SPILL_STRICT=1 turns budget violations into
// aborts.  Explicitly-configured engines are never overridden.
Config apply_env_overrides(Config config) {
  if (config.spill_memory_bytes == 0) {
    config.spill_memory_bytes = env_u64("GCLUS_MR_SPILL_BYTES", 0);
  }
  if (!config.spill_strict) {
    if (const char* env = std::getenv("GCLUS_MR_SPILL_STRICT")) {
      config.spill_strict = std::strcmp(env, "1") == 0;
    }
  }
  if (config.spill_fallback_dir.empty()) {
    if (const char* env = std::getenv("GCLUS_MR_SPILL_FALLBACK_DIR")) {
      config.spill_fallback_dir = env;
    }
  }
  return config;
}

}  // namespace gclus::mr
