// Out-of-core run storage for the MR engine's external shuffle.
//
// When a round's shuffle buffers exceed Config::spill_memory_bytes, the
// map phase writes each partition's buffered (and optionally combined)
// records to disk as a *sorted run*, and the reduce phase sort-merges all
// runs of a partition back into one key-ordered stream.  This layer owns
// the on-disk representation; it is deliberately untyped (raw fixed-size
// records) so the templated engine can spill any trivially-copyable
// key/value pair without per-type I/O code.
//
// File layout: one file per partition, a sequence of runs, each run a
// header (record count) followed by `count * record_size` payload bytes.
// Run boundaries are also tracked in memory at write time, so reading
// never trusts the file for structure — a truncated or corrupted file is
// detected as a short read and reported as a kDataLoss Status rather than
// producing a silently wrong answer.
//
// Error handling: environmental failures (unwritable directory, ENOSPC,
// torn run files) come back as Status so the engine can degrade — fall
// back to a second spill directory, or keep the round in memory — instead
// of aborting mid-shuffle.  Transient write/read errors (EINTR, injected
// short writes) are retried with backoff under io_retry_policy(); every
// append seeks to the partition's recorded write offset first, so a
// failed partial append leaves no visible damage and the retry overwrites
// the torn tail.  API *contract* violations (bad partition index, empty
// runs) remain GCLUS_CHECK aborts.  Fault points: "spill.mkdir",
// "spill.open", "spill.write", "spill.flush", "spill.seek", "spill.read".
//
// Thread safety: append_run() may be called concurrently for *different*
// partitions (per-partition locking); open_partition() is for the reduce
// phase, after seal(), one caller per partition at a time.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace gclus::mr {

/// Streams one spilled run's records through a bounded refill buffer, so
/// merging R runs needs only R read buffers in memory, never whole runs.
class RunCursor {
 public:
  RunCursor(std::FILE* file, std::uint64_t offset, std::uint64_t count,
            std::size_t record_size, std::size_t buffer_records);

  RunCursor(RunCursor&&) = default;
  RunCursor& operator=(RunCursor&&) = default;

  /// Pointer to the next record; nullptr at end of run *or* on error —
  /// callers that saw nullptr must consult status() to tell the two
  /// apart.  The pointer is valid until the next call (a refill may
  /// reuse the buffer).
  [[nodiscard]] const void* next();

  /// OK while the cursor has only ever delivered valid records; the first
  /// failed refill (seek failure, truncated run) parks its error here and
  /// ends the stream.
  [[nodiscard]] const Status& status() const { return status_; }

 private:
  [[nodiscard]] Status refill();

  std::FILE* file_;            // shared with sibling cursors; not owned
  std::uint64_t next_offset_;  // absolute file offset of the next refill
  std::uint64_t remaining_;    // records not yet returned
  std::size_t record_size_;
  std::vector<unsigned char> buffer_;
  std::size_t buffered_ = 0;  // records currently in buffer_
  std::size_t consumed_ = 0;  // records of buffer_ already returned
  Status status_;
};

/// All spill files of one engine round.  Creating the session is cheap;
/// the directory and files appear lazily on first append.  The destructor
/// removes everything — spill files never outlive their round.
class SpillSession {
 public:
  /// `dir_hint` empty means the system temp directory; the session creates
  /// a unique subdirectory under it (lazily, on first append).
  SpillSession(std::string dir_hint, std::size_t num_partitions,
               std::size_t record_size);
  ~SpillSession();

  SpillSession(const SpillSession&) = delete;
  SpillSession& operator=(const SpillSession&) = delete;

  /// Appends one sorted run of `count` records to partition `p`.
  /// Thread-safe across partitions and callers.  kIoError /
  /// kResourceExhausted when the directory, file, or write fails after
  /// retries; on failure the partition is exactly as it was before the
  /// call (the next append re-seeks to the recorded offset), so the
  /// caller may retarget the run to another session or keep it in memory.
  [[nodiscard]] Status append_run(std::size_t p, const void* data,
                                  std::uint64_t count);

  /// Flushes all files; call once, between the map and reduce phases.
  [[nodiscard]] Status seal();

  [[nodiscard]] std::size_t num_partitions() const { return parts_.size(); }
  [[nodiscard]] std::size_t num_runs(std::size_t p) const;
  [[nodiscard]] std::uint64_t total_runs() const;
  [[nodiscard]] std::uint64_t bytes_written() const;
  [[nodiscard]] const std::string& directory() const { return dir_; }

  /// Transient write errors recovered by retry since construction.
  [[nodiscard]] std::uint64_t write_retries() const;

  /// Opens every run of partition `p` for merging.  `buffer_records` is
  /// the refill-buffer size per cursor (clamped to >= 1 internally).
  /// kDataLoss when the partition file no longer holds every byte the
  /// writer appended.
  [[nodiscard]] StatusOr<std::vector<RunCursor>> open_partition(
      std::size_t p, std::size_t buffer_records);

 private:
  struct Run {
    std::uint64_t offset;  // payload offset (past the header)
    std::uint64_t count;
  };
  struct Partition {
    std::mutex mu;
    std::FILE* file = nullptr;
    std::uint64_t write_offset = 0;
    std::vector<Run> runs;
  };

  [[nodiscard]] Status ensure_dir();

  std::string dir_hint_;
  std::string dir_;  // empty until first append
  Status dir_status_;
  std::once_flag dir_once_;
  std::size_t record_size_;
  std::vector<std::unique_ptr<Partition>> parts_;
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> write_retries_{0};
};

}  // namespace gclus::mr
