// Configuration and accounting for the MR(M_G, M_L) model of
// Pietracaprina et al. [ICS'12], the computational model of the paper's §5.
//
// An MR algorithm is a sequence of rounds; in each round every key-value
// pair multiset is transformed by applying a reducer independently to each
// same-key group.  The model is parameterized by the global memory M_G and
// the per-reducer local memory M_L.  The engine tracks:
//   * rounds executed                       (the paper's complexity measure),
//   * key-value pairs shuffled per round    (communication volume),
//   * the largest single reducer input      (M_L compliance),
// and can *charge* a configurable per-round latency so benchmark numbers
// reflect the round-dominated cost profile of a loosely-coupled cluster
// (the regime in which the paper's experiments run) rather than the
// shared-memory box the emulator happens to execute on.
//
// Beyond accounting, the engine can genuinely bound its shuffle memory:
// `spill_memory_bytes` caps the bytes buffered during the map phase, with
// overflow written to per-partition sorted run files and sort-merged back
// in the reduce phase (see engine.hpp / spill.hpp).  Combiners — mapper-
// side associative folds — shrink runs before they hit the budget or the
// disk, mirroring the real systems the model abstracts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace gclus {
class ThreadPool;
}  // namespace gclus

namespace gclus::mr {

/// Explicitly unbounded spill budget: never spill, and never inherit the
/// GCLUS_MR_SPILL_BYTES override (unlike the default 0, which means
/// "unset" and does).
inline constexpr std::uint64_t kSpillUnbounded =
    std::numeric_limits<std::uint64_t>::max();

struct Config {
  /// Worker threads executing reducers.  0 = use the global pool size.
  /// Ignored when `pool` is set.
  std::size_t num_workers = 0;

  /// External thread pool to run on (not owned).  Takes precedence over
  /// `num_workers`; lets a RunContext-provided pool drive the engine.
  ThreadPool* pool = nullptr;

  /// M_L: maximum number of key-value pairs a single reducer may receive.
  std::size_t local_memory_pairs = std::numeric_limits<std::size_t>::max();

  /// M_G: maximum number of key-value pairs alive in a round.
  std::uint64_t global_memory_pairs =
      std::numeric_limits<std::uint64_t>::max();

  /// If true, exceeding M_L or M_G aborts; if false it is only recorded.
  bool strict = false;

  /// Simulated per-round latency (seconds), modeling scheduling + network
  /// barrier costs of a distributed round.  Only accounted, never slept.
  double per_round_latency_s = 0.0;

  /// Shuffle partition count.  Pinned in the config — never derived from
  /// the worker count — so the concatenated round output is a pure
  /// function of the input regardless of how many threads execute it.
  std::size_t num_partitions = 64;

  /// Byte budget for map-phase shuffle buffers (real record bytes, not
  /// pair counts).  0 = unbounded *and* overridable: engines constructed
  /// with the default 0 inherit GCLUS_MR_SPILL_BYTES when set; use
  /// kSpillUnbounded to demand in-memory execution regardless of the
  /// environment.  When the budget is exceeded, buffered records are
  /// sorted (and combined, if the round declares a combiner) and spilled
  /// to per-partition run files; honoured only for trivially-copyable
  /// key/value types.  The reduce phase streams spilled runs through
  /// bounded cursors sized from this budget, with an unavoidable
  /// single-pass floor of one record-sized buffer per merged run (see
  /// Metrics::peak_merge_buffer_bytes).
  std::uint64_t spill_memory_bytes = 0;

  /// Where spill files go; empty = the system temp directory.  The engine
  /// creates (and removes) a unique per-round subdirectory underneath.
  std::string spill_dir;

  /// Second-chance spill directory tried when the primary one fails
  /// (unwritable, disk full).  Empty = none; engines left empty inherit
  /// GCLUS_MR_SPILL_FALLBACK_DIR.  When the fallback also fails, the
  /// engine stops spilling and keeps the round's shuffle in memory — the
  /// output is identical, only the memory bound is lost (recorded in
  /// Metrics::spill_degraded_rounds).
  std::string spill_fallback_dir;

  /// Abort if the map phase ever buffers more than the spill budget
  /// allows (plus the unavoidable one-record-per-worker slack).  Set by
  /// GCLUS_MR_SPILL_STRICT=1 for engines that don't set it explicitly.
  bool spill_strict = false;

  /// Master switch for mapper-side combiners; rounds declaring a combiner
  /// run it only when this is true.  Off exists so tests can assert
  /// combiner-on/off equivalence and measure the shuffle reduction.
  bool enable_combiners = true;
};

struct Metrics {
  std::size_t rounds = 0;
  std::uint64_t pairs_shuffled = 0;   // total pairs entering the shuffle
  std::uint64_t bytes_shuffled = 0;   // same, in bytes
  std::size_t max_reducer_pairs = 0;  // largest single-key group observed
  std::uint64_t max_round_pairs = 0;  // largest per-round volume (M_G proxy)
  bool local_memory_exceeded = false;
  bool global_memory_exceeded = false;

  /// Modeled round overhead accumulated so far.
  double simulated_latency_s = 0.0;

  // --- Out-of-core shuffle accounting. ---

  /// Payload bytes written to spill files across all rounds.
  std::uint64_t bytes_spilled = 0;

  /// Sorted runs written to disk.
  std::uint64_t spill_runs = 0;

  /// Sorted runs (in-memory leftovers + spilled) consumed by reduce-phase
  /// merges.
  std::uint64_t runs_merged = 0;

  // --- Spill degradation accounting (see Config::spill_fallback_dir). ---

  /// Runs that landed in the fallback spill directory after the primary
  /// one failed.
  std::uint64_t spill_fallback_runs = 0;

  /// Rounds that gave up on spilling entirely and held the shuffle in
  /// memory.  Nonzero means the memory bound was not honoured — results
  /// are still exact.
  std::uint64_t spill_degraded_rounds = 0;

  /// Transient spill-write errors recovered by retry-with-backoff.
  std::uint64_t spill_write_retries = 0;

  /// Pairs entering / leaving mapper-side combiners; in/out is the
  /// combiner's shuffle-volume reduction factor.
  std::uint64_t combiner_pairs_in = 0;
  std::uint64_t combiner_pairs_out = 0;

  /// Peak bytes buffered by the map phase in any single round (sum of the
  /// per-worker peaks — an upper bound on simultaneous usage).
  std::uint64_t peak_shuffle_buffer_bytes = 0;

  /// Peak bytes of reduce-phase cursor read buffers in any single round
  /// (sum of per-worker peaks).  Sized from the budget but floored at one
  /// record per merged run — a single-pass sort-merge cannot go lower, so
  /// staying within budget here requires budget >= fan-in × record size.
  std::uint64_t peak_merge_buffer_bytes = 0;

  [[nodiscard]] double combiner_reduction() const {
    return combiner_pairs_out == 0
               ? 1.0
               : static_cast<double>(combiner_pairs_in) /
                     static_cast<double>(combiner_pairs_out);
  }

  void reset() { *this = Metrics{}; }
};

}  // namespace gclus::mr
