// Configuration and accounting for the MR(M_G, M_L) model of
// Pietracaprina et al. [ICS'12], the computational model of the paper's §5.
//
// An MR algorithm is a sequence of rounds; in each round every key-value
// pair multiset is transformed by applying a reducer independently to each
// same-key group.  The model is parameterized by the global memory M_G and
// the per-reducer local memory M_L.  The engine tracks:
//   * rounds executed                       (the paper's complexity measure),
//   * key-value pairs shuffled per round    (communication volume),
//   * the largest single reducer input      (M_L compliance),
// and can *charge* a configurable per-round latency so benchmark numbers
// reflect the round-dominated cost profile of a loosely-coupled cluster
// (the regime in which the paper's experiments run) rather than the
// shared-memory box the emulator happens to execute on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace gclus::mr {

struct Config {
  /// Worker threads executing reducers.  0 = use the global pool size.
  std::size_t num_workers = 0;

  /// M_L: maximum number of key-value pairs a single reducer may receive.
  std::size_t local_memory_pairs = std::numeric_limits<std::size_t>::max();

  /// M_G: maximum number of key-value pairs alive in a round.
  std::uint64_t global_memory_pairs =
      std::numeric_limits<std::uint64_t>::max();

  /// If true, exceeding M_L or M_G aborts; if false it is only recorded.
  bool strict = false;

  /// Simulated per-round latency (seconds), modeling scheduling + network
  /// barrier costs of a distributed round.  Only accounted, never slept.
  double per_round_latency_s = 0.0;
};

struct Metrics {
  std::size_t rounds = 0;
  std::uint64_t pairs_shuffled = 0;   // total pairs entering reducers
  std::uint64_t bytes_shuffled = 0;   // same, in bytes
  std::size_t max_reducer_pairs = 0;  // largest single-key group observed
  std::uint64_t max_round_pairs = 0;  // largest per-round volume (M_G proxy)
  bool local_memory_exceeded = false;
  bool global_memory_exceeded = false;

  /// Modeled round overhead accumulated so far.
  double simulated_latency_s = 0.0;

  void reset() { *this = Metrics{}; }
};

}  // namespace gclus::mr
