// Fact-1 primitives of the MR(M_G, M_L) model: sorting and (segmented)
// prefix sums in O(log_{M_L} n) rounds.
//
// These are real multi-round implementations — not shared-memory sorts
// with a fabricated round count.  Sorting is a sample sort: one round
// selects splitters from a regular sample, one round partitions into
// buckets of at most M_L pairs which each reducer sorts locally
// (recursing in the unlikely case a bucket overflows).  Prefix sums use an
// aggregation tree of fan-in M_L (up-sweep + down-sweep).
#pragma once

#include <cstdint>
#include <vector>

#include "mapreduce/engine.hpp"

namespace gclus::mr {

/// Sorts `values` ascending using MR rounds on `engine`.
/// Deterministic: equal keys keep their input order (stable).
std::vector<std::uint64_t> mr_sort(Engine& engine,
                                   std::vector<std::uint64_t> values);

/// Exclusive prefix sums of `values`; out[i] = sum of values[0..i).
/// `total_out`, if non-null, receives the grand total.
std::vector<std::uint64_t> mr_prefix_sum(Engine& engine,
                                         const std::vector<std::uint64_t>& values,
                                         std::uint64_t* total_out = nullptr);

/// Segmented exclusive prefix sums: the running sum resets whenever
/// segment_id changes between consecutive positions.  segment_ids must be
/// nondecreasing (the usual post-sort layout).
std::vector<std::uint64_t> mr_segmented_prefix_sum(
    Engine& engine, const std::vector<std::uint64_t>& values,
    const std::vector<std::uint32_t>& segment_ids);

}  // namespace gclus::mr
