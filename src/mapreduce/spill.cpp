#include "mapreduce/spill.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <filesystem>
#include <system_error>

#include "common/check.hpp"
#include "common/faultpoint.hpp"

namespace gclus::mr {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// RunCursor
// ---------------------------------------------------------------------------

RunCursor::RunCursor(std::FILE* file, std::uint64_t offset,
                     std::uint64_t count, std::size_t record_size,
                     std::size_t buffer_records)
    : file_(file),
      next_offset_(offset),
      remaining_(count),
      record_size_(record_size) {
  buffer_.resize(std::max<std::size_t>(1, buffer_records) * record_size_);
}

const void* RunCursor::next() {
  if (consumed_ == buffered_) {
    if (remaining_ == 0 || !status_.ok()) return nullptr;
    status_ = refill();
    if (!status_.ok()) return nullptr;
  }
  const void* rec = buffer_.data() + consumed_ * record_size_;
  ++consumed_;
  return rec;
}

Status RunCursor::refill() {
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(remaining_, buffer_.size() / record_size_));
  // Each attempt re-seeks, so a transient short read retries from the
  // same offset with nothing consumed.
  const Status st = retry_transient(io_retry_policy(), [&] {
    // Cursors of one partition share the FILE*, so every refill seeks to
    // its own absolute offset before reading.
    if (GCLUS_FAULTPOINT("spill.seek") ||
        std::fseek(file_, static_cast<long>(next_offset_), SEEK_SET) != 0) {
      return IoError("spill run seek failed at offset " +
                     std::to_string(next_offset_));
    }
    const std::size_t got =
        GCLUS_FAULTPOINT("spill.read")
            ? want / 2
            : std::fread(buffer_.data(), record_size_, want, file_);
    if (got == want) return OkStatus();
    if (std::feof(file_) != 0) {
      return DataLossError("spill run truncated: wanted " +
                           std::to_string(want) + " records at offset " +
                           std::to_string(next_offset_) + ", got " +
                           std::to_string(got));
    }
    // Short read without EOF (interrupted syscall, injected fault):
    // transient — clear the stream state and let the retry re-seek and
    // re-read; a hard error keeps failing and escalates to kIoError.
    std::clearerr(file_);
    return UnavailableError("spill run short read (wanted " +
                            std::to_string(want) + " records, got " +
                            std::to_string(got) + ")");
  });
  if (!st.ok()) return st;
  next_offset_ += static_cast<std::uint64_t>(want) * record_size_;
  remaining_ -= want;
  buffered_ = want;
  consumed_ = 0;
  return OkStatus();
}

// ---------------------------------------------------------------------------
// SpillSession
// ---------------------------------------------------------------------------

SpillSession::SpillSession(std::string dir_hint, std::size_t num_partitions,
                           std::size_t record_size)
    : dir_hint_(std::move(dir_hint)), record_size_(record_size) {
  GCLUS_CHECK(record_size_ > 0);
  parts_.reserve(num_partitions);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    parts_.push_back(std::make_unique<Partition>());
  }
}

SpillSession::~SpillSession() {
  for (auto& part : parts_) {
    if (part->file != nullptr) std::fclose(part->file);
  }
  if (!dir_.empty()) {
    std::error_code ec;
    fs::remove_all(dir_, ec);  // best effort; the dir is uniquely ours
  }
}

Status SpillSession::ensure_dir() {
  // The first attempt's outcome is sticky: a session whose directory
  // cannot be created stays failed, and the engine moves on to its
  // fallback session instead of hammering the same path.
  std::call_once(dir_once_, [&] {
    static std::atomic<std::uint64_t> counter{0};
    fs::path base = dir_hint_.empty() ? fs::temp_directory_path()
                                      : fs::path(dir_hint_);
    fs::path dir = base / ("gclus-spill-" + std::to_string(::getpid()) + "-" +
                           std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    if (GCLUS_FAULTPOINT("spill.mkdir")) {
      ec = std::make_error_code(std::errc::permission_denied);
    } else {
      fs::create_directories(dir, ec);
    }
    if (ec) {
      dir_status_ =
          IoError("spill directory not writable: cannot create " +
                  dir.string() + " (" + ec.message() + ")");
      return;
    }
    dir_ = dir.string();
  });
  return dir_status_;
}

Status SpillSession::append_run(std::size_t p, const void* data,
                                std::uint64_t count) {
  GCLUS_CHECK(p < parts_.size());
  GCLUS_CHECK(count > 0, "empty spill runs are never written");
  GCLUS_RETURN_IF_ERROR(ensure_dir());
  Partition& part = *parts_[p];
  std::lock_guard<std::mutex> lock(part.mu);
  if (part.file == nullptr) {
    const std::string path =
        (fs::path(dir_) / ("part-" + std::to_string(p) + ".run")).string();
    if (GCLUS_FAULTPOINT("spill.open")) {
      return IoError("spill directory not writable: cannot open " + path +
                     " (injected)");
    }
    part.file = std::fopen(path.c_str(), "wb+");
    if (part.file == nullptr) {
      return status_from_errno(errno,
                               "spill directory not writable: cannot open " +
                                   path);
    }
  }
  const std::uint64_t payload_bytes = count * record_size_;
  std::uint64_t retries = 0;
  const Status st = retry_transient(
      io_retry_policy(),
      [&] {
        // Seek to the recorded offset first: a retried (or abandoned)
        // partial append overwrites its own torn tail, and readers only
        // ever see byte ranges recorded in part.runs.
        if (std::fseek(part.file, static_cast<long>(part.write_offset),
                       SEEK_SET) != 0) {
          return status_from_errno(errno, "spill write seek failed");
        }
        if (GCLUS_FAULTPOINT("spill.write")) {
          // Model a short write: some payload landed, the rest did not.
          (void)std::fwrite(data, 1,
                            static_cast<std::size_t>(payload_bytes / 2),
                            part.file);
          return UnavailableError("spill write short (injected)");
        }
        if (std::fwrite(&count, sizeof(count), 1, part.file) != 1) {
          const int err = errno;
          std::clearerr(part.file);
          return status_from_errno(err, "spill write failed (run header)");
        }
        if (std::fwrite(data, 1, payload_bytes, part.file) != payload_bytes) {
          const int err = errno;
          std::clearerr(part.file);
          return status_from_errno(err, "spill write failed (payload)");
        }
        return OkStatus();
      },
      &retries);
  write_retries_.fetch_add(retries, std::memory_order_relaxed);
  if (!st.ok()) return st;
  part.runs.push_back(Run{part.write_offset + sizeof(count), count});
  part.write_offset += sizeof(count) + payload_bytes;
  bytes_written_.fetch_add(payload_bytes, std::memory_order_relaxed);
  return OkStatus();
}

Status SpillSession::seal() {
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    Partition& part = *parts_[p];
    if (part.file == nullptr) continue;
    if (GCLUS_FAULTPOINT("spill.flush")) {
      return IoError("spill flush failed (partition " + std::to_string(p) +
                     ", injected)");
    }
    if (std::fflush(part.file) != 0) {
      return status_from_errno(errno, "spill flush failed (partition " +
                                          std::to_string(p) + ")");
    }
  }
  return OkStatus();
}

std::size_t SpillSession::num_runs(std::size_t p) const {
  GCLUS_CHECK(p < parts_.size());
  return parts_[p]->runs.size();
}

std::uint64_t SpillSession::total_runs() const {
  std::uint64_t total = 0;
  for (const auto& part : parts_) total += part->runs.size();
  return total;
}

std::uint64_t SpillSession::bytes_written() const {
  return bytes_written_.load(std::memory_order_relaxed);
}

std::uint64_t SpillSession::write_retries() const {
  return write_retries_.load(std::memory_order_relaxed);
}

StatusOr<std::vector<RunCursor>> SpillSession::open_partition(
    std::size_t p, std::size_t buffer_records) {
  GCLUS_CHECK(p < parts_.size());
  Partition& part = *parts_[p];
  std::vector<RunCursor> cursors;
  cursors.reserve(part.runs.size());
  if (part.runs.empty()) return cursors;
  // A run recorded in memory must be readable in full: verify the file
  // still holds every byte the writer appended, so truncation surfaces
  // here (with a clear message) even before a cursor's short read would.
  if (GCLUS_FAULTPOINT("spill.seek")) {
    return IoError("spill seek failed (partition " + std::to_string(p) +
                   ", injected)");
  }
  if (std::fseek(part.file, 0, SEEK_END) != 0) {
    return status_from_errno(errno, "spill seek failed (partition " +
                                        std::to_string(p) + ")");
  }
  const long size = std::ftell(part.file);
  if (size < 0 || static_cast<std::uint64_t>(size) < part.write_offset) {
    return DataLossError("spill run truncated: partition " +
                         std::to_string(p) + " file has " +
                         std::to_string(size) + " bytes, expected " +
                         std::to_string(part.write_offset));
  }
  for (const Run& run : part.runs) {
    cursors.emplace_back(part.file, run.offset, run.count, record_size_,
                         buffer_records);
  }
  return cursors;
}

}  // namespace gclus::mr
