#include "mapreduce/spill.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <system_error>

#include "common/check.hpp"

namespace gclus::mr {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// RunCursor
// ---------------------------------------------------------------------------

RunCursor::RunCursor(std::FILE* file, std::uint64_t offset,
                     std::uint64_t count, std::size_t record_size,
                     std::size_t buffer_records)
    : file_(file),
      next_offset_(offset),
      remaining_(count),
      record_size_(record_size) {
  buffer_.resize(std::max<std::size_t>(1, buffer_records) * record_size_);
}

const void* RunCursor::next() {
  if (consumed_ == buffered_) {
    if (remaining_ == 0) return nullptr;
    refill();
  }
  const void* rec = buffer_.data() + consumed_ * record_size_;
  ++consumed_;
  return rec;
}

void RunCursor::refill() {
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(remaining_, buffer_.size() / record_size_));
  // Cursors of one partition share the FILE*, so every refill seeks to its
  // own absolute offset before reading.
  GCLUS_CHECK(std::fseek(file_, static_cast<long>(next_offset_), SEEK_SET) ==
                  0,
              "spill run seek failed at offset ", next_offset_);
  const std::size_t got = std::fread(buffer_.data(), record_size_, want,
                                     file_);
  GCLUS_CHECK(got == want, "spill run truncated: wanted ", want,
              " records at offset ", next_offset_, ", got ", got);
  next_offset_ += static_cast<std::uint64_t>(want) * record_size_;
  remaining_ -= want;
  buffered_ = want;
  consumed_ = 0;
}

// ---------------------------------------------------------------------------
// SpillSession
// ---------------------------------------------------------------------------

SpillSession::SpillSession(std::string dir_hint, std::size_t num_partitions,
                           std::size_t record_size)
    : dir_hint_(std::move(dir_hint)), record_size_(record_size) {
  GCLUS_CHECK(record_size_ > 0);
  parts_.reserve(num_partitions);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    parts_.push_back(std::make_unique<Partition>());
  }
}

SpillSession::~SpillSession() {
  for (auto& part : parts_) {
    if (part->file != nullptr) std::fclose(part->file);
  }
  if (!dir_.empty()) {
    std::error_code ec;
    fs::remove_all(dir_, ec);  // best effort; the dir is uniquely ours
  }
}

void SpillSession::ensure_dir() {
  std::call_once(dir_once_, [&] {
    static std::atomic<std::uint64_t> counter{0};
    fs::path base = dir_hint_.empty() ? fs::temp_directory_path()
                                      : fs::path(dir_hint_);
    fs::path dir = base / ("gclus-spill-" + std::to_string(::getpid()) + "-" +
                           std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    fs::create_directories(dir, ec);
    GCLUS_CHECK(!ec, "spill directory not writable: cannot create ",
                dir.string(), " (", ec.message(), ")");
    dir_ = dir.string();
  });
}

void SpillSession::append_run(std::size_t p, const void* data,
                              std::uint64_t count) {
  GCLUS_CHECK(p < parts_.size());
  GCLUS_CHECK(count > 0, "empty spill runs are never written");
  ensure_dir();
  Partition& part = *parts_[p];
  std::lock_guard<std::mutex> lock(part.mu);
  if (part.file == nullptr) {
    const std::string path =
        (fs::path(dir_) / ("part-" + std::to_string(p) + ".run")).string();
    part.file = std::fopen(path.c_str(), "wb+");
    GCLUS_CHECK(part.file != nullptr,
                "spill directory not writable: cannot open ", path);
  }
  const std::uint64_t payload_bytes = count * record_size_;
  GCLUS_CHECK(std::fwrite(&count, sizeof(count), 1, part.file) == 1,
              "spill write failed (run header)");
  GCLUS_CHECK(std::fwrite(data, 1, payload_bytes, part.file) == payload_bytes,
              "spill write failed (", payload_bytes, " payload bytes)");
  part.runs.push_back(Run{part.write_offset + sizeof(count), count});
  part.write_offset += sizeof(count) + payload_bytes;
  bytes_written_.fetch_add(payload_bytes, std::memory_order_relaxed);
}

void SpillSession::seal() {
  for (auto& part : parts_) {
    if (part->file != nullptr) {
      GCLUS_CHECK(std::fflush(part->file) == 0, "spill flush failed");
    }
  }
}

std::size_t SpillSession::num_runs(std::size_t p) const {
  GCLUS_CHECK(p < parts_.size());
  return parts_[p]->runs.size();
}

std::uint64_t SpillSession::total_runs() const {
  std::uint64_t total = 0;
  for (const auto& part : parts_) total += part->runs.size();
  return total;
}

std::uint64_t SpillSession::bytes_written() const {
  return bytes_written_.load(std::memory_order_relaxed);
}

std::vector<RunCursor> SpillSession::open_partition(
    std::size_t p, std::size_t buffer_records) {
  GCLUS_CHECK(p < parts_.size());
  Partition& part = *parts_[p];
  std::vector<RunCursor> cursors;
  cursors.reserve(part.runs.size());
  if (part.runs.empty()) return cursors;
  // A run recorded in memory must be readable in full: verify the file
  // still holds every byte the writer appended, so truncation surfaces
  // here (with a clear message) even before a cursor's short read would.
  GCLUS_CHECK(std::fseek(part.file, 0, SEEK_END) == 0, "spill seek failed");
  const long size = std::ftell(part.file);
  GCLUS_CHECK(size >= 0 &&
                  static_cast<std::uint64_t>(size) >= part.write_offset,
              "spill run truncated: partition ", p, " file has ", size,
              " bytes, expected ", part.write_offset);
  for (const Run& run : part.runs) {
    cursors.emplace_back(part.file, run.offset, run.count, record_size_,
                         buffer_records);
  }
  return cursors;
}

}  // namespace gclus::mr
