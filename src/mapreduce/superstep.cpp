#include "mapreduce/superstep.hpp"

// Header-only templates; this TU anchors the library.
