// The round-based MR(M_G, M_L) execution engine.
//
// Engine::round() implements exactly one round of the model as a two-phase
// external shuffle:
//
//   Map phase    — workers scan fixed-size chunks of the input and scatter
//                  each pair into per-worker, per-partition buckets (the
//                  hash partitioner; partition count pinned in Config, so
//                  the output never depends on the worker count).  When a
//                  round declares a *combiner* — an associative,
//                  commutative fold over same-key values — buckets are
//                  pre-aggregated before they travel further.  If buffered
//                  bytes exceed Config::spill_memory_bytes, buckets are
//                  sorted, combined, and appended to per-partition run
//                  files on disk (spill.hpp), so a round's shuffle memory
//                  is genuinely bounded, not merely accounted.
//
//   Reduce phase — each partition sort-merges its runs (in-memory
//                  leftovers + spilled) into one key-ordered stream and
//                  feeds each same-key group to the user reducer.
//
// Determinism: pairs are tagged with their input position, runs are sorted
// by (key, position), and the merge is stable on that order, so the
// concatenated output is a pure function of the input — identical across
// worker counts and across spilled vs in-memory execution.  Rounds with a
// combiner additionally require the standard MR combiner contract (the
// reducer must be invariant to pre-aggregation of its inputs) for the
// *reducer output* to be byte-identical; every combiner declared in
// mr_algos/ satisfies it (min-folds, dedup, sketch OR).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"
#include "mapreduce/config.hpp"
#include "mapreduce/spill.hpp"
#include "par/thread_pool.hpp"

namespace gclus::mr {

/// Collects the pairs a reducer emits during one round.
template <typename OutK, typename OutV>
class Emitter {
 public:
  explicit Emitter(std::vector<std::pair<OutK, OutV>>& sink) : sink_(sink) {}
  void emit(OutK key, OutV value) {
    sink_.emplace_back(std::move(key), std::move(value));
  }

 private:
  std::vector<std::pair<OutK, OutV>>& sink_;
};

/// Tag type for "this round has no combiner".
struct NoCombiner {};

/// Applies environment overrides (GCLUS_MR_SPILL_BYTES for engines left at
/// the unbounded default, GCLUS_MR_SPILL_STRICT) — how CI's low-memory job
/// forces the whole MR test suite through the out-of-core path.
Config apply_env_overrides(Config config);

class Engine {
 public:
  explicit Engine(Config config = {})
      : config_(apply_env_overrides(std::move(config))),
        pool_(config_.pool != nullptr || config_.num_workers == 0
                  ? nullptr
                  : new ThreadPool(config_.num_workers)) {
    GCLUS_CHECK(config_.num_partitions >= 1);
  }

  ~Engine() { delete pool_; }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  Metrics& mutable_metrics() { return metrics_; }
  void reset_metrics() { metrics_.reset(); }

  ThreadPool& pool() {
    if (config_.pool != nullptr) return *config_.pool;
    return pool_ != nullptr ? *pool_ : ThreadPool::global();
  }

  /// Executes one MR round.
  ///
  /// `Reduce` is invoked as reduce(const K& key, std::span<V> values,
  /// Emitter<OutK, OutV>&).  Keys must be totally ordered (operator<) and
  /// values arrive in a deterministic order (sorted by their original
  /// position in `input`).
  template <typename K, typename V, typename OutK, typename OutV,
            typename Reduce>
  std::vector<std::pair<OutK, OutV>> round(std::vector<std::pair<K, V>> input,
                                           Reduce reduce) {
    return round_combine<K, V, OutK, OutV>(std::move(input),
                                           std::move(reduce), NoCombiner{});
  }

  /// Status-returning variant of round() for long-lived callers.
  template <typename K, typename V, typename OutK, typename OutV,
            typename Reduce>
  StatusOr<std::vector<std::pair<OutK, OutV>>> try_round(
      std::vector<std::pair<K, V>> input, Reduce reduce) {
    return try_round_combine<K, V, OutK, OutV>(std::move(input),
                                               std::move(reduce),
                                               NoCombiner{});
  }

  /// Executes one MR round with a mapper-side combiner.
  ///
  /// `Combine` is an associative, commutative fold `V(const V&, const V&)`
  /// over same-key values; it pre-aggregates buckets before they are
  /// buffered onward or spilled, cutting shuffle volume (tracked in
  /// Metrics::combiner_pairs_in/out).  With a combiner, a reducer group
  /// holds one folded value per run rather than every original value, so
  /// only declare one when the reducer is invariant to that (the standard
  /// MR combiner contract).  Config::enable_combiners == false makes this
  /// identical to round().
  template <typename K, typename V, typename OutK, typename OutV,
            typename Reduce, typename Combine>
  std::vector<std::pair<OutK, OutV>> round_combine(
      std::vector<std::pair<K, V>> input, Reduce reduce, Combine combine) {
    auto result = try_round_combine<K, V, OutK, OutV>(
        std::move(input), std::move(reduce), std::move(combine));
    GCLUS_CHECK(result.ok(), "MR round failed: ", result.status().to_string());
    return std::move(result).value();
  }

  /// The Status-returning core of round_combine.  Spill failures degrade
  /// rather than fail: a run that cannot be appended to the primary spill
  /// directory is retried against Config::spill_fallback_dir (when set),
  /// and if that also fails the engine stops spilling and keeps the rest
  /// of the round's shuffle in memory — the output is byte-identical
  /// either way (the (key, pos) merge order and the combiner contract are
  /// independent of run placement).  Failures that *lose already-spilled
  /// data* — a sealed file that cannot be flushed, a run file truncated
  /// or unreadable during the reduce merge — cannot be degraded around
  /// and come back as kIoError / kDataLoss.
  template <typename K, typename V, typename OutK, typename OutV,
            typename Reduce, typename Combine>
  StatusOr<std::vector<std::pair<OutK, OutV>>> try_round_combine(
      std::vector<std::pair<K, V>> input, Reduce reduce, Combine combine) {
    account_round(input.size(), sizeof(std::pair<K, V>));

    // A pair tagged with its input position: the reproducibility handle
    // every later ordering decision hangs off.
    struct Tagged {
      K key;
      V value;
      std::uint64_t pos;
    };
    const auto tagged_less = [](const Tagged& a, const Tagged& b) {
      if (a.key < b.key) return true;
      if (b.key < a.key) return false;
      return a.pos < b.pos;
    };

    constexpr bool kSpillable = std::is_trivially_copyable_v<K> &&
                                std::is_trivially_copyable_v<V>;
    constexpr bool kHasCombiner = !std::is_same_v<Combine, NoCombiner>;
    const bool use_combiner = kHasCombiner && config_.enable_combiners;
    const bool spill_enabled = kSpillable && config_.spill_memory_bytes > 0 &&
                               config_.spill_memory_bytes != kSpillUnbounded;

    ThreadPool& workers = pool();
    const std::size_t num_workers = std::max<std::size_t>(
        1, workers.num_threads());
    const std::size_t num_partitions = config_.num_partitions;
    const std::uint64_t per_worker_budget =
        spill_enabled
            ? std::max<std::uint64_t>(
                  config_.spill_memory_bytes / num_workers, sizeof(Tagged))
            : std::numeric_limits<std::uint64_t>::max();

    // Folds equal-key neighbors of a (key, pos)-sorted run; the minimum
    // position survives as the fold's representative.
    const auto combine_sorted_run = [&](std::vector<Tagged>& run,
                                        std::uint64_t& pairs_in,
                                        std::uint64_t& pairs_out) {
      if constexpr (kHasCombiner) {
        pairs_in += run.size();
        std::size_t out = 0;
        std::size_t i = 0;
        while (i < run.size()) {
          Tagged acc = std::move(run[i]);
          std::size_t j = i + 1;
          while (j < run.size() && !(acc.key < run[j].key) &&
                 !(run[j].key < acc.key)) {
            acc.value = combine(acc.value, run[j].value);
            ++j;
          }
          run[out++] = std::move(acc);
          i = j;
        }
        run.resize(out);
        pairs_out += run.size();
      } else {
        (void)run;
        (void)pairs_in;
        (void)pairs_out;
      }
    };

    // --- Map phase: parallel partition + (combine) + spill. ---
    struct Shard {
      std::vector<std::vector<Tagged>> buckets;
      std::uint64_t buffered_bytes = 0;
      std::uint64_t peak_bytes = 0;
      std::uint64_t combiner_in = 0;
      std::uint64_t combiner_out = 0;
      std::uint64_t spilled_runs = 0;
    };
    std::vector<Shard> shards(num_workers);

    // Spill target escalation: primary dir -> fallback dir -> in-memory.
    // `tier` only ever advances, so once a target has failed no worker
    // goes back to it; runs already appended to an earlier tier stay
    // valid (a failed append leaves its partition untouched) and are
    // merged alongside everything else in the reduce phase.
    enum : int { kPrimary = 0, kFallback = 1, kDegraded = 2 };
    std::array<std::unique_ptr<SpillSession>, 2> sessions;
    std::mutex spill_mu;
    std::atomic<int> tier{kPrimary};
    std::atomic<std::uint64_t> fallback_runs{0};
    const auto session_at = [&](int t) -> SpillSession& {
      std::lock_guard<std::mutex> lock(spill_mu);
      auto& slot = sessions[static_cast<std::size_t>(t)];
      if (slot == nullptr) {
        slot = std::make_unique<SpillSession>(
            t == kPrimary ? config_.spill_dir : config_.spill_fallback_dir,
            num_partitions, sizeof(Tagged));
      }
      return *slot;
    };
    const auto escalate = [&](int from, const Status& why) {
      const int to = (from == kPrimary && !config_.spill_fallback_dir.empty())
                         ? kFallback
                         : kDegraded;
      int expected = from;
      if (tier.compare_exchange_strong(expected, to)) {
        std::fprintf(stderr,
                     "gclus: MR spill %s: %s\n",
                     to == kFallback
                         ? "falling back to GCLUS_MR_SPILL_FALLBACK_DIR"
                         : "degrading to in-memory shuffle",
                     why.to_string().c_str());
      }
    };
    // Appends one run to the current tier; false = degraded, caller keeps
    // the bucket in memory.
    const auto spill_append = [&](std::size_t p, const void* data,
                                  std::uint64_t count) {
      for (;;) {
        const int t = tier.load(std::memory_order_relaxed);
        if (t == kDegraded) return false;
        const Status st = session_at(t).append_run(p, data, count);
        if (st.ok()) {
          if (t == kFallback) {
            fallback_runs.fetch_add(1, std::memory_order_relaxed);
          }
          return true;
        }
        escalate(t, st);
      }
    };

    // Chunked scan: chunk boundaries depend only on the input size, and
    // the position tag makes the scatter order irrelevant, so dynamic
    // chunk assignment cannot leak into the output.
    constexpr std::size_t kChunkPairs = 2048;
    const std::size_t num_chunks =
        (input.size() + kChunkPairs - 1) / kChunkPairs;
    std::atomic<std::size_t> chunk_cursor{0};
    workers.run_on_workers([&](std::size_t w) {
      Shard& shard = shards[w];
      shard.buckets.resize(num_partitions);
      const auto flush_to_disk = [&] {
        if constexpr (kSpillable) {
          for (std::size_t p = 0; p < num_partitions; ++p) {
            auto& bucket = shard.buckets[p];
            if (bucket.empty()) continue;
            std::sort(bucket.begin(), bucket.end(), tagged_less);
            if (use_combiner) {
              combine_sorted_run(bucket, shard.combiner_in,
                                 shard.combiner_out);
            }
            if (!spill_append(p, bucket.data(), bucket.size())) {
              // Degraded: this (sorted, combined) bucket and everything
              // after it stay in memory; the reduce phase re-sorts and
              // re-folds, which the combiner contract makes exact.
              break;
            }
            ++shard.spilled_runs;
            std::vector<Tagged>().swap(bucket);  // actually release memory
          }
          shard.buffered_bytes = 0;
          for (const auto& bucket : shard.buckets) {
            shard.buffered_bytes += bucket.size() * sizeof(Tagged);
          }
        }
      };
      for (;;) {
        const std::size_t c =
            chunk_cursor.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) break;
        const std::size_t begin = c * kChunkPairs;
        const std::size_t end =
            std::min(input.size(), begin + kChunkPairs);
        for (std::size_t i = begin; i < end; ++i) {
          auto& [k, v] = input[i];
          const std::size_t p = partition_of(k, num_partitions);
          if (spill_enabled &&
              tier.load(std::memory_order_relaxed) != kDegraded &&
              shard.buffered_bytes + sizeof(Tagged) > per_worker_budget) {
            flush_to_disk();
          }
          shard.buckets[p].push_back(
              Tagged{std::move(k), std::move(v), static_cast<std::uint64_t>(i)});
          shard.buffered_bytes += sizeof(Tagged);
          shard.peak_bytes =
              std::max(shard.peak_bytes, shard.buffered_bytes);
        }
      }
    });
    input.clear();
    input.shrink_to_fit();
    for (const auto& session : sessions) {
      // A seal failure means already-spilled (and evicted) data may never
      // reach the file: there is nothing left to degrade to.
      if (session != nullptr) GCLUS_RETURN_IF_ERROR(session->seal());
    }

    // --- Reduce phase: per-partition sort-merge of all runs. ---
    std::vector<std::vector<std::pair<OutK, OutV>>> outputs(num_partitions);
    std::atomic<std::size_t> max_group{0};
    std::atomic<std::uint64_t> runs_merged{0};
    std::atomic<std::uint64_t> merge_buffer_peak{0};
    std::atomic<std::size_t> part_cursor{0};
    // Workers cannot early-return out of run_on_workers, so merge-phase
    // failures park the first error here and the round reports it after
    // the barrier.
    std::mutex err_mu;
    Status round_status;
    const auto record_error = [&](Status st) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (round_status.ok()) round_status = std::move(st);
    };
    workers.run_on_workers([&](std::size_t) {
      std::uint64_t combiner_in = 0;
      std::uint64_t combiner_out = 0;
      std::uint64_t my_merge_peak = 0;
      std::vector<V> group;
      for (;;) {
        const std::size_t p =
            part_cursor.fetch_add(1, std::memory_order_relaxed);
        if (p >= num_partitions) break;

        // In-memory leftovers become sorted (combined) runs, worker order.
        std::vector<std::vector<Tagged>> mem_runs;
        for (std::size_t w = 0; w < num_workers; ++w) {
          auto& bucket = shards[w].buckets[p];
          if (bucket.empty()) continue;
          std::sort(bucket.begin(), bucket.end(), tagged_less);
          if (use_combiner) {
            combine_sorted_run(bucket, combiner_in, combiner_out);
          }
          mem_runs.push_back(std::move(bucket));
        }

        Emitter<OutK, OutV> emitter(outputs[p]);
        std::size_t local_max = 0;

        // Spilled runs stream through bounded cursors; the whole merge
        // holds one refill buffer per run, never a whole partition.
        std::vector<RunCursor> disk_runs;
        if constexpr (kSpillable) {
          std::size_t total_disk = 0;
          for (const auto& session : sessions) {
            if (session != nullptr) total_disk += session->num_runs(p);
          }
          if (total_disk > 0) {
            const std::size_t buffer_records = std::clamp<std::size_t>(
                per_worker_budget / (sizeof(Tagged) * total_disk), 1, 4096);
            my_merge_peak = std::max<std::uint64_t>(
                my_merge_peak, static_cast<std::uint64_t>(buffer_records) *
                                   sizeof(Tagged) * total_disk);
            bool open_failed = false;
            for (const auto& session : sessions) {
              if (session == nullptr || session->num_runs(p) == 0) continue;
              auto cursors = session->open_partition(p, buffer_records);
              if (!cursors.ok()) {
                record_error(std::move(cursors).status());
                open_failed = true;
                break;
              }
              for (auto& c : *cursors) disk_runs.push_back(std::move(c));
            }
            if (open_failed) continue;  // round fails; skip the partition
          }
        }
        const std::size_t total_runs = mem_runs.size() + disk_runs.size();
        if (total_runs == 0) continue;
        runs_merged.fetch_add(total_runs, std::memory_order_relaxed);

        if (disk_runs.empty() && mem_runs.size() == 1) {
          // Fast path: one in-memory run reduces by linear group scan
          // (also the only path for non-trivially-copyable keys/values).
          auto& run = mem_runs.front();
          std::size_t i = 0;
          while (i < run.size()) {
            std::size_t j = i;
            group.clear();
            while (j < run.size() && !(run[i].key < run[j].key) &&
                   !(run[j].key < run[i].key)) {
              group.push_back(std::move(run[j].value));
              ++j;
            }
            local_max = std::max(local_max, group.size());
            reduce(run[i].key, std::span<V>(group), emitter);
            i = j;
          }
        } else {
          merge_runs<Tagged, K, V>(mem_runs, disk_runs, tagged_less, group,
                                   local_max,
                                   [&](const K& key, std::span<V> values) {
                                     reduce(key, values, emitter);
                                   });
        }

        // A cursor ends its stream on error exactly like at end-of-run,
        // so the merge cannot tell a truncated run from a complete one —
        // only the parked status can.
        for (const RunCursor& cursor : disk_runs) {
          if (!cursor.status().ok()) record_error(cursor.status());
        }

        std::size_t seen = max_group.load(std::memory_order_relaxed);
        while (local_max > seen &&
               !max_group.compare_exchange_weak(seen, local_max,
                                                std::memory_order_relaxed)) {
        }
      }
      shards_accumulate(combiner_in, combiner_out);
      merge_buffer_peak.fetch_add(my_merge_peak, std::memory_order_relaxed);
    });

    GCLUS_RETURN_IF_ERROR(std::move(round_status));

    const bool degraded = tier.load() == kDegraded;
    if (degraded) ++metrics_.spill_degraded_rounds;
    metrics_.spill_fallback_runs += fallback_runs.load();
    std::uint64_t bytes_spilled = 0;
    for (const auto& session : sessions) {
      if (session == nullptr) continue;
      bytes_spilled += session->bytes_written();
      metrics_.spill_write_retries += session->write_retries();
    }
    account_groups(max_group.load());
    account_shuffle(shards, bytes_spilled, runs_merged.load(),
                    merge_buffer_peak.load(), sizeof(Tagged), spill_enabled,
                    degraded, num_workers);

    // --- Concatenate outputs in partition order (deterministic). ---
    std::size_t total = 0;
    for (const auto& o : outputs) total += o.size();
    std::vector<std::pair<OutK, OutV>> result;
    result.reserve(total);
    for (auto& o : outputs) {
      std::move(o.begin(), o.end(), std::back_inserter(result));
    }
    return result;
  }

  /// Convenience: same key/value types in and out.
  template <typename K, typename V, typename Reduce>
  std::vector<std::pair<K, V>> round_kv(std::vector<std::pair<K, V>> input,
                                        Reduce reduce) {
    return round<K, V, K, V>(std::move(input), std::move(reduce));
  }

 private:
  template <typename K>
  static std::size_t partition_of(const K& key, std::size_t num_partitions) {
    if constexpr (std::is_integral_v<K>) {
      return static_cast<std::size_t>(
          mix64(static_cast<std::uint64_t>(key)) % num_partitions);
    } else {
      return std::hash<K>{}(key) % num_partitions;
    }
  }

  /// K-way stable merge of sorted runs by (key, pos), streaming each
  /// same-key group through `consume(key, values)`.
  template <typename Tagged, typename K, typename V, typename Less,
            typename Consume>
  static void merge_runs(std::vector<std::vector<Tagged>>& mem_runs,
                         std::vector<RunCursor>& disk_runs, Less less,
                         std::vector<V>& group, std::size_t& local_max,
                         Consume consume) {
    struct Source {
      const Tagged* cur;
      const Tagged* end;       // memory runs; nullptr for disk
      RunCursor* cursor;       // disk runs; nullptr for memory
      void advance() {
        if (cursor != nullptr) {
          cur = static_cast<const Tagged*>(cursor->next());
        } else {
          ++cur;
          if (cur == end) cur = nullptr;
        }
      }
    };
    std::vector<Source> sources;
    sources.reserve(mem_runs.size() + disk_runs.size());
    for (auto& run : mem_runs) {
      sources.push_back(Source{run.data(), run.data() + run.size(), nullptr});
    }
    for (auto& cursor : disk_runs) {
      const auto* first = static_cast<const Tagged*>(cursor.next());
      if (first != nullptr) sources.push_back(Source{first, nullptr, &cursor});
    }

    // Min-heap of run heads ordered by (key, pos).  Positions are unique
    // (each input pair lands in exactly one run; a combiner keeps the
    // minimum position of its fold), so heads never tie.
    const auto heap_greater = [&](const Source* a, const Source* b) {
      return less(*b->cur, *a->cur);
    };
    std::vector<Source*> heap;
    heap.reserve(sources.size());
    for (auto& s : sources) {
      if (s.cur != nullptr) heap.push_back(&s);
    }
    std::make_heap(heap.begin(), heap.end(), heap_greater);

    group.clear();
    bool have_key = false;
    // The group key is copied out of the record (cursor refills may reuse
    // the buffer the record pointer aims into).
    K current_key{};
    const auto finish_group = [&] {
      if (!have_key) return;
      local_max = std::max(local_max, group.size());
      consume(current_key, std::span<V>(group));
      group.clear();
    };
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), heap_greater);
      Source* s = heap.back();
      heap.pop_back();
      const Tagged& rec = *s->cur;
      // The merged stream is key-nondecreasing, so a strictly greater key
      // closes the current group.
      if (!have_key || current_key < rec.key) {
        finish_group();
        current_key = rec.key;
        have_key = true;
      }
      group.push_back(rec.value);
      s->advance();
      if (s->cur != nullptr) {
        heap.push_back(s);
        std::push_heap(heap.begin(), heap.end(), heap_greater);
      }
    }
    finish_group();
  }

  void account_round(std::size_t pairs, std::size_t pair_bytes) {
    ++metrics_.rounds;
    metrics_.pairs_shuffled += pairs;
    metrics_.bytes_shuffled += static_cast<std::uint64_t>(pairs) * pair_bytes;
    metrics_.max_round_pairs =
        std::max<std::uint64_t>(metrics_.max_round_pairs, pairs);
    metrics_.simulated_latency_s += config_.per_round_latency_s;
    if (pairs > config_.global_memory_pairs) {
      metrics_.global_memory_exceeded = true;
      GCLUS_CHECK(!config_.strict, "MR global memory (M_G) exceeded: ", pairs,
                  " pairs > ", config_.global_memory_pairs);
    }
  }

  void account_groups(std::size_t max_group) {
    metrics_.max_reducer_pairs =
        std::max(metrics_.max_reducer_pairs, max_group);
    if (max_group > config_.local_memory_pairs) {
      metrics_.local_memory_exceeded = true;
      GCLUS_CHECK(!config_.strict, "MR local memory (M_L) exceeded: ",
                  max_group, " pairs > ", config_.local_memory_pairs);
    }
  }

  template <typename Shards>
  void account_shuffle(const Shards& shards, std::uint64_t bytes_spilled,
                       std::uint64_t runs_merged,
                       std::uint64_t merge_buffer_peak,
                       std::size_t record_size, bool spill_enabled,
                       bool degraded, std::size_t num_workers) {
    std::uint64_t round_peak = 0;
    for (const auto& shard : shards) {
      round_peak += shard.peak_bytes;
      metrics_.combiner_pairs_in += shard.combiner_in;
      metrics_.combiner_pairs_out += shard.combiner_out;
      metrics_.spill_runs += shard.spilled_runs;
    }
    {
      std::lock_guard<std::mutex> lock(reduce_combiner_mu_);
      metrics_.combiner_pairs_in += reduce_combiner_in_;
      metrics_.combiner_pairs_out += reduce_combiner_out_;
      reduce_combiner_in_ = 0;
      reduce_combiner_out_ = 0;
    }
    metrics_.peak_shuffle_buffer_bytes =
        std::max(metrics_.peak_shuffle_buffer_bytes, round_peak);
    metrics_.peak_merge_buffer_bytes =
        std::max(metrics_.peak_merge_buffer_bytes, merge_buffer_peak);
    metrics_.runs_merged += runs_merged;
    metrics_.bytes_spilled += bytes_spilled;
    // A degraded round holds the shuffle in memory by design; its peak is
    // legitimately above budget, so the strict check applies only to
    // rounds where spilling actually worked.
    if (spill_enabled && config_.spill_strict && !degraded) {
      const std::uint64_t allowed = std::max<std::uint64_t>(
          config_.spill_memory_bytes,
          static_cast<std::uint64_t>(num_workers) * record_size);
      GCLUS_CHECK(round_peak <= allowed,
                  "MR spill budget exceeded: buffered ", round_peak,
                  " bytes > ", allowed, " allowed");
    }
  }

  /// Reduce-phase workers fold their combiner counters through here (the
  /// map-phase ones live in the shards and need no lock).
  void shards_accumulate(std::uint64_t combiner_in,
                         std::uint64_t combiner_out) {
    if (combiner_in == 0 && combiner_out == 0) return;
    std::lock_guard<std::mutex> lock(reduce_combiner_mu_);
    reduce_combiner_in_ += combiner_in;
    reduce_combiner_out_ += combiner_out;
  }

  Config config_;
  Metrics metrics_;
  ThreadPool* pool_;  // owned iff non-null; else external/global pool
  std::mutex reduce_combiner_mu_;
  std::uint64_t reduce_combiner_in_ = 0;
  std::uint64_t reduce_combiner_out_ = 0;
};

}  // namespace gclus::mr
