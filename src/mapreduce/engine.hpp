// The round-based MR(M_G, M_L) execution engine.
//
// Engine::round() implements exactly one round of the model: the input
// multiset of key-value pairs is shuffled (hash-partitioned and grouped by
// key), a user reducer runs once per distinct key over that key's values,
// and whatever pairs the reducers emit become the round's output.
//
// Execution is backed by a thread pool: partitions are processed
// concurrently, groups within a partition sequentially in sorted key
// order, which makes every round a deterministic function of its input.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "mapreduce/config.hpp"
#include "par/thread_pool.hpp"

namespace gclus::mr {

/// Collects the pairs a reducer emits during one round.
template <typename OutK, typename OutV>
class Emitter {
 public:
  explicit Emitter(std::vector<std::pair<OutK, OutV>>& sink) : sink_(sink) {}
  void emit(OutK key, OutV value) {
    sink_.emplace_back(std::move(key), std::move(value));
  }

 private:
  std::vector<std::pair<OutK, OutV>>& sink_;
};

class Engine {
 public:
  explicit Engine(Config config = {})
      : config_(config),
        pool_(config.num_workers == 0 ? nullptr
                                      : new ThreadPool(config.num_workers)) {}

  ~Engine() { delete pool_; }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  Metrics& mutable_metrics() { return metrics_; }
  void reset_metrics() { metrics_.reset(); }

  ThreadPool& pool() {
    return pool_ != nullptr ? *pool_ : ThreadPool::global();
  }

  /// Executes one MR round.
  ///
  /// `Reduce` is invoked as reduce(const K& key, std::span<V> values,
  /// Emitter<OutK, OutV>&).  Keys must be totally ordered (operator<) and
  /// equality-comparable; values arrive in a deterministic order (sorted by
  /// their original position in `input`).
  template <typename K, typename V, typename OutK, typename OutV,
            typename Reduce>
  std::vector<std::pair<OutK, OutV>> round(std::vector<std::pair<K, V>> input,
                                           Reduce reduce) {
    account_round(input.size(), sizeof(std::pair<K, V>));

    const std::size_t num_partitions = std::max<std::size_t>(
        1, pool().num_threads() * 4);

    // --- Shuffle: stable hash partition by key. ---
    // Tag each pair with its input position so grouping is reproducible.
    struct Tagged {
      K key;
      V value;
      std::uint64_t pos;
    };
    std::vector<std::vector<Tagged>> parts(num_partitions);
    for (std::uint64_t i = 0; i < input.size(); ++i) {
      auto& [k, v] = input[i];
      const std::size_t p = partition_of(k, num_partitions);
      parts[p].push_back(Tagged{std::move(k), std::move(v), i});
    }
    input.clear();
    input.shrink_to_fit();

    // --- Reduce: each partition groups its pairs and runs the reducer. ---
    std::vector<std::vector<std::pair<OutK, OutV>>> outputs(num_partitions);
    std::atomic<std::size_t> max_group{0};
    std::atomic<std::size_t> cursor{0};
    pool().run_on_workers([&](std::size_t) {
      for (;;) {
        const std::size_t p = cursor.fetch_add(1, std::memory_order_relaxed);
        if (p >= num_partitions) break;
        auto& part = parts[p];
        std::sort(part.begin(), part.end(),
                  [](const Tagged& a, const Tagged& b) {
                    if (a.key < b.key) return true;
                    if (b.key < a.key) return false;
                    return a.pos < b.pos;
                  });
        Emitter<OutK, OutV> emitter(outputs[p]);
        std::size_t local_max = 0;
        std::size_t i = 0;
        std::vector<V> group;
        while (i < part.size()) {
          std::size_t j = i;
          group.clear();
          while (j < part.size() &&
                 !(part[i].key < part[j].key) && !(part[j].key < part[i].key)) {
            group.push_back(std::move(part[j].value));
            ++j;
          }
          local_max = std::max(local_max, group.size());
          reduce(part[i].key, std::span<V>(group), emitter);
          i = j;
        }
        std::size_t seen = max_group.load(std::memory_order_relaxed);
        while (local_max > seen &&
               !max_group.compare_exchange_weak(seen, local_max,
                                                std::memory_order_relaxed)) {
        }
        part.clear();
        part.shrink_to_fit();
      }
    });

    account_groups(max_group.load());

    // --- Concatenate outputs in partition order (deterministic). ---
    std::size_t total = 0;
    for (const auto& o : outputs) total += o.size();
    std::vector<std::pair<OutK, OutV>> result;
    result.reserve(total);
    for (auto& o : outputs) {
      std::move(o.begin(), o.end(), std::back_inserter(result));
    }
    return result;
  }

  /// Convenience: same key/value types in and out.
  template <typename K, typename V, typename Reduce>
  std::vector<std::pair<K, V>> round_kv(std::vector<std::pair<K, V>> input,
                                        Reduce reduce) {
    return round<K, V, K, V>(std::move(input), std::move(reduce));
  }

 private:
  template <typename K>
  static std::size_t partition_of(const K& key, std::size_t num_partitions) {
    if constexpr (std::is_integral_v<K>) {
      return static_cast<std::size_t>(
          mix64(static_cast<std::uint64_t>(key)) % num_partitions);
    } else {
      return std::hash<K>{}(key) % num_partitions;
    }
  }

  void account_round(std::size_t pairs, std::size_t pair_bytes) {
    ++metrics_.rounds;
    metrics_.pairs_shuffled += pairs;
    metrics_.bytes_shuffled += static_cast<std::uint64_t>(pairs) * pair_bytes;
    metrics_.max_round_pairs =
        std::max<std::uint64_t>(metrics_.max_round_pairs, pairs);
    metrics_.simulated_latency_s += config_.per_round_latency_s;
    if (pairs > config_.global_memory_pairs) {
      metrics_.global_memory_exceeded = true;
      GCLUS_CHECK(!config_.strict, "MR global memory (M_G) exceeded: ", pairs,
                  " pairs > ", config_.global_memory_pairs);
    }
  }

  void account_groups(std::size_t max_group) {
    metrics_.max_reducer_pairs =
        std::max(metrics_.max_reducer_pairs, max_group);
    if (max_group > config_.local_memory_pairs) {
      metrics_.local_memory_exceeded = true;
      GCLUS_CHECK(!config_.strict, "MR local memory (M_L) exceeded: ",
                  max_group, " pairs > ", config_.local_memory_pairs);
    }
  }

  Config config_;
  Metrics metrics_;
  ThreadPool* pool_;  // owned iff non-null; else the global pool is used
};

}  // namespace gclus::mr
