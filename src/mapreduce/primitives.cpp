#include "mapreduce/primitives.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gclus::mr {

namespace {

/// Effective reducer capacity: the configured M_L, clamped to a sane floor
/// so degenerate configurations still terminate.
std::size_t capacity(const Engine& engine) {
  return std::max<std::size_t>(2, engine.config().local_memory_pairs);
}

}  // namespace

namespace {

/// Sort items are (value, original position): the position component makes
/// every key distinct, so splitters always partition strictly and
/// stability falls out for free.
using SortItem = std::pair<std::uint64_t, std::uint64_t>;

}  // namespace

std::vector<std::uint64_t> mr_sort(Engine& engine,
                                   std::vector<std::uint64_t> values) {
  const std::size_t n = values.size();
  if (n <= 1) return values;
  const std::size_t cap = capacity(engine);

  std::vector<SortItem> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) items.emplace_back(values[i], i);
  values.clear();
  values.shrink_to_fit();

  // Ordered bucket list; buckets over the reducer capacity are re-split,
  // all in the SAME pair of rounds per level (map-side sampling + reduce
  // splitter selection, then map-side partition + reduce local sort).
  // Levels shrink bucket sizes by ~cap/2, so rounds = O(log_{M_L} n).
  std::vector<std::vector<SortItem>> buckets(1);
  buckets[0] = std::move(items);

  constexpr std::size_t kOversample = 8;
  while (true) {
    std::vector<std::size_t> oversized;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b].size() > cap) oversized.push_back(b);
    }
    if (oversized.empty()) break;

    // --- Round A: per-bucket splitter selection from a map-side sample.
    // Each oversized bucket contributes a regular sample small enough for
    // one reducer; the reducer emits child-count-1 splitters.
    using SampleKV = std::pair<std::uint32_t, SortItem>;
    std::vector<SampleKV> sample_input;
    std::vector<std::size_t> children_of(oversized.size());
    for (std::size_t oi = 0; oi < oversized.size(); ++oi) {
      const auto& bucket = buckets[oversized[oi]];
      const std::size_t children =
          std::min(bucket.size(), 2 * ((bucket.size() - 1) / cap + 1));
      children_of[oi] = children;
      const std::size_t target = std::min(cap, children * kOversample);
      const std::size_t stride = std::max<std::size_t>(
          1, bucket.size() / target);
      for (std::size_t i = 0; i < bucket.size(); i += stride) {
        sample_input.emplace_back(static_cast<std::uint32_t>(oi), bucket[i]);
      }
    }
    std::vector<std::vector<SortItem>> splitters(oversized.size());
    engine.round<std::uint32_t, SortItem, std::uint32_t, std::uint8_t>(
        std::move(sample_input),
        [&](const std::uint32_t& oi, std::span<SortItem> group,
            Emitter<std::uint32_t, std::uint8_t>&) {
          std::vector<SortItem> s(group.begin(), group.end());
          std::sort(s.begin(), s.end());
          const std::size_t children = children_of[oi];
          auto& sp = splitters[oi];
          for (std::size_t c = 1; c < children; ++c) {
            sp.push_back(s[c * s.size() / children]);
          }
          sp.erase(std::unique(sp.begin(), sp.end()), sp.end());
        });

    // --- Round B: map-side partition against the splitters, reduce-side
    // local sort of every child bucket that now fits.
    using PartKV = std::pair<std::uint64_t, SortItem>;
    std::vector<PartKV> part_input;
    // Child buckets get globally ordered ids: walk the bucket list and
    // splice children in place of their parent.
    std::vector<std::vector<SortItem>> next;
    std::vector<std::size_t> child_base(oversized.size());
    {
      std::size_t oi = 0;
      for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (oi < oversized.size() && oversized[oi] == b) {
          child_base[oi] = next.size();
          for (std::size_t c = 0; c <= splitters[oi].size(); ++c) {
            next.emplace_back();
          }
          ++oi;
        } else {
          next.push_back(std::move(buckets[b]));
        }
      }
    }
    for (std::size_t oi = 0; oi < oversized.size(); ++oi) {
      const auto& sp = splitters[oi];
      for (const SortItem& item : buckets[oversized[oi]]) {
        const std::size_t child =
            std::upper_bound(sp.begin(), sp.end(), item) - sp.begin();
        part_input.emplace_back(child_base[oi] + child, item);
      }
    }
    engine.round<std::uint64_t, SortItem, std::uint64_t, std::uint8_t>(
        std::move(part_input),
        [&](const std::uint64_t& child, std::span<SortItem> group,
            Emitter<std::uint64_t, std::uint8_t>&) {
          auto& bucket = next[child];
          bucket.assign(group.begin(), group.end());
          if (bucket.size() <= cap) {
            std::sort(bucket.begin(), bucket.end());
          }
        });
    buckets = std::move(next);
  }

  // Small buckets that never overflowed still need their one-round local
  // sort (the single-bucket n <= cap case lands here).
  bool any_unsorted = false;
  for (const auto& bucket : buckets) {
    if (!std::is_sorted(bucket.begin(), bucket.end())) {
      any_unsorted = true;
      break;
    }
  }
  if (any_unsorted) {
    using KV = std::pair<std::uint32_t, SortItem>;
    std::vector<KV> input;
    input.reserve(n);
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      for (const SortItem& item : buckets[b]) {
        input.emplace_back(static_cast<std::uint32_t>(b), item);
      }
    }
    engine.round<std::uint32_t, SortItem, std::uint32_t, std::uint8_t>(
        std::move(input),
        [&](const std::uint32_t& b, std::span<SortItem> group,
            Emitter<std::uint32_t, std::uint8_t>&) {
          auto& bucket = buckets[b];
          bucket.assign(group.begin(), group.end());
          std::sort(bucket.begin(), bucket.end());
        });
  }

  std::vector<std::uint64_t> result;
  result.reserve(n);
  for (const auto& bucket : buckets) {
    for (const SortItem& item : bucket) result.push_back(item.first);
  }
  return result;
}

std::vector<std::uint64_t> mr_prefix_sum(
    Engine& engine, const std::vector<std::uint64_t>& values,
    std::uint64_t* total_out) {
  const std::size_t n = values.size();
  std::vector<std::uint64_t> out(n, 0);
  if (n == 0) {
    if (total_out != nullptr) *total_out = 0;
    return out;
  }
  const std::size_t fan = capacity(engine);

  // Up-sweep: level l holds one aggregate per block of fan^l inputs.
  // levels[0] = values; levels[l+1][b] = sum of levels[l][b*fan..(b+1)*fan).
  std::vector<std::vector<std::uint64_t>> levels;
  levels.push_back(values);
  while (levels.back().size() > 1) {
    const auto& cur = levels.back();
    // (size-1)/fan + 1 avoids the overflow of size+fan-1 when M_L is
    // unbounded (fan == SIZE_MAX).
    const std::size_t blocks = (cur.size() - 1) / fan + 1;
    using KV = std::pair<std::uint64_t, std::uint64_t>;
    std::vector<KV> input;
    input.reserve(cur.size());
    for (std::size_t i = 0; i < cur.size(); ++i) {
      input.emplace_back(i / fan, cur[i]);
    }
    std::vector<std::uint64_t> next(blocks, 0);
    engine.round<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t>(
        std::move(input),
        [&](const std::uint64_t& block, std::span<std::uint64_t> group,
            Emitter<std::uint64_t, std::uint64_t>&) {
          std::uint64_t sum = 0;
          for (const auto v : group) sum += v;
          next[block] = sum;
        });
    levels.push_back(std::move(next));
  }
  if (total_out != nullptr) *total_out = levels.back()[0];

  // Down-sweep: push exclusive offsets back down, one round per level.
  // offsets[l][b] = sum of all inputs before block b of level l.
  std::vector<std::uint64_t> offsets_above(1, 0);  // top level: single block
  for (std::size_t l = levels.size() - 1; l-- > 0;) {
    const auto& cur = levels[l];
    using KV = std::pair<std::uint64_t, std::uint64_t>;
    // Key = parent block; values = children values tagged by position.
    // Emit one offset per child.  We encode (child_index, value) pairs by
    // sending index and value through separate rounds would double cost;
    // instead the reducer recomputes the running sum over its ≤ fan
    // children, which it receives in deterministic input order.
    std::vector<KV> input;
    input.reserve(cur.size());
    for (std::size_t i = 0; i < cur.size(); ++i) {
      input.emplace_back(i / fan, cur[i]);
    }
    std::vector<std::uint64_t> offsets(cur.size(), 0);
    engine.round<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t>(
        std::move(input),
        [&](const std::uint64_t& block, std::span<std::uint64_t> group,
            Emitter<std::uint64_t, std::uint64_t>&) {
          std::uint64_t running = offsets_above[block];
          for (std::size_t c = 0; c < group.size(); ++c) {
            offsets[block * fan + c] = running;
            running += group[c];
          }
        });
    offsets_above = std::move(offsets);
  }
  out = std::move(offsets_above);
  return out;
}

std::vector<std::uint64_t> mr_segmented_prefix_sum(
    Engine& engine, const std::vector<std::uint64_t>& values,
    const std::vector<std::uint32_t>& segment_ids) {
  GCLUS_CHECK(values.size() == segment_ids.size());
  for (std::size_t i = 1; i < segment_ids.size(); ++i) {
    GCLUS_CHECK(segment_ids[i - 1] <= segment_ids[i],
                "segment ids must be nondecreasing");
  }
  // Reduce to two plain prefix sums: a global one over the values, and one
  // over per-position "segment head sums".  For position i in segment s,
  // segmented[i] = prefix[i] − prefix[head(s)], where head(s) is the first
  // position of s.  head-sums are broadcast via one extra MR round keyed by
  // segment.
  const std::size_t n = values.size();
  std::vector<std::uint64_t> prefix = mr_prefix_sum(engine, values);

  using KV = std::pair<std::uint32_t, std::uint64_t>;
  std::vector<KV> heads;
  heads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool is_head = (i == 0) || (segment_ids[i] != segment_ids[i - 1]);
    if (is_head) heads.emplace_back(segment_ids[i], prefix[i]);
  }
  std::vector<std::uint64_t> head_prefix(
      segment_ids.empty() ? 0 : segment_ids.back() + 1, 0);
  engine.round<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>(
      std::move(heads),
      [&](const std::uint32_t& seg, std::span<std::uint64_t> group,
          Emitter<std::uint32_t, std::uint64_t>&) {
        head_prefix[seg] = group.front();
      });

  std::vector<std::uint64_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = prefix[i] - head_prefix[segment_ids[i]];
  }
  return out;
}

}  // namespace gclus::mr
