// Vertex-centric superstep layer on top of the MR engine.
//
// The paper's distributed algorithms (cluster growing, BFS, HADI) are all
// level-synchronous: in each step, active vertices send messages along
// edges and every messaged vertex updates its state.  One superstep maps
// onto a constant number of MR rounds (Lemma 3: grouping messages by
// destination is one sort, i.e. O(log_{M_L} m) rounds when local memory is
// sublinear).  The layer executes one engine round per superstep and
// *charges* the additional log_{M_L} m sorting rounds to the metrics, so
// round counts reported by benches match the model's accounting.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "mapreduce/engine.hpp"

namespace gclus::mr {

/// Outbox handed to the per-vertex compute function; a thin veneer over
/// the round's Emitter with vertex-program vocabulary.
template <typename Msg>
class Outbox {
 public:
  explicit Outbox(Emitter<NodeId, Msg>& emitter) : emitter_(emitter) {}
  void send(NodeId dest, Msg msg) { emitter_.emit(dest, std::move(msg)); }

 private:
  Emitter<NodeId, Msg>& emitter_;
};

/// Number of MR rounds one superstep costs under local memory M_L
/// (Fact 1 / Lemma 3): ceil(log_{M_L} total_items), at least 1.
inline std::size_t rounds_per_superstep(std::size_t local_memory_pairs,
                                        std::uint64_t total_items) {
  if (total_items <= 1) return 1;
  if (local_memory_pairs >= total_items) return 1;
  const double denom = std::log(
      std::max<double>(2.0, static_cast<double>(local_memory_pairs)));
  const double r = std::log(static_cast<double>(total_items)) / denom;
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(r)));
}

/// Runs a vertex program to quiescence (or `max_supersteps`).
///
/// `compute` is called once per messaged vertex and superstep as
///   compute(superstep, vertex, inbox_span, outbox)
/// and may freely mutate external per-vertex state: distinct vertices are
/// processed by distinct reducer invocations, so per-vertex state writes
/// are race-free.  Supersteps end when no messages are in flight.
///
/// `charge_items`, when nonzero, is the item count used for the Lemma-3
/// round charging (typically m, the graph's edge count); by default the
/// actual in-flight message count is used.
///
/// `combine`, when not NoCombiner, is the mapper-side message combiner
/// handed to every underlying engine round (engine.hpp documents the
/// algebraic contract: associative + commutative, and `compute` must be
/// invariant to pre-aggregated inboxes).
///
/// Returns the number of supersteps executed.
template <typename Msg, typename Compute, typename Combine = NoCombiner>
std::size_t run_supersteps(Engine& engine,
                           std::vector<std::pair<NodeId, Msg>> initial,
                           Compute compute,
                           std::size_t max_supersteps = SIZE_MAX,
                           std::uint64_t charge_items = 0,
                           Combine combine = {}) {
  std::size_t superstep = 0;
  auto inflight = std::move(initial);
  while (!inflight.empty() && superstep < max_supersteps) {
    // Charge the Fact-1 sorting rounds beyond the one the engine counts.
    const std::uint64_t items =
        charge_items != 0 ? charge_items : inflight.size();
    const std::size_t cost =
        rounds_per_superstep(engine.config().local_memory_pairs, items);
    engine.mutable_metrics().rounds += cost - 1;
    engine.mutable_metrics().simulated_latency_s +=
        static_cast<double>(cost - 1) * engine.config().per_round_latency_s;

    inflight = engine.round_combine<NodeId, Msg, NodeId, Msg>(
        std::move(inflight),
        [&](const NodeId& vertex, std::span<Msg> inbox,
            Emitter<NodeId, Msg>& emitter) {
          Outbox<Msg> outbox(emitter);
          compute(superstep, vertex, inbox, outbox);
        },
        combine);
    ++superstep;
  }
  return superstep;
}

}  // namespace gclus::mr
