// Client side of the query-service network protocol.
//
// One Client = one connection to a NetServer, driven strictly
// request-response: submit() sends a query batch and blocks for the
// matching result frame.  Transient failures — a dropped connection, the
// server's kUnavailable drain notice, injected net.* faults — reconnect
// and resend under the process-wide retry policy (GCLUS_IO_RETRIES /
// GCLUS_IO_BACKOFF_US).  Queries are pure reads of an immutable engine,
// so resending a batch whose response was lost is safe: the answer is
// byte-identical whichever attempt produced it.  When retries exhaust,
// the escalated error (kIoError, per retry_transient) is returned — a
// server that is truly gone is the caller's problem to report, not a
// reason to abort.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "net/socket.hpp"
#include "server/server.hpp"

namespace gclus::net {

class Client {
 public:
  /// Connects to 127.0.0.1:`port`.
  [[nodiscard]] static StatusOr<Client> connect(std::uint16_t port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Sends one batch and waits for its results (in submission order).
  /// Retries transient failures with reconnect; a server-reported
  /// non-transient error (e.g. the batch was malformed) is returned
  /// as-is.
  [[nodiscard]] StatusOr<std::vector<server::QueryResult>> submit(
      const std::vector<server::Query>& queries);

 private:
  explicit Client(std::uint16_t port) : port_(port) {}

  /// One wire round trip; transient errors invalidate the socket so the
  /// retry wrapper reconnects.
  [[nodiscard]] Status round_trip(const std::vector<std::uint8_t>& request,
                                  std::vector<server::QueryResult>& results);

  std::uint16_t port_ = 0;
  Socket sock_;
};

}  // namespace gclus::net
