#include "net/client.hpp"

#include <utility>

#include "net/protocol.hpp"

namespace gclus::net {

StatusOr<Client> Client::connect(std::uint16_t port) {
  Client client(port);
  GCLUS_ASSIGN_OR_RETURN(client.sock_, connect_loopback(port));
  return client;
}

Status Client::round_trip(const std::vector<std::uint8_t>& request,
                          std::vector<server::QueryResult>& results) {
  if (!sock_.valid()) {
    GCLUS_ASSIGN_OR_RETURN(sock_, connect_loopback(port_));
  }
  if (Status st = write_frame(sock_, request.data(), request.size());
      !st.ok()) {
    sock_.close();
    return st;
  }
  std::vector<std::uint8_t> payload;
  StatusOr<bool> got = read_frame(sock_, payload);
  if (!got.ok()) {
    sock_.close();
    return got.status();
  }
  if (!*got) {
    // EOF where a response was due: transient, so the retry path
    // reconnects and resends (reads are idempotent).
    sock_.close();
    return UnavailableError("server closed the connection mid-request");
  }
  StatusOr<Frame> frame = decode_frame(payload.data(), payload.size());
  if (!frame.ok()) {
    sock_.close();
    return frame.status();
  }
  switch (frame->type) {
    case FrameType::kResultBatch:
      results = std::move(frame->results);
      return OkStatus();
    case FrameType::kError:
      // The server's verdict.  Transient ones (the drain notice) come
      // with a closed connection on the far side; start fresh.
      if (frame->error.transient()) sock_.close();
      return frame->error;
    case FrameType::kQueryBatch:
      break;
  }
  sock_.close();
  return InvalidArgumentError("server sent a query batch to a client");
}

StatusOr<std::vector<server::QueryResult>> Client::submit(
    const std::vector<server::Query>& queries) {
  const std::vector<std::uint8_t> request = encode_query_batch(queries);
  std::vector<server::QueryResult> results;
  if (Status st = retry_transient(
          io_retry_policy(),
          [&] { return round_trip(request, results); });
      !st.ok()) {
    return st;
  }
  return results;
}

}  // namespace gclus::net
