#include "net/socket.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "common/faultpoint.hpp"
#include "graph/wire.hpp"
#include "net/protocol.hpp"

namespace gclus::net {

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

/// recv() exactly `len` bytes.  Returns the byte count actually read
/// before EOF (== len on success); negative errno values surface as
/// Status via the caller.
StatusOr<std::size_t> recv_full(int fd, std::uint8_t* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return status_from_errno(errno, "socket read");
    }
    if (n == 0) break;  // peer closed
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace

StatusOr<Listener> Listener::bind_loopback(std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return status_from_errno(errno, "socket");
  const int one = 1;
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback_addr(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    return status_from_errno(errno,
                             "bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(sock.fd(), 64) != 0) {
    return status_from_errno(errno, "listen");
  }
  socklen_t addr_len = sizeof addr;
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    return status_from_errno(errno, "getsockname");
  }
  return Listener(std::move(sock), ntohs(addr.sin_port));
}

StatusOr<Socket> connect_loopback(std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return status_from_errno(errno, "socket");
  const int one = 1;
  (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr = loopback_addr(port);
  for (;;) {
    if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) == 0) {
      return sock;
    }
    if (errno == EINTR) continue;
    return status_from_errno(errno,
                             "connect 127.0.0.1:" + std::to_string(port));
  }
}

StatusOr<bool> wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return status_from_errno(errno, "poll");
    }
    return n > 0;
  }
}

Status write_frame(Socket& sock, const std::uint8_t* data, std::size_t len) {
  if (GCLUS_FAULTPOINT("net.write")) {
    return UnavailableError("injected net.write fault");
  }
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n =
        ::send(sock.fd(), data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return status_from_errno(errno, "socket write");
    }
    sent += static_cast<std::size_t>(n);
  }
  return OkStatus();
}

StatusOr<bool> read_frame(Socket& sock, std::vector<std::uint8_t>& payload) {
  if (GCLUS_FAULTPOINT("net.read")) {
    return UnavailableError("injected net.read fault");
  }
  std::uint8_t prefix[kLenPrefixSize];
  GCLUS_ASSIGN_OR_RETURN(const std::size_t prefix_got,
                         recv_full(sock.fd(), prefix, sizeof prefix));
  if (prefix_got == 0) return false;  // clean close between frames
  if (prefix_got < sizeof prefix) {
    return DataLossError("peer closed mid-frame after " +
                         std::to_string(prefix_got) +
                         " bytes of the length prefix");
  }
  const auto declared = io::wire::read_le_at<std::uint32_t>(
      reinterpret_cast<const std::byte*>(prefix));
  if (declared < kHeaderSize) {
    return InvalidArgumentError("declared frame payload of " +
                                std::to_string(declared) +
                                " bytes cannot hold a header");
  }
  if (declared > max_frame_payload()) {
    return InvalidArgumentError(
        "declared frame payload of " + std::to_string(declared) +
        " bytes exceeds the " + std::to_string(max_frame_payload()) +
        "-byte limit (GCLUS_NET_MAX_FRAME_BYTES)");
  }
  payload.resize(declared);
  GCLUS_ASSIGN_OR_RETURN(
      const std::size_t body_got,
      recv_full(sock.fd(), payload.data(), payload.size()));
  if (body_got < payload.size()) {
    return DataLossError("peer closed mid-frame: got " +
                         std::to_string(body_got) + " of " +
                         std::to_string(payload.size()) + " payload bytes");
  }
  return true;
}

}  // namespace gclus::net
