#include "net/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/faultpoint.hpp"
#include "common/parse.hpp"
#include "net/protocol.hpp"
#include "server/engine.hpp"

namespace gclus::net {

namespace {

/// Identity of the artifact file on disk.  The publish path is an atomic
/// tmp+fsync+rename, so a republish always changes the inode; mtime and
/// size guard against filesystems that recycle inode numbers eagerly.
struct FileId {
  bool exists = false;
  ino_t inode = 0;
  std::int64_t mtime_ns = 0;
  off_t size = 0;

  friend bool operator==(const FileId&, const FileId&) = default;
};

FileId stat_file(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return {};
  return {true, st.st_ino,
          static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1'000'000'000 +
              st.st_mtim.tv_nsec,
          st.st_size};
}

}  // namespace

StatusOr<std::unique_ptr<NetServer>> NetServer::start(
    server::QueryServer& qserver, NetServerOptions opts) {
  GCLUS_ASSIGN_OR_RETURN(Listener listener,
                         Listener::bind_loopback(opts.port));
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_CLOEXEC) != 0) {
    return status_from_errno(errno, "self-pipe");
  }
  std::unique_ptr<NetServer> server(
      new NetServer(qserver, std::move(opts), std::move(listener),
                    Socket(pipe_fds[0]), Socket(pipe_fds[1])));
  return server;
}

NetServer::NetServer(server::QueryServer& qserver, NetServerOptions opts,
                     Listener listener, Socket wake_rd, Socket wake_wr)
    : qserver_(qserver),
      opts_(std::move(opts)),
      listener_(std::move(listener)),
      wake_rd_(std::move(wake_rd)),
      wake_wr_(std::move(wake_wr)) {
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (!opts_.watch_artifact_path.empty()) {
    watch_thread_ = std::thread([this] { watch_loop(); });
  }
}

NetServer::~NetServer() {
  request_drain();
  drain();
}

void NetServer::request_drain() {
  // Only async-signal-safe operations: an atomic store and one write().
  stopping_.store(true, std::memory_order_release);
  const char byte = 'x';
  (void)!::write(wake_wr_.fd(), &byte, 1);
}

void NetServer::drain() {
  // The accept loop exits only after request_drain() (or a listener
  // failure), so joining it doubles as "park until drain is requested".
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();  // reset queued-but-unaccepted clients now, not later
  if (watch_thread_.joinable()) watch_thread_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    connections.swap(connection_threads_);
    drained_ = true;
  }
  for (std::thread& t : connections) t.join();
}

void NetServer::accept_loop() {
  pollfd pfds[2] = {{listener_.fd(), POLLIN, 0}, {wake_rd_.fd(), POLLIN, 0}};
  while (!stopping_.load(std::memory_order_acquire)) {
    pfds[0].revents = pfds[1].revents = 0;
    if (::poll(pfds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      std::perror("gclus net: poll on listener");
      return;
    }
    if (pfds[1].revents != 0 || stopping_.load(std::memory_order_acquire)) {
      return;  // drain requested
    }
    if (pfds[0].revents == 0) continue;
    const int fd = ::accept4(listener_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Transient resource pressure (EMFILE & friends): drop this client,
      // keep listening — the backlog must not wedge the server.
      std::perror("gclus net: accept");
      continue;
    }
    Socket sock(fd);
    if (GCLUS_FAULTPOINT("net.accept")) {
      continue;  // injected failure: the dropped client reconnects
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(threads_mu_);
    connection_threads_.emplace_back(
        [this, s = std::move(sock)]() mutable { serve_connection(std::move(s)); });
  }
}

void NetServer::serve_connection(Socket sock) {
  const int one = 1;
  (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  std::vector<std::uint8_t> payload;

  const auto send_error = [&](const Status& error) {
    const std::vector<std::uint8_t> bytes = encode_error(error);
    if (write_frame(sock, bytes.data(), bytes.size()).ok()) {
      errors_sent_.fetch_add(1, std::memory_order_relaxed);
    }
  };

  for (;;) {
    const StatusOr<bool> readable =
        wait_readable(sock.fd(), opts_.poll_interval_ms);
    if (!readable.ok()) return;
    if (!*readable) {
      if (stopping_.load(std::memory_order_acquire)) {
        // Idle at drain time: nothing in flight on this connection.
        send_error(UnavailableError("server draining"));
        return;
      }
      continue;
    }

    const StatusOr<bool> got = read_frame(sock, payload);
    if (!got.ok()) {
      // A lying length prefix or a mid-frame close poisons only this
      // connection: report why, close, keep the process serving.
      if (got.status().code() == StatusCode::kInvalidArgument ||
          got.status().code() == StatusCode::kDataLoss) {
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        send_error(got.status());
      }
      return;
    }
    if (!*got) return;  // client finished cleanly

    StatusOr<Frame> frame = decode_frame(payload.data(), payload.size());
    if (!frame.ok()) {
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      send_error(frame.status());
      return;
    }
    if (frame->type != FrameType::kQueryBatch) {
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      send_error(InvalidArgumentError(
          "expected a query batch frame from a client"));
      return;
    }
    frames_in_.fetch_add(1, std::memory_order_relaxed);

    // Blocking submit: a full queue parks this connection thread, and TCP
    // backpressure parks the client in turn.  A frame read before the
    // drain flag flipped still lands here and gets answered — the
    // in-flight guarantee — because the QueryServer outlives drain().
    StatusOr<server::QueryServer::Ticket> ticket =
        qserver_.submit(std::move(frame->queries));
    if (!ticket.ok()) {
      send_error(ticket.status());
      return;
    }
    const std::vector<server::QueryResult>& results = ticket->wait();
    const std::vector<std::uint8_t> bytes = encode_result_batch(results);
    if (!write_frame(sock, bytes.data(), bytes.size()).ok()) return;
    results_sent_.fetch_add(1, std::memory_order_relaxed);

    if (stopping_.load(std::memory_order_acquire)) {
      // The batch in flight was answered; anything the client sends after
      // this notice is its retry path's problem.  Without this check a
      // client streaming back-to-back batches would never go idle and the
      // drain would wait out its entire remaining stream.
      send_error(UnavailableError("server draining"));
      return;
    }
  }
}

void NetServer::watch_loop() {
  const std::uint32_t interval_ms =
      opts_.watch_interval_ms != 0
          ? opts_.watch_interval_ms
          : static_cast<std::uint32_t>(env_u64("GCLUS_NET_WATCH_MS", 200, 1));
  FileId last = stat_file(opts_.watch_artifact_path);
  while (!stopping_.load(std::memory_order_acquire)) {
    // Sleep in short slices so drain() never waits a full interval.
    for (std::uint32_t slept = 0;
         slept < interval_ms && !stopping_.load(std::memory_order_acquire);
         slept += 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<std::uint32_t>(20, interval_ms - slept)));
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    const FileId cur = stat_file(opts_.watch_artifact_path);
    if (!cur.exists || cur == last) continue;
    // Remember the identity even if the load fails below: a bad publish
    // is reported once, not every tick.
    last = cur;
    const std::shared_ptr<const server::QueryEngine> current =
        qserver_.engine();
    StatusOr<server::QueryEngine> next = server::QueryEngine::load(
        Graph(current->graph()), opts_.watch_artifact_path);
    if (!next.ok()) {
      std::fprintf(stderr,
                   "gclus net: artifact reload of %s failed, keeping the "
                   "current engine: %s\n",
                   opts_.watch_artifact_path.c_str(),
                   next.status().to_string().c_str());
      continue;
    }
    qserver_.swap_engine(std::make_shared<const server::QueryEngine>(
        std::move(next).value()));
    reloads_.fetch_add(1, std::memory_order_relaxed);
  }
}

NetServerStats NetServer::stats() const {
  NetServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.results_sent = results_sent_.load(std::memory_order_relaxed);
  s.errors_sent = errors_sent_.load(std::memory_order_relaxed);
  s.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace gclus::net
