#include "net/protocol.hpp"

#include <cstring>
#include <string>

#include "common/parse.hpp"
#include "graph/wire.hpp"

namespace gclus::net {

namespace {

using io::wire::read_le_at;
using io::wire::store_le_at;

constexpr std::size_t kDefaultMaxFramePayload = 16u << 20;  // 16 MiB

std::byte* as_bytes(std::uint8_t* p) { return reinterpret_cast<std::byte*>(p); }
const std::byte* as_bytes(const std::uint8_t* p) {
  return reinterpret_cast<const std::byte*>(p);
}

/// Allocates a frame buffer and fills prefix + header; body starts at
/// kLenPrefixSize + kHeaderSize.
std::vector<std::uint8_t> make_frame(FrameType type, std::uint32_t count,
                                     std::size_t body_bytes) {
  std::vector<std::uint8_t> out(kLenPrefixSize + kHeaderSize + body_bytes);
  std::byte* p = as_bytes(out.data());
  store_le_at(p, static_cast<std::uint32_t>(kHeaderSize + body_bytes));
  store_le_at(p + 4, kMagic);
  p[8] = std::byte{kVersion};
  p[9] = static_cast<std::byte>(type);
  store_le_at(p + 10, std::uint16_t{0});
  store_le_at(p + 12, count);
  return out;
}

}  // namespace

std::size_t max_frame_payload() {
  static const std::size_t limit = static_cast<std::size_t>(env_u64(
      "GCLUS_NET_MAX_FRAME_BYTES", kDefaultMaxFramePayload, kHeaderSize));
  return limit;
}

std::vector<std::uint8_t> encode_query_batch(
    const std::vector<server::Query>& queries) {
  std::vector<std::uint8_t> out =
      make_frame(FrameType::kQueryBatch,
                 static_cast<std::uint32_t>(queries.size()),
                 queries.size() * kQueryRecordSize);
  std::byte* p = as_bytes(out.data()) + kLenPrefixSize + kHeaderSize;
  for (const server::Query& q : queries) {
    p[0] = static_cast<std::byte>(q.kind);
    p[1] = p[2] = p[3] = std::byte{0};
    store_le_at(p + 4, static_cast<std::uint32_t>(q.u));
    store_le_at(p + 8, q.arg);
    p += kQueryRecordSize;
  }
  return out;
}

std::vector<std::uint8_t> encode_result_batch(
    const std::vector<server::QueryResult>& results) {
  std::vector<std::uint8_t> out =
      make_frame(FrameType::kResultBatch,
                 static_cast<std::uint32_t>(results.size()),
                 results.size() * kResultRecordSize);
  std::byte* p = as_bytes(out.data()) + kLenPrefixSize + kHeaderSize;
  for (const server::QueryResult& r : results) {
    p[0] = static_cast<std::byte>(r.code);
    p[1] = p[2] = p[3] = std::byte{0};
    store_le_at(p + 4, r.value);
    p += kResultRecordSize;
  }
  return out;
}

std::vector<std::uint8_t> encode_error(const Status& error) {
  const std::string& msg = error.message();
  // Clamp pathological messages rather than exceed the frame bound the
  // peer will enforce.
  const std::size_t len = std::min<std::size_t>(msg.size(), 4096);
  std::vector<std::uint8_t> out = make_frame(
      FrameType::kError, static_cast<std::uint32_t>(len), 4 + len);
  std::byte* p = as_bytes(out.data()) + kLenPrefixSize + kHeaderSize;
  p[0] = static_cast<std::byte>(error.code());
  p[1] = p[2] = p[3] = std::byte{0};
  std::memcpy(p + 4, msg.data(), len);
  return out;
}

namespace {

bool valid_code_byte(std::uint8_t b) {
  return b <= static_cast<std::uint8_t>(StatusCode::kUnavailable);
}

}  // namespace

StatusOr<Frame> decode_frame(const std::uint8_t* payload, std::size_t len) {
  if (len < kHeaderSize) {
    return InvalidArgumentError("frame shorter than the " +
                                std::to_string(kHeaderSize) +
                                "-byte header: " + std::to_string(len));
  }
  const std::byte* p = as_bytes(payload);
  const std::uint32_t magic = read_le_at<std::uint32_t>(p);
  if (magic != kMagic) {
    return InvalidArgumentError("bad frame magic " + std::to_string(magic) +
                                " (not a gclus query protocol peer)");
  }
  const auto version = static_cast<std::uint8_t>(p[4]);
  if (version != kVersion) {
    return InvalidArgumentError("unsupported protocol version " +
                                std::to_string(version) + " (speaking " +
                                std::to_string(kVersion) + ")");
  }
  const auto type_byte = static_cast<std::uint8_t>(p[5]);
  if (read_le_at<std::uint16_t>(p + 6) != 0) {
    return InvalidArgumentError("reserved header bytes are nonzero");
  }
  const std::uint32_t count = read_le_at<std::uint32_t>(p + 8);
  const std::size_t body = len - kHeaderSize;
  const std::byte* b = p + kHeaderSize;

  Frame frame;
  switch (type_byte) {
    case static_cast<std::uint8_t>(FrameType::kQueryBatch): {
      if (body != static_cast<std::size_t>(count) * kQueryRecordSize) {
        return InvalidArgumentError(
            "query batch count " + std::to_string(count) +
            " disagrees with body size " + std::to_string(body));
      }
      frame.type = FrameType::kQueryBatch;
      frame.queries.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::byte* r = b + i * kQueryRecordSize;
        const auto kind = static_cast<std::uint8_t>(r[0]);
        if (kind > static_cast<std::uint8_t>(
                       server::QueryKind::kClusterNeighborhood)) {
          return InvalidArgumentError("unknown query kind byte " +
                                      std::to_string(kind));
        }
        if (r[1] != std::byte{0} || r[2] != std::byte{0} ||
            r[3] != std::byte{0}) {
          return InvalidArgumentError("nonzero padding in query record");
        }
        frame.queries[i].kind = static_cast<server::QueryKind>(kind);
        frame.queries[i].u = read_le_at<std::uint32_t>(r + 4);
        frame.queries[i].arg = read_le_at<std::uint32_t>(r + 8);
      }
      return frame;
    }
    case static_cast<std::uint8_t>(FrameType::kResultBatch): {
      if (body != static_cast<std::size_t>(count) * kResultRecordSize) {
        return InvalidArgumentError(
            "result batch count " + std::to_string(count) +
            " disagrees with body size " + std::to_string(body));
      }
      frame.type = FrameType::kResultBatch;
      frame.results.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::byte* r = b + i * kResultRecordSize;
        const auto code = static_cast<std::uint8_t>(r[0]);
        if (!valid_code_byte(code)) {
          return InvalidArgumentError("unknown status code byte " +
                                      std::to_string(code));
        }
        if (r[1] != std::byte{0} || r[2] != std::byte{0} ||
            r[3] != std::byte{0}) {
          return InvalidArgumentError("nonzero padding in result record");
        }
        frame.results[i].code = static_cast<StatusCode>(code);
        frame.results[i].value = read_le_at<std::uint64_t>(r + 4);
      }
      return frame;
    }
    case static_cast<std::uint8_t>(FrameType::kError): {
      if (body != 4 + static_cast<std::size_t>(count)) {
        return InvalidArgumentError(
            "error message length " + std::to_string(count) +
            " disagrees with body size " + std::to_string(body));
      }
      const auto code = static_cast<std::uint8_t>(b[0]);
      if (!valid_code_byte(code) || code == 0) {
        return InvalidArgumentError("error frame with status byte " +
                                    std::to_string(code));
      }
      if (b[1] != std::byte{0} || b[2] != std::byte{0} ||
          b[3] != std::byte{0}) {
        return InvalidArgumentError("nonzero padding in error frame");
      }
      frame.type = FrameType::kError;
      frame.error = Status(
          static_cast<StatusCode>(code),
          std::string(reinterpret_cast<const char*>(b + 4), count));
      return frame;
    }
    default:
      return InvalidArgumentError("unknown frame type byte " +
                                  std::to_string(type_byte));
  }
}

}  // namespace gclus::net
