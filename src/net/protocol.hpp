// Wire protocol of the query-service network front end.
//
// A connection is a strict request-response stream of length-prefixed
// frames, all integers little-endian (the dialect of graph/wire.hpp).
// Frame layout:
//
//   offset  size  field
//   0       4     payload_len   bytes after this prefix (header + body)
//   4       4     magic         0x50525147 ("GQRP" when read as LE bytes)
//   8       1     version       kVersion (1)
//   9       1     frame type    1 query batch, 2 result batch, 3 error
//   10      2     reserved      must be 0
//   12      4     count         records in the body (error: message bytes)
//   16      ...   body
//
// Bodies are arrays of fixed-width records so a batch decodes with one
// bounds check and one memcpy per field:
//
//   Query  (12 B): kind u8, pad[3] (0), u u32, arg u32
//   Result (12 B): code u8, pad[3] (0), value u64
//   Error:         code u8, pad[3] (0), then `count` message bytes
//
// Decoding is strict: wrong magic/version/reserved/type, a count that
// disagrees with payload_len, nonzero padding, or an unknown enum byte
// are all kInvalidArgument — the peer spoke a different protocol, and
// guessing at its intent would corrupt answers silently.  Truncation
// *below* a decodable header is the transport's problem (see
// socket.hpp's read_frame, which reports it as kDataLoss).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "server/server.hpp"

namespace gclus::net {

inline constexpr std::uint32_t kMagic = 0x50525147u;  // "GQRP"
inline constexpr std::uint8_t kVersion = 1;
/// Bytes of the length prefix, and of the fixed header that follows it.
inline constexpr std::size_t kLenPrefixSize = 4;
inline constexpr std::size_t kHeaderSize = 12;
inline constexpr std::size_t kQueryRecordSize = 12;
inline constexpr std::size_t kResultRecordSize = 12;

enum class FrameType : std::uint8_t {
  kQueryBatch = 1,
  kResultBatch = 2,
  kError = 3,
};

/// Largest accepted payload_len: GCLUS_NET_MAX_FRAME_BYTES (default
/// 16 MiB).  A declared length beyond this is rejected before any
/// allocation — the defense against a hostile or corrupt length prefix.
[[nodiscard]] std::size_t max_frame_payload();

/// Encoders produce the complete wire bytes, length prefix included.
[[nodiscard]] std::vector<std::uint8_t> encode_query_batch(
    const std::vector<server::Query>& queries);
[[nodiscard]] std::vector<std::uint8_t> encode_result_batch(
    const std::vector<server::QueryResult>& results);
[[nodiscard]] std::vector<std::uint8_t> encode_error(const Status& error);

/// One decoded frame; only the member matching `type` is populated.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<server::Query> queries;          ///< kQueryBatch
  std::vector<server::QueryResult> results;    ///< kResultBatch
  Status error = OkStatus();                   ///< kError
};

/// Decodes the payload of one frame (everything after the length
/// prefix).  kInvalidArgument on any malformation; never aborts.
[[nodiscard]] StatusOr<Frame> decode_frame(const std::uint8_t* payload,
                                           std::size_t len);

}  // namespace gclus::net
