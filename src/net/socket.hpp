// RAII loopback sockets + frame-granular I/O for the query protocol.
//
// Everything here is Status-returning and abort-free: a peer that
// vanishes mid-frame, a length prefix that lies, or an interrupted
// syscall are environmental events, mapped onto the taxonomy the rest of
// the tree already speaks —
//
//   clean close between frames   read_frame returns false (not an error)
//   close/short read mid-frame   kDataLoss (the peer promised more bytes)
//   absurd declared length       kInvalidArgument (rejected pre-alloc)
//   EINTR                        retried internally, never surfaced
//
// Writes use MSG_NOSIGNAL so a dead peer yields EPIPE → Status instead of
// SIGPIPE killing the process.  The fault points net.read / net.write
// inject transient kUnavailable failures for the sweep suite; net.accept
// is exercised by the accept loop in net/server.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace gclus::net {

/// Move-only owner of one socket (or pipe) file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// A TCP listener bound to 127.0.0.1:`port` (0 picks an ephemeral port;
/// the bound port is readable via port()).
class Listener {
 public:
  [[nodiscard]] static StatusOr<Listener> bind_loopback(std::uint16_t port);

  [[nodiscard]] int fd() const { return sock_.fd(); }
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Releases the port.  Linux resets connections still parked in the
  /// accept queue, so clients that raced a shutdown fail fast instead of
  /// blocking on a response that will never come.
  void close() { sock_.close(); }

 private:
  Listener(Socket sock, std::uint16_t port)
      : sock_(std::move(sock)), port_(port) {}
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port`.
[[nodiscard]] StatusOr<Socket> connect_loopback(std::uint16_t port);

/// Blocks until `fd` is readable, up to `timeout_ms`.  Returns whether it
/// became readable (false = timeout); errors map through the taxonomy.
[[nodiscard]] StatusOr<bool> wait_readable(int fd, int timeout_ms);

/// Writes `len` bytes, looping over partial writes.  [net.write]
[[nodiscard]] Status write_frame(Socket& sock, const std::uint8_t* data,
                                 std::size_t len);

/// Reads one length-prefixed frame into `payload` (replaced, sized to the
/// declared payload length).  Returns false on a clean close before any
/// byte of the prefix — the peer simply finished.  [net.read]
[[nodiscard]] StatusOr<bool> read_frame(Socket& sock,
                                        std::vector<std::uint8_t>& payload);

}  // namespace gclus::net
