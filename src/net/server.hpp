// NetServer — the socket front end of the query service.
//
// One accept thread hands each connection to its own thread; a connection
// is a strict request-response loop (read one query-batch frame, submit
// it to the QueryServer's bounded queue via the *blocking* path so TCP
// carries the backpressure, wait the ticket, write one result frame).
// Malformed input closes only that connection, with a best-effort error
// frame naming the reason — never the process (see net/protocol.hpp).
//
// Graceful drain: request_drain() is async-signal-safe (an atomic store
// plus one write to a self-pipe), so a SIGTERM handler may call it
// directly.  The accept loop stops immediately; each connection thread
// finishes the frame it already read — every accepted batch is answered —
// then sends a kUnavailable drain notice and closes.  drain() joins
// everything and returns; only then may the owner shut the QueryServer
// down (so in-flight batches still have workers).
//
// Artifact hot-reload: when opts.watch_artifact_path is set, a watcher
// thread polls the file's (inode, mtime, size) identity every
// watch_interval_ms.  A change — the atomic tmp+fsync+rename publish —
// loads a fresh QueryEngine over a copy of the current engine's graph and
// swap_engine()s it in: v1 answers every batch popped before the swap,
// v2 everything after, no batch mixes versions (server/server.hpp).  A
// corrupt or mismatched new artifact is reported to stderr and v1 keeps
// serving — a bad publish must never take down a healthy server.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "net/socket.hpp"
#include "server/server.hpp"

namespace gclus::net {

struct NetServerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral; the choice is in port()
  /// Artifact sidecar to hot-reload on republish; empty disables.
  std::string watch_artifact_path;
  /// Watcher poll period; 0 reads GCLUS_NET_WATCH_MS (default 200).
  std::uint32_t watch_interval_ms = 0;
  /// How often idle connection/accept loops re-check the drain flag.
  int poll_interval_ms = 50;
};

/// Monotonic counters (relaxed atomics snapshot).
struct NetServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t frames_in = 0;      ///< query batches decoded
  std::uint64_t results_sent = 0;   ///< result frames fully written
  std::uint64_t errors_sent = 0;    ///< error frames written (incl. drain)
  std::uint64_t bad_frames = 0;     ///< malformed inputs rejected
  std::uint64_t reloads = 0;        ///< artifact hot-swaps performed
};

class NetServer {
 public:
  /// Binds, starts the accept loop (and watcher, if configured).  The
  /// QueryServer must outlive the NetServer and must not be shut down
  /// before drain() returns.
  [[nodiscard]] static StatusOr<std::unique_ptr<NetServer>> start(
      server::QueryServer& qserver, NetServerOptions opts = {});

  ~NetServer();  ///< request_drain() + drain()

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Begins the graceful drain.  Async-signal-safe; idempotent.
  void request_drain();

  /// True once a drain has been requested.
  [[nodiscard]] bool draining() const {
    return stopping_.load(std::memory_order_acquire);
  }

  /// Blocks until the accept loop, every connection thread, and the
  /// watcher have exited.  Returns immediately if already drained.  The
  /// accept loop runs until request_drain(), so callers typically install
  /// a signal handler first and then park in drain().
  void drain();

  [[nodiscard]] NetServerStats stats() const;

 private:
  NetServer(server::QueryServer& qserver, NetServerOptions opts,
            Listener listener, Socket wake_rd, Socket wake_wr);

  void accept_loop();
  void serve_connection(Socket sock);
  void watch_loop();

  server::QueryServer& qserver_;
  const NetServerOptions opts_;
  Listener listener_;
  Socket wake_rd_;  ///< self-pipe: read end, polled by the accept loop
  Socket wake_wr_;  ///< write end, written by request_drain()
  std::atomic<bool> stopping_{false};

  std::mutex threads_mu_;
  std::vector<std::thread> connection_threads_;  ///< guarded by threads_mu_
  std::thread accept_thread_;
  std::thread watch_thread_;
  bool drained_ = false;  ///< guarded by threads_mu_

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> results_sent_{0};
  std::atomic<std::uint64_t> errors_sent_{0};
  std::atomic<std::uint64_t> bad_frames_{0};
  std::atomic<std::uint64_t> reloads_{0};
};

}  // namespace gclus::net
