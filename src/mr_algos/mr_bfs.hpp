// Distributed BFS on the MR engine — the paper's first diameter baseline.
//
// Level-synchronous: each round, every frontier node messages all of its
// neighbors; a node joins the frontier the first round it is messaged.
// Costs Θ(ecc(source)) rounds but only O(m) *aggregate* communication
// (every node enters the frontier exactly once), which is why BFS beats
// HADI yet still loses to CLUSTER on large-diameter graphs (§6.2).
//
// The diameter estimate follows the paper's usage: BFS from a source u
// upper-bounds Δ by 2·ecc(u).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"
#include "mapreduce/engine.hpp"

namespace gclus::mr_algos {

struct MrBfsResult {
  std::vector<Dist> dist;
  Dist eccentricity = 0;
  std::size_t supersteps = 0;
};

/// BFS from `source` executed in MR rounds on `engine` (metrics accrue
/// into the engine's counters).
[[nodiscard]] MrBfsResult mr_bfs(mr::Engine& engine, const Graph& g,
                                 NodeId source);

struct MrBfsDiameterResult {
  std::uint64_t estimate = 0;  // 2·ecc(source)
  std::size_t supersteps = 0;
};

/// The Table-4 BFS baseline: one BFS from `source`, estimate = 2·ecc.
[[nodiscard]] MrBfsDiameterResult mr_bfs_diameter(mr::Engine& engine,
                                                  const Graph& g,
                                                  NodeId source = 0);

}  // namespace gclus::mr_algos
