// MPX (Miller–Peng–Xu random shifts) expressed as MR rounds.
//
// Structure mirrors mr_cluster: one shuffle per unit of the shift clock,
// frontier nodes bidding for uncovered neighbors with the key
// (fractional-shift priority << 32 | cluster id) — the identical
// tie-breaking the shared-memory baselines/mpx.cpp uses, so the two
// implementations produce the same partition for the same seed (tested).
//
// The round profile is MPX's weakness on large-diameter graphs: the
// clock must run until the LAST cluster finishes growing, and because
// activation times are staggered by the exponential shifts, early
// clusters grow large radii before late ones wake up — Θ(max radius +
// max shift) rounds in total.
#pragma once

#include <cstdint>

#include "core/clustering.hpp"
#include "graph/graph.hpp"
#include "mapreduce/engine.hpp"

namespace gclus::mr_algos {

struct MrMpxResult {
  Clustering clustering;
  std::size_t clock_rounds = 0;  // shuffles executed (time steps)
};

/// Runs MPX with rate `beta` in MR rounds on `engine`.
[[nodiscard]] MrMpxResult mr_mpx(mr::Engine& engine, const Graph& g,
                                 double beta, std::uint64_t seed = 1);

}  // namespace gclus::mr_algos
