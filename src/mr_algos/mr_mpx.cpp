#include "mr_algos/mr_mpx.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "mapreduce/superstep.hpp"

namespace gclus::mr_algos {

MrMpxResult mr_mpx(mr::Engine& engine, const Graph& g, double beta,
                   std::uint64_t seed) {
  GCLUS_CHECK(beta > 0.0, "MPX needs beta > 0");
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(n >= 1);

  // Shift draws — identical to baselines/mpx.cpp.
  std::vector<double> delta(n);
  double delta_max = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    delta[v] = keyed_exponential(seed, v, beta);
    delta_max = std::max(delta_max, delta[v]);
  }
  const auto max_step = static_cast<std::size_t>(delta_max) + 1;
  std::vector<std::vector<NodeId>> starts(max_step + 1);
  std::vector<std::uint32_t> frac_priority(n);
  for (NodeId v = 0; v < n; ++v) {
    const double start = delta_max - delta[v];
    starts[static_cast<std::size_t>(start)].push_back(v);
    frac_priority[v] = static_cast<std::uint32_t>(
        (start - std::floor(start)) * 4294967295.0);
  }
  for (auto& bucket : starts) std::sort(bucket.begin(), bucket.end());

  // Sharded-at-the-reducers state (cf. mr_cluster.cpp).
  std::vector<std::uint8_t> covered(n, 0);
  std::vector<ClusterId> claim(n, kNoCluster);
  std::vector<Dist> dist(n, kInfDist);
  std::vector<NodeId> centers;
  std::vector<std::uint32_t> activation;
  std::vector<std::uint32_t> cluster_priority;
  NodeId covered_count = 0;

  std::vector<NodeId> frontier;
  MrMpxResult result;
  const std::size_t growth_charge = mr::rounds_per_superstep(
      engine.config().local_memory_pairs, g.num_half_edges());

  std::size_t t = 0;
  std::size_t steps = 0;
  while (covered_count < n) {
    if (t < starts.size()) {
      for (const NodeId v : starts[t]) {
        if (covered[v]) continue;
        const auto cid = static_cast<ClusterId>(centers.size());
        centers.push_back(v);
        activation.push_back(static_cast<std::uint32_t>(steps));
        cluster_priority.push_back(frac_priority[v]);
        covered[v] = 1;
        claim[v] = cid;
        dist[v] = 0;
        ++covered_count;
        frontier.push_back(v);
      }
    } else if (frontier.empty()) {
      // Disconnected-graph safety valve, as in the baseline.
      for (NodeId v = 0; v < n; ++v) {
        if (!covered[v]) {
          const auto cid = static_cast<ClusterId>(centers.size());
          centers.push_back(v);
          activation.push_back(static_cast<std::uint32_t>(steps));
          cluster_priority.push_back(0);
          covered[v] = 1;
          claim[v] = cid;
          dist[v] = 0;
          ++covered_count;
        }
      }
      break;
    }

    // A quiet clock tick (no frontier) advances time without a shuffle —
    // GrowthState::step() no-ops the same way, keeping the activation
    // bookkeeping of the two implementations aligned.
    if (frontier.empty()) {
      ++t;
      continue;
    }

    // One claim shuffle: key = (frac priority << 32) | cluster id, min
    // wins — byte-identical to GrowthState's key order.
    ++steps;
    const auto step_index = static_cast<std::uint32_t>(steps);
    ++result.clock_rounds;
    engine.mutable_metrics().rounds += growth_charge - 1;

    std::vector<std::pair<NodeId, std::uint64_t>> claims;
    for (const NodeId u : frontier) {
      const ClusterId cu = claim[u];
      const std::uint64_t key =
          (static_cast<std::uint64_t>(cluster_priority[cu]) << 32) | cu;
      for (const NodeId w : g.neighbors(u)) claims.emplace_back(w, key);
    }
    // Combiner: the packed (priority << 32 | id) key makes "smallest bid
    // wins" a plain min-fold, exactly what the reducer computes.
    std::vector<std::pair<NodeId, std::uint64_t>> newly =
        engine.round_combine<NodeId, std::uint64_t, NodeId, std::uint64_t>(
            std::move(claims),
            [&](const NodeId& w, std::span<std::uint64_t> bids,
                mr::Emitter<NodeId, std::uint64_t>& emit) {
              if (covered[w]) return;
              const std::uint64_t win =
                  *std::min_element(bids.begin(), bids.end());
              const auto cid = static_cast<ClusterId>(win & 0xffffffffULL);
              covered[w] = 1;
              claim[w] = cid;
              dist[w] = static_cast<Dist>(step_index - activation[cid]);
              emit.emit(w, win);
            },
            [](const std::uint64_t& a, const std::uint64_t& b) {
              return std::min(a, b);
            });
    frontier.clear();
    for (const auto& [w, key] : newly) frontier.push_back(w);
    covered_count += static_cast<NodeId>(newly.size());
    ++t;
  }

  Clustering& c = result.clustering;
  c.assignment = std::move(claim);
  c.dist_to_center = std::move(dist);
  c.centers = std::move(centers);
  c.growth_steps = steps;
  c.iterations = t;
  finalize_cluster_stats(c);
  return result;
}

}  // namespace gclus::mr_algos
