#include "mr_algos/mr_hadi.hpp"

#include <bit>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "par/parallel_for.hpp"

namespace gclus::mr_algos {

namespace {

/// Flajolet–Martin magic constant correcting the expectation of 2^R.
constexpr double kFmPhi = 0.77351;

/// Position of the lowest zero bit.
unsigned lowest_zero_bit(std::uint32_t x) {
  return static_cast<unsigned>(std::countr_one(x));
}

}  // namespace

HadiSketch hadi_init_sketch(NodeId v, std::uint64_t seed) {
  HadiSketch s{};
  for (std::size_t r = 0; r < kHadiRegisters; ++r) {
    // Geometric bit position: #trailing zeros of a fresh hash, capped.
    const std::uint64_t h = hash_combine(seed, v, r);
    const unsigned pos = std::min<unsigned>(
        31, static_cast<unsigned>(std::countr_zero(h | (1ULL << 31))));
    s[r] = 1u << pos;
  }
  return s;
}

double hadi_estimate(const HadiSketch& sketch) {
  double sum_r = 0.0;
  for (const std::uint32_t reg : sketch) {
    sum_r += lowest_zero_bit(reg);
  }
  const double avg = sum_r / kHadiRegisters;
  return std::pow(2.0, avg) / kFmPhi;
}

HadiResult mr_hadi(mr::Engine& engine, const Graph& g,
                   const HadiOptions& options) {
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(n >= 1);
  const std::size_t max_rounds =
      options.max_rounds != 0 ? options.max_rounds
                              : 4 * static_cast<std::size_t>(n);

  std::vector<HadiSketch> sketch(n);
  parallel_for(engine.pool(), 0, n, [&](std::size_t v) {
    sketch[v] = hadi_init_sketch(static_cast<NodeId>(v), options.seed);
  });

  auto global_estimate = [&] {
    double total = 0.0;
    for (NodeId v = 0; v < n; ++v) total += hadi_estimate(sketch[v]);
    return total;
  };

  HadiResult result;
  result.neighborhood_function.push_back(global_estimate());  // N(0)

  std::size_t t = 0;
  std::size_t last_growth_round = 0;
  while (t < max_rounds) {
    ++t;
    // One MR round: every node ships its sketch to every neighbor (the
    // Θ(m·K) per-round volume), each node ORs what it receives.
    std::vector<std::pair<NodeId, HadiSketch>> msgs;
    msgs.reserve(g.num_half_edges());
    for (NodeId u = 0; u < n; ++u) {
      for (const NodeId w : g.neighbors(u)) msgs.emplace_back(w, sketch[u]);
    }
    // Combiner: register-wise OR is the reducer's own fold — sketches for
    // the same destination merge before they are shuffled (the classic
    // HADI optimization; cuts the Θ(m·K) per-round volume).
    engine.round_combine<NodeId, HadiSketch, NodeId, std::uint8_t>(
        std::move(msgs),
        [&](const NodeId& v, std::span<HadiSketch> inbox,
            mr::Emitter<NodeId, std::uint8_t>&) {
          HadiSketch acc = sketch[v];
          for (const HadiSketch& in : inbox) {
            for (std::size_t r = 0; r < kHadiRegisters; ++r) acc[r] |= in[r];
          }
          sketch[v] = acc;
        },
        [](const HadiSketch& a, const HadiSketch& b) {
          HadiSketch out;
          for (std::size_t r = 0; r < kHadiRegisters; ++r) {
            out[r] = a[r] | b[r];
          }
          return out;
        });

    const double nt = global_estimate();
    const double prev = result.neighborhood_function.back();
    result.neighborhood_function.push_back(nt);
    if (nt > prev * (1.0 + options.epsilon)) {
      last_growth_round = t;
    } else {
      break;  // converged: neighborhood function stopped growing
    }
  }

  result.rounds = t;
  result.estimate = last_growth_round;
  result.estimated_reachable = result.neighborhood_function.back() /
                               static_cast<double>(n);
  return result;
}

}  // namespace gclus::mr_algos
