// HADI — the MapReduce implementation of ANF (Kang et al., TKDD'11; the
// paper's second diameter baseline).
//
// Every node keeps K Flajolet–Martin registers approximating |ball(v, t)|.
// Round t ORs each node's registers with all neighbors' registers, so
// after t rounds the sketch covers the t-hop neighborhood.  The global
// neighborhood function N(t) = Σ_v est(v, t) grows until t reaches the
// diameter; HADI stops when the relative growth drops below a threshold
// and reports the last round with significant growth.
//
// Cost profile (the point of Table 4): Θ(Δ) rounds AND Θ(m·K) shuffled
// sketch words in EVERY round — per-round communication linear in the
// graph, which is what makes HADI orders of magnitude slower than the
// decomposition approach on large-diameter graphs.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"
#include "mapreduce/engine.hpp"

namespace gclus::mr_algos {

inline constexpr std::size_t kHadiRegisters = 8;

/// One node's FM sketch: K registers of 32 bits.
using HadiSketch = std::array<std::uint32_t, kHadiRegisters>;

struct HadiOptions {
  std::uint64_t seed = 1;

  /// Stop when N(t) < N(t-1) · (1 + epsilon).
  double epsilon = 1e-4;

  /// Hard round cap (safety valve; 0 = 4·n).
  std::size_t max_rounds = 0;
};

struct HadiResult {
  /// Estimated diameter: the last round with significant growth.
  std::uint64_t estimate = 0;

  /// Rounds executed (≈ Δ + 1; the dominating cost).
  std::size_t rounds = 0;

  /// Estimated neighborhood function N(t), t = 0..rounds.
  std::vector<double> neighborhood_function;

  /// FM estimate of n from the final sketches (sanity metric).
  double estimated_reachable = 0.0;
};

/// Runs HADI on the connected graph `g` over `engine`.
[[nodiscard]] HadiResult mr_hadi(mr::Engine& engine, const Graph& g,
                                 const HadiOptions& options = {});

/// FM point estimate from one sketch (exposed for tests).
[[nodiscard]] double hadi_estimate(const HadiSketch& sketch);

/// Initial sketch of node `v`: one geometric bit per register.
[[nodiscard]] HadiSketch hadi_init_sketch(NodeId v, std::uint64_t seed);

}  // namespace gclus::mr_algos
