#include "mr_algos/mr_bfs.hpp"

#include "common/check.hpp"
#include "mapreduce/superstep.hpp"

namespace gclus::mr_algos {

MrBfsResult mr_bfs(mr::Engine& engine, const Graph& g, NodeId source) {
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(source < n);

  MrBfsResult result;
  result.dist.assign(n, kInfDist);
  result.dist[source] = 0;

  // Message payload carries nothing; arrival itself means "you are reached
  // at this superstep".  Uint8 keeps the pair small.
  using Msg = std::uint8_t;
  std::vector<std::pair<NodeId, Msg>> init;
  for (const NodeId w : g.neighbors(source)) init.emplace_back(w, Msg{0});

  // Combiner: arrivals carry no payload, so same-destination duplicates
  // collapse to one (frontier dedup — the reducer only cares *that* a
  // message arrived).
  result.supersteps = mr::run_supersteps<Msg>(
      engine, std::move(init),
      [&](std::size_t superstep, NodeId v, std::span<Msg>,
          mr::Outbox<Msg>& out) {
        if (result.dist[v] != kInfDist) return;  // duplicate arrival
        result.dist[v] = static_cast<Dist>(superstep + 1);
        for (const NodeId w : g.neighbors(v)) out.send(w, Msg{0});
      },
      /*max_supersteps=*/SIZE_MAX,
      /*charge_items=*/g.num_half_edges(),
      /*combine=*/[](const Msg& a, const Msg&) { return a; });

  for (const Dist d : result.dist) {
    if (d != kInfDist) result.eccentricity = std::max(result.eccentricity, d);
  }
  return result;
}

MrBfsDiameterResult mr_bfs_diameter(mr::Engine& engine, const Graph& g,
                                    NodeId source) {
  const MrBfsResult bfs = mr_bfs(engine, g, source);
  MrBfsDiameterResult out;
  out.estimate = 2ULL * bfs.eccentricity;
  out.supersteps = bfs.supersteps;
  return out;
}

}  // namespace gclus::mr_algos
