// CLUSTER and the decomposition-based diameter pipeline expressed as MR
// rounds (§5, Lemma 3 / Theorem 4).
//
// Each cluster-growing step is one shuffle: frontier nodes send their
// claim key along every incident edge, the reducer of an uncovered node
// keeps the minimum key, and the newly covered nodes form the next
// round's frontier.  Center-selection waves are one map-style round over
// the uncovered nodes.  The additional O(log_{M_L} m) sorting rounds each
// step costs in the model are charged to the engine's metrics.
//
// The claim tie-breaking (minimum cluster id) and center id assignment
// (node order within a batch) match core/cluster.cpp exactly, so for the
// same (graph, τ, seed) this produces the *identical* partition — an
// equivalence the test suite asserts.
#pragma once

#include <cstdint>

#include "core/clustering.hpp"
#include "graph/graph.hpp"
#include "mapreduce/engine.hpp"

namespace gclus::mr_algos {

struct MrClusterOptions {
  std::uint64_t seed = 1;
  double selection_constant = 4.0;
  double threshold_constant = 8.0;

  /// Theorem 4's |E_C| <= M_L escape hatch: when the weighted quotient
  /// has more edges than this, it is sparsified with a Baswana–Sen
  /// 3-spanner before the single-reducer diameter solve (costing a
  /// constant number of extra rounds and at most a 3x looser, still
  /// sound, upper bound).  0 = never sparsify.
  EdgeId max_quotient_edges = 0;
};

struct MrClusterResult {
  Clustering clustering;
  std::size_t growth_rounds = 0;     // shuffles spent growing
  std::size_t selection_rounds = 0;  // shuffles spent selecting centers
};

/// Runs CLUSTER(τ) in MR rounds on `engine`.
[[nodiscard]] MrClusterResult mr_cluster(mr::Engine& engine, const Graph& g,
                                         std::uint32_t tau,
                                         const MrClusterOptions& options = {});

struct MrDiameterResult {
  std::uint64_t estimate = 0;   // Δ″ = 2·R + Δ′_C
  Dist max_radius = 0;          // R of the clustering
  NodeId quotient_nodes = 0;
  EdgeId quotient_edges = 0;
  std::size_t total_rounds = 0;  // engine rounds consumed by the pipeline

  /// Set when the quotient exceeded max_quotient_edges and the diameter
  /// was solved on a spanner instead (§5 / Theorem 4).
  bool sparsified = false;
  EdgeId sparsified_edges = 0;
};

/// The Table-4 CLUSTER column: decompose at granularity τ, reduce the
/// weighted quotient in one shuffle, solve its diameter on "one reducer".
[[nodiscard]] MrDiameterResult mr_cluster_diameter(
    mr::Engine& engine, const Graph& g, std::uint32_t tau,
    const MrClusterOptions& options = {});

}  // namespace gclus::mr_algos
