#include "mr_algos/mr_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/spanner.hpp"
#include "graph/weighted.hpp"
#include "mapreduce/superstep.hpp"

namespace gclus::mr_algos {

namespace {

double log2_clamped(NodeId n) {
  return std::max(1.0, std::log2(static_cast<double>(n)));
}

/// Mutable decomposition state shared by the rounds.  In a genuine
/// distributed run this state lives sharded at the reducers (each reducer
/// owns the nodes that hash to it); the arrays model exactly that — every
/// reducer invocation touches only the state of its own key.
struct State {
  explicit State(NodeId n)
      : covered(n, 0), claim(n, kNoCluster), dist(n, kInfDist) {}

  std::vector<std::uint8_t> covered;
  std::vector<ClusterId> claim;
  std::vector<Dist> dist;
  std::vector<NodeId> centers;
  std::vector<std::uint32_t> activation;
  NodeId covered_count = 0;
  std::size_t steps = 0;

  ClusterId add_center(NodeId v) {
    const auto cid = static_cast<ClusterId>(centers.size());
    covered[v] = 1;
    claim[v] = cid;
    dist[v] = 0;
    centers.push_back(v);
    activation.push_back(static_cast<std::uint32_t>(steps));
    ++covered_count;
    return cid;
  }
};

}  // namespace

MrClusterResult mr_cluster(mr::Engine& engine, const Graph& g,
                           std::uint32_t tau,
                           const MrClusterOptions& options) {
  GCLUS_CHECK(tau >= 1);
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(n >= 1);

  State st(n);
  MrClusterResult result;
  const double logn = log2_clamped(n);
  const double stop_threshold = options.threshold_constant * tau * logn;

  // Frontier = nodes covered in the previous step (or fresh centers).
  std::vector<NodeId> frontier;

  const std::size_t growth_charge = mr::rounds_per_superstep(
      engine.config().local_memory_pairs, g.num_half_edges());

  std::size_t iteration = 0;
  while (st.covered_count < n &&
         static_cast<double>(n - st.covered_count) >= stop_threshold) {
    const NodeId uncovered = n - st.covered_count;
    const double p =
        std::min(1.0, options.selection_constant * tau * logn / uncovered);

    // --- Selection wave: one map-style round over uncovered nodes. ---
    std::vector<std::pair<NodeId, std::uint8_t>> probe;
    probe.reserve(uncovered);
    for (NodeId v = 0; v < n; ++v) {
      if (!st.covered[v]) probe.emplace_back(v, std::uint8_t{0});
    }
    std::vector<std::pair<NodeId, std::uint8_t>> selected_pairs =
        engine.round<NodeId, std::uint8_t, NodeId, std::uint8_t>(
            std::move(probe),
            [&](const NodeId& v, std::span<std::uint8_t>,
                mr::Emitter<NodeId, std::uint8_t>& emit) {
              if (keyed_bernoulli(options.seed, iteration, v, p)) {
                emit.emit(v, std::uint8_t{1});
              }
            });
    ++result.selection_rounds;
    std::vector<NodeId> selected;
    selected.reserve(selected_pairs.size());
    for (const auto& [v, tag] : selected_pairs) selected.push_back(v);
    std::sort(selected.begin(), selected.end());
    for (const NodeId v : selected) {
      st.add_center(v);
      frontier.push_back(v);
    }

    if (frontier.empty()) {
      // Same deterministic progress guard as the shared-memory version.
      for (NodeId v = 0; v < n; ++v) {
        if (!st.covered[v]) {
          st.add_center(v);
          frontier.push_back(v);
          break;
        }
      }
    }

    // --- Growth: one shuffle per step until half the uncovered covered. ---
    const NodeId target = (uncovered + 1) / 2;
    NodeId covered_this_iter = uncovered - (n - st.covered_count);
    while (covered_this_iter < target && !frontier.empty()) {
      ++st.steps;
      const auto step_index = static_cast<std::uint32_t>(st.steps);
      ++result.growth_rounds;
      engine.mutable_metrics().rounds += growth_charge - 1;

      std::vector<std::pair<NodeId, ClusterId>> claims;
      for (const NodeId u : frontier) {
        for (const NodeId w : g.neighbors(u)) {
          claims.emplace_back(w, st.claim[u]);
        }
      }
      // Combiner: claim ties break to the minimum cluster id, a fold the
      // reducer's min_element is invariant to.
      std::vector<std::pair<NodeId, ClusterId>> newly =
          engine.round_combine<NodeId, ClusterId, NodeId, ClusterId>(
              std::move(claims),
              [&](const NodeId& w, std::span<ClusterId> bids,
                  mr::Emitter<NodeId, ClusterId>& emit) {
                if (st.covered[w]) return;
                const ClusterId win = *std::min_element(bids.begin(),
                                                        bids.end());
                st.covered[w] = 1;
                st.claim[w] = win;
                st.dist[w] =
                    static_cast<Dist>(step_index - st.activation[win]);
                emit.emit(w, win);
              },
              [](const ClusterId& a, const ClusterId& b) {
                return std::min(a, b);
              });

      frontier.clear();
      frontier.reserve(newly.size());
      for (const auto& [w, cid] : newly) frontier.push_back(w);
      st.covered_count += static_cast<NodeId>(newly.size());
      covered_this_iter += static_cast<NodeId>(newly.size());
    }
    ++iteration;
  }

  for (NodeId v = 0; v < n; ++v) {
    if (!st.covered[v]) st.add_center(v);
  }

  Clustering& c = result.clustering;
  c.assignment = std::move(st.claim);
  c.dist_to_center = std::move(st.dist);
  c.centers = std::move(st.centers);
  c.growth_steps = st.steps;
  c.iterations = iteration;
  finalize_cluster_stats(c);
  return result;
}

MrDiameterResult mr_cluster_diameter(mr::Engine& engine, const Graph& g,
                                     std::uint32_t tau,
                                     const MrClusterOptions& options) {
  const std::size_t rounds_before = engine.metrics().rounds;
  const MrClusterResult decomposition = mr_cluster(engine, g, tau, options);
  const Clustering& c = decomposition.clustering;
  const ClusterId k = c.num_clusters();

  // --- One shuffle reduces crossing edges to weighted quotient edges. ---
  // Key: packed (min cluster, max cluster); value: the §4 connection
  // length dist(a, ctr) + 1 + dist(b, ctr).
  std::vector<std::pair<std::uint64_t, Weight>> crossing;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const ClusterId cu = c.assignment[u];
    for (const NodeId v : g.neighbors(u)) {
      if (u >= v) continue;
      const ClusterId cv = c.assignment[v];
      if (cu == cv) continue;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(std::min(cu, cv)) << 32) |
          std::max(cu, cv);
      crossing.emplace_back(
          key, static_cast<Weight>(c.dist_to_center[u]) + 1 +
                   c.dist_to_center[v]);
    }
  }
  // Combiner: the quotient keeps the shortest connection per cluster pair,
  // so mapper-side min-folding is exact.
  const std::vector<std::pair<std::uint64_t, Weight>> reduced =
      engine.round_combine<std::uint64_t, Weight, std::uint64_t, Weight>(
          std::move(crossing),
          [&](const std::uint64_t& key, std::span<Weight> ws,
              mr::Emitter<std::uint64_t, Weight>& emit) {
            emit.emit(key, *std::min_element(ws.begin(), ws.end()));
          },
          [](const Weight& a, const Weight& b) { return std::min(a, b); });

  std::vector<std::tuple<NodeId, NodeId, Weight>> qedges;
  qedges.reserve(reduced.size());
  for (const auto& [key, w] : reduced) {
    qedges.emplace_back(static_cast<NodeId>(key >> 32),
                        static_cast<NodeId>(key & 0xffffffffULL), w);
  }
  const EdgeId quotient_edges = qedges.size();
  WeightedGraph quotient = WeightedGraph::from_edges(k, std::move(qedges));

  MrDiameterResult out;
  // --- Theorem 4: if the quotient exceeds the reducer budget, shrink it
  // with a Baswana–Sen 3-spanner (a constant number of extra rounds; the
  // spanner only lengthens distances, so the estimate stays an upper
  // bound, at most 3x looser).
  if (options.max_quotient_edges > 0 &&
      quotient_edges > options.max_quotient_edges) {
    SpannerOptions sopts;
    sopts.k = 2;
    sopts.seed = derive_seed(options.seed, kSeedTagMrSpanner);
    SpannerResult sp = baswana_sen_spanner(quotient, sopts);
    quotient = std::move(sp.spanner);
    out.sparsified = true;
    out.sparsified_edges = sp.kept_edges;
    engine.mutable_metrics().rounds += 2;  // the [4] clustering rounds
  }

  // --- Final round: the whole quotient lands on one reducer, which
  // solves the weighted diameter locally (Theorem 4's small-|E_C| case).
  Weight quotient_diameter = 0;
  std::vector<std::pair<std::uint8_t, std::uint64_t>> gather;
  gather.reserve(reduced.size());
  for (const auto& [key, w] : reduced) gather.emplace_back(0, key);
  engine.round<std::uint8_t, std::uint64_t, std::uint8_t, std::uint8_t>(
      std::move(gather),
      [&](const std::uint8_t&, std::span<std::uint64_t>,
          mr::Emitter<std::uint8_t, std::uint8_t>&) {
        quotient_diameter = weighted_diameter_exact(quotient);
      });

  out.max_radius = c.max_radius();
  out.quotient_nodes = k;
  out.quotient_edges = quotient_edges;
  out.estimate = 2ULL * out.max_radius + quotient_diameter;
  out.total_rounds = engine.metrics().rounds - rounds_before;
  return out;
}

}  // namespace gclus::mr_algos
