#include "core/diameter.hpp"

#include "common/check.hpp"
#include "core/cluster2.hpp"
#include "core/quotient.hpp"
#include "graph/properties.hpp"
#include "graph/weighted.hpp"

namespace gclus {

DiameterApprox diameter_from_clustering(const Graph& g,
                                        const Clustering& clustering) {
  const QuotientGraph q = build_quotient(g, clustering, /*with_weights=*/true);
  GCLUS_CHECK(q.graph.num_nodes() > 0);

  DiameterApprox out;
  out.max_radius = clustering.max_radius();
  out.num_clusters = clustering.num_clusters();
  out.quotient_nodes = q.graph.num_nodes();
  out.quotient_edges = q.graph.num_edges();
  out.growth_steps = clustering.growth_steps;

  // Quotient of a connected graph is connected; exact_diameter checks.
  const Dist delta_c = exact_diameter(q.graph).diameter;
  const Weight delta_c_weighted = weighted_diameter_exact(q.weighted);

  const auto r = static_cast<std::uint64_t>(out.max_radius);
  out.lower_bound = delta_c;
  out.upper_bound_coarse = 2 * r * (static_cast<std::uint64_t>(delta_c) + 1) +
                           delta_c;
  out.upper_bound = 2 * r + delta_c_weighted;
  out.weighted_quotient_diameter = delta_c_weighted;
  return out;
}

DiameterApprox approximate_diameter(const Graph& g, std::uint32_t tau,
                                    const DiameterOptions& options) {
  ClusterOptions copts;
  copts.context() = options.context();

  if (options.use_cluster2) {
    const Cluster2Result r2 = cluster2(g, tau, copts);
    DiameterApprox out = diameter_from_clustering(g, r2.clustering);
    out.growth_steps += r2.prelim_growth_steps;
    return out;
  }
  const Clustering c = cluster(g, tau, copts);
  return diameter_from_clustering(g, c);
}

}  // namespace gclus
