#include "core/spanner.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace gclus {

namespace {

/// Sentinel for "vertex no longer clustered" (retired in an earlier
/// phase or never hooked).
constexpr NodeId kRetired = kInvalidNode;

}  // namespace

SpannerResult baswana_sen_spanner(const WeightedGraph& g,
                                  const SpannerOptions& options) {
  GCLUS_CHECK(options.k >= 1, "spanner stretch parameter k must be >= 1");
  const NodeId n = g.num_nodes();
  SpannerResult out;
  out.input_edges = g.num_edges();
  out.stretch = 2 * options.k - 1;
  if (options.k == 1) {
    // (2·1−1) = 1-spanner: the graph itself.
    out.spanner = g;
    out.kept_edges = g.num_edges();
    return out;
  }

  // cluster_of[v]: id of v's cluster center in the current phase, or
  // kRetired once v has fallen out of the clustering.
  std::vector<NodeId> cluster_of(n);
  for (NodeId v = 0; v < n; ++v) cluster_of[v] = v;

  std::vector<std::tuple<NodeId, NodeId, Weight>> kept;
  const double sample_p =
      std::pow(static_cast<double>(std::max<NodeId>(2, n)),
               -1.0 / options.k);

  // Per-phase scratch: cheapest edge from v to each adjacent cluster.
  std::unordered_map<NodeId, std::pair<NodeId, Weight>> best_to_cluster;

  for (unsigned phase = 1; phase < options.k; ++phase) {
    // --- Sample surviving clusters. ---
    std::vector<char> sampled(n, 0);
    for (NodeId c = 0; c < n; ++c) {
      sampled[c] =
          keyed_bernoulli(options.seed, phase, c, sample_p) ? 1 : 0;
    }

    std::vector<NodeId> next_cluster(n, kRetired);
    for (NodeId v = 0; v < n; ++v) {
      const NodeId cv = cluster_of[v];
      if (cv == kRetired) continue;
      if (sampled[cv]) {
        next_cluster[v] = cv;  // sampled clusters carry their members over
        continue;
      }
      // Group v's incident edges by the neighbor's current cluster and
      // keep only the cheapest per cluster (ties to the smaller center id
      // come free from the deterministic neighbor order).
      best_to_cluster.clear();
      for (const auto& [u, w] : g.neighbors(v)) {
        const NodeId cu = cluster_of[u];
        if (cu == kRetired || cu == cv) continue;
        auto [it, inserted] = best_to_cluster.emplace(cu, std::make_pair(u, w));
        if (!inserted && w < it->second.second) it->second = {u, w};
      }
      // Hook onto the cheapest adjacent *sampled* cluster if any.
      NodeId hook_cluster = kRetired;
      Weight hook_w = kInfWeight;
      NodeId hook_u = kInvalidNode;
      for (const auto& [cu, uw] : best_to_cluster) {
        if (sampled[cu] && (uw.second < hook_w ||
                            (uw.second == hook_w && cu < hook_cluster))) {
          hook_cluster = cu;
          hook_u = uw.first;
          hook_w = uw.second;
        }
      }
      if (hook_cluster != kRetired) {
        kept.emplace_back(v, hook_u, hook_w);
        next_cluster[v] = hook_cluster;
        // Also keep one edge to every adjacent cluster cheaper than the
        // hook (the Baswana–Sen rule that bounds the stretch).
        for (const auto& [cu, uw] : best_to_cluster) {
          if (cu != hook_cluster && uw.second < hook_w) {
            kept.emplace_back(v, uw.first, uw.second);
          }
        }
      } else {
        // No sampled neighbor cluster: keep one edge per adjacent
        // cluster and retire from the clustering.
        for (const auto& [cu, uw] : best_to_cluster) {
          kept.emplace_back(v, uw.first, uw.second);
        }
        next_cluster[v] = kRetired;
      }
    }
    cluster_of = std::move(next_cluster);
  }

  // --- Final phase: every vertex keeps one cheapest edge to each
  // adjacent surviving cluster. ---
  for (NodeId v = 0; v < n; ++v) {
    best_to_cluster.clear();
    const NodeId cv = cluster_of[v];
    for (const auto& [u, w] : g.neighbors(v)) {
      const NodeId cu = cluster_of[u];
      if (cu == kRetired || cu == cv) continue;
      auto [it, inserted] = best_to_cluster.emplace(cu, std::make_pair(u, w));
      if (!inserted && w < it->second.second) it->second = {u, w};
    }
    for (const auto& [cu, uw] : best_to_cluster) {
      kept.emplace_back(v, uw.first, uw.second);
    }
    // Keep intra-cluster structure: the edge to the cluster center's
    // spanning tree is implicit in the hook edges added per phase; edges
    // between members of the SAME cluster that were never hooked are
    // spanned through the center, so nothing more to add.
  }

  out.spanner = WeightedGraph::from_edges(n, std::move(kept));
  out.kept_edges = out.spanner.num_edges();
  return out;
}

}  // namespace gclus
