// The clustering data model shared by CLUSTER, CLUSTER2 and the baselines.
//
// A Clustering is a partition of V into disjoint, internally connected
// clusters, each grown around a center.  Beyond the assignment itself we
// retain the per-node hop distance to the assigned center (recorded at
// claim time during growth) — the quantity that defines cluster radii,
// feeds CLUSTER2's growth quota, weights the quotient graph, and powers
// the distance oracle.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace gclus {

struct Clustering {
  /// Per-node cluster id in [0, num_clusters()); kNoCluster never appears
  /// in a finished clustering of a covered graph.
  std::vector<ClusterId> assignment;

  /// Per-node hop distance to its cluster's center along the growth path.
  std::vector<Dist> dist_to_center;

  /// Per-cluster center node.
  std::vector<NodeId> centers;

  /// Per-cluster maximum dist_to_center over members.
  std::vector<Dist> radius;

  /// Per-cluster member count.
  std::vector<NodeId> sizes;

  /// Total number of synchronous cluster-growing steps performed — the R
  /// of Lemma 3, which governs the MR round complexity.
  std::size_t growth_steps = 0;

  /// Direction split of growth_steps under the direction-optimizing
  /// engine: top-down (push) vs bottom-up (pull) steps.
  std::size_t push_steps = 0;
  std::size_t pull_steps = 0;

  /// Number of batch iterations executed (center-selection waves).
  std::size_t iterations = 0;

  [[nodiscard]] ClusterId num_clusters() const {
    return static_cast<ClusterId>(centers.size());
  }

  /// Maximum cluster radius R_ALG.
  [[nodiscard]] Dist max_radius() const;

  /// Structural validation against the source graph:
  ///   * every node is assigned, ids in range, sizes/centers consistent;
  ///   * centers have distance 0 and carry their own cluster id;
  ///   * every non-center member has a same-cluster neighbor one hop
  ///     closer to the center (claim-chain: implies connectivity and that
  ///     dist_to_center is a realizable within-cluster path length);
  ///   * radius[c] equals the max member distance.
  /// O(n + m).  Returns true iff all hold.
  [[nodiscard]] bool validate(const Graph& g) const;
};

/// Recomputes radius and sizes from assignment/dist_to_center (used by
/// algorithms after their final commit phase).
void finalize_cluster_stats(Clustering& c);

}  // namespace gclus
