#include "core/clustering.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gclus {

Dist Clustering::max_radius() const {
  Dist r = 0;
  for (const Dist x : radius) r = std::max(r, x);
  return r;
}

bool Clustering::validate(const Graph& g) const {
  const NodeId n = g.num_nodes();
  if (assignment.size() != n || dist_to_center.size() != n) return false;
  const ClusterId k = num_clusters();
  if (radius.size() != k || sizes.size() != k) return false;

  std::vector<NodeId> seen_sizes(k, 0);
  std::vector<Dist> seen_radius(k, 0);
  for (NodeId v = 0; v < n; ++v) {
    const ClusterId c = assignment[v];
    if (c >= k) return false;
    ++seen_sizes[c];
    seen_radius[c] = std::max(seen_radius[c], dist_to_center[v]);
    if (dist_to_center[v] == 0) {
      if (centers[c] != v) return false;  // only the center sits at dist 0
    } else {
      // Claim-chain: some same-cluster neighbor is exactly one hop closer.
      bool found = false;
      for (const NodeId u : g.neighbors(v)) {
        if (assignment[u] == c && dist_to_center[u] + 1 == dist_to_center[v]) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  for (ClusterId c = 0; c < k; ++c) {
    if (centers[c] >= n) return false;
    if (assignment[centers[c]] != c) return false;
    if (dist_to_center[centers[c]] != 0) return false;
    if (seen_sizes[c] != sizes[c]) return false;
    if (seen_sizes[c] == 0) return false;  // empty cluster
    if (seen_radius[c] != radius[c]) return false;
  }
  return true;
}

void finalize_cluster_stats(Clustering& c) {
  const ClusterId k = c.num_clusters();
  c.radius.assign(k, 0);
  c.sizes.assign(k, 0);
  for (std::size_t v = 0; v < c.assignment.size(); ++v) {
    const ClusterId cl = c.assignment[v];
    GCLUS_CHECK(cl < k, "unassigned node ", v, " in finalize");
    ++c.sizes[cl];
    c.radius[cl] = std::max(c.radius[cl], c.dist_to_center[v]);
  }
}

}  // namespace gclus
