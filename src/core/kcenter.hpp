// Graph k-center approximation via CLUSTER (§3.1, Theorem 2; §3.2 for
// disconnected graphs).
//
// Strategy: run CLUSTER(τ) with τ = Θ(k / log² n) so at most ~k clusters
// come back with high probability.  If the decomposition still exceeds k
// clusters, merge them along a spanning forest of the quotient graph
// partitioned into at most k connected parts (the merging step in the
// proof of Theorem 2).  If fewer than k clusters come back, the center set
// is padded farthest-first (the paper pads with arbitrary nodes, which can
// only be worse; we document the strengthening).  The achieved radius is
// evaluated exactly with a multi-source BFS.
//
// Guarantee: O(log³ n)-approximation of the optimal k-center radius, whp.
#pragma once

#include <cstdint>
#include <vector>

#include "api/run_context.hpp"
#include "core/cluster.hpp"
#include "core/clustering.hpp"
#include "graph/graph.hpp"

namespace gclus {

/// Execution environment plus the τ policy knob.
struct KCenterOptions : RunContext {
  /// τ is chosen as max(h, ceil(scale · k / log²n)) where h is the number
  /// of connected components (§3.2).
  double tau_scale = 1.0;
};

struct KCenterResult {
  /// Exactly k distinct centers.
  std::vector<NodeId> centers;

  /// max_v dist(v, centers) — evaluated exactly.
  Dist radius = 0;

  /// Per-node nearest chosen center (index into `centers`).
  std::vector<std::uint32_t> nearest_center;

  /// Diagnostics: clusters produced by the underlying CLUSTER run and the
  /// τ it used.
  ClusterId raw_clusters = 0;
  std::uint32_t tau = 0;
};

/// Approximates k-center on `g` (connected or not; requires k >= number of
/// connected components so a finite radius exists).
[[nodiscard]] KCenterResult kcenter_approx(const Graph& g, NodeId k,
                                           const KCenterOptions& options = {});

/// Evaluates the exact radius and per-node nearest center of a given
/// center set (multi-source BFS).  Exposed for baselines and tests.
[[nodiscard]] std::pair<Dist, std::vector<std::uint32_t>> evaluate_centers(
    const Graph& g, const std::vector<NodeId>& centers);

}  // namespace gclus
