#include "core/kcenter.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "core/quotient.hpp"
#include "graph/bfs.hpp"
#include "graph/connectivity.hpp"

namespace gclus {

namespace {

/// Partitions the spanning forest of `q` into at most `max_parts`
/// connected parts and returns a part id per quotient node.  Components of
/// `q` always start their own part; the remaining budget is spent cutting
/// subtrees of at least ceil(W / max_parts) nodes.
std::vector<std::uint32_t> partition_forest(const Graph& q,
                                            std::uint32_t max_parts) {
  const NodeId w = q.num_nodes();
  std::vector<std::uint32_t> part(w, UINT32_MAX);
  if (w == 0) return part;

  // Build a BFS spanning forest: parent pointers + children lists.
  std::vector<NodeId> parent(w, kInvalidNode);
  std::vector<std::vector<NodeId>> children(w);
  std::vector<NodeId> order;  // BFS order, per tree
  order.reserve(w);
  std::vector<NodeId> roots;
  {
    std::vector<char> visited(w, 0);
    std::vector<NodeId> queue;
    for (NodeId r = 0; r < w; ++r) {
      if (visited[r]) continue;
      roots.push_back(r);
      visited[r] = 1;
      queue.clear();
      queue.push_back(r);
      for (std::size_t qi = 0; qi < queue.size(); ++qi) {
        const NodeId u = queue[qi];
        order.push_back(u);
        for (const NodeId v : q.neighbors(u)) {
          if (!visited[v]) {
            visited[v] = 1;
            parent[v] = u;
            children[u].push_back(v);
            queue.push_back(v);
          }
        }
      }
    }
  }

  const auto h = static_cast<std::uint32_t>(roots.size());
  GCLUS_CHECK(max_parts >= h, "need at least one part per component");
  std::uint32_t cut_budget = max_parts - h;
  const NodeId threshold =
      std::max<NodeId>(1, (w + max_parts - 1) / max_parts);

  // Post-order accumulation (reverse BFS order visits children first):
  // when a subtree gathers >= threshold uncut nodes and budget remains,
  // cut it into a fresh part.
  std::vector<NodeId> pending(w, 0);  // uncut nodes in the subtree
  std::uint32_t next_part = 0;
  std::vector<std::uint32_t> cut_part(w, UINT32_MAX);  // part id at cut node
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    NodeId acc = 1;
    for (const NodeId c : children[u]) acc += pending[c];
    if (parent[u] != kInvalidNode && cut_budget > 0 && acc >= threshold) {
      cut_part[u] = next_part++;
      --cut_budget;
      pending[u] = 0;
    } else {
      pending[u] = acc;
    }
  }
  // Every root owns whatever was not cut below it.
  for (const NodeId r : roots) cut_part[r] = next_part++;

  // Downward sweep: nodes inherit the nearest cut ancestor's part.
  for (const NodeId u : order) {
    part[u] = cut_part[u] != UINT32_MAX ? cut_part[u] : part[parent[u]];
  }
  return part;
}

}  // namespace

std::pair<Dist, std::vector<std::uint32_t>> evaluate_centers(
    const Graph& g, const std::vector<NodeId>& centers) {
  GCLUS_CHECK(!centers.empty());
  std::vector<std::uint32_t> owner;
  const std::vector<Dist> dist = multi_source_bfs(g, centers, &owner);
  Dist radius = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    GCLUS_CHECK(dist[v] != kInfDist,
                "center set does not dominate all components");
    radius = std::max(radius, dist[v]);
  }
  return {radius, std::move(owner)};
}

KCenterResult kcenter_approx(const Graph& g, NodeId k,
                             const KCenterOptions& options) {
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(k >= 1 && k <= n);
  const Components comps = connected_components(g);
  GCLUS_CHECK(k >= comps.count,
              "k-center needs k >= number of connected components");

  const double logn = std::max(1.0, std::log2(static_cast<double>(n)));
  const auto tau_from_k = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(options.tau_scale * k / (logn * logn))));
  const std::uint32_t tau = std::max<std::uint32_t>(tau_from_k, comps.count);

  ClusterOptions copts;
  copts.context() = options.context();
  const Clustering clustering = cluster(g, tau, copts);

  KCenterResult result;
  result.raw_clusters = clustering.num_clusters();
  result.tau = tau;

  std::vector<NodeId> centers;
  if (clustering.num_clusters() <= k) {
    centers.assign(clustering.centers.begin(), clustering.centers.end());
  } else {
    // Merge clusters along the quotient spanning forest (Theorem 2).
    const QuotientGraph q =
        build_quotient(g, clustering, /*with_weights=*/false);
    const std::vector<std::uint32_t> part = partition_forest(q.graph, k);
    std::uint32_t num_parts = 0;
    for (const auto p : part) num_parts = std::max(num_parts, p + 1);
    // One center per part: the center of its lowest-id member cluster.
    std::vector<NodeId> part_center(num_parts, kInvalidNode);
    for (ClusterId c = 0; c < clustering.num_clusters(); ++c) {
      auto& slot = part_center[part[c]];
      if (slot == kInvalidNode) slot = clustering.centers[c];
    }
    for (const NodeId pc : part_center) {
      GCLUS_CHECK(pc != kInvalidNode);
      centers.push_back(pc);
    }
  }

  // Pad to exactly k centers, farthest-first: strictly no worse than the
  // paper's arbitrary padding.
  while (centers.size() < k) {
    const auto dist = multi_source_bfs(g, centers);
    NodeId best = kInvalidNode;
    Dist best_d = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (dist[v] != kInfDist && dist[v] > best_d) {
        best_d = dist[v];
        best = v;
      }
    }
    if (best == kInvalidNode) {
      // Radius already 0 everywhere reachable; pad with unused nodes.
      for (NodeId v = 0; v < n && centers.size() < k; ++v) {
        if (std::find(centers.begin(), centers.end(), v) == centers.end()) {
          centers.push_back(v);
        }
      }
      break;
    }
    centers.push_back(best);
  }
  GCLUS_CHECK(centers.size() == k);

  auto [radius, owner] = evaluate_centers(g, centers);
  result.centers = std::move(centers);
  result.radius = radius;
  result.nearest_center = std::move(owner);
  return result;
}

}  // namespace gclus
