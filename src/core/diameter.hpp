// Decomposition-based diameter approximation (§4, Corollary 1).
//
// Pipeline: cluster the graph (CLUSTER2 by default; the paper's own
// experiments use plain CLUSTER for efficiency — both are offered), build
// the quotient graph, and read the diameter off it:
//   * Δ_C  — diameter of the unweighted quotient: a LOWER bound on Δ;
//   * Δ′   — 2·R·(Δ_C + 1) + Δ_C: the coarse upper bound of Corollary 1;
//   * Δ″   — 2·R + Δ′_C with Δ′_C the weighted-quotient diameter: the
//            tighter upper bound the experiments report (Δ″ ≤ Δ′).
// With high probability Δ ≤ Δ″ and Δ″ = O(Δ·log³ n).
#pragma once

#include <cstdint>

#include "api/run_context.hpp"
#include "core/cluster.hpp"
#include "core/clustering.hpp"
#include "graph/graph.hpp"

namespace gclus {

/// Execution environment plus the pipeline selector.  The full context —
/// including the growth knobs this struct historically lacked — flows into
/// the underlying CLUSTER/CLUSTER2 run.
struct DiameterOptions : RunContext {
  /// true: full CLUSTER2 pipeline (Algorithm 2) as analyzed in §4.
  /// false: the simplified single-CLUSTER pipeline used in §6.2's
  /// experiments ("for efficiency, we used CLUSTER instead of CLUSTER2,
  /// thus avoiding repeating the clustering twice").
  bool use_cluster2 = false;
};

struct DiameterApprox {
  /// Lower bound: diameter of the unweighted quotient graph.
  Dist lower_bound = 0;

  /// Δ″ = 2·R + Δ′_C — the estimate the paper's tables report as Δ′.
  std::uint64_t upper_bound = 0;

  /// Δ′ = 2·R·(Δ_C+1) + Δ_C — the coarser Corollary-1 bound.
  std::uint64_t upper_bound_coarse = 0;

  /// Weighted quotient diameter Δ′_C.
  Weight weighted_quotient_diameter = 0;

  /// Maximum cluster radius of the clustering used (R_ALG or R_ALG2).
  Dist max_radius = 0;

  /// Quotient size — the paper's n_C and m_C columns.
  NodeId quotient_nodes = 0;
  EdgeId quotient_edges = 0;

  /// Total cluster-growing steps (drives the MR round count, Lemma 3).
  std::size_t growth_steps = 0;

  /// Number of clusters in the decomposition.
  ClusterId num_clusters = 0;
};

/// Approximates the diameter of the *connected* graph `g` using a
/// decomposition of granularity `tau`.
[[nodiscard]] DiameterApprox approximate_diameter(
    const Graph& g, std::uint32_t tau, const DiameterOptions& options = {});

/// Same pipeline, but reusing an already-computed clustering (lets benches
/// time the phases separately and tests inject crafted clusterings).
[[nodiscard]] DiameterApprox diameter_from_clustering(
    const Graph& g, const Clustering& clustering);

}  // namespace gclus
