#include "core/cluster2.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/growth.hpp"
#include "graph/compressed.hpp"
#include "par/parallel_for.hpp"

namespace gclus {

namespace {

template <class G>
Cluster2Result cluster2_impl(const G& g, std::uint32_t tau,
                             const ClusterOptions& options) {
  GCLUS_CHECK(tau >= 1);
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(n >= 1);
  ThreadPool& pool = options.pool_or_global();

  // Phase 1: learn R_ALG with a plain CLUSTER(τ) run on a derived seed.
  // The full context (pool, growth knobs, workspace) carries over; the
  // runs are sequential, so a shared workspace is reused, not contended.
  ClusterOptions prelim = options;
  prelim.telemetry = nullptr;  // phase 1 metrics would shadow CLUSTER2's
  prelim.seed = derive_seed(options.seed, kSeedTagCluster2Prelim);
  const Clustering pre = cluster(g, tau, prelim);

  Cluster2Result result;
  result.r_alg = pre.max_radius();
  result.prelim_growth_steps = pre.growth_steps;

  // Growth quota per iteration.  R_ALG can be 0 when the preliminary run
  // degenerates to singletons (tiny graphs); one step per iteration keeps
  // the loop meaningful there while preserving 2·R_ALG everywhere else.
  const std::size_t quota =
      std::max<std::size_t>(1, 2 * static_cast<std::size_t>(result.r_alg));

  const auto log_n = static_cast<std::size_t>(
      std::ceil(std::log2(std::max<double>(2.0, n))));

  GrowthStateT<G> state(g, pool, options.growth, options.workspace);

  std::size_t iterations = 0;
  for (std::size_t i = 1; i <= log_n && state.uncovered_count() > 0; ++i) {
    ++iterations;
    const double p = std::min(
        1.0, std::ldexp(1.0, static_cast<int>(i)) / static_cast<double>(n));

    // Sample from the engine's uncovered worklist rather than rescanning
    // all n nodes; the keyed draw makes the selected set independent of
    // the sweep order.
    const std::vector<NodeId> selected =
        sample_uncovered_centers(state, pool, options.seed, 0x5EC0 + i, p);
    for (const NodeId c : selected) state.add_center(c);

    state.grow_steps(quota);
  }

  // p reaches 1 in the final iteration, so everything is covered unless n
  // is not a power of two and rounding left a sliver — close it out.
  state.add_singletons_for_uncovered();
  result.clustering = std::move(state).finish();
  result.clustering.iterations = iterations;
  options.emit("cluster2.r_alg", static_cast<double>(result.r_alg));
  options.emit("cluster2.prelim_growth_steps",
               static_cast<double>(result.prelim_growth_steps));
  options.emit("cluster2.clusters",
               static_cast<double>(result.clustering.num_clusters()));
  options.emit("cluster2.max_radius",
               static_cast<double>(result.clustering.max_radius()));
  return result;
}

}  // namespace

Cluster2Result cluster2(const Graph& g, std::uint32_t tau,
                        const ClusterOptions& options) {
  return cluster2_impl(g, tau, options);
}

Cluster2Result cluster2(const CompressedGraph& g, std::uint32_t tau,
                        const ClusterOptions& options) {
  return cluster2_impl(g, tau, options);
}

}  // namespace gclus
