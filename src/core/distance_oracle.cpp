#include "core/distance_oracle.hpp"

#include <cmath>

#include "common/check.hpp"
#include "core/cluster2.hpp"
#include "core/quotient.hpp"
#include "graph/weighted.hpp"

namespace gclus {

DistanceOracle DistanceOracle::build(const Graph& g,
                                     const DistanceOracleOptions& options) {
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(n >= 1);

  std::uint32_t tau = options.tau;
  if (tau == 0) {
    const double logn = std::max(1.0, std::log2(static_cast<double>(n)));
    tau = static_cast<std::uint32_t>(
        std::max(1.0, std::sqrt(static_cast<double>(n)) / (logn * logn)));
  }

  ClusterOptions copts;
  copts.context() = options.context();
  copts.seed = derive_seed(options.seed, kSeedTagOracleBuild);

  Clustering clustering;
  if (options.use_cluster2) {
    clustering = cluster2(g, tau, copts).clustering;
  } else {
    clustering = cluster(g, tau, copts);
  }

  const QuotientGraph q = build_quotient(g, clustering, /*with_weights=*/true);

  DistanceOracle oracle;
  oracle.num_clusters_ = clustering.num_clusters();
  oracle.max_radius_ = clustering.max_radius();
  oracle.cluster_of_ = clustering.assignment;
  oracle.dist_to_center_ = clustering.dist_to_center;
  // The dense APSP is the deliberate O(k²) cost; cap via apsp_matrix.
  oracle.apsp_ = apsp_matrix(q.weighted, /*max_nodes=*/40000);
  return oracle;
}

std::uint64_t DistanceOracle::upper_bound(NodeId u, NodeId v) const {
  GCLUS_CHECK(u < cluster_of_.size() && v < cluster_of_.size());
  if (u == v) return 0;
  const ClusterId cu = cluster_of_[u];
  const ClusterId cv = cluster_of_[v];
  const std::uint64_t label_cost = static_cast<std::uint64_t>(
      dist_to_center_[u]) + dist_to_center_[v];
  if (cu == cv) return label_cost;  // path u -> center -> v inside cluster
  const Weight across = apsp_[static_cast<std::size_t>(cu) * num_clusters_ +
                              cv];
  GCLUS_CHECK(across != kInfWeight, "oracle built over a disconnected graph");
  return label_cost + across;
}

std::size_t DistanceOracle::memory_bytes() const {
  return cluster_of_.size() * sizeof(ClusterId) +
         dist_to_center_.size() * sizeof(Dist) +
         apsp_.size() * sizeof(Weight);
}

}  // namespace gclus
