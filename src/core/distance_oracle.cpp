#include "core/distance_oracle.hpp"

#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "core/cluster2.hpp"
#include "core/quotient.hpp"
#include "graph/weighted.hpp"

namespace gclus {

std::uint32_t resolve_oracle_tau(NodeId n, std::uint32_t tau) {
  if (tau != 0) return tau;
  const double logn = std::max(1.0, std::log2(static_cast<double>(n)));
  return static_cast<std::uint32_t>(
      std::max(1.0, std::sqrt(static_cast<double>(n)) / (logn * logn)));
}

OracleBuild DistanceOracle::build_full(const Graph& g,
                                       const DistanceOracleOptions& options) {
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(n >= 1);

  const std::uint32_t tau = resolve_oracle_tau(n, options.tau);

  ClusterOptions copts;
  copts.context() = options.context();
  copts.seed = derive_seed(options.seed, kSeedTagOracleBuild);

  OracleBuild out;
  out.resolved_tau = tau;
  if (options.use_cluster2) {
    out.clustering = cluster2(g, tau, copts).clustering;
  } else {
    out.clustering = cluster(g, tau, copts);
  }

  QuotientGraph q = build_quotient(g, out.clustering, /*with_weights=*/true);
  out.quotient = std::move(q.weighted);

  DistanceOracle& oracle = out.oracle;
  oracle.num_clusters_ = out.clustering.num_clusters();
  oracle.max_radius_ = out.clustering.max_radius();
  oracle.cluster_of_ = out.clustering.assignment;
  oracle.dist_to_center_ = out.clustering.dist_to_center;
  // The dense APSP is the deliberate O(k²) cost; cap via apsp_matrix.
  oracle.apsp_ = apsp_matrix(out.quotient, /*max_nodes=*/40000);

  options.emit("oracle.tau", static_cast<double>(tau));
  options.emit("oracle.quotient_nodes",
               static_cast<double>(out.quotient.num_nodes()));
  options.emit("oracle.quotient_half_edges",
               static_cast<double>(out.quotient.num_half_edges()));
  options.emit("oracle.apsp_small_path",
               out.quotient.num_nodes() <= kApspSmallGraphNodes ? 1.0 : 0.0);
  return out;
}

DistanceOracle DistanceOracle::build(const Graph& g,
                                     const DistanceOracleOptions& options) {
  return std::move(build_full(g, options).oracle);
}

std::uint64_t DistanceOracle::upper_bound(NodeId u, NodeId v) const {
  GCLUS_CHECK(u < cluster_of_.size() && v < cluster_of_.size());
  if (u == v) return 0;
  const ClusterId cu = cluster_of_[u];
  const ClusterId cv = cluster_of_[v];
  const std::uint64_t label_cost = static_cast<std::uint64_t>(
      dist_to_center_[u]) + dist_to_center_[v];
  if (cu == cv) return label_cost;  // path u -> center -> v inside cluster
  const Weight across = apsp_[static_cast<std::size_t>(cu) * num_clusters_ +
                              cv];
  GCLUS_CHECK(across != kInfWeight, "oracle built over a disconnected graph");
  return label_cost + across;
}

std::size_t DistanceOracle::memory_bytes() const {
  return cluster_of_.size() * sizeof(ClusterId) +
         dist_to_center_.size() * sizeof(Dist) +
         apsp_.size() * sizeof(Weight);
}

}  // namespace gclus
