// Quotient graph construction (§4).
//
// Given a clustering of G, the quotient graph G_C has one node per cluster
// and an edge between two clusters whenever some G-edge crosses them.  The
// weighted variant assigns edge {A, B} the length of a concrete path
// between the two centers that stays inside A ∪ B:
//     w(A,B) = min over crossing G-edges (a,b) of
//              dist(a, center_A) + 1 + dist(b, center_B),
// using the claim-time distances recorded by the growth engine.  This is
// the weighting the paper uses for the tighter Δ″ upper bound and for the
// distance oracle.
#pragma once

#include "core/clustering.hpp"
#include "graph/graph.hpp"
#include "graph/weighted.hpp"

namespace gclus {

struct QuotientGraph {
  /// Unweighted quotient: node c == cluster c of the clustering.
  Graph graph;

  /// Weighted variant (empty unless requested).
  WeightedGraph weighted;

  [[nodiscard]] NodeId num_clusters() const { return graph.num_nodes(); }
};

/// Builds the quotient graph of `clustering` over `g`.
/// When `with_weights` is set the weighted variant is built as well.
[[nodiscard]] QuotientGraph build_quotient(const Graph& g,
                                           const Clustering& clustering,
                                           bool with_weights = true);

}  // namespace gclus
