// Baswana–Sen spanner sparsification — the paper's §5 machinery.
//
// Theorem 4 handles quotient graphs whose edge count exceeds the local
// memory M_L by sparsifying them with "the technique presented in [4]"
// (Baswana & Sen, Random Struct. Algorithms 2007) before shipping them to
// a single reducer.  This module implements the randomized (2k−1)-spanner:
// k−1 clustering phases, each sampling surviving clusters with
// probability n^{-1/k}; unsampled vertices either hook onto an adjacent
// sampled cluster (keeping that edge) or keep one cheapest edge to every
// adjacent cluster and retire; a final phase keeps one cheapest edge per
// (vertex, adjacent cluster) pair.
//
// Guarantees: the spanner is a subgraph with expected O(k·n^{1+1/k})
// edges in which every distance is stretched by at most 2k−1.  Distances
// only grow in a subgraph, so a diameter computed on the spanner remains
// an upper-bound ingredient for the §4 pipeline, at most (2k−1)× looser.
#pragma once

#include <cstdint>

#include "api/run_context.hpp"
#include "graph/weighted.hpp"

namespace gclus {

/// Execution environment plus the stretch parameter.  The sparsification
/// is sequential and randomized only through counter-based draws on the
/// context seed; pool/growth/workspace are currently unused.
struct SpannerOptions : RunContext {
  /// Stretch parameter: the result is a (2k−1)-spanner.  k = 2 gives a
  /// 3-spanner with ~n^{3/2} edges; k = 3 a 5-spanner with ~n^{4/3}.
  unsigned k = 2;
};

struct SpannerResult {
  WeightedGraph spanner;
  EdgeId input_edges = 0;
  EdgeId kept_edges = 0;
  unsigned stretch = 1;  // 2k−1
};

/// Computes a Baswana–Sen (2k−1)-spanner of `g`.
[[nodiscard]] SpannerResult baswana_sen_spanner(
    const WeightedGraph& g, const SpannerOptions& options = {});

}  // namespace gclus
