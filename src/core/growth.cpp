#include "core/growth.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/compressed.hpp"
#include "par/parallel_for.hpp"

namespace gclus {

template <class G>
GrowthStateT<G>::GrowthStateT(const G& g, ThreadPool& pool,
                              GrowthOptions options, Workspace* workspace)
    : g_(&g),
      pool_(&pool),
      options_(options),
      workspace_(workspace),
      uncovered_degree_sum_(g.num_half_edges()) {
  const NodeId n = g.num_nodes();
  if (workspace_ != nullptr) {
    b_ = workspace_->acquire_growth(n, pool.num_threads());
  } else {
    owned_ = std::make_unique<GrowthScratch>();
    owned_->ensure(n, pool.num_threads());
    b_ = owned_.get();
  }
  // Reset every per-node slot: the scratch may carry a previous run's
  // state (that is the point of reuse).  One fused parallel sweep — the
  // writes stream into warm pages when the scratch is recycled.
  parallel_for(pool, 0, n, [&](std::size_t v) {
    b_->claim[v].store(kUnclaimed, std::memory_order_relaxed);
    b_->covered[v] = 0;
    b_->committing[v].clear(std::memory_order_relaxed);
    b_->dist[v] = kInfDist;
    b_->uncovered_candidates[v] = static_cast<NodeId>(v);
  });
  parallel_for(pool, 0, (static_cast<std::size_t>(n) + 63) / 64,
               [&](std::size_t w) {
                 b_->frontier_bits[w].store(0, std::memory_order_relaxed);
               });
  b_->frontier.clear();
  for (auto& p : b_->proposals) p.clear();
  for (auto& p : b_->next_frontier) p.clear();
}

template <class G>
GrowthStateT<G>::GrowthStateT(const G& g, const RunContext& ctx)
    : GrowthStateT(g, ctx.pool_or_global(), ctx.growth, ctx.workspace) {}

template <class G>
GrowthStateT<G>::~GrowthStateT() {
  if (workspace_ != nullptr && b_ != nullptr) workspace_->release_growth(b_);
}

template <class G>
ClusterId GrowthStateT<G>::add_center(NodeId v, std::uint64_t priority) {
  GCLUS_CHECK(v < g_->num_nodes());
  GCLUS_CHECK(b_->covered[v] == 0, "center ", v, " already covered");
  const auto cid = static_cast<ClusterId>(centers_.size());
  GCLUS_CHECK(centers_.size() < (1ULL << 32), "cluster id overflow");
  const std::uint64_t prio =
      priority == kPriorityFromClusterId ? cid : priority;
  GCLUS_CHECK(prio < (1ULL << 32), "priority must fit in 32 bits");
  b_->claim[v].store(make_key(cid, prio), std::memory_order_relaxed);
  b_->covered[v] = 1;
  b_->dist[v] = 0;
  centers_.push_back(v);
  activation_.push_back(static_cast<std::uint32_t>(steps_executed_));
  b_->frontier.push_back(v);
  set_frontier_bit(v);
  frontier_degree_sum_ += g_->degree(v);
  uncovered_degree_sum_ -= g_->degree(v);
  ++covered_count_;
  return cid;
}

template <class G>
bool GrowthStateT<G>::decide_pull() {
  pulling_ = decide_direction(pulling_, b_->frontier.size(), g_->num_nodes(),
                              frontier_degree_sum_, uncovered_degree_sum_,
                              options_);
  return pulling_;
}

template <class G>
NodeId GrowthStateT<G>::step() {
  if (b_->frontier.empty()) return 0;
  ++steps_executed_;
  const auto step_index = static_cast<std::uint32_t>(steps_executed_);

  const bool pull = decide_pull();
  if (options_.log_decisions) {
    std::fprintf(stderr,
                 "[growth] step=%u mode=%s frontier=%zu fdeg=%llu udeg=%llu\n",
                 step_index, pull ? "pull" : "push", b_->frontier.size(),
                 static_cast<unsigned long long>(frontier_degree_sum_),
                 static_cast<unsigned long long>(uncovered_degree_sum_));
  }
  GrowthStepLog log;
  if (options_.record_step_log) {
    log.step = step_index;
    log.pull = pull;
    log.frontier_size = static_cast<NodeId>(b_->frontier.size());
    log.frontier_degree_sum = frontier_degree_sum_;
    log.uncovered_degree_sum = uncovered_degree_sum_;
  }

  const NodeId newly = pull ? step_pull(step_index) : step_push(step_index);

  if (options_.record_step_log) {
    log.newly_covered = newly;
    stats_.steps.push_back(log);
  }
  if (pull) {
    ++stats_.pull_steps;
  } else {
    ++stats_.push_steps;
  }
  covered_count_ += newly;
  return newly;
}

template <class G>
NodeId GrowthStateT<G>::step_push(std::uint32_t step_index) {
  // Phase 1 — proposals: every frontier node bids for its uncovered
  // neighbors with its cluster's claim key; fetch-min keeps the best bid.
  for (auto& p : b_->proposals) p.clear();
  std::atomic<std::uint64_t> edges_scanned{0};
  {
    std::atomic<std::size_t> cursor{0};
    pool_->run_on_workers([&](std::size_t worker) {
      auto& out = b_->proposals[worker];
      std::uint64_t scanned = 0;
      constexpr std::size_t kGrain = 64;
      for (;;) {
        const std::size_t lo =
            cursor.fetch_add(kGrain, std::memory_order_relaxed);
        if (lo >= b_->frontier.size()) break;
        const std::size_t hi = std::min(lo + kGrain, b_->frontier.size());
        // Frontier vertices are scanned in adjacent pairs so the
        // compressed representation can interleave the two independent
        // decode chains (visit_neighbors2); for plain CSR the pair visit
        // compiles to the same two loops as before.  Claims are
        // commutative fetch-mins, so the visit order across the pair is
        // immaterial.
        const auto claim_for = [&](std::uint64_t key) {
          return [&, key](NodeId v) {
            if (b_->covered[v] != 0) return;
            if (atomic_fetch_min(b_->claim[v], key)) out.push_back(v);
          };
        };
        std::size_t i = lo;
        for (; i + 1 < hi; i += 2) {
          const NodeId u0 = b_->frontier[i];
          const NodeId u1 = b_->frontier[i + 1];
          const std::uint64_t key0 =
              b_->claim[u0].load(std::memory_order_relaxed);
          const std::uint64_t key1 =
              b_->claim[u1].load(std::memory_order_relaxed);
          scanned += g_->degree(u0) + g_->degree(u1);
          visit_neighbors2(*g_, u0, u1, claim_for(key0), claim_for(key1));
        }
        if (i < hi) {
          const NodeId u = b_->frontier[i];
          const std::uint64_t key =
              b_->claim[u].load(std::memory_order_relaxed);
          scanned += g_->degree(u);
          for (const NodeId v : g_->neighbors(u)) claim_for(key)(v);
        }
      }
      edges_scanned.fetch_add(scanned, std::memory_order_relaxed);
    });
  }
  stats_.push_edges_scanned += edges_scanned.load();

  // Phase 2 — commit: each proposed node is finalized exactly once (the
  // atomic-flag latch dedups multi-worker proposals), its distance derived
  // from the winning cluster's activation step.
  for (auto& nf : b_->next_frontier) nf.clear();
  std::atomic<NodeId> newly{0};
  std::atomic<std::uint64_t> next_degree_sum{0};
  {
    pool_->run_on_workers([&](std::size_t worker) {
      auto& in = b_->proposals[worker];
      auto& out = b_->next_frontier[worker];
      NodeId local_new = 0;
      std::uint64_t local_deg = 0;
      for (const NodeId v : in) {
        if (b_->committing[v].test_and_set(std::memory_order_relaxed)) {
          continue;
        }
        const std::uint64_t key = b_->claim[v].load(std::memory_order_relaxed);
        const ClusterId c = key_cluster(key);
        b_->covered[v] = 1;
        b_->dist[v] = static_cast<Dist>(step_index - activation_[c]);
        out.push_back(v);
        ++local_new;
        local_deg += g_->degree(v);
      }
      newly.fetch_add(local_new, std::memory_order_relaxed);
      next_degree_sum.fetch_add(local_deg, std::memory_order_relaxed);
    });
  }

  install_next_frontier(next_degree_sum.load());
  return newly.load();
}

template <class G>
NodeId GrowthStateT<G>::step_pull(std::uint32_t step_index) {
  maybe_compact_candidates();

  // Scan phase: every uncovered node takes the minimum claim key over its
  // frontier neighbors, tested against the packed frontier bitmap (stable
  // for the whole step — bits change only in install_next_frontier, behind
  // a pool barrier).  Between steps every covered neighbor of an uncovered
  // node belongs to the current frontier (see the header), so this minimum
  // equals the push-side fetch-min, and same-step multi-hop claims are
  // impossible because newly claimed nodes are not in the bitmap.
  for (auto& nf : b_->next_frontier) nf.clear();
  std::atomic<NodeId> newly{0};
  std::atomic<std::uint64_t> next_degree_sum{0};
  std::atomic<std::uint64_t> edges_scanned{0};
  {
    std::atomic<std::size_t> cursor{0};
    pool_->run_on_workers([&](std::size_t worker) {
      auto& out = b_->next_frontier[worker];
      NodeId local_new = 0;
      std::uint64_t local_deg = 0;
      std::uint64_t scanned = 0;
      constexpr std::size_t kGrain = 256;
      for (;;) {
        const std::size_t lo =
            cursor.fetch_add(kGrain, std::memory_order_relaxed);
        if (lo >= b_->uncovered_candidates.size()) break;
        const std::size_t hi =
            std::min(lo + kGrain, b_->uncovered_candidates.size());
        // Uncovered candidates are scanned in pairs for the same reason
        // as the push phase: the compressed overload of visit_neighbors2
        // interleaves the two decode chains.  The min over frontier
        // claims is commutative, so pairing cannot change any result.
        const auto gather_for = [&](std::uint64_t& best) {
          return [&](NodeId u) {
            if (!in_frontier(u)) return;
            best = std::min(best,
                            b_->claim[u].load(std::memory_order_relaxed));
          };
        };
        const auto commit = [&](NodeId v, std::uint64_t best) {
          if (best == kUnclaimed) return;
          b_->claim[v].store(best, std::memory_order_relaxed);
          b_->dist[v] = static_cast<Dist>(step_index -
                                          activation_[key_cluster(best)]);
          out.push_back(v);
          ++local_new;
          local_deg += g_->degree(v);
        };
        NodeId pending = kInvalidNode;
        for (std::size_t i = lo; i < hi; ++i) {
          const NodeId v = b_->uncovered_candidates[i];
          if (b_->covered[v] != 0) continue;
          if (pending == kInvalidNode) {
            pending = v;
            continue;
          }
          scanned += g_->degree(pending) + g_->degree(v);
          std::uint64_t best0 = kUnclaimed;
          std::uint64_t best1 = kUnclaimed;
          visit_neighbors2(*g_, pending, v, gather_for(best0),
                           gather_for(best1));
          commit(pending, best0);
          commit(v, best1);
          pending = kInvalidNode;
        }
        if (pending != kInvalidNode) {
          scanned += g_->degree(pending);
          std::uint64_t best = kUnclaimed;
          for (const NodeId u : g_->neighbors(pending)) gather_for(best)(u);
          commit(pending, best);
        }
      }
      newly.fetch_add(local_new, std::memory_order_relaxed);
      next_degree_sum.fetch_add(local_deg, std::memory_order_relaxed);
      edges_scanned.fetch_add(scanned, std::memory_order_relaxed);
    });
  }
  stats_.pull_edges_scanned += edges_scanned.load();

  // Commit phase: flip the coverage flags behind the barrier.
  install_next_frontier(next_degree_sum.load());
  parallel_for(*pool_, 0, b_->frontier.size(),
               [&](std::size_t i) { b_->covered[b_->frontier[i]] = 1; });
  return newly.load();
}

template <class G>
void GrowthStateT<G>::install_next_frontier(std::uint64_t next_degree_sum) {
  parallel_for(*pool_, 0, b_->frontier.size(),
               [&](std::size_t i) { clear_frontier_bit(b_->frontier[i]); });
  parallel_concat(*pool_, b_->next_frontier, b_->frontier);
  parallel_for(*pool_, 0, b_->frontier.size(),
               [&](std::size_t i) { set_frontier_bit(b_->frontier[i]); });
  frontier_degree_sum_ = next_degree_sum;
  uncovered_degree_sum_ -= next_degree_sum;
}

template <class G>
void GrowthStateT<G>::maybe_compact_candidates() {
  if (!worklist_needs_compaction(b_->uncovered_candidates.size(),
                                 uncovered_count())) {
    return;
  }
  parallel_compact(*pool_, b_->uncovered_candidates,
                   [&](NodeId v) { return b_->covered[v] == 0; });
}

template <class G>
const std::vector<NodeId>& GrowthStateT<G>::uncovered_candidates() {
  maybe_compact_candidates();
  return b_->uncovered_candidates;
}

template <class G>
NodeId GrowthStateT<G>::first_uncovered() {
  for (const NodeId v : b_->uncovered_candidates) {
    if (b_->covered[v] == 0) return v;
  }
  return kInvalidNode;
}

template <class G>
NodeId GrowthStateT<G>::grow_steps(std::size_t steps) {
  NodeId total = 0;
  for (std::size_t s = 0; s < steps && !b_->frontier.empty(); ++s) {
    total += step();
  }
  return total;
}

template <class G>
NodeId GrowthStateT<G>::grow_until_covered(NodeId target_new) {
  NodeId total = 0;
  while (total < target_new && !b_->frontier.empty()) {
    total += step();
  }
  return total;
}

template <class G>
void GrowthStateT<G>::add_singletons_for_uncovered() {
  // The candidate list is an ascending superset of the uncovered set, so
  // singleton cluster ids are assigned in node order, exactly as a full
  // range scan would.
  for (const NodeId v : uncovered_candidates()) {
    if (b_->covered[v] == 0) add_center(v);
  }
}

template <class G>
Clustering GrowthStateT<G>::finish() && {
  const NodeId n = g_->num_nodes();
  GCLUS_CHECK(covered_count_ == n,
              "finish() requires full coverage; uncovered nodes remain");
  Clustering out;
  out.assignment.resize(n);
  // Moving the distance buffer out is right even for workspace-backed
  // runs: the result needs fresh n-sized storage either way, so a copy
  // would pay the same allocation *plus* the copy, while the workspace
  // re-grows this one buffer on the next acquire at exactly the cost the
  // copy destination would have paid here.
  out.dist_to_center = std::move(b_->dist);
  out.centers = std::move(centers_);
  out.growth_steps = steps_executed_;
  out.push_steps = stats_.push_steps;
  out.pull_steps = stats_.pull_steps;
  parallel_for(*pool_, 0, n, [&](std::size_t v) {
    out.assignment[v] =
        key_cluster(b_->claim[v].load(std::memory_order_relaxed));
  });
  finalize_cluster_stats(out);
  return out;
}

template <class G2>
std::vector<NodeId> sample_uncovered_centers(GrowthStateT<G2>& state,
                                             ThreadPool& pool,
                                             std::uint64_t seed,
                                             std::uint64_t draw_key,
                                             double p) {
  const auto& candidates = state.uncovered_candidates();
  // Per-worker buffers come from the engine's scratch so a warm workspace
  // also serves the selection sweeps.  All buffers are cleared (not just
  // the first num_threads) because parallel_concat reads every one.
  std::vector<std::vector<NodeId>>& per_worker = state.b_->sample;
  if (per_worker.size() < pool.num_threads()) {
    per_worker.resize(pool.num_threads());
  }
  for (auto& out : per_worker) out.clear();
  std::atomic<std::size_t> cursor{0};
  pool.run_on_workers([&](std::size_t worker) {
    auto& out = per_worker[worker];
    constexpr std::size_t kGrain = 2048;
    for (;;) {
      const std::size_t lo = cursor.fetch_add(kGrain, std::memory_order_relaxed);
      if (lo >= candidates.size()) break;
      const std::size_t hi = std::min(lo + kGrain, candidates.size());
      for (std::size_t i = lo; i < hi; ++i) {
        const NodeId v = candidates[i];
        if (state.is_covered(v)) continue;
        if (keyed_bernoulli(seed, draw_key, v, p)) out.push_back(v);
      }
    }
  });
  std::vector<NodeId> selected;
  parallel_concat(pool, per_worker, selected);
  std::sort(selected.begin(), selected.end());
  return selected;
}

template class GrowthStateT<Graph>;
template class GrowthStateT<CompressedGraph>;

template std::vector<NodeId> sample_uncovered_centers<Graph>(
    GrowthStateT<Graph>&, ThreadPool&, std::uint64_t, std::uint64_t, double);
template std::vector<NodeId> sample_uncovered_centers<CompressedGraph>(
    GrowthStateT<CompressedGraph>&, ThreadPool&, std::uint64_t, std::uint64_t,
    double);

}  // namespace gclus
