#include "core/growth.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "par/parallel_for.hpp"

namespace gclus {

GrowthState::GrowthState(const Graph& g, ThreadPool& pool)
    : g_(&g),
      pool_(&pool),
      claim_(g.num_nodes()),
      covered_(g.num_nodes(), 0),
      committing_(g.num_nodes()),
      dist_(g.num_nodes(), kInfDist),
      proposals_(pool.num_threads()),
      next_frontier_(pool.num_threads()) {
  parallel_for(pool, 0, g.num_nodes(), [&](std::size_t v) {
    claim_[v].store(kUnclaimed, std::memory_order_relaxed);
  });
}

ClusterId GrowthState::add_center(NodeId v, std::uint64_t priority) {
  GCLUS_CHECK(v < g_->num_nodes());
  GCLUS_CHECK(covered_[v] == 0, "center ", v, " already covered");
  const auto cid = static_cast<ClusterId>(centers_.size());
  GCLUS_CHECK(centers_.size() < (1ULL << 32), "cluster id overflow");
  const std::uint64_t prio =
      priority == kPriorityFromClusterId ? cid : priority;
  GCLUS_CHECK(prio < (1ULL << 32), "priority must fit in 32 bits");
  claim_[v].store(make_key(cid, prio), std::memory_order_relaxed);
  covered_[v] = 1;
  dist_[v] = 0;
  centers_.push_back(v);
  activation_.push_back(static_cast<std::uint32_t>(steps_executed_));
  frontier_.push_back(v);
  ++covered_count_;
  return cid;
}

NodeId GrowthState::step() {
  if (frontier_.empty()) return 0;
  ++steps_executed_;
  const auto step_index = static_cast<std::uint32_t>(steps_executed_);

  // Phase 1 — proposals: every frontier node bids for its uncovered
  // neighbors with its cluster's claim key; fetch-min keeps the best bid.
  for (auto& p : proposals_) p.clear();
  {
    std::atomic<std::size_t> cursor{0};
    pool_->run_on_workers([&](std::size_t worker) {
      auto& out = proposals_[worker];
      constexpr std::size_t kGrain = 64;
      for (;;) {
        const std::size_t lo =
            cursor.fetch_add(kGrain, std::memory_order_relaxed);
        if (lo >= frontier_.size()) break;
        const std::size_t hi = std::min(lo + kGrain, frontier_.size());
        for (std::size_t i = lo; i < hi; ++i) {
          const NodeId u = frontier_[i];
          const std::uint64_t key = claim_[u].load(std::memory_order_relaxed);
          for (const NodeId v : g_->neighbors(u)) {
            if (covered_[v] != 0) continue;
            if (atomic_fetch_min(claim_[v], key)) out.push_back(v);
          }
        }
      }
    });
  }

  // Phase 2 — commit: each proposed node is finalized exactly once (the
  // atomic-flag latch dedups multi-worker proposals), its distance derived
  // from the winning cluster's activation step.
  for (auto& nf : next_frontier_) nf.clear();
  std::atomic<NodeId> newly{0};
  {
    pool_->run_on_workers([&](std::size_t worker) {
      auto& in = proposals_[worker];
      auto& out = next_frontier_[worker];
      NodeId local_new = 0;
      for (const NodeId v : in) {
        if (committing_[v].test_and_set(std::memory_order_relaxed)) continue;
        const std::uint64_t key = claim_[v].load(std::memory_order_relaxed);
        const ClusterId c = key_cluster(key);
        covered_[v] = 1;
        dist_[v] = static_cast<Dist>(step_index - activation_[c]);
        out.push_back(v);
        ++local_new;
      }
      newly.fetch_add(local_new, std::memory_order_relaxed);
    });
  }

  frontier_.clear();
  for (const auto& nf : next_frontier_) {
    frontier_.insert(frontier_.end(), nf.begin(), nf.end());
  }
  covered_count_ += newly.load();
  return newly.load();
}

NodeId GrowthState::grow_steps(std::size_t steps) {
  NodeId total = 0;
  for (std::size_t s = 0; s < steps && !frontier_.empty(); ++s) {
    total += step();
  }
  return total;
}

NodeId GrowthState::grow_until_covered(NodeId target_new) {
  NodeId total = 0;
  while (total < target_new && !frontier_.empty()) {
    total += step();
  }
  return total;
}

void GrowthState::add_singletons_for_uncovered() {
  for (NodeId v = 0; v < g_->num_nodes(); ++v) {
    if (covered_[v] == 0) add_center(v);
  }
}

Clustering GrowthState::finish() && {
  const NodeId n = g_->num_nodes();
  GCLUS_CHECK(covered_count_ == n,
              "finish() requires full coverage; uncovered nodes remain");
  Clustering out;
  out.assignment.resize(n);
  out.dist_to_center = std::move(dist_);
  out.centers = std::move(centers_);
  out.growth_steps = steps_executed_;
  parallel_for(*pool_, 0, n, [&](std::size_t v) {
    out.assignment[v] =
        key_cluster(claim_[v].load(std::memory_order_relaxed));
  });
  finalize_cluster_stats(out);
  return out;
}

}  // namespace gclus
