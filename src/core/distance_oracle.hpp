// Linear-space distance oracle (§4, final remark).
//
// Build: run the decomposition at granularity τ = O(√n / log⁴ n), build
// the *weighted* quotient graph, and store its dense all-pairs
// shortest-path matrix plus the per-node (cluster, dist-to-center) labels.
// Query: d′(u,v) = dist(u, ctr(u)) + apsp[ctr(u)][ctr(v)] + dist(v, ctr(v))
// is an upper bound on dist(u,v), because every weighted quotient path
// corresponds to a concrete path in G through the cluster centers.  The
// paper shows d′(u,v) = O(d(u,v)·log³ n + R_ALG2) with high probability —
// polylogarithmic distortion for far-apart node pairs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "api/run_context.hpp"
#include "core/cluster.hpp"
#include "core/clustering.hpp"
#include "graph/graph.hpp"
#include "graph/weighted.hpp"

namespace gclus {

/// Execution environment plus the oracle's structural knobs.  The build's
/// decomposition runs on the derived sub-stream
/// derive_seed(seed, kSeedTagOracleBuild), so an oracle built with seed s
/// never replays the exact clustering of a user's own CLUSTER2(s) run.
/// Compatibility note: this is a deliberate break from the pre-RunContext
/// library, which passed the seed through verbatim — oracles rebuilt from
/// stored seeds will choose a different (equally valid) clustering.  All
/// quality guarantees are distribution-level, and the serialized artifact
/// (server/artifact.hpp) stores the resolved knobs, not the stream, so
/// nothing persisted depends on the old behavior.
struct DistanceOracleOptions : RunContext {
  /// 0 means "choose τ automatically" as max(1, √n / log²n) — large enough
  /// to keep the quotient near √n nodes so the APSP matrix stays linear
  /// in the input size.
  std::uint32_t tau = 0;

  /// Use CLUSTER2 (the analyzed variant) instead of plain CLUSTER.
  bool use_cluster2 = true;
};

/// τ actually used for an n-node build when `tau` may be the 0 sentinel.
[[nodiscard]] std::uint32_t resolve_oracle_tau(NodeId n, std::uint32_t tau);

struct OracleBuild;

class DistanceOracle {
 public:
  /// Builds the oracle over the *connected* graph `g`.
  static DistanceOracle build(const Graph& g,
                              const DistanceOracleOptions& options = {});

  /// Like build, but also hands back the clustering and weighted quotient
  /// the oracle was derived from.  Telemetry (when options.telemetry is
  /// set): "oracle.tau", "oracle.quotient_nodes",
  /// "oracle.quotient_half_edges", "oracle.apsp_small_path" (1 when the
  /// linear-scan small-quotient APSP path was taken).
  static OracleBuild build_full(const Graph& g,
                                const DistanceOracleOptions& options = {});

  /// Upper bound on dist(u, v).  Exact 0 when u == v.
  [[nodiscard]] std::uint64_t upper_bound(NodeId u, NodeId v) const;

  /// Clusters in the underlying decomposition.
  [[nodiscard]] ClusterId num_clusters() const {
    return static_cast<ClusterId>(num_clusters_);
  }

  /// Maximum cluster radius (the additive term of the guarantee).
  [[nodiscard]] Dist max_radius() const { return max_radius_; }

  /// Bytes of storage: labels + APSP matrix.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// The stored label arrays and the dense k×k row-major APSP matrix —
  /// the exact payload the artifact sidecar serializes.
  [[nodiscard]] std::span<const ClusterId> cluster_of() const {
    return cluster_of_;
  }
  [[nodiscard]] std::span<const Dist> dist_to_center() const {
    return dist_to_center_;
  }
  [[nodiscard]] std::span<const Weight> apsp() const { return apsp_; }

 private:
  friend struct OracleBuild;
  DistanceOracle() = default;

  std::vector<ClusterId> cluster_of_;
  std::vector<Dist> dist_to_center_;
  std::vector<Weight> apsp_;  // num_clusters_² row-major
  std::size_t num_clusters_ = 0;
  Dist max_radius_ = 0;
};

/// Everything the oracle build produces, for callers that persist or
/// inspect the intermediate structures (the artifact serializer stores
/// the clustering labels and the quotient next to the APSP matrix).
struct OracleBuild {
  Clustering clustering;
  WeightedGraph quotient;
  DistanceOracle oracle;
  std::uint32_t resolved_tau = 0;
};

}  // namespace gclus
