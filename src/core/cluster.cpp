#include "core/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/growth.hpp"
#include "graph/compressed.hpp"
#include "par/parallel_for.hpp"

namespace gclus {

namespace {

double log2_clamped(NodeId n) {
  return std::max(1.0, std::log2(static_cast<double>(n)));
}

}  // namespace

double cluster_selection_probability(std::uint32_t tau, NodeId num_nodes,
                                     NodeId uncovered,
                                     double selection_constant) {
  GCLUS_CHECK(uncovered > 0);
  const double p = selection_constant * tau * log2_clamped(num_nodes) /
                   static_cast<double>(uncovered);
  return std::min(1.0, p);
}

namespace {

template <class G>
Clustering cluster_impl(const G& g, std::uint32_t tau,
                        const ClusterOptions& options) {
  GCLUS_CHECK(tau >= 1, "CLUSTER requires tau >= 1");
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(n >= 1);
  ThreadPool& pool = options.pool_or_global();

  GrowthStateT<G> state(g, pool, options.growth, options.workspace);
  const double logn = log2_clamped(n);
  const double stop_threshold = options.threshold_constant * tau * logn;

  std::size_t iteration = 0;

  while (state.uncovered_count() > 0 &&
         static_cast<double>(state.uncovered_count()) >= stop_threshold) {
    const NodeId uncovered = state.uncovered_count();
    const double p = cluster_selection_probability(
        tau, n, uncovered, options.selection_constant);

    // --- Select the new batch of centers among uncovered nodes. ---
    // The Bernoulli draw is keyed on (seed, iteration, node): deterministic
    // and schedule-independent.  Sampling sweeps the engine's uncovered
    // worklist instead of the full node range, so late rounds stop paying
    // O(n) per batch; cluster ids are assigned in node order.
    const std::vector<NodeId> selected =
        sample_uncovered_centers(state, pool, options.seed, iteration, p);
    for (const NodeId c : selected) state.add_center(c);

    // Progress guard: with no active frontier and an empty batch the grow
    // phase below would spin forever (tiny graphs, or disconnected graphs
    // where all active clusters exhausted their components).  Inject one
    // deterministic center — the smallest uncovered node.
    if (state.frontier_empty()) {
      const NodeId v = state.first_uncovered();
      if (v != kInvalidNode) state.add_center(v);
    }

    // --- Grow all clusters until half the uncovered nodes are covered. ---
    // Centers activated this iteration already count toward coverage, so
    // the remaining target accounts for them.
    const NodeId target = (uncovered + 1) / 2;
    const NodeId covered_by_selection = uncovered - state.uncovered_count();
    if (covered_by_selection < target) {
      NodeId grown = state.grow_until_covered(target - covered_by_selection);
      // If the frontier died before reaching the target (disconnected
      // graph), fall through: the outer loop re-samples centers from the
      // remaining uncovered regions.
      (void)grown;
    }
    ++iteration;
  }

  state.add_singletons_for_uncovered();
  Clustering out = std::move(state).finish();
  out.iterations = iteration;
  options.emit("cluster.iterations", static_cast<double>(out.iterations));
  options.emit("cluster.clusters", static_cast<double>(out.num_clusters()));
  options.emit("cluster.max_radius", static_cast<double>(out.max_radius()));
  options.emit("cluster.growth_steps", static_cast<double>(out.growth_steps));
  return out;
}

}  // namespace

Clustering cluster(const Graph& g, std::uint32_t tau,
                   const ClusterOptions& options) {
  return cluster_impl(g, tau, options);
}

Clustering cluster(const CompressedGraph& g, std::uint32_t tau,
                   const ClusterOptions& options) {
  return cluster_impl(g, tau, options);
}

}  // namespace gclus
