// The synchronous cluster-growing engine.
//
// All decomposition algorithms in this library (CLUSTER, CLUSTER2, the MPX
// and random-centers baselines) share the same primitive: a set of
// clusters, each with a frontier, grows one hop per step, claiming
// uncovered nodes; concurrent claims on a node are resolved by an atomic
// minimum over a per-cluster priority key.  Because fetch-min is
// commutative, the final partition is a pure function of (graph, centers,
// priorities) — independent of thread schedule — which is what the
// determinism and MR-equivalence tests rely on.
//
// The engine is direction-optimizing.  Each step runs in one of two
// directions with identical claim semantics:
//   * push (top-down): every frontier node bids its cluster key to its
//     uncovered neighbors via atomic fetch-min — work proportional to the
//     frontier's degree sum;
//   * pull (bottom-up): every uncovered node scans its own neighbors for
//     frontier claimants — membership tested against a packed frontier
//     bitmap (1 bit/node, cache-resident even for dense frontiers) — and
//     takes the minimum key locally, contention-free because each node
//     writes only itself.
// The two directions agree exactly: between steps every covered neighbor
// of an uncovered node is a member of the current frontier (it was covered
// in the immediately preceding step or activated as a center since), so
// the pull-side minimum over frontier neighbors equals the push-side
// fetch-min over frontier bids.  GrowthOptions picks the direction per
// step with the classic degree-sum heuristic, or pins it for tests.
//
// Per-step work is proportional to the cheaper of the two degree sums; a
// full growth to cover the graph costs O(n + m) total claims.
// Scratch memory: all per-node and per-worker buffers live in a
// GrowthScratch (api/workspace.hpp).  By default each GrowthState owns a
// private one — allocation behavior identical to the historical engine —
// but a caller serving many runs on the same graph passes a Workspace and
// the engine borrows its warm scratch instead, skipping the O(n + m)
// allocate/fault cost per request (the reset of per-node state still
// happens every run; see Workspace's header).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "api/run_context.hpp"
#include "api/workspace.hpp"
#include "common/traversal.hpp"
#include "common/types.hpp"
#include "core/clustering.hpp"
#include "graph/graph.hpp"
#include "par/thread_pool.hpp"

namespace gclus {

/// One per-step record of the direction decision and the degree sums that
/// drove it (the raw data behind the bench JSON's decision log).
struct GrowthStepLog {
  std::uint32_t step = 0;
  bool pull = false;
  NodeId frontier_size = 0;
  std::uint64_t frontier_degree_sum = 0;
  std::uint64_t uncovered_degree_sum = 0;
  NodeId newly_covered = 0;
};

struct GrowthStats {
  std::size_t push_steps = 0;
  std::size_t pull_steps = 0;
  std::uint64_t push_edges_scanned = 0;
  std::uint64_t pull_edges_scanned = 0;
  std::vector<GrowthStepLog> steps;
};

/// The engine is generic over the graph representation `G` — plain CSR
/// (Graph) or the Rice-coded CompressedGraph — through the shared accessor
/// surface (num_nodes/num_half_edges/degree/neighbors).  Both claim
/// directions reduce neighbors with commutative minima, so the decode
/// order of a compressed (relabeled) adjacency list is immaterial and the
/// final partition is byte-identical across representations.  Members are
/// defined in growth.cpp and explicitly instantiated for Graph and
/// CompressedGraph; GrowthState below keeps every existing call site
/// unchanged.
template <class G>
class GrowthStateT {
 public:
  /// Starts with every node uncovered and no clusters.  With a non-null
  /// `workspace` the engine borrows its growth scratch for the lifetime of
  /// this object (released on destruction); otherwise it allocates a
  /// private scratch.
  explicit GrowthStateT(const G& g, ThreadPool& pool,
                        GrowthOptions options = default_growth_options(),
                        Workspace* workspace = nullptr);

  /// Resolves pool, growth options, and workspace from the context.
  GrowthStateT(const G& g, const RunContext& ctx);

  ~GrowthStateT();

  GrowthStateT(const GrowthStateT&) = delete;
  GrowthStateT& operator=(const GrowthStateT&) = delete;

  /// Registers a new singleton cluster centered at `v` (must be uncovered).
  /// `priority` resolves multi-cluster claims: smaller wins.  Defaults to
  /// the cluster id, i.e. earlier-activated clusters win ties.
  /// Returns the new cluster's id.
  ClusterId add_center(NodeId v,
                       std::uint64_t priority = kPriorityFromClusterId);

  /// One synchronous growth step over all active frontiers.
  /// Returns the number of newly covered nodes.
  NodeId step();

  /// Grows for exactly `steps` steps (stops early only if the frontier
  /// empties).  Returns nodes covered.
  NodeId grow_steps(std::size_t steps);

  /// Grows until at least `target_new` additional nodes are covered or the
  /// frontier empties.  Returns nodes covered.
  NodeId grow_until_covered(NodeId target_new);

  [[nodiscard]] NodeId covered_count() const { return covered_count_; }
  [[nodiscard]] NodeId uncovered_count() const {
    return static_cast<NodeId>(g_->num_nodes() - covered_count_);
  }
  [[nodiscard]] bool frontier_empty() const { return b_->frontier.empty(); }
  [[nodiscard]] std::size_t steps_executed() const { return steps_executed_; }
  [[nodiscard]] ClusterId num_clusters() const {
    return static_cast<ClusterId>(centers_.size());
  }
  [[nodiscard]] bool is_covered(NodeId v) const { return b_->covered[v] != 0; }

  /// Per-step direction decisions and edge-scan counters.
  [[nodiscard]] const GrowthStats& stats() const { return stats_; }

  /// An ascending superset of the uncovered nodes, compacted lazily as
  /// coverage grows — center sampling iterates this instead of rescanning
  /// the full node range every round.  Entries may be stale (already
  /// covered); callers must re-check is_covered().
  [[nodiscard]] const std::vector<NodeId>& uncovered_candidates();

  /// Smallest uncovered node, or kInvalidNode when fully covered.
  [[nodiscard]] NodeId first_uncovered();

  /// Turns every still-uncovered node into a singleton cluster.
  void add_singletons_for_uncovered();

  /// Extracts the final Clustering.  All nodes must be covered.
  [[nodiscard]] Clustering finish() &&;

  static constexpr std::uint64_t kPriorityFromClusterId = ~std::uint64_t{0};

 private:
  /// Applies GrowthOptions to pick this step's direction, with hysteresis
  /// between the push->pull and pull->push thresholds.
  [[nodiscard]] bool decide_pull();

  /// Top-down step: frontier nodes fetch-min their keys into uncovered
  /// neighbors, then proposals commit exactly once.
  NodeId step_push(std::uint32_t step_index);

  /// Bottom-up step: uncovered nodes take the minimum key over their
  /// covered (== frontier) neighbors.  Coverage flags flip only after the
  /// scan barrier so concurrent workers never observe same-step coverage.
  NodeId step_pull(std::uint32_t step_index);

  /// Rebuilds frontier_ from the per-worker buffers (prefix-sum parallel
  /// compaction) and refreshes the degree-sum bookkeeping.
  void install_next_frontier(std::uint64_t next_degree_sum);

  /// Drops covered entries from uncovered_candidates_ once more than half
  /// are stale; amortized O(n) over a full growth.
  void maybe_compact_candidates();

  const G* g_;
  ThreadPool* pool_;
  GrowthOptions options_;

  /// The per-run buffers, either borrowed from workspace_ or privately
  /// owned.  Roles (b_ = the scratch):
  ///   * b_->claim — claim key per node: (priority << 32) | cluster_id
  ///     while racing; the cluster id is the low 32 bits; kUnclaimed when
  ///     untouched;
  ///   * b_->covered — committed coverage flags;
  ///   * b_->committing — commit dedup latches (push phase 2);
  ///   * b_->dist — per-node hop distance to the claiming center;
  ///   * b_->frontier_bits — dense frontier: bit v set iff v is in
  ///     b_->frontier.  Pull steps test it instead of the byte-wide
  ///     covered array (8x less memory traffic on the neighbor scan);
  ///     atomic words because distinct frontier nodes can share a word
  ///     during the parallel set/clear passes;
  ///   * b_->uncovered_candidates — ascending superset of the uncovered
  ///     nodes (see uncovered_candidates());
  ///   * b_->proposals / b_->next_frontier / b_->sample — per-worker
  ///     output buffers.
  Workspace* workspace_ = nullptr;
  std::unique_ptr<GrowthScratch> owned_;
  GrowthScratch* b_ = nullptr;

  std::vector<NodeId> centers_;            // per cluster
  std::vector<std::uint32_t> activation_;  // per cluster: steps_executed_
                                           // at activation time

  std::uint64_t frontier_degree_sum_ = 0;   // over current frontier
  std::uint64_t uncovered_degree_sum_ = 0;  // over uncovered nodes
  bool pulling_ = false;                    // hysteresis state for kAuto

  NodeId covered_count_ = 0;
  std::size_t steps_executed_ = 0;
  GrowthStats stats_;

  static constexpr std::uint64_t kUnclaimed = ~std::uint64_t{0};

  void set_frontier_bit(NodeId v) {
    b_->frontier_bits[v >> 6].fetch_or(1ULL << (v & 63),
                                       std::memory_order_relaxed);
  }
  void clear_frontier_bit(NodeId v) {
    b_->frontier_bits[v >> 6].fetch_and(~(1ULL << (v & 63)),
                                        std::memory_order_relaxed);
  }
  [[nodiscard]] bool in_frontier(NodeId v) const {
    return (b_->frontier_bits[v >> 6].load(std::memory_order_relaxed) >>
            (v & 63)) &
           1ULL;
  }

  [[nodiscard]] static std::uint64_t make_key(ClusterId c,
                                              std::uint64_t priority) {
    return (priority << 32) | static_cast<std::uint64_t>(c);
  }
  [[nodiscard]] static ClusterId key_cluster(std::uint64_t key) {
    return static_cast<ClusterId>(key & 0xffffffffULL);
  }

  // The center sampler reuses the scratch's per-worker sample buffers.
  template <class G2>
  friend std::vector<NodeId> sample_uncovered_centers(GrowthStateT<G2>& state,
                                                      ThreadPool& pool,
                                                      std::uint64_t seed,
                                                      std::uint64_t draw_key,
                                                      double p);
};

/// The historical name: the engine over the plain CSR Graph.
using GrowthState = GrowthStateT<Graph>;

/// Samples every uncovered node independently with probability `p`, using
/// the deterministic draw keyed_bernoulli(seed, draw_key, node) — the
/// selected set depends only on the key inputs, never on the sweep
/// schedule.  Sweeps the engine's uncovered worklist in parallel and
/// returns the selected nodes in ascending order, ready for add_center in
/// node order.  Shared by CLUSTER's and CLUSTER2's batch selection.
template <class G2>
[[nodiscard]] std::vector<NodeId> sample_uncovered_centers(
    GrowthStateT<G2>& state, ThreadPool& pool, std::uint64_t seed,
    std::uint64_t draw_key, double p);

}  // namespace gclus
