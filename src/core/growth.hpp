// The synchronous cluster-growing engine.
//
// All decomposition algorithms in this library (CLUSTER, CLUSTER2, the MPX
// and random-centers baselines) share the same primitive: a set of
// clusters, each with a frontier, grows one hop per step, claiming
// uncovered nodes; concurrent claims on a node are resolved by an atomic
// minimum over a per-cluster priority key.  Because fetch-min is
// commutative, the final partition is a pure function of (graph, centers,
// priorities) — independent of thread schedule — which is what the
// determinism and MR-equivalence tests rely on.
//
// Per-step work is proportional to the frontier's degree sum; a full
// growth to cover the graph costs O(n + m) total claims.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/clustering.hpp"
#include "graph/graph.hpp"
#include "par/thread_pool.hpp"

namespace gclus {

class GrowthState {
 public:
  /// Starts with every node uncovered and no clusters.
  explicit GrowthState(const Graph& g, ThreadPool& pool);

  GrowthState(const GrowthState&) = delete;
  GrowthState& operator=(const GrowthState&) = delete;

  /// Registers a new singleton cluster centered at `v` (must be uncovered).
  /// `priority` resolves multi-cluster claims: smaller wins.  Defaults to
  /// the cluster id, i.e. earlier-activated clusters win ties.
  /// Returns the new cluster's id.
  ClusterId add_center(NodeId v,
                       std::uint64_t priority = kPriorityFromClusterId);

  /// One synchronous growth step over all active frontiers.
  /// Returns the number of newly covered nodes.
  NodeId step();

  /// Grows for exactly `steps` steps (stops early only if the frontier
  /// empties).  Returns nodes covered.
  NodeId grow_steps(std::size_t steps);

  /// Grows until at least `target_new` additional nodes are covered or the
  /// frontier empties.  Returns nodes covered.
  NodeId grow_until_covered(NodeId target_new);

  [[nodiscard]] NodeId covered_count() const { return covered_count_; }
  [[nodiscard]] NodeId uncovered_count() const {
    return static_cast<NodeId>(g_->num_nodes() - covered_count_);
  }
  [[nodiscard]] bool frontier_empty() const { return frontier_.empty(); }
  [[nodiscard]] std::size_t steps_executed() const { return steps_executed_; }
  [[nodiscard]] ClusterId num_clusters() const {
    return static_cast<ClusterId>(centers_.size());
  }
  [[nodiscard]] bool is_covered(NodeId v) const { return covered_[v] != 0; }

  /// Turns every still-uncovered node into a singleton cluster.
  void add_singletons_for_uncovered();

  /// Extracts the final Clustering.  All nodes must be covered.
  [[nodiscard]] Clustering finish() &&;

  static constexpr std::uint64_t kPriorityFromClusterId = ~std::uint64_t{0};

 private:
  const Graph* g_;
  ThreadPool* pool_;

  /// Claim key per node: (priority << 32) | cluster_id while racing; the
  /// cluster id is the low 32 bits.  kUnclaimed when untouched.
  std::vector<std::atomic<std::uint64_t>> claim_;
  std::vector<std::uint8_t> covered_;        // committed coverage flags
  std::vector<std::atomic_flag> committing_; // commit dedup latches
  std::vector<Dist> dist_;                   // per-node dist to center
  std::vector<NodeId> centers_;              // per cluster
  std::vector<std::uint32_t> activation_;    // per cluster: steps_executed_
                                             // at activation time
  std::vector<NodeId> frontier_;
  std::vector<std::vector<NodeId>> proposals_;     // per worker
  std::vector<std::vector<NodeId>> next_frontier_; // per worker

  NodeId covered_count_ = 0;
  std::size_t steps_executed_ = 0;

  static constexpr std::uint64_t kUnclaimed = ~std::uint64_t{0};

  [[nodiscard]] static std::uint64_t make_key(ClusterId c,
                                              std::uint64_t priority) {
    return (priority << 32) | static_cast<std::uint64_t>(c);
  }
  [[nodiscard]] static ClusterId key_cluster(std::uint64_t key) {
    return static_cast<ClusterId>(key & 0xffffffffULL);
  }
};

}  // namespace gclus
