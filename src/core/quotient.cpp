#include "core/quotient.hpp"

#include <algorithm>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "graph/builder.hpp"

namespace gclus {

QuotientGraph build_quotient(const Graph& g, const Clustering& clustering,
                             bool with_weights) {
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(clustering.assignment.size() == n,
              "clustering does not match graph");
  const ClusterId k = clustering.num_clusters();

  // Collect the minimal crossing weight per unordered cluster pair.
  // Keyed by packed (min,max) cluster ids.
  std::unordered_map<std::uint64_t, Weight> best;
  best.reserve(static_cast<std::size_t>(k) * 4);
  for (NodeId u = 0; u < n; ++u) {
    const ClusterId cu = clustering.assignment[u];
    for (const NodeId v : g.neighbors(u)) {
      if (u >= v) continue;  // visit each undirected edge once
      const ClusterId cv = clustering.assignment[v];
      if (cu == cv) continue;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(std::min(cu, cv)) << 32) |
          std::max(cu, cv);
      const Weight w = static_cast<Weight>(clustering.dist_to_center[u]) + 1 +
                       clustering.dist_to_center[v];
      auto [it, inserted] = best.emplace(key, w);
      if (!inserted && w < it->second) it->second = w;
    }
  }

  std::vector<Edge> edges;
  edges.reserve(best.size());
  std::vector<std::tuple<NodeId, NodeId, Weight>> weighted_edges;
  if (with_weights) weighted_edges.reserve(best.size());
  for (const auto& [key, w] : best) {
    const auto a = static_cast<ClusterId>(key >> 32);
    const auto b = static_cast<ClusterId>(key & 0xffffffffULL);
    edges.emplace_back(a, b);
    if (with_weights) weighted_edges.emplace_back(a, b, w);
  }

  QuotientGraph out;
  out.graph = build_graph(k, edges);
  if (with_weights) {
    out.weighted = WeightedGraph::from_edges(k, std::move(weighted_edges));
  }
  return out;
}

}  // namespace gclus
