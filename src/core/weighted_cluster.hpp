// Weighted-graph decomposition — the extension sketched in the paper's
// §7 ("we are currently exploring ... a preliminary decomposition
// strategy that, together with the number of clusters and their weighted
// radius, also controls their hop radius").
//
// The batched-center schedule of CLUSTER carries over unchanged; only the
// growth process generalizes: all active clusters expand their *weighted*
// radius at unit rate on a shared clock, so a cluster activated at time T
// reaches node v at time T + wdist(center, v).  Concretely this is a
// multi-source Dijkstra whose sources enter with their activation time as
// the initial offset, processed in deterministic (arrival, cluster, node)
// order.  A new batch of centers is drawn — with CLUSTER's exact
// selection probabilities — every time the uncovered set halves.
//
// On unit weights the process degenerates to CLUSTER step for step, and
// the test suite asserts the partitions are identical.  Alongside the
// weighted distance, the hop count of every growth path is recorded: the
// per-cluster hop radius is what governs the parallel depth of a
// distributed implementation (each hop is one message round regardless of
// its weight).
#pragma once

#include <cstdint>

#include "api/run_context.hpp"
#include "common/types.hpp"
#include "graph/weighted.hpp"

namespace gclus {

/// Execution environment plus CLUSTER's selection constants.  The weighted
/// growth process is a serial deterministic Dijkstra, so the context's
/// pool/growth/workspace fields are currently unused here; they exist so
/// the weighted pipeline shares the uniform front door (and gains them for
/// free once the growth process is parallelized).  The per-wave center
/// draws intentionally share CLUSTER's exact (seed, iteration, node)
/// coordinates — the unit-weight equivalence guarantee depends on it.
struct WeightedClusterOptions : RunContext {
  double selection_constant = 4.0;
  double threshold_constant = 8.0;
};

struct WeightedClustering {
  std::vector<ClusterId> assignment;

  /// Weighted length of the growth path from the cluster center.
  std::vector<Weight> dist_to_center;

  /// Hop count of that same growth path.
  std::vector<Dist> hops_to_center;

  std::vector<NodeId> centers;

  /// Per-cluster maxima of the two radii.
  std::vector<Weight> weighted_radius;
  std::vector<Dist> hop_radius;

  /// Value of the shared growth clock when the last node was covered.
  Weight final_clock = 0;

  /// Center-selection waves executed.
  std::size_t iterations = 0;

  [[nodiscard]] ClusterId num_clusters() const {
    return static_cast<ClusterId>(centers.size());
  }
  [[nodiscard]] Weight max_weighted_radius() const;
  [[nodiscard]] Dist max_hop_radius() const;

  /// Validates partition + weighted claim chains (every non-center member
  /// has a same-cluster neighbor with dist + w == its dist and hops + 1).
  [[nodiscard]] bool validate(const WeightedGraph& g) const;
};

/// Runs the weighted decomposition at granularity τ.  Edge weights must
/// be >= 1 (zero-weight edges would let clusters teleport; reject them).
[[nodiscard]] WeightedClustering weighted_cluster(
    const WeightedGraph& g, std::uint32_t tau,
    const WeightedClusterOptions& options = {});

/// Diameter approximation for weighted graphs through the weighted
/// quotient: upper = 2·R_w + diam_w(quotient), lower = quotient diameter
/// lower bound analog.  Mirrors §4 with weighted radii.
struct WeightedDiameterApprox {
  Weight upper_bound = 0;
  Weight weighted_quotient_diameter = 0;
  Weight max_weighted_radius = 0;
  Dist max_hop_radius = 0;
  NodeId quotient_nodes = 0;
  EdgeId quotient_edges = 0;
};

[[nodiscard]] WeightedDiameterApprox approximate_weighted_diameter(
    const WeightedGraph& g, std::uint32_t tau,
    const WeightedClusterOptions& options = {});

}  // namespace gclus
