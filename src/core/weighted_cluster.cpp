#include "core/weighted_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/traversal.hpp"

namespace gclus {

Weight WeightedClustering::max_weighted_radius() const {
  Weight r = 0;
  for (const Weight x : weighted_radius) r = std::max(r, x);
  return r;
}

Dist WeightedClustering::max_hop_radius() const {
  Dist r = 0;
  for (const Dist x : hop_radius) r = std::max(r, x);
  return r;
}

bool WeightedClustering::validate(const WeightedGraph& g) const {
  const NodeId n = g.num_nodes();
  if (assignment.size() != n || dist_to_center.size() != n ||
      hops_to_center.size() != n) {
    return false;
  }
  const ClusterId k = num_clusters();
  if (weighted_radius.size() != k || hop_radius.size() != k) return false;

  std::vector<Weight> seen_wr(k, 0);
  std::vector<Dist> seen_hr(k, 0);
  std::vector<NodeId> sizes(k, 0);
  for (NodeId v = 0; v < n; ++v) {
    const ClusterId c = assignment[v];
    if (c >= k) return false;
    ++sizes[c];
    seen_wr[c] = std::max(seen_wr[c], dist_to_center[v]);
    seen_hr[c] = std::max(seen_hr[c], hops_to_center[v]);
    if (hops_to_center[v] == 0) {
      if (centers[c] != v || dist_to_center[v] != 0) return false;
    } else {
      bool found = false;
      for (const auto& [u, w] : g.neighbors(v)) {
        if (assignment[u] == c && hops_to_center[u] + 1 == hops_to_center[v] &&
            dist_to_center[u] + w == dist_to_center[v]) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  for (ClusterId c = 0; c < k; ++c) {
    if (centers[c] >= n || assignment[centers[c]] != c) return false;
    if (sizes[c] == 0) return false;
    if (seen_wr[c] != weighted_radius[c]) return false;
    if (seen_hr[c] != hop_radius[c]) return false;
  }
  return true;
}

namespace {

/// Pending arrival of a cluster's growth wavefront at a node.  Ordered by
/// (time, cluster, node) so pops are deterministic; lower cluster id wins
/// simultaneous arrivals, matching CLUSTER's tie-break.
struct Arrival {
  Weight time;
  ClusterId cluster;
  NodeId node;
  Weight dist;  // weighted distance from the cluster center
  Dist hops;

  bool operator>(const Arrival& other) const {
    return std::tie(time, cluster, node) >
           std::tie(other.time, other.cluster, other.node);
  }
};

}  // namespace

WeightedClustering weighted_cluster(const WeightedGraph& g, std::uint32_t tau,
                                    const WeightedClusterOptions& options) {
  GCLUS_CHECK(tau >= 1, "weighted_cluster requires tau >= 1");
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(n >= 1);
  for (NodeId u = 0; u < n; ++u) {
    for (const auto& [v, w] : g.neighbors(u)) {
      GCLUS_CHECK(w >= 1, "weighted_cluster requires edge weights >= 1");
    }
  }

  WeightedClustering out;
  out.assignment.assign(n, kNoCluster);
  out.dist_to_center.assign(n, kInfWeight);
  out.hops_to_center.assign(n, 0);

  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> pq;
  NodeId covered = 0;
  Weight clock = 0;

  auto add_center = [&](NodeId v) {
    const auto cid = static_cast<ClusterId>(out.centers.size());
    out.centers.push_back(v);
    out.assignment[v] = cid;
    out.dist_to_center[v] = 0;
    out.hops_to_center[v] = 0;
    ++covered;
    for (const auto& [u, w] : g.neighbors(v)) {
      if (out.assignment[u] == kNoCluster) {
        pq.push(Arrival{clock + w, cid, u, w, 1});
      }
    }
  };

  // Pops arrivals until `target_new` nodes are covered, then finishes the
  // current time unit so batch boundaries align with CLUSTER's
  // whole-step semantics.  Returns nodes covered.
  auto grow_until = [&](NodeId target_new) {
    NodeId grown = 0;
    while (!pq.empty()) {
      if (grown >= target_new && pq.top().time > clock) break;
      const Arrival a = pq.top();
      pq.pop();
      clock = std::max(clock, a.time);
      if (out.assignment[a.node] != kNoCluster) continue;
      out.assignment[a.node] = a.cluster;
      out.dist_to_center[a.node] = a.dist;
      out.hops_to_center[a.node] = a.hops;
      ++covered;
      ++grown;
      for (const auto& [u, w] : g.neighbors(a.node)) {
        if (out.assignment[u] == kNoCluster) {
          pq.push(Arrival{a.time + w, a.cluster, u, a.dist + w,
                          static_cast<Dist>(a.hops + 1)});
        }
      }
    }
    return grown;
  };

  const double logn = std::max(1.0, std::log2(static_cast<double>(n)));
  const double stop_threshold = options.threshold_constant * tau * logn;

  // Ascending superset of the uncovered nodes, compacted once more than
  // half the entries go stale — center sampling then stops rescanning all
  // n nodes every iteration (mirrors GrowthState::uncovered_candidates).
  std::vector<NodeId> candidates(n);
  for (NodeId v = 0; v < n; ++v) candidates[v] = v;
  auto compact_candidates = [&] {
    if (!worklist_needs_compaction(candidates.size(),
                                   static_cast<std::size_t>(n - covered))) {
      return;
    }
    candidates.erase(
        std::remove_if(candidates.begin(), candidates.end(),
                       [&](NodeId v) {
                         return out.assignment[v] != kNoCluster;
                       }),
        candidates.end());
  };

  std::size_t iteration = 0;
  while (covered < n && static_cast<double>(n - covered) >= stop_threshold) {
    const NodeId uncovered = n - covered;
    const double p = std::min(
        1.0, options.selection_constant * tau * logn / uncovered);
    compact_candidates();
    std::vector<NodeId> selected;
    for (const NodeId v : candidates) {
      if (out.assignment[v] == kNoCluster &&
          keyed_bernoulli(options.seed, iteration, v, p)) {
        selected.push_back(v);
      }
    }
    for (const NodeId v : selected) add_center(v);

    if (pq.empty() && covered < n && selected.empty()) {
      // Progress guard (disconnected graphs / unlucky waves), as in
      // CLUSTER: inject the smallest uncovered node.
      for (const NodeId v : candidates) {
        if (out.assignment[v] == kNoCluster) {
          add_center(v);
          break;
        }
      }
    }

    const NodeId target = (uncovered + 1) / 2;
    const NodeId covered_by_selection = uncovered - (n - covered);
    if (covered_by_selection < target) {
      grow_until(target - covered_by_selection);
    }
    ++iteration;
  }

  for (const NodeId v : candidates) {
    if (out.assignment[v] == kNoCluster) add_center(v);
  }

  out.final_clock = clock;
  out.iterations = iteration;
  const ClusterId k = out.num_clusters();
  out.weighted_radius.assign(k, 0);
  out.hop_radius.assign(k, 0);
  for (NodeId v = 0; v < n; ++v) {
    const ClusterId c = out.assignment[v];
    out.weighted_radius[c] =
        std::max(out.weighted_radius[c], out.dist_to_center[v]);
    out.hop_radius[c] = std::max(out.hop_radius[c], out.hops_to_center[v]);
  }
  return out;
}

WeightedDiameterApprox approximate_weighted_diameter(
    const WeightedGraph& g, std::uint32_t tau,
    const WeightedClusterOptions& options) {
  const WeightedClustering c = weighted_cluster(g, tau, options);
  const ClusterId k = c.num_clusters();

  // Weighted quotient: edge {A,B} carries the cheapest concrete
  // connection dist_w(a, ctrA) + w(a,b) + dist_w(b, ctrB).
  std::vector<std::tuple<NodeId, NodeId, Weight>> qedges;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const ClusterId cu = c.assignment[u];
    for (const auto& [v, w] : g.neighbors(u)) {
      if (u >= v) continue;
      const ClusterId cv = c.assignment[v];
      if (cu == cv) continue;
      qedges.emplace_back(cu, cv,
                          c.dist_to_center[u] + w + c.dist_to_center[v]);
    }
  }
  const WeightedGraph quotient = WeightedGraph::from_edges(k, qedges);

  WeightedDiameterApprox out;
  out.max_weighted_radius = c.max_weighted_radius();
  out.max_hop_radius = c.max_hop_radius();
  out.quotient_nodes = k;
  out.quotient_edges = quotient.num_edges();
  out.weighted_quotient_diameter = weighted_diameter_exact(quotient);
  out.upper_bound =
      2 * out.max_weighted_radius + out.weighted_quotient_diameter;
  return out;
}

}  // namespace gclus
