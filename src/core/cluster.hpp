// Algorithm 1 (CLUSTER) from §3 of the paper.
//
// Starting from an empty clustering, the algorithm repeatedly:
//   1. selects every yet-uncovered node as a new center independently
//      with probability 4·τ·log n / |uncovered|,
//   2. grows ALL clusters — newly activated and pre-existing — in
//      synchronous parallel steps until at least half of the uncovered
//      nodes become covered,
// and stops when fewer than 8·τ·log n nodes remain, which become
// singleton clusters.  With high probability this yields O(τ·log² n)
// disjoint connected clusters whose maximum radius is within an O(log n)
// factor of the best achievable with τ clusters (Theorem 1, Lemma 1).
#pragma once

#include <cstdint>

#include "api/run_context.hpp"
#include "core/clustering.hpp"
#include "graph/graph.hpp"

namespace gclus {

class CompressedGraph;

/// Execution environment (seed, pool, growth knobs, telemetry, workspace)
/// plus CLUSTER's own constants.  Emits "cluster.iterations",
/// "cluster.clusters", "cluster.max_radius" and "cluster.growth_steps" to
/// the context's telemetry sink.
struct ClusterOptions : RunContext {
  /// The constant of the selection probability 4·τ·log n / |uncovered|.
  double selection_constant = 4.0;

  /// The constant of the loop threshold 8·τ·log n.
  double threshold_constant = 8.0;
};

/// Runs CLUSTER(τ).  Works on connected and disconnected graphs (§3.2
/// requires τ at least the number of components for the guarantees, but
/// the implementation makes progress regardless: if a batch selects no
/// center reachable from an uncovered region, the next batch re-samples,
/// and a deterministic fallback center is injected whenever the frontier
/// goes quiet, so termination is unconditional).
[[nodiscard]] Clustering cluster(const Graph& g, std::uint32_t tau,
                                 const ClusterOptions& options = {});

/// CLUSTER(τ) over a compressed graph — identical semantics and output
/// (the growth engine's claim reductions are neighbor-order independent,
/// so decoding order does not matter), no decompression materialized.
[[nodiscard]] Clustering cluster(const CompressedGraph& g, std::uint32_t tau,
                                 const ClusterOptions& options = {});

/// Selection probability used in iteration `iteration` with `uncovered`
/// uncovered nodes (exposed for tests).
[[nodiscard]] double cluster_selection_probability(std::uint32_t tau,
                                                   NodeId num_nodes,
                                                   NodeId uncovered,
                                                   double selection_constant);

}  // namespace gclus
