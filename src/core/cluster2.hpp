// Algorithm 2 (CLUSTER2) from §4 of the paper.
//
// CLUSTER2 first runs CLUSTER(τ) only to learn R_ALG — the maximum cluster
// radius achievable at granularity τ — then rebuilds a clustering from
// scratch over log n iterations: in iteration i every uncovered node
// becomes a center with probability 2^i/n, and all clusters grow for
// exactly 2·R_ALG synchronous steps.  The fixed growth quota is the
// property Theorem 3 needs: every cluster performs at least (and at most)
// a known number of growing steps per iteration, which bounds how many
// clusters can touch any shortest path and makes the quotient-diameter
// approximation factor independent of the cluster count.
//
// Guarantees (Lemma 2): O(τ·log⁴ n) clusters of radius ≤ 2·R_ALG·log n,
// with high probability.
#pragma once

#include <cstdint>

#include "core/cluster.hpp"
#include "core/clustering.hpp"
#include "graph/graph.hpp"

namespace gclus {

struct Cluster2Result {
  Clustering clustering;

  /// R_ALG measured by the preliminary CLUSTER(τ) run.
  Dist r_alg = 0;

  /// Growth steps of the preliminary run (adds to the total round cost).
  std::size_t prelim_growth_steps = 0;
};

/// Runs CLUSTER2(τ).  `options.seed` seeds both phases (the preliminary
/// CLUSTER run derives a distinct stream from it).
[[nodiscard]] Cluster2Result cluster2(const Graph& g, std::uint32_t tau,
                                      const ClusterOptions& options = {});

/// CLUSTER2(τ) over a compressed graph; both phases (the preliminary
/// CLUSTER run and the quota-grown rebuild) execute on the compressed
/// representation directly.
[[nodiscard]] Cluster2Result cluster2(const CompressedGraph& g,
                                      std::uint32_t tau,
                                      const ClusterOptions& options = {});

}  // namespace gclus
