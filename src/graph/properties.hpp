// Structural graph properties: degree statistics, eccentricities, and
// exact diameter computation.
//
// Exact diameters are needed for the ground-truth column (Δ) of Tables 1,
// 3 and 4.  We use the iFUB algorithm (Crescenzi et al., TCS 2013 — the
// paper's reference [10]): a double sweep seeds a lower bound, then
// BFS runs from nodes in decreasing order of level in a tree rooted at a
// mid-point until the upper bound meets the lower bound.  On low-diameter
// social graphs and on road networks alike, iFUB typically terminates
// after a handful of BFS runs.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace gclus {

struct DegreeStats {
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double avg_degree = 0.0;
};

[[nodiscard]] DegreeStats degree_stats(const Graph& g);

/// Double sweep: BFS from `start`, then BFS from the farthest node found.
/// Returns the second eccentricity — a lower bound on the diameter that is
/// frequently tight in practice.
[[nodiscard]] Dist double_sweep_lower_bound(const Graph& g, NodeId start = 0);

/// Result of the exact iFUB computation.  Named "Exact..." to keep it
/// unmistakably distinct from core/diameter.hpp's DiameterApprox — the
/// decomposition-based estimate this one provides the ground truth for.
struct ExactDiameterResult {
  Dist diameter = 0;
  std::size_t bfs_runs = 0;  // cost: number of full BFS traversals used
};

/// Exact diameter of a *connected* graph via iFUB.
/// `start` seeds the initial double sweep.
[[nodiscard]] ExactDiameterResult exact_diameter(const Graph& g,
                                                 NodeId start = 0);

/// Eccentricity of every node (n BFS runs — small graphs/tests only).
[[nodiscard]] std::vector<Dist> all_eccentricities(const Graph& g);

}  // namespace gclus
