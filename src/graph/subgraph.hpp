// Induced subgraph extraction with node relabeling.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace gclus {

/// Returns the subgraph induced by `nodes` (must be distinct, in range).
/// Node i of the result corresponds to nodes[i] of `g`.
[[nodiscard]] Graph induced_subgraph(const Graph& g,
                                     const std::vector<NodeId>& nodes);

}  // namespace gclus
