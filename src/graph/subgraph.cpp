#include "graph/subgraph.hpp"

#include "common/check.hpp"
#include "graph/builder.hpp"

namespace gclus {

Graph induced_subgraph(const Graph& g, const std::vector<NodeId>& nodes) {
  std::vector<NodeId> new_id(g.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    GCLUS_CHECK(nodes[i] < g.num_nodes());
    GCLUS_CHECK(new_id[nodes[i]] == kInvalidNode, "duplicate node in subset");
    new_id[nodes[i]] = static_cast<NodeId>(i);
  }
  GraphBuilder b(static_cast<NodeId>(nodes.size()));
  for (const NodeId u : nodes) {
    for (const NodeId v : g.neighbors(u)) {
      if (new_id[v] != kInvalidNode && u < v) {
        b.add_edge(new_id[u], new_id[v]);
      }
    }
  }
  return b.build();
}

}  // namespace gclus
