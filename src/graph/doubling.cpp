#include "graph/doubling.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/bfs.hpp"

namespace gclus {

namespace {

/// BFS truncated at `limit` hops; returns (node, dist) pairs of the ball.
std::vector<std::pair<NodeId, Dist>> bounded_ball(const Graph& g,
                                                  NodeId center, Dist limit) {
  std::vector<std::pair<NodeId, Dist>> ball;
  std::vector<Dist> dist(g.num_nodes(), kInfDist);
  std::vector<NodeId> frontier{center}, next;
  dist[center] = 0;
  ball.emplace_back(center, 0);
  Dist level = 0;
  while (!frontier.empty() && level < limit) {
    ++level;
    next.clear();
    for (const NodeId u : frontier) {
      for (const NodeId v : g.neighbors(u)) {
        if (dist[v] == kInfDist) {
          dist[v] = level;
          ball.emplace_back(v, level);
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return ball;
}

}  // namespace

std::size_t greedy_ball_cover(const Graph& g, NodeId center, Dist radius) {
  GCLUS_CHECK(center < g.num_nodes());
  GCLUS_CHECK(radius >= 1);
  const auto big_ball = bounded_ball(g, center, 2 * radius);

  // Membership mask of the 2R-ball; covered mask filled by R-balls.
  std::vector<char> in_ball(g.num_nodes(), 0);
  std::vector<char> covered(g.num_nodes(), 0);
  for (const auto& [v, d] : big_ball) in_ball[v] = 1;

  std::size_t count = 0;
  // Greedy: sweep members in BFS order; each uncovered member becomes the
  // center of a fresh R-ball (restricted BFS marks coverage).
  std::vector<NodeId> frontier, next;
  for (const auto& [v, d] : big_ball) {
    if (covered[v]) continue;
    ++count;
    covered[v] = 1;
    frontier.assign(1, v);
    Dist level = 0;
    // Cover everything within R of v — including nodes outside the big
    // ball is harmless (covering is only checked for members).
    std::vector<NodeId> touched{v};
    while (!frontier.empty() && level < radius) {
      ++level;
      next.clear();
      for (const NodeId u : frontier) {
        for (const NodeId w : g.neighbors(u)) {
          if (!covered[w]) {
            covered[w] = 1;
            touched.push_back(w);
            next.push_back(w);
          }
        }
      }
      frontier.swap(next);
    }
    // `covered` doubles as the per-ball visited set; nodes outside the
    // big ball must be released so later balls can traverse them afresh.
    for (const NodeId w : touched) {
      if (!in_ball[w]) covered[w] = 0;
    }
  }
  return count;
}

DoublingEstimate estimate_doubling_dimension(const Graph& g,
                                             const DoublingOptions& options) {
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(n >= 1);
  DoublingEstimate out;
  Rng rng(options.seed);

  Dist max_r = options.max_radius;
  if (max_r == 0) {
    // Half the eccentricity of a sampled node bounds useful radii.
    const auto probe = static_cast<NodeId>(rng.next_below(n));
    max_r = std::max<Dist>(1, bfs_extremum(g, probe).eccentricity / 2);
  }

  for (std::size_t s = 0; s < options.center_samples; ++s) {
    const auto center = static_cast<NodeId>(rng.next_below(n));
    for (Dist r = 1; r <= max_r; r *= 2) {
      const std::size_t cover = greedy_ball_cover(g, center, r);
      const double dim =
          std::log2(static_cast<double>(std::max<std::size_t>(1, cover)));
      if (dim > out.dimension) {
        out.dimension = dim;
        out.witness_center = center;
        out.witness_radius = r;
        out.witness_cover_size = cover;
      }
    }
  }
  return out;
}

}  // namespace gclus
