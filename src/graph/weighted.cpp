#include "graph/weighted.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

namespace gclus {

WeightedGraph WeightedGraph::from_edges(
    NodeId num_nodes, std::vector<std::tuple<NodeId, NodeId, Weight>> edges) {
  // Normalize to half-edges with both directions, keep min weight per pair.
  std::vector<std::tuple<NodeId, NodeId, Weight>> halves;
  halves.reserve(edges.size() * 2);
  for (const auto& [u, v, w] : edges) {
    GCLUS_CHECK(u < num_nodes && v < num_nodes);
    if (u == v) continue;
    halves.emplace_back(u, v, w);
    halves.emplace_back(v, u, w);
  }
  std::sort(halves.begin(), halves.end());
  // After sorting, the first occurrence of each (u,v) carries the minimum
  // weight; drop the rest.
  std::vector<std::tuple<NodeId, NodeId, Weight>> dedup;
  dedup.reserve(halves.size());
  for (const auto& h : halves) {
    if (!dedup.empty() && std::get<0>(dedup.back()) == std::get<0>(h) &&
        std::get<1>(dedup.back()) == std::get<1>(h)) {
      continue;
    }
    dedup.push_back(h);
  }

  WeightedGraph g;
  g.offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const auto& [u, v, w] : dedup) g.offsets_[u + 1]++;
  for (NodeId u = 0; u < num_nodes; ++u) g.offsets_[u + 1] += g.offsets_[u];
  g.adj_.resize(dedup.size());
  for (std::size_t i = 0; i < dedup.size(); ++i) {
    g.adj_[i] = {std::get<1>(dedup[i]), std::get<2>(dedup[i])};
  }
  return g;
}

WeightedGraph WeightedGraph::from_csr(std::vector<EdgeId> offsets,
                                      std::vector<WeightedHalfEdge> adj) {
  GCLUS_CHECK(!offsets.empty(), "offsets must have n+1 entries");
  GCLUS_CHECK(offsets.front() == 0);
  GCLUS_CHECK(offsets.back() == adj.size());
  WeightedGraph g;
  g.offsets_ = std::move(offsets);
  g.adj_ = std::move(adj);
  return g;
}

WeightedGraph WeightedGraph::from_unit_weights(const Graph& g) {
  std::vector<std::tuple<NodeId, NodeId, Weight>> edges;
  edges.reserve(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) edges.emplace_back(u, v, Weight{1});
    }
  }
  return from_edges(g.num_nodes(), std::move(edges));
}

std::vector<Weight> dijkstra(const WeightedGraph& g, NodeId source) {
  GCLUS_CHECK(source < g.num_nodes());
  std::vector<Weight> dist(g.num_nodes(), kInfWeight);
  using Item = std::pair<Weight, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[source] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;  // stale entry
    for (const auto& [v, w] : g.neighbors(u)) {
      const Weight nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.emplace(nd, v);
      }
    }
  }
  return dist;
}

Weight weighted_eccentricity(const WeightedGraph& g, NodeId source) {
  const auto dist = dijkstra(g, source);
  Weight ecc = 0;
  for (const Weight d : dist) {
    if (d != kInfWeight) ecc = std::max(ecc, d);
  }
  return ecc;
}

Weight weighted_diameter_exact(const WeightedGraph& g) {
  Weight diam = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    diam = std::max(diam, weighted_eccentricity(g, v));
  }
  return diam;
}

namespace {

/// Linear-scan Dijkstra writing distances directly into `dist` (length n,
/// pre-filled with kInfWeight).  See kApspSmallGraphNodes for why this
/// exists; the settled mask fits a single 64-bit word at that size.
void dijkstra_small_into(const WeightedGraph& g, NodeId source,
                         std::span<Weight> dist) {
  const NodeId n = g.num_nodes();
  std::uint64_t settled = 0;
  dist[source] = 0;
  for (NodeId round = 0; round < n; ++round) {
    NodeId u = n;
    Weight best = kInfWeight;
    for (NodeId v = 0; v < n; ++v) {
      if ((settled & (1ULL << v)) == 0 && dist[v] < best) {
        best = dist[v];
        u = v;
      }
    }
    if (u == n) break;  // only unreachable nodes left
    settled |= 1ULL << u;
    for (const auto& [v, w] : g.neighbors(u)) {
      dist[v] = std::min(dist[v], best + w);
    }
  }
}

}  // namespace

std::vector<Weight> apsp_matrix(const WeightedGraph& g, NodeId max_nodes) {
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(n <= max_nodes,
              "apsp_matrix: quotient graph too large for dense APSP");
  std::vector<Weight> mat(static_cast<std::size_t>(n) * n, kInfWeight);
  for (NodeId v = 0; v < n; ++v) {
    const std::span<Weight> row{mat.data() + static_cast<std::size_t>(v) * n,
                                n};
    if (n <= kApspSmallGraphNodes) {
      dijkstra_small_into(g, v, row);
    } else {
      const auto dist = dijkstra(g, v);
      std::copy(dist.begin(), dist.end(), row.begin());
    }
  }
  return mat;
}

}  // namespace gclus
