// Empirical doubling-dimension estimation.
//
// The paper's round bounds (Lemma 1, Theorem 4) are parameterized by the
// doubling dimension b: the smallest integer such that every ball of
// radius 2R can be covered by 2^b balls of radius R (Definition 2).  The
// experiments run on graphs "of unknown doubling dimension"; this module
// estimates b by sampling (center, R) pairs, materializing the 2R-ball,
// and greedily covering it with R-balls.  Greedy covering is within a
// small factor of optimal, so the estimate is a useful upper bound on
// the effective b — e.g. meshes report ~2–3, road networks ~3, expanders
// and social graphs much larger.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace gclus {

struct DoublingOptions {
  std::size_t center_samples = 6;
  std::uint64_t seed = 1;

  /// Radii tested are powers of two in [1, max_radius]; 0 means "up to
  /// a sampled eccentricity / 2".
  Dist max_radius = 0;
};

struct DoublingEstimate {
  /// max over tested (v, R) of ceil(log2(#covering balls)).
  double dimension = 0.0;

  /// The worst (center, radius) pair observed.
  NodeId witness_center = kInvalidNode;
  Dist witness_radius = 0;
  std::size_t witness_cover_size = 0;
};

/// Estimates the doubling dimension of the connected graph `g`.
[[nodiscard]] DoublingEstimate estimate_doubling_dimension(
    const Graph& g, const DoublingOptions& options = {});

/// Greedy cover count for one ball: the number of R-balls (centered at
/// ball members) a greedy pass needs to cover B(center, 2R).  Exposed for
/// tests.
[[nodiscard]] std::size_t greedy_ball_cover(const Graph& g, NodeId center,
                                            Dist radius);

}  // namespace gclus
