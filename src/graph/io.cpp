#include "graph/io.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/check.hpp"
#include "graph/builder.hpp"

namespace gclus::io {

namespace {
constexpr std::uint64_t kBinaryMagic = 0x67636c7573763101ULL;  // "gclusv1"+1
}

Graph read_edge_list(std::istream& in) {
  std::unordered_map<std::uint64_t, NodeId> compact;
  std::vector<Edge> edges;
  std::string line;
  auto intern = [&](std::uint64_t raw) {
    const auto [it, inserted] =
        compact.emplace(raw, static_cast<NodeId>(compact.size()));
    (void)inserted;
    return it->second;
  };
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) continue;
    edges.emplace_back(intern(u), intern(v));
  }
  GraphBuilder b(static_cast<NodeId>(compact.size()));
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  GCLUS_CHECK(in.good(), "cannot open ", path.c_str());
  return read_edge_list(in);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  GCLUS_CHECK(out.good(), "cannot open ", path.c_str());
  write_edge_list(g, out);
}

void write_binary_file(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GCLUS_CHECK(out.good(), "cannot open ", path.c_str());
  const std::uint64_t n = g.num_nodes();
  const std::uint64_t half_edges = g.num_half_edges();
  out.write(reinterpret_cast<const char*>(&kBinaryMagic), sizeof kBinaryMagic);
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(&half_edges), sizeof half_edges);
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() * sizeof(EdgeId)));
  out.write(
      reinterpret_cast<const char*>(g.neighbor_array().data()),
      static_cast<std::streamsize>(g.neighbor_array().size() * sizeof(NodeId)));
  GCLUS_CHECK(out.good(), "write failed for ", path.c_str());
}

Graph read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GCLUS_CHECK(in.good(), "cannot open ", path.c_str());
  std::uint64_t magic = 0, n = 0, half_edges = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  GCLUS_CHECK(magic == kBinaryMagic, "not a gclus binary graph: ",
              path.c_str());
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  in.read(reinterpret_cast<char*>(&half_edges), sizeof half_edges);
  std::vector<EdgeId> offsets(n + 1);
  std::vector<NodeId> neighbors(half_edges);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(EdgeId)));
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(neighbors.size() * sizeof(NodeId)));
  GCLUS_CHECK(in.good(), "truncated gclus binary graph: ", path.c_str());
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace gclus::io
