#include "graph/io.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define GCLUS_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "common/check.hpp"
#include "common/faultpoint.hpp"
#include "graph/builder.hpp"
#include "graph/wire.hpp"
#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"

namespace gclus::io {

using namespace wire;  // the shared little-endian wire dialect

namespace {

// ---- shared helpers ---------------------------------------------------------

constexpr std::uint64_t kBinaryMagic = 0x67636c7573763101ULL;  // v1: "gclusv1"+1

// Bytes "GCLUSCS2" when stored little-endian.
constexpr std::uint64_t kCsr2Magic = 0x32534353554C4347ULL;
constexpr std::uint32_t kCsr2Version = 2;
constexpr std::uint32_t kCsr2FlagWeights = 1u << 0;
constexpr std::uint32_t kCsr2FlagCompressed = 1u << 1;
constexpr std::uint32_t kCsr2KnownFlags =
    kCsr2FlagWeights | kCsr2FlagCompressed;
constexpr std::uint64_t kCsr2HeaderBytes = 72;
constexpr std::uint64_t kCsr2Align = 64;

// Compressed layout (flags bit 1): offsets_pos points at a 128-byte
// parameter block instead of an offsets array; neighbors_pos and
// weights_pos are zero.  The block records the per-graph encoding choices
// (graph/compressed.hpp) and the positions of the six sections; section
// *sizes* are derived through compressed_section_sizes, so the reader's
// bounds checks cannot drift from the writer.  The header checksum covers
// the parameter block plus every section, in file order.
//
//   offset  size  field
//   0       4     cparams version (1)
//   4       1     first_mode
//   5       1     k_first
//   6       1     k_gap
//   7       1     relabeled (0/1)
//   8       4     degree_bits
//   12      4     local_bits
//   16      8     adj_bytes
//   24      8     degrees_pos
//   32      8     anchors_pos
//   40      8     locals_pos
//   48      8     adj_pos
//   56      8     perm_pos (0 unless relabeled)
//   64      8     inv_pos  (0 unless relabeled)
//   72      56    reserved (zeros)
constexpr std::uint64_t kCz2ParamsBytes = 128;
constexpr std::uint32_t kCz2ParamsVersion = 1;

// ---- file mapping -----------------------------------------------------------

/// A read-only mapping (or, on platforms without mmap, nothing).  Held via
/// shared_ptr as the keepalive of non-owning Graphs; the mapping outlives
/// the file's directory entry, so mapped files may be unlinked or replaced
/// (the dataset cache's atomic-rename refresh) while in use.
class MappedFile {
 public:
  static std::shared_ptr<MappedFile> map(const std::string& path) {
#ifdef GCLUS_HAS_MMAP
    // An injected mmap failure behaves exactly like a real one: callers
    // in kAuto mode fall back to the read() path (byte-identical result),
    // kMmap callers report it.
    if (GCLUS_FAULTPOINT("io.mmap")) return nullptr;
    const int fd =
        GCLUS_FAULTPOINT("io.open") ? -1 : ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return nullptr;
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
      ::close(fd);
      return nullptr;
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps the inode alive
    if (addr == MAP_FAILED) return nullptr;
#ifdef MADV_SEQUENTIAL
    ::madvise(addr, size, MADV_SEQUENTIAL);
#endif
    return std::shared_ptr<MappedFile>(new MappedFile(addr, size));
#else
    (void)path;
    return nullptr;
#endif
  }

  [[nodiscard]] const std::byte* data() const {
    return static_cast<const std::byte*>(addr_);
  }
  [[nodiscard]] std::size_t size() const { return size_; }

  ~MappedFile() {
#ifdef GCLUS_HAS_MMAP
    if (addr_ != nullptr) ::munmap(addr_, size_);
#endif
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

 private:
  MappedFile(void* addr, std::size_t size) : addr_(addr), size_(size) {}

  void* addr_ = nullptr;
  std::size_t size_ = 0;
};

/// Reads a whole file into memory.
StatusOr<std::vector<std::byte>> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (GCLUS_FAULTPOINT("io.open") || !in.good()) {
    return IoError("cannot open file");
  }
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return IoError("cannot stat file: " + ec.message());
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(size));
    if (GCLUS_FAULTPOINT("io.read") || !in.good()) {
      return IoError("read failed");
    }
  }
  return bytes;
}

}  // namespace

// ---- edge-list text ---------------------------------------------------------

Graph read_edge_list(std::istream& in) {
  std::unordered_map<std::uint64_t, NodeId> compact;
  std::vector<Edge> edges;
  std::string line;
  auto intern = [&](std::uint64_t raw) {
    const auto [it, inserted] =
        compact.emplace(raw, static_cast<NodeId>(compact.size()));
    (void)inserted;
    return it->second;
  };
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) continue;
    // Intern in (u, v) order through named locals: function-argument
    // evaluation order is unspecified, and the id numbering must not be.
    const NodeId a = intern(u);
    const NodeId b = intern(v);
    edges.emplace_back(a, b);
  }
  GraphBuilder b(static_cast<NodeId>(compact.size()));
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

namespace {

struct RawEdge {
  std::uint64_t u = 0;
  std::uint64_t v = 0;
};

/// strtoull-compatible token parse (the semantics of `istream >> uint64`):
/// optional sign ('-' wraps modulo 2^64), decimal digits, failure on
/// overflow or no digits.  Advances `p` past the token on success.
bool parse_u64_token(const char*& p, const char* end, std::uint64_t& out) {
  while (p < end && (*p == ' ' || *p == '\t' || *p == '\r' || *p == '\v' ||
                     *p == '\f')) {
    ++p;
  }
  bool negate = false;
  if (p < end && (*p == '+' || *p == '-')) {
    negate = *p == '-';
    ++p;
  }
  if (p >= end || *p < '0' || *p > '9') return false;
  std::uint64_t value = 0;
  bool overflow = false;
  while (p < end && *p >= '0' && *p <= '9') {
    const unsigned digit = static_cast<unsigned>(*p - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      overflow = true;
    }
    value = value * 10 + digit;
    ++p;
  }
  if (overflow) return false;
  out = negate ? std::uint64_t{0} - value : value;
  return true;
}

/// One line in [p, end): blank and '#'/'%' comment lines are skipped, as
/// are lines without two parseable integers — exactly the serial parser's
/// per-line behavior.
void parse_line(const char* p, const char* end, std::vector<RawEdge>& out) {
  if (p >= end) return;
  if (*p == '#' || *p == '%') return;
  RawEdge e;
  if (!parse_u64_token(p, end, e.u)) return;
  if (!parse_u64_token(p, end, e.v)) return;
  out.push_back(e);
}

/// Parses every line whose first byte lies in [lo, hi).  Chunk boundaries
/// are line starts, so no line crosses chunks.
void parse_chunk(std::string_view text, std::size_t lo, std::size_t hi,
                 std::vector<RawEdge>& out) {
  const char* base = text.data();
  std::size_t p = lo;
  while (p < hi) {
    const void* nl = std::memchr(base + p, '\n', text.size() - p);
    const std::size_t line_end =
        nl != nullptr ? static_cast<std::size_t>(static_cast<const char*>(nl) -
                                                 base)
                      : text.size();
    parse_line(base + p, base + line_end, out);
    p = line_end + 1;
  }
}

// Chunking is a fixed byte grain, *not* a function of the thread count:
// the chunk decomposition (and therefore the merged, file-ordered edge
// list) is identical on 1, 2, or 64 threads.
constexpr std::size_t kParseChunkBytes = std::size_t{1} << 20;

}  // namespace

Graph parse_edge_list(std::string_view text, ThreadPool& pool) {
  const std::size_t nbytes = text.size();
  const std::size_t num_chunks =
      std::max<std::size_t>(1, (nbytes + kParseChunkBytes - 1) /
                                   kParseChunkBytes);

  // Chunk i starts at the first line start at or after i*kParseChunkBytes
  // (a line start is position 0 or any position preceded by '\n').
  std::vector<std::size_t> start(num_chunks + 1);
  start[0] = 0;
  start[num_chunks] = nbytes;
  for (std::size_t i = 1; i < num_chunks; ++i) {
    const std::size_t b = i * kParseChunkBytes;
    if (text[b - 1] == '\n') {
      start[i] = b;
    } else {
      const std::size_t nl = text.find('\n', b);
      start[i] = nl == std::string_view::npos ? nbytes : nl + 1;
    }
  }

  std::vector<std::vector<RawEdge>> parts(num_chunks);
  parallel_for(
      pool, 0, num_chunks,
      [&](std::size_t i) { parse_chunk(text, start[i], start[i + 1], parts[i]); },
      /*grain=*/1);

  // Merge in chunk (= file) order via the prefix-sum concat, then intern
  // ids serially in first-appearance order — the same numbering the serial
  // parser produces.
  std::vector<RawEdge> raw;
  parallel_concat(pool, parts, raw);
  parts.clear();
  parts.shrink_to_fit();

  std::vector<Edge> edges(raw.size());
  NodeId next = 0;
  if (!raw.empty()) {
    const std::uint64_t max_id = parallel_reduce(
        pool, 0, raw.size(), std::uint64_t{0},
        [&](std::size_t i) { return std::max(raw[i].u, raw[i].v); },
        [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); });
    const std::uint64_t dense_limit =
        std::max<std::uint64_t>(std::uint64_t{1} << 16, 4 * raw.size());
    if (max_id < dense_limit) {
      // Dense ids (the common case for generated/preprocessed lists): a
      // flat table beats hashing by an order of magnitude.
      std::vector<NodeId> table(static_cast<std::size_t>(max_id) + 1,
                                kInvalidNode);
      auto intern = [&](std::uint64_t id) {
        NodeId& slot = table[static_cast<std::size_t>(id)];
        if (slot == kInvalidNode) slot = next++;
        return slot;
      };
      for (std::size_t i = 0; i < raw.size(); ++i) {
        edges[i] = {intern(raw[i].u), intern(raw[i].v)};
      }
    } else {
      std::unordered_map<std::uint64_t, NodeId> compact;
      compact.reserve(2 * raw.size());
      auto intern = [&](std::uint64_t id) {
        const auto [it, inserted] = compact.emplace(id, next);
        if (inserted) ++next;
        return it->second;
      };
      for (std::size_t i = 0; i < raw.size(); ++i) {
        edges[i] = {intern(raw[i].u), intern(raw[i].v)};
      }
    }
  }
  raw.clear();
  raw.shrink_to_fit();

  GraphBuilder b(next);
  b.adopt_edges(std::move(edges));
  return b.build(pool);
}

StatusOr<Graph> load_edge_list(const std::string& path, ThreadPool& pool) {
  if (const auto mapped = MappedFile::map(path)) {
    const std::string_view text(reinterpret_cast<const char*>(mapped->data()),
                                mapped->size());
    return parse_edge_list(text, pool);
  }
  // No mmap (unsupported platform, injected "io.mmap" fault, or an
  // empty/special file): slurp.  Byte-identical to the mapped path.
  std::ifstream in(path, std::ios::binary);
  if (GCLUS_FAULTPOINT("io.open") || !in.good()) {
    return IoError("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (GCLUS_FAULTPOINT("io.read") || in.bad()) {
    return IoError("read failed: " + path);
  }
  const std::string text = std::move(buf).str();
  return parse_edge_list(text, pool);
}

StatusOr<Graph> load_edge_list(const std::string& path) {
  return load_edge_list(path, ThreadPool::global());
}

Graph read_edge_list_file(const std::string& path, ThreadPool& pool) {
  auto loaded = load_edge_list(path, pool);
  GCLUS_CHECK(loaded.ok(), loaded.status().to_string());
  return std::move(loaded).value();
}

Graph read_edge_list_file(const std::string& path) {
  return read_edge_list_file(path, ThreadPool::global());
}

void write_edge_list(const Graph& g, std::ostream& out) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  GCLUS_CHECK(out.good(), "cannot open ", path.c_str());
  write_edge_list(g, out);
}

// ---- CSR v1 binary (legacy) -------------------------------------------------

void write_binary_file(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GCLUS_CHECK(out.good(), "cannot open ", path.c_str());
  const std::uint64_t n = g.num_nodes();
  const std::uint64_t half_edges = g.num_half_edges();
  out.write(reinterpret_cast<const char*>(&kBinaryMagic), sizeof kBinaryMagic);
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(&half_edges), sizeof half_edges);
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() * sizeof(EdgeId)));
  out.write(
      reinterpret_cast<const char*>(g.neighbor_array().data()),
      static_cast<std::streamsize>(g.neighbor_array().size() * sizeof(NodeId)));
  GCLUS_CHECK(out.good(), "write failed for ", path.c_str());
}

Graph read_binary_file(const std::string& path) {
  std::error_code ec;
  const std::uint64_t file_bytes = std::filesystem::file_size(path, ec);
  std::ifstream in(path, std::ios::binary);
  GCLUS_CHECK(!ec && in.good(), "cannot open ", path.c_str());
  GCLUS_CHECK(file_bytes >= sizeof kBinaryMagic,
              "not a gclus binary graph: ", path.c_str());
  std::uint64_t magic = 0, n = 0, half_edges = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  GCLUS_CHECK(magic == kBinaryMagic, "not a gclus binary graph: ",
              path.c_str());
  // Validate the header against the file size *before* trusting it for
  // allocation sizes — a truncated or corrupted dump must fail cleanly,
  // not read garbage into CSR arrays.
  GCLUS_CHECK(file_bytes >= 24, "truncated gclus binary graph: ",
              path.c_str());
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  in.read(reinterpret_cast<char*>(&half_edges), sizeof half_edges);
  GCLUS_CHECK(n <= std::numeric_limits<NodeId>::max(),
              "corrupt gclus binary graph (node count ", n, "): ",
              path.c_str());
  GCLUS_CHECK(half_edges <= file_bytes / sizeof(NodeId),
              "truncated gclus binary graph: ", path.c_str());
  const std::uint64_t expected =
      24 + (n + 1) * sizeof(EdgeId) + half_edges * sizeof(NodeId);
  GCLUS_CHECK(file_bytes == expected, "truncated gclus binary graph: ",
              path.c_str(), " (expected ", expected, " bytes, found ",
              file_bytes, ")");
  std::vector<EdgeId> offsets(n + 1);
  std::vector<NodeId> neighbors(half_edges);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(EdgeId)));
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(neighbors.size() * sizeof(NodeId)));
  GCLUS_CHECK(in.good(), "truncated gclus binary graph: ", path.c_str());
  return Graph(std::move(offsets), std::move(neighbors));
}

// ---- CSR v2 binary ----------------------------------------------------------

namespace {

struct Csr2Header {
  std::uint32_t flags = 0;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_half_edges = 0;
  std::uint64_t offsets_pos = 0;
  std::uint64_t neighbors_pos = 0;
  std::uint64_t weights_pos = 0;
  std::uint64_t checksum = 0;
};

/// Core writer shared by the weighted and unweighted entry points.
/// `weighted` is explicit (not inferred from the span, whose data pointer
/// is null for edgeless graphs).  kIoError on any write failure; the
/// public write_csr_file wrappers turn that into a GCLUS_CHECK abort, the
/// best-effort consumers (try_write_csr_file, the dataset cache) don't.
[[nodiscard]] Status write_csr2(const std::string& path,
                                std::span<const EdgeId> offsets,
                                std::span<const NodeId> neighbors,
                                bool weighted,
                                std::span<const Weight> weights) {
  Csr2Header h;
  h.num_nodes = offsets.size() - 1;
  h.num_half_edges = neighbors.size();
  h.offsets_pos = align_up(kCsr2HeaderBytes, kCsr2Align);
  h.neighbors_pos =
      align_up(h.offsets_pos + offsets.size() * sizeof(EdgeId), kCsr2Align);
  const std::uint64_t neighbors_end =
      h.neighbors_pos + neighbors.size() * sizeof(NodeId);
  if (weighted) {
    h.flags |= kCsr2FlagWeights;
    h.weights_pos = align_up(neighbors_end, kCsr2Align);
  }

  h.checksum = fnv1a_array_le(kFnvOffsetBasis, offsets.data(), offsets.size());
  h.checksum = fnv1a_array_le(h.checksum, neighbors.data(), neighbors.size());
  if (weighted) {
    h.checksum = fnv1a_array_le(h.checksum, weights.data(), weights.size());
  }

  std::ofstream out(path, std::ios::binary);
  if (GCLUS_FAULTPOINT("io.write") || !out.good()) {
    return IoError("cannot open for writing: " + path);
  }
  put_le(out, kCsr2Magic);
  put_le(out, kCsr2Version);
  put_le(out, h.flags);
  put_le(out, h.num_nodes);
  put_le(out, h.num_half_edges);
  put_le(out, h.offsets_pos);
  put_le(out, h.neighbors_pos);
  put_le(out, h.weights_pos);
  put_le(out, h.checksum);
  put_le(out, std::uint64_t{0});  // reserved
  write_zeros(out, h.offsets_pos - kCsr2HeaderBytes);
  write_array_le(out, offsets.data(), offsets.size());
  write_zeros(out, h.neighbors_pos -
                       (h.offsets_pos + offsets.size() * sizeof(EdgeId)));
  write_array_le(out, neighbors.data(), neighbors.size());
  if (weighted) {
    write_zeros(out, h.weights_pos - neighbors_end);
    write_array_le(out, weights.data(), weights.size());
  }
  if (!out.good()) {
    // ofstream hides errno, so disk-full vs hard error is not
    // distinguishable here; both are terminal for this write.
    return IoError("write failed (disk full or I/O error): " + path);
  }
  return OkStatus();
}

/// Parses and sanity-checks a CSR v2 header against the buffer size.
/// kInvalidArgument: the bytes don't claim to be a (supported) CSR v2
/// file; kDataLoss: they do, but the structure is inconsistent.
Status parse_csr2_header(const std::byte* data, std::uint64_t size,
                         Csr2Header& h) {
  if (size < 8 || read_le_at<std::uint64_t>(data) != kCsr2Magic) {
    return InvalidArgumentError("not a gclus CSR v2 file (bad magic)");
  }
  if (size < kCsr2HeaderBytes) {
    return DataLossError("file shorter than a CSR v2 header");
  }
  if (read_le_at<std::uint32_t>(data + 8) != kCsr2Version) {
    return InvalidArgumentError("unsupported CSR version");
  }
  h.flags = read_le_at<std::uint32_t>(data + 12);
  if ((h.flags & ~kCsr2KnownFlags) != 0) {
    return InvalidArgumentError("unknown CSR v2 flags");
  }
  h.num_nodes = read_le_at<std::uint64_t>(data + 16);
  h.num_half_edges = read_le_at<std::uint64_t>(data + 24);
  h.offsets_pos = read_le_at<std::uint64_t>(data + 32);
  h.neighbors_pos = read_le_at<std::uint64_t>(data + 40);
  h.weights_pos = read_le_at<std::uint64_t>(data + 48);
  h.checksum = read_le_at<std::uint64_t>(data + 56);
  if (read_le_at<std::uint64_t>(data + 64) != 0) {
    // The reserved field is not covered by the payload checksum, so a
    // flipped bit here would otherwise load silently.
    return InvalidArgumentError("nonzero reserved header field");
  }

  if (h.num_nodes > std::numeric_limits<NodeId>::max()) {
    return DataLossError("node count exceeds NodeId range");
  }
  if ((h.flags & kCsr2FlagCompressed) != 0) {
    // Compressed layout: offsets_pos locates the parameter block, the
    // other section pointers are unused.  Section bounds are validated by
    // parse_cz2 against the sizes the parameters imply.
    if ((h.flags & kCsr2FlagWeights) != 0) {
      return InvalidArgumentError("compressed CSR v2 files cannot carry "
                                  "weights");
    }
    if (h.neighbors_pos != 0 || h.weights_pos != 0) {
      return DataLossError("compressed CSR v2 header has stray section "
                           "positions");
    }
    if (h.offsets_pos < kCsr2HeaderBytes || h.offsets_pos % kCsr2Align != 0 ||
        h.offsets_pos > size || kCz2ParamsBytes > size - h.offsets_pos) {
      return DataLossError("truncated CSR v2 file (compressed parameter "
                           "block out of bounds)");
    }
    return OkStatus();
  }
  // Section bounds, written to be overflow-safe: divide before multiply.
  const std::uint64_t num_offsets = h.num_nodes + 1;
  if (h.offsets_pos < kCsr2HeaderBytes || h.offsets_pos % kCsr2Align != 0 ||
      h.offsets_pos > size || num_offsets > (size - h.offsets_pos) / 8) {
    return DataLossError("truncated CSR v2 file (offsets section out of "
                         "bounds)");
  }
  if (h.neighbors_pos < h.offsets_pos + num_offsets * 8 ||
      h.neighbors_pos % kCsr2Align != 0 || h.neighbors_pos > size ||
      h.num_half_edges > (size - h.neighbors_pos) / 4) {
    return DataLossError("truncated CSR v2 file (neighbors section out of "
                         "bounds)");
  }
  if ((h.flags & kCsr2FlagWeights) != 0) {
    if (h.weights_pos < h.neighbors_pos + h.num_half_edges * 4 ||
        h.weights_pos % kCsr2Align != 0 || h.weights_pos > size ||
        h.num_half_edges > (size - h.weights_pos) / 8) {
      return DataLossError("truncated CSR v2 file (weights section out of "
                           "bounds)");
    }
  } else if (h.weights_pos != 0) {
    return DataLossError("weights position set without the weights flag");
  }
  return OkStatus();
}

/// Structural validation of decoded arrays: offsets monotone from 0 to m,
/// every neighbor id in range.  Guards algorithms against out-of-bounds
/// indexing on corrupted (but checksum-consistent, e.g. maliciously
/// crafted) files.
Status validate_csr_arrays(std::span<const EdgeId> offsets,
                           std::span<const NodeId> neighbors) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != neighbors.size()) {
    return DataLossError("corrupt CSR v2 payload (offset endpoints)");
  }
  for (std::size_t u = 1; u < offsets.size(); ++u) {
    if (offsets[u] < offsets[u - 1]) {
      return DataLossError("corrupt CSR v2 payload (offsets not monotone)");
    }
  }
  const auto n = static_cast<NodeId>(offsets.size() - 1);
  for (const NodeId v : neighbors) {
    if (v >= n) {
      return DataLossError("corrupt CSR v2 payload (neighbor id out of "
                           "range)");
    }
  }
  return OkStatus();
}

struct LoadedCsr2 {
  Csr2Header header;
  // Exactly one of these is populated: mapped spans (+ the mapping) or
  // owned vectors.
  std::span<const EdgeId> offsets;
  std::span<const NodeId> neighbors;
  std::span<const Weight> weights;
  std::shared_ptr<MappedFile> mapping;
  std::vector<EdgeId> owned_offsets;
  std::vector<NodeId> owned_neighbors;
  std::vector<Weight> owned_weights;
};

/// Loads + validates a CSR v2 file into spans (mapped) or vectors
/// (copied).
Status load_csr2(const std::string& path, const CsrLoadOptions& opts,
                 LoadedCsr2& out) {
  // mmap zero-copy requires a little-endian host (the arrays are used in
  // place); BE hosts decode through the copy path.
  const bool can_mmap = mmap_supported() && kLittleEndian;
  bool use_mmap = false;
  switch (opts.mode) {
    case CsrLoadMode::kAuto:
      use_mmap = can_mmap;
      break;
    case CsrLoadMode::kMmap:
      if (!can_mmap) {
        return InvalidArgumentError(
            "mmap loading not supported on this platform");
      }
      use_mmap = true;
      break;
    case CsrLoadMode::kCopy:
      break;
  }

  const std::byte* data = nullptr;
  std::uint64_t size = 0;
  std::vector<std::byte> bytes;
  if (use_mmap) {
    out.mapping = MappedFile::map(path);
    if (out.mapping == nullptr) {
      if (opts.mode == CsrLoadMode::kMmap) return IoError("cannot mmap file");
      use_mmap = false;  // fall back to read()
    } else {
      data = out.mapping->data();
      size = out.mapping->size();
    }
  }
  if (!use_mmap) {
    GCLUS_ASSIGN_OR_RETURN(bytes, read_file_bytes(path));
    data = bytes.data();
    size = bytes.size();
  }

  Csr2Header& h = out.header;
  GCLUS_RETURN_IF_ERROR(parse_csr2_header(data, size, h));
  if ((h.flags & kCsr2FlagCompressed) != 0) {
    return InvalidArgumentError(
        "compressed CSR v2 file (use load_compressed_csr)");
  }
  const bool weighted = (h.flags & kCsr2FlagWeights) != 0;
  const std::uint64_t num_offsets = h.num_nodes + 1;

  if (opts.verify) {
    std::uint64_t sum = fnv1a(kFnvOffsetBasis, data + h.offsets_pos,
                              static_cast<std::size_t>(num_offsets) * 8);
    sum = fnv1a(sum, data + h.neighbors_pos,
                static_cast<std::size_t>(h.num_half_edges) * 4);
    if (weighted) {
      sum = fnv1a(sum, data + h.weights_pos,
                  static_cast<std::size_t>(h.num_half_edges) * 8);
    }
    if (sum != h.checksum) return DataLossError("CSR v2 checksum mismatch");
  }

  if (use_mmap) {
    out.offsets = {reinterpret_cast<const EdgeId*>(data + h.offsets_pos),
                   static_cast<std::size_t>(num_offsets)};
    out.neighbors = {reinterpret_cast<const NodeId*>(data + h.neighbors_pos),
                     static_cast<std::size_t>(h.num_half_edges)};
    if (weighted) {
      out.weights = {reinterpret_cast<const Weight*>(data + h.weights_pos),
                     static_cast<std::size_t>(h.num_half_edges)};
    }
  } else {
    out.owned_offsets =
        decode_array_le<EdgeId>(data + h.offsets_pos, num_offsets);
    out.owned_neighbors =
        decode_array_le<NodeId>(data + h.neighbors_pos, h.num_half_edges);
    if (weighted) {
      out.owned_weights =
          decode_array_le<Weight>(data + h.weights_pos, h.num_half_edges);
    }
    out.offsets = out.owned_offsets;
    out.neighbors = out.owned_neighbors;
    out.weights = out.owned_weights;
    out.mapping = nullptr;
  }

  if (opts.verify) {
    GCLUS_RETURN_IF_ERROR(validate_csr_arrays(out.offsets, out.neighbors));
  }
  return OkStatus();
}

// ---- CSR v2 compressed layout ----------------------------------------------

/// Parsed parameter block of a compressed file: encoding parameters plus
/// the absolute byte position of every section.
struct Cz2Layout {
  CompressedParams params;
  CompressedSectionSizes sizes;
  std::uint64_t degrees_pos = 0;
  std::uint64_t anchors_pos = 0;
  std::uint64_t locals_pos = 0;
  std::uint64_t adj_pos = 0;
  std::uint64_t perm_pos = 0;
  std::uint64_t inv_pos = 0;
};

/// Validates one section position against the file size.  `pos == 0` with
/// `bytes == 0` marks an absent section (perm/inv when not relabeled).
bool cz2_section_in_bounds(std::uint64_t pos, std::uint64_t bytes,
                           std::uint64_t file_size, std::uint64_t min_pos) {
  if (bytes == 0 && pos == 0) return true;
  return pos >= min_pos && pos % kCsr2Align == 0 && pos <= file_size &&
         bytes <= file_size - pos;
}

Status parse_cz2(const std::byte* data, std::uint64_t size,
                 const Csr2Header& h, Cz2Layout& lay) {
  const std::byte* b = data + h.offsets_pos;
  if (read_le_at<std::uint32_t>(b) != kCz2ParamsVersion) {
    return InvalidArgumentError("unsupported compressed CSR parameter "
                                "version");
  }
  CompressedParams& p = lay.params;
  p.num_nodes = h.num_nodes;
  p.num_half_edges = h.num_half_edges;
  p.first_mode = static_cast<std::uint8_t>(b[4]);
  p.k_first = static_cast<std::uint8_t>(b[5]);
  p.k_gap = static_cast<std::uint8_t>(b[6]);
  p.relabeled = static_cast<std::uint8_t>(b[7]) != 0;
  p.degree_bits = read_le_at<std::uint32_t>(b + 8);
  p.local_bits = read_le_at<std::uint32_t>(b + 12);
  p.adj_bytes = read_le_at<std::uint64_t>(b + 16);
  lay.degrees_pos = read_le_at<std::uint64_t>(b + 24);
  lay.anchors_pos = read_le_at<std::uint64_t>(b + 32);
  lay.locals_pos = read_le_at<std::uint64_t>(b + 40);
  lay.adj_pos = read_le_at<std::uint64_t>(b + 48);
  lay.perm_pos = read_le_at<std::uint64_t>(b + 56);
  lay.inv_pos = read_le_at<std::uint64_t>(b + 64);
  for (std::uint64_t i = 72; i < kCz2ParamsBytes; ++i) {
    if (b[i] != std::byte{0}) {
      return DataLossError("nonzero reserved compressed parameter field");
    }
  }
  if (static_cast<std::uint8_t>(b[7]) > 1 || p.first_mode > 1 ||
      p.k_first > cz::kMaxK || p.k_gap > cz::kMaxK || p.degree_bits > 32 ||
      p.local_bits > 56 || p.adj_bytes > size) {
    return DataLossError("compressed CSR parameters out of range");
  }
  lay.sizes = compressed_section_sizes(p);
  const std::uint64_t min_pos = h.offsets_pos + kCz2ParamsBytes;
  if (!cz2_section_in_bounds(lay.degrees_pos, lay.sizes.degrees, size,
                             min_pos) ||
      !cz2_section_in_bounds(lay.anchors_pos, lay.sizes.anchors, size,
                             min_pos) ||
      !cz2_section_in_bounds(lay.locals_pos, lay.sizes.locals, size,
                             min_pos) ||
      !cz2_section_in_bounds(lay.adj_pos, lay.sizes.adj, size, min_pos) ||
      !cz2_section_in_bounds(lay.perm_pos, lay.sizes.perm, size, min_pos) ||
      !cz2_section_in_bounds(lay.inv_pos, lay.sizes.inv, size, min_pos)) {
    return DataLossError("truncated CSR v2 file (compressed section out of "
                         "bounds)");
  }
  if (p.relabeled != (lay.perm_pos != 0) || p.relabeled != (lay.inv_pos != 0)) {
    return DataLossError("compressed CSR relabeling sections inconsistent "
                         "with the relabeled flag");
  }
  return OkStatus();
}

/// Serializes the parameter block into a 128-byte buffer (for writing and
/// for checksum computation).
void store_cz2_params(const Cz2Layout& lay, std::byte* out) {
  std::memset(out, 0, kCz2ParamsBytes);
  const CompressedParams& p = lay.params;
  store_le_at(out, kCz2ParamsVersion);
  out[4] = static_cast<std::byte>(p.first_mode);
  out[5] = static_cast<std::byte>(p.k_first);
  out[6] = static_cast<std::byte>(p.k_gap);
  out[7] = static_cast<std::byte>(p.relabeled ? 1 : 0);
  store_le_at(out + 8, p.degree_bits);
  store_le_at(out + 12, p.local_bits);
  store_le_at(out + 16, p.adj_bytes);
  store_le_at(out + 24, lay.degrees_pos);
  store_le_at(out + 32, lay.anchors_pos);
  store_le_at(out + 40, lay.locals_pos);
  store_le_at(out + 48, lay.adj_pos);
  store_le_at(out + 56, lay.perm_pos);
  store_le_at(out + 64, lay.inv_pos);
}

}  // namespace

bool mmap_supported() {
#ifdef GCLUS_HAS_MMAP
  return true;
#else
  return false;
#endif
}

StatusOr<FileContents> read_or_map_file(const std::string& path,
                                        bool prefer_mmap) {
  if (prefer_mmap && mmap_supported()) {
    if (auto mapping = MappedFile::map(path)) {
      FileContents fc;
      fc.bytes = {mapping->data(), mapping->size()};
      fc.mapped = true;
      fc.keepalive = std::move(mapping);
      return fc;
    }
    // Fall through to the read() path — the kAuto degradation.
  }
  std::vector<std::byte> bytes;
  GCLUS_ASSIGN_OR_RETURN(bytes, read_file_bytes(path));
  auto owned = std::make_shared<std::vector<std::byte>>(std::move(bytes));
  FileContents fc;
  fc.bytes = {owned->data(), owned->size()};
  fc.keepalive = std::move(owned);
  return fc;
}

Status write_csr(const Graph& g, const std::string& path) {
  return write_csr2(path, g.offsets(), g.neighbor_array(),
                    /*weighted=*/false, {});
}

Status write_csr(const WeightedGraph& g, const std::string& path) {
  // Split the interleaved adjacency into the on-disk section pair.
  const auto adj = g.adjacency();
  std::vector<NodeId> neighbors(adj.size());
  std::vector<Weight> weights(adj.size());
  for (std::size_t i = 0; i < adj.size(); ++i) {
    neighbors[i] = adj[i].to;
    weights[i] = adj[i].w;
  }
  return write_csr2(path, g.offsets(), neighbors, /*weighted=*/true, weights);
}

Status write_csr(const CompressedGraph& g, const std::string& path) {
  Cz2Layout lay;
  lay.params = g.params();
  lay.sizes = compressed_section_sizes(lay.params);
  GCLUS_CHECK(lay.sizes.degrees == g.degrees_section().size() &&
                  lay.sizes.anchors == g.anchors_section().size() &&
                  lay.sizes.locals == g.locals_section().size() &&
                  lay.sizes.adj == g.adj_section().size() &&
                  lay.sizes.perm == g.perm_section().size() &&
                  lay.sizes.inv == g.inv_section().size(),
              "compressed graph sections inconsistent with parameters");
  const std::uint64_t params_pos = align_up(kCsr2HeaderBytes, kCsr2Align);
  std::uint64_t pos = align_up(params_pos + kCz2ParamsBytes, kCsr2Align);
  auto place = [&](std::uint64_t bytes) {
    const std::uint64_t at = pos;
    pos = align_up(pos + bytes, kCsr2Align);
    return at;
  };
  lay.degrees_pos = place(lay.sizes.degrees);
  lay.anchors_pos = place(lay.sizes.anchors);
  lay.locals_pos = place(lay.sizes.locals);
  lay.adj_pos = place(lay.sizes.adj);
  lay.perm_pos = lay.params.relabeled ? place(lay.sizes.perm) : 0;
  lay.inv_pos = lay.params.relabeled ? place(lay.sizes.inv) : 0;

  std::byte params_block[kCz2ParamsBytes];
  store_cz2_params(lay, params_block);
  std::uint64_t checksum =
      fnv1a(kFnvOffsetBasis, params_block, kCz2ParamsBytes);
  for (const auto section :
       {g.degrees_section(), g.anchors_section(), g.locals_section(),
        g.adj_section(), g.perm_section(), g.inv_section()}) {
    checksum = fnv1a(checksum, section.data(), section.size());
  }

  std::ofstream out(path, std::ios::binary);
  if (GCLUS_FAULTPOINT("io.write") || !out.good()) {
    return IoError("cannot open for writing: " + path);
  }
  put_le(out, kCsr2Magic);
  put_le(out, kCsr2Version);
  put_le(out, kCsr2FlagCompressed);
  put_le(out, lay.params.num_nodes);
  put_le(out, lay.params.num_half_edges);
  put_le(out, params_pos);
  put_le(out, std::uint64_t{0});  // neighbors_pos (unused)
  put_le(out, std::uint64_t{0});  // weights_pos (unused)
  put_le(out, checksum);
  put_le(out, std::uint64_t{0});  // reserved
  write_zeros(out, params_pos - kCsr2HeaderBytes);
  out.write(reinterpret_cast<const char*>(params_block), kCz2ParamsBytes);
  std::uint64_t written = params_pos + kCz2ParamsBytes;
  auto emit = [&](std::uint64_t at, std::span<const std::byte> bytes) {
    if (bytes.empty()) return;
    write_zeros(out, at - written);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    written = at + bytes.size();
  };
  emit(lay.degrees_pos, g.degrees_section());
  emit(lay.anchors_pos, g.anchors_section());
  emit(lay.locals_pos, g.locals_section());
  emit(lay.adj_pos, g.adj_section());
  emit(lay.perm_pos, g.perm_section());
  emit(lay.inv_pos, g.inv_section());
  if (!out.good()) {
    return IoError("write failed (disk full or I/O error): " + path);
  }
  return OkStatus();
}

StatusOr<CompressedGraph> load_compressed_csr(const std::string& path,
                                              const CsrLoadOptions& opts) {
  // The compressed sections are defined as byte sequences (LSB-first
  // bitstreams, explicit little-endian fields), so zero-copy mapping is
  // endian-independent — unlike the plain layout, kMmap works everywhere
  // mmap exists.
  bool use_mmap = false;
  switch (opts.mode) {
    case CsrLoadMode::kAuto:
      use_mmap = mmap_supported();
      break;
    case CsrLoadMode::kMmap:
      if (!mmap_supported()) {
        return InvalidArgumentError(
            path + ": mmap loading not supported on this platform");
      }
      use_mmap = true;
      break;
    case CsrLoadMode::kCopy:
      break;
  }

  const std::byte* data = nullptr;
  std::uint64_t size = 0;
  std::shared_ptr<const void> keepalive;
  if (use_mmap) {
    if (auto mapping = MappedFile::map(path)) {
      data = mapping->data();
      size = mapping->size();
      keepalive = std::move(mapping);
    } else if (opts.mode == CsrLoadMode::kMmap) {
      return IoError(path + ": cannot mmap file");
    } else {
      use_mmap = false;  // fall back to read()
    }
  }
  if (!use_mmap) {
    auto bytes = read_file_bytes(path);
    if (!bytes.ok()) return Status(bytes.status()).with_context(path);
    auto owned =
        std::make_shared<std::vector<std::byte>>(std::move(bytes).value());
    data = owned->data();
    size = owned->size();
    keepalive = std::move(owned);
  }

  Csr2Header h;
  GCLUS_RETURN_IF_ERROR(parse_csr2_header(data, size, h).with_context(path));
  if ((h.flags & kCsr2FlagWeights) != 0) {
    return InvalidArgumentError(
        path + ": weighted CSR v2 file (use load_weighted_csr)");
  }
  if ((h.flags & kCsr2FlagCompressed) == 0) {
    return InvalidArgumentError(path + ": plain CSR v2 file (use load_csr)");
  }
  Cz2Layout lay;
  GCLUS_RETURN_IF_ERROR(parse_cz2(data, size, h, lay).with_context(path));

  if (opts.verify) {
    std::uint64_t sum =
        fnv1a(kFnvOffsetBasis, data + h.offsets_pos, kCz2ParamsBytes);
    const std::pair<std::uint64_t, std::uint64_t> sections[] = {
        {lay.degrees_pos, lay.sizes.degrees},
        {lay.anchors_pos, lay.sizes.anchors},
        {lay.locals_pos, lay.sizes.locals},
        {lay.adj_pos, lay.sizes.adj},
        {lay.perm_pos, lay.sizes.perm},
        {lay.inv_pos, lay.sizes.inv},
    };
    for (const auto& [at, bytes] : sections) {
      sum = fnv1a(sum, data + at, static_cast<std::size_t>(bytes));
    }
    if (sum != h.checksum) {
      return DataLossError(path + ": CSR v2 checksum mismatch");
    }
  }

  auto section = [&](std::uint64_t at,
                     std::uint64_t bytes) -> std::span<const std::byte> {
    return {data + at, static_cast<std::size_t>(bytes)};
  };
  CompressedGraph cg(lay.params, section(lay.degrees_pos, lay.sizes.degrees),
                     section(lay.anchors_pos, lay.sizes.anchors),
                     section(lay.locals_pos, lay.sizes.locals),
                     section(lay.adj_pos, lay.sizes.adj),
                     section(lay.perm_pos, lay.sizes.perm),
                     section(lay.inv_pos, lay.sizes.inv),
                     std::move(keepalive));
  if (opts.verify) {
    GCLUS_RETURN_IF_ERROR(
        validate_compressed_structure(cg, ThreadPool::global())
            .with_context(path));
  }
  return cg;
}

StatusOr<Graph> load_csr(const std::string& path, const CsrLoadOptions& opts) {
  // Sniff the flags word: compressed files route through the compressed
  // loader and materialize, so plain-CSR consumers accept either layout.
  {
    std::ifstream in(path, std::ios::binary);
    std::byte head[16];
    if (in.good()) {
      in.read(reinterpret_cast<char*>(head), sizeof head);
      if (in.good() && read_le_at<std::uint64_t>(head) == kCsr2Magic &&
          (read_le_at<std::uint32_t>(head + 12) & kCsr2FlagCompressed) != 0) {
        auto cg = load_compressed_csr(path, opts);
        if (!cg.ok()) return cg.status();
        return cg.value().decompress();
      }
    }
  }
  LoadedCsr2 loaded;
  GCLUS_RETURN_IF_ERROR(load_csr2(path, opts, loaded).with_context(path));
  if ((loaded.header.flags & kCsr2FlagWeights) != 0) {
    return InvalidArgumentError(
        path + ": weighted CSR v2 file (use load_weighted_csr_file)");
  }
  if (loaded.mapping != nullptr) {
    return Graph(loaded.offsets, loaded.neighbors, std::move(loaded.mapping));
  }
  return Graph(std::move(loaded.owned_offsets),
               std::move(loaded.owned_neighbors));
}

StatusOr<WeightedGraph> load_weighted_csr(const std::string& path,
                                          const CsrLoadOptions& opts) {
  // Weighted graphs interleave (to, w) in memory, so loading always
  // materializes; map the file read-only all the same (kAuto) to skip the
  // intermediate buffer.
  LoadedCsr2 loaded;
  GCLUS_RETURN_IF_ERROR(load_csr2(path, opts, loaded).with_context(path));
  if ((loaded.header.flags & kCsr2FlagWeights) == 0) {
    return InvalidArgumentError(
        path + ": unweighted CSR v2 file (use load_csr_file)");
  }
  std::vector<EdgeId> offsets(loaded.offsets.begin(), loaded.offsets.end());
  std::vector<WeightedHalfEdge> adj(loaded.neighbors.size());
  for (std::size_t i = 0; i < adj.size(); ++i) {
    adj[i] = {loaded.neighbors[i], loaded.weights[i]};
  }
  return WeightedGraph::from_csr(std::move(offsets), std::move(adj));
}

void write_csr_file(const Graph& g, const std::string& path) {
  const Status st = write_csr(g, path);
  GCLUS_CHECK(st.ok(), "cannot write CSR v2 file: ", st.to_string());
}

void write_csr_file(const WeightedGraph& g, const std::string& path) {
  const Status st = write_csr(g, path);
  GCLUS_CHECK(st.ok(), "cannot write CSR v2 file: ", st.to_string());
}

void write_csr_file(const CompressedGraph& g, const std::string& path) {
  const Status st = write_csr(g, path);
  GCLUS_CHECK(st.ok(), "cannot write CSR v2 file: ", st.to_string());
}

CompressedGraph load_compressed_csr_file(const std::string& path,
                                         const CsrLoadOptions& opts) {
  auto loaded = load_compressed_csr(path, opts);
  GCLUS_CHECK(loaded.ok(), loaded.status().to_string());
  return std::move(loaded).value();
}

bool try_write_csr_file(const Graph& g, const std::string& path) {
  return write_csr(g, path).ok();
}

Graph load_csr_file(const std::string& path, const CsrLoadOptions& opts) {
  auto loaded = load_csr(path, opts);
  GCLUS_CHECK(loaded.ok(), loaded.status().to_string());
  return std::move(loaded).value();
}

std::optional<Graph> try_load_csr_file(const std::string& path,
                                       const CsrLoadOptions& opts) {
  auto loaded = load_csr(path, opts);
  if (!loaded.ok()) return std::nullopt;
  return std::move(loaded).value();
}

WeightedGraph load_weighted_csr_file(const std::string& path,
                                     const CsrLoadOptions& opts) {
  auto loaded = load_weighted_csr(path, opts);
  GCLUS_CHECK(loaded.ok(), loaded.status().to_string());
  return std::move(loaded).value();
}

bool is_csr_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::byte head[8];
  in.read(reinterpret_cast<char*>(head), sizeof head);
  if (!in.good()) return false;
  return read_le_at<std::uint64_t>(head) == kCsr2Magic;
}

std::optional<Csr2Info> probe_csr_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::byte head[kCsr2HeaderBytes];
  in.read(reinterpret_cast<char*>(head), sizeof head);
  if (!in.good()) return std::nullopt;
  std::error_code ec;
  const std::uint64_t file_bytes = std::filesystem::file_size(path, ec);
  if (ec) return std::nullopt;
  if (read_le_at<std::uint64_t>(head) != kCsr2Magic) return std::nullopt;
  Csr2Info info;
  info.version = read_le_at<std::uint32_t>(head + 8);
  if (info.version != kCsr2Version) return std::nullopt;
  const auto flags = read_le_at<std::uint32_t>(head + 12);
  info.weighted = (flags & kCsr2FlagWeights) != 0;
  info.compressed = (flags & kCsr2FlagCompressed) != 0;
  info.num_nodes = read_le_at<std::uint64_t>(head + 16);
  info.num_half_edges = read_le_at<std::uint64_t>(head + 24);
  info.file_bytes = file_bytes;
  return info;
}

}  // namespace gclus::io
