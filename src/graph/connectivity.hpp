// Connected components and largest-component extraction.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace gclus {

struct Components {
  std::vector<NodeId> label;  // per-node component id, in [0, count)
  NodeId count = 0;
  /// Component sizes indexed by label.
  std::vector<NodeId> sizes;
};

/// Labels connected components (BFS sweep).
[[nodiscard]] Components connected_components(const Graph& g);

[[nodiscard]] inline bool is_connected(const Graph& g) {
  return g.num_nodes() == 0 || connected_components(g).count == 1;
}

struct ExtractedComponent {
  Graph graph;
  /// original node id of each node in `graph` (new id -> old id).
  std::vector<NodeId> original_id;
};

/// Induced subgraph on the largest connected component, with relabeling.
[[nodiscard]] ExtractedComponent largest_component(const Graph& g);

}  // namespace gclus
