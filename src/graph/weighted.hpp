// Weighted graphs, Dijkstra, and small-graph APSP.
//
// The decomposition pipeline only needs weights on the *quotient* graph
// (§4: edge weight = shortest inter-cluster connection length), which is
// orders of magnitude smaller than the input graph, so this module favors
// clarity over large-scale performance.
#pragma once

#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace gclus {

struct WeightedHalfEdge {
  NodeId to;
  Weight w;

  friend bool operator==(const WeightedHalfEdge&,
                         const WeightedHalfEdge&) = default;
};

/// CSR weighted undirected graph.
class WeightedGraph {
 public:
  WeightedGraph() = default;

  /// Builds from a list of undirected weighted edges (u, v, w).  Parallel
  /// edges are collapsed to the minimum weight; self-loops are dropped.
  static WeightedGraph from_edges(
      NodeId num_nodes, std::vector<std::tuple<NodeId, NodeId, Weight>> edges);

  /// Lifts an unweighted graph to weight-1 edges.
  static WeightedGraph from_unit_weights(const Graph& g);

  /// Adopts prebuilt CSR arrays verbatim (no re-sorting or dedup) — the
  /// deserialization entry point for graph/io.hpp, which validates the
  /// arrays structurally (and by checksum) before constructing.  Only the
  /// cheap shape invariants are re-checked here.
  static WeightedGraph from_csr(std::vector<EdgeId> offsets,
                                std::vector<WeightedHalfEdge> adj);

  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  [[nodiscard]] EdgeId num_edges() const { return adj_.size() / 2; }
  [[nodiscard]] EdgeId num_half_edges() const { return adj_.size(); }

  [[nodiscard]] std::span<const WeightedHalfEdge> neighbors(NodeId u) const {
    GCLUS_DCHECK(u < num_nodes());
    return {adj_.data() + offsets_[u], adj_.data() + offsets_[u + 1]};
  }

  [[nodiscard]] std::span<const EdgeId> offsets() const { return offsets_; }
  [[nodiscard]] std::span<const WeightedHalfEdge> adjacency() const {
    return adj_;
  }

 private:
  std::vector<EdgeId> offsets_;
  std::vector<WeightedHalfEdge> adj_;
};

/// Single-source shortest paths (binary-heap Dijkstra).
[[nodiscard]] std::vector<Weight> dijkstra(const WeightedGraph& g,
                                           NodeId source);

/// Weighted eccentricity of `source` (max finite distance).
[[nodiscard]] Weight weighted_eccentricity(const WeightedGraph& g,
                                           NodeId source);

/// Weighted diameter by running Dijkstra from every node.  Intended for
/// quotient graphs (thousands of nodes), not raw inputs.
[[nodiscard]] Weight weighted_diameter_exact(const WeightedGraph& g);

/// Below this node count apsp_matrix skips the binary heap and runs
/// linear-scan Dijkstra straight over its output row: for tiny quotient
/// graphs (deep meshes and paths decompose into a handful of clusters)
/// the O(n²) scan beats heap traffic and allocation, and the matrix row
/// doubles as the tentative-distance array so the sweep allocates nothing
/// per source.  Distances are exact either way — only the schedule
/// changes — so results are bit-identical across the two paths.
inline constexpr NodeId kApspSmallGraphNodes = 64;

/// All-pairs shortest paths as a dense n×n matrix (row-major).  The
/// distance-oracle construction of §4 stores exactly this for the quotient
/// graph; n is capped to keep the O(n²) memory deliberate.
[[nodiscard]] std::vector<Weight> apsp_matrix(const WeightedGraph& g,
                                              NodeId max_nodes = 20000);

}  // namespace gclus
