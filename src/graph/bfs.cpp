#include "graph/bfs.hpp"

#include <atomic>
#include <cstdio>

#include "api/workspace.hpp"
#include "common/check.hpp"
#include "par/parallel_for.hpp"

namespace gclus {

std::vector<Dist> bfs_distances(const Graph& g, NodeId source) {
  return multi_source_bfs(g, {source});
}

std::vector<Dist> multi_source_bfs(const Graph& g,
                                   const std::vector<NodeId>& sources,
                                   std::vector<std::uint32_t>* owner_out) {
  const NodeId n = g.num_nodes();
  std::vector<Dist> dist(n, kInfDist);
  if (owner_out != nullptr) owner_out->assign(n, UINT32_MAX);
  std::vector<NodeId> frontier;
  frontier.reserve(sources.size());
  for (std::uint32_t i = 0; i < sources.size(); ++i) {
    const NodeId s = sources[i];
    GCLUS_CHECK(s < n, "BFS source out of range");
    if (dist[s] == kInfDist) {
      dist[s] = 0;
      if (owner_out != nullptr) (*owner_out)[s] = i;
      frontier.push_back(s);
    }
  }
  std::vector<NodeId> next;
  Dist level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const NodeId u : frontier) {
      for (const NodeId v : g.neighbors(u)) {
        if (dist[v] == kInfDist) {
          dist[v] = level;
          if (owner_out != nullptr) (*owner_out)[v] = (*owner_out)[u];
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

namespace {

/// Below this frontier degree sum a push level runs inline on the caller:
/// the pool dispatch (mutex + condvar round trip) would dominate the
/// actual edge work.  Matters for eccentricity sweeps over small graphs.
constexpr std::uint64_t kSerialPushCutoff = 2048;

/// The level-synchronous kernel, generic over the graph representation
/// (plain CSR or CompressedGraph) — both claim directions are neighbor-
/// order independent, so a compressed decode order yields identical
/// distances.  The public overloads below pin the instantiations.
template <class G>
std::vector<Dist> parallel_bfs_impl(ThreadPool& pool, const G& g,
                                    NodeId source, std::size_t* levels_out,
                                    const GrowthOptions& options,
                                    DirectionCounts* counts_out,
                                    Workspace* workspace) {
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(source < n);
  const std::size_t workers = pool.num_threads();
  // Scratch: borrowed from the workspace when one is supplied (the
  // repeated-traversal case), otherwise stack-owned for this call.
  BfsScratch local;
  BfsScratch* b;
  if (workspace != nullptr) {
    b = workspace->acquire_bfs(n, workers);
  } else {
    local.ensure(n, workers);
    b = &local;
  }
  // Distances double as the visited set; claims race benignly because all
  // writers of a node in one level write the same value — but push uses a
  // CAS so each node enters the next frontier exactly once, and pull
  // writes are owner-only.
  std::vector<std::atomic<Dist>>& dist = b->dist;
  parallel_for(pool, 0, n, [&](std::size_t i) {
    dist[i].store(kInfDist, std::memory_order_relaxed);
  });
  dist[source].store(0, std::memory_order_relaxed);

  std::vector<NodeId>& frontier = b->frontier;
  frontier.clear();
  frontier.push_back(source);
  // Ascending superset of the unvisited nodes, compacted lazily; pull
  // levels iterate this instead of the full node range.  Built on the
  // first pull level so push-only traversals (pinned mode, or sparse
  // frontiers under kAuto — eccentricity sweeps over road-like graphs
  // run thousands of these) never pay the O(n) initialization.
  std::vector<NodeId>& candidates = b->candidates;
  candidates.clear();

  std::uint64_t frontier_deg = g.degree(source);
  std::uint64_t unvisited_deg = g.num_half_edges() - g.degree(source);
  NodeId visited = 1;
  bool pulling = false;

  std::size_t levels = 0;
  DirectionCounts counts;
  std::vector<std::vector<NodeId>>& local_next = b->local_next;
  for (auto& buf : local_next) buf.clear();

  while (!frontier.empty()) {
    ++levels;
    const Dist cur_level = static_cast<Dist>(levels - 1);
    const Dist next_level = static_cast<Dist>(levels);

    pulling = decide_direction(pulling, frontier.size(), n, frontier_deg,
                               unvisited_deg, options);
    if (pulling) {
      ++counts.pull;
    } else {
      ++counts.push;
    }
    if (options.log_decisions) {
      std::fprintf(stderr,
                   "[bfs] level=%u mode=%s frontier=%zu fdeg=%llu udeg=%llu\n",
                   next_level, pulling ? "pull" : "push", frontier.size(),
                   static_cast<unsigned long long>(frontier_deg),
                   static_cast<unsigned long long>(unvisited_deg));
    }

    for (auto& buf : local_next) buf.clear();
    std::uint64_t next_deg = 0;

    // Bottom-up: each unvisited node looks for any neighbor in the
    // current level and stops at the first hit.  Testing dist == the
    // exact level excludes nodes visited concurrently this level, so no
    // deferred commit is needed.
    const auto pull_range = [&](std::size_t lo, std::size_t hi,
                                std::vector<NodeId>& out) {
      std::uint64_t deg = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        const NodeId v = candidates[i];
        if (dist[v].load(std::memory_order_relaxed) != kInfDist) continue;
        for (const NodeId u : g.neighbors(v)) {
          if (dist[u].load(std::memory_order_relaxed) != cur_level) continue;
          dist[v].store(next_level, std::memory_order_relaxed);
          out.push_back(v);
          deg += g.degree(v);
          break;
        }
      }
      return deg;
    };
    // Top-down: frontier nodes CAS their unvisited neighbors into the
    // next level; the CAS admits each node exactly once.
    const auto push_range = [&](std::size_t lo, std::size_t hi,
                                std::vector<NodeId>& out) {
      std::uint64_t deg = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        for (const NodeId v : g.neighbors(frontier[i])) {
          Dist expected = kInfDist;
          if (dist[v].compare_exchange_strong(expected, next_level,
                                              std::memory_order_relaxed)) {
            out.push_back(v);
            deg += g.degree(v);
          }
        }
      }
      return deg;
    };
    // Runs a level body either inline (too little work to amortize a pool
    // dispatch — matters for eccentricity sweeps over small graphs) or
    // across the workers via the guided-self-scheduling cursor.
    const auto run_level = [&](std::size_t total, std::size_t grain,
                               bool inline_serial, const auto& range_body) {
      if (inline_serial) {
        next_deg = range_body(0, total, local_next[0]);
        return;
      }
      std::atomic<std::uint64_t> deg_sum{0};
      std::atomic<std::size_t> cursor{0};
      pool.run_on_workers([&](std::size_t worker) {
        std::uint64_t local_deg = 0;
        for (;;) {
          const std::size_t lo =
              cursor.fetch_add(grain, std::memory_order_relaxed);
          if (lo >= total) break;
          const std::size_t hi = std::min(lo + grain, total);
          local_deg += range_body(lo, hi, local_next[worker]);
        }
        deg_sum.fetch_add(local_deg, std::memory_order_relaxed);
      });
      next_deg = deg_sum.load();
    };

    if (pulling) {
      if (candidates.empty() && visited < n) {
        candidates.resize(n);
        parallel_for(pool, 0, n, [&](std::size_t i) {
          candidates[i] = static_cast<NodeId>(i);
        });
      }
      // Drop visited entries once more than half the candidates are stale.
      if (worklist_needs_compaction(candidates.size(),
                                    static_cast<std::size_t>(n - visited))) {
        parallel_compact(pool, candidates, [&](NodeId v) {
          return dist[v].load(std::memory_order_relaxed) == kInfDist;
        });
      }
      run_level(candidates.size(), /*grain=*/256,
                pool.num_threads() == 1 ||
                    unvisited_deg + candidates.size() <= 4 * kSerialPushCutoff,
                pull_range);
    } else {
      run_level(frontier.size(), /*grain=*/64,
                pool.num_threads() == 1 || frontier_deg <= kSerialPushCutoff,
                push_range);
    }

    parallel_concat(pool, local_next, frontier);
    frontier_deg = next_deg;
    unvisited_deg -= next_deg;
    visited += static_cast<NodeId>(frontier.size());
  }
  if (levels_out != nullptr) *levels_out = levels;
  if (counts_out != nullptr) *counts_out = counts;

  std::vector<Dist> result(n);
  parallel_for(pool, 0, n, [&](std::size_t i) {
    result[i] = dist[i].load(std::memory_order_relaxed);
  });
  if (workspace != nullptr) workspace->release_bfs(b);
  return result;
}

}  // namespace

std::vector<Dist> parallel_bfs(ThreadPool& pool, const Graph& g, NodeId source,
                               std::size_t* levels_out,
                               const GrowthOptions& options,
                               DirectionCounts* counts_out,
                               Workspace* workspace) {
  return parallel_bfs_impl(pool, g, source, levels_out, options, counts_out,
                           workspace);
}

std::vector<Dist> parallel_bfs(ThreadPool& pool, const CompressedGraph& g,
                               NodeId source, std::size_t* levels_out,
                               const GrowthOptions& options,
                               DirectionCounts* counts_out,
                               Workspace* workspace) {
  return parallel_bfs_impl(pool, g, source, levels_out, options, counts_out,
                           workspace);
}

BfsExtremum bfs_extremum(const Graph& g, NodeId source, ThreadPool* pool,
                         Workspace* workspace) {
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  const auto dist = parallel_bfs(p, g, source, nullptr,
                                 default_growth_options(), nullptr, workspace);
  BfsExtremum out;
  out.farthest_node = source;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] == kInfDist) continue;
    ++out.reached;
    if (dist[v] > out.eccentricity) {
      out.eccentricity = dist[v];
      out.farthest_node = v;
    }
  }
  return out;
}

}  // namespace gclus
