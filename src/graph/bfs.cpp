#include "graph/bfs.hpp"

#include <atomic>

#include "common/check.hpp"
#include "par/parallel_for.hpp"

namespace gclus {

std::vector<Dist> bfs_distances(const Graph& g, NodeId source) {
  return multi_source_bfs(g, {source});
}

std::vector<Dist> multi_source_bfs(const Graph& g,
                                   const std::vector<NodeId>& sources) {
  const NodeId n = g.num_nodes();
  std::vector<Dist> dist(n, kInfDist);
  std::vector<NodeId> frontier;
  frontier.reserve(sources.size());
  for (const NodeId s : sources) {
    GCLUS_CHECK(s < n, "BFS source out of range");
    if (dist[s] == kInfDist) {
      dist[s] = 0;
      frontier.push_back(s);
    }
  }
  std::vector<NodeId> next;
  Dist level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const NodeId u : frontier) {
      for (const NodeId v : g.neighbors(u)) {
        if (dist[v] == kInfDist) {
          dist[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::vector<Dist> parallel_bfs(ThreadPool& pool, const Graph& g, NodeId source,
                               std::size_t* levels_out) {
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(source < n);
  // Distances double as the visited set; claims race benignly because all
  // writers of a node in one level write the same value — but we use a CAS
  // so each node enters `next` exactly once.
  std::vector<std::atomic<Dist>> dist(n);
  parallel_for(pool, 0, n, [&](std::size_t i) {
    dist[i].store(kInfDist, std::memory_order_relaxed);
  });
  dist[source].store(0, std::memory_order_relaxed);

  std::vector<NodeId> frontier{source};
  std::size_t levels = 0;
  const std::size_t workers = pool.num_threads();
  std::vector<std::vector<NodeId>> local_next(workers);

  while (!frontier.empty()) {
    ++levels;
    const Dist next_level = static_cast<Dist>(levels);
    for (auto& buf : local_next) buf.clear();
    std::atomic<std::size_t> cursor{0};
    pool.run_on_workers([&](std::size_t worker) {
      auto& out = local_next[worker];
      constexpr std::size_t kGrain = 64;
      for (;;) {
        const std::size_t lo =
            cursor.fetch_add(kGrain, std::memory_order_relaxed);
        if (lo >= frontier.size()) break;
        const std::size_t hi = std::min(lo + kGrain, frontier.size());
        for (std::size_t i = lo; i < hi; ++i) {
          for (const NodeId v : g.neighbors(frontier[i])) {
            Dist expected = kInfDist;
            if (dist[v].compare_exchange_strong(expected, next_level,
                                                std::memory_order_relaxed)) {
              out.push_back(v);
            }
          }
        }
      }
    });
    frontier.clear();
    for (const auto& buf : local_next) {
      frontier.insert(frontier.end(), buf.begin(), buf.end());
    }
  }
  if (levels_out != nullptr) *levels_out = levels;

  std::vector<Dist> result(n);
  parallel_for(pool, 0, n, [&](std::size_t i) {
    result[i] = dist[i].load(std::memory_order_relaxed);
  });
  return result;
}

BfsExtremum bfs_extremum(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  BfsExtremum out;
  out.farthest_node = source;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] == kInfDist) continue;
    ++out.reached;
    if (dist[v] > out.eccentricity) {
      out.eccentricity = dist[v];
      out.farthest_node = v;
    }
  }
  return out;
}

}  // namespace gclus
