#include "graph/compressed.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstring>
#include <numeric>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"

namespace gclus {

using namespace io::wire;

namespace {

/// LSB-first bit sink over a byte-exclusive output range.  Each encode
/// chunk owns its own writer, so parallel chunks never share a byte.
class BitWriter {
 public:
  explicit BitWriter(std::byte* out) : out_(out) {}

  /// Appends the low `nbits` of `v` (nbits <= 56; acc_ never overflows
  /// because fewer than 8 bits are pending between calls).
  void put(std::uint64_t v, unsigned nbits) {
    acc_ |= (v & cz::low_mask(nbits)) << pending_;
    pending_ += nbits;
    while (pending_ >= 8) {
      *out_++ = static_cast<std::byte>(acc_ & 0xff);
      acc_ >>= 8;
      pending_ -= 8;
    }
  }

  void put_rice(std::uint64_t v, unsigned k) {
    const std::uint64_t q = v >> k;
    if (q < cz::kMaxQ) {
      put(cz::low_mask(q) | ((v & cz::low_mask(k)) << (q + 1)),
          static_cast<unsigned>(q) + 1 + k);
    } else {
      put(cz::low_mask(cz::kMaxQ), cz::kMaxQ);
      put(v, cz::kEscapeBits);
    }
  }

  /// Flushes the final partial byte (high bits zero).
  void finish() {
    if (pending_ > 0) {
      *out_++ = static_cast<std::byte>(acc_ & 0xff);
      acc_ = 0;
      pending_ = 0;
    }
  }

 private:
  std::byte* out_;
  std::uint64_t acc_ = 0;
  unsigned pending_ = 0;
};

/// Degree-descending stable order (ties broken by ascending id): the
/// storage order of RelabelMode::kAuto.
std::vector<NodeId> degree_descending_order(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const std::size_t da = g.degree(a), db = g.degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  return order;
}

/// Adjacency re-expressed in storage ids: list s holds the sorted storage
/// ids of the neighbors of original vertex inv[s].  Views the input arrays
/// directly when the relabeling is the identity.
struct StorageCsr {
  std::span<const EdgeId> offsets;
  std::span<const NodeId> neighbors;
  std::vector<EdgeId> owned_offsets;
  std::vector<NodeId> owned_neighbors;

  [[nodiscard]] std::span<const NodeId> list(NodeId s) const {
    return neighbors.subspan(static_cast<std::size_t>(offsets[s]),
                             static_cast<std::size_t>(offsets[s + 1] -
                                                      offsets[s]));
  }
};

StorageCsr storage_csr(const Graph& g, ThreadPool& pool,
                       std::span<const NodeId> perm,
                       std::span<const NodeId> inv) {
  StorageCsr t;
  if (perm.empty()) {
    t.offsets = g.offsets();
    t.neighbors = g.neighbor_array();
    return t;
  }
  const NodeId n = g.num_nodes();
  t.owned_offsets.assign(n + 1, 0);
  for (NodeId s = 0; s < n; ++s) {
    t.owned_offsets[s + 1] = t.owned_offsets[s] + g.degree(inv[s]);
  }
  t.owned_neighbors.resize(static_cast<std::size_t>(t.owned_offsets[n]));
  parallel_for(pool, 0, n, [&](std::size_t si) {
    const auto s = static_cast<NodeId>(si);
    NodeId* out = t.owned_neighbors.data() + t.owned_offsets[s];
    std::size_t i = 0;
    for (const NodeId v : g.neighbors(inv[s])) out[i++] = perm[v];
    std::sort(out, out + i);
  });
  t.offsets = t.owned_offsets;
  t.neighbors = t.owned_neighbors;
  return t;
}

/// Bits vertex s's code occupies under the chosen parameters.
std::uint64_t code_bits(std::span<const NodeId> list, NodeId s,
                        const CompressedParams& p) {
  if (list.empty()) return 0;
  const std::uint64_t first =
      p.first_mode == 0
          ? std::uint64_t{list[0]}
          : cz::zigzag(static_cast<std::int64_t>(list[0]) -
                       static_cast<std::int64_t>(s));
  std::uint64_t bits = cz::rice_len(first, p.k_first);
  for (std::size_t j = 1; j < list.size(); ++j) {
    bits += cz::rice_len(list[j] - list[j - 1] - 1, p.k_gap);
  }
  return bits;
}

void encode_vertex(BitWriter& w, std::span<const NodeId> list, NodeId s,
                   const CompressedParams& p) {
  if (list.empty()) return;
  const std::uint64_t first =
      p.first_mode == 0
          ? std::uint64_t{list[0]}
          : cz::zigzag(static_cast<std::int64_t>(list[0]) -
                       static_cast<std::int64_t>(s));
  w.put_rice(first, p.k_first);
  for (std::size_t j = 1; j < list.size(); ++j) {
    w.put_rice(list[j] - list[j - 1] - 1, p.k_gap);
  }
}

/// Exact total first-value/gap code costs for every candidate Rice
/// parameter.  Atomic u64 additions are commutative, so the totals (and
/// therefore the chosen parameters) are thread-count independent.
struct CostTotals {
  std::array<std::uint64_t, cz::kMaxK + 1> first_raw{};
  std::array<std::uint64_t, cz::kMaxK + 1> first_zz{};
  std::array<std::uint64_t, cz::kMaxK + 1> gaps{};
};

CostTotals cost_totals(const StorageCsr& t, NodeId n, ThreadPool& pool) {
  std::array<std::atomic<std::uint64_t>, cz::kMaxK + 1> a_raw{}, a_zz{},
      a_gap{};
  parallel_for_chunks(
      pool, 0, n,
      [&](std::size_t lo, std::size_t hi) {
        CostTotals local;
        for (std::size_t si = lo; si < hi; ++si) {
          const auto s = static_cast<NodeId>(si);
          const auto list = t.list(s);
          if (list.empty()) continue;
          const std::uint64_t raw = list[0];
          const std::uint64_t zz =
              cz::zigzag(static_cast<std::int64_t>(list[0]) -
                         static_cast<std::int64_t>(s));
          for (unsigned k = 0; k <= cz::kMaxK; ++k) {
            local.first_raw[k] += cz::rice_len(raw, k);
            local.first_zz[k] += cz::rice_len(zz, k);
          }
          for (std::size_t j = 1; j < list.size(); ++j) {
            const std::uint64_t gap = list[j] - list[j - 1] - 1;
            for (unsigned k = 0; k <= cz::kMaxK; ++k) {
              local.gaps[k] += cz::rice_len(gap, k);
            }
          }
        }
        for (unsigned k = 0; k <= cz::kMaxK; ++k) {
          a_raw[k].fetch_add(local.first_raw[k], std::memory_order_relaxed);
          a_zz[k].fetch_add(local.first_zz[k], std::memory_order_relaxed);
          a_gap[k].fetch_add(local.gaps[k], std::memory_order_relaxed);
        }
      },
      /*grain=*/cz::kChunk);
  CostTotals out;
  for (unsigned k = 0; k <= cz::kMaxK; ++k) {
    out.first_raw[k] = a_raw[k].load();
    out.first_zz[k] = a_zz[k].load();
    out.gaps[k] = a_gap[k].load();
  }
  return out;
}

/// The parameter choice implied by one labeling's cost totals, plus the
/// exact adjacency-stream bit count it yields (before chunk padding).
struct ParamChoice {
  std::uint8_t first_mode = 0;
  std::uint8_t k_first = 0;
  std::uint8_t k_gap = 0;
  std::uint64_t total_bits = 0;
};

/// Exact-cost parameter choice (ties: smaller k, raw mode first).
ParamChoice choose_params(const CostTotals& costs) {
  ParamChoice c;
  std::uint64_t best_gap = ~std::uint64_t{0};
  for (unsigned k = 0; k <= cz::kMaxK; ++k) {
    if (costs.gaps[k] < best_gap) {
      best_gap = costs.gaps[k];
      c.k_gap = static_cast<std::uint8_t>(k);
    }
  }
  std::uint64_t best_first = ~std::uint64_t{0};
  for (unsigned mode = 0; mode <= 1; ++mode) {
    const auto& totals = mode == 0 ? costs.first_raw : costs.first_zz;
    for (unsigned k = 0; k <= cz::kMaxK; ++k) {
      if (totals[k] < best_first) {
        best_first = totals[k];
        c.first_mode = static_cast<std::uint8_t>(mode);
        c.k_first = static_cast<std::uint8_t>(k);
      }
    }
  }
  c.total_bits = best_gap + best_first;
  return c;
}

/// The owned backing buffer of a compress() result.
struct OwnedSections {
  std::vector<std::byte> bytes;
};

}  // namespace

CompressedGraph::CompressedGraph(CompressedParams params,
                                 std::span<const std::byte> degrees,
                                 std::span<const std::byte> anchors,
                                 std::span<const std::byte> locals,
                                 std::span<const std::byte> adj,
                                 std::span<const std::byte> perm,
                                 std::span<const std::byte> inv,
                                 std::shared_ptr<const void> storage)
    : params_(params),
      degrees_(degrees),
      anchors_(anchors),
      locals_(locals),
      adj_(adj),
      perm_(perm),
      inv_(inv),
      mean_vertex_bits_(params.num_nodes == 0
                            ? 0
                            : params.adj_bytes * 8 / params.num_nodes),
      storage_(std::move(storage)) {}

CompressedSectionSizes compressed_section_sizes(const CompressedParams& p) {
  CompressedSectionSizes s;
  const std::uint64_t n = p.num_nodes;
  // The "degrees" section holds the interleaved per-vertex index slots
  // (degree + superblock-local offset); a separate locals section no
  // longer exists, so its size is always zero.
  s.degrees = (n * (p.degree_bits + p.local_bits) + 7) / 8 + cz::kGuardBytes;
  s.anchors = (n + cz::kSuperblock - 1) / cz::kSuperblock * 8;
  s.locals = 0;
  s.adj = p.adj_bytes + cz::kGuardBytes;
  s.perm = p.relabeled ? n * sizeof(NodeId) : 0;
  s.inv = s.perm;
  return s;
}

CompressedGraph compress(const Graph& g, ThreadPool& pool,
                         const CompressOptions& opts) {
  const NodeId n = g.num_nodes();

  // Relabeling candidate: degree-descending order, dropped when it is
  // already the identity (regular graphs).
  std::vector<NodeId> inv;  // storage -> original
  std::vector<NodeId> perm; // original -> storage
  if (opts.relabel != RelabelMode::kNever && n > 0) {
    std::vector<NodeId> order = degree_descending_order(g);
    bool identity = true;
    for (NodeId s = 0; s < n && identity; ++s) identity = order[s] == s;
    if (!identity) {
      inv = std::move(order);
      perm.resize(n);
      for (NodeId s = 0; s < n; ++s) perm[inv[s]] = s;
    }
  }
  StorageCsr t = storage_csr(g, pool, perm, inv);

  CompressedParams p;
  p.num_nodes = n;
  p.num_half_edges = g.num_half_edges();
  p.relabeled = !perm.empty();

  ParamChoice choice = choose_params(cost_totals(t, n, pool));

  // Under kAuto the relabeling must pay its own way: the 64 bits/vertex of
  // perm+inv maps (and the per-neighbor map lookup on decode) are kept
  // only when the relabeled stream's exact bit savings exceed them.  On
  // near-uniform graphs the order buys nothing, so the maps are dropped
  // and neighbors decode with zero indirection.
  if (p.relabeled && opts.relabel == RelabelMode::kAuto) {
    StorageCsr t_id = storage_csr(g, pool, {}, {});
    const ParamChoice id_choice = choose_params(cost_totals(t_id, n, pool));
    const std::uint64_t map_bits = std::uint64_t{n} * 2 * sizeof(NodeId) * 8;
    if (id_choice.total_bits <= choice.total_bits + map_bits) {
      perm.clear();
      inv.clear();
      t = std::move(t_id);
      p.relabeled = false;
      choice = id_choice;
    }
  }
  p.first_mode = choice.first_mode;
  p.k_first = choice.k_first;
  p.k_gap = choice.k_gap;

  const std::uint64_t max_degree = parallel_reduce(
      pool, 0, n, std::uint64_t{0},
      [&](std::size_t s) {
        return std::uint64_t{t.offsets[s + 1] - t.offsets[s]};
      },
      [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); });
  p.degree_bits = static_cast<std::uint32_t>(std::bit_width(max_degree));

  // Layout pass: per-vertex code bit lengths, chunk-padded into absolute
  // bit positions.  Chunks are a fixed 4096 vertices, so the layout (and
  // every downstream byte) is independent of the thread count.
  const std::size_t num_chunks = (std::size_t{n} + cz::kChunk - 1) / cz::kChunk;
  std::vector<std::uint64_t> bit_start(n);
  std::vector<std::uint64_t> chunk_bits(num_chunks, 0);
  parallel_for(
      pool, 0, num_chunks,
      [&](std::size_t c) {
        const NodeId lo = static_cast<NodeId>(c * cz::kChunk);
        const NodeId hi =
            static_cast<NodeId>(std::min<std::size_t>(lo + cz::kChunk, n));
        std::uint64_t at = 0;
        for (NodeId s = lo; s < hi; ++s) {
          bit_start[s] = at;
          at += code_bits(t.list(s), s, p);
        }
        chunk_bits[c] = at;
      },
      /*grain=*/1);
  std::vector<std::uint64_t> chunk_byte(num_chunks + 1, 0);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    chunk_byte[c + 1] = chunk_byte[c] + (chunk_bits[c] + 7) / 8;
  }
  p.adj_bytes = chunk_byte[num_chunks];
  parallel_for(pool, 0, n, [&](std::size_t s) {
    bit_start[s] += chunk_byte[s / cz::kChunk] * 8;
  });

  // Superblocks never straddle a chunk (64 divides 4096), so every local
  // offset is relative to a byte-contiguous run of codes.
  const std::uint64_t max_local = parallel_reduce(
      pool, 0, n, std::uint64_t{0},
      [&](std::size_t s) {
        return bit_start[s] - bit_start[s / cz::kSuperblock * cz::kSuperblock];
      },
      [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); });
  p.local_bits = static_cast<std::uint32_t>(std::bit_width(max_local));

  const CompressedSectionSizes sz = compressed_section_sizes(p);
  auto owned = std::make_shared<OwnedSections>();
  owned->bytes.assign(
      static_cast<std::size_t>(sz.degrees + sz.anchors + sz.locals + sz.adj +
                               sz.perm + sz.inv),
      std::byte{0});
  std::byte* const b_degrees = owned->bytes.data();
  std::byte* const b_anchors = b_degrees + sz.degrees;
  std::byte* const b_locals = b_anchors + sz.anchors;
  std::byte* const b_adj = b_locals + sz.locals;
  std::byte* const b_perm = b_adj + sz.adj;
  std::byte* const b_inv = b_perm + sz.perm;

  // The index section chunks on 4096-vertex boundaries too: 4096·slot
  // bits is always whole bytes, so writers stay byte-exclusive.  Degree
  // and local offset are emitted as two puts (a slot can exceed put()'s
  // 56-bit limit); the sequential BitWriter makes that one packed slot.
  const unsigned slot_bits = p.degree_bits + p.local_bits;
  if (slot_bits > 0) {
    parallel_for(
        pool, 0, num_chunks,
        [&](std::size_t c) {
          const NodeId lo = static_cast<NodeId>(c * cz::kChunk);
          const NodeId hi =
              static_cast<NodeId>(std::min<std::size_t>(lo + cz::kChunk, n));
          BitWriter w(b_degrees + std::uint64_t{lo} * slot_bits / 8);
          for (NodeId s = lo; s < hi; ++s) {
            w.put(std::uint64_t{t.offsets[s + 1] - t.offsets[s]},
                  p.degree_bits);
            w.put(bit_start[s] -
                      bit_start[s / cz::kSuperblock * cz::kSuperblock],
                  p.local_bits);
          }
          w.finish();
        },
        /*grain=*/1);
  }
  parallel_for(pool, 0, (std::size_t{n} + cz::kSuperblock - 1) /
                            cz::kSuperblock,
               [&](std::size_t sb) {
                 store_le_at(b_anchors + sb * 8,
                             bit_start[sb * cz::kSuperblock]);
               });
  parallel_for(
      pool, 0, num_chunks,
      [&](std::size_t c) {
        const NodeId lo = static_cast<NodeId>(c * cz::kChunk);
        const NodeId hi =
            static_cast<NodeId>(std::min<std::size_t>(lo + cz::kChunk, n));
        BitWriter w(b_adj + chunk_byte[c]);
        for (NodeId s = lo; s < hi; ++s) encode_vertex(w, t.list(s), s, p);
        w.finish();
      },
      /*grain=*/1);
  if (p.relabeled) {
    parallel_for(pool, 0, n, [&](std::size_t u) {
      store_le_at(b_perm + u * sizeof(NodeId), perm[u]);
      store_le_at(b_inv + u * sizeof(NodeId), inv[u]);
    });
  }

  return CompressedGraph(
      p, {b_degrees, static_cast<std::size_t>(sz.degrees)},
      {b_anchors, static_cast<std::size_t>(sz.anchors)},
      {b_locals, static_cast<std::size_t>(sz.locals)},
      {b_adj, static_cast<std::size_t>(sz.adj)},
      {b_perm, static_cast<std::size_t>(sz.perm)},
      {b_inv, static_cast<std::size_t>(sz.inv)}, std::move(owned));
}

CompressedGraph compress(const Graph& g, const CompressOptions& opts) {
  return compress(g, ThreadPool::global(), opts);
}

Graph CompressedGraph::decompress(ThreadPool& pool) const {
  const NodeId n = num_nodes();
  std::vector<EdgeId> offsets(std::size_t{n} + 1, 0);
  parallel_for(pool, 0, n,
               [&](std::size_t u) {
                 offsets[u + 1] = degree(static_cast<NodeId>(u));
               });
  for (NodeId u = 0; u < n; ++u) offsets[u + 1] += offsets[u];
  std::vector<NodeId> adj(static_cast<std::size_t>(offsets[n]));
  parallel_for(pool, 0, n, [&](std::size_t ui) {
    const auto u = static_cast<NodeId>(ui);
    NodeId* out = adj.data() + offsets[u];
    std::size_t i = 0;
    for (const NodeId v : neighbors(u)) out[i++] = v;
    std::sort(out, out + i);
  });
  return Graph(std::move(offsets), std::move(adj));
}

Graph CompressedGraph::decompress() const {
  return decompress(ThreadPool::global());
}

bool CompressedGraph::validate() const {
  ThreadPool& pool = ThreadPool::global();
  if (!validate_compressed_structure(*this, pool).ok()) return false;
  return decompress(pool).validate();
}

Status validate_compressed_structure(const CompressedGraph& g,
                                     ThreadPool& pool) {
  const CompressedParams& p = g.params();
  const NodeId n = g.num_nodes();
  if (p.first_mode > 1 || p.k_first > cz::kMaxK || p.k_gap > cz::kMaxK ||
      p.degree_bits > 32 || p.local_bits > 56) {
    return DataLossError("compressed CSR parameters out of range");
  }
  std::atomic<bool> ok{true};
  if (p.relabeled) {
    parallel_for(pool, 0, n, [&](std::size_t u) {
      const NodeId s = g.to_storage(static_cast<NodeId>(u));
      if (s >= n || g.to_original(s) != u) {
        ok.store(false, std::memory_order_relaxed);
      }
    });
    if (!ok.load()) {
      return DataLossError("compressed CSR relabeling is not a bijection");
    }
  }
  const std::uint64_t degree_sum = parallel_reduce(
      pool, 0, n, std::uint64_t{0},
      [&](std::size_t s) {
        return std::uint64_t{g.storage_degree(static_cast<NodeId>(s))};
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  if (degree_sum != p.num_half_edges) {
    return DataLossError("compressed CSR degree sum mismatch");
  }

  // Decode walk: every vertex's indexed start must equal the running
  // cursor, every decoded id must stay in range, and each chunk must end
  // exactly at the next chunk's byte-aligned start — so a flipped bit
  // anywhere in the index or stream surfaces here, not as a wild read in
  // an algorithm.
  const std::uint64_t limit_bits = p.adj_bytes * 8;
  const std::size_t num_chunks = (std::size_t{n} + cz::kChunk - 1) / cz::kChunk;
  std::vector<std::uint64_t> chunk_start(num_chunks, 0);
  std::vector<std::uint64_t> chunk_end(num_chunks, 0);
  const std::byte* adj = g.adj_section().data();
  parallel_for(
      pool, 0, num_chunks,
      [&](std::size_t c) {
        const NodeId lo = static_cast<NodeId>(c * cz::kChunk);
        const NodeId hi =
            static_cast<NodeId>(std::min<std::size_t>(lo + cz::kChunk, n));
        std::uint64_t bit = g.code_start(lo);
        chunk_start[c] = bit;
        if (bit % 8 != 0 || bit > limit_bits) {
          ok.store(false, std::memory_order_relaxed);
          return;
        }
        for (NodeId s = lo; s < hi; ++s) {
          if (g.code_start(s) != bit) {
            ok.store(false, std::memory_order_relaxed);
            return;
          }
          const std::size_t d = g.storage_degree(s);
          std::uint64_t prev = 0;
          for (std::size_t j = 0; j < d; ++j) {
            if (bit > limit_bits) {  // guard bytes keep the peek in bounds
              ok.store(false, std::memory_order_relaxed);
              return;
            }
            if (j == 0) {
              const std::uint64_t v0 =
                  cz::rice_decode(adj, bit, p.k_first);
              const std::int64_t id =
                  p.first_mode == 0
                      ? static_cast<std::int64_t>(v0)
                      : static_cast<std::int64_t>(s) + cz::unzigzag(v0);
              if (id < 0 || id >= static_cast<std::int64_t>(n)) {
                ok.store(false, std::memory_order_relaxed);
                return;
              }
              prev = static_cast<std::uint64_t>(id);
            } else {
              prev += cz::rice_decode(adj, bit, p.k_gap) + 1;
              if (prev >= n) {
                ok.store(false, std::memory_order_relaxed);
                return;
              }
            }
          }
        }
        chunk_end[c] = bit;
      },
      /*grain=*/1);
  if (!ok.load()) {
    return DataLossError("compressed CSR adjacency stream is corrupt");
  }
  std::uint64_t expected = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    if (chunk_start[c] != expected || chunk_end[c] > limit_bits) {
      return DataLossError("compressed CSR adjacency index is inconsistent");
    }
    expected = (chunk_end[c] + 7) / 8 * 8;
  }
  if (expected != limit_bits) {
    return DataLossError("compressed CSR adjacency stream length mismatch");
  }
  return OkStatus();
}

}  // namespace gclus
