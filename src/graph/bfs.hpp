// Breadth-first search kernels: sequential, level-synchronous parallel,
// and multi-source variants.  These are both building blocks (cluster
// growth is multi-source BFS at heart) and the exact-answer reference the
// tests and the BFS diameter baseline rely on.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"
#include "par/thread_pool.hpp"

namespace gclus {

/// Hop distances from `source`; kInfDist for unreachable nodes.
[[nodiscard]] std::vector<Dist> bfs_distances(const Graph& g, NodeId source);

/// Hop distance to the nearest of `sources` (kInfDist if unreachable).
[[nodiscard]] std::vector<Dist> multi_source_bfs(
    const Graph& g, const std::vector<NodeId>& sources);

/// Level-synchronous parallel BFS.  Returns the same distances as
/// bfs_distances; also reports the number of levels (rounds) executed via
/// `levels_out` when non-null — this is the Θ(Δ)-round cost the paper's
/// BFS baseline pays in the distributed setting.
[[nodiscard]] std::vector<Dist> parallel_bfs(ThreadPool& pool, const Graph& g,
                                             NodeId source,
                                             std::size_t* levels_out = nullptr);

/// Result of one BFS used for eccentricity-style queries.
struct BfsExtremum {
  NodeId farthest_node = kInvalidNode;
  Dist eccentricity = 0;       // max finite distance from the source
  std::size_t reached = 0;     // number of reachable nodes (incl. source)
};

/// Runs BFS from `source` and summarizes the farthest reachable node.
[[nodiscard]] BfsExtremum bfs_extremum(const Graph& g, NodeId source);

}  // namespace gclus
