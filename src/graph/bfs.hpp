// Breadth-first search kernels: sequential, level-synchronous parallel,
// and multi-source variants.  These are both building blocks (cluster
// growth is multi-source BFS at heart) and the exact-answer reference the
// tests and the BFS diameter baseline rely on.
//
// The parallel kernel is direction-optimizing: sparse levels expand
// top-down (frontier nodes CAS their unvisited neighbors), dense levels
// bottom-up (unvisited nodes scan for a parent in the current level and
// stop at the first hit); GrowthOptions tunes or pins the per-level
// choice.
#pragma once

#include <vector>

#include "common/traversal.hpp"
#include "common/types.hpp"
#include "graph/compressed.hpp"
#include "graph/graph.hpp"
#include "par/thread_pool.hpp"

namespace gclus {

class Workspace;

/// Hop distances from `source`; kInfDist for unreachable nodes.
[[nodiscard]] std::vector<Dist> bfs_distances(const Graph& g, NodeId source);

/// Hop distance to the nearest of `sources` (kInfDist if unreachable).
/// When `owner_out` is non-null it receives, per node, the index into
/// `sources` of the source that claimed it (UINT32_MAX if unreachable;
/// duplicate sources resolve to the first index) — the Voronoi partition
/// the k-center evaluation and the registry's center-set adapters build
/// on.  Claims propagate along BFS tree edges, so every claimed non-source
/// node has a same-owner neighbor one hop closer.
[[nodiscard]] std::vector<Dist> multi_source_bfs(
    const Graph& g, const std::vector<NodeId>& sources,
    std::vector<std::uint32_t>* owner_out = nullptr);

/// Level-synchronous parallel BFS.  Returns the same distances as
/// bfs_distances; also reports the number of levels (rounds) executed via
/// `levels_out` when non-null — this is the Θ(Δ)-round cost the paper's
/// BFS baseline pays in the distributed setting.  `options` controls the
/// per-level push/pull direction choice; `counts_out` (when non-null)
/// receives the per-direction level split.  A non-null `workspace` lends
/// its BFS scratch (atomic distance array, worklists) for the duration of
/// the call instead of allocating per run — the win repeated traversals of
/// the same graph care about (eccentricity sweeps, serving loops).
[[nodiscard]] std::vector<Dist> parallel_bfs(
    ThreadPool& pool, const Graph& g, NodeId source,
    std::size_t* levels_out = nullptr,
    const GrowthOptions& options = default_growth_options(),
    DirectionCounts* counts_out = nullptr, Workspace* workspace = nullptr);

/// Parallel BFS over a compressed graph, same contract as above.  Both
/// level directions visit neighbors through commutative updates (push CAS,
/// pull first-hit-in-level), so the decoded adjacency order is immaterial
/// and the distances match the plain-CSR kernel exactly.
[[nodiscard]] std::vector<Dist> parallel_bfs(
    ThreadPool& pool, const CompressedGraph& g, NodeId source,
    std::size_t* levels_out = nullptr,
    const GrowthOptions& options = default_growth_options(),
    DirectionCounts* counts_out = nullptr, Workspace* workspace = nullptr);

/// Result of one BFS used for eccentricity-style queries.
struct BfsExtremum {
  NodeId farthest_node = kInvalidNode;
  Dist eccentricity = 0;       // max finite distance from the source
  std::size_t reached = 0;     // number of reachable nodes (incl. source)
};

/// Runs a parallel BFS from `source` and summarizes the farthest reachable
/// node.  `pool` defaults to the process-global pool; ties on the maximum
/// distance resolve to the smallest node id, matching the sequential
/// reference.
///
/// Not reentrant: because this dispatches on a ThreadPool (and pools
/// reject nested run_on_workers), do not call it from inside a parallel
/// region of the same pool — callers parallelizing an eccentricity sweep
/// must either pass a dedicated pool per thread or use the sequential
/// bfs_distances instead.
[[nodiscard]] BfsExtremum bfs_extremum(const Graph& g, NodeId source,
                                       ThreadPool* pool = nullptr,
                                       Workspace* workspace = nullptr);

}  // namespace gclus
