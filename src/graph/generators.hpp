// Synthetic graph generators.
//
// These provide (a) graphs with analytically known structure for tests
// (paths, grids, trees, cliques), and (b) scaled-down stand-ins for the
// paper's benchmark datasets (R-MAT / preferential-attachment for the
// social networks, perturbed geometric grids for the road networks, the
// 2-D mesh of §6, and the expander+path composite of the §3 discussion).
// All generators are deterministic functions of their parameters and seed.
#pragma once

#include <cstdint>

#include "graph/builder.hpp"
#include "graph/graph.hpp"

namespace gclus::gen {

/// Simple path 0-1-…-(n-1).  Diameter n-1.
[[nodiscard]] Graph path(NodeId n);

/// Cycle on n nodes.  Diameter floor(n/2).
[[nodiscard]] Graph cycle(NodeId n);

/// rows×cols 2-D grid (4-neighborhood).  Diameter rows+cols-2; doubling
/// dimension 2 — the paper's mesh1000 construction.
[[nodiscard]] Graph grid(NodeId rows, NodeId cols);

/// rows×cols 2-D torus (wrap-around grid).
[[nodiscard]] Graph torus(NodeId rows, NodeId cols);

/// Complete graph K_n.
[[nodiscard]] Graph complete(NodeId n);

/// Star: center 0 joined to 1..n-1.
[[nodiscard]] Graph star(NodeId n);

/// Complete binary tree on n nodes (heap-index edges i -> 2i+1, 2i+2).
[[nodiscard]] Graph binary_tree(NodeId n);

/// Uniform random tree on n nodes via a random Prüfer-like attachment:
/// node i attaches to a uniform node < i.  Always connected.
[[nodiscard]] Graph random_tree(NodeId n, std::uint64_t seed);

/// Erdős–Rényi G(n, m): m distinct uniform edges (rejection-sampled).
[[nodiscard]] Graph erdos_renyi(NodeId n, EdgeId m, std::uint64_t seed);

/// R-MAT power-law generator (Chakrabarti et al.) with the standard
/// (a,b,c,d) = (0.57,0.19,0.19,0.05) partition probabilities; edges are
/// symmetrized and deduplicated, so the result has at most m edges.
/// Stand-in for the twitter snapshot: heavy-tailed degrees, low diameter.
[[nodiscard]] Graph rmat(NodeId n_pow2, EdgeId m, std::uint64_t seed,
                         double a = 0.57, double b = 0.19, double c = 0.19);

/// Preferential attachment (Barabási–Albert): each new node attaches to
/// `attach` existing nodes chosen proportionally to degree.  Connected by
/// construction.  Stand-in for livejournal.
[[nodiscard]] Graph preferential_attachment(NodeId n, NodeId attach,
                                            std::uint64_t seed);

/// Road-network stand-in: a rows×cols grid where each non-bridge edge is
/// deleted with probability `drop_p` and each node gains a "shortcut" to a
/// nearby diagonal neighbour with probability `shortcut_p`; the largest
/// connected component is returned.  Produces a sparse near-planar graph
/// of very large diameter and low doubling dimension, the regime of the
/// paper's roads-CA/PA/TX datasets.
[[nodiscard]] Graph road_like(NodeId rows, NodeId cols, double drop_p,
                              double shortcut_p, std::uint64_t seed);

/// Random d-regular-ish expander: d random perfect-matching-style
/// permutation overlays on n nodes (union of d/2 random cycles).  Low
/// diameter O(log n) and high expansion with high probability.
[[nodiscard]] Graph expander(NodeId n, unsigned degree, std::uint64_t seed);

/// The §3 discussion construction: an expander on n - tail nodes with a
/// path of `tail` nodes attached to expander node 0.  Diameter ~ tail,
/// radius structure highly irregular.
[[nodiscard]] Graph expander_with_path(NodeId n, NodeId tail, unsigned degree,
                                       std::uint64_t seed);

/// Ring of `num_cliques` cliques of size `clique_size`, consecutive cliques
/// joined by a single edge.  Known cluster structure for tests.
[[nodiscard]] Graph ring_of_cliques(NodeId num_cliques, NodeId clique_size);

/// Figure 1 transform: returns G with a chain of `tail_len` extra nodes
/// appended to node `attach_at` (default: node 0).  Increases the diameter
/// by ~tail_len without altering the base structure.
[[nodiscard]] Graph with_tail(const Graph& g, NodeId tail_len,
                              NodeId attach_at = 0);

/// Disjoint union of two graphs (node ids of `b` shifted by a.num_nodes()).
/// The result is disconnected; used by the §3.2 disconnected-graph tests.
[[nodiscard]] Graph disjoint_union(const Graph& a, const Graph& b);

}  // namespace gclus::gen
