// Little-endian wire-format helpers shared by the binary serializers.
//
// The CSR v2 writer/reader (graph/io.cpp) and the oracle artifact sidecar
// (server/artifact.cpp) speak the same dialect: fixed little-endian
// integers, 64-byte-aligned sections, and an FNV-1a payload checksum.
// These helpers are the single definition of that dialect, so the two
// formats cannot drift — a checksum computed by one serializer verifies
// in the other's reader.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace gclus::io::wire {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv1a(std::uint64_t h, const void* data,
                           std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline constexpr bool kLittleEndian = std::endian::native == std::endian::little;

template <typename T>
T byteswap_int(T v) {
  auto u = static_cast<std::uint64_t>(v);
  if constexpr (sizeof(T) == 4) {
    u = __builtin_bswap32(static_cast<std::uint32_t>(u));
  } else {
    u = __builtin_bswap64(u);
  }
  return static_cast<T>(u);
}

template <typename T>
T to_le(T v) {
  return kLittleEndian ? v : byteswap_int(v);
}
template <typename T>
T from_le(T v) {
  return to_le(v);
}

inline constexpr std::uint64_t align_up(std::uint64_t pos,
                                        std::uint64_t align) {
  return (pos + align - 1) / align * align;
}

/// Checksums `count` elements of `data` in their little-endian byte
/// representation (a straight pass over memory on LE hosts).
template <typename T>
std::uint64_t fnv1a_array_le(std::uint64_t h, const T* data,
                             std::uint64_t count) {
  if constexpr (kLittleEndian) {
    return fnv1a(h, data, static_cast<std::size_t>(count) * sizeof(T));
  } else {
    for (std::uint64_t i = 0; i < count; ++i) {
      const T le = to_le(data[i]);
      h = fnv1a(h, &le, sizeof(T));
    }
    return h;
  }
}

template <typename T>
void write_array_le(std::ofstream& out, const T* data, std::uint64_t count) {
  if constexpr (kLittleEndian) {
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(count * sizeof(T)));
  } else {
    for (std::uint64_t i = 0; i < count; ++i) {
      const T le = to_le(data[i]);
      out.write(reinterpret_cast<const char*>(&le), sizeof(T));
    }
  }
}

template <typename T>
void put_le(std::ofstream& out, T v) {
  const T le = to_le(v);
  out.write(reinterpret_cast<const char*>(&le), sizeof(T));
}

/// Stores `v` little-endian at `p` — for assembling a header buffer in
/// memory when its checksum must cover the header bytes themselves.
template <typename T>
void store_le_at(std::byte* p, T v) {
  const T le = to_le(v);
  std::memcpy(p, &le, sizeof(T));
}

template <typename T>
T read_le_at(const std::byte* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return from_le(v);
}

inline void write_zeros(std::ofstream& out, std::uint64_t count) {
  static constexpr std::array<char, 64> zeros{};
  while (count > 0) {
    const std::uint64_t n = std::min<std::uint64_t>(count, zeros.size());
    out.write(zeros.data(), static_cast<std::streamsize>(n));
    count -= n;
  }
}

template <typename T>
std::vector<T> decode_array_le(const std::byte* p, std::uint64_t count) {
  std::vector<T> out(static_cast<std::size_t>(count));
  if (count == 0) return out;
  std::memcpy(out.data(), p, static_cast<std::size_t>(count) * sizeof(T));
  if constexpr (!kLittleEndian) {
    for (auto& v : out) v = from_le(v);
  }
  return out;
}

}  // namespace gclus::io::wire
