// Compressed sparse row (CSR) representation of an unweighted, undirected
// graph — the input domain of every algorithm in the paper.
//
// Invariants (established by GraphBuilder and checked in debug builds):
//   * adjacency lists are sorted and duplicate-free,
//   * no self-loops,
//   * symmetry: v appears in adj(u) iff u appears in adj(v).
// Both directions of each undirected edge are stored, so the adjacency
// array has 2m entries for m undirected edges.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace gclus {

class Graph {
 public:
  Graph() = default;

  /// Takes ownership of prebuilt CSR arrays.  `offsets` has n+1 entries;
  /// `neighbors[offsets[u]..offsets[u+1])` is adj(u), sorted ascending.
  Graph(std::vector<EdgeId> offsets, std::vector<NodeId> neighbors);

  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of *undirected* edges.
  [[nodiscard]] EdgeId num_edges() const { return neighbors_.size() / 2; }

  /// Number of directed half-edges (CSR entries), i.e. 2·num_edges().
  [[nodiscard]] EdgeId num_half_edges() const { return neighbors_.size(); }

  [[nodiscard]] std::size_t degree(NodeId u) const {
    GCLUS_DCHECK(u < num_nodes());
    return static_cast<std::size_t>(offsets_[u + 1] - offsets_[u]);
  }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    GCLUS_DCHECK(u < num_nodes());
    return {neighbors_.data() + offsets_[u],
            neighbors_.data() + offsets_[u + 1]};
  }

  /// True if the (undirected) edge {u, v} exists.  O(log deg(u)).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  [[nodiscard]] const std::vector<EdgeId>& offsets() const { return offsets_; }
  [[nodiscard]] const std::vector<NodeId>& neighbor_array() const {
    return neighbors_;
  }

  /// Approximate heap footprint in bytes (for the MR global-memory budget).
  [[nodiscard]] std::size_t memory_bytes() const {
    return offsets_.size() * sizeof(EdgeId) +
           neighbors_.size() * sizeof(NodeId);
  }

  /// Validates all CSR invariants (sortedness, symmetry, no loops).
  /// O(m log) — intended for tests and debug assertions, not hot paths.
  [[nodiscard]] bool validate() const;

 private:
  std::vector<EdgeId> offsets_;
  std::vector<NodeId> neighbors_;
};

}  // namespace gclus
