// Compressed sparse row (CSR) representation of an unweighted, undirected
// graph — the input domain of every algorithm in the paper.
//
// Invariants (established by GraphBuilder and checked in debug builds):
//   * adjacency lists are sorted and duplicate-free,
//   * no self-loops,
//   * symmetry: v appears in adj(u) iff u appears in adj(v).
// Both directions of each undirected edge are stored, so the adjacency
// array has 2m entries for m undirected edges.
//
// Storage modes.  A Graph either *owns* its CSR arrays (the historical
// mode: two heap vectors) or *views* externally owned storage — e.g. the
// offset/neighbor sections of an mmap-ed CSR v2 file (graph/io.hpp), used
// in place with zero copies.  A shared keepalive handle pins the external
// storage (the file mapping) for the graph's lifetime; copies of a
// non-owning Graph share the mapping instead of materializing it.  Every
// accessor goes through the view spans, so algorithms are oblivious to the
// mode — the registry corpus sweep is byte-identical either way.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace gclus {

class Graph {
 public:
  Graph() = default;

  /// Takes ownership of prebuilt CSR arrays.  `offsets` has n+1 entries;
  /// `neighbors[offsets[u]..offsets[u+1])` is adj(u), sorted ascending.
  Graph(std::vector<EdgeId> offsets, std::vector<NodeId> neighbors);

  /// Non-owning mode: uses `offsets`/`neighbors` in place.  `storage` is an
  /// opaque handle (e.g. a file mapping) that must keep the spans valid; it
  /// is held for the lifetime of this graph and of every copy of it.
  Graph(std::span<const EdgeId> offsets, std::span<const NodeId> neighbors,
        std::shared_ptr<const void> storage);

  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;
  ~Graph() = default;

  void swap(Graph& other) noexcept;

  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(offsets_view_.empty() ? 0
                                                     : offsets_view_.size() - 1);
  }

  /// Number of *undirected* edges.
  [[nodiscard]] EdgeId num_edges() const { return neighbors_view_.size() / 2; }

  /// Number of directed half-edges (CSR entries), i.e. 2·num_edges().
  [[nodiscard]] EdgeId num_half_edges() const { return neighbors_view_.size(); }

  [[nodiscard]] std::size_t degree(NodeId u) const {
    GCLUS_DCHECK(u < num_nodes());
    return static_cast<std::size_t>(offsets_view_[u + 1] - offsets_view_[u]);
  }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    GCLUS_DCHECK(u < num_nodes());
    return {neighbors_view_.data() + offsets_view_[u],
            neighbors_view_.data() + offsets_view_[u + 1]};
  }

  /// True if the (undirected) edge {u, v} exists.  O(log deg(u)).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  [[nodiscard]] std::span<const EdgeId> offsets() const {
    return offsets_view_;
  }
  [[nodiscard]] std::span<const NodeId> neighbor_array() const {
    return neighbors_view_;
  }

  /// False when the CSR arrays live in external storage (an mmap-ed file).
  [[nodiscard]] bool owns_storage() const { return storage_ == nullptr; }

  /// Approximate footprint of the CSR arrays in bytes (for the MR
  /// global-memory budget).  Identical for owning and mapped graphs: a
  /// mapped graph's pages are resident once touched.
  [[nodiscard]] std::size_t memory_bytes() const {
    return offsets_view_.size() * sizeof(EdgeId) +
           neighbors_view_.size() * sizeof(NodeId);
  }

  /// Validates all CSR invariants (sortedness, symmetry, no loops).
  /// O(m log) — intended for tests and debug assertions, not hot paths.
  [[nodiscard]] bool validate() const;

 private:
  // Owning mode: the vectors hold the data and the views point into them.
  // Non-owning mode: the vectors are empty, the views point into `storage_`.
  std::vector<EdgeId> offsets_;
  std::vector<NodeId> neighbors_;
  std::span<const EdgeId> offsets_view_;
  std::span<const NodeId> neighbors_view_;
  std::shared_ptr<const void> storage_;
};

inline void swap(Graph& a, Graph& b) noexcept { a.swap(b); }

}  // namespace gclus
