// Compressed, cache-aware CSR: Rice-coded delta-gap adjacency behind the
// same owning/non-owning storage contract as Graph.
//
// A CompressedGraph stores each vertex's sorted neighbor list as a first
// value plus (degree-1) gap codes in a single LSB-first bitstream, cutting
// the 4 bytes/half-edge of plain CSR to ~2 bits + log2(average gap) — a
// 2-4x memory-reach win on the sparse graphs the paper targets.  An
// optional degree-descending relabeling improves locality; the permutation
// and its inverse are kept so the *logical* node ids never change: every
// accessor speaks original ids, so algorithm output on a compressed graph
// is byte-identical to the plain-CSR run with zero per-algorithm changes.
//
// Physical layout (six byte sections, shared by memory and the CSR v2
// compressed file mode in graph/io):
//
//   index     n packed (degree_bits + local_bits)-bit slots, one per
//             storage vertex: the low degree_bits are the degree, the
//             high local_bits the bit offset of the vertex's code
//             relative to its superblock anchor.  Interleaving both
//             per-vertex fields into one slot makes a random neighbor
//             lookup touch ONE index cache line instead of two, so the
//             dependent-load chain to the adjacency stream is as short
//             as plain CSR's offsets->neighbors chase.  (Stored at the
//             file format's degrees_pos; the locals section is empty.)
//   anchors   one u64 per 64-vertex superblock: absolute bit position of
//             the superblock's first code in the adjacency stream
//   adj       the Rice bitstream, encoded in independent 4096-vertex
//             chunks each padded to a byte boundary (so parallel encode
//             writes byte-exclusive ranges and is byte-identical at any
//             thread count)
//   perm/inv  original->storage / storage->original u32 maps; omitted
//             (empty) when the relabeling is the identity or (kAuto)
//             when the relabeled stream's savings do not pay for them
//
// Per-vertex code: the first neighbor is Rice(k_first) of either the raw
// storage id (mode 0) or the zigzag of (id - vertex) (mode 1), whichever
// costs fewer total bits for the graph; each later neighbor is
// Rice(k_gap) of (gap - 1).  Rice parameters are chosen by exact cost
// evaluation, so encoding is deterministic.  A unary quotient is capped at
// 15 ones; longer values escape to 40 raw bits.  Every bitstream section
// carries 8 guard bytes so the decoder's single unaligned 64-bit peek per
// value never reads out of bounds.
//
// Neighbor order: decode yields storage-ascending ids mapped through inv,
// i.e. an arbitrary (but fixed) order in original-id space.  Consumers
// must be neighbor-order-independent — the growth engine and parallel BFS
// are (commutative min-reductions); order-dependent code paths
// (multi_source_bfs) must use decompress(), which re-sorts each list and
// reproduces the original CSR arrays byte-for-byte.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <utility>

#include "common/check.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"
#include "graph/wire.hpp"

namespace gclus {

class ThreadPool;

namespace cz {

/// Format constants (fixed, not parameters — the file records only the
/// per-graph Rice/width choices).
inline constexpr std::uint32_t kSuperblock = 64;   // vertices per anchor
inline constexpr std::uint32_t kChunk = 4096;      // vertices per encode unit
inline constexpr unsigned kMaxQ = 15;              // unary quotient cap
inline constexpr unsigned kEscapeBits = 40;        // raw escape value width
inline constexpr unsigned kMaxK = 24;              // largest Rice parameter
inline constexpr std::uint64_t kGuardBytes = 8;    // bitstream over-read pad

/// Loads 64 bits at bit position `bit` of an LSB-first bitstream.  The
/// result has >= 57 valid stream bits in its low end; callers never
/// consume more than 56 per peek (escape: 15 + 40 = 55).
inline std::uint64_t peek64(const std::byte* base, std::uint64_t bit) {
  std::uint64_t w;
  std::memcpy(&w, base + (bit >> 3), sizeof w);
  return io::wire::from_le(w) >> (bit & 7);
}

inline constexpr std::uint64_t low_mask(unsigned bits) {
  return bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
}

/// Bits a Rice(k) code of `v` occupies.
inline constexpr std::uint64_t rice_len(std::uint64_t v, unsigned k) {
  const std::uint64_t q = v >> k;
  return q < kMaxQ ? q + 1 + k : kMaxQ + kEscapeBits;
}

/// Decodes one Rice(k) value at `bit`, advancing it.  Well-defined for any
/// bit pattern (corrupt streams produce wrong values, caught by the
/// loader's structural validation, never out-of-bounds reads — guard
/// bytes bound the peek).
inline std::uint64_t rice_decode(const std::byte* base, std::uint64_t& bit,
                                 unsigned k) {
  const std::uint64_t w = peek64(base, bit);
  const unsigned q = static_cast<unsigned>(std::countr_one(w));
  if (q >= kMaxQ) {
    const std::uint64_t raw = peek64(base, bit + kMaxQ) & low_mask(kEscapeBits);
    bit += kMaxQ + kEscapeBits;
    return raw;
  }
  bit += q + 1 + k;
  return (std::uint64_t{q} << k) | ((w >> (q + 1)) & low_mask(k));
}

inline constexpr std::uint64_t zigzag(std::int64_t d) {
  return (static_cast<std::uint64_t>(d) << 1) ^
         static_cast<std::uint64_t>(d >> 63);
}

inline constexpr std::int64_t unzigzag(std::uint64_t z) {
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

}  // namespace cz

/// Per-graph encoding choices, persisted verbatim in the CSR v2 compressed
/// parameter block.
struct CompressedParams {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_half_edges = 0;
  std::uint8_t first_mode = 0;   // 0: raw first id, 1: zigzag(id - vertex)
  std::uint8_t k_first = 0;      // Rice parameter of first-neighbor codes
  std::uint8_t k_gap = 0;        // Rice parameter of gap codes
  bool relabeled = false;        // perm/inv sections present
  std::uint32_t degree_bits = 0; // degree field width in an index slot (<= 32)
  std::uint32_t local_bits = 0;  // superblock-local offset width (<= 56)
  std::uint64_t adj_bytes = 0;   // adjacency stream bytes (chunk-padded,
                                 // excluding the guard)
};

class CompressedGraph {
 public:
  CompressedGraph() = default;

  /// Non-owning over externally pinned sections (an mmap-ed file or an
  /// owned buffer wrapped by compress()).  Spans must include each
  /// bitstream section's guard bytes.  `storage` keeps them alive.
  CompressedGraph(CompressedParams params, std::span<const std::byte> degrees,
                  std::span<const std::byte> anchors,
                  std::span<const std::byte> locals,
                  std::span<const std::byte> adj,
                  std::span<const std::byte> perm,
                  std::span<const std::byte> inv,
                  std::shared_ptr<const void> storage);

  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(params_.num_nodes);
  }
  [[nodiscard]] EdgeId num_edges() const { return params_.num_half_edges / 2; }
  [[nodiscard]] EdgeId num_half_edges() const {
    return params_.num_half_edges;
  }
  [[nodiscard]] bool relabeled() const { return params_.relabeled; }
  [[nodiscard]] const CompressedParams& params() const { return params_; }

  /// Storage id of original vertex `u` (identity when not relabeled).
  [[nodiscard]] NodeId to_storage(NodeId u) const {
    GCLUS_DCHECK(u < num_nodes());
    if (!params_.relabeled) return u;
    return io::wire::read_le_at<NodeId>(perm_.data() +
                                        std::size_t{u} * sizeof(NodeId));
  }

  /// Original id of storage vertex `s` (identity when not relabeled).
  [[nodiscard]] NodeId to_original(NodeId s) const {
    GCLUS_DCHECK(s < num_nodes());
    if (!params_.relabeled) return s;
    return io::wire::read_le_at<NodeId>(inv_.data() +
                                        std::size_t{s} * sizeof(NodeId));
  }

  [[nodiscard]] std::size_t degree(NodeId u) const {
    return storage_degree(to_storage(u));
  }

  /// Degree field of storage vertex s's index slot.  The slot's low
  /// degree_bits are the degree, the high local_bits the superblock-local
  /// code offset; both peeks land on the same cache line.
  [[nodiscard]] std::size_t storage_degree(NodeId s) const {
    GCLUS_DCHECK(s < num_nodes());
    const unsigned slot = params_.degree_bits + params_.local_bits;
    return static_cast<std::size_t>(
        cz::peek64(degrees_.data(), std::uint64_t{s} * slot) &
        cz::low_mask(params_.degree_bits));
  }

  /// Absolute bit position of storage vertex s's code in the adjacency
  /// stream.
  [[nodiscard]] std::uint64_t code_start(NodeId s) const {
    const std::uint64_t anchor = io::wire::read_le_at<std::uint64_t>(
        anchors_.data() + std::size_t{s / cz::kSuperblock} * 8);
    const unsigned slot = params_.degree_bits + params_.local_bits;
    const std::uint64_t local =
        cz::peek64(degrees_.data(),
                   std::uint64_t{s} * slot + params_.degree_bits) &
        cz::low_mask(params_.local_bits);
    return anchor + local;
  }

  /// Hints the cache lines a storage_neighbors(s) call is about to touch:
  /// the index slot and the (anchor + mean-rate estimated) code bytes.
  /// Decode is a serial bit-chain, so without lookahead an out-of-order
  /// core cannot overlap the cache misses of consecutive frontier
  /// vertices the way it does for plain CSR's independent neighbor
  /// loads; issuing these a few vertices ahead restores that memory-level
  /// parallelism.  The code estimate is within one superblock's drift of
  /// the true position — close enough for a prefetch, and harmlessly
  /// wrong otherwise.
  void prefetch_storage_neighbors(NodeId s) const {
    const unsigned slot = params_.degree_bits + params_.local_bits;
    const std::uint64_t slot_bit = std::uint64_t{s} * slot;
    __builtin_prefetch(degrees_.data() + slot_bit / 8, 0, 3);
    const std::uint64_t anchor = io::wire::read_le_at<std::uint64_t>(
        anchors_.data() + std::size_t{s / cz::kSuperblock} * 8);
    const std::uint64_t est =
        anchor + (s % cz::kSuperblock) * mean_vertex_bits_;
    __builtin_prefetch(adj_.data() + est / 8, 0, 3);
  }

  class NeighborSentinel {};

  /// Zero-allocation decode cursor over one neighbor list, yielding
  /// original ids in storage-ascending order.  Each value is decoded from
  /// one unconditional 64-bit peek at the current bit position: the peek
  /// is an L1 hit after the first value, and having no refill branch in
  /// the loop body keeps the branch predictor clean — measured faster
  /// than a register-window cursor with a data-dependent refill check,
  /// whose ~1-in-3 mispredicted refills flush the pipeline and serialize
  /// consecutive vertices' otherwise independent decode chains.
  class NeighborIterator {
   public:
    [[nodiscard]] NodeId operator*() const { return cur_; }
    NeighborIterator& operator++() {
      if (--remaining_ > 0) {
        prev_ += static_cast<NodeId>(decode_one(k_gap_) + 1);
        cur_ = map(prev_);
      }
      return *this;
    }
    friend bool operator!=(const NeighborIterator& it, NeighborSentinel) {
      return it.remaining_ != 0;
    }
    friend bool operator==(const NeighborIterator& it, NeighborSentinel s) {
      return !(it != s);
    }

   private:
    friend class CompressedGraph;
    [[nodiscard]] NodeId map(NodeId s) const {
      if (inv_ == nullptr) return s;
      NodeId v;
      std::memcpy(&v, inv_ + std::size_t{s} * sizeof(NodeId), sizeof v);
      return io::wire::from_le(v);
    }

    /// Decodes one Rice(k) value at bit_, advancing it.  A peek yields
    /// >= 57 valid bits and the longest code is 55 (escape: 15 + 40), so
    /// one window always holds a whole code; the only branch is the
    /// rarely-taken (and well-predicted) escape test.
    std::uint64_t decode_one(unsigned k) {
      const std::uint64_t w = cz::peek64(adj_, bit_);
      const unsigned q = static_cast<unsigned>(std::countr_one(w));
      if (q >= cz::kMaxQ) {
        bit_ += cz::kMaxQ + cz::kEscapeBits;
        return (w >> cz::kMaxQ) & cz::low_mask(cz::kEscapeBits);
      }
      bit_ += q + 1 + k;
      return (std::uint64_t{q} << k) | ((w >> (q + 1)) & cz::low_mask(k));
    }

    const std::byte* adj_ = nullptr;
    const std::byte* inv_ = nullptr;  // null when not relabeled
    std::uint64_t bit_ = 0;     // absolute position of the next code
    std::size_t remaining_ = 0;
    NodeId prev_ = 0;  // last decoded storage id
    NodeId cur_ = 0;   // original id of the current neighbor
    unsigned k_gap_ = 0;
  };

  class NeighborRange {
   public:
    [[nodiscard]] NeighborIterator begin() const { return it_; }
    [[nodiscard]] NeighborSentinel end() const { return {}; }

   private:
    friend class CompressedGraph;
    NeighborIterator it_;
  };

  /// Neighbors of original vertex `u`.
  [[nodiscard]] NeighborRange neighbors(NodeId u) const {
    return storage_neighbors(to_storage(u));
  }

  [[nodiscard]] NeighborRange storage_neighbors(NodeId s) const {
    NeighborRange r;
    NeighborIterator& it = r.it_;
    it.adj_ = adj_.data();
    it.inv_ = params_.relabeled ? inv_.data() : nullptr;
    it.k_gap_ = params_.k_gap;
    it.remaining_ = storage_degree(s);
    if (it.remaining_ == 0) return r;
    it.bit_ = code_start(s);
    const std::uint64_t v0 = it.decode_one(params_.k_first);
    it.prev_ = params_.first_mode == 0
                   ? static_cast<NodeId>(v0)
                   : static_cast<NodeId>(static_cast<std::int64_t>(s) +
                                         cz::unzigzag(v0));
    it.cur_ = it.map(it.prev_);
    return r;
  }

  /// Decodes the neighbor lists of original vertices `u0` and `u1` in one
  /// interleaved loop, calling `f0(v)` / `f1(v)` with original ids.  Rice
  /// decoding is a serial bit-position chain *within* a list, but the two
  /// lists' chains are independent (the index gives each its own start),
  /// so alternating their operations in program order lets an out-of-order
  /// core run both chains concurrently — measured ~1.4x over decoding the
  /// same two lists back to back, which is most of the gap to plain CSR's
  /// independent neighbor loads.  Frontier scans pair adjacent vertices
  /// through visit_neighbors2 below; callbacks must be order-independent
  /// across the two lists (claims are commutative minima, so they are).
  template <class F0, class F1>
  void for_neighbors2(NodeId u0, NodeId u1, F0&& f0, F1&& f1) const {
    const std::byte* const adj = adj_.data();
    const std::byte* const inv = params_.relabeled ? inv_.data() : nullptr;
    const auto map = [inv](NodeId s) {
      if (inv == nullptr) return s;
      NodeId v;
      std::memcpy(&v, inv + std::size_t{s} * sizeof(NodeId), sizeof v);
      return io::wire::from_le(v);
    };
    const unsigned kf = params_.k_first;
    const unsigned kg = params_.k_gap;
    const NodeId s0 = to_storage(u0);
    const NodeId s1 = to_storage(u1);
    std::size_t r0 = storage_degree(s0);
    std::size_t r1 = storage_degree(s1);
    std::uint64_t bit0 = 0, bit1 = 0;
    NodeId prev0 = 0, prev1 = 0;
    const auto start = [&](NodeId s, std::uint64_t& bit, NodeId& prev) {
      bit = code_start(s);
      const std::uint64_t v0 = cz::rice_decode(adj, bit, kf);
      prev = params_.first_mode == 0
                 ? static_cast<NodeId>(v0)
                 : static_cast<NodeId>(static_cast<std::int64_t>(s) +
                                       cz::unzigzag(v0));
    };
    if (r0 != 0) {
      start(s0, bit0, prev0);
      f0(map(prev0));
    }
    if (r1 != 0) {
      start(s1, bit1, prev1);
      f1(map(prev1));
    }
    while (r0 > 1 && r1 > 1) {
      prev0 += static_cast<NodeId>(cz::rice_decode(adj, bit0, kg) + 1);
      prev1 += static_cast<NodeId>(cz::rice_decode(adj, bit1, kg) + 1);
      f0(map(prev0));
      f1(map(prev1));
      --r0;
      --r1;
    }
    for (; r0 > 1; --r0) {
      prev0 += static_cast<NodeId>(cz::rice_decode(adj, bit0, kg) + 1);
      f0(map(prev0));
    }
    for (; r1 > 1; --r1) {
      prev1 += static_cast<NodeId>(cz::rice_decode(adj, bit1, kg) + 1);
      f1(map(prev1));
    }
  }

  [[nodiscard]] bool owns_storage() const { return false; }

  /// Total bytes of all sections (the compressed footprint plain CSR's
  /// memory_bytes() is compared against).
  [[nodiscard]] std::size_t memory_bytes() const {
    return degrees_.size() + anchors_.size() + locals_.size() + adj_.size() +
           perm_.size() + inv_.size();
  }

  /// Materializes the original plain Graph: decode, map back to original
  /// ids, sort each list — byte-identical to the CSR arrays compress()
  /// was given.
  [[nodiscard]] Graph decompress(ThreadPool& pool) const;
  [[nodiscard]] Graph decompress() const;

  /// Full structural + semantic validation (decodes everything; O(m log)).
  [[nodiscard]] bool validate() const;

  // Raw section accessors for the CSR v2 serializer.  Bitstream sections
  // (degrees, locals, adj) include their guard bytes.
  [[nodiscard]] std::span<const std::byte> degrees_section() const {
    return degrees_;
  }
  [[nodiscard]] std::span<const std::byte> anchors_section() const {
    return anchors_;
  }
  [[nodiscard]] std::span<const std::byte> locals_section() const {
    return locals_;
  }
  [[nodiscard]] std::span<const std::byte> adj_section() const { return adj_; }
  [[nodiscard]] std::span<const std::byte> perm_section() const {
    return perm_;
  }
  [[nodiscard]] std::span<const std::byte> inv_section() const { return inv_; }

 private:
  CompressedParams params_;
  std::span<const std::byte> degrees_;
  std::span<const std::byte> anchors_;
  std::span<const std::byte> locals_;
  std::span<const std::byte> adj_;
  std::span<const std::byte> perm_;
  std::span<const std::byte> inv_;
  std::uint64_t mean_vertex_bits_ = 0;  // adj bits / n, for prefetch estimates
  std::shared_ptr<const void> storage_;
};

/// Section byte sizes implied by a parameter block (bitstream sections
/// include the guard).  Shared by the encoder, serializer, and loader so
/// bounds checks cannot drift from the writer.
struct CompressedSectionSizes {
  std::uint64_t degrees = 0;
  std::uint64_t anchors = 0;
  std::uint64_t locals = 0;
  std::uint64_t adj = 0;
  std::uint64_t perm = 0;
  std::uint64_t inv = 0;
};
[[nodiscard]] CompressedSectionSizes compressed_section_sizes(
    const CompressedParams& p);

enum class RelabelMode {
  /// Cost-based: the degree-descending stable order is kept only when its
  /// exact stream savings exceed the 64 bits/vertex of perm/inv maps;
  /// otherwise storage order is the identity and decode has no per-
  /// neighbor indirection.
  kAuto,
  kNever,   ///< keep input ids as storage ids
  kAlways,  ///< force the degree-descending order (ablations, tests)
};

struct CompressOptions {
  RelabelMode relabel = RelabelMode::kAuto;
};

/// Compresses `g`.  Deterministic: the produced sections are byte-identical
/// at any thread count (fixed 4096-vertex chunks, exact-cost parameter
/// selection, commutative integer reductions only).
[[nodiscard]] CompressedGraph compress(const Graph& g, ThreadPool& pool,
                                       const CompressOptions& opts = {});
[[nodiscard]] CompressedGraph compress(const Graph& g,
                                       const CompressOptions& opts = {});

/// Cheap structural validation for loaders: parameter ranges, perm/inv
/// bijection, degree sum, and a full decode walk checking index
/// consistency and id ranges — a flipped bit anywhere in the sections
/// comes back as kDataLoss instead of corrupting an algorithm run.
[[nodiscard]] Status validate_compressed_structure(const CompressedGraph& g,
                                                   ThreadPool& pool);

/// Representation-generic pairwise neighbor visit: scan loops that walk
/// two vertices at a time call this so the compressed overload can
/// interleave the two decode chains (see for_neighbors2).  For any other
/// representation it is exactly the two plain loops, in order — identical
/// codegen to visiting the vertices one after the other.
template <class G, class F0, class F1>
inline void visit_neighbors2(const G& g, NodeId u0, NodeId u1, F0&& f0,
                             F1&& f1) {
  for (const NodeId v : g.neighbors(u0)) f0(v);
  for (const NodeId v : g.neighbors(u1)) f1(v);
}

template <class F0, class F1>
inline void visit_neighbors2(const CompressedGraph& g, NodeId u0, NodeId u1,
                             F0&& f0, F1&& f1) {
  g.for_neighbors2(u0, u1, std::forward<F0>(f0), std::forward<F1>(f1));
}

}  // namespace gclus
