#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/connectivity.hpp"
#include "graph/subgraph.hpp"

namespace gclus::gen {

namespace {

/// Packs an edge into one 64-bit key for dedup sets.
std::uint64_t edge_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph path(NodeId n) {
  GCLUS_CHECK(n >= 1);
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return b.build();
}

Graph cycle(NodeId n) {
  GCLUS_CHECK(n >= 3, "a cycle needs at least 3 nodes");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  return b.build();
}

Graph grid(NodeId rows, NodeId cols) {
  GCLUS_CHECK(rows >= 1 && cols >= 1);
  const NodeId n = rows * cols;
  GraphBuilder b(n);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph torus(NodeId rows, NodeId cols) {
  GCLUS_CHECK(rows >= 3 && cols >= 3, "torus needs both sides >= 3");
  const NodeId n = rows * cols;
  GraphBuilder b(n);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % cols));
      b.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return b.build();
}

Graph complete(NodeId n) {
  GCLUS_CHECK(n >= 1);
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

Graph star(NodeId n) {
  GCLUS_CHECK(n >= 1);
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph binary_tree(NodeId n) {
  GCLUS_CHECK(n >= 1);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    const std::uint64_t l = 2ULL * i + 1, r = 2ULL * i + 2;
    if (l < n) b.add_edge(i, static_cast<NodeId>(l));
    if (r < n) b.add_edge(i, static_cast<NodeId>(r));
  }
  return b.build();
}

Graph random_tree(NodeId n, std::uint64_t seed) {
  GCLUS_CHECK(n >= 1);
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) {
    b.add_edge(i, static_cast<NodeId>(rng.next_below(i)));
  }
  return b.build();
}

Graph erdos_renyi(NodeId n, EdgeId m, std::uint64_t seed) {
  GCLUS_CHECK(n >= 2);
  const auto max_edges =
      static_cast<EdgeId>(n) * (static_cast<EdgeId>(n) - 1) / 2;
  GCLUS_CHECK(m <= max_edges, "requested more edges than K_n has");
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);
  GraphBuilder b(n);
  while (seen.size() < m) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) b.add_edge(u, v);
  }
  return b.build();
}

Graph rmat(NodeId n_pow2, EdgeId m, std::uint64_t seed, double a, double b,
           double c) {
  GCLUS_CHECK(n_pow2 >= 2 && (n_pow2 & (n_pow2 - 1)) == 0,
              "R-MAT needs a power-of-two node count");
  GCLUS_CHECK(a + b + c < 1.0 && a > 0 && b >= 0 && c >= 0);
  unsigned levels = 0;
  while ((NodeId{1} << levels) < n_pow2) ++levels;

  Rng rng(seed);
  GraphBuilder builder(n_pow2);
  for (EdgeId e = 0; e < m; ++e) {
    NodeId u = 0, v = 0;
    for (unsigned l = 0; l < levels; ++l) {
      const double r = rng.next_double();
      // Quadrant choice with slight per-level noise, per the original
      // R-MAT recipe, to avoid pathological degree ties.
      const double noise = 0.95 + 0.1 * rng.next_double();
      const double aa = a * noise, bb = b * noise, cc = c * noise;
      u <<= 1;
      v <<= 1;
      if (r < aa) {
        // top-left: no bits set
      } else if (r < aa + bb) {
        v |= 1;
      } else if (r < aa + bb + cc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    builder.add_edge(u, v);  // builder dedups and drops self-loops
  }
  return builder.build();
}

Graph preferential_attachment(NodeId n, NodeId attach, std::uint64_t seed) {
  GCLUS_CHECK(attach >= 1 && n > attach);
  Rng rng(seed);
  // `targets` holds one entry per half-edge endpoint, so uniform sampling
  // from it is degree-proportional sampling.
  std::vector<NodeId> targets;
  targets.reserve(static_cast<std::size_t>(n) * attach * 2);
  GraphBuilder b(n);
  // Seed clique over the first attach+1 nodes keeps early sampling sane.
  for (NodeId u = 0; u <= attach; ++u) {
    for (NodeId v = u + 1; v <= attach; ++v) {
      b.add_edge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (NodeId u = attach + 1; u < n; ++u) {
    std::unordered_set<NodeId> picked;
    while (picked.size() < attach) {
      const NodeId v = targets[rng.next_below(targets.size())];
      if (v != u) picked.insert(v);
    }
    for (const NodeId v : picked) {
      b.add_edge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return b.build();
}

Graph road_like(NodeId rows, NodeId cols, double drop_p, double shortcut_p,
                std::uint64_t seed) {
  GCLUS_CHECK(rows >= 2 && cols >= 2);
  GCLUS_CHECK(drop_p >= 0.0 && drop_p < 1.0);
  Rng rng(seed);
  const NodeId n = rows * cols;
  GraphBuilder b(n);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols && !rng.next_bool(drop_p)) {
        b.add_edge(id(r, c), id(r, c + 1));
      }
      if (r + 1 < rows && !rng.next_bool(drop_p)) {
        b.add_edge(id(r, c), id(r + 1, c));
      }
      // Occasional diagonal shortcut: mimics road networks' local
      // triangulation without shrinking the global diameter much.
      if (r + 1 < rows && c + 1 < cols && rng.next_bool(shortcut_p)) {
        b.add_edge(id(r, c), id(r + 1, c + 1));
      }
    }
  }
  Graph g = b.build();
  // Dropping edges fragments the grid; the benchmark datasets are
  // connected, so keep the giant component only.
  return largest_component(g).graph;
}

Graph expander(NodeId n, unsigned degree, std::uint64_t seed) {
  GCLUS_CHECK(n >= 4);
  GCLUS_CHECK(degree >= 2 && degree % 2 == 0,
              "expander degree must be even (union of random cycles)");
  Rng rng(seed);
  GraphBuilder b(n);
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  for (unsigned d = 0; d < degree / 2; ++d) {
    // Random Hamiltonian cycle: Fisher-Yates shuffle, then link the ring.
    for (NodeId i = n - 1; i > 0; --i) {
      const auto j = static_cast<NodeId>(rng.next_below(i + 1));
      std::swap(perm[i], perm[j]);
    }
    for (NodeId i = 0; i < n; ++i) {
      b.add_edge(perm[i], perm[(i + 1) % n]);
    }
  }
  return b.build();
}

Graph expander_with_path(NodeId n, NodeId tail, unsigned degree,
                         std::uint64_t seed) {
  GCLUS_CHECK(tail < n && n - tail >= 4);
  const NodeId core = n - tail;
  Graph exp = expander(core, degree, seed);
  return with_tail(exp, tail, /*attach_at=*/0);
}

Graph ring_of_cliques(NodeId num_cliques, NodeId clique_size) {
  GCLUS_CHECK(num_cliques >= 3 && clique_size >= 2);
  const NodeId n = num_cliques * clique_size;
  GraphBuilder b(n);
  for (NodeId k = 0; k < num_cliques; ++k) {
    const NodeId base = k * clique_size;
    for (NodeId u = 0; u < clique_size; ++u)
      for (NodeId v = u + 1; v < clique_size; ++v)
        b.add_edge(base + u, base + v);
    // Bridge: last node of clique k to first node of clique k+1.
    const NodeId next_base = ((k + 1) % num_cliques) * clique_size;
    b.add_edge(base + clique_size - 1, next_base);
  }
  return b.build();
}

Graph with_tail(const Graph& g, NodeId tail_len, NodeId attach_at) {
  GCLUS_CHECK(attach_at < g.num_nodes());
  const NodeId n = g.num_nodes();
  GraphBuilder b(n + tail_len);
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) b.add_edge(u, v);
    }
  }
  NodeId prev = attach_at;
  for (NodeId i = 0; i < tail_len; ++i) {
    b.add_edge(prev, n + i);
    prev = n + i;
  }
  return b.build();
}

Graph disjoint_union(const Graph& a, const Graph& b) {
  const NodeId na = a.num_nodes();
  GraphBuilder builder(na + b.num_nodes());
  for (NodeId u = 0; u < na; ++u) {
    for (const NodeId v : a.neighbors(u)) {
      if (u < v) builder.add_edge(u, v);
    }
  }
  for (NodeId u = 0; u < b.num_nodes(); ++u) {
    for (const NodeId v : b.neighbors(u)) {
      if (u < v) builder.add_edge(na + u, na + v);
    }
  }
  return builder.build();
}

}  // namespace gclus::gen
