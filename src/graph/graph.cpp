#include "graph/graph.hpp"

#include <algorithm>
#include <utility>

namespace gclus {

Graph::Graph(std::vector<EdgeId> offsets, std::vector<NodeId> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  GCLUS_CHECK(!offsets_.empty(), "offsets must have n+1 entries");
  GCLUS_CHECK(offsets_.front() == 0);
  GCLUS_CHECK(offsets_.back() == neighbors_.size());
  offsets_view_ = offsets_;
  neighbors_view_ = neighbors_;
}

Graph::Graph(std::span<const EdgeId> offsets, std::span<const NodeId> neighbors,
             std::shared_ptr<const void> storage)
    : offsets_view_(offsets),
      neighbors_view_(neighbors),
      storage_(std::move(storage)) {
  GCLUS_CHECK(storage_ != nullptr,
              "non-owning Graph requires a storage keepalive handle");
  GCLUS_CHECK(!offsets_view_.empty(), "offsets must have n+1 entries");
  GCLUS_CHECK(offsets_view_.front() == 0);
  GCLUS_CHECK(offsets_view_.back() == neighbors_view_.size());
}

Graph::Graph(const Graph& other)
    : offsets_(other.offsets_),
      neighbors_(other.neighbors_),
      storage_(other.storage_) {
  if (other.owns_storage()) {
    offsets_view_ = offsets_;
    neighbors_view_ = neighbors_;
  } else {
    // Copies of a mapped graph share the mapping — no materialization.
    offsets_view_ = other.offsets_view_;
    neighbors_view_ = other.neighbors_view_;
  }
}

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) {
    Graph tmp(other);
    swap(tmp);
  }
  return *this;
}

Graph::Graph(Graph&& other) noexcept { swap(other); }

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this != &other) {
    Graph tmp(std::move(other));
    swap(tmp);
  }
  return *this;
}

void Graph::swap(Graph& other) noexcept {
  // Vector buffers are heap-allocated and pointer-stable under swap, so
  // views into them remain valid and simply trade owners alongside them.
  offsets_.swap(other.offsets_);
  neighbors_.swap(other.neighbors_);
  std::swap(offsets_view_, other.offsets_view_);
  std::swap(neighbors_view_, other.neighbors_view_);
  storage_.swap(other.storage_);
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

bool Graph::validate() const {
  const NodeId n = num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    if (offsets_view_[u] > offsets_view_[u + 1]) return false;
    const auto adj = neighbors(u);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      const NodeId v = adj[i];
      if (v >= n) return false;
      if (v == u) return false;                      // self-loop
      if (i > 0 && adj[i - 1] >= v) return false;    // unsorted or duplicate
      if (!has_edge(v, u)) return false;             // asymmetric
    }
  }
  return true;
}

}  // namespace gclus
