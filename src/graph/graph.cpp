#include "graph/graph.hpp"

#include <algorithm>

namespace gclus {

Graph::Graph(std::vector<EdgeId> offsets, std::vector<NodeId> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  GCLUS_CHECK(!offsets_.empty(), "offsets must have n+1 entries");
  GCLUS_CHECK(offsets_.front() == 0);
  GCLUS_CHECK(offsets_.back() == neighbors_.size());
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

bool Graph::validate() const {
  const NodeId n = num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    if (offsets_[u] > offsets_[u + 1]) return false;
    const auto adj = neighbors(u);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      const NodeId v = adj[i];
      if (v >= n) return false;
      if (v == u) return false;                      // self-loop
      if (i > 0 && adj[i - 1] >= v) return false;    // unsorted or duplicate
      if (!has_edge(v, u)) return false;             // asymmetric
    }
  }
  return true;
}

}  // namespace gclus
