// Edge-list to CSR construction.
//
// The builder accepts arbitrary (possibly duplicated, self-looped,
// one-directional) edge lists and normalizes them into the Graph
// invariants: symmetric, sorted, duplicate- and loop-free.
#pragma once

#include <utility>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace gclus {

class ThreadPool;

/// An undirected edge as a pair of endpoints.
using Edge = std::pair<NodeId, NodeId>;

class GraphBuilder {
 public:
  /// `num_nodes` fixes the node-id universe [0, num_nodes).
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Records an undirected edge {u, v}.  Self-loops and duplicates are
  /// tolerated here and removed in build().
  void add_edge(NodeId u, NodeId v) {
    GCLUS_CHECK(u < num_nodes_ && v < num_nodes_, "edge endpoint out of range");
    edges_.emplace_back(u, v);
  }

  void add_edges(const std::vector<Edge>& edges) {
    edges_.reserve(edges_.size() + edges.size());
    for (const auto& [u, v] : edges) add_edge(u, v);
  }

  /// Bulk move-in for large edge lists (the parallel parser's path): the
  /// endpoints are range-checked but the vector's buffer is adopted, not
  /// copied.  Only valid when no edges have been added yet.
  void adopt_edges(std::vector<Edge>&& edges) {
    GCLUS_CHECK(edges_.empty(), "adopt_edges requires an empty builder");
    for (const auto& [u, v] : edges) {
      GCLUS_CHECK(u < num_nodes_ && v < num_nodes_,
                  "edge endpoint out of range");
    }
    edges_ = std::move(edges);
  }

  [[nodiscard]] std::size_t num_pending_edges() const { return edges_.size(); }

  /// Builds the normalized CSR graph, consuming the accumulated edges.
  /// Large builds sort and scatter on `pool` (the no-argument form uses
  /// the process-global pool); the result is byte-identical for any pool.
  [[nodiscard]] Graph build();
  [[nodiscard]] Graph build(ThreadPool& pool);

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

/// One-shot convenience: normalize `edges` over [0, num_nodes) into a Graph.
[[nodiscard]] Graph build_graph(NodeId num_nodes,
                                const std::vector<Edge>& edges);

}  // namespace gclus
