#include "graph/properties.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/bfs.hpp"

namespace gclus {

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const NodeId n = g.num_nodes();
  if (n == 0) return s;
  s.min_degree = g.degree(0);
  for (NodeId u = 0; u < n; ++u) {
    const std::size_t d = g.degree(u);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
  }
  s.avg_degree = 2.0 * static_cast<double>(g.num_edges()) / n;
  return s;
}

Dist double_sweep_lower_bound(const Graph& g, NodeId start) {
  const BfsExtremum first = bfs_extremum(g, start);
  const BfsExtremum second = bfs_extremum(g, first.farthest_node);
  return second.eccentricity;
}

ExactDiameterResult exact_diameter(const Graph& g, NodeId start) {
  GCLUS_CHECK(g.num_nodes() > 0);
  ExactDiameterResult out;
  if (g.num_nodes() == 1) return out;

  // Double sweep: a -> u (farthest from a) -> w (farthest from u).
  const BfsExtremum from_start = bfs_extremum(g, start);
  GCLUS_CHECK(from_start.reached == g.num_nodes(),
              "exact_diameter requires a connected graph");
  const NodeId u = from_start.farthest_node;
  const auto dist_u = bfs_distances(g, u);
  out.bfs_runs = 2;

  NodeId w = u;
  Dist lb = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist_u[v] != kInfDist && dist_u[v] > lb) {
      lb = dist_u[v];
      w = v;
    }
  }

  // Root iFUB at a node halfway between u and w on some shortest path,
  // chosen to have small eccentricity.  On highly regular graphs (grids)
  // MANY nodes sit on shortest u–w paths and their eccentricities differ
  // wildly (boundary vs center), and a bad root makes iFUB scan half the
  // graph — so we sample a few midlevel candidates and keep the one with
  // the smallest eccentricity.
  const auto dist_w = bfs_distances(g, w);
  ++out.bfs_runs;
  std::vector<NodeId> midlevel;
  {
    const Dist want = lb / 2;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (dist_u[v] == want && dist_u[v] + dist_w[v] == lb) {
        midlevel.push_back(v);
      }
    }
    if (midlevel.empty()) {
      // Degenerate (lb == 0): fall back to u itself.
      midlevel.push_back(u);
    }
  }
  NodeId mid = midlevel.front();
  std::vector<Dist> dist_mid;
  {
    Dist best_ecc = kInfDist;
    const std::size_t candidates[] = {0, midlevel.size() / 4,
                                      midlevel.size() / 2,
                                      (3 * midlevel.size()) / 4,
                                      midlevel.size() - 1};
    NodeId prev = kInvalidNode;
    for (const std::size_t ci : candidates) {
      const NodeId cand = midlevel[ci];
      if (cand == prev) continue;
      prev = cand;
      auto d = bfs_distances(g, cand);
      ++out.bfs_runs;
      const Dist ecc = *std::max_element(d.begin(), d.end());
      if (ecc < best_ecc) {
        best_ecc = ecc;
        mid = cand;
        dist_mid = std::move(d);
      }
    }
  }
  const Dist ecc_mid =
      *std::max_element(dist_mid.begin(), dist_mid.end());

  // Fringe order: nodes grouped by distance from mid, descending.
  std::vector<std::vector<NodeId>> fringe(ecc_mid + 1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) fringe[dist_mid[v]].push_back(v);

  Dist best_lb = lb;
  // iFUB: while the trivial upper bound 2*i for the remaining fringe level
  // exceeds the lower bound, sweep that level's nodes.
  for (Dist i = ecc_mid; i > 0; --i) {
    if (best_lb >= 2 * i) break;
    for (const NodeId v : fringe[i]) {
      const BfsExtremum e = bfs_extremum(g, v);
      ++out.bfs_runs;
      best_lb = std::max(best_lb, e.eccentricity);
      if (best_lb >= 2 * i) break;  // level can no longer improve the bound
    }
  }
  out.diameter = best_lb;
  return out;
}

std::vector<Dist> all_eccentricities(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<Dist> ecc(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    ecc[v] = bfs_extremum(g, v).eccentricity;
  }
  return ecc;
}

}  // namespace gclus
