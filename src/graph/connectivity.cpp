#include "graph/connectivity.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/subgraph.hpp"

namespace gclus {

Components connected_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  Components out;
  out.label.assign(n, kInvalidNode);
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (out.label[s] != kInvalidNode) continue;
    const NodeId comp = out.count++;
    NodeId size = 0;
    stack.push_back(s);
    out.label[s] = comp;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      ++size;
      for (const NodeId v : g.neighbors(u)) {
        if (out.label[v] == kInvalidNode) {
          out.label[v] = comp;
          stack.push_back(v);
        }
      }
    }
    out.sizes.push_back(size);
  }
  return out;
}

ExtractedComponent largest_component(const Graph& g) {
  GCLUS_CHECK(g.num_nodes() > 0);
  const Components comps = connected_components(g);
  const NodeId best = static_cast<NodeId>(
      std::max_element(comps.sizes.begin(), comps.sizes.end()) -
      comps.sizes.begin());
  std::vector<NodeId> keep;
  keep.reserve(comps.sizes[best]);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (comps.label[v] == best) keep.push_back(v);
  }
  ExtractedComponent out;
  out.graph = induced_subgraph(g, keep);
  out.original_id = std::move(keep);
  return out;
}

}  // namespace gclus
