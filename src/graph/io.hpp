// Graph serialization and ingestion.
//
// Three on-disk representations:
//
//   * Edge-list text — the format of the SNAP/LAW datasets the paper uses:
//     one "u v" pair per line, '#'/'%' comments, arbitrary sparse ids.
//     Reading a *file* goes through a parallel parser (per-thread byte
//     chunks split on line boundaries, merged with the prefix-sum
//     machinery in par/) whose output is byte-identical to the serial
//     stream parser at any thread count.
//
//   * CSR v1 binary (legacy) — magic + n + m + raw arrays in host
//     endianness.  Kept for old dumps; the reader validates the header
//     against the file size and rejects truncated files.
//
//   * CSR v2 binary — the scalable format: fixed little-endian layout,
//     versioned header with explicit section positions, FNV-1a payload
//     checksum, 64-byte-aligned sections, and an optional weights section.
//     Loading can mmap the file and hand the offset/neighbor sections to
//     Graph *in place* (zero copy, non-owning storage mode), falling back
//     to read() on platforms without mmap.
//
// CSR v2 layout (all integers little-endian):
//
//   offset  size  field
//   0       8     magic "GCLUSCS2"
//   8       4     version (2)
//   12      4     flags (bit 0: weights section present)
//   16      8     n  (node count; offsets section has n+1 entries)
//   24      8     m  (directed half-edge count; 2x undirected edges)
//   32      8     offsets_pos    (byte position of the offsets section)
//   40      8     neighbors_pos
//   48      8     weights_pos    (0 when absent)
//   56      8     checksum (FNV-1a 64 over the payload sections, in order)
//   64      8     reserved (0)
//   ...           zero padding to offsets_pos
//   sections: offsets (n+1)*8B, neighbors m*4B, weights m*8B, each start
//   aligned to 64 bytes.
// Error handling: the `load_*`/`write_*` Status functions are the
// recoverable core — open/validation/write failures come back as a
// Status (kInvalidArgument: not a CSR v2 file; kDataLoss: truncated or
// checksum-mismatched; kIoError: the environment failed) instead of
// aborting, so a long-lived caller can reject one bad file and keep
// serving.  The historical abort-on-error entry points (load_csr_file,
// write_csr_file, ...) and the optional-returning try_* variants are thin
// wrappers over them.  Fault points "io.open", "io.mmap", "io.read",
// "io.write" (common/faultpoint.hpp) cover every environmental failure
// here; an injected "io.mmap" failure under CsrLoadMode::kAuto degrades
// to the read() path with byte-identical results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "graph/compressed.hpp"
#include "graph/graph.hpp"
#include "graph/weighted.hpp"

namespace gclus {
class ThreadPool;
}

namespace gclus::io {

// ---- edge-list text ---------------------------------------------------------

/// Parses an edge-list stream: one "u v" pair per line; lines starting
/// with '#' or '%' are comments; malformed lines are skipped.  Node ids
/// may be sparse; they are compacted to [0, n) in first-appearance order.
/// The graph is symmetrized and deduplicated.  Serial — the reference
/// semantics the parallel parser reproduces exactly.
[[nodiscard]] Graph read_edge_list(std::istream& in);

/// Parallel edge-list parser over an in-memory buffer: the text is split
/// into fixed-size byte chunks advanced to line boundaries, chunks parse
/// concurrently on `pool`, and the per-chunk edge lists merge in file
/// order via prefix sums — so the result (including node numbering) is
/// byte-identical to read_edge_list at any thread count.
[[nodiscard]] Graph parse_edge_list(std::string_view text, ThreadPool& pool);

/// Reads an edge-list file through parse_edge_list (mmap-ing the text when
/// possible); kIoError when the file cannot be opened or read.  The
/// one-argument form uses the process-global pool.
[[nodiscard]] StatusOr<Graph> load_edge_list(const std::string& path);
[[nodiscard]] StatusOr<Graph> load_edge_list(const std::string& path,
                                             ThreadPool& pool);

/// Abort-on-error wrappers over load_edge_list.
[[nodiscard]] Graph read_edge_list_file(const std::string& path);
[[nodiscard]] Graph read_edge_list_file(const std::string& path,
                                        ThreadPool& pool);

/// Writes "u v" per undirected edge (u < v).
void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

// ---- CSR v1 binary (legacy) -------------------------------------------------

/// Binary round-trip: magic, n, m, offsets, neighbors (host endianness).
/// Prefer the CSR v2 functions below for new data.
void write_binary_file(const Graph& g, const std::string& path);
[[nodiscard]] Graph read_binary_file(const std::string& path);

// ---- CSR v2 binary ----------------------------------------------------------

enum class CsrLoadMode {
  kAuto,  ///< mmap when available, else copy
  kMmap,  ///< require mmap; abort if unsupported
  kCopy,  ///< read() into owning vectors
};

struct CsrLoadOptions {
  CsrLoadMode mode = CsrLoadMode::kAuto;
  /// Verify the payload checksum and structural invariants (offsets
  /// monotone and in range, neighbor ids < n) before handing out the
  /// graph.  One sequential pass over the file — cheap next to any
  /// algorithm that will touch the data anyway.
  bool verify = true;
};

/// Header fields of a CSR v2 file (see probe_csr_file).
struct Csr2Info {
  std::uint32_t version = 0;
  bool weighted = false;
  bool compressed = false;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_half_edges = 0;
  std::uint64_t file_bytes = 0;
};

/// Writes a CSR v2 file; kIoError on any write failure (unwritable
/// directory, disk full).  A failed write may leave a partial file
/// behind; partial files never validate (checksum), so readers treat
/// them as absent.
[[nodiscard]] Status write_csr(const Graph& g, const std::string& path);
[[nodiscard]] Status write_csr(const WeightedGraph& g,
                               const std::string& path);

/// Writes a compressed CSR v2 file (flags bit 1): a 128-byte parameter
/// block at offsets_pos followed by the six compressed sections (see
/// graph/compressed.hpp), all covered by the header checksum.
/// Compressed files are always unweighted.
[[nodiscard]] Status write_csr(const CompressedGraph& g,
                               const std::string& path);

/// Loads an unweighted CSR v2 file.  In mmap mode the returned Graph views
/// the mapped sections in place (Graph::owns_storage() == false) and the
/// mapping is pinned for the graph's lifetime — the file may be unlinked
/// afterwards.  A compressed file is loaded through load_compressed_csr
/// and decompressed, so plain-CSR consumers (the dataset cache) accept
/// either layout transparently.  Errors: kInvalidArgument (not CSR v2 /
/// unknown flags / weighted file), kDataLoss (truncated, checksum
/// mismatch, corrupt payload), kIoError (cannot open / mmap).
[[nodiscard]] StatusOr<Graph> load_csr(const std::string& path,
                                       const CsrLoadOptions& opts = {});

/// Loads a compressed CSR v2 file as a CompressedGraph viewing the file's
/// sections in place (mmap mode; the byte sections are position- and
/// endian-independent, so zero-copy works on any host) or a private copy
/// of the file bytes (kCopy).  With opts.verify the payload checksum and
/// a full structural decode walk run first, so a flipped bit anywhere in
/// the parameter block, index, or bitstream is kDataLoss here rather than
/// a wrong answer later.  kInvalidArgument when the file is a plain or
/// weighted CSR v2.
[[nodiscard]] StatusOr<CompressedGraph> load_compressed_csr(
    const std::string& path, const CsrLoadOptions& opts = {});

/// Loads a weighted CSR v2 file.  Always materializes (the interleaved
/// in-memory adjacency differs from the split on-disk sections), so there
/// is no mmap storage mode for weighted graphs.  Same error codes as
/// load_csr.
[[nodiscard]] StatusOr<WeightedGraph> load_weighted_csr(
    const std::string& path, const CsrLoadOptions& opts = {});

/// Abort-on-error wrappers over write_csr / load_csr /
/// load_weighted_csr, for batch callers where any failure is terminal.
void write_csr_file(const Graph& g, const std::string& path);
void write_csr_file(const WeightedGraph& g, const std::string& path);
void write_csr_file(const CompressedGraph& g, const std::string& path);
[[nodiscard]] Graph load_csr_file(const std::string& path,
                                  const CsrLoadOptions& opts = {});
[[nodiscard]] WeightedGraph load_weighted_csr_file(
    const std::string& path, const CsrLoadOptions& opts = {});
[[nodiscard]] CompressedGraph load_compressed_csr_file(
    const std::string& path, const CsrLoadOptions& opts = {});

/// Optional-returning wrappers for best-effort consumers that only need
/// success/failure, not the error detail.
[[nodiscard]] bool try_write_csr_file(const Graph& g, const std::string& path);
[[nodiscard]] std::optional<Graph> try_load_csr_file(
    const std::string& path, const CsrLoadOptions& opts = {});

/// True if `path` exists and starts with the CSR v2 magic.
[[nodiscard]] bool is_csr_file(const std::string& path);

/// Header of a CSR v2 file without loading the payload; nullopt if the
/// file is missing, short, or not CSR v2.
[[nodiscard]] std::optional<Csr2Info> probe_csr_file(const std::string& path);

/// True when this platform supports mmap-backed loading (POSIX).
[[nodiscard]] bool mmap_supported();

// ---- raw file bytes ---------------------------------------------------------

/// Read-only contents of a whole file.  `keepalive` pins the backing
/// storage (an mmap-ed region or an owned buffer) for as long as any copy
/// of it lives, so `bytes` may be viewed in place — the same non-owning
/// contract as mmap-loaded Graphs.
struct FileContents {
  std::span<const std::byte> bytes;
  std::shared_ptr<const void> keepalive;
  bool mapped = false;
};

/// Maps (when `prefer_mmap` and the platform allows — falling back to a
/// plain read, the CsrLoadMode::kAuto degradation) or reads `path`.
/// kIoError when the file cannot be opened or read.  Covered by the
/// "io.open" / "io.mmap" / "io.read" fault points; consumers of other
/// formats (the oracle artifact sidecar) build on this instead of
/// reimplementing the mapping path.
[[nodiscard]] StatusOr<FileContents> read_or_map_file(const std::string& path,
                                                      bool prefer_mmap = true);

}  // namespace gclus::io
