// Graph serialization: whitespace-separated edge-list text (the format of
// the SNAP/LAW datasets the paper uses) and a compact binary format for
// fast reload of generated workloads.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace gclus::io {

/// Parses an edge-list stream: one "u v" pair per line; lines starting
/// with '#' or '%' are comments.  Node ids may be sparse; they are
/// compacted to [0, n).  The graph is symmetrized and deduplicated.
[[nodiscard]] Graph read_edge_list(std::istream& in);
[[nodiscard]] Graph read_edge_list_file(const std::string& path);

/// Writes "u v" per undirected edge (u < v).
void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

/// Binary round-trip: magic, n, m, offsets, neighbors (host endianness).
void write_binary_file(const Graph& g, const std::string& path);
[[nodiscard]] Graph read_binary_file(const std::string& path);

}  // namespace gclus::io
