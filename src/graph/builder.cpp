#include "graph/builder.hpp"

#include <algorithm>

#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"

namespace gclus {

namespace {

// Below this size the scheduling overhead of the block-merge sort exceeds
// its win; std::sort alone is already microseconds.
constexpr std::size_t kParallelSortThreshold = 1u << 17;

/// Deterministic parallel sort: equal-size blocks are std::sort-ed
/// concurrently, then merged pairwise level by level (std::inplace_merge),
/// with all merges of a level running in parallel.  The result is exactly
/// std::sort's (total order, here on std::pair), independent of the
/// schedule — graph construction stays byte-reproducible at any thread
/// count.
void parallel_sort_edges(ThreadPool& pool, std::vector<Edge>& edges) {
  const std::size_t n = edges.size();
  if (n < kParallelSortThreshold || pool.num_threads() == 1) {
    std::sort(edges.begin(), edges.end());
    return;
  }
  const std::size_t num_blocks =
      std::min<std::size_t>(4 * pool.num_threads(), 64);
  const std::size_t block = (n + num_blocks - 1) / num_blocks;
  parallel_for(
      pool, 0, num_blocks,
      [&](std::size_t b) {
        const std::size_t lo = std::min(b * block, n);
        const std::size_t hi = std::min(lo + block, n);
        std::sort(edges.begin() + lo, edges.begin() + hi);
      },
      /*grain=*/1);
  for (std::size_t width = block; width < n; width *= 2) {
    const std::size_t pairs = (n + 2 * width - 1) / (2 * width);
    parallel_for(
        pool, 0, pairs,
        [&](std::size_t p) {
          const std::size_t lo = p * 2 * width;
          const std::size_t mid = std::min(lo + width, n);
          const std::size_t hi = std::min(lo + 2 * width, n);
          if (mid < hi) {
            std::inplace_merge(edges.begin() + lo, edges.begin() + mid,
                               edges.begin() + hi);
          }
        },
        /*grain=*/1);
  }
}

}  // namespace

Graph GraphBuilder::build() { return build(ThreadPool::global()); }

Graph GraphBuilder::build(ThreadPool& pool) {
  const NodeId n = num_nodes_;

  // Materialize both directions, dropping self-loops.
  std::vector<Edge> halves;
  halves.reserve(edges_.size() * 2);
  for (const auto& [u, v] : edges_) {
    if (u == v) continue;
    halves.emplace_back(u, v);
    halves.emplace_back(v, u);
  }
  edges_.clear();
  edges_.shrink_to_fit();

  parallel_sort_edges(pool, halves);
  halves.erase(std::unique(halves.begin(), halves.end()), halves.end());

  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : halves) offsets[u + 1]++;
  for (NodeId u = 0; u < n; ++u) offsets[u + 1] += offsets[u];

  std::vector<NodeId> neighbors(halves.size());
  parallel_for(pool, 0, halves.size(),
               [&](std::size_t i) { neighbors[i] = halves[i].second; });

  return Graph(std::move(offsets), std::move(neighbors));
}

Graph build_graph(NodeId num_nodes, const std::vector<Edge>& edges) {
  GraphBuilder b(num_nodes);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

}  // namespace gclus
