#include "graph/builder.hpp"

#include <algorithm>

#include "par/parallel_for.hpp"

namespace gclus {

Graph GraphBuilder::build() {
  const NodeId n = num_nodes_;

  // Materialize both directions, dropping self-loops.
  std::vector<Edge> halves;
  halves.reserve(edges_.size() * 2);
  for (const auto& [u, v] : edges_) {
    if (u == v) continue;
    halves.emplace_back(u, v);
    halves.emplace_back(v, u);
  }
  edges_.clear();
  edges_.shrink_to_fit();

  std::sort(halves.begin(), halves.end());
  halves.erase(std::unique(halves.begin(), halves.end()), halves.end());

  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : halves) offsets[u + 1]++;
  for (NodeId u = 0; u < n; ++u) offsets[u + 1] += offsets[u];

  std::vector<NodeId> neighbors(halves.size());
  parallel_for(0, halves.size(),
               [&](std::size_t i) { neighbors[i] = halves[i].second; });

  return Graph(std::move(offsets), std::move(neighbors));
}

Graph build_graph(NodeId num_nodes, const std::vector<Edge>& edges) {
  GraphBuilder b(num_nodes);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

}  // namespace gclus
