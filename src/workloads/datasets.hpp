// The benchmark dataset registry: scaled-down synthetic stand-ins for the
// paper's Table-1 graphs (see DESIGN.md §3 for the substitution
// rationale).  Every dataset is connected, deterministic for a given
// scale, and tagged with the paper dataset it models.
//
//   name          paper dataset   regime
//   social-large  twitter         power-law, low diameter, high expansion
//   social-small  livejournal     power-law, low diameter
//   road-a        roads-CA        sparse near-planar, huge diameter
//   road-b        roads-PA        sparse near-planar, huge diameter
//   road-c        roads-TX        sparse near-planar, huge diameter
//   mesh          mesh1000        2-D grid, doubling dimension 2
//
// Scale: the GCLUS_WORKLOAD_SCALE environment variable (default 1.0)
// multiplies node counts (linearly; grid sides scale by √s) so the same
// harness can run anywhere from smoke-test to full-size.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace gclus::workloads {

struct Dataset {
  std::string name;
  std::string paper_name;
  Graph graph;
  bool large_diameter = false;  // drives granularity choices (§6.1)
};

/// Names in canonical (paper Table 1) order.
[[nodiscard]] const std::vector<std::string>& dataset_names();

/// Builds a dataset by name at the environment-configured scale.
[[nodiscard]] Dataset load_dataset(const std::string& name);

/// Builds every dataset, in canonical order.
[[nodiscard]] std::vector<Dataset> load_all_datasets();

/// The §3-discussion composite used by the batch-policy ablation:
/// a 4-regular expander with a √n-node path attached.
[[nodiscard]] Graph make_expander_path(NodeId n = 16384);

/// Current scale factor (GCLUS_WORKLOAD_SCALE, default 1.0, clamped to
/// [0.05, 64]).
[[nodiscard]] double workload_scale();

}  // namespace gclus::workloads
