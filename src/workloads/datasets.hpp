// The benchmark dataset registry: scaled-down synthetic stand-ins for the
// paper's Table-1 graphs (see DESIGN.md §3 for the substitution
// rationale).  Every dataset is connected, deterministic for a given
// scale, and tagged with the paper dataset it models.
//
//   name          paper dataset   regime
//   social-large  twitter         power-law, low diameter, high expansion
//   social-small  livejournal     power-law, low diameter
//   road-a        roads-CA        sparse near-planar, huge diameter
//   road-b        roads-PA        sparse near-planar, huge diameter
//   road-c        roads-TX        sparse near-planar, huge diameter
//   mesh          mesh1000        2-D grid, doubling dimension 2
//
// Scale: the GCLUS_WORKLOAD_SCALE environment variable (default 1.0)
// multiplies node counts (linearly; grid sides scale by √s) so the same
// harness can run anywhere from smoke-test to full-size.
//
// Dataset cache: when GCLUS_DATASET_CACHE_DIR is set, generated graphs
// persist there as CSR v2 files keyed by (name, scale, generator
// version), so repeated bench/test runs mmap the previous run's output
// instead of regenerating.  Publication is atomic (temp file + rename),
// so concurrently cache-filling processes — a parallel ctest — race
// benignly; corrupt or stale entries fail checksum validation and are
// regenerated in place.  Bump kDatasetGeneratorVersion whenever any
// generator's output changes: the version is part of every cache key, so
// stale files are simply never read again.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/compressed.hpp"
#include "graph/graph.hpp"

namespace gclus::workloads {

struct Dataset {
  std::string name;
  std::string paper_name;
  Graph graph;
  bool large_diameter = false;  // drives granularity choices (§6.1)
};

/// Bumped when generator output changes; part of every cache key.
inline constexpr std::uint32_t kDatasetGeneratorVersion = 1;

/// Names in canonical (paper Table 1) order.
[[nodiscard]] const std::vector<std::string>& dataset_names();

/// Builds a dataset by name at the environment-configured scale (serving
/// it from the dataset cache when enabled — cache hits are mmap-backed).
[[nodiscard]] Dataset load_dataset(const std::string& name);

/// Builds every dataset, in canonical order.
[[nodiscard]] std::vector<Dataset> load_all_datasets();

/// The §3-discussion composite used by the batch-policy ablation:
/// a 4-regular expander with a √n-node path attached.
[[nodiscard]] Graph make_expander_path(NodeId n = 16384);

/// Current scale factor (GCLUS_WORKLOAD_SCALE, default 1.0, clamped to
/// [0.05, 64]).
[[nodiscard]] double workload_scale();

/// The cache directory (GCLUS_DATASET_CACHE_DIR); empty when caching is
/// disabled.  Read per call, so tests can toggle the environment.
[[nodiscard]] std::string dataset_cache_dir();

/// Returns the cached CSR v2 graph for `key` (suffixed with the generator
/// version), building and publishing it on a miss.  With no cache dir
/// configured this is just build().  `key` must be filename-safe; callers
/// embed every build parameter in it — e.g. "expander-n300000-d8-s42".
/// Benches wrap their synthetic inputs in this to skip regeneration.
[[nodiscard]] Graph cached_graph(const std::string& key,
                                 const std::function<Graph()>& build);

/// Compressed-layout counterpart of cached_graph: the cache entry is a
/// compressed CSR v2 file (suffix "-cz"), hits are zero-copy mmap-backed
/// CompressedGraphs, and misses build the plain graph, compress it, and
/// publish the compressed file.  Shares the cache counters, the atomic
/// publish path, and the corrupt-entry eviction rule with cached_graph.
[[nodiscard]] CompressedGraph cached_compressed_graph(
    const std::string& key, const std::function<Graph()>& build);

/// Process-lifetime cache effectiveness counters (for tests and bench
/// telemetry).
struct DatasetCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  /// Entries that existed but failed validation (truncated, checksum
  /// mismatch) and were deleted before regenerating.
  std::uint64_t corrupt_evictions = 0;
  /// Publications abandoned because the temp write, fsync, or rename
  /// failed; the run continues on the freshly built graph.
  std::uint64_t publish_failures = 0;
};
[[nodiscard]] DatasetCacheStats dataset_cache_stats();

}  // namespace gclus::workloads
