#include "workloads/datasets.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#define GCLUS_HAS_FSYNC 1
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/check.hpp"
#include "common/faultpoint.hpp"
#include "common/status.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace gclus::workloads {

namespace {

constexpr std::uint64_t kDatasetSeed = 0xD5EEDULL;

NodeId scaled(NodeId base) {
  return std::max<NodeId>(64, static_cast<NodeId>(base * workload_scale()));
}

NodeId scaled_side(NodeId base) {
  return std::max<NodeId>(
      8, static_cast<NodeId>(base * std::sqrt(workload_scale())));
}

/// Next power of two >= x (R-MAT wants a power-of-two universe).
NodeId pow2_at_least(NodeId x) {
  NodeId p = 1;
  while (p < x) p <<= 1;
  return p;
}

Graph connected(Graph g) { return largest_component(g).graph; }

struct CacheCounters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> stores{0};
  std::atomic<std::uint64_t> corrupt_evictions{0};
  std::atomic<std::uint64_t> publish_failures{0};
};

CacheCounters& counters() {
  static CacheCounters c;
  return c;
}

/// Scale rendered compactly and filename-safe ("1", "0.25", "2.5").
std::string scale_tag() {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", workload_scale());
  return buf;
}

/// Distinct per process and per call, so concurrent cache fillers never
/// collide on the temp file they publish from.
std::string unique_tmp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t salt = std::random_device{}();
  return std::to_string(salt) + "-" + std::to_string(counter.fetch_add(1));
}

/// fsyncs one path (a file, or with `directory` its parent directory
/// entry).  On platforms without fsync this is a no-op success — the
/// publish is still atomic, just not crash-durable.
bool sync_path(const std::string& path, bool directory) {
#ifdef GCLUS_HAS_FSYNC
  const int fd = ::open(path.c_str(), directory ? O_RDONLY : O_WRONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  (void)directory;
  return true;
#endif
}

/// Crash-consistent publish: fsync the temp file, rename it over `path`,
/// fsync the directory so the rename itself survives a crash.  A reader
/// can then never observe a torn entry: before the rename it sees the old
/// inode (or nothing), after it a fully durable new one.
bool publish_cache_entry(const std::string& tmp, const std::string& path,
                         const std::string& dir) {
  if (GCLUS_FAULTPOINT("cache.publish")) return false;
  if (!sync_path(tmp, /*directory=*/false)) return false;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return false;
  return sync_path(dir, /*directory=*/true);
}

}  // namespace

double workload_scale() {
  static const double scale = [] {
    if (const char* env = std::getenv("GCLUS_WORKLOAD_SCALE")) {
      const double v = std::strtod(env, nullptr);
      if (v > 0.0) return std::clamp(v, 0.05, 64.0);
    }
    return 1.0;
  }();
  return scale;
}

std::string dataset_cache_dir() {
  if (const char* env = std::getenv("GCLUS_DATASET_CACHE_DIR")) return env;
  return {};
}

DatasetCacheStats dataset_cache_stats() {
  const auto& c = counters();
  return {c.hits.load(), c.misses.load(), c.stores.load(),
          c.corrupt_evictions.load(), c.publish_failures.load()};
}

Graph cached_graph(const std::string& key,
                   const std::function<Graph()>& build) {
  const std::string dir = dataset_cache_dir();
  if (dir.empty()) return build();

  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);  // best effort; a miss just rebuilds
  const std::string path = dir + "/" + key + "-g" +
                           std::to_string(kDatasetGeneratorVersion) + ".csr2";
  // load_csr validates magic, sections, and checksum.  The code tells an
  // absent entry (plain miss) from a *corrupt* one — truncated, bit-
  // flipped, or torn by a crash on a filesystem without atomic rename —
  // which is deleted so it cannot poison every later run, then rebuilt.
  auto cached = GCLUS_FAULTPOINT("cache.load")
                    ? StatusOr<Graph>(DataLossError("injected corrupt entry"))
                    : io::load_csr(path);
  if (cached.ok()) {
    counters().hits.fetch_add(1, std::memory_order_relaxed);
    return std::move(cached).value();
  }
  const StatusCode code = cached.status().code();
  if (code == StatusCode::kDataLoss || code == StatusCode::kInvalidArgument) {
    std::fprintf(stderr,
                 "gclus: evicting corrupt dataset cache entry %s (%s)\n",
                 path.c_str(), cached.status().to_string().c_str());
    counters().corrupt_evictions.fetch_add(1, std::memory_order_relaxed);
    fs::remove(path, ec);  // best effort; rebuild either way
  }
  counters().misses.fetch_add(1, std::memory_order_relaxed);
  Graph g = build();

  // Publish atomically and crash-consistently: concurrent fillers
  // (parallel ctest) each write a private temp file and the last rename
  // wins — readers mmap whichever complete inode they opened — and the
  // file plus directory entry are fsynced around the rename so a crash
  // cannot leave a published name pointing at unwritten data.
  // Publication is best-effort end to end: an unwritable or full cache
  // volume degrades to regeneration, never aborts the run.
  const std::string tmp = path + ".tmp." + unique_tmp_suffix();
  const bool wrote =
      !GCLUS_FAULTPOINT("cache.write") && io::write_csr(g, tmp).ok();
  if (wrote && publish_cache_entry(tmp, path, dir)) {
    counters().stores.fetch_add(1, std::memory_order_relaxed);
    return g;
  }
  counters().publish_failures.fetch_add(1, std::memory_order_relaxed);
  fs::remove(tmp, ec);
  return g;
}

CompressedGraph cached_compressed_graph(const std::string& key,
                                        const std::function<Graph()>& build) {
  const std::string dir = dataset_cache_dir();
  if (dir.empty()) return compress(build());

  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  // The "-cz" tag keeps compressed entries keyed apart from the plain ones
  // for the same graph, so both layouts can coexist in one cache dir.
  const std::string path = dir + "/" + key + "-cz-g" +
                           std::to_string(kDatasetGeneratorVersion) + ".csr2";
  auto cached =
      GCLUS_FAULTPOINT("cache.load")
          ? StatusOr<CompressedGraph>(DataLossError("injected corrupt entry"))
          : io::load_compressed_csr(path);
  if (cached.ok()) {
    counters().hits.fetch_add(1, std::memory_order_relaxed);
    return std::move(cached).value();
  }
  const StatusCode code = cached.status().code();
  if (code == StatusCode::kDataLoss || code == StatusCode::kInvalidArgument) {
    std::fprintf(stderr,
                 "gclus: evicting corrupt dataset cache entry %s (%s)\n",
                 path.c_str(), cached.status().to_string().c_str());
    counters().corrupt_evictions.fetch_add(1, std::memory_order_relaxed);
    fs::remove(path, ec);
  }
  counters().misses.fetch_add(1, std::memory_order_relaxed);
  CompressedGraph cg = compress(build());

  const std::string tmp = path + ".tmp." + unique_tmp_suffix();
  const bool wrote =
      !GCLUS_FAULTPOINT("cache.write") && io::write_csr(cg, tmp).ok();
  if (wrote && publish_cache_entry(tmp, path, dir)) {
    counters().stores.fetch_add(1, std::memory_order_relaxed);
    return cg;
  }
  counters().publish_failures.fetch_add(1, std::memory_order_relaxed);
  fs::remove(tmp, ec);
  return cg;
}

const std::vector<std::string>& dataset_names() {
  static const std::vector<std::string> names = {
      "social-large", "social-small", "road-a", "road-b", "road-c", "mesh"};
  return names;
}

Dataset load_dataset(const std::string& name) {
  Dataset d;
  d.name = name;
  std::function<Graph()> build;
  if (name == "social-large") {
    d.paper_name = "twitter";
    build = [] {
      const NodeId n = pow2_at_least(scaled(65536));
      return connected(
          gen::rmat(n, static_cast<EdgeId>(n) * 14, kDatasetSeed ^ 0x1));
    };
  } else if (name == "social-small") {
    d.paper_name = "livejournal";
    build = [] {
      return connected(
          gen::preferential_attachment(scaled(40000), 3, kDatasetSeed ^ 0x2));
    };
  } else if (name == "road-a") {
    d.paper_name = "roads-CA";
    d.large_diameter = true;
    build = [] {
      return gen::road_like(scaled_side(220), scaled_side(220), 0.08, 0.02,
                            kDatasetSeed ^ 0x3);
    };
  } else if (name == "road-b") {
    d.paper_name = "roads-PA";
    d.large_diameter = true;
    build = [] {
      return gen::road_like(scaled_side(180), scaled_side(180), 0.08, 0.02,
                            kDatasetSeed ^ 0x4);
    };
  } else if (name == "road-c") {
    d.paper_name = "roads-TX";
    d.large_diameter = true;
    build = [] {
      return gen::road_like(scaled_side(200), scaled_side(200), 0.12, 0.02,
                            kDatasetSeed ^ 0x5);
    };
  } else if (name == "mesh") {
    d.paper_name = "mesh1000";
    d.large_diameter = true;
    build = [] {
      const NodeId side = scaled_side(250);
      return gen::grid(side, side);
    };
  } else {
    GCLUS_CHECK(false, "unknown dataset: ", name);
  }
  d.graph = cached_graph(name + "-s" + scale_tag(), build);
  return d;
}

std::vector<Dataset> load_all_datasets() {
  std::vector<Dataset> out;
  out.reserve(dataset_names().size());
  for (const auto& name : dataset_names()) out.push_back(load_dataset(name));
  return out;
}

Graph make_expander_path(NodeId n) {
  return cached_graph("expander-path-n" + std::to_string(n), [n] {
    const auto tail = static_cast<NodeId>(std::sqrt(static_cast<double>(n)));
    return gen::expander_with_path(n, tail, /*degree=*/4, kDatasetSeed ^ 0x6);
  });
}

}  // namespace gclus::workloads
