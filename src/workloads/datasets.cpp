#include "workloads/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/check.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace gclus::workloads {

namespace {

constexpr std::uint64_t kDatasetSeed = 0xD5EEDULL;

NodeId scaled(NodeId base) {
  return std::max<NodeId>(64, static_cast<NodeId>(base * workload_scale()));
}

NodeId scaled_side(NodeId base) {
  return std::max<NodeId>(
      8, static_cast<NodeId>(base * std::sqrt(workload_scale())));
}

/// Next power of two >= x (R-MAT wants a power-of-two universe).
NodeId pow2_at_least(NodeId x) {
  NodeId p = 1;
  while (p < x) p <<= 1;
  return p;
}

Graph connected(Graph g) { return largest_component(g).graph; }

}  // namespace

double workload_scale() {
  static const double scale = [] {
    if (const char* env = std::getenv("GCLUS_WORKLOAD_SCALE")) {
      const double v = std::strtod(env, nullptr);
      if (v > 0.0) return std::clamp(v, 0.05, 64.0);
    }
    return 1.0;
  }();
  return scale;
}

const std::vector<std::string>& dataset_names() {
  static const std::vector<std::string> names = {
      "social-large", "social-small", "road-a", "road-b", "road-c", "mesh"};
  return names;
}

Dataset load_dataset(const std::string& name) {
  Dataset d;
  d.name = name;
  if (name == "social-large") {
    d.paper_name = "twitter";
    const NodeId n = pow2_at_least(scaled(65536));
    d.graph = connected(
        gen::rmat(n, static_cast<EdgeId>(n) * 14, kDatasetSeed ^ 0x1));
  } else if (name == "social-small") {
    d.paper_name = "livejournal";
    d.graph = connected(
        gen::preferential_attachment(scaled(40000), 3, kDatasetSeed ^ 0x2));
  } else if (name == "road-a") {
    d.paper_name = "roads-CA";
    d.large_diameter = true;
    d.graph = gen::road_like(scaled_side(220), scaled_side(220), 0.08, 0.02,
                             kDatasetSeed ^ 0x3);
  } else if (name == "road-b") {
    d.paper_name = "roads-PA";
    d.large_diameter = true;
    d.graph = gen::road_like(scaled_side(180), scaled_side(180), 0.08, 0.02,
                             kDatasetSeed ^ 0x4);
  } else if (name == "road-c") {
    d.paper_name = "roads-TX";
    d.large_diameter = true;
    d.graph = gen::road_like(scaled_side(200), scaled_side(200), 0.12, 0.02,
                             kDatasetSeed ^ 0x5);
  } else if (name == "mesh") {
    d.paper_name = "mesh1000";
    d.large_diameter = true;
    const NodeId side = scaled_side(250);
    d.graph = gen::grid(side, side);
  } else {
    GCLUS_CHECK(false, "unknown dataset: ", name);
  }
  return d;
}

std::vector<Dataset> load_all_datasets() {
  std::vector<Dataset> out;
  out.reserve(dataset_names().size());
  for (const auto& name : dataset_names()) out.push_back(load_dataset(name));
  return out;
}

Graph make_expander_path(NodeId n) {
  const auto tail = static_cast<NodeId>(std::sqrt(static_cast<double>(n)));
  return gen::expander_with_path(n, tail, /*degree=*/4, kDatasetSeed ^ 0x6);
}

}  // namespace gclus::workloads
