// A small fixed-size thread pool.
//
// The pool hands out *blocked ranges*: a parallel region enqueues one task
// per worker, each task repeatedly grabs chunks of the iteration space via
// an atomic cursor (guided self-scheduling).  This keeps the pool free of
// per-item overhead while still load-balancing irregular graph work such as
// frontier expansion.
//
// A process-wide default pool (sized from std::thread::hardware_concurrency,
// overridable with the GCLUS_THREADS environment variable) serves all
// library kernels; tests construct private pools to exercise specific
// worker counts.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gclus {

class ThreadPool {
 public:
  /// Creates `num_threads` workers.  `num_threads == 1` short-circuits all
  /// dispatch: work runs inline on the caller (useful for debugging and for
  /// deterministic baselines in tests).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return num_threads_; }

  /// Runs `fn(worker_index)` on every worker (and on the caller for pools of
  /// size 1) and blocks until all invocations return.  `fn` must be safe to
  /// call concurrently from distinct threads.
  void run_on_workers(const std::function<void(std::size_t)>& fn);

  /// Process-wide pool.  First call creates it; sizing honours
  /// GCLUS_THREADS if set, else hardware_concurrency (min 1).
  static ThreadPool& global();

 private:
  void worker_loop(std::size_t index);

  std::size_t num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t epoch_ = 0;       // bumped per job; workers wait for a new epoch
  std::size_t outstanding_ = 0; // workers still running the current job
  bool shutdown_ = false;
};

}  // namespace gclus
