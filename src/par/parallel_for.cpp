#include "par/parallel_for.hpp"

// Header-only templates; this TU anchors the static library.
