// Data-parallel loop and reduction primitives on top of ThreadPool.
//
// Scheduling is guided self-scheduling: workers pull chunks of the index
// space from a shared atomic cursor.  Chunk size defaults to a value that
// amortizes the atomic while keeping tail imbalance small for irregular
// per-item cost (frontier expansion, per-node degree work).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

#include "par/thread_pool.hpp"

namespace gclus {

inline constexpr std::size_t kDefaultGrain = 1024;

/// Invokes body(i) for i in [begin, end) across the pool's workers.
/// The body must not throw.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const Body& body, std::size_t grain = kDefaultGrain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (pool.num_threads() == 1 || n <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> cursor{begin};
  pool.run_on_workers([&](std::size_t) {
    for (;;) {
      const std::size_t lo = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = lo + grain < end ? lo + grain : end;
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }
  });
}

/// parallel_for on the process-global pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  std::size_t grain = kDefaultGrain) {
  parallel_for(ThreadPool::global(), begin, end, body, grain);
}

/// Chunked variant: body(lo, hi) receives whole ranges.  Preferred when the
/// body wants to keep per-chunk scratch state (thread-local accumulators).
template <typename Body>
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const Body& body, std::size_t grain = kDefaultGrain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (pool.num_threads() == 1 || n <= grain) {
    body(begin, end);
    return;
  }
  std::atomic<std::size_t> cursor{begin};
  pool.run_on_workers([&](std::size_t) {
    for (;;) {
      const std::size_t lo = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = lo + grain < end ? lo + grain : end;
      body(lo, hi);
    }
  });
}

/// Parallel reduction: combine(acc, map(i)) over [begin, end) with identity
/// `init`.  `combine` must be associative; evaluation order is unspecified.
template <typename T, typename Map, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end, T init,
                  const Map& map, const Combine& combine,
                  std::size_t grain = kDefaultGrain) {
  if (begin >= end) return init;
  const std::size_t n = end - begin;
  if (pool.num_threads() == 1 || n <= grain) {
    T acc = init;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, map(i));
    return acc;
  }
  std::vector<T> partial(pool.num_threads(), init);
  std::atomic<std::size_t> cursor{begin};
  pool.run_on_workers([&](std::size_t worker) {
    T acc = init;
    for (;;) {
      const std::size_t lo = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = lo + grain < end ? lo + grain : end;
      for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
    }
    partial[worker] = acc;
  });
  T acc = init;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T init, const Map& map,
                  const Combine& combine, std::size_t grain = kDefaultGrain) {
  return parallel_reduce(ThreadPool::global(), begin, end, init, map, combine,
                         grain);
}

/// Sum of map(i) over [begin, end).
template <typename T, typename Map>
T parallel_sum(ThreadPool& pool, std::size_t begin, std::size_t end,
               const Map& map, std::size_t grain = kDefaultGrain) {
  return parallel_reduce(
      pool, begin, end, T{}, map, [](T a, T b) { return a + b; }, grain);
}

/// Atomic fetch-min for unsigned integral types: lowers `target` to `value`
/// if smaller.  Returns true if this call performed the update.
template <typename T>
bool atomic_fetch_min(std::atomic<T>& target, T value) {
  T cur = target.load(std::memory_order_relaxed);
  while (value < cur) {
    if (target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Exclusive prefix sum of `values` in place; returns the grand total.
/// Sequential: prefix sizes in this library are O(#clusters) or O(#workers),
/// never the hot path.  (The MR engine has its own round-counted primitive.)
template <typename T>
T exclusive_prefix_sum(std::vector<T>& values) {
  T total{};
  for (auto& v : values) {
    const T next = total + v;
    v = total;
    total = next;
  }
  return total;
}

/// Merges per-worker buffers into `out` (replacing its contents): an
/// exclusive prefix sum over buffer sizes assigns each buffer a disjoint
/// output range, then the buffers copy concurrently.  Output order is
/// buffer order, so when buffer contents depend on the dynamic schedule
/// the result is deterministic only as a multiset.
template <typename T>
void parallel_concat(ThreadPool& pool, const std::vector<std::vector<T>>& parts,
                     std::vector<T>& out) {
  std::vector<std::size_t> offset(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) offset[i] = parts[i].size();
  const std::size_t total = exclusive_prefix_sum(offset);
  out.resize(total);
  if (pool.num_threads() == 1 || total <= kDefaultGrain) {
    for (std::size_t i = 0; i < parts.size(); ++i) {
      std::copy(parts[i].begin(), parts[i].end(), out.begin() + offset[i]);
    }
    return;
  }
  std::atomic<std::size_t> cursor{0};
  pool.run_on_workers([&](std::size_t) {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= parts.size()) break;
      std::copy(parts[i].begin(), parts[i].end(), out.begin() + offset[i]);
    }
  });
}

/// Order-preserving parallel filter: keeps the elements of `values` for
/// which `pred` returns true.  Fixed-size blocks are counted in parallel,
/// an exclusive prefix sum assigns each block its output range, and the
/// surviving elements are scattered concurrently — relative order is
/// preserved exactly, so a sorted input stays sorted.
template <typename T, typename Pred>
void parallel_compact(ThreadPool& pool, std::vector<T>& values,
                      const Pred& pred, std::size_t block = 4096) {
  const std::size_t n = values.size();
  if (pool.num_threads() == 1 || n <= block) {
    values.erase(std::remove_if(values.begin(), values.end(),
                                [&](const T& v) { return !pred(v); }),
                 values.end());
    return;
  }
  const std::size_t num_blocks = (n + block - 1) / block;
  std::vector<std::size_t> offset(num_blocks);
  parallel_for(
      pool, 0, num_blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(lo + block, n);
        std::size_t kept = 0;
        for (std::size_t i = lo; i < hi; ++i) kept += pred(values[i]) ? 1 : 0;
        offset[b] = kept;
      },
      /*grain=*/1);
  const std::size_t total = exclusive_prefix_sum(offset);
  std::vector<T> out(total);
  parallel_for(
      pool, 0, num_blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(lo + block, n);
        std::size_t at = offset[b];
        for (std::size_t i = lo; i < hi; ++i) {
          if (pred(values[i])) out[at++] = values[i];
        }
      },
      /*grain=*/1);
  values.swap(out);
}

}  // namespace gclus
