// Data-parallel loop and reduction primitives on top of ThreadPool.
//
// Scheduling is guided self-scheduling: workers pull chunks of the index
// space from a shared atomic cursor.  Chunk size defaults to a value that
// amortizes the atomic while keeping tail imbalance small for irregular
// per-item cost (frontier expansion, per-node degree work).
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "par/thread_pool.hpp"

namespace gclus {

inline constexpr std::size_t kDefaultGrain = 1024;

/// Invokes body(i) for i in [begin, end) across the pool's workers.
/// The body must not throw.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const Body& body, std::size_t grain = kDefaultGrain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (pool.num_threads() == 1 || n <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> cursor{begin};
  pool.run_on_workers([&](std::size_t) {
    for (;;) {
      const std::size_t lo = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = lo + grain < end ? lo + grain : end;
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }
  });
}

/// parallel_for on the process-global pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  std::size_t grain = kDefaultGrain) {
  parallel_for(ThreadPool::global(), begin, end, body, grain);
}

/// Chunked variant: body(lo, hi) receives whole ranges.  Preferred when the
/// body wants to keep per-chunk scratch state (thread-local accumulators).
template <typename Body>
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const Body& body, std::size_t grain = kDefaultGrain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (pool.num_threads() == 1 || n <= grain) {
    body(begin, end);
    return;
  }
  std::atomic<std::size_t> cursor{begin};
  pool.run_on_workers([&](std::size_t) {
    for (;;) {
      const std::size_t lo = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = lo + grain < end ? lo + grain : end;
      body(lo, hi);
    }
  });
}

/// Parallel reduction: combine(acc, map(i)) over [begin, end) with identity
/// `init`.  `combine` must be associative; evaluation order is unspecified.
template <typename T, typename Map, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end, T init,
                  const Map& map, const Combine& combine,
                  std::size_t grain = kDefaultGrain) {
  if (begin >= end) return init;
  const std::size_t n = end - begin;
  if (pool.num_threads() == 1 || n <= grain) {
    T acc = init;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, map(i));
    return acc;
  }
  std::vector<T> partial(pool.num_threads(), init);
  std::atomic<std::size_t> cursor{begin};
  pool.run_on_workers([&](std::size_t worker) {
    T acc = init;
    for (;;) {
      const std::size_t lo = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = lo + grain < end ? lo + grain : end;
      for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
    }
    partial[worker] = acc;
  });
  T acc = init;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T init, const Map& map,
                  const Combine& combine, std::size_t grain = kDefaultGrain) {
  return parallel_reduce(ThreadPool::global(), begin, end, init, map, combine,
                         grain);
}

/// Sum of map(i) over [begin, end).
template <typename T, typename Map>
T parallel_sum(ThreadPool& pool, std::size_t begin, std::size_t end,
               const Map& map, std::size_t grain = kDefaultGrain) {
  return parallel_reduce(
      pool, begin, end, T{}, map, [](T a, T b) { return a + b; }, grain);
}

/// Atomic fetch-min for unsigned integral types: lowers `target` to `value`
/// if smaller.  Returns true if this call performed the update.
template <typename T>
bool atomic_fetch_min(std::atomic<T>& target, T value) {
  T cur = target.load(std::memory_order_relaxed);
  while (value < cur) {
    if (target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Exclusive prefix sum of `values` in place; returns the grand total.
/// Sequential: prefix sizes in this library are O(#clusters) or O(#workers),
/// never the hot path.  (The MR engine has its own round-counted primitive.)
template <typename T>
T exclusive_prefix_sum(std::vector<T>& values) {
  T total{};
  for (auto& v : values) {
    const T next = total + v;
    v = total;
    total = next;
  }
  return total;
}

}  // namespace gclus
