#include "par/thread_pool.hpp"

#include <cstdlib>

#include "common/check.hpp"

namespace gclus {

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {
  if (num_threads_ == 1) return;  // inline mode: no worker threads at all
  threads_.reserve(num_threads_);
  for (std::size_t i = 0; i < num_threads_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (threads_.empty()) return;
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_on_workers(const std::function<void(std::size_t)>& fn) {
  if (threads_.empty()) {
    fn(0);
    return;
  }
  {
    std::lock_guard lock(mu_);
    GCLUS_CHECK(job_ == nullptr, "nested run_on_workers on the same pool");
    job_ = &fn;
    outstanding_ = num_threads_;
    ++epoch_;
  }
  cv_work_.notify_all();
  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [this] { return outstanding_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(std::size_t index) {
  std::size_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock,
                    [&] { return shutdown_ || (job_ && epoch_ != seen_epoch); });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    (*job)(index);
    {
      std::lock_guard lock(mu_);
      if (--outstanding_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("GCLUS_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw == 0 ? 1 : hw);
  }());
  return pool;
}

}  // namespace gclus
