// The Miller–Peng–Xu (MPX) random-shift decomposition [SPAA'13] — the
// clustering baseline of the paper's Table 2.
//
// Every node u draws an exponential shift δ_u ~ Exp(β).  Node u activates
// as a cluster center at time δ_max − δ_u unless some cluster has covered
// it by then; clusters grow synchronously one hop per time unit, and a
// node v joins the cluster minimizing δ_max − δ_u + dist(u, v).  We run
// the standard integer-step schedule: centers whose start time floors to t
// activate at step t, and same-step claim ties are resolved by the
// fractional part of the start time (smaller wins), which reproduces the
// continuous rule up to 32-bit quantization.
//
// MPX guarantees O(log n / β) maximum radius and at most O(β·m) quotient
// edges with high probability; unlike CLUSTER it has no mechanism to keep
// the radius near the best achievable for the realized cluster count —
// the weakness Table 2 demonstrates on large-diameter graphs.
#pragma once

#include <cstdint>

#include "api/run_context.hpp"
#include "core/clustering.hpp"
#include "graph/graph.hpp"

namespace gclus {
class CompressedGraph;
}

namespace gclus::baselines {

/// Execution environment only — MPX has no constants beyond β, which is a
/// direct argument.
struct MpxOptions : RunContext {};

/// Runs MPX with exponential-distribution parameter `beta` (> 0).  Larger
/// β means more clusters of smaller radius.
[[nodiscard]] Clustering mpx(const Graph& g, double beta,
                             const MpxOptions& options = {});

/// MPX over a compressed graph, identical semantics and output.
[[nodiscard]] Clustering mpx(const CompressedGraph& g, double beta,
                             const MpxOptions& options = {});

/// Binary-searches β so that MPX yields at least `min_clusters` clusters
/// (the paper gives MPX "a comparable but larger number of clusters" than
/// CLUSTER, so the radius comparison is conservative).  Returns the tuned
/// β; `runs` bounds the search iterations.
[[nodiscard]] double mpx_tune_beta(const Graph& g, ClusterId min_clusters,
                                   const MpxOptions& options = {},
                                   int runs = 12);

}  // namespace gclus::baselines
