// One-shot random-centers clustering, in the spirit of Meyer's
// external-memory diameter approximation [SWAT'08, the paper's ref. 21]:
// select k centers uniformly at random up front, grow all clusters
// synchronously until the graph is covered, and use the (weighted)
// quotient for diameter estimation.
//
// Contrast with CLUSTER: no batch re-seeding when coverage stalls, so a
// sparse region far from every sampled center forces a few clusters to
// grow enormous radii — the effect the ablation bench quantifies on the
// expander+path construction, and the reason Meyer's approximation factor
// degrades as Θ(√(k·log n)) while CLUSTER's stays polylogarithmic.
#pragma once

#include <cstdint>

#include "api/run_context.hpp"
#include "core/clustering.hpp"
#include "graph/graph.hpp"

namespace gclus {
class CompressedGraph;
}

namespace gclus::baselines {

/// Execution environment only — k is a direct argument.
struct RandomCentersOptions : RunContext {};

/// Grows a clustering from k uniformly sampled centers.  On disconnected
/// graphs, components missed by the sample are covered by deterministic
/// fallback centers (one per stranded region) so the result is a valid
/// partition.
[[nodiscard]] Clustering random_centers_clustering(
    const Graph& g, NodeId k, const RandomCentersOptions& options = {});

/// Random-centers clustering over a compressed graph, same semantics.
[[nodiscard]] Clustering random_centers_clustering(
    const CompressedGraph& g, NodeId k,
    const RandomCentersOptions& options = {});

}  // namespace gclus::baselines
