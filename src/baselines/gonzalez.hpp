// Gonzalez's farthest-first traversal for k-center (the classical
// sequential 2-approximation [Gonzalez'85, the paper's ref. 13]) adapted
// to the graph metric.
//
// Not part of the paper's experiments — it serves as the quality yardstick
// in the k-center ablation bench: CLUSTER-based centers should land within
// the predicted polylog factor of Gonzalez's radius, while being built
// from O(R) parallel rounds instead of k sequential BFS sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace gclus::baselines {

struct GonzalezResult {
  std::vector<NodeId> centers;  // exactly k
  Dist radius = 0;              // exact achieved radius
};

/// Runs farthest-first traversal with k centers; `first` seeds the sweep
/// (kInvalidNode = node 0).  Cost: k incremental BFS passes, O(k(n+m)).
/// Requires k >= number of connected components for a finite radius.
[[nodiscard]] GonzalezResult gonzalez_kcenter(const Graph& g, NodeId k,
                                              NodeId first = kInvalidNode);

}  // namespace gclus::baselines
